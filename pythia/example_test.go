package pythia_test

import (
	"fmt"
	"time"

	"repro/pythia"
)

// ExampleOracle_Thread shows the per-thread handles: each runtime thread
// submits its own event stream and gets its own grammar and predictions.
func ExampleOracle_Thread() {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	work := o.Intern("work")
	sync := o.Intern("sync")
	for tid := int32(0); tid < 2; tid++ {
		th := o.Thread(tid)
		for i := 0; i < 10; i++ {
			th.Submit(work)
		}
		th.Submit(sync)
	}
	ts, err := o.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Println(len(ts.Threads), "threads recorded,", ts.TotalEvents(), "events")
	// Output: 2 threads recorded, 22 events
}

// ExampleThread_PredictDurationUntil shows the query the paper's adaptive
// OpenMP runtime makes: how long until a region's end event?
func ExampleThread_PredictDurationUntil() {
	var now int64
	o := pythia.NewRecordOracle(pythia.WithClock(func() int64 { return now }))
	begin := o.Intern("region_begin")
	end := o.Intern("region_end")
	th := o.Thread(0)
	for i := 0; i < 20; i++ {
		th.SubmitAt(begin, now)
		now += 250_000 // the region takes 250µs
		th.SubmitAt(end, now)
		now += 50_000
	}
	ts, err := o.Finish()
	if err != nil {
		panic(err)
	}

	p, _ := pythia.NewPredictOracle(ts, pythia.Config{})
	pt := p.Thread(0)
	pt.StartAtBeginning()
	pt.Submit(p.Lookup("region_begin"))
	pred, _ := pt.PredictDurationUntil(p.Lookup("region_end"), 8)
	fmt.Println("expected region duration:", time.Duration(int64(pred.ExpectedNs)))
	// Output: expected region duration: 250µs
}

// ExampleThread_PredictSequence shows multi-step look-ahead.
func ExampleThread_PredictSequence() {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	a, b, c := o.Intern("a"), o.Intern("b"), o.Intern("c")
	th := o.Thread(0)
	for i := 0; i < 15; i++ {
		th.Submit(a)
		th.Submit(b)
		th.Submit(c)
	}
	ts, err := o.Finish()
	if err != nil {
		panic(err)
	}

	p, _ := pythia.NewPredictOracle(ts, pythia.Config{})
	pt := p.Thread(0)
	pt.StartAtBeginning()
	pt.Submit(p.Lookup("a"))
	for _, pred := range pt.PredictSequence(4) {
		fmt.Printf("+%d %s\n", pred.Distance, p.EventName(pythia.ID(pred.EventID)))
	}
	// Output:
	// +1 b
	// +2 c
	// +3 a
	// +4 b
}
