package pythia_test

// Concurrency stress tests for the documented thread-safety contract
// (pythia.go package comment): the Oracle is safe for concurrent Thread
// lookup and event interning, while each Thread handle is single-submitter.
// These tests exist to give `go test -race ./pythia/...` real interleavings
// to bite on; they assert behaviour too, but the race detector is the point.

import (
	"fmt"
	"sync"
	"testing"

	"repro/pythia"
)

// stressGoroutines is sized well above GOMAXPROCS so lookups, interns and
// submissions genuinely overlap.
const stressGoroutines = 16

// TestConcurrentRecordStress hammers a recording oracle from many goroutines
// at once: every goroutine owns one Thread handle (per the contract) and
// submits a deterministic event stream, while also interning both fresh and
// already-known descriptors and looking up other goroutines' threads.
func TestConcurrentRecordStress(t *testing.T) {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())

	// Pre-interned shared alphabet: all goroutines submit these
	// concurrently, so the registry's read path runs under contention.
	shared := make([]pythia.ID, 8)
	for i := range shared {
		shared[i] = o.Intern("shared", int64(i))
	}

	const perThread = 2000
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			th := o.Thread(tid)
			for i := 0; i < perThread; i++ {
				// Mix shared-alphabet submissions with goroutine-private
				// interning (grows the registry concurrently) and foreign
				// thread lookup (exercises the session's thread map).
				switch i % 4 {
				case 0, 1:
					th.Submit(shared[i%len(shared)])
				case 2:
					th.Submit(o.Intern(fmt.Sprintf("private-%d", tid), int64(i%16)))
				case 3:
					other := o.Thread((tid + 1) % stressGoroutines)
					if other == nil {
						t.Error("Thread lookup returned nil")
						return
					}
					th.Submit(shared[0])
				}
			}
		}(int32(g))
	}
	wg.Wait()

	ts, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ts.Threads); got != stressGoroutines {
		t.Fatalf("recorded %d threads, want %d", got, stressGoroutines)
	}
	for tid, th := range ts.Threads {
		if got := th.Grammar.EventCount; got != perThread {
			t.Errorf("thread %d recorded %d events, want %d", tid, got, perThread)
		}
	}
}

// TestConcurrentPredictStress replays a recorded trace on a predicting
// oracle with every thread advancing and querying concurrently.
func TestConcurrentPredictStress(t *testing.T) {
	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	ids := make([]pythia.ID, 4)
	for i := range ids {
		ids[i] = rec.Intern("ev", int64(i))
	}
	const rounds = 200
	for g := 0; g < stressGoroutines; g++ {
		th := rec.Thread(int32(g))
		for r := 0; r < rounds; r++ {
			for _, id := range ids {
				th.Submit(id)
			}
		}
	}
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	o, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			th := o.Thread(tid)
			hits := 0
			for r := 0; r < rounds; r++ {
				for i, id := range ids {
					// Predict before submitting: after the first full round
					// the oracle is locked onto the loop and must name the
					// event we are about to submit.
					if p, ok := th.PredictAt(1); ok && r > 0 {
						if p.EventID == int32(ids[i]) {
							hits++
						}
					}
					th.Submit(id)
					// Interleave registry reads from the predict side too.
					_ = o.EventName(id)
				}
			}
			if hits == 0 {
				t.Errorf("thread %d: predictions never matched the replayed loop", tid)
			}
		}(int32(g))
	}
	wg.Wait()
}
