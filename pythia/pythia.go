// Package pythia is the public API of the Pythia oracle library, a Go
// implementation of "PYTHIA: an oracle to guide runtime system decisions"
// (Colin, Trahay, Conan — IEEE CLUSTER 2022).
//
// Pythia lets a runtime system (a message-passing library, a parallel-region
// scheduler, a task runtime…) replace heuristics about the future behaviour
// of an application with predictions derived from a previous execution:
//
//   - On the first run (the reference execution), the runtime notifies the
//     oracle of events — entries/exits of interesting functions, parallel
//     region boundaries, communication calls. Pythia reduces each thread's
//     event stream into a compact grammar on the fly and saves it, together
//     with a per-context timing model, into a trace file.
//
//   - On subsequent runs the trace file is reloaded. The runtime submits the
//     same events; Pythia follows the execution through the grammar and can
//     answer: which event will happen x events from now, with what
//     probability, and after how much time. Unexpected events are tolerated:
//     the oracle re-anchors itself and keeps predicting.
//
// # Recording
//
//	o := pythia.NewRecordOracle()
//	send := o.Intern("MPI_Send", dest)
//	th := o.Thread(rank)
//	th.Submit(send)                   // at every key point
//	...
//	o.FinishAndSave("app.pythia")
//
// # Predicting
//
//	o, err := pythia.LoadOracle("app.pythia", pythia.Config{})
//	th := o.Thread(rank)
//	th.Submit(send)                   // same notifications as before
//	next, ok := th.PredictAt(1)       // what happens next?
//	dur, ok := th.PredictDurationUntil(regionEnd, 64)
//
// One Thread handle must be used from one goroutine at a time; the Oracle
// itself is safe for concurrent Thread lookup and event interning.
package pythia

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/recorder"
	"repro/internal/tracefile"
)

// ID identifies an interned event (a key point plus its discriminating
// payload).
type ID = events.ID

// Config tunes prediction; the zero value selects sensible defaults.
type Config = predictor.Config

// Prediction is one predicted future event: the event, its estimated
// probability, its distance in events, and the expected elapsed time.
type Prediction = predictor.Prediction

// TraceSet is the content of a Pythia trace file: per-thread grammars and
// timing models plus the shared event table.
type TraceSet = model.TraceSet

// Thread is the per-thread oracle handle. See the package example for the
// method set: Submit, PredictAt, PredictSequence, PredictDurationUntil.
type Thread = core.Thread

// Stats counts prediction-tracking outcomes.
type Stats = predictor.Stats

// RecordOption configures recording.
type RecordOption = core.RecordOption

// WithClock records event timestamps with a caller-provided monotonic clock
// (nanoseconds). Simulated runtimes inject their virtual clock here so that
// recorded durations are virtual too.
func WithClock(clock func() int64) RecordOption {
	return core.WithRecorderOptions(recorder.WithClock(clock))
}

// WithoutTimestamps disables the timing model; duration predictions on the
// resulting trace return zero.
func WithoutTimestamps() RecordOption {
	return core.WithRecorderOptions(recorder.WithoutTimestamps())
}

// WithMaxEvents caps the number of events folded into each thread's grammar.
// Beyond the cap the recording degrades gracefully: the grammar is frozen,
// further events are counted but not recorded, and the thread's trace is
// marked truncated. Zero or negative means unlimited.
func WithMaxEvents(n int64) RecordOption {
	return core.WithRecorderOptions(recorder.WithMaxEvents(n))
}

// WithGrammarBudget caps each thread grammar's memory footprint: at most
// maxRules live rules and maxNodes live body nodes. On breach the recording
// degrades exactly like WithMaxEvents. Zero or negative disables either cap.
func WithGrammarBudget(maxRules, maxNodes int) RecordOption {
	return core.WithRecorderOptions(recorder.WithGrammarBudget(maxRules, maxNodes))
}

// CheckpointConfig configures crash-safe journaled checkpoints of a
// recording oracle: Dir is the journal directory (required), EveryEvents the
// per-thread checkpoint cadence in events, Interval an optional wall-clock
// cadence, Keep the number of generations retained. See
// core.CheckpointPolicy for the field semantics.
type CheckpointConfig = core.CheckpointPolicy

// WithCheckpoint makes a recording oracle periodically persist its
// in-progress trace as checkpoint generations in cfg.Dir, so that a crashed
// run can be salvaged with Recover instead of losing the whole reference
// execution. Checkpoint writes happen on a background goroutine — never on
// the event hot path — and write failures degrade Health without affecting
// the recording itself.
func WithCheckpoint(cfg CheckpointConfig) RecordOption { return core.WithCheckpoint(cfg) }

// Provenance records where a trace set came from when it was not produced by
// a clean end-of-run Finish: the checkpoint generation it was written as
// (with lineage when the online-learning lifecycle minted it), and whether
// it was salvaged by crash recovery.
type Provenance = model.Provenance

// ProvKind says how a journaled generation was minted; see Provenance.
type ProvKind = model.ProvKind

// Generation mint kinds: a plain (seed or record-mode) checkpoint, a
// shadow-model promotion, a post-promotion rollback.
const (
	ProvCheckpoint = model.ProvCheckpoint
	ProvPromotion  = model.ProvPromotion
	ProvRollback   = model.ProvRollback
)

// LearnPolicy configures the guarded model lifecycle of an online-learning
// oracle: the scoring epoch, the promotion hysteresis and margin, the
// post-promotion watch window, the rollback cooldown, and the optional
// generation journal directory. The zero value selects defaults and keeps
// generations in memory.
type LearnPolicy = core.LearnPolicy

// ModelInfo is a snapshot of an oracle's model lifecycle: whether learning
// is enabled, the lifecycle state, the serving generation, and the
// promotion/rollback/epoch counters.
type ModelInfo = core.ModelInfo

// predictConfig is assembled from PredictOptions.
type predictConfig struct {
	learn   *LearnPolicy
	recOpts []RecordOption
}

// PredictOption configures a predicting oracle beyond its prediction
// Config; today that means online learning.
type PredictOption func(*predictConfig)

// WithOnlineLearning turns a predicting oracle into an always-on one: the
// loaded trace keeps serving predictions while every thread's live event
// stream is re-recorded as a shadow grammar; a background manager scores
// both models over tumbling epochs and promotes the shadow only when it
// out-predicts the serving model with hysteresis, rolling the promotion
// back automatically if it regresses in its watch window. RecordOptions
// configure the shadow recorders — the same budgets and clocks a recording
// oracle takes (WithMaxEvents, WithGrammarBudget, WithClock, ...).
func WithOnlineLearning(pol LearnPolicy, opts ...RecordOption) PredictOption {
	return func(c *predictConfig) {
		c.learn = &pol
		c.recOpts = append(c.recOpts, opts...)
	}
}

// RecoveryReport describes what Recover did: the generation used and the
// generations skipped, with reasons.
type RecoveryReport = tracefile.RecoveryReport

// Recover salvages the freshest loadable checkpoint generation from a
// journal directory written by WithCheckpoint. The recovered trace set is a
// prefix of the crashed recording: every thread is marked truncated and the
// set carries Salvaged provenance. The report is non-nil even on error and
// lists every generation that had to be skipped (torn write, bad CRC, ...).
func Recover(dir string) (*TraceSet, *RecoveryReport, error) {
	return tracefile.Recover(dir)
}

// State is the oracle's degradation state (see Health).
type State = core.State

// Degradation states: a Healthy oracle answers normally; a Degraded oracle
// failed open (contained internal panic, or breached record budget); a
// Quarantined oracle had its predictions pulled by the divergence watchdog
// and recovers automatically when accuracy returns.
const (
	Healthy     = core.StateHealthy
	Degraded    = core.StateDegraded
	Quarantined = core.StateQuarantined
)

// Health is a snapshot of the oracle's reliability state: the aggregate
// degradation state, the first failure cause, and failure counters.
type Health = core.Health

// Oracle is a process-wide Pythia instance, either recording or predicting.
//
// Every exported method fails open (panic containment): an internal Pythia
// panic is recovered and degrades the oracle instead of crashing the host
// runtime. Poll Health to observe degradation.
// pythia:contained
type Oracle struct {
	sess *core.Session
}

// NewRecordOracle starts a recording (reference execution) oracle.
// Timestamps are recorded with a monotonic wall clock unless configured
// otherwise.
func NewRecordOracle(opts ...RecordOption) *Oracle {
	return &Oracle{sess: core.NewRecordSession(opts...)}
}

// NewPredictOracle starts a predicting oracle from an in-memory trace set.
// With WithOnlineLearning the oracle additionally learns from the live
// stream under the guarded model lifecycle.
func NewPredictOracle(ts *TraceSet, cfg Config, opts ...PredictOption) (*Oracle, error) {
	var pc predictConfig
	for _, o := range opts {
		o(&pc)
	}
	if pc.learn != nil {
		sess, err := core.NewLearningSession(ts, cfg, *pc.learn, pc.recOpts...)
		if err != nil {
			return nil, err
		}
		return &Oracle{sess: sess}, nil
	}
	sess, err := core.NewPredictSession(ts, cfg)
	if err != nil {
		return nil, err
	}
	return &Oracle{sess: sess}, nil
}

// LoadOracle starts a predicting oracle from a trace file.
func LoadOracle(path string, cfg Config, opts ...PredictOption) (*Oracle, error) {
	ts, err := tracefile.Load(path)
	if err != nil {
		return nil, fmt.Errorf("pythia: loading trace: %w", err)
	}
	return NewPredictOracle(ts, cfg, opts...)
}

// Recording reports whether the oracle is in record mode.
func (o *Oracle) Recording() bool { return o.sess.Mode() == core.ModeRecord }

// Health returns a snapshot of the oracle's reliability state: Healthy,
// Degraded (fail-open after a contained panic or a breached record budget)
// or Quarantined (divergence watchdog), with the first failure cause and
// failure counters. Safe to call from any goroutine.
func (o *Oracle) Health() Health { return o.sess.Health() }

// Intern returns the event ID for a key point name, optionally discriminated
// by payload values (e.g. a destination rank): Intern("MPI_Send", 3) and
// Intern("MPI_Send", 5) are distinct events. On a degraded oracle Intern
// returns an inert ID (-1) that Submit ignores.
func (o *Oracle) Intern(name string, args ...int64) (id ID) {
	if o.sess.Failed() {
		return -1
	}
	defer o.sess.Contain("Oracle.Intern")
	return o.sess.Registry().InternArgs(name, args...)
}

// Lookup resolves an already-interned descriptor without creating it.
func (o *Oracle) Lookup(name string, args ...int64) (id ID) {
	id = -1
	if o.sess.Failed() {
		return id
	}
	defer o.sess.Contain("Oracle.Lookup")
	return o.sess.Registry().Lookup(name, args...)
}

// EventName returns the descriptor of an event ID.
func (o *Oracle) EventName(id ID) (name string) {
	defer o.sess.Contain("Oracle.EventName")
	return o.sess.Registry().Name(id)
}

// Thread returns the oracle handle for thread tid, creating it on first use.
// The handle is never nil: if thread creation fails internally the oracle
// degrades and the handle is inert.
func (o *Oracle) Thread(tid int32) *Thread { return o.sess.Thread(tid) }

// Finish ends a recording oracle and returns its trace set. It returns an
// error — never panics — when the oracle is not recording or has degraded.
func (o *Oracle) Finish() (ts *TraceSet, err error) {
	defer o.sess.ContainTo("Oracle.Finish", &err)
	return o.sess.FinishRecord()
}

// CheckpointNow synchronously writes a checkpoint generation (record mode
// with WithCheckpoint only; steady-state checkpointing needs no manual
// calls). It exists for hosts that want a durable cut at a known boundary,
// e.g. the end of an application phase.
func (o *Oracle) CheckpointNow() (err error) {
	defer o.sess.ContainTo("Oracle.CheckpointNow", &err)
	return o.sess.CheckpointNow()
}

// FinishAndSave ends a recording oracle and writes the trace file.
func (o *Oracle) FinishAndSave(path string) (err error) {
	defer o.sess.ContainTo("Oracle.FinishAndSave", &err)
	ts, err := o.sess.FinishRecord()
	if err != nil {
		return err
	}
	return tracefile.Save(path, ts)
}

// ModelInfo returns a snapshot of the oracle's model lifecycle. Oracles
// without online learning report Enabled=false and the "frozen" state.
func (o *Oracle) ModelInfo() (mi ModelInfo) {
	defer o.sess.Contain("Oracle.ModelInfo")
	return o.sess.ModelInfo()
}

// Promote forces an immediate promotion of the current shadow model,
// returning the minted generation number (online learning only; steady
// state promotes by score). The promoted model enters the normal watch
// window, so a regretted forced promotion still rolls back automatically.
func (o *Oracle) Promote() (gen uint64, err error) {
	defer o.sess.ContainTo("Oracle.Promote", &err)
	return o.sess.Promote()
}

// Rollback forces an immediate rollback to the previous generation,
// returning the minted generation number (online learning only).
func (o *Oracle) Rollback() (gen uint64, err error) {
	defer o.sess.ContainTo("Oracle.Rollback", &err)
	return o.sess.Rollback()
}

// Close releases the oracle's background machinery (the learning lifecycle
// manager and the checkpointer, when present). Idempotent; oracles without
// either need not call it.
func (o *Oracle) Close() {
	defer o.sess.Contain("Oracle.Close")
	o.sess.Close()
}

// SaveTraceSet writes a trace set to a file (exposed for tools).
func SaveTraceSet(path string, ts *TraceSet) error { return tracefile.Save(path, ts) }

// LoadTraceSet reads a trace file (exposed for tools).
func LoadTraceSet(path string) (*TraceSet, error) { return tracefile.Load(path) }
