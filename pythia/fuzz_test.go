package pythia_test

import (
	"testing"

	"repro/pythia"
)

// FuzzPredictNoisy throws arbitrary event streams — valid ids, ids beyond
// the descriptor table, far-out-of-range garbage, and -1 (the Lookup-miss
// value) — at a predict-mode Thread. Two invariants: nothing panics (the
// fail-open contract), and a cached predictor agrees exactly with a
// cache-disabled one on every answer (the cache is an optimisation, never
// a semantic fork — divergence here means the incremental cache drifted
// from the ground-truth walk).
func FuzzPredictNoisy(f *testing.F) {
	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	ids := []pythia.ID{rec.Intern("a"), rec.Intern("b"), rec.Intern("c")}
	th := rec.Thread(0)
	for i := 0; i < 200; i++ {
		th.Submit(ids[0])
		th.Submit(ids[1])
		if i%5 == 4 {
			th.Submit(ids[2])
		}
	}
	ts, err := rec.Finish()
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{0, 1, 0, 1, 2})
	f.Add([]byte{0, 1, 200, 0, 1, 255, 0, 1})
	f.Add([]byte{255, 255, 255, 130, 140, 150})

	f.Fuzz(func(t *testing.T, stream []byte) {
		cached, err := pythia.NewPredictOracle(ts, pythia.Config{})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := pythia.NewPredictOracle(ts, pythia.Config{DisableCache: true})
		if err != nil {
			t.Fatal(err)
		}
		tc, tp := cached.Thread(0), plain.Thread(0)
		tc.StartAtBeginning()
		tp.StartAtBeginning()
		for i, b := range stream {
			var id pythia.ID
			switch {
			case b < 128:
				id = ids[int(b)%len(ids)] // interned
			case b < 192:
				id = pythia.ID(b) // beyond the descriptor table
			case b < 255:
				id = pythia.ID(int32(b) << 20) // far garbage
			default:
				id = pythia.ID(-1) // Lookup miss value
			}
			tc.Submit(id)
			tp.Submit(id)
			pc, okc := tc.PredictAt(1)
			pp, okp := tp.PredictAt(1)
			if okc != okp || (okc && pc.EventID != pp.EventID) {
				t.Fatalf("step %d (byte %d): cached (%v, %v) != uncached (%v, %v)",
					i, b, pc, okc, pp, okp)
			}
			if i%9 == 0 {
				sc := tc.PredictSequence(4)
				sp := tp.PredictSequence(4)
				if len(sc) != len(sp) {
					t.Fatalf("step %d: sequence lengths %d vs %d", i, len(sc), len(sp))
				}
				for j := range sc {
					if sc[j].EventID != sp[j].EventID {
						t.Fatalf("step %d: sequence[%d] %v vs %v", i, j, sc[j], sp[j])
					}
				}
			}
		}
		if h := cached.Health(); h.PanicsContained != 0 {
			t.Fatalf("noisy stream caused %d contained panics (cause %q)", h.PanicsContained, h.Cause)
		}
		if h := plain.Health(); h.PanicsContained != 0 {
			t.Fatalf("noisy stream caused %d contained panics uncached (cause %q)", h.PanicsContained, h.Cause)
		}
	})
}
