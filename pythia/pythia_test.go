package pythia_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/pythia"
)

// recordLoop records n iterations of (step, flush every 10) with a virtual
// clock: step takes 1µs, flush 50µs.
func recordLoop(n int) *pythia.Oracle {
	var now int64
	o := pythia.NewRecordOracle(pythia.WithClock(func() int64 { return now }))
	step := o.Intern("step")
	flush := o.Intern("flush")
	th := o.Thread(0)
	for i := 0; i < n; i++ {
		now += 1000
		th.SubmitAt(step, now)
		if i%10 == 9 {
			now += 50_000
			th.SubmitAt(flush, now)
		}
	}
	return o
}

func TestPublicAPIRoundTrip(t *testing.T) {
	o := recordLoop(200)
	path := filepath.Join(t.TempDir(), "loop.pythia")
	if err := o.FinishAndSave(path); err != nil {
		t.Fatal(err)
	}

	p, err := pythia.LoadOracle(path, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Recording() {
		t.Fatal("loaded oracle claims to be recording")
	}
	step := p.Lookup("step")
	flush := p.Lookup("flush")
	if step < 0 || flush < 0 {
		t.Fatal("event ids lost across save/load")
	}
	if p.EventName(step) != "step" {
		t.Fatalf("EventName = %q", p.EventName(step))
	}

	th := p.Thread(0)
	// Attach mid-run.
	for i := 0; i < 25; i++ {
		th.Submit(step)
	}
	pred, ok := th.PredictAt(1)
	if !ok {
		t.Fatal("no prediction")
	}
	if got := p.EventName(pythia.ID(pred.EventID)); got != "step" && got != "flush" {
		t.Fatalf("predicted %q", got)
	}
}

func TestDurationUntilFlush(t *testing.T) {
	o := recordLoop(500)
	ts, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	th := p.Thread(0)
	th.StartAtBeginning()
	// Observe the first full block plus one step: position = step #11.
	step := p.Lookup("step")
	flush := p.Lookup("flush")
	for i := 0; i < 10; i++ {
		th.Submit(step)
	}
	th.Submit(flush)
	th.Submit(step)
	pred, ok := th.PredictDurationUntil(flush, 32)
	if !ok {
		t.Fatal("no flush prediction")
	}
	// 9 more steps at 1µs plus the 50µs flush = ~59µs.
	if pred.ExpectedNs < 50_000 || pred.ExpectedNs > 70_000 {
		t.Fatalf("expected ~59µs to flush, got %v", time.Duration(int64(pred.ExpectedNs)))
	}
	if pred.Distance != 10 {
		t.Fatalf("flush distance = %d, want 10", pred.Distance)
	}
}

func TestWithoutTimestampsYieldsZeroDurations(t *testing.T) {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	a := o.Intern("a")
	th := o.Thread(0)
	for i := 0; i < 50; i++ {
		th.Submit(a)
	}
	ts, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Threads[0].Timing != nil {
		t.Fatal("timing model recorded despite WithoutTimestamps")
	}
	p, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	th2 := p.Thread(0)
	th2.Submit(p.Lookup("a"))
	pred, ok := th2.PredictAt(1)
	if !ok {
		t.Fatal("no prediction")
	}
	if pred.ExpectedNs != 0 {
		t.Fatalf("ExpectedNs = %v without timing model", pred.ExpectedNs)
	}
}

func TestLoadOracleMissingFile(t *testing.T) {
	if _, err := pythia.LoadOracle("/nonexistent/trace.pythia", pythia.Config{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestInternPayloadSeparation(t *testing.T) {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	if o.Intern("MPI_Send", 1) == o.Intern("MPI_Send", 2) {
		t.Fatal("payloads not separated")
	}
	if o.Lookup("MPI_Send", 1) != o.Intern("MPI_Send", 1) {
		t.Fatal("lookup mismatch")
	}
}

func TestMultiThreadTraces(t *testing.T) {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	a := o.Intern("a")
	b := o.Intern("b")
	o.Thread(0).Submit(a)
	o.Thread(0).Submit(a)
	o.Thread(1).Submit(b)
	o.Thread(1).Submit(b)
	ts, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Threads) != 2 {
		t.Fatalf("threads = %d", len(ts.Threads))
	}
	p, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t0 := p.Thread(0)
	t0.Submit(p.Lookup("a"))
	if pred, ok := t0.PredictAt(1); !ok || pred.EventID != int32(a) {
		t.Fatalf("thread 0 prediction = %v %v", pred, ok)
	}
	t1 := p.Thread(1)
	t1.Submit(p.Lookup("b"))
	if pred, ok := t1.PredictAt(1); !ok || pred.EventID != int32(b) {
		t.Fatalf("thread 1 prediction = %v %v", pred, ok)
	}
}

// Example demonstrates the documented record→predict workflow.
func Example() {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	work := o.Intern("work")
	sync := o.Intern("sync")
	th := o.Thread(0)
	for i := 0; i < 30; i++ {
		th.Submit(work)
		th.Submit(work)
		th.Submit(sync)
	}
	ts, err := o.Finish()
	if err != nil {
		panic(err)
	}

	p, _ := pythia.NewPredictOracle(ts, pythia.Config{})
	pt := p.Thread(0)
	pt.Submit(p.Lookup("work"))
	pt.Submit(p.Lookup("work"))
	pred, _ := pt.PredictAt(1)
	fmt.Println(p.EventName(pythia.ID(pred.EventID)))
	// Output: sync
}
