// Package client is the remote counterpart of the pythia package: it
// speaks the pythiad wire protocol and exposes the same Oracle/Thread
// method set as the in-process library, so a runtime swaps local for
// remote predictions with one constructor change:
//
//	o, err := pythia.LoadOracle("bt.small.pythia", pythia.Config{})   // local
//	o, err := client.Connect("oracle:9137", "bt.small", client.Config{}) // remote
//
// Everything after the constructor is identical — Intern, Thread, Submit,
// PredictAt, PredictSequence, PredictDurationUntil, Health — and the
// predictions themselves are bit-identical to an in-process oracle replaying
// the same event stream (the protocol ships float fields as raw IEEE-754
// bits and the client interns against the server's own event table).
//
// Like the in-process oracle, the remote one fails open: a dead daemon or a
// torn connection never panics or blocks the host runtime — Submit becomes
// a no-op, predictions return ok=false, and Health reports Degraded with
// the transport cause.
//
// Submissions are pipelined: Thread.Submit buffers locally and ships a
// one-way SubmitBatch frame when the buffer fills or a prediction needs the
// stream position to be current, so the per-event cost stays far below a
// network round trip.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pythia"
)

// Defaults for Config zero values.
const (
	DefaultDialTimeout    = 5 * time.Second
	DefaultRequestTimeout = 10 * time.Second
	DefaultSubmitFlush    = 64
)

// Config tunes a client connection; the zero value selects defaults.
type Config struct {
	// DialTimeout bounds connection establishment plus the protocol
	// handshake. 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// RequestTimeout bounds each request/response round trip (and each
	// one-way batch write). 0 means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// SubmitFlush is the number of buffered submissions that triggers a
	// one-way SubmitBatch flush. 0 means DefaultSubmitFlush; 1 disables
	// batching.
	SubmitFlush int
	// SharedMem asks for the shared-memory ring transport when the
	// connection lands on a unix socket: per-thread SPSC rings in an
	// mmap'd segment, zero syscalls on the steady-state Submit path. A
	// refused or failed negotiation silently keeps the socket transport
	// (the shm → uds fail-open fallback); Client.Transport reports the
	// tier that actually engaged.
	SharedMem bool
	// ShmDir is where the segment file is created ("" = /dev/shm when
	// present, else the system temp directory). Only read with SharedMem.
	ShmDir string
	// Predict is accepted for constructor symmetry with the in-process
	// oracle; prediction tuning lives server-side, so it is ignored.
	Predict pythia.Config
}

// RemoteError is a protocol Error frame returned by the server as the
// response to a request.
type RemoteError struct {
	Code wire.Code
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("pythiad: %s: %s", e.Code, e.Msg)
}

// errClosed is the sticky error of an explicitly closed client.
var errClosed = errors.New("client: closed")

// Client is one connection to a pythiad daemon. It is safe for concurrent
// use; request/response cycles are serialized internally. A transport
// failure is sticky: every later operation fails open until the client is
// re-dialed.
type Client struct {
	cfg     Config
	network string // "tcp" or "unix", fixed at Dial

	mu     sync.Mutex
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	err    error  // sticky transport/protocol failure
	closed bool   // Close has run; operations fail open
	buf    []byte // frame read buffer
	out    []byte // payload encode buffer

	// shm is non-nil once shared-memory negotiation succeeds (written in
	// Dial before the client is shared, read-only afterwards).
	shm *clientShm
}

// Transport reports the tier this connection actually negotiated:
// "shm" (shared-memory rings over a unix control socket), "unix", or "tcp".
func (c *Client) Transport() string {
	if c.shm != nil {
		return "shm"
	}
	return c.network
}

// Dial connects to a pythiad daemon and performs the protocol handshake.
// addr is a transport address — "host:port" or "tcp://host:port" for TCP,
// "unix:///path/to.sock" for a unix-domain socket — or a comma-separated
// list tried in order, which is how a co-located client spells the
// uds → tcp fallback: "unix:///run/pythiad.sock,127.0.0.1:9137". With
// Config.SharedMem set, a unix connection is upgraded to shared-memory
// rings when the daemon accepts (the shm → uds half of the chain).
func Dial(addr string, cfg Config) (*Client, error) {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.SubmitFlush <= 0 {
		cfg.SubmitFlush = DefaultSubmitFlush
	}
	var errs []error
	for _, a := range strings.Split(addr, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		c, err := dialOne(a, cfg)
		if err == nil {
			return c, nil
		}
		errs = append(errs, err)
	}
	if len(errs) == 0 {
		return nil, fmt.Errorf("client: no address in %q", addr)
	}
	return nil, errors.Join(errs...)
}

// dialOne connects to a single transport address.
func dialOne(addr string, cfg Config) (*Client, error) {
	nc, network, err := transport.Dial(addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
	}
	c := &Client{
		cfg:     cfg,
		network: network,
		nc:      nc,
		br:      bufio.NewReader(nc),
		bw:      bufio.NewWriter(nc),
		buf:     make([]byte, 0, 4096),
		out:     make([]byte, 0, 1024),
	}
	if err := c.handshake(); err != nil {
		if cerr := nc.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	if cfg.SharedMem && network == transport.NetUnix {
		c.mu.Lock()
		c.negotiateShm()
		c.mu.Unlock()
	}
	return c, nil
}

func (c *Client) handshake() error {
	if err := c.nc.SetDeadline(time.Now().Add(c.cfg.DialTimeout)); err != nil {
		return fmt.Errorf("client: handshake deadline: %w", err)
	}
	c.out = wire.AppendHello(c.out[:0])
	if err := wire.WriteFrame(c.bw, wire.THello, c.out); err != nil {
		return fmt.Errorf("client: hello: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("client: hello: %w", err)
	}
	t, payload, err := wire.ReadFrame(c.br, &c.buf)
	if err != nil {
		return fmt.Errorf("client: hello response: %w", err)
	}
	if t == wire.TError {
		code, msg, perr := wire.ParseError(payload)
		if perr != nil {
			return fmt.Errorf("client: hello response: %w", perr)
		}
		return &RemoteError{Code: code, Msg: msg}
	}
	if t != wire.THelloOK {
		return fmt.Errorf("client: hello response: unexpected %s frame", t)
	}
	v, err := wire.ParseHelloOK(payload)
	if err != nil {
		return fmt.Errorf("client: hello response: %w", err)
	}
	if v != wire.Version {
		return fmt.Errorf("client: server speaks protocol version %d, this client version %d", v, wire.Version)
	}
	return c.nc.SetDeadline(time.Time{})
}

// Close flushes and closes the connection. Further operations fail open.
// A transport failure latched before Close stays visible through Err — a
// clean close must not erase the record that the run broke.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	ferr := c.bw.Flush()
	cerr := c.nc.Close()
	if c.err == nil {
		c.err = errClosed
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Err returns the sticky transport error: nil while the connection is
// healthy or after a clean Close, the original failure otherwise. A load
// generator checks this once at the end of a run instead of instrumenting
// every call.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if errors.Is(c.err, errClosed) {
		return nil
	}
	return c.err
}

// fail latches the first transport failure; the caller holds c.mu.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return c.err
}

// note is fail for callers that already have an error path of their own.
func (c *Client) note(err error) {
	if c.err == nil {
		c.err = err
	}
}

// writeOneWay ships a frame that expects no response. Caller holds c.mu.
func (c *Client) writeOneWay(t wire.Type, payload []byte) error {
	if c.err != nil {
		return c.err
	}
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout)); err != nil {
		return c.fail(err)
	}
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		return c.fail(err)
	}
	return nil
}

// roundTrip ships a request and reads its response, which must be either
// want or an Error frame. The returned payload aliases the client's read
// buffer: parse it before releasing c.mu. Caller holds c.mu.
func (c *Client) roundTrip(t wire.Type, payload []byte, want wire.Type) ([]byte, error) {
	if c.err != nil {
		return nil, c.err
	}
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	if err := c.nc.SetDeadline(deadline); err != nil {
		return nil, c.fail(err)
	}
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		return nil, c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.fail(err)
	}
	rt, resp, err := wire.ReadFrame(c.br, &c.buf)
	if err != nil {
		return nil, c.fail(err)
	}
	if rt == wire.TError {
		code, msg, perr := wire.ParseError(resp)
		if perr != nil {
			return nil, c.fail(perr)
		}
		// An Error response keeps request/response pairing intact; the
		// connection stays usable, so the failure is not sticky.
		return nil, &RemoteError{Code: code, Msg: msg}
	}
	if rt != want {
		return nil, c.fail(fmt.Errorf("client: expected %s response, got %s", want, rt))
	}
	return resp, nil
}

// openSession opens one (tenant, tid) session. Caller holds c.mu.
func (c *Client) openSession(tenant string, tid int32, flags uint8) (wire.SessionOpened, error) {
	c.out = wire.AppendOpenSession(c.out[:0], wire.OpenSession{TID: tid, Flags: flags, Tenant: tenant})
	resp, err := c.roundTrip(wire.TOpenSession, c.out, wire.TSessionOpened)
	if err != nil {
		return wire.SessionOpened{}, err
	}
	so, err := wire.ParseSessionOpened(resp)
	if err != nil {
		return wire.SessionOpened{}, c.fail(err)
	}
	return so, nil
}

// Oracle opens a remote oracle over one tenant (a named trace in the
// daemon's trace directory). The returned Oracle mirrors the in-process
// pythia.Oracle API. Multiple oracles may share one client.
func (c *Client) Oracle(tenant string) (*Oracle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The meta session (tid -1) pins the tenant in the daemon's store for
	// the life of this connection and fetches the event table the trace
	// was recorded with, so local interning assigns the same IDs the
	// server-side registry holds.
	so, err := c.openSession(tenant, -1, wire.FlagWantEvents)
	if err != nil {
		return nil, err
	}
	reg, err := events.FromNames(so.Events)
	if err != nil {
		return nil, c.fail(fmt.Errorf("client: tenant %q event table: %w", tenant, err))
	}
	return &Oracle{
		c:       c,
		tenant:  tenant,
		reg:     reg,
		meta:    so.Session,
		threads: make(map[int32]*Thread),
	}, nil
}

// Connect dials a daemon and opens one tenant's oracle in one call — the
// remote equivalent of pythia.LoadOracle. Closing the oracle closes the
// connection.
func Connect(addr, tenant string, cfg Config) (*Oracle, error) {
	c, err := Dial(addr, cfg)
	if err != nil {
		return nil, err
	}
	o, err := c.Oracle(tenant)
	if err != nil {
		if cerr := c.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	o.owned = true
	return o, nil
}

// Oracle is a remote predicting oracle over one tenant. Like the
// in-process Oracle it is safe for concurrent Thread lookup and interning,
// and each Thread handle must be used by one goroutine at a time.
type Oracle struct {
	c      *Client
	tenant string
	reg    *events.Registry
	meta   uint32
	owned  bool // Connect-created: Close closes the client too

	mu      sync.Mutex
	threads map[int32]*Thread
	openErr error // first session-open refusal, surfaced via Health
}

// Tenant returns the tenant name this oracle serves.
func (o *Oracle) Tenant() string { return o.tenant }

// Transport reports the connection's negotiated transport tier
// ("tcp", "unix", or "shm").
func (o *Oracle) Transport() string { return o.c.Transport() }

// Close closes the oracle's meta session (releasing the daemon-side tenant
// pin) and, for Connect-created oracles, the underlying connection.
func (o *Oracle) Close() error {
	o.c.mu.Lock()
	o.c.out = wire.AppendCloseSession(o.c.out[:0], o.meta)
	_, err := o.c.roundTrip(wire.TCloseSession, o.c.out, wire.TSessionClosed)
	o.c.mu.Unlock()
	if o.owned {
		cerr := o.c.Close()
		if err == nil {
			err = cerr
		}
	}
	return err
}

// Intern returns the event ID for a key point name, optionally
// discriminated by payload values. IDs are assigned exactly as the
// server-side registry assigned them when the trace was recorded, so a
// submitted ID means the same event on both ends; names the trace has
// never seen get fresh local IDs that the server treats as unknown events,
// exactly like an in-process predicting oracle.
func (o *Oracle) Intern(name string, args ...int64) pythia.ID {
	return o.reg.InternArgs(name, args...)
}

// Lookup resolves an already-interned descriptor without creating it.
func (o *Oracle) Lookup(name string, args ...int64) pythia.ID {
	return o.reg.Lookup(name, args...)
}

// EventName returns the descriptor of an event ID.
func (o *Oracle) EventName(id pythia.ID) string { return o.reg.Name(id) }

// Recording reports whether the oracle is recording; remote oracles only
// predict.
func (o *Oracle) Recording() bool { return false }

// noteOpenErr records the first session-open refusal for Health.
func (o *Oracle) noteOpenErr(err error) {
	o.mu.Lock()
	if o.openErr == nil {
		o.openErr = err
	}
	o.mu.Unlock()
}

// Thread returns the oracle handle for thread tid, creating it on first
// use. The handle is never nil; if the remote session cannot be opened the
// handle is inert and the oracle reports Degraded.
func (o *Oracle) Thread(tid int32) *Thread {
	o.mu.Lock()
	defer o.mu.Unlock()
	if t, ok := o.threads[tid]; ok {
		return t
	}
	t := &Thread{
		o:       o,
		tid:     tid,
		pending: make([]int32, 0, o.c.cfg.SubmitFlush),
	}
	o.threads[tid] = t
	return t
}

// flushAll drains every thread's buffered submissions into the write
// buffer, so a Health snapshot reflects everything submitted so far; the
// Health round trip itself pushes the frames onto the socket. Caller must
// NOT hold c.mu.
func (o *Oracle) flushAll() {
	o.mu.Lock()
	threads := make([]*Thread, 0, len(o.threads))
	for _, t := range o.threads {
		threads = append(threads, t)
	}
	o.mu.Unlock()
	c := o.c
	c.mu.Lock()
	for _, t := range threads {
		t.flushLocked(c)
	}
	c.mu.Unlock()
}

// Health returns the tenant's aggregate degradation state as reported by
// the daemon, folded with any client-side failure: a broken transport or a
// refused session means predictions are not being served, which is a
// Degraded condition here even though the daemon may be healthy.
func (o *Oracle) Health() pythia.Health {
	o.flushAll()
	c := o.c
	c.mu.Lock()
	c.out = wire.AppendHealth(c.out[:0], o.tenant)
	resp, err := c.roundTrip(wire.THealth, c.out, wire.THealthInfo)
	var hi wire.HealthInfo
	if err == nil {
		hi, err = wire.ParseHealthInfo(resp)
		if err != nil {
			err = c.fail(err)
		}
	}
	c.mu.Unlock()

	var h pythia.Health
	if err != nil {
		h.State = pythia.Degraded
		h.Cause = "client: " + err.Error()
		return h
	}
	h.State = stateFromWire(hi.State)
	h.Cause = hi.Cause
	h.PanicsContained = hi.PanicsContained
	h.BudgetBreaches = hi.BudgetBreaches
	h.QuarantinedThreads = hi.QuarantinedThreads
	h.CheckpointFailures = hi.CheckpointFailures
	o.mu.Lock()
	openErr := o.openErr
	o.mu.Unlock()
	if openErr != nil && h.State == pythia.Healthy {
		h.State = pythia.Degraded
		h.Cause = "client: " + openErr.Error()
	}
	return h
}

// stateFromWire maps a wire degradation state back onto the library's.
func stateFromWire(st uint8) pythia.State {
	switch st {
	case wire.StateDegraded:
		return pythia.Degraded
	case wire.StateQuarantined:
		return pythia.Quarantined
	default:
		return pythia.Healthy
	}
}

// Thread is the per-thread handle of a remote oracle, mirroring
// pythia.Thread: Submit, PredictAt, PredictSequence, PredictDurationUntil,
// StartAtBeginning. One submitting goroutine per handle, like the
// in-process library — but, also like the in-process library, Oracle.Health
// (and Flush) may be called from another goroutine, so the submit buffer
// carries its own lock.
type Thread struct {
	o   *Oracle
	tid int32

	// Session state, guarded by the client mutex c.mu.
	sid       uint32
	opened    bool
	startFlag bool // StartAtBeginning before the session exists

	inert atomic.Bool // session refused; fail open

	// Shared-memory fast path, owned by the submitting goroutine: once
	// ring is set, Submit becomes a single TryPush into the mapped ring —
	// no lock, no buffer, no syscall. shmTried latches so a failed bind
	// falls back to socket batching exactly once.
	ring     *transport.Ring
	ringIdx  int
	shmTried bool

	// pending is the submit buffer. Submit appends under pmu, and the
	// flush path drains under pmu while holding c.mu, so a monitoring
	// goroutine's Health/Flush never races the submitting goroutine.
	// Lock order: c.mu before pmu — Submit releases pmu before flushing.
	pmu     sync.Mutex
	pending []int32
}

// TID returns the thread identifier.
func (t *Thread) TID() int32 { return t.tid }

// ensureOpen opens the remote session on first use. Caller holds c.mu.
func (t *Thread) ensureOpen(c *Client) bool {
	if t.opened {
		return true
	}
	if t.inert.Load() || c.err != nil {
		return false
	}
	var flags uint8
	if t.startFlag {
		flags |= wire.FlagStartAtBeginning
	}
	so, err := c.openSession(t.o.tenant, t.tid, flags)
	if err != nil {
		// Refused (draining, session limit, …): the thread fails open and
		// stays inert; the refusal is visible through Oracle.Health.
		t.inert.Store(true)
		t.o.noteOpenErr(err)
		return false
	}
	t.sid = so.Session
	t.opened = true
	t.startFlag = false
	return true
}

// flushLocked drains the submit buffer into one SubmitBatch frame in the
// write buffer; it does not flush the socket. Caller holds c.mu.
func (t *Thread) flushLocked(c *Client) {
	t.pmu.Lock()
	if len(t.pending) == 0 {
		t.pmu.Unlock()
		return
	}
	if !t.ensureOpen(c) {
		t.pending = t.pending[:0]
		t.pmu.Unlock()
		return
	}
	c.out = wire.AppendSubmitBatch(c.out[:0], t.sid, t.pending)
	t.pending = t.pending[:0]
	t.pmu.Unlock()
	if err := c.writeOneWay(wire.TSubmitBatch, c.out); err != nil {
		c.note(err)
	}
}

// Flush ships any buffered submissions now, pushing them all the way onto
// the socket. Predictions flush implicitly; Flush exists for hosts that
// want the server-side stream position current before a quiet period, so
// unlike the fill-triggered batching inside Submit it does not leave the
// frame sitting in the write buffer.
func (t *Thread) Flush() {
	c := t.o.c
	c.mu.Lock()
	t.flushLocked(c)
	if c.err == nil {
		if err := c.bw.Flush(); err != nil {
			c.note(err)
		}
	}
	c.mu.Unlock()
}

// Submit notifies the oracle of an event. On a shared-memory connection
// the event goes straight into the thread's mapped ring — zero syscalls,
// zero allocations, single-digit nanoseconds. Otherwise submissions are
// buffered and shipped in one-way batches; a prediction on this thread
// flushes first, so the oracle always answers against the full submitted
// stream.
func (t *Thread) Submit(id pythia.ID) {
	if r := t.ring; r != nil {
		if r.TryPush(int32(id)) {
			return
		}
		t.pushSlow(int32(id))
		return
	}
	if t.inert.Load() {
		return
	}
	if !t.shmTried && t.o.c.shm != nil {
		// Bind before the first event is buffered, so a ring-bound thread
		// never has socket-buffered events to reorder behind ring entries.
		t.bindRing()
		if t.ring != nil {
			if t.ring.TryPush(int32(id)) {
				return
			}
			t.pushSlow(int32(id))
			return
		}
		if t.inert.Load() {
			return
		}
	}
	t.pmu.Lock()
	t.pending = append(t.pending, int32(id))
	full := len(t.pending) >= cap(t.pending)
	t.pmu.Unlock()
	if full {
		// Fill-triggered: encode the batch frame but let it ride the write
		// buffer out with the next round trip or explicit Flush — the
		// pipelining that keeps per-event cost below a syscall.
		c := t.o.c
		c.mu.Lock()
		t.flushLocked(c)
		c.mu.Unlock()
	}
}

// StartAtBeginning seeds prediction at the start of the reference trace.
func (t *Thread) StartAtBeginning() {
	if t.restartLocked() {
		// Drop the thread's ring pointer outside c.mu: the field belongs to
		// the submitting goroutine (this one) and is never written under the
		// lock, so plain reads on the Submit fast path stay race-free.
		t.ring = nil
		t.shmTried = false
	}
}

// restartLocked does the locked half of StartAtBeginning and reports
// whether the thread held a ring slot that was just released.
func (t *Thread) restartLocked() (hadRing bool) {
	c := t.o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if !t.opened {
		t.startFlag = true
		return false
	}
	// Mid-stream restart: flush what came before, then close and reopen
	// the session with the start flag. The daemon keeps one oracle thread
	// per (tenant, tid) per connection, so the reopened session continues
	// on the same thread — exactly the in-process StartAtBeginning.
	t.flushLocked(c)
	c.out = wire.AppendCloseSession(c.out[:0], t.sid)
	if _, err := c.roundTrip(wire.TCloseSession, c.out, wire.TSessionClosed); err != nil {
		t.inert.Store(true)
		t.o.noteOpenErr(err)
		return false
	}
	// The server unbound the session's ring while closing it; release the
	// client-side slot so the reopened session (or another thread) can
	// rebind on its next Submit.
	hadRing = t.releaseRingLocked(c)
	t.opened = false
	t.startFlag = true
	t.ensureOpen(c)
	return hadRing
}

// PredictAt predicts the event distance events from now. ok is false when
// the oracle has no answer — including when the daemon is unreachable.
func (t *Thread) PredictAt(distance int) (pythia.Prediction, bool) {
	c := t.o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	t.flushLocked(c)
	if !t.ensureOpen(c) {
		return pythia.Prediction{}, false
	}
	c.out = wire.AppendPredictAt(c.out[:0], t.sid, distance)
	resp, err := c.roundTrip(wire.TPredictAt, c.out, wire.TPrediction)
	if err != nil {
		return pythia.Prediction{}, false
	}
	pr, ok, perr := wire.ParsePrediction(resp)
	if perr != nil {
		c.note(perr)
		return pythia.Prediction{}, false
	}
	return pr, ok
}

// PredictSequence predicts the next n events (step i has Distance i+1).
// n is capped at wire.MaxPredictions, the most one response frame carries;
// the server clamps to the same bound.
func (t *Thread) PredictSequence(n int) []pythia.Prediction {
	if n > wire.MaxPredictions {
		n = wire.MaxPredictions
	}
	c := t.o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	t.flushLocked(c)
	if !t.ensureOpen(c) {
		return nil
	}
	c.out = wire.AppendPredictSequence(c.out[:0], t.sid, n)
	resp, err := c.roundTrip(wire.TPredictSequence, c.out, wire.TPredictions)
	if err != nil {
		return nil
	}
	preds, perr := wire.ParsePredictions(resp)
	if perr != nil {
		c.note(perr)
		return nil
	}
	return preds
}

// PredictDurationUntil predicts the time until the next occurrence of the
// event, looking at most maxDistance events ahead. It is computed from one
// PredictSequence round trip; the result is bit-identical to the
// in-process method, which scans the same per-step predictions.
func (t *Thread) PredictDurationUntil(id pythia.ID, maxDistance int) (pythia.Prediction, bool) {
	if maxDistance < 1 {
		return pythia.Prediction{}, false
	}
	for _, pr := range t.PredictSequence(maxDistance) {
		if pr.EventID == int32(id) {
			return pr, true
		}
	}
	return pythia.Prediction{}, false
}
