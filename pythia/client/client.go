// Package client is the remote counterpart of the pythia package: it
// speaks the pythiad wire protocol and exposes the same Oracle/Thread
// method set as the in-process library, so a runtime swaps local for
// remote predictions with one constructor change:
//
//	o, err := pythia.LoadOracle("bt.small.pythia", pythia.Config{})   // local
//	o, err := client.Connect("oracle:9137", "bt.small", client.Config{}) // remote
//
// Everything after the constructor is identical — Intern, Thread, Submit,
// PredictAt, PredictSequence, PredictDurationUntil, Health — and the
// predictions themselves are bit-identical to an in-process oracle replaying
// the same event stream (the protocol ships float fields as raw IEEE-754
// bits and the client interns against the server's own event table).
//
// Like the in-process oracle, the remote one fails open: a dead daemon or a
// torn connection never panics or blocks the host runtime — Submit becomes
// a no-op, predictions return ok=false, and Health reports Degraded with
// the transport cause.
//
// Unlike earlier versions, a transport failure is no longer permanent: the
// client keeps a bounded per-thread shadow buffer of recent submissions and
// a background goroutine redials the address list with jittered exponential
// backoff. When the daemon comes back — or a fallback address answers — the
// client resumes its parked server sessions (or reopens them) and replays
// the unacknowledged tail, so the server-side model converges back to the
// exact stream the host produced. While disconnected, Submit stays a cheap
// no-op and Health reports Degraded with the reconnect cause.
//
// Submissions are pipelined: Thread.Submit buffers locally and ships a
// one-way SubmitBatch frame when the buffer fills or a prediction needs the
// stream position to be current, so the per-event cost stays far below a
// network round trip.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/events"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pythia"
)

// Defaults for Config zero values.
const (
	DefaultDialTimeout       = 5 * time.Second
	DefaultRequestTimeout    = 10 * time.Second
	DefaultSubmitFlush       = 64
	DefaultShadowEvents      = 4096
	DefaultReconnectMinDelay = 50 * time.Millisecond

	// maxReconnectDelay caps the exponential backoff between redials.
	maxReconnectDelay = 2 * time.Second
	// replayChunk bounds one TReplay frame's id count during recovery.
	replayChunk = 4096
)

// Config tunes a client connection; the zero value selects defaults.
type Config struct {
	// DialTimeout bounds connection establishment plus the protocol
	// handshake. 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// RequestTimeout bounds each request/response round trip (and each
	// one-way batch write). 0 means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// SubmitFlush is the number of buffered submissions that triggers a
	// one-way SubmitBatch flush. 0 means DefaultSubmitFlush; 1 disables
	// batching.
	SubmitFlush int
	// SharedMem asks for the shared-memory ring transport when the
	// connection lands on a unix socket: per-thread SPSC rings in an
	// mmap'd segment, zero syscalls on the steady-state Submit path. A
	// refused or failed negotiation silently keeps the socket transport
	// (the shm → uds fail-open fallback); Client.Transport reports the
	// tier that actually engaged.
	SharedMem bool
	// ShmDir is where the segment file is created ("" = /dev/shm when
	// present, else the system temp directory). Only read with SharedMem.
	ShmDir string
	// DisableResume opts out of session resume: the client neither asks
	// the server for a resume token nor replays after a reconnect, and a
	// reconnected session starts cold.
	DisableResume bool
	// Heartbeat, when positive, round-trips a keepalive frame on that
	// interval from a background goroutine, detecting half-open
	// connections that would otherwise surface only at the next request.
	// 0 disables heartbeats.
	Heartbeat time.Duration
	// ShadowEvents is the per-thread capacity (rounded up to a power of
	// two) of the shadow buffer that makes post-reconnect replay possible.
	// 0 means DefaultShadowEvents; negative disables the shadow buffer
	// entirely, so every event in flight at a disconnect is dropped.
	ShadowEvents int
	// ReconnectMinDelay is the first redial backoff step; each failed
	// attempt doubles it up to an internal cap, with jitter. 0 means
	// DefaultReconnectMinDelay.
	ReconnectMinDelay time.Duration
	// Predict is accepted for constructor symmetry with the in-process
	// oracle; prediction tuning lives server-side, so it is ignored.
	Predict pythia.Config
}

// RemoteError is a protocol Error frame returned by the server as the
// response to a request.
type RemoteError struct {
	Code wire.Code
	Msg  string
	// RetryAfterMs is the server's backoff hint on CodeRetryLater
	// responses (0 when the server sent none).
	RetryAfterMs uint32
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("pythiad: %s: %s", e.Code, e.Msg)
}

// errClosed is the latched cause of an explicitly closed client.
var errClosed = errors.New("client: closed")

// Connection states. Submit reads the state with one atomic load, so the
// disconnected fast path costs a compare, not a lock.
const (
	stateConnected int32 = iota
	stateReconnecting
	stateClosed
)

// Stats are the client's cumulative resilience counters.
type Stats struct {
	// Reconnects counts completed reconnections (resumed or fresh).
	Reconnects uint64
	// DroppedEvents counts submissions lost across reconnects because
	// they had already been evicted from a thread's shadow buffer.
	DroppedEvents uint64
	// RetryLater counts CodeRetryLater responses (server-side shedding).
	RetryLater uint64
}

// Client is one connection to a pythiad daemon. It is safe for concurrent
// use; request/response cycles are serialized internally. A transport
// failure flips the client into a reconnecting state: operations fail open
// while a background goroutine redials, and the first failure stays
// visible through Err until a reconnect succeeds.
type Client struct {
	cfg   Config
	addrs []string // fallback list, parsed once at Dial, reused on redial

	// state is the connection lifecycle, readable without the lock.
	state atomic.Int32

	statReconnects atomic.Uint64
	statDropped    atomic.Uint64
	statRetryLater atomic.Uint64

	mu      sync.Mutex
	network string // "tcp" or "unix"; renegotiated on reconnect
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	cause   error  // first failure of the current outage; nil when healthy
	buf     []byte // frame read buffer
	out     []byte // payload encode buffer

	// resumeToken is the server's grant from the latest handshake; 0 when
	// the server offered none (or DisableResume).
	resumeToken  uint64
	resumeWindow time.Duration

	// oracles lists every oracle opened on this client, so a reconnect
	// can re-establish their sessions. Guarded by mu.
	oracles []*Oracle

	// shm is the negotiated shared-memory state. On disconnect the pointer
	// drops to nil and a reconnect negotiates a fresh segment; the old
	// mapping is intentionally leaked until process exit because a
	// submitting goroutine may still be mid-TryPush into it.
	shm atomic.Pointer[clientShm]

	quit chan struct{}  // closed by Close; stops background goroutines
	wg   sync.WaitGroup // joins the reconnect and heartbeat goroutines
}

// Transport reports the tier this connection actually negotiated:
// "shm" (shared-memory rings over a unix control socket), "unix", or "tcp".
func (c *Client) Transport() string {
	if c.shm.Load() != nil {
		return "shm"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.network
}

// Stats returns the cumulative resilience counters.
func (c *Client) Stats() Stats {
	return Stats{
		Reconnects:    c.statReconnects.Load(),
		DroppedEvents: c.statDropped.Load(),
		RetryLater:    c.statRetryLater.Load(),
	}
}

// ShardMap fetches the daemon's current cluster shard map, sending the
// caller's cached epoch along (daemons fold it into their max-wins epoch
// gossip). A daemon that is not clustered answers with a zero Map —
// Clustered() is false — which callers treat as "this daemon serves every
// tenant".
func (c *Client) ShardMap(cachedEpoch uint64) (cluster.Map, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = wire.AppendShardMap(c.out[:0], cachedEpoch)
	resp, err := c.roundTrip(wire.TShardMap, c.out, wire.TShardMapR)
	if err != nil {
		return cluster.Map{}, err
	}
	sm, err := wire.ParseShardMapR(resp)
	if err != nil {
		return cluster.Map{}, c.fail(err)
	}
	return cluster.Map{Epoch: sm.Epoch, Replicas: int(sm.Replicas), Daemons: sm.Daemons}, nil
}

// Dial connects to a pythiad daemon and performs the protocol handshake.
// addr is a transport address — "host:port" or "tcp://host:port" for TCP,
// "unix:///path/to.sock" for a unix-domain socket — or a comma-separated
// list tried in order, which is how a co-located client spells the
// uds → tcp fallback: "unix:///run/pythiad.sock,127.0.0.1:9137". With
// Config.SharedMem set, a unix connection is upgraded to shared-memory
// rings when the daemon accepts (the shm → uds half of the chain). The
// same list, in the same order, is what the reconnect loop redials after
// a transport failure.
func Dial(addr string, cfg Config) (*Client, error) {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.SubmitFlush <= 0 {
		cfg.SubmitFlush = DefaultSubmitFlush
	}
	if cfg.ShadowEvents == 0 {
		cfg.ShadowEvents = DefaultShadowEvents
	}
	if cfg.ReconnectMinDelay <= 0 {
		cfg.ReconnectMinDelay = DefaultReconnectMinDelay
	}
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: no address in %q", addr)
	}
	var errs []error
	for _, a := range addrs {
		c, err := dialOne(a, addrs, cfg)
		if err == nil {
			return c, nil
		}
		errs = append(errs, err)
	}
	return nil, errors.Join(errs...)
}

// dialOne connects to a single transport address.
func dialOne(addr string, addrs []string, cfg Config) (*Client, error) {
	nc, network, err := transport.Dial(addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
	}
	c := &Client{
		cfg:     cfg,
		addrs:   addrs,
		network: network,
		nc:      nc,
		br:      bufio.NewReader(nc),
		bw:      bufio.NewWriter(nc),
		buf:     make([]byte, 0, 4096),
		out:     make([]byte, 0, 1024),
		quit:    make(chan struct{}),
	}
	token, window, err := handshakeConn(nc, c.br, c.bw, cfg)
	if err != nil {
		if cerr := nc.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	c.resumeToken = token
	c.resumeWindow = time.Duration(window) * time.Millisecond
	if cfg.SharedMem && network == transport.NetUnix {
		c.mu.Lock()
		c.negotiateShm()
		c.mu.Unlock()
	}
	if cfg.Heartbeat > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop()
	}
	return c, nil
}

// handshakeConn performs the Hello exchange on a fresh connection. It uses
// only local buffers so the reconnect goroutine can handshake a candidate
// connection without holding the client lock.
func handshakeConn(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, cfg Config) (token uint64, windowMs uint32, err error) {
	if err := nc.SetDeadline(time.Now().Add(cfg.DialTimeout)); err != nil {
		return 0, 0, fmt.Errorf("client: handshake deadline: %w", err)
	}
	var flags uint8
	if !cfg.DisableResume {
		flags |= wire.HelloFlagResume
	}
	if err := wire.WriteFrame(bw, wire.THello, wire.AppendHello(nil, flags)); err != nil {
		return 0, 0, fmt.Errorf("client: hello: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return 0, 0, fmt.Errorf("client: hello: %w", err)
	}
	var buf []byte
	t, payload, err := wire.ReadFrame(br, &buf)
	if err != nil {
		return 0, 0, fmt.Errorf("client: hello response: %w", err)
	}
	if t == wire.TError {
		code, msg, _, perr := wire.ParseErrorRetry(payload)
		if perr != nil {
			return 0, 0, fmt.Errorf("client: hello response: %w", perr)
		}
		return 0, 0, &RemoteError{Code: code, Msg: msg}
	}
	if t != wire.THelloOK {
		return 0, 0, fmt.Errorf("client: hello response: unexpected %s frame", t)
	}
	v, tok, window, err := wire.ParseHelloOK(payload)
	if err != nil {
		return 0, 0, fmt.Errorf("client: hello response: %w", err)
	}
	if v != wire.Version {
		return 0, 0, fmt.Errorf("client: server speaks protocol version %d, this client version %d", v, wire.Version)
	}
	return tok, window, nc.SetDeadline(time.Time{})
}

// Close detaches from the daemon (so the server releases rather than parks
// this client's sessions), flushes, closes the connection, and joins the
// background goroutines. Further operations fail open. A transport failure
// latched before Close stays visible through Err — a clean close must not
// erase the record that the run broke.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.state.Load() == stateClosed {
		c.mu.Unlock()
		return nil
	}
	wasConnected := c.state.Load() == stateConnected
	c.state.Store(stateClosed)
	if c.cause == nil {
		c.cause = errClosed
	}
	var ferr error
	if wasConnected {
		if c.resumeToken != 0 {
			if err := wire.WriteFrame(c.bw, wire.TDetach, nil); err != nil && ferr == nil {
				ferr = err
			}
		}
		if err := c.bw.Flush(); err != nil && ferr == nil {
			ferr = err
		}
	}
	cerr := c.nc.Close()
	c.mu.Unlock()
	close(c.quit)
	c.wg.Wait()
	if ferr != nil {
		return ferr
	}
	if wasConnected {
		return cerr
	}
	return nil
}

// Err returns the latched transport error: nil while the connection is
// healthy or after a clean Close, the first failure of the current outage
// otherwise. A successful reconnect clears it, so a load generator polling
// Err sees the outage end; a load generator that checks once at the end of
// a run sees whether it ended broken.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if errors.Is(c.cause, errClosed) {
		return nil
	}
	return c.cause
}

// fail routes a transport/protocol failure into the reconnect machinery
// and returns the latched cause. Caller holds c.mu.
func (c *Client) fail(err error) error {
	return c.disconnectLocked(err)
}

// note is fail for callers that already have an error path of their own.
func (c *Client) note(err error) {
	c.disconnectLocked(err)
}

// offlineErr returns nil when requests may proceed, the latched cause (or
// errClosed) otherwise. Caller holds c.mu.
func (c *Client) offlineErr() error {
	switch c.state.Load() {
	case stateConnected:
		return nil
	case stateClosed:
		if c.cause != nil {
			return c.cause
		}
		return errClosed
	default:
		if c.cause != nil {
			return c.cause
		}
		return errors.New("client: reconnecting")
	}
}

// writeOneWay ships a frame that expects no response. Caller holds c.mu.
func (c *Client) writeOneWay(t wire.Type, payload []byte) error {
	if err := c.offlineErr(); err != nil {
		return err
	}
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout)); err != nil {
		return c.fail(err)
	}
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		return c.fail(err)
	}
	return nil
}

// roundTrip ships a request and reads its response, which must be either
// want or an Error frame. The returned payload aliases the client's read
// buffer: parse it before releasing c.mu. Caller holds c.mu.
func (c *Client) roundTrip(t wire.Type, payload []byte, want wire.Type) ([]byte, error) {
	if err := c.offlineErr(); err != nil {
		return nil, err
	}
	return c.doRoundTrip(t, payload, want)
}

// doRoundTrip is roundTrip without the connection-state gate; the
// reconnect goroutine uses it to talk over a connection that is still
// being established. Caller holds c.mu.
func (c *Client) doRoundTrip(t wire.Type, payload []byte, want wire.Type) ([]byte, error) {
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	if err := c.nc.SetDeadline(deadline); err != nil {
		return nil, c.fail(err)
	}
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		return nil, c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.fail(err)
	}
	rt, resp, err := wire.ReadFrame(c.br, &c.buf)
	if err != nil {
		return nil, c.fail(err)
	}
	if rt == wire.TError {
		code, msg, retryMs, perr := wire.ParseErrorRetry(resp)
		if perr != nil {
			return nil, c.fail(perr)
		}
		if code == wire.CodeRetryLater {
			c.statRetryLater.Add(1)
		}
		// An Error response keeps request/response pairing intact; the
		// connection stays usable, so the failure does not trip reconnect.
		return nil, &RemoteError{Code: code, Msg: msg, RetryAfterMs: retryMs}
	}
	if rt != want {
		return nil, c.fail(fmt.Errorf("client: expected %s response, got %s", want, rt))
	}
	return resp, nil
}

// heartbeatLoop round-trips a keepalive frame on the configured interval,
// turning a half-open connection into a detected failure (and so a
// reconnect) without waiting for the next real request.
func (c *Client) heartbeatLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		if c.state.Load() == stateConnected {
			// A failed round trip latches the cause and starts the
			// reconnect loop via doRoundTrip's own failure path.
			_, _ = c.doRoundTrip(wire.THeartbeat, nil, wire.THeartbeatAck)
		}
		c.mu.Unlock()
	}
}

// openSession opens one (tenant, tid) session. Caller holds c.mu and has
// checked the connection state (the reconnect goroutine calls this on a
// connection that is still being established).
func (c *Client) openSession(tenant string, tid int32, flags uint8) (wire.SessionOpened, error) {
	c.out = wire.AppendOpenSession(c.out[:0], wire.OpenSession{TID: tid, Flags: flags, Tenant: tenant})
	resp, err := c.doRoundTrip(wire.TOpenSession, c.out, wire.TSessionOpened)
	if err != nil {
		return wire.SessionOpened{}, err
	}
	so, err := wire.ParseSessionOpened(resp)
	if err != nil {
		return wire.SessionOpened{}, c.fail(err)
	}
	return so, nil
}

// Oracle opens a remote oracle over one tenant (a named trace in the
// daemon's trace directory). The returned Oracle mirrors the in-process
// pythia.Oracle API. Multiple oracles may share one client.
func (c *Client) Oracle(tenant string) (*Oracle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.offlineErr(); err != nil {
		return nil, err
	}
	// The meta session (tid -1) pins the tenant in the daemon's store for
	// the life of this connection and fetches the event table the trace
	// was recorded with, so local interning assigns the same IDs the
	// server-side registry holds.
	so, err := c.openSession(tenant, -1, wire.FlagWantEvents)
	if err != nil {
		return nil, err
	}
	reg, err := events.FromNames(so.Events)
	if err != nil {
		return nil, c.fail(fmt.Errorf("client: tenant %q event table: %w", tenant, err))
	}
	o := &Oracle{
		c:          c,
		tenant:     tenant,
		reg:        reg,
		eventNames: append([]string(nil), so.Events...),
		meta:       so.Session,
		threads:    make(map[int32]*Thread),
	}
	c.oracles = append(c.oracles, o)
	return o, nil
}

// Connect dials a daemon and opens one tenant's oracle in one call — the
// remote equivalent of pythia.LoadOracle. Closing the oracle closes the
// connection.
func Connect(addr, tenant string, cfg Config) (*Oracle, error) {
	c, err := Dial(addr, cfg)
	if err != nil {
		return nil, err
	}
	o, err := c.Oracle(tenant)
	if err != nil {
		if cerr := c.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	o.owned = true
	return o, nil
}

// Oracle is a remote predicting oracle over one tenant. Like the
// in-process Oracle it is safe for concurrent Thread lookup and interning,
// and each Thread handle must be used by one goroutine at a time.
type Oracle struct {
	c      *Client
	tenant string
	reg    *events.Registry
	// eventNames is the server's event table at open time, kept verbatim
	// so a fresh reconnect can verify the (possibly restarted) daemon
	// still serves the same trace vocabulary.
	eventNames []string
	owned      bool // Connect-created: Close closes the client too

	// meta is the tenant-pinning session id; rewritten under c.mu when a
	// fresh reconnect reopens it.
	meta   uint32
	closed bool // guarded by c.mu; reconnects skip closed oracles

	mu      sync.Mutex
	threads map[int32]*Thread
	openErr error // first session-open refusal, surfaced via Health
}

// Tenant returns the tenant name this oracle serves.
func (o *Oracle) Tenant() string { return o.tenant }

// Transport reports the connection's negotiated transport tier
// ("tcp", "unix", or "shm").
func (o *Oracle) Transport() string { return o.c.Transport() }

// Close closes the oracle's meta session (releasing the daemon-side tenant
// pin) and, for Connect-created oracles, the underlying connection.
func (o *Oracle) Close() error {
	o.c.mu.Lock()
	o.closed = true
	var err error
	if o.c.state.Load() == stateConnected {
		o.c.out = wire.AppendCloseSession(o.c.out[:0], o.meta)
		_, err = o.c.roundTrip(wire.TCloseSession, o.c.out, wire.TSessionClosed)
	}
	o.c.mu.Unlock()
	if o.owned {
		cerr := o.c.Close()
		if err == nil {
			err = cerr
		}
	}
	return err
}

// Intern returns the event ID for a key point name, optionally
// discriminated by payload values. IDs are assigned exactly as the
// server-side registry assigned them when the trace was recorded, so a
// submitted ID means the same event on both ends; names the trace has
// never seen get fresh local IDs that the server treats as unknown events,
// exactly like an in-process predicting oracle.
func (o *Oracle) Intern(name string, args ...int64) pythia.ID {
	return o.reg.InternArgs(name, args...)
}

// Lookup resolves an already-interned descriptor without creating it.
func (o *Oracle) Lookup(name string, args ...int64) pythia.ID {
	return o.reg.Lookup(name, args...)
}

// EventName returns the descriptor of an event ID.
func (o *Oracle) EventName(id pythia.ID) string { return o.reg.Name(id) }

// Recording reports whether the oracle is recording; remote oracles only
// predict.
func (o *Oracle) Recording() bool { return false }

// noteOpenErr records the first session-open refusal for Health.
func (o *Oracle) noteOpenErr(err error) {
	o.mu.Lock()
	if o.openErr == nil {
		o.openErr = err
	}
	o.mu.Unlock()
}

// Thread returns the oracle handle for thread tid, creating it on first
// use. The handle is never nil; if the remote session cannot be opened the
// handle is inert and the oracle reports Degraded.
func (o *Oracle) Thread(tid int32) *Thread {
	o.mu.Lock()
	defer o.mu.Unlock()
	if t, ok := o.threads[tid]; ok {
		return t
	}
	t := &Thread{
		o:       o,
		tid:     tid,
		pending: make([]int32, 0, o.c.cfg.SubmitFlush),
	}
	if n := o.c.cfg.ShadowEvents; n > 0 {
		capPow2 := 1
		for capPow2 < n {
			capPow2 <<= 1
		}
		t.shadow = make([]int32, capPow2)
		t.shadowMask = uint64(capPow2 - 1)
	}
	o.threads[tid] = t
	return t
}

// flushAll drains every thread's buffered submissions into the write
// buffer, so a Health snapshot reflects everything submitted so far; the
// Health round trip itself pushes the frames onto the socket. Caller must
// NOT hold c.mu.
func (o *Oracle) flushAll() {
	o.mu.Lock()
	threads := make([]*Thread, 0, len(o.threads))
	for _, t := range o.threads {
		threads = append(threads, t)
	}
	o.mu.Unlock()
	c := o.c
	c.mu.Lock()
	for _, t := range threads {
		t.flushLocked(c)
	}
	c.mu.Unlock()
}

// Health returns the tenant's aggregate degradation state as reported by
// the daemon, folded with any client-side failure: a broken transport or a
// refused session means predictions are not being served, which is a
// Degraded condition here even though the daemon may be healthy. While the
// client is reconnecting, the cause of the outage is the reported cause.
func (o *Oracle) Health() pythia.Health {
	o.flushAll()
	c := o.c
	c.mu.Lock()
	c.out = wire.AppendHealth(c.out[:0], o.tenant)
	resp, err := c.roundTrip(wire.THealth, c.out, wire.THealthInfo)
	var hi wire.HealthInfo
	if err == nil {
		hi, err = wire.ParseHealthInfo(resp)
		if err != nil {
			err = c.fail(err)
		}
	}
	c.mu.Unlock()

	var h pythia.Health
	if err != nil {
		h.State = pythia.Degraded
		h.Cause = "client: " + err.Error()
		return h
	}
	h.State = stateFromWire(hi.State)
	h.Cause = hi.Cause
	h.PanicsContained = hi.PanicsContained
	h.BudgetBreaches = hi.BudgetBreaches
	h.QuarantinedThreads = hi.QuarantinedThreads
	h.CheckpointFailures = hi.CheckpointFailures
	h.Promotions = hi.Promotions
	h.Rollbacks = hi.Rollbacks
	o.mu.Lock()
	openErr := o.openErr
	o.mu.Unlock()
	if openErr != nil && h.State == pythia.Healthy {
		h.State = pythia.Degraded
		h.Cause = "client: " + openErr.Error()
	}
	return h
}

// ModelInfo queries the server for this tenant's model-lifecycle snapshot
// (the per-connection oracle serving this client): lifecycle state, serving
// generation, promotion/rollback/epoch counters. Pending submissions are
// flushed first so the counters reflect everything submitted so far.
func (o *Oracle) ModelInfo() (pythia.ModelInfo, error) {
	o.flushAll()
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = wire.AppendModelInfo(c.out[:0], o.tenant)
	resp, err := c.roundTrip(wire.TModelInfo, c.out, wire.TModelInfoR)
	if err != nil {
		return pythia.ModelInfo{}, err
	}
	wmi, err := wire.ParseModelInfoR(resp)
	if err != nil {
		return pythia.ModelInfo{}, c.fail(err)
	}
	mi := pythia.ModelInfo{
		Enabled:           wmi.Enabled,
		ServingGeneration: wmi.ServingGeneration,
		Promotions:        wmi.Promotions,
		Rollbacks:         wmi.Rollbacks,
		ShadowEpochs:      wmi.ShadowEpochs,
		Retained:          wmi.Retained,
	}
	switch wmi.State {
	case wire.ModelLearning:
		mi.State = "learning"
	case wire.ModelWatching:
		mi.State = "watching"
	default:
		mi.State = "frozen"
	}
	return mi, nil
}

// Promote forces a promotion of this tenant's shadow model on the server.
// A refusal (learning disabled, no shadow candidate yet) comes back as a
// *RemoteError with CodeLifecycle; the connection stays usable.
func (o *Oracle) Promote() (uint64, error) {
	o.flushAll()
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = wire.AppendPromote(c.out[:0], o.tenant)
	resp, err := c.roundTrip(wire.TPromote, c.out, wire.TPromoted)
	if err != nil {
		return 0, err
	}
	gen, err := wire.ParsePromoted(resp)
	if err != nil {
		return 0, c.fail(err)
	}
	return gen, nil
}

// Rollback forces a rollback to the previous generation on the server.
func (o *Oracle) Rollback() (uint64, error) {
	o.flushAll()
	c := o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = wire.AppendRollback(c.out[:0], o.tenant)
	resp, err := c.roundTrip(wire.TRollback, c.out, wire.TRolledBack)
	if err != nil {
		return 0, err
	}
	gen, err := wire.ParseRolledBack(resp)
	if err != nil {
		return 0, c.fail(err)
	}
	return gen, nil
}

// stateFromWire maps a wire degradation state back onto the library's.
func stateFromWire(st uint8) pythia.State {
	switch st {
	case wire.StateDegraded:
		return pythia.Degraded
	case wire.StateQuarantined:
		return pythia.Quarantined
	default:
		return pythia.Healthy
	}
}

// Thread is the per-thread handle of a remote oracle, mirroring
// pythia.Thread: Submit, PredictAt, PredictSequence, PredictDurationUntil,
// StartAtBeginning. One submitting goroutine per handle, like the
// in-process library — but, also like the in-process library, Oracle.Health
// (and Flush) may be called from another goroutine, so the submit buffer
// carries its own lock.
type Thread struct {
	o   *Oracle
	tid int32

	// Session state, guarded by the client mutex c.mu.
	sid       uint32
	opened    bool
	startFlag bool // StartAtBeginning before the session exists

	// sessBase anchors the server session's 1-based sequence numbers in
	// the thread's absolute stream: the event with absolute sequence s has
	// server sequence s-sessBase. Guarded by c.mu; rewritten whenever the
	// session is (re)opened from scratch.
	sessBase uint64

	// Reconnect recovery, guarded by c.mu. needReplay marks a thread whose
	// next producer-side flush must replay the shadow tail instead of
	// shipping pending; resumeFresh selects the reopen-from-scratch path
	// and resumeApplied is the absolute sequence the server has applied
	// when the session itself survived (resume).
	needReplay    bool
	resumeFresh   bool
	resumeApplied uint64

	inert atomic.Bool // session refused; fail open

	// Shadow buffer: the last len(shadow) submitted ids, owned entirely by
	// the submitting goroutine (replay runs on that goroutine too, so no
	// other goroutine ever reads these fields). shadowSeq is the absolute
	// count of events ever submitted on this thread.
	shadow     []int32
	shadowMask uint64
	shadowSeq  uint64
	replayBuf  []int32 // scratch for TReplay chunks, allocated on first use

	// Shared-memory fast path: once ring is set, Submit becomes a single
	// TryPush into the mapped ring — no lock, no buffer, no syscall. The
	// pointers are atomic because a reconnect strips them from another
	// goroutine; shmTried latches so a failed bind falls back to socket
	// batching once per connection epoch.
	ring     atomic.Pointer[transport.Ring]
	ringIdx  int
	shmOwner *clientShm // segment the bound ring belongs to, under c.mu
	shmTried atomic.Bool

	// pending is the submit buffer. Submit appends under pmu, and the
	// flush path drains under pmu while holding c.mu, so a monitoring
	// goroutine's Health/Flush never races the submitting goroutine.
	// Lock order: c.mu before pmu — Submit releases pmu before flushing.
	pmu     sync.Mutex
	pending []int32
}

// TID returns the thread identifier.
func (t *Thread) TID() int32 { return t.tid }

// shadowPush records an event in the thread's replay window. Called by the
// submitting goroutine on every Submit, before any transport work, so the
// shadow always holds a superset of what the server might not have seen.
func (t *Thread) shadowPush(id int32) {
	if t.shadow == nil {
		return
	}
	t.shadow[t.shadowSeq&t.shadowMask] = id
	t.shadowSeq++
}

// ensureOpen opens the remote session on first use. Caller holds c.mu.
func (t *Thread) ensureOpen(c *Client) bool {
	if t.opened {
		return true
	}
	if t.inert.Load() || c.offlineErr() != nil {
		return false
	}
	var flags uint8
	if t.startFlag {
		flags |= wire.FlagStartAtBeginning
	}
	so, err := c.openSession(t.o.tenant, t.tid, flags)
	if err != nil {
		// Refused (draining, session limit, …): the thread fails open and
		// stays inert; the refusal is visible through Oracle.Health.
		t.inert.Store(true)
		t.o.noteOpenErr(err)
		return false
	}
	t.sid = so.Session
	t.opened = true
	t.startFlag = false
	return true
}

// flushLocked drains the submit buffer into one SubmitBatch frame in the
// write buffer; it does not flush the socket. A thread awaiting replay is
// skipped — ordering requires the shadow tail to reach the server before
// anything newer, and only the submitting goroutine may read the shadow,
// so recovery waits for that goroutine's next syncLocked. Caller holds
// c.mu.
func (t *Thread) flushLocked(c *Client) {
	if t.needReplay {
		return
	}
	t.pmu.Lock()
	if len(t.pending) == 0 {
		t.pmu.Unlock()
		return
	}
	if !t.ensureOpen(c) {
		t.pending = t.pending[:0]
		t.pmu.Unlock()
		return
	}
	c.out = wire.AppendSubmitBatch(c.out[:0], t.sid, t.pending)
	t.pending = t.pending[:0]
	t.pmu.Unlock()
	if err := c.writeOneWay(wire.TSubmitBatch, c.out); err != nil {
		c.note(err)
	}
}

// syncLocked is flushLocked for paths that run on the submitting
// goroutine: it first performs any pending post-reconnect replay (which
// needs the shadow buffer only that goroutine may read). Caller holds
// c.mu.
func (t *Thread) syncLocked(c *Client) {
	if t.needReplay {
		t.replayLocked(c)
	}
	t.flushLocked(c)
}

// Flush ships any buffered submissions now, pushing them all the way onto
// the socket. Predictions flush implicitly; Flush exists for hosts that
// want the server-side stream position current before a quiet period, so
// unlike the fill-triggered batching inside Submit it does not leave the
// frame sitting in the write buffer.
func (t *Thread) Flush() {
	c := t.o.c
	c.mu.Lock()
	t.syncLocked(c)
	if c.state.Load() == stateConnected {
		if err := c.bw.Flush(); err != nil {
			c.note(err)
		}
	}
	c.mu.Unlock()
}

// Submit notifies the oracle of an event. On a shared-memory connection
// the event goes straight into the thread's mapped ring — zero syscalls,
// zero allocations, single-digit nanoseconds. Otherwise submissions are
// buffered and shipped in one-way batches; a prediction on this thread
// flushes first, so the oracle always answers against the full submitted
// stream. While the client is disconnected, Submit records the event in
// the shadow buffer and returns — the reconnect replay delivers it later.
func (t *Thread) Submit(id pythia.ID) {
	t.shadowPush(int32(id))
	if r := t.ring.Load(); r != nil {
		if r.TryPush(int32(id)) {
			return
		}
		t.pushSlow(int32(id))
		return
	}
	c := t.o.c
	if c.state.Load() != stateConnected {
		return
	}
	if t.inert.Load() {
		return
	}
	if !t.shmTried.Load() && c.shm.Load() != nil {
		// Bind before the first event is buffered, so a ring-bound thread
		// never has socket-buffered events to reorder behind ring entries.
		t.bindRing()
		if r := t.ring.Load(); r != nil {
			if r.TryPush(int32(id)) {
				return
			}
			t.pushSlow(int32(id))
			return
		}
		if t.inert.Load() {
			return
		}
	}
	t.pmu.Lock()
	t.pending = append(t.pending, int32(id))
	full := len(t.pending) >= cap(t.pending)
	t.pmu.Unlock()
	if full {
		// Fill-triggered: encode the batch frame but let it ride the write
		// buffer out with the next round trip or explicit Flush — the
		// pipelining that keeps per-event cost below a syscall.
		c.mu.Lock()
		t.syncLocked(c)
		c.mu.Unlock()
	}
}

// StartAtBeginning seeds prediction at the start of the reference trace.
func (t *Thread) StartAtBeginning() {
	if t.restartLocked() {
		// Drop the thread's ring pointer after the locked section: the
		// server unbound its side while closing the session, so the slot
		// is free for whoever binds next.
		t.ring.Store(nil)
		t.shmTried.Store(false)
	}
}

// restartLocked does the locked half of StartAtBeginning and reports
// whether the thread held a ring slot that was just released.
func (t *Thread) restartLocked() (hadRing bool) {
	c := t.o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if !t.opened {
		t.startFlag = true
		return false
	}
	// Mid-stream restart: flush what came before, then close and reopen
	// the session with the start flag. The daemon keeps one oracle thread
	// per (tenant, tid) per connection, so the reopened session continues
	// on the same thread — exactly the in-process StartAtBeginning.
	t.syncLocked(c)
	if !t.opened {
		// The sync above hit a refusal or an outage; the restart intent
		// survives in startFlag for the eventual reopen.
		t.startFlag = true
		return false
	}
	c.out = wire.AppendCloseSession(c.out[:0], t.sid)
	if _, err := c.roundTrip(wire.TCloseSession, c.out, wire.TSessionClosed); err != nil {
		t.inert.Store(true)
		t.o.noteOpenErr(err)
		return false
	}
	// The server unbound the session's ring while closing it; release the
	// client-side slot so the reopened session (or another thread) can
	// rebind on its next Submit.
	hadRing = t.releaseRingLocked(c)
	t.opened = false
	t.startFlag = true
	// The reopened session restarts server-side sequence numbering, and
	// this runs on the submitting goroutine, so shadowSeq is stable here.
	t.sessBase = t.shadowSeq
	t.ensureOpen(c)
	return hadRing
}

// PredictAt predicts the event distance events from now. ok is false when
// the oracle has no answer — including when the daemon is unreachable.
func (t *Thread) PredictAt(distance int) (pythia.Prediction, bool) {
	c := t.o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	t.syncLocked(c)
	if !t.ensureOpen(c) {
		return pythia.Prediction{}, false
	}
	c.out = wire.AppendPredictAt(c.out[:0], t.sid, distance)
	resp, err := c.roundTrip(wire.TPredictAt, c.out, wire.TPrediction)
	if err != nil {
		return pythia.Prediction{}, false
	}
	pr, ok, perr := wire.ParsePrediction(resp)
	if perr != nil {
		c.note(perr)
		return pythia.Prediction{}, false
	}
	return pr, ok
}

// PredictSequence predicts the next n events (step i has Distance i+1).
// n is capped at wire.MaxPredictions, the most one response frame carries;
// the server clamps to the same bound.
func (t *Thread) PredictSequence(n int) []pythia.Prediction {
	if n > wire.MaxPredictions {
		n = wire.MaxPredictions
	}
	c := t.o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	t.syncLocked(c)
	if !t.ensureOpen(c) {
		return nil
	}
	c.out = wire.AppendPredictSequence(c.out[:0], t.sid, n)
	resp, err := c.roundTrip(wire.TPredictSequence, c.out, wire.TPredictions)
	if err != nil {
		return nil
	}
	preds, perr := wire.ParsePredictions(resp)
	if perr != nil {
		c.note(perr)
		return nil
	}
	return preds
}

// PredictDurationUntil predicts the time until the next occurrence of the
// event, looking at most maxDistance events ahead. It is computed from one
// PredictSequence round trip; the result is bit-identical to the
// in-process method, which scans the same per-step predictions.
func (t *Thread) PredictDurationUntil(id pythia.ID, maxDistance int) (pythia.Prediction, bool) {
	if maxDistance < 1 {
		return pythia.Prediction{}, false
	}
	for _, pr := range t.PredictSequence(maxDistance) {
		if pr.EventID == int32(id) {
			return pr, true
		}
	}
	return pythia.Prediction{}, false
}
