package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Reconnect. A transport failure anywhere in the client funnels into
// disconnectLocked, which latches the first cause, strips the fast paths
// (rings, write buffer), and starts one background goroutine that redials
// the address list with jittered exponential backoff. An established
// replacement connection tries to resume the parked server sessions with
// the previous handshake's token; if the server refuses (window expired,
// daemon restarted, resume disabled) it reopens everything from scratch.
// Either way each thread is marked needReplay, and the next time its
// submitting goroutine enters the client it replays the unacknowledged
// tail of its shadow buffer — the server's per-session applied counter
// makes the replay idempotent, so the server-side model converges to the
// exact submitted stream.

// disconnect is disconnectLocked for callers without the lock.
func (c *Client) disconnect(err error) {
	c.mu.Lock()
	c.disconnectLocked(err)
	c.mu.Unlock()
}

// disconnectLocked flips a connected client into the reconnecting state:
// it latches err as the outage cause (first failure wins), closes the dead
// connection, strips every thread's shared-memory fast path, and spawns
// the reconnect goroutine. Repeated failures while already reconnecting
// (or after Close) only return the existing cause. Caller holds c.mu.
func (c *Client) disconnectLocked(err error) error {
	if c.state.Load() != stateConnected {
		if c.cause != nil {
			return c.cause
		}
		return err
	}
	c.cause = err
	c.state.Store(stateReconnecting)
	_ = c.nc.Close()
	// Drop the shared-memory tier. The old segment's mapping is leaked on
	// purpose: a submitting goroutine may be mid-TryPush into a stale ring
	// pointer, and writing into an orphaned mapping is harmless while
	// writing into an unmapped one is a fault. Events pushed there are
	// re-delivered by the shadow replay.
	c.shm.Store(nil)
	for _, o := range c.oracles {
		o.mu.Lock()
		for _, t := range o.threads {
			t.ring.Store(nil)
			t.shmOwner = nil
			t.shmTried.Store(false)
		}
		o.mu.Unlock()
	}
	c.wg.Add(1)
	go c.reconnectLoop()
	return c.cause
}

// reconnectLoop redials until the client is reconnected or closed. The
// backoff doubles from ReconnectMinDelay up to maxReconnectDelay, and each
// wait is jittered to half-to-full of the nominal delay so a fleet of
// clients dropped by one daemon restart does not redial in lockstep.
func (c *Client) reconnectLoop() {
	defer c.wg.Done()
	delay := c.cfg.ReconnectMinDelay
	timer := time.NewTimer(jitter(delay))
	defer timer.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-timer.C:
		}
		if c.tryReconnect() {
			return
		}
		if delay *= 2; delay > maxReconnectDelay {
			delay = maxReconnectDelay
		}
		timer.Reset(jitter(delay))
	}
}

// jitter spreads a nominal backoff delay over [d/2, d).
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)))
}

// tryReconnect walks the fallback address list — the same list, in the
// same order, that Dial used — and tries to adopt the first connection
// that completes a handshake. It reports whether the loop should stop
// (reconnected, or the client was closed meanwhile).
func (c *Client) tryReconnect() bool {
	for _, a := range c.addrs {
		nc, network, err := transport.Dial(a, c.cfg.DialTimeout)
		if err != nil {
			continue
		}
		if c.adopt(nc, network) {
			return true
		}
		if c.state.Load() == stateClosed {
			return true
		}
	}
	return c.state.Load() == stateClosed
}

// adopt handshakes a candidate connection and, on success, swaps it in as
// the client's connection, resumes or reopens the server-side sessions,
// and renegotiates the transport tier. It reports whether the reconnect
// loop is done; on failure the candidate is closed and the loop keeps the
// original outage cause.
func (c *Client) adopt(nc net.Conn, network string) bool {
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	token, window, err := handshakeConn(nc, br, bw, c.cfg)
	if err != nil {
		_ = nc.Close()
		return false
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state.Load() == stateClosed {
		_ = nc.Close()
		return true
	}
	oldToken := c.resumeToken
	c.nc, c.br, c.bw, c.network = nc, br, bw, network
	c.resumeToken = token
	c.resumeWindow = time.Duration(window) * time.Millisecond

	resumed := false
	if oldToken != 0 && !c.cfg.DisableResume {
		ok, rerr := c.tryResume(oldToken)
		if rerr != nil {
			_ = nc.Close()
			return false
		}
		resumed = ok
	}
	if !resumed {
		if !c.reopenFresh() {
			_ = nc.Close()
			return false
		}
	}
	if c.cfg.SharedMem && network == transport.NetUnix {
		c.negotiateShm()
	}
	c.cause = nil
	c.state.Store(stateConnected)
	c.statReconnects.Add(1)
	return true
}

// tryResume presents the previous connection's token. ok reports whether
// the server handed the parked sessions back; a RemoteError refusal
// (expired window, draining, restarted daemon) is the designed fall-through
// to reopenFresh, while a transport error aborts this candidate
// connection. Caller holds c.mu.
func (c *Client) tryResume(token uint64) (ok bool, err error) {
	c.out = wire.AppendResume(c.out[:0], token)
	resp, err := c.doRoundTrip(wire.TResume, c.out, wire.TResumed)
	if err != nil {
		var re *RemoteError
		if errors.As(err, &re) {
			return false, nil
		}
		return false, err
	}
	rs, err := wire.ParseResumed(resp)
	if err != nil {
		return false, err
	}
	// The session count is server-controlled; clamp the map size hint so a
	// hostile frame cannot demand an oversized allocation (entries beyond
	// the hint still insert, just without preallocation).
	hint := len(rs)
	if hint > 1024 {
		hint = 1024
	}
	applied := make(map[uint32]uint64, hint)
	for _, r := range rs {
		applied[r.Session] = r.Applied
	}
	for _, o := range c.oracles {
		if o.closed {
			continue
		}
		o.mu.Lock()
		// Service restored: a refusal latched during the outage no longer
		// describes this oracle (a recurring one re-latches on replay).
		o.openErr = nil
		for _, t := range o.threads {
			t.inert.Store(false)
			if ap, found := applied[t.sid]; t.opened && found {
				// The session survived with its id and its server-side
				// model state; only the unacknowledged tail needs replay.
				t.needReplay = true
				t.resumeFresh = false
				t.resumeApplied = t.sessBase + ap
			} else {
				// Never opened, or the session was not among the parked
				// ones: reopen from scratch on first producer activity.
				t.opened = false
				t.needReplay = true
				t.resumeFresh = true
			}
		}
		o.mu.Unlock()
	}
	return true, nil
}

// reopenFresh rebuilds the client's server-side state on a connection with
// no parked sessions to adopt: each oracle's tenant-pinning meta session
// is reopened and its event table verified against the one the oracle was
// built with (a restarted daemon serving a different trace would silently
// corrupt interning otherwise). Threads are marked for fresh reopen +
// replay. It reports false only on a transport error — a per-oracle
// refusal degrades that oracle but keeps the connection. Caller holds
// c.mu.
func (c *Client) reopenFresh() bool {
	for _, o := range c.oracles {
		if o.closed {
			continue
		}
		so, err := c.openSession(o.tenant, -1, wire.FlagWantEvents)
		if err != nil {
			var re *RemoteError
			if errors.As(err, &re) {
				o.noteOpenErr(fmt.Errorf("client: reconnect reopen tenant %q: %w", o.tenant, err))
				o.latchThreadsInert()
				continue
			}
			return false
		}
		if !sameEventTable(so.Events, o.eventNames) {
			o.noteOpenErr(fmt.Errorf("client: reconnect: tenant %q event table changed; oracle disabled", o.tenant))
			o.latchThreadsInert()
			continue
		}
		o.meta = so.Session
		o.mu.Lock()
		o.openErr = nil // tenant reopened cleanly; stale refusals don't apply
		for _, t := range o.threads {
			t.inert.Store(false)
			t.opened = false
			t.needReplay = true
			t.resumeFresh = true
		}
		o.mu.Unlock()
	}
	return true
}

// latchThreadsInert fails an oracle's threads open after a reconnect-time
// refusal; their events keep landing in the shadow buffer in case a later
// reconnect restores service.
func (o *Oracle) latchThreadsInert() {
	o.mu.Lock()
	for _, t := range o.threads {
		t.inert.Store(true)
		t.needReplay = false
	}
	o.mu.Unlock()
}

// sameEventTable reports whether a reopened tenant's event table matches
// the one this oracle interned against.
func sameEventTable(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// replayLocked delivers the thread's unacknowledged shadow tail to the
// server after a reconnect. It runs on the submitting goroutine (the only
// reader of the shadow buffer) under c.mu. The pending buffer is cleared
// first — everything in it is, by construction, also in the shadow — and
// then the tail beyond the server's applied counter is replayed in
// chunks; the server skips anything it already applied, so an overlap is
// harmless. Events older than the shadow window are gone and counted as
// dropped.
func (t *Thread) replayLocked(c *Client) {
	t.pmu.Lock()
	t.pending = t.pending[:0]
	t.pmu.Unlock()

	seq := t.shadowSeq
	oldest := uint64(1)
	if n := uint64(len(t.shadow)); t.shadow != nil && seq > n {
		oldest = seq - n + 1
	}

	if t.resumeFresh || !t.opened {
		if seq == 0 && !t.opened {
			// Nothing ever submitted: nothing to reopen or replay.
			t.needReplay = false
			t.resumeFresh = false
			return
		}
		prevBase := t.sessBase
		t.opened = false
		if !t.ensureOpen(c) {
			// Refused or offline again; ensureOpen latched what matters.
			t.needReplay = false
			t.resumeFresh = false
			return
		}
		// Re-anchor: the fresh session's first event is server sequence 1.
		// Never reach back past the previous anchor — events before it
		// belong to a session boundary (StartAtBeginning) the replay must
		// not cross.
		if oldest < prevBase+1 {
			oldest = prevBase + 1
		}
		t.sessBase = oldest - 1
		if t.sessBase > prevBase {
			c.statDropped.Add(t.sessBase - prevBase)
		}
		t.resumeFresh = false
		t.resumeApplied = t.sessBase
	}
	if t.shadow == nil {
		// Shadow disabled: the stream restarts at the current position and
		// everything in flight at the disconnect is dropped (uncounted —
		// without a shadow the client cannot know how much was unacked).
		t.needReplay = false
		return
	}

	start := t.resumeApplied + 1
	if start < oldest {
		c.statDropped.Add(oldest - start)
		start = oldest
	}
	if t.replayBuf == nil && start <= seq {
		t.replayBuf = make([]int32, 0, replayChunk)
	}
	for lo := start; lo <= seq; {
		hi := lo + replayChunk - 1
		if hi > seq {
			hi = seq
		}
		t.replayBuf = t.replayBuf[:0]
		for s := lo; s <= hi; s++ {
			t.replayBuf = append(t.replayBuf, t.shadow[(s-1)&t.shadowMask])
		}
		c.out = wire.AppendReplay(c.out[:0], t.sid, lo-t.sessBase, t.replayBuf)
		resp, err := c.roundTrip(wire.TReplay, c.out, wire.TReplayed)
		if err != nil {
			// Disconnected again mid-replay (or refused): keep needReplay
			// so the next reconnect picks up from the server's counter.
			return
		}
		if _, applied, perr := wire.ParseReplayed(resp); perr != nil {
			c.note(perr)
			return
		} else {
			t.resumeApplied = t.sessBase + applied
		}
		lo = hi + 1
	}
	t.needReplay = false
}
