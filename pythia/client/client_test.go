package client

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/pythia"
)

// fakeDaemon accepts one connection, answers the handshake and the meta
// OpenSession, then abruptly closes — simulating a daemon dying mid-run.
func fakeDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		if err := ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("closing listener: %v", err)
		}
	})
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(nc)
		bw := bufio.NewWriter(nc)
		var buf []byte
		fail := func(err error) {
			if cerr := nc.Close(); cerr != nil {
				t.Logf("fake daemon close: %v", cerr)
			}
		}
		if typ, _, err := wire.ReadFrame(br, &buf); err != nil || typ != wire.THello {
			fail(err)
			return
		}
		if err := wire.WriteFrame(bw, wire.THelloOK, wire.AppendHelloOK(nil)); err != nil {
			fail(err)
			return
		}
		if err := bw.Flush(); err != nil {
			fail(err)
			return
		}
		if typ, _, err := wire.ReadFrame(br, &buf); err != nil || typ != wire.TOpenSession {
			fail(err)
			return
		}
		so := wire.SessionOpened{Session: 0, Events: []string{"a", "b"}}
		if err := wire.WriteFrame(bw, wire.TSessionOpened, wire.AppendSessionOpened(nil, so)); err != nil {
			fail(err)
			return
		}
		if err := bw.Flush(); err != nil {
			fail(err)
			return
		}
		// Die without warning.
		if err := nc.Close(); err != nil {
			t.Logf("fake daemon close: %v", err)
		}
	}()
	return ln.Addr().String()
}

// TestFailOpenOnDeadDaemon: once the transport dies, the remote oracle
// must mirror the library's fail-open contract — Submit is a no-op,
// predictions return ok=false, Health reports Degraded — and every call
// must return promptly instead of hanging the host runtime.
func TestFailOpenOnDeadDaemon(t *testing.T) {
	addr := fakeDaemon(t)
	o, err := Connect(addr, "synth", Config{RequestTimeout: time.Second})
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	if id := o.Intern("a"); id != 0 {
		t.Fatalf("Intern(a) = %d, want 0 (server table order)", id)
	}
	if id := o.Intern("zzz"); id != 2 {
		t.Fatalf("Intern(zzz) = %d, want 2 (fresh id past the table)", id)
	}
	if name := o.EventName(1); name != "b" {
		t.Fatalf("EventName(1) = %q, want b", name)
	}

	th := o.Thread(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			th.Submit(o.Intern("a")) // flushes hit the dead socket
		}
		if _, ok := th.PredictAt(1); ok {
			t.Error("PredictAt succeeded on a dead connection")
		}
		if preds := th.PredictSequence(4); preds != nil {
			t.Errorf("PredictSequence returned %v on a dead connection", preds)
		}
		if _, ok := th.PredictDurationUntil(0, 8); ok {
			t.Error("PredictDurationUntil succeeded on a dead connection")
		}
		if h := o.Health(); h.State != pythia.Degraded {
			t.Errorf("health on dead connection = %s, want degraded", h.State)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fail-open path blocked the caller")
	}
}

func TestDialRefused(t *testing.T) {
	// A port with no listener: Dial must fail fast with an error, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := Dial(addr, Config{DialTimeout: time.Second}); err == nil {
		t.Fatal("Dial of a closed port succeeded")
	}
}
