package client

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/pythia"
)

// fakeDaemon accepts one connection, answers the handshake and the meta
// OpenSession, then abruptly closes — simulating a daemon dying mid-run.
func fakeDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		if err := ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("closing listener: %v", err)
		}
	})
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(nc)
		bw := bufio.NewWriter(nc)
		var buf []byte
		fail := func(err error) {
			if cerr := nc.Close(); cerr != nil {
				t.Logf("fake daemon close: %v", cerr)
			}
		}
		if typ, _, err := wire.ReadFrame(br, &buf); err != nil || typ != wire.THello {
			fail(err)
			return
		}
		if err := wire.WriteFrame(bw, wire.THelloOK, wire.AppendHelloOK(nil)); err != nil {
			fail(err)
			return
		}
		if err := bw.Flush(); err != nil {
			fail(err)
			return
		}
		if typ, _, err := wire.ReadFrame(br, &buf); err != nil || typ != wire.TOpenSession {
			fail(err)
			return
		}
		so := wire.SessionOpened{Session: 0, Events: []string{"a", "b"}}
		if err := wire.WriteFrame(bw, wire.TSessionOpened, wire.AppendSessionOpened(nil, so)); err != nil {
			fail(err)
			return
		}
		if err := bw.Flush(); err != nil {
			fail(err)
			return
		}
		// Die without warning.
		if err := nc.Close(); err != nil {
			t.Logf("fake daemon close: %v", err)
		}
	}()
	return ln.Addr().String()
}

// TestFailOpenOnDeadDaemon: once the transport dies, the remote oracle
// must mirror the library's fail-open contract — Submit is a no-op,
// predictions return ok=false, Health reports Degraded — and every call
// must return promptly instead of hanging the host runtime.
func TestFailOpenOnDeadDaemon(t *testing.T) {
	addr := fakeDaemon(t)
	o, err := Connect(addr, "synth", Config{RequestTimeout: time.Second})
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	if id := o.Intern("a"); id != 0 {
		t.Fatalf("Intern(a) = %d, want 0 (server table order)", id)
	}
	if id := o.Intern("zzz"); id != 2 {
		t.Fatalf("Intern(zzz) = %d, want 2 (fresh id past the table)", id)
	}
	if name := o.EventName(1); name != "b" {
		t.Fatalf("EventName(1) = %q, want b", name)
	}

	th := o.Thread(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			th.Submit(o.Intern("a")) // flushes hit the dead socket
		}
		if _, ok := th.PredictAt(1); ok {
			t.Error("PredictAt succeeded on a dead connection")
		}
		if preds := th.PredictSequence(4); preds != nil {
			t.Errorf("PredictSequence returned %v on a dead connection", preds)
		}
		if _, ok := th.PredictDurationUntil(0, 8); ok {
			t.Error("PredictDurationUntil succeeded on a dead connection")
		}
		if h := o.Health(); h.State != pythia.Degraded {
			t.Errorf("health on dead connection = %s, want degraded", h.State)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fail-open path blocked the caller")
	}
}

// TestFlushShipsToSocket: the public Flush contract is "ships any buffered
// submissions now" — the SubmitBatch frame must reach the wire immediately,
// not sit in the client's write buffer until the next round trip.
func TestFlushShipsToSocket(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		if err := ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("closing listener: %v", err)
		}
	})
	gotBatch := make(chan int, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(nc)
		bw := bufio.NewWriter(nc)
		var buf []byte
		reply := func(typ wire.Type, payload []byte) bool {
			if err := wire.WriteFrame(bw, typ, payload); err != nil {
				return false
			}
			return bw.Flush() == nil
		}
		for {
			typ, payload, err := wire.ReadFrame(br, &buf)
			if err != nil {
				return
			}
			switch typ {
			case wire.THello:
				if !reply(wire.THelloOK, wire.AppendHelloOK(nil)) {
					return
				}
			case wire.TOpenSession:
				o, err := wire.ParseOpenSession(payload)
				if err != nil {
					return
				}
				sid := uint32(0)
				if o.TID >= 0 {
					sid = 1
				}
				so := wire.SessionOpened{Session: sid, Events: []string{"a", "b"}}
				if !reply(wire.TSessionOpened, wire.AppendSessionOpened(nil, so)) {
					return
				}
			case wire.TSubmitBatch:
				_, batch, err := wire.ParseSubmitBatch(payload)
				if err != nil {
					return
				}
				gotBatch <- batch.Len()
			}
		}
	}()

	// SubmitFlush far above the submitted count: nothing but Flush (or a
	// prediction) may ship the batch.
	o, err := Connect(ln.Addr().String(), "synth", Config{RequestTimeout: 2 * time.Second, SubmitFlush: 1024})
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	th := o.Thread(0)
	th.Submit(o.Intern("a"))
	th.Submit(o.Intern("b"))
	th.Submit(o.Intern("a"))
	select {
	case n := <-gotBatch:
		t.Fatalf("batch of %d arrived before Flush", n)
	case <-time.After(50 * time.Millisecond):
	}
	th.Flush()
	select {
	case n := <-gotBatch:
		if n != 3 {
			t.Fatalf("flushed batch carried %d events, want 3", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Flush left the batch in the client write buffer")
	}
}

// TestClosePreservesStickyErr: a transport failure latched before Close
// must stay visible through Err — a run that broke and was then cleanly
// closed still broke.
func TestClosePreservesStickyErr(t *testing.T) {
	addr := fakeDaemon(t)
	c, err := Dial(addr, Config{RequestTimeout: time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	o, err := c.Oracle("synth")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	th := o.Thread(0)
	// The daemon died after the meta session: this round trip latches the
	// transport failure.
	if _, ok := th.PredictAt(1); ok {
		t.Fatal("PredictAt succeeded against a dead daemon")
	}
	want := c.Err()
	if want == nil {
		t.Fatal("no sticky error after a failed round trip")
	}
	if err := c.Close(); err != nil {
		t.Logf("close: %v", err) // closing a broken connection may itself error
	}
	if got := c.Err(); !errors.Is(got, want) {
		t.Fatalf("Err after Close = %v, want the latched %v", got, want)
	}
	// A clean close, by contrast, reports nil.
	addr2 := fakeDaemon(t)
	c2, err := Dial(addr2, Config{RequestTimeout: time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}
	if got := c2.Err(); got != nil {
		t.Fatalf("Err after clean Close = %v, want nil", got)
	}
}

// loopDaemon serves any number of connections with a minimal protocol
// (handshake, OpenSession, PredictAt ok=true, ignore the rest) and counts
// accepts — enough to pin which address in a fallback list won the dial.
func loopDaemon(t *testing.T) (addr string, accepts *atomic.Int32, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	accepts = new(atomic.Int32)
	var wg sync.WaitGroup
	var conns sync.Map
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			conns.Store(nc, struct{}{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer nc.Close()
				br := bufio.NewReader(nc)
				bw := bufio.NewWriter(nc)
				var buf []byte
				reply := func(typ wire.Type, payload []byte) bool {
					if err := wire.WriteFrame(bw, typ, payload); err != nil {
						return false
					}
					return bw.Flush() == nil
				}
				for {
					typ, payload, err := wire.ReadFrame(br, &buf)
					if err != nil {
						return
					}
					switch typ {
					case wire.THello:
						if !reply(wire.THelloOK, wire.AppendHelloOK(nil)) {
							return
						}
					case wire.TOpenSession:
						o, err := wire.ParseOpenSession(payload)
						if err != nil {
							return
						}
						sid := uint32(0)
						if o.TID >= 0 {
							sid = 1
						}
						so := wire.SessionOpened{Session: sid, Events: []string{"a", "b"}}
						if !reply(wire.TSessionOpened, wire.AppendSessionOpened(nil, so)) {
							return
						}
					case wire.TPredictAt:
						pr := wire.AppendPrediction(nil, pythia.Prediction{EventID: 0, Distance: 1, Probability: 1}, true)
						if !reply(wire.TPrediction, pr) {
							return
						}
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), accepts, func() {
		_ = ln.Close()
		conns.Range(func(k, _ any) bool {
			_ = k.(net.Conn).Close()
			return true
		})
		wg.Wait()
	}
}

// TestDialFallbackOrder pins the fallback-list contract: addresses are
// tried in list order on every dial — a dead first address falls through,
// and with both alive the first always wins.
func TestDialFallbackOrder(t *testing.T) {
	// A dead first address must fall through to the live second.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	if err := dead.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	liveAddr, liveAccepts, stopLive := loopDaemon(t)
	defer stopLive()

	c, err := Dial(deadAddr+","+liveAddr, Config{DialTimeout: time.Second})
	if err != nil {
		t.Fatalf("dial with dead first address: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := liveAccepts.Load(); got != 1 {
		t.Fatalf("live fallback accepted %d conns, want 1", got)
	}

	// With two live daemons the first in the list must get the connection.
	addrA, acceptsA, stopA := loopDaemon(t)
	defer stopA()
	addrB, acceptsB, stopB := loopDaemon(t)
	defer stopB()
	c2, err := Dial(addrA+","+addrB, Config{DialTimeout: time.Second})
	if err != nil {
		t.Fatalf("dial two live addresses: %v", err)
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if a, b := acceptsA.Load(), acceptsB.Load(); a != 1 || b != 0 {
		t.Fatalf("accepts = (%d, %d), want the first address to win (1, 0)", a, b)
	}
}

// TestReconnectUsesFallbackList: when the primary dies for good, the
// reconnect loop must walk the same fallback list Dial used and come back
// on the secondary.
func TestReconnectUsesFallbackList(t *testing.T) {
	addrA, _, stopA := loopDaemon(t)
	addrB, acceptsB, stopB := loopDaemon(t)
	defer stopB()

	c, err := Dial(addrA+","+addrB, Config{
		DialTimeout:       time.Second,
		RequestTimeout:    time.Second,
		ReconnectMinDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	o, err := c.Oracle("synth")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	th := o.Thread(0)
	if _, ok := th.PredictAt(1); !ok {
		t.Fatal("PredictAt failed on the primary")
	}
	if got := acceptsB.Load(); got != 0 {
		t.Fatalf("secondary saw %d conns while the primary was alive", got)
	}

	stopA() // primary gone: listener closed, live conns severed

	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Reconnects == 0 {
		th.PredictAt(1)
		if time.Now().After(deadline) {
			t.Fatalf("no reconnect to the fallback address (stats %+v)", c.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := acceptsB.Load(); got == 0 {
		t.Fatal("reconnect did not land on the fallback address")
	}
	if _, ok := th.PredictAt(1); !ok {
		t.Fatal("PredictAt failed after failover to the fallback address")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err after successful failover = %v, want nil", err)
	}
}

func TestDialRefused(t *testing.T) {
	// A port with no listener: Dial must fail fast with an error, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := Dial(addr, Config{DialTimeout: time.Second}); err == nil {
		t.Fatal("Dial of a closed port succeeded")
	}
}
