package client

// Fleet is the client-side half of the pythia-cluster subsystem: it holds
// a cached shard map and routes each tenant to the daemons the map assigns
// it, over ordinary Clients (so every transport tier, the reconnect
// machinery, and session resume keep working per-daemon).
//
// Routing is optimistic: the Fleet opens the tenant on the cached owner
// and lets the daemon veto it. A daemon that no longer owns the tenant
// answers with the non-fatal CodeWrongShard, the Fleet re-fetches the map
// (taking the highest epoch any reachable daemon reports) and retries on
// the new owner. The dial list for a tenant is its whole assignment —
// owner first, then replicas — so an owner that dies mid-stream is
// redialed onto a warm replica by the client's own reconnect loop.

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// Fleet routes tenants across a pythiad fleet by consistent-hash shard
// map. Safe for concurrent use.
type Fleet struct {
	cfg   Config
	seeds []string // bootstrap daemon addresses from DialFleet

	mu      sync.Mutex
	m       cluster.Map        // cached shard map (zero until a daemon reports one)
	clients map[string]*Client // keyed by dial list ("owner,replica,...")
}

// DialFleet connects to a pythiad fleet. addrs is a comma-separated list
// of daemon addresses used to bootstrap the shard map; the map's own
// daemon list takes over from there. A single non-clustered daemon is a
// valid "fleet" — every tenant routes to it.
func DialFleet(addrs string, cfg Config) (*Fleet, error) {
	f := &Fleet{cfg: cfg, clients: make(map[string]*Client)}
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			f.seeds = append(f.seeds, a)
		}
	}
	if len(f.seeds) == 0 {
		return nil, fmt.Errorf("client: no daemon address in %q", addrs)
	}
	if err := f.Refresh(); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return f, nil
}

// Refresh re-fetches the shard map, adopting the highest epoch any
// reachable daemon reports. It fails only when no daemon answers at all.
func (f *Fleet) Refresh() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	targets := append([]string(nil), f.seeds...)
	for _, d := range f.m.Daemons {
		targets = append(targets, d)
	}
	var errs []error
	answered := false
	for _, addr := range dedup(targets) {
		c, err := f.clientLocked(addr)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		m, err := c.ShardMap(f.m.Epoch)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		answered = true
		if m.Clustered() && (!f.m.Clustered() || m.Epoch > f.m.Epoch) {
			f.m = m
		}
	}
	if !answered {
		return fmt.Errorf("client: no daemon answered a shard-map fetch: %w", errors.Join(errs...))
	}
	return nil
}

// Map returns the cached shard map (zero Map when the fleet is a single
// non-clustered daemon).
func (f *Fleet) Map() cluster.Map {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m
}

// Route returns the dial list for a tenant under the cached map: its
// assignment (owner first, replicas after) when clustered, the bootstrap
// list otherwise.
func (f *Fleet) Route(tenant string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.routeLocked(tenant)
}

func (f *Fleet) routeLocked(tenant string) []string {
	if a := f.m.Assignment(tenant); len(a) > 0 {
		return a
	}
	return f.seeds
}

// Owner returns the daemon a tenant currently routes to.
func (f *Fleet) Owner(tenant string) string {
	return f.Route(tenant)[0]
}

// Oracle opens a remote oracle for tenant on its owning daemon. A
// CodeWrongShard refusal (stale cached map) triggers a map refresh and a
// re-route, bounded so two daemons with diverging maps cannot bounce the
// client forever.
func (f *Fleet) Oracle(tenant string) (*Oracle, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		f.mu.Lock()
		c, err := f.clientLocked(strings.Join(f.routeLocked(tenant), ","))
		f.mu.Unlock()
		if err == nil {
			var o *Oracle
			if o, err = c.Oracle(tenant); err == nil {
				return o, nil
			}
			var re *RemoteError
			if !errors.As(err, &re) || re.Code != wire.CodeWrongShard {
				return nil, err
			}
		}
		lastErr = err
		if rerr := f.Refresh(); rerr != nil {
			return nil, errors.Join(lastErr, rerr)
		}
	}
	return nil, fmt.Errorf("client: tenant %q: rerouting did not converge: %w", tenant, lastErr)
}

// clientLocked returns the pooled client for a dial list, dialing on first
// use. A client that failed permanently is replaced. Caller holds f.mu.
func (f *Fleet) clientLocked(dialList string) (*Client, error) {
	if c, ok := f.clients[dialList]; ok {
		return c, nil
	}
	c, err := Dial(dialList, f.cfg)
	if err != nil {
		return nil, err
	}
	f.clients[dialList] = c
	return c, nil
}

// Close closes every pooled client.
func (f *Fleet) Close() error {
	f.mu.Lock()
	clients := f.clients
	f.clients = make(map[string]*Client)
	f.mu.Unlock()
	var errs []error
	for _, c := range clients {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// dedup keeps the first occurrence of each address, preserving order.
func dedup(addrs []string) []string {
	seen := make(map[string]bool, len(addrs))
	out := addrs[:0]
	for _, a := range addrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
