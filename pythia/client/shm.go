package client

import (
	"errors"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pythia"
)

// Default ring geometry the client proposes during shm negotiation. One
// segment carries shmRings independently bindable per-thread rings; threads
// beyond the ring count keep the socket batching path.
const (
	shmRings   = 16
	shmSlots   = 4096
	shmPredCap = 64
)

// ErrNoSharedMem reports an operation that requires the shared-memory tier
// on a connection that negotiated only a socket transport.
var ErrNoSharedMem = errors.New("client: shared-memory transport not negotiated")

// clientShm is the client's half of a negotiated shared-memory segment.
// The segment file is already unlinked; the mapping lives until process
// exit (Close severs only the socket — unmapping while a submitting
// goroutine may still be in TryPush would turn fail-open into a fault).
type clientShm struct {
	seg   *transport.Segment
	rings []transport.Ring
	used  []bool // ring slots handed to threads, guarded by c.mu
}

// negotiateShm attempts the shared-memory upgrade over a freshly
// handshaken unix connection: create the segment, offer it, and keep it
// only if the server maps it. Every failure falls open to the socket
// transport the connection already has. Caller holds c.mu (Dial, before
// the client is shared).
func (c *Client) negotiateShm() {
	g := transport.Geometry{Rings: shmRings, Slots: shmSlots, PredCap: shmPredCap}
	seg, err := transport.CreateSegment(c.cfg.ShmDir, g.SegmentSize())
	if err != nil {
		return
	}
	transport.WriteHeader(seg.Bytes(), g)
	rings, err := transport.MapRings(seg.Bytes(), g)
	if err != nil {
		if cerr := seg.Close(); cerr != nil {
			c.note(cerr)
		}
		return
	}
	c.out = wire.AppendShmSetup(c.out[:0], wire.ShmSetup{
		Rings:   uint32(g.Rings),
		Slots:   uint32(g.Slots),
		PredCap: uint32(g.PredCap),
		SegSize: uint64(g.SegmentSize()),
		Path:    seg.Path(),
	})
	resp, err := c.roundTrip(wire.TShmSetup, c.out, wire.TShmSetupOK)
	if err != nil {
		// A CodeShmSetup refusal is the designed fallback (server on
		// another platform, unmappable path, …): keep the socket. A failed
		// unmap of the just-created segment is not — latch it.
		if cerr := seg.Close(); cerr != nil {
			c.note(cerr)
		}
		return
	}
	if _, err := wire.ParseShmSetupOK(resp); err != nil {
		c.note(err)
		if cerr := seg.Close(); cerr != nil {
			c.note(cerr)
		}
		return
	}
	// The server holds its own mapping now; drop the directory entry so a
	// crash on either side leaves nothing in /dev/shm.
	if err := seg.Unlink(); err != nil {
		c.note(err)
	}
	c.shm = &clientShm{seg: seg, rings: rings, used: make([]bool, len(rings))}
}

// bindRing tries once to put this thread on a free shm ring; on any
// failure the thread keeps the socket batching path. Runs on the
// submitting goroutine before the first event is buffered, so a bound
// thread never has socket-buffered events that could be reordered behind
// ring entries. t.ring itself is owned by the submitting goroutine and is
// only ever written outside c.mu — the lock guards the slot table and the
// wire round trip, not the thread's pointer.
func (t *Thread) bindRing() {
	t.shmTried = true
	idx, r := t.o.c.reserveRing(t)
	if r == nil {
		return
	}
	t.ringIdx = idx
	t.ring = r
}

// reserveRing claims a free ring slot and binds it to t's session on the
// server; it returns the mapped ring, or nil when the thread should keep
// the socket path.
func (c *Client) reserveRing(t *Thread) (int, *transport.Ring) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shm == nil || c.err != nil {
		return 0, nil
	}
	if !t.ensureOpen(c) {
		return 0, nil
	}
	idx := -1
	for i, u := range c.shm.used {
		if !u {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, nil // rings exhausted: this thread stays on socket batching
	}
	c.out = wire.AppendShmBind(c.out[:0], t.sid, uint32(idx))
	resp, err := c.roundTrip(wire.TShmBind, c.out, wire.TShmBound)
	if err != nil {
		return 0, nil
	}
	if _, _, err := wire.ParseShmBound(resp); err != nil {
		c.note(err)
		return 0, nil
	}
	c.shm.used[idx] = true
	return idx, &c.shm.rings[idx]
}

// releaseRingLocked returns the thread's ring slot to the free list
// (session closed or restarted). Caller holds c.mu and the server has
// already unbound its side; the caller clears t.ring itself, outside the
// lock, because that field belongs to the submitting goroutine.
func (t *Thread) releaseRingLocked(c *Client) (hadRing bool) {
	if t.ring == nil {
		return false
	}
	c.shm.used[t.ringIdx] = false
	return true
}

// pushSlow waits for ring space with bounded spin-then-park. A ring that
// stays full for RequestTimeout means the server stopped consuming — the
// thread latches inert and fails open, exactly like a dead socket.
func (t *Thread) pushSlow(id int32) {
	deadline := time.Now().Add(t.o.c.cfg.RequestTimeout)
	for attempt := 1; ; attempt++ {
		transport.Park(attempt)
		if t.ring.TryPush(id) {
			return
		}
		if attempt&63 == 0 && time.Now().After(deadline) {
			t.ring = nil
			t.inert.Store(true)
			t.o.noteOpenErr(errors.New("client: shm ring stalled; thread is inert"))
			return
		}
	}
}

// Subscribe puts this thread in streaming-prediction mode: the daemon
// republishes PredictSequence(horizon) into the thread's shared slot every
// `every` observed events, and Latest reads the freshest result without a
// round trip. Requires the shared-memory transport.
func (t *Thread) Subscribe(horizon, every int) error {
	if t.inert.Load() {
		return ErrNoSharedMem
	}
	if t.ring == nil && !t.shmTried {
		t.bindRing()
	}
	if t.ring == nil {
		return ErrNoSharedMem
	}
	if horizon < 1 {
		horizon = 1
	}
	if every < 0 {
		every = 0
	}
	c := t.o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = wire.AppendSubscribe(c.out[:0], wire.Subscribe{
		Session: t.sid,
		Horizon: uint32(horizon),
		Every:   uint32(every),
	})
	resp, err := c.roundTrip(wire.TSubscribe, c.out, wire.TSubscribed)
	if err != nil {
		return err
	}
	if _, err := wire.ParseSubscribed(resp); err != nil {
		c.note(err)
		return err
	}
	return nil
}

// Latest reads the most recently published subscription predictions into
// buf[:0] (allocation-free once buf has grown to the horizon). ok is false
// when the thread has no subscription, nothing has been published yet, or
// the read raced a republish to exhaustion.
// pythia:hotpath — the co-located predict path: no syscall, no round trip.
func (t *Thread) Latest(buf []pythia.Prediction) ([]pythia.Prediction, bool) {
	if r := t.ring; r != nil {
		return r.ReadPredictions(buf)
	}
	return buf[:0], false
}
