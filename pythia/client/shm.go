package client

import (
	"errors"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pythia"
)

// Default ring geometry the client proposes during shm negotiation. One
// segment carries shmRings independently bindable per-thread rings; threads
// beyond the ring count keep the socket batching path.
const (
	shmRings   = 16
	shmSlots   = 4096
	shmPredCap = 64
)

// ErrNoSharedMem reports an operation that requires the shared-memory tier
// on a connection that negotiated only a socket transport.
var ErrNoSharedMem = errors.New("client: shared-memory transport not negotiated")

// clientShm is the client's half of a negotiated shared-memory segment.
// The segment file is already unlinked; the mapping lives until process
// exit (Close and disconnect sever only the socket — unmapping while a
// submitting goroutine may still be in TryPush would turn fail-open into
// a fault, so a reconnect orphans the old mapping and negotiates a fresh
// segment).
type clientShm struct {
	seg   *transport.Segment
	rings []transport.Ring
	used  []bool // ring slots handed to threads, guarded by c.mu
}

// negotiateShm attempts the shared-memory upgrade over a freshly
// handshaken unix connection: create the segment, offer it, and keep it
// only if the server maps it. Every failure falls open to the socket
// transport the connection already has. Caller holds c.mu (Dial before
// the client is shared, or the reconnect goroutine mid-adoption — hence
// doRoundTrip, which skips the connection-state gate).
func (c *Client) negotiateShm() {
	g := transport.Geometry{Rings: shmRings, Slots: shmSlots, PredCap: shmPredCap}
	seg, err := transport.CreateSegment(c.cfg.ShmDir, g.SegmentSize())
	if err != nil {
		return
	}
	transport.WriteHeader(seg.Bytes(), g)
	rings, err := transport.MapRings(seg.Bytes(), g)
	if err != nil {
		if cerr := seg.Close(); cerr != nil {
			c.note(cerr)
		}
		return
	}
	c.out = wire.AppendShmSetup(c.out[:0], wire.ShmSetup{
		Rings:   uint32(g.Rings),
		Slots:   uint32(g.Slots),
		PredCap: uint32(g.PredCap),
		SegSize: uint64(g.SegmentSize()),
		Path:    seg.Path(),
	})
	resp, err := c.doRoundTrip(wire.TShmSetup, c.out, wire.TShmSetupOK)
	if err != nil {
		// A CodeShmSetup refusal is the designed fallback (server on
		// another platform, unmappable path, …): keep the socket. A failed
		// unmap of the just-created segment is not — latch it.
		if cerr := seg.Close(); cerr != nil {
			c.note(cerr)
		}
		return
	}
	if _, err := wire.ParseShmSetupOK(resp); err != nil {
		c.note(err)
		if cerr := seg.Close(); cerr != nil {
			c.note(cerr)
		}
		return
	}
	// The server holds its own mapping now; drop the directory entry so a
	// crash on either side leaves nothing in /dev/shm.
	if err := seg.Unlink(); err != nil {
		c.note(err)
	}
	c.shm.Store(&clientShm{seg: seg, rings: rings, used: make([]bool, len(rings))})
}

// bindRing tries once per connection epoch to put this thread on a free
// shm ring; on any failure the thread keeps the socket batching path.
// Runs on the submitting goroutine before the first event is buffered, so
// a bound thread never has socket-buffered events that could be reordered
// behind ring entries.
func (t *Thread) bindRing() {
	t.shmTried.Store(true)
	idx, r, owner := t.o.c.reserveRing(t)
	if r == nil {
		return
	}
	t.ringIdx = idx
	t.shmOwner = owner
	t.ring.Store(r)
}

// reserveRing claims a free ring slot and binds it to t's session on the
// server; it returns the mapped ring (plus the segment it belongs to), or
// nil when the thread should keep the socket path. Runs on the submitting
// goroutine, so any pending post-reconnect replay happens here, before
// the ring engages — ring traffic must never overtake the replayed tail.
func (c *Client) reserveRing(t *Thread) (int, *transport.Ring, *clientShm) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state.Load() != stateConnected {
		return 0, nil, nil
	}
	sh := c.shm.Load()
	if sh == nil {
		return 0, nil, nil
	}
	if t.needReplay {
		t.replayLocked(c)
		if t.needReplay || c.state.Load() != stateConnected {
			return 0, nil, nil
		}
	}
	if !t.ensureOpen(c) {
		return 0, nil, nil
	}
	idx := -1
	for i, u := range sh.used {
		if !u {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, nil, nil // rings exhausted: this thread stays on socket batching
	}
	c.out = wire.AppendShmBind(c.out[:0], t.sid, uint32(idx))
	resp, err := c.roundTrip(wire.TShmBind, c.out, wire.TShmBound)
	if err != nil {
		return 0, nil, nil
	}
	if _, _, err := wire.ParseShmBound(resp); err != nil {
		c.note(err)
		return 0, nil, nil
	}
	sh.used[idx] = true
	return idx, &sh.rings[idx], sh
}

// releaseRingLocked returns the thread's ring slot to the free list
// (session closed or restarted). Caller holds c.mu and the server has
// already unbound its side; the caller clears t.ring itself, after the
// locked section. A slot from a pre-reconnect segment is already orphaned
// wholesale, so only slots of the current segment are returned.
func (t *Thread) releaseRingLocked(c *Client) (hadRing bool) {
	if t.ring.Load() == nil {
		return false
	}
	if sh := c.shm.Load(); sh != nil && sh == t.shmOwner {
		sh.used[t.ringIdx] = false
	}
	t.shmOwner = nil
	return true
}

// pushSlow waits for ring space with bounded spin-then-park. A ring that
// stays full for RequestTimeout means the server stopped consuming — the
// thread drops its ring and the client starts reconnecting; the stalled
// events are already in the shadow buffer, so the post-reconnect replay
// re-delivers them.
func (t *Thread) pushSlow(id int32) {
	c := t.o.c
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	for attempt := 1; ; attempt++ {
		transport.Park(attempt)
		if c.state.Load() != stateConnected {
			// Disconnected under us: the event lives in the shadow buffer.
			t.ring.Store(nil)
			return
		}
		r := t.ring.Load()
		if r == nil {
			return
		}
		if r.TryPush(id) {
			return
		}
		if attempt&63 == 0 && time.Now().After(deadline) {
			t.ring.Store(nil)
			c.disconnect(errors.New("client: shm ring stalled; reconnecting"))
			return
		}
	}
}

// Subscribe puts this thread in streaming-prediction mode: the daemon
// republishes PredictSequence(horizon) into the thread's shared slot every
// `every` observed events, and Latest reads the freshest result without a
// round trip. Requires the shared-memory transport.
func (t *Thread) Subscribe(horizon, every int) error {
	if t.inert.Load() {
		return ErrNoSharedMem
	}
	if t.ring.Load() == nil && !t.shmTried.Load() {
		t.bindRing()
	}
	if t.ring.Load() == nil {
		return ErrNoSharedMem
	}
	if horizon < 1 {
		horizon = 1
	}
	if every < 0 {
		every = 0
	}
	c := t.o.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = wire.AppendSubscribe(c.out[:0], wire.Subscribe{
		Session: t.sid,
		Horizon: uint32(horizon),
		Every:   uint32(every),
	})
	resp, err := c.roundTrip(wire.TSubscribe, c.out, wire.TSubscribed)
	if err != nil {
		return err
	}
	if _, err := wire.ParseSubscribed(resp); err != nil {
		c.note(err)
		return err
	}
	return nil
}

// Latest reads the most recently published subscription predictions into
// buf[:0] (allocation-free once buf has grown to the horizon). ok is false
// when the thread has no subscription, nothing has been published yet, or
// the read raced a republish to exhaustion.
// pythia:hotpath — the co-located predict path: no syscall, no round trip.
func (t *Thread) Latest(buf []pythia.Prediction) ([]pythia.Prediction, bool) {
	if r := t.ring.Load(); r != nil {
		return r.ReadPredictions(buf)
	}
	return buf[:0], false
}
