// Command pythia-diff compares two Pythia trace files and reports whether
// the executions behaved identically and, if not, where they diverge:
//
//	pythia-record -app LU -class small -seed 42 -o a.pythia
//	pythia-record -app LU -class small -seed 43 -o b.pythia
//	pythia-diff a.pythia b.pythia
//
// The exit status is 0 for identical traces and 1 otherwise, so the tool
// composes with scripts (e.g. checking that an optimisation did not change
// the communication pattern).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tracediff"
	"repro/pythia"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pythia-diff <a.pythia> <b.pythia>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a, err := pythia.LoadTraceSet(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := pythia.LoadTraceSet(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	d := tracediff.Compare(a, b)
	if err := d.Write(os.Stdout); err != nil {
		fatal(err)
	}
	if !d.Identical() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pythia-diff:", err)
	os.Exit(2)
}
