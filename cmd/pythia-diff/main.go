// Command pythia-diff compares two Pythia trace files and reports whether
// the executions behaved identically and, if not, where they diverge:
//
//	pythia-record -app LU -class small -seed 42 -o a.pythia
//	pythia-record -app LU -class small -seed 43 -o b.pythia
//	pythia-diff a.pythia b.pythia
//
// The exit status is 0 for identical traces, 1 for traces that differ, and
// 2 for usage or load errors, so the tool composes with scripts (e.g.
// checking that an optimisation did not change the communication pattern).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/tracediff"
	"repro/pythia"
)

// errNotIdentical distinguishes "the traces differ" (exit 1, report already
// printed) from operational failures (exit 2, cause printed to stderr).
var errNotIdentical = errors.New("traces differ")

func main() {
	switch err := run(os.Args[1:], os.Stdout); {
	case err == nil:
	case errors.Is(err, errNotIdentical):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "pythia-diff:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pythia-diff", flag.ContinueOnError)
	fs.Usage = func() {
		if _, err := fmt.Fprintln(fs.Output(), "usage: pythia-diff <a.pythia> <b.pythia>"); err != nil {
			return
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("expected 2 trace files, got %d", fs.NArg())
	}
	a, err := pythia.LoadTraceSet(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("loading %s: %w", fs.Arg(0), err)
	}
	b, err := pythia.LoadTraceSet(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("loading %s: %w", fs.Arg(1), err)
	}
	d := tracediff.Compare(a, b)
	if err := d.Write(stdout); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	if !d.Identical() {
		return errNotIdentical
	}
	return nil
}
