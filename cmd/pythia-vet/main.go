// Command pythia-vet runs Pythia's repo-specific static analyzers over the
// whole module and reports findings as "file:line: [analyzer] message".
//
// Usage:
//
//	go run ./cmd/pythia-vet ./...
//	go run ./cmd/pythia-vet -analyzers=atomic-mix,lock-order ./...
//	go run ./cmd/pythia-vet -update-baseline ./...
//
// Analyzers (see internal/vet):
//
//	hotpath-alloc        pythia:hotpath functions must stay allocation-lean
//	lock-discipline      Lock/Unlock pairing; no Thread.Submit under a lock
//	panic-policy         library panics must be documented invariant violations
//	error-hygiene        no discarded error returns outside tests and examples
//	containment          experimental packages must not leak into the core
//	untrusted-size       wire/file-decoded sizes must be bounded before use
//	atomic-mix           one synchronisation discipline per field
//	goroutine-lifecycle  library goroutines must be joined, signalled, or
//	                     annotated pythia:detached
//	lock-order           no AB/BA lock acquisition cycles through the call graph
//
// Exit contract (scripts and CI depend on it):
//
//	0  clean — no findings beyond the baseline, and no stale baseline entries
//	1  findings not in the baseline, or stale baseline entries (see -allow-stale)
//	2  the module could not be loaded, or the flags were invalid
//
// A stale baseline entry is one that no longer matches any finding: the bug
// it excused was fixed, so the entry is dead weight that could mask a future
// regression at the same site. Staleness fails the run unless -allow-stale
// is set (useful mid-refactor when line numbers are churning).
//
// The positional package patterns are accepted for familiarity but the tool
// always analyses every package of the enclosing module: the analyzers are
// whole-module properties, not per-package ones.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pythia-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "baseline file (default <module root>/vet-baseline.txt)")
	update := fs.Bool("update-baseline", false, "rewrite the baseline to accept all current findings")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("dir", ".", "directory inside the module to analyse")
	names := fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	allowStale := fs.Bool("allow-stale", false, "do not fail on stale baseline entries")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := vet.SelectAnalyzers(*names)
	if err != nil {
		fprintf(stderr, "pythia-vet: %v\n", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fprintf(stdout, "%-19s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	mod, err := vet.LoadModule(*dir)
	if err != nil {
		fprintf(stderr, "pythia-vet: %v\n", err)
		return 2
	}
	diags := vet.RunAnalyzers(mod, analyzers)

	bp := *baselinePath
	if bp == "" {
		bp = filepath.Join(mod.Root, "vet-baseline.txt")
	}

	if *update {
		if err := vet.WriteBaseline(bp, mod.Root, diags); err != nil {
			fprintf(stderr, "pythia-vet: %v\n", err)
			return 2
		}
		fprintf(stdout, "pythia-vet: wrote %d finding(s) to %s\n", len(diags), bp)
		return 0
	}

	base, err := vet.LoadBaseline(bp)
	if err != nil {
		fprintf(stderr, "pythia-vet: %v\n", err)
		return 2
	}
	fresh, suppressed, stale := base.Filter(mod.Root, diags)
	stale = staleForSelected(stale, analyzers)
	for _, d := range fresh {
		fprintf(stdout, "%s\n", d.Format(mod.Root))
	}
	for _, s := range stale {
		fprintf(stderr, "pythia-vet: stale baseline entry (fixed? remove it): %s\n", s)
	}
	fail := len(fresh) > 0
	if len(stale) > 0 && !*allowStale {
		fprintf(stderr, "pythia-vet: %d stale baseline entr(ies) — regenerate the baseline or pass -allow-stale\n", len(stale))
		fail = true
	}
	if fail {
		fprintf(stderr, "pythia-vet: %d finding(s) (%d baselined, %d stale)\n", len(fresh), suppressed, len(stale))
		return 1
	}
	if suppressed > 0 {
		fprintf(stderr, "pythia-vet: clean (%d baselined finding(s))\n", suppressed)
	}
	return 0
}

// fprintf writes a CLI diagnostic. The streams are injected (so the tests
// can capture output), but they are the command's stdout/stderr: if writing
// a diagnostic fails there is nowhere left to report, so the print error is
// structurally dead — the same contract the fmt.Print family has. The one
// resulting error-hygiene finding is justified in vet-baseline.txt.
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// staleForSelected keeps only the stale entries produced by analyzers that
// actually ran: with -analyzers narrowing the set, entries belonging to the
// skipped analyzers cannot match anything and would be false staleness.
func staleForSelected(stale []string, analyzers []*vet.Analyzer) []string {
	var out []string
	for _, s := range stale {
		for _, a := range analyzers {
			if strings.Contains(s, "["+a.Name+"]") {
				out = append(out, s)
				break
			}
		}
	}
	return out
}
