// Command pythia-vet runs Pythia's repo-specific static analyzers over the
// whole module and reports findings as "file:line: [analyzer] message",
// exiting non-zero when any finding is not covered by the baseline file.
//
// Usage:
//
//	go run ./cmd/pythia-vet ./...
//	go run ./cmd/pythia-vet -update-baseline ./...
//
// Analyzers (see internal/vet):
//
//	hotpath-alloc    pythia:hotpath functions must stay allocation-lean
//	lock-discipline  Lock/Unlock pairing; no Thread.Submit under a lock
//	panic-policy     library panics must be documented invariant violations
//	error-hygiene    no discarded error returns outside tests and examples
//
// The positional package patterns are accepted for familiarity but the tool
// always analyses every package of the enclosing module: the analyzers are
// whole-module properties, not per-package ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pythia-vet", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "", "baseline file (default <module root>/vet-baseline.txt)")
	update := fs.Bool("update-baseline", false, "rewrite the baseline to accept all current findings")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("dir", ".", "directory inside the module to analyse")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range vet.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	mod, err := vet.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-vet:", err)
		return 2
	}
	diags := vet.RunAnalyzers(mod, vet.Analyzers())

	bp := *baselinePath
	if bp == "" {
		bp = filepath.Join(mod.Root, "vet-baseline.txt")
	}

	if *update {
		if err := vet.WriteBaseline(bp, mod.Root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-vet:", err)
			return 2
		}
		fmt.Printf("pythia-vet: wrote %d finding(s) to %s\n", len(diags), bp)
		return 0
	}

	base, err := vet.LoadBaseline(bp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-vet:", err)
		return 2
	}
	fresh, suppressed, stale := base.Filter(mod.Root, diags)
	for _, d := range fresh {
		fmt.Println(d.Format(mod.Root))
	}
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "pythia-vet: stale baseline entry (fixed? remove it): %s\n", s)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "pythia-vet: %d finding(s) (%d baselined)\n", len(fresh), suppressed)
		return 1
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "pythia-vet: clean (%d baselined finding(s))\n", suppressed)
	}
	return 0
}
