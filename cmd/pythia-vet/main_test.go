package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for run() to analyse.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const cleanSrc = `package fixture

// Add sums two ints.
func Add(a, b int) int { return a + b }
`

// buggySrc trips untrusted-size: a wire-decoded count sizes an allocation.
const buggySrc = `package fixture

import "encoding/binary"

// Decode allocates from an unchecked wire count.
func Decode(hdr []byte) []uint64 {
	n := binary.BigEndian.Uint32(hdr)
	return make([]uint64, n)
}
`

// TestRunExitContract pins the documented exit codes and flag behaviour:
// 0 clean, 1 findings or stale baseline, 2 load/flag errors.
func TestRunExitContract(t *testing.T) {
	tests := []struct {
		name       string
		files      map[string]string
		baseline   string // written as vet-baseline.txt when non-empty
		extraArgs  []string
		wantCode   int
		wantStdout []string // substrings
		wantStderr []string // substrings
	}{
		{
			name:     "clean module exits 0",
			files:    map[string]string{"a.go": cleanSrc},
			wantCode: 0,
		},
		{
			name:       "findings exit 1",
			files:      map[string]string{"a.go": buggySrc},
			wantCode:   1,
			wantStdout: []string{"[untrusted-size]"},
			wantStderr: []string{"1 finding(s)"},
		},
		{
			name:      "analyzers filter skips the finding",
			files:     map[string]string{"a.go": buggySrc},
			extraArgs: []string{"-analyzers=panic-policy,error-hygiene"},
			wantCode:  0,
		},
		{
			name:      "analyzers filter still catches it when selected",
			files:     map[string]string{"a.go": buggySrc},
			extraArgs: []string{"-analyzers=untrusted-size"},
			wantCode:  1,
		},
		{
			name:       "unknown analyzer name exits 2",
			files:      map[string]string{"a.go": cleanSrc},
			extraArgs:  []string{"-analyzers=no-such-analyzer"},
			wantCode:   2,
			wantStderr: []string{"no-such-analyzer"},
		},
		{
			name:       "unparseable module exits 2",
			files:      map[string]string{"a.go": "package fixture\nfunc broken( {\n"},
			wantCode:   2,
			wantStderr: []string{"pythia-vet:"},
		},
		{
			name:     "baselined finding exits 0",
			files:    map[string]string{"a.go": buggySrc},
			baseline: "a.go:8: [untrusted-size] size n from untrusted source binary.Uint32 reaches make without a dominating bound check (clamp or validate it first)\n",
			wantCode: 0,
		},
		{
			name:       "stale baseline entry exits 1",
			files:      map[string]string{"a.go": cleanSrc},
			baseline:   "a.go:8: [untrusted-size] size n from untrusted source binary.Uint32 reaches make without a dominating bound check (clamp or validate it first)\n",
			wantCode:   1,
			wantStderr: []string{"stale baseline entry", "regenerate the baseline or pass -allow-stale"},
		},
		{
			name:       "allow-stale downgrades staleness to a warning",
			files:      map[string]string{"a.go": cleanSrc},
			baseline:   "a.go:8: [untrusted-size] size n from untrusted source binary.Uint32 reaches make without a dominating bound check (clamp or validate it first)\n",
			extraArgs:  []string{"-allow-stale"},
			wantCode:   0,
			wantStderr: []string{"stale baseline entry"},
		},
		{
			name:      "stale entry for a skipped analyzer does not fail a filtered run",
			files:     map[string]string{"a.go": cleanSrc},
			baseline:  "a.go:8: [untrusted-size] size n from untrusted source binary.Uint32 reaches make without a dominating bound check (clamp or validate it first)\n",
			extraArgs: []string{"-analyzers=atomic-mix"},
			wantCode:  0,
		},
		{
			name:       "list prints the registry",
			files:      map[string]string{"a.go": cleanSrc},
			extraArgs:  []string{"-list"},
			wantCode:   0,
			wantStdout: []string{"untrusted-size", "atomic-mix", "goroutine-lifecycle", "lock-order", "hotpath-alloc"},
		},
		{
			name:       "list respects the analyzers filter",
			files:      map[string]string{"a.go": cleanSrc},
			extraArgs:  []string{"-list", "-analyzers=lock-order"},
			wantCode:   0,
			wantStdout: []string{"lock-order"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			root := writeModule(t, tt.files)
			bp := filepath.Join(root, "vet-baseline.txt")
			if tt.baseline != "" {
				if err := os.WriteFile(bp, []byte(tt.baseline), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			args := append([]string{"-dir", root}, tt.extraArgs...)
			var stdout, stderr strings.Builder
			code := run(args, &stdout, &stderr)
			if code != tt.wantCode {
				t.Errorf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tt.wantCode, stdout.String(), stderr.String())
			}
			for _, want := range tt.wantStdout {
				if !strings.Contains(stdout.String(), want) {
					t.Errorf("stdout missing %q:\n%s", want, stdout.String())
				}
			}
			for _, want := range tt.wantStderr {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr.String())
				}
			}
		})
	}
}

// TestRunUpdateBaseline round-trips -update-baseline: the rewritten file
// must make the same module pass with no staleness.
func TestRunUpdateBaseline(t *testing.T) {
	root := writeModule(t, map[string]string{"a.go": buggySrc})
	var stdout, stderr strings.Builder
	if code := run([]string{"-dir", root, "-update-baseline"}, &stdout, &stderr); code != 0 {
		t.Fatalf("update exit = %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote 1 finding(s)") {
		t.Errorf("update stdout: %s", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-dir", root}, &stdout, &stderr); code != 0 {
		t.Errorf("post-update exit = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}
