// Command pythia-shardplan prints where a pythiad fleet's shard map places
// tenants — without contacting any daemon. It runs the same rendezvous hash
// the fleet runs, so an operator can answer "which daemon owns tenant X at
// epoch E?" before bumping an epoch, adding a daemon, or draining one:
//
//	pythia-shardplan -daemons host1:9137,host2:9137 -epoch 2 EP CG BT
//	pythia-shardplan -daemons host1:9137,host2:9137 -replicas 1 < tenants.txt
//
// One line per tenant: the tenant, its owner, then any warm replicas, all
// tab-separated. Comparing the output at two epochs shows exactly which
// tenants an epoch bump migrates. scripts/bench-cluster.sh uses this to
// pick a tenant set the map spreads evenly across the fleet.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pythia-shardplan:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("pythia-shardplan", flag.ContinueOnError)
	var (
		daemons  = fs.String("daemons", "", "comma-separated fleet daemon addresses (required)")
		epoch    = fs.Uint64("epoch", 1, "shard-map epoch to plan for")
		replicas = fs.Int("replicas", 0, "warm replicas per tenant beyond the owner")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fleet []string
	for _, a := range strings.Split(*daemons, ",") {
		if a = strings.TrimSpace(a); a != "" {
			fleet = append(fleet, a)
		}
	}
	if len(fleet) == 0 {
		return fmt.Errorf("-daemons is required")
	}
	if *epoch == 0 {
		return fmt.Errorf("-epoch must be at least 1")
	}
	if *replicas < 0 {
		return fmt.Errorf("-replicas must be >= 0")
	}
	m := cluster.Map{Epoch: *epoch, Replicas: *replicas, Daemons: fleet}

	tenants := fs.Args()
	if len(tenants) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if t := strings.TrimSpace(sc.Text()); t != "" {
				tenants = append(tenants, t)
			}
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("reading tenants from stdin: %w", err)
		}
	}
	if len(tenants) == 0 {
		return fmt.Errorf("no tenants given (arguments or stdin)")
	}

	w := bufio.NewWriter(stdout)
	for _, t := range tenants {
		if _, err := fmt.Fprintln(w, strings.Join(append([]string{t}, m.Assignment(t)...), "\t")); err != nil {
			return err
		}
	}
	return w.Flush()
}
