// Command pythia-predict replays one of the evaluation applications against
// a previously recorded trace file and reports prediction accuracy:
//
//	pythia-record  -app LU -class small -o lu.pythia
//	pythia-predict -app LU -class large -trace lu.pythia -distances 1,8,64
//
// This is the paper's Fig. 8 protocol for a single (application, working
// set) pair: at every blocking MPI call the oracle predicts the event x
// events ahead, and the prediction is scored against what the application
// actually did.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/pythia"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pythia-predict:", err)
		os.Exit(1)
	}
}

// printer accumulates the first write error so the reporting code can print
// unconditionally and surface I/O failures once, through run's return.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pythia-predict", flag.ContinueOnError)
	var (
		appName   = fs.String("app", "BT", "application name")
		classFlag = fs.String("class", "large", "working set to replay (small|medium|large)")
		trace     = fs.String("trace", "", "trace file recorded with pythia-record (required)")
		distList  = fs.String("distances", "1,2,4,8,16,32,64,128", "prediction distances")
		samples   = fs.Int("samples", 200, "max query points per rank")
		seed      = fs.Int64("seed", 43, "seed for the replayed execution")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trace == "" {
		return fmt.Errorf("-trace is required")
	}

	app, err := apps.ByName(*appName)
	if err != nil {
		return err
	}
	class, err := apps.ParseClass(*classFlag)
	if err != nil {
		return err
	}
	distances, err := parseInts(*distList)
	if err != nil {
		return err
	}
	ref, err := pythia.LoadTraceSet(*trace)
	if err != nil {
		return fmt.Errorf("loading trace: %w", err)
	}
	maxDist := 0
	for _, d := range distances {
		if d > maxDist {
			maxDist = d
		}
	}

	streams := harness.CaptureStreams(app, class, *seed)
	hits := make(map[int]int)
	total := make(map[int]int)
	var tracked, observed int64
	for tid, stream := range streams {
		oracle, err := pythia.NewPredictOracle(ref, pythia.Config{})
		if err != nil {
			return fmt.Errorf("building oracle for rank %d: %w", tid, err)
		}
		th := oracle.Thread(tid)
		if th.Predictor() == nil {
			continue
		}
		th.StartAtBeginning()
		var points []int
		for i, name := range stream {
			if harness.IsBlockingEvent(name) && i+maxDist < len(stream) {
				points = append(points, i)
			}
		}
		stride := 1
		if len(points) > *samples {
			stride = len(points) / *samples
		}
		sample := make(map[int]bool)
		for i := 0; i < len(points); i += stride {
			sample[points[i]] = true
		}
		for i, name := range stream {
			th.Submit(oracle.Intern(name))
			if !sample[i] {
				continue
			}
			preds := th.PredictSequence(maxDist)
			for _, d := range distances {
				total[d]++
				if d-1 < len(preds) &&
					oracle.EventName(pythia.ID(preds[d-1].EventID)) == stream[i+d] {
					hits[d]++
				}
			}
		}
		// Quarantine (divergence watchdog) is a legitimate fail-open
		// outcome on a divergent replay; only Degraded — a contained
		// panic or breached budget — is a failure worth an exit.
		if h := oracle.Health(); h.State == pythia.Degraded {
			return fmt.Errorf("oracle degraded replaying rank %d: %s", tid, h.Cause)
		}
		st := th.Predictor().Stats()
		tracked += st.Followed
		observed += st.Observed
	}

	p := &printer{w: stdout}
	p.printf("%s.%s replayed against %s\n", app.Name, class, *trace)
	p.printf("tracking: followed %d of %d events (%.1f%%)\n",
		tracked, observed, 100*float64(tracked)/float64(observed))
	for _, d := range distances {
		acc := 0.0
		if total[d] > 0 {
			acc = float64(hits[d]) / float64(total[d])
		}
		p.printf("distance %3d: accuracy %5.1f%%  (%d samples)\n", d, acc*100, total[d])
	}
	return p.err
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad distance %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
