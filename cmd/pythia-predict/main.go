// Command pythia-predict replays one of the evaluation applications against
// a previously recorded trace file and reports prediction accuracy:
//
//	pythia-record  -app LU -class small -o lu.pythia
//	pythia-predict -app LU -class large -trace lu.pythia -distances 1,8,64
//
// This is the paper's Fig. 8 protocol for a single (application, working
// set) pair: at every blocking MPI call the oracle predicts the event x
// events ahead, and the prediction is scored against what the application
// actually did.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/pythia"
)

func main() {
	var (
		appName   = flag.String("app", "BT", "application name")
		classFlag = flag.String("class", "large", "working set to replay (small|medium|large)")
		trace     = flag.String("trace", "", "trace file recorded with pythia-record (required)")
		distList  = flag.String("distances", "1,2,4,8,16,32,64,128", "prediction distances")
		samples   = flag.Int("samples", 200, "max query points per rank")
		seed      = flag.Int64("seed", 43, "seed for the replayed execution")
	)
	flag.Parse()
	if *trace == "" {
		fatal(fmt.Errorf("-trace is required"))
	}

	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	class, err := apps.ParseClass(*classFlag)
	if err != nil {
		fatal(err)
	}
	distances, err := parseInts(*distList)
	if err != nil {
		fatal(err)
	}
	ref, err := pythia.LoadTraceSet(*trace)
	if err != nil {
		fatal(err)
	}
	maxDist := 0
	for _, d := range distances {
		if d > maxDist {
			maxDist = d
		}
	}

	streams := harness.CaptureStreams(app, class, *seed)
	hits := make(map[int]int)
	total := make(map[int]int)
	var tracked, observed int64
	for tid, stream := range streams {
		oracle, err := pythia.NewPredictOracle(ref, pythia.Config{})
		if err != nil {
			fatal(err)
		}
		th := oracle.Thread(tid)
		if th.Predictor() == nil {
			continue
		}
		th.StartAtBeginning()
		var points []int
		for i, name := range stream {
			if harness.IsBlockingEvent(name) && i+maxDist < len(stream) {
				points = append(points, i)
			}
		}
		stride := 1
		if len(points) > *samples {
			stride = len(points) / *samples
		}
		sample := make(map[int]bool)
		for i := 0; i < len(points); i += stride {
			sample[points[i]] = true
		}
		for i, name := range stream {
			th.Submit(oracle.Intern(name))
			if !sample[i] {
				continue
			}
			preds := th.PredictSequence(maxDist)
			for _, d := range distances {
				total[d]++
				if d-1 < len(preds) &&
					oracle.EventName(pythia.ID(preds[d-1].EventID)) == stream[i+d] {
					hits[d]++
				}
			}
		}
		st := th.Predictor().Stats()
		tracked += st.Followed
		observed += st.Observed
	}

	fmt.Printf("%s.%s replayed against %s\n", app.Name, class, *trace)
	fmt.Printf("tracking: followed %d of %d events (%.1f%%)\n",
		tracked, observed, 100*float64(tracked)/float64(observed))
	for _, d := range distances {
		acc := 0.0
		if total[d] > 0 {
			acc = float64(hits[d]) / float64(total[d])
		}
		fmt.Printf("distance %3d: accuracy %5.1f%%  (%d samples)\n", d, acc*100, total[d])
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad distance %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pythia-predict:", err)
	os.Exit(1)
}
