package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/pythia"
)

// recordTrace records a small reference trace for the given app into dir
// and returns its path, mirroring what `pythia-record -o` would produce.
func recordTrace(t *testing.T, dir, name string) string {
	t.Helper()
	app, err := apps.ByName(name)
	if err != nil {
		t.Fatalf("app %s: %v", name, err)
	}
	oracle := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	harness.RunMPIAppWithOracle(oracle, app, apps.Small, 42)
	ts, err := oracle.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	path := filepath.Join(dir, name+".pythia")
	if err := pythia.SaveTraceSet(path, ts); err != nil {
		t.Fatalf("save: %v", err)
	}
	return path
}

// TestReplayReportsAccuracy is the happy path: replay EP.small against its
// own trace and check the report carries the tracking line and one accuracy
// row per requested distance.
func TestReplayReportsAccuracy(t *testing.T) {
	trace := recordTrace(t, t.TempDir(), "EP")
	var out bytes.Buffer
	err := run([]string{"-app", "EP", "-class", "small", "-trace", trace,
		"-distances", "1,8", "-samples", "20"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"EP.small replayed against", "tracking: followed",
		"distance   1:", "distance   8:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestMissingTraceIsAnError: a nonexistent trace path must surface as a
// run() error naming the load failure, which main turns into exit 1.
func TestMissingTraceIsAnError(t *testing.T) {
	err := run([]string{"-app", "EP", "-class", "small",
		"-trace", filepath.Join(t.TempDir(), "no-such.pythia")}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "loading trace") {
		t.Fatalf("missing trace did not fail with a load error, got %v", err)
	}
}

func TestTraceFlagRequired(t *testing.T) {
	err := run([]string{"-app", "EP", "-class", "small"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-trace is required") {
		t.Fatalf("missing -trace accepted, got %v", err)
	}
}

// TestCorruptTraceIsAnError: garbage bytes in place of a trace must fail at
// load time with an error that names the file problem, never a panic or a
// silent zero-accuracy report.
func TestCorruptTraceIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.pythia")
	if err := os.WriteFile(path, []byte("this is not a pythia trace\x00\x01\x02"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	err := run([]string{"-app", "EP", "-class", "small", "-trace", path}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "loading trace") {
		t.Fatalf("corrupt trace did not fail with a load error, got %v", err)
	}
}

func TestBadDistanceIsAnError(t *testing.T) {
	trace := recordTrace(t, t.TempDir(), "EP")
	err := run([]string{"-app", "EP", "-class", "small", "-trace", trace,
		"-distances", "1,banana"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "bad distance") {
		t.Fatalf("bad -distances accepted, got %v", err)
	}
}
