package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tracefile"
	"repro/pythia"
)

// recordFixture records a small two-phase run with a checkpoint journal and
// returns the final trace path and the journal directory.
func recordFixture(t *testing.T) (trace, journal string) {
	t.Helper()
	dir := t.TempDir()
	trace = filepath.Join(dir, "run.pythia")
	journal = filepath.Join(dir, "journal")
	o := pythia.NewRecordOracle(
		pythia.WithoutTimestamps(),
		pythia.WithCheckpoint(pythia.CheckpointConfig{Dir: journal, EveryEvents: 16}),
	)
	a, b := o.Intern("phaseA"), o.Intern("phaseB")
	th := o.Thread(0)
	for i := 0; i < 200; i++ {
		th.Submit(a)
		th.Submit(b)
	}
	if err := o.FinishAndSave(trace); err != nil {
		t.Fatal(err)
	}
	return trace, journal
}

func TestInspectPrintsDurability(t *testing.T) {
	trace, _ := recordFixture(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", trace, "-summary"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "durability: format v") || !strings.Contains(s, "crc ok") {
		t.Fatalf("missing durability line:\n%s", s)
	}
	// A cleanly finished trace carries no salvage provenance.
	if strings.Contains(s, "salvaged") {
		t.Fatalf("clean trace reported as salvaged:\n%s", s)
	}
}

func TestInspectPrintsSalvageProvenance(t *testing.T) {
	_, journal := recordFixture(t)
	ts, _, err := tracefile.Recover(journal)
	if err != nil {
		t.Fatal(err)
	}
	salvaged := filepath.Join(t.TempDir(), "salvaged.pythia")
	if err := pythia.SaveTraceSet(salvaged, ts); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-trace", salvaged, "-summary"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "salvaged from a crashed recording") {
		t.Fatalf("missing salvage provenance:\n%s", s)
	}
	if !strings.Contains(s, "truncation: 1/1 threads truncated") {
		t.Fatalf("missing truncation summary:\n%s", s)
	}
	if !strings.Contains(s, "truncated (+0 dropped)") {
		t.Fatalf("missing per-thread truncation marker:\n%s", s)
	}
}

func TestInspectDetectsCorruptCRC(t *testing.T) {
	trace, _ := recordFixture(t)
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // damage the CRC trailer
	if err := os.WriteFile(trace, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Loading fails, so run() errors — but the error must name the CRC.
	err = run([]string{"-trace", trace, "-summary"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt trace not surfaced as checksum error: %v", err)
	}
}

func TestInspectCheckpointJournal(t *testing.T) {
	_, journal := recordFixture(t)
	// Tear the newest generation so the scan shows both outcomes.
	sts, err := tracefile.ScanJournal(journal)
	if err != nil || len(sts) == 0 {
		t.Fatalf("journal scan: %v (%d generations)", err, len(sts))
	}
	newest := sts[len(sts)-1]
	if err := os.Truncate(newest.Path, 4); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-checkpoints", journal}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "UNRECOVERABLE") {
		t.Fatalf("torn generation not flagged:\n%s", s)
	}
	if len(sts) > 1 && !strings.Contains(s, "<- freshest recoverable") {
		t.Fatalf("no recoverable generation marked:\n%s", s)
	}
}
