// Command pythia-inspect dumps the contents of a Pythia trace file: the
// per-thread grammars in the paper's notation, event statistics, and
// optionally the timing model.
//
//	pythia-inspect -trace bt.pythia
//	pythia-inspect -trace bt.pythia -thread 0 -timing
//	pythia-inspect -trace bt.pythia -json > bt.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/tracefile"
	"repro/pythia"
)

func main() {
	var (
		trace   = flag.String("trace", "", "trace file (required)")
		thread  = flag.Int("thread", -1, "dump only this thread (-1 = all)")
		timing  = flag.Bool("timing", false, "also dump per-event timing statistics")
		unfold  = flag.Bool("unfold", false, "print the full unfolded event stream")
		summary = flag.Bool("summary", false, "print only the per-thread summary")
		asJSON  = flag.Bool("json", false, "dump the whole trace as JSON to stdout")
	)
	flag.Parse()
	if *trace == "" {
		fmt.Fprintln(os.Stderr, "pythia-inspect: -trace is required")
		os.Exit(1)
	}
	ts, err := pythia.LoadTraceSet(*trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-inspect:", err)
		os.Exit(1)
	}

	if *asJSON {
		if err := tracefile.ExportJSON(os.Stdout, ts); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-inspect:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("trace %s: %d event kinds, %d threads, %d events total\n",
		*trace, len(ts.Events), len(ts.Threads), ts.TotalEvents())

	tids := ts.ThreadIDs()
	for _, tid := range tids {
		if *thread >= 0 && int32(*thread) != tid {
			continue
		}
		th := ts.Threads[tid]
		fmt.Printf("\nthread %d: %d events, %d rules", tid, th.Grammar.EventCount, len(th.Grammar.Rules))
		if th.Timing != nil {
			fmt.Printf(", %d timed contexts", len(th.Timing.BySuffix))
		}
		fmt.Println()
		if *summary {
			continue
		}
		fmt.Print(th.Grammar.Dump(func(id int32) string {
			if int(id) < len(ts.Events) {
				return ts.Events[id]
			}
			return fmt.Sprintf("?%d", id)
		}))
		if *unfold {
			fmt.Println("stream:")
			for _, id := range th.Grammar.Unfold() {
				fmt.Println("  ", ts.Events[id])
			}
		}
		if *timing && th.Timing != nil {
			fmt.Println("mean delta before each event (context-free):")
			ids := make([]int32, 0, len(th.Timing.ByEvent))
			for id := range th.Timing.ByEvent {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				s := th.Timing.ByEvent[id]
				fmt.Printf("  %-40s mean %10.0fns  min %8d  max %8d  (n=%d)\n",
					ts.Events[id], s.Mean(), s.Min, s.Max, s.Count)
			}
		}
	}
}
