// Command pythia-inspect dumps the contents of a Pythia trace file: the
// per-thread grammars in the paper's notation, event statistics, durability
// metadata (format version, checksum status, truncation and salvage
// provenance), and optionally the timing model.
//
//	pythia-inspect -trace bt.pythia
//	pythia-inspect -trace bt.pythia -thread 0 -timing
//	pythia-inspect -trace bt.pythia -json > bt.json
//	pythia-inspect -checkpoints bt.ckpt
//	pythia-inspect -generations bt.learn
//
// The -checkpoints mode scans a checkpoint journal directory (see
// pythia-record -checkpoint) and reports every generation with its load
// status, without modifying anything. The -generations mode scans the same
// directory layout as a model-lifecycle journal (see pythiad -learn and
// pythia.WithOnlineLearning) and additionally prints each generation's
// lineage: how it was minted (seed checkpoint, promotion, rollback), which
// generation it replaced, and when.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/tracefile"
	"repro/pythia"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pythia-inspect:", err)
		os.Exit(1)
	}
}

// printer accumulates the first write error so the dump code can print
// unconditionally and surface I/O failures once, through run's return.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *printer) println(args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintln(p.w, args...)
	}
}

func (p *printer) print(args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprint(p.w, args...)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pythia-inspect", flag.ContinueOnError)
	var (
		trace   = fs.String("trace", "", "trace file (required unless -checkpoints)")
		thread  = fs.Int("thread", -1, "dump only this thread (-1 = all)")
		timing  = fs.Bool("timing", false, "also dump per-event timing statistics")
		unfold  = fs.Bool("unfold", false, "print the full unfolded event stream")
		summary = fs.Bool("summary", false, "print only the per-thread summary")
		asJSON  = fs.Bool("json", false, "dump the whole trace as JSON to stdout")
		ckpts   = fs.String("checkpoints", "", "scan a checkpoint journal directory instead of a trace file")
		gens    = fs.String("generations", "", "print the model-lifecycle lineage of a generation journal directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := &printer{w: stdout}
	if *gens != "" {
		if err := inspectGenerations(p, *gens); err != nil {
			return err
		}
		return p.err
	}
	if *ckpts != "" {
		if err := inspectJournal(p, *ckpts); err != nil {
			return err
		}
		return p.err
	}
	if *trace == "" {
		return fmt.Errorf("-trace is required")
	}
	ts, err := pythia.LoadTraceSet(*trace)
	if err != nil {
		return err
	}

	if *asJSON {
		return tracefile.ExportJSON(stdout, ts)
	}

	p.printf("trace %s: %d event kinds, %d threads, %d events total\n",
		*trace, len(ts.Events), len(ts.Threads), ts.TotalEvents())
	printDurability(p, *trace, ts)

	tids := ts.ThreadIDs()
	for _, tid := range tids {
		if *thread >= 0 && int32(*thread) != tid {
			continue
		}
		th := ts.Threads[tid]
		p.printf("\nthread %d: %d events, %d rules", tid, th.Grammar.EventCount, len(th.Grammar.Rules))
		if th.Timing != nil {
			p.printf(", %d timed contexts", len(th.Timing.BySuffix))
		}
		if th.Truncated {
			p.printf(", truncated (+%d dropped)", th.Dropped)
		}
		p.println()
		if *summary {
			continue
		}
		p.print(th.Grammar.Dump(func(id int32) string {
			if int(id) < len(ts.Events) {
				return ts.Events[id]
			}
			return fmt.Sprintf("?%d", id)
		}))
		if *unfold {
			p.println("stream:")
			for _, id := range th.Grammar.Unfold() {
				p.println("  ", ts.Events[id])
			}
		}
		if *timing && th.Timing != nil {
			p.println("mean delta before each event (context-free):")
			ids := make([]int32, 0, len(th.Timing.ByEvent))
			for id := range th.Timing.ByEvent {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				s := th.Timing.ByEvent[id]
				p.printf("  %-40s mean %10.0fns  min %8d  max %8d  (n=%d)\n",
					ts.Events[id], s.Mean(), s.Min, s.Max, s.Count)
			}
		}
	}
	return p.err
}

// printDurability reports the on-disk framing (format version, payload
// size, CRC trailer) and the trace's provenance: a salvaged trace is a
// truncated prefix of a crashed recording and downstream consumers deserve
// to know before they trust its tail.
func printDurability(p *printer, path string, ts *pythia.TraceSet) {
	if meta, err := tracefile.InspectFile(path); err == nil {
		crc := "ok"
		if !meta.CRCOK {
			crc = fmt.Sprintf("MISMATCH (stored %08x, computed %08x)", meta.CRCStored, meta.CRCComputed)
		}
		p.printf("durability: format v%d, payload %d bytes, crc %s\n",
			meta.Version, meta.PayloadBytes, crc)
	}
	if pr := ts.Provenance; pr != nil {
		src := "clean shutdown"
		if pr.Salvaged {
			src = "salvaged from a crashed recording (truncated prefix)"
		}
		if pr.ReplicatedFrom != "" {
			src += ", replicated from " + pr.ReplicatedFrom
		}
		p.printf("provenance: checkpoint generation %d, %s\n", pr.Generation, src)
	}
	var truncated int
	var dropped int64
	for _, th := range ts.Threads {
		if th.Truncated {
			truncated++
		}
		dropped += th.Dropped
	}
	if truncated > 0 {
		p.printf("truncation: %d/%d threads truncated, %d events dropped\n",
			truncated, len(ts.Threads), dropped)
	}
}

// inspectJournal lists every checkpoint generation of a journal directory
// with its load status — the read-only view of what -resume would do.
func inspectJournal(p *printer, dir string) error {
	sts, err := tracefile.ScanJournal(dir)
	if err != nil {
		return err
	}
	if len(sts) == 0 {
		p.printf("journal %s: no checkpoint generations\n", dir)
		return nil
	}
	p.printf("journal %s: %d generation(s)\n", dir, len(sts))
	best := uint64(0)
	for i := len(sts) - 1; i >= 0; i-- {
		if sts[i].Err == "" {
			best = sts[i].Generation
			break
		}
	}
	for _, st := range sts {
		if st.Err != "" {
			p.printf("  generation %d: UNRECOVERABLE: %s\n", st.Generation, st.Err)
			continue
		}
		mark := ""
		if st.Generation == best {
			mark = "  <- freshest recoverable"
		}
		p.printf("  generation %d: %d threads, %d events%s\n",
			st.Generation, st.Threads, st.Events, mark)
	}
	if best == 0 {
		p.println("no generation is recoverable")
	}
	return nil
}

// inspectGenerations prints the model-lifecycle lineage of a generation
// journal: per generation the mint kind (seed checkpoint, promotion,
// rollback), the generation it replaced, the mint time, and the load
// status. This is the read-only audit trail of what a learning session did.
func inspectGenerations(p *printer, dir string) error {
	sts, err := tracefile.ScanJournal(dir)
	if err != nil {
		return err
	}
	if len(sts) == 0 {
		p.printf("journal %s: no generations\n", dir)
		return nil
	}
	p.printf("journal %s: %d generation(s), newest serves after recovery\n", dir, len(sts))
	for _, st := range sts {
		if st.Err != "" {
			p.printf("  generation %d: UNRECOVERABLE: %s\n", st.Generation, st.Err)
			continue
		}
		ts, lerr := pythia.LoadTraceSet(st.Path)
		if lerr != nil {
			p.printf("  generation %d: unreadable: %v\n", st.Generation, lerr)
			continue
		}
		kind, from, when := "seed checkpoint", "", ""
		if pr := ts.Provenance; pr != nil {
			switch pr.Kind {
			case pythia.ProvPromotion:
				kind = "promotion"
			case pythia.ProvRollback:
				kind = "rollback"
			}
			if pr.Parent != 0 {
				from = fmt.Sprintf(", replaced generation %d", pr.Parent)
			}
			if pr.UnixNanos != 0 {
				when = ", minted " + time.Unix(0, pr.UnixNanos).UTC().Format(time.RFC3339)
			}
			if pr.ReplicatedFrom != "" {
				from += ", replicated from " + pr.ReplicatedFrom
			}
		}
		p.printf("  generation %d: %s%s%s: %d threads, %d events\n",
			st.Generation, kind, from, when, st.Threads, st.Events)
	}
	return nil
}
