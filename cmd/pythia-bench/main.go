// Command pythia-bench regenerates the paper's evaluation tables and
// figures (Colin, Trahay, Conan — CLUSTER 2022, section III) on the
// simulated substrates:
//
//	pythia-bench -experiment table1     # Table I: PYTHIA-RECORD overhead
//	pythia-bench -experiment fig7       # grammar extracted from BT.large
//	pythia-bench -experiment fig8       # prediction accuracy vs distance
//	pythia-bench -experiment fig9       # prediction cost vs distance
//	pythia-bench -experiment fig10      # LULESH vs problem size (pudding/24)
//	pythia-bench -experiment fig11      # LULESH vs problem size (pixel/16)
//	pythia-bench -experiment fig12      # LULESH vs max threads (pudding)
//	pythia-bench -experiment fig13      # LULESH vs max threads (pixel)
//	pythia-bench -experiment fig14      # LULESH vs injected error rate
//	pythia-bench -experiment all        # everything, in paper order
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/ompsim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|ext-ranks|ext-duration|all")
		reps       = flag.Int("reps", 10, "repetitions for wall-clock measurements (table1)")
		appsFlag   = flag.String("apps", "", "comma-separated application subset (default: all 13)")
		classFlag  = flag.String("class", "large", "working set for table1 (small|medium|large)")
		samples    = flag.Int("samples", 100, "prediction query samples per rank (fig8/fig9)")
		seeds      = flag.Int("seeds", 5, "seeds averaged in fig14")
	)
	flag.Parse()

	var appList []string
	if *appsFlag != "" {
		appList = strings.Split(*appsFlag, ",")
	}
	class, err := apps.ParseClass(*classFlag)
	if err != nil {
		fatal(err)
	}

	run := func(name string) {
		switch name {
		case "table1":
			rows, err := harness.Table1(harness.Table1Config{
				Class: class, Repetitions: *reps, Apps: appList,
			})
			if err != nil {
				fatal(err)
			}
			check(harness.WriteTable1(os.Stdout, class, rows))
		case "fig7":
			if err := harness.Fig7(os.Stdout); err != nil {
				fatal(err)
			}
		case "fig8":
			rows, err := harness.Fig8(harness.Fig8Config{
				Apps: appList, MaxSamplesPerRank: *samples,
			})
			if err != nil {
				fatal(err)
			}
			check(harness.WriteFig8(os.Stdout, nil, rows))
		case "fig9":
			rows, err := harness.Fig9(harness.Fig9Config{
				Apps: appList, MaxSamples: *samples,
			})
			if err != nil {
				fatal(err)
			}
			check(harness.WriteFig9(os.Stdout, nil, rows))
		case "fig10":
			pts := harness.Fig10(ompsim.Pudding())
			check(harness.WriteLuleshPoints(os.Stdout,
				"Fig 10: Execution time of Lulesh vs problem size (pudding, 24 threads)",
				"size", pts))
		case "fig11":
			pts := harness.Fig10(ompsim.Pixel())
			check(harness.WriteLuleshPoints(os.Stdout,
				"Fig 11: Execution time of Lulesh vs problem size (pixel, 16 threads)",
				"size", pts))
		case "fig12":
			pts := harness.Fig12(ompsim.Pudding())
			check(harness.WriteLuleshPoints(os.Stdout,
				"Fig 12: Execution time of Lulesh vs max threads (pudding, s=30)",
				"max threads", pts))
		case "fig13":
			pts := harness.Fig12(ompsim.Pixel())
			check(harness.WriteLuleshPoints(os.Stdout,
				"Fig 13: Execution time of Lulesh vs max threads (pixel, s=30)",
				"max threads", pts))
		case "fig14":
			check(harness.WriteFig14(os.Stdout, harness.Fig14(*seeds)))
		case "ext-ranks":
			names := appList
			if len(names) == 0 {
				names = []string{"BT", "CG", "LU"}
			}
			rows, err := harness.ExtRanks(names, 4, []int{4, 8}, *samples)
			if err != nil {
				fatal(err)
			}
			check(harness.WriteExtRanks(os.Stdout, rows))
		case "ext-duration":
			rows, err := harness.ExtDuration(30)
			if err != nil {
				fatal(err)
			}
			check(harness.WriteExtDuration(os.Stdout, 30, rows))
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		fmt.Println()
	}

	if *experiment == "all" {
		for _, name := range []string{"table1", "fig7", "fig8", "fig9",
			"fig10", "fig11", "fig12", "fig13", "fig14"} {
			run(name)
		}
		return
	}
	run(*experiment)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pythia-bench:", err)
	os.Exit(1)
}

// check aborts on report-rendering errors (e.g. a closed stdout pipe).
func check(err error) {
	if err != nil {
		fatal(err)
	}
}
