// Command pythia-bench regenerates the paper's evaluation tables and
// figures (Colin, Trahay, Conan — CLUSTER 2022, section III) on the
// simulated substrates:
//
//	pythia-bench -experiment table1     # Table I: PYTHIA-RECORD overhead
//	pythia-bench -experiment fig7       # grammar extracted from BT.large
//	pythia-bench -experiment fig8       # prediction accuracy vs distance
//	pythia-bench -experiment fig9       # prediction cost vs distance
//	pythia-bench -experiment fig10      # LULESH vs problem size (pudding/24)
//	pythia-bench -experiment fig11      # LULESH vs problem size (pixel/16)
//	pythia-bench -experiment fig12      # LULESH vs max threads (pudding)
//	pythia-bench -experiment fig13      # LULESH vs max threads (pixel)
//	pythia-bench -experiment fig14      # LULESH vs injected error rate
//	pythia-bench -experiment all        # everything, in paper order
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/ompsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pythia-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pythia-bench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "table1|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|ext-ranks|ext-duration|all")
		reps       = fs.Int("reps", 10, "repetitions for wall-clock measurements (table1)")
		appsFlag   = fs.String("apps", "", "comma-separated application subset (default: all 13)")
		classFlag  = fs.String("class", "large", "working set for table1 (small|medium|large)")
		samples    = fs.Int("samples", 100, "prediction query samples per rank (fig8/fig9)")
		seeds      = fs.Int("seeds", 5, "seeds averaged in fig14")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var appList []string
	if *appsFlag != "" {
		appList = strings.Split(*appsFlag, ",")
	}
	class, err := apps.ParseClass(*classFlag)
	if err != nil {
		return err
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			rows, err := harness.Table1(harness.Table1Config{
				Class: class, Repetitions: *reps, Apps: appList,
			})
			if err != nil {
				return fmt.Errorf("table1: %w", err)
			}
			if err := harness.WriteTable1(stdout, class, rows); err != nil {
				return fmt.Errorf("rendering table1: %w", err)
			}
		case "fig7":
			if err := harness.Fig7(stdout); err != nil {
				return fmt.Errorf("fig7: %w", err)
			}
		case "fig8":
			rows, err := harness.Fig8(harness.Fig8Config{
				Apps: appList, MaxSamplesPerRank: *samples,
			})
			if err != nil {
				return fmt.Errorf("fig8: %w", err)
			}
			if err := harness.WriteFig8(stdout, nil, rows); err != nil {
				return fmt.Errorf("rendering fig8: %w", err)
			}
		case "fig9":
			rows, err := harness.Fig9(harness.Fig9Config{
				Apps: appList, MaxSamples: *samples,
			})
			if err != nil {
				return fmt.Errorf("fig9: %w", err)
			}
			if err := harness.WriteFig9(stdout, nil, rows); err != nil {
				return fmt.Errorf("rendering fig9: %w", err)
			}
		case "fig10":
			pts := harness.Fig10(ompsim.Pudding())
			if err := harness.WriteLuleshPoints(stdout,
				"Fig 10: Execution time of Lulesh vs problem size (pudding, 24 threads)",
				"size", pts); err != nil {
				return fmt.Errorf("rendering fig10: %w", err)
			}
		case "fig11":
			pts := harness.Fig10(ompsim.Pixel())
			if err := harness.WriteLuleshPoints(stdout,
				"Fig 11: Execution time of Lulesh vs problem size (pixel, 16 threads)",
				"size", pts); err != nil {
				return fmt.Errorf("rendering fig11: %w", err)
			}
		case "fig12":
			pts := harness.Fig12(ompsim.Pudding())
			if err := harness.WriteLuleshPoints(stdout,
				"Fig 12: Execution time of Lulesh vs max threads (pudding, s=30)",
				"max threads", pts); err != nil {
				return fmt.Errorf("rendering fig12: %w", err)
			}
		case "fig13":
			pts := harness.Fig12(ompsim.Pixel())
			if err := harness.WriteLuleshPoints(stdout,
				"Fig 13: Execution time of Lulesh vs max threads (pixel, s=30)",
				"max threads", pts); err != nil {
				return fmt.Errorf("rendering fig13: %w", err)
			}
		case "fig14":
			if err := harness.WriteFig14(stdout, harness.Fig14(*seeds)); err != nil {
				return fmt.Errorf("rendering fig14: %w", err)
			}
		case "ext-ranks":
			names := appList
			if len(names) == 0 {
				names = []string{"BT", "CG", "LU"}
			}
			rows, err := harness.ExtRanks(names, 4, []int{4, 8}, *samples)
			if err != nil {
				return fmt.Errorf("ext-ranks: %w", err)
			}
			if err := harness.WriteExtRanks(stdout, rows); err != nil {
				return fmt.Errorf("rendering ext-ranks: %w", err)
			}
		case "ext-duration":
			rows, err := harness.ExtDuration(30)
			if err != nil {
				return fmt.Errorf("ext-duration: %w", err)
			}
			if err := harness.WriteExtDuration(stdout, 30, rows); err != nil {
				return fmt.Errorf("rendering ext-duration: %w", err)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if _, err := fmt.Fprintln(stdout); err != nil {
			return fmt.Errorf("rendering %s: %w", name, err)
		}
		return nil
	}

	if *experiment == "all" {
		for _, name := range []string{"table1", "fig7", "fig8", "fig9",
			"fig10", "fig11", "fig12", "fig13", "fig14"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*experiment)
}
