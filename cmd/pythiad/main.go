// Command pythiad serves Pythia predictions over the network: it loads
// traces from a directory on demand and answers Submit/Predict queries for
// many concurrent client runtimes.
//
//	pythia-record -app BT -class small -o traces/bt.pythia
//	pythiad -listen :9137 -traces traces/
//
// Clients connect with the pythia/client package (or drive a replay with
// pythia-loadgen). Each trace file <name>.pythia in the trace directory is
// one tenant, addressed by name. SIGTERM/SIGINT drain the daemon
// gracefully: in-flight requests are answered, new sessions refused, and
// the process exits once every connection has wound down (bounded by
// -drain-timeout).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pythiad:", err)
		os.Exit(1)
	}
}

// printer accumulates the first write error so the reporting code can print
// unconditionally and surface I/O failures once, through run's return.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pythiad", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:9137", "TCP address to listen on")
		traces       = fs.String("traces", ".", "directory of <tenant>.pythia trace files")
		maxConns     = fs.Int("max-conns", server.DefaultMaxConns, "concurrent connection cap (negative = unlimited)")
		maxSessions  = fs.Int("max-sessions", server.DefaultMaxSessions, "concurrent session cap (negative = unlimited)")
		drainTimeout = fs.Duration("drain-timeout", server.DefaultDrainTimeout, "bound on graceful shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	info, err := os.Stat(*traces)
	if err != nil {
		return fmt.Errorf("trace directory: %w", err)
	}
	if !info.IsDir() {
		return fmt.Errorf("trace directory: %s is not a directory", *traces)
	}

	logger := log.New(os.Stderr, "pythiad: ", log.LstdFlags)
	srv := server.New(server.Config{
		TraceDir:     *traces,
		MaxConns:     *maxConns,
		MaxSessions:  *maxSessions,
		DrainTimeout: *drainTimeout,
		Logf:         logger.Printf,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *listen, err)
	}
	p := &printer{w: stdout}
	p.printf("pythiad: listening on %s (traces: %s)\n", ln.Addr(), *traces)
	if p.err != nil {
		if cerr := ln.Close(); cerr != nil {
			logger.Printf("closing listener: %v", cerr)
		}
		return p.err
	}

	// SIGTERM/SIGINT trigger a graceful drain; a second signal while
	// draining exits immediately.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	shutdownErr := make(chan error, 1)
	go func() {
		sig := <-sigs
		logger.Printf("received %s, draining (bound %s)", sig, *drainTimeout)
		go func() {
			sig := <-sigs
			logger.Printf("received second %s, exiting now", sig)
			os.Exit(1)
		}()
		shutdownErr <- srv.Shutdown()
	}()

	if err := srv.Serve(ln); err != nil {
		return fmt.Errorf("serving: %w", err)
	}
	// Serve returned nil: a drain is in progress; wait for it to finish.
	if err := <-shutdownErr; err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	p.printf("pythiad: drained, exiting\n")
	return p.err
}
