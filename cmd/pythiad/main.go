// Command pythiad serves Pythia predictions over the network: it loads
// traces from a directory on demand and answers Submit/Predict queries for
// many concurrent client runtimes.
//
//	pythia-record -app BT -class small -o traces/bt.pythia
//	pythiad -listen :9137 -listen unix:///run/pythiad.sock -traces traces/
//
// -listen is repeatable and accepts both TCP addresses (host:port or
// tcp://host:port) and unix-domain sockets (unix:///path). Unix sockets are
// created mode 0600 — same-user clients only — and a stale socket file left
// by a crashed daemon is removed automatically, while a live one is refused.
// Clients on a unix listener may additionally negotiate the shared-memory
// ring transport (see client.Config.SharedMem).
//
// Clients connect with the pythia/client package (or drive a replay with
// pythia-loadgen). Each trace file <name>.pythia in the trace directory is
// one tenant, addressed by name. SIGTERM/SIGINT drain the daemon
// gracefully: in-flight requests are answered, new sessions refused, and
// the process exits once every connection has wound down (bounded by
// -drain-timeout). Draining also removes any unix socket files.
//
// Serving resilience is tunable: a dead connection's sessions stay parked
// for -resume-window awaiting the client's resume token, -keepalive reaps
// half-open connections that stop sending frames, and -max-sessions-per-
// tenant / -shed-sessions bound per-tenant admission and shed speculative
// queries (with retry-after hints) under overload. See DESIGN.md §13.
//
// Several daemons become one fleet with -cluster-peers (comma list of every
// daemon, including this one) plus -cluster-self (this daemon's address as
// peers dial it). Tenants are assigned to daemons by rendezvous hashing at
// the epoch given by -cluster-epoch; peers gossip epochs and adopt the
// highest, and an anti-entropy sweep every -cluster-sync ships model
// checkpoints to new owners and keeps -cluster-replicas warm copies per
// tenant. Per-tenant event budgets (-tenant-events-per-sec, -tenant-burst)
// and a daemon-wide Submit ceiling (-pace-events) bound what any one tenant
// or node absorbs. See DESIGN.md §15.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/transport"
	"repro/pythia"
)

// listenList collects repeated -listen flags.
type listenList []string

func (l *listenList) String() string { return fmt.Sprint([]string(*l)) }

func (l *listenList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pythiad:", err)
		os.Exit(1)
	}
}

// printer accumulates the first write error so the reporting code can print
// unconditionally and surface I/O failures once, through run's return.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pythiad", flag.ContinueOnError)
	var listens listenList
	fs.Var(&listens, "listen", "address to listen on: host:port or unix:///path (repeatable)")
	var (
		traces         = fs.String("traces", ".", "directory of <tenant>.pythia trace files")
		maxConns       = fs.Int("max-conns", server.DefaultMaxConns, "concurrent connection cap (negative = unlimited)")
		maxSessions    = fs.Int("max-sessions", server.DefaultMaxSessions, "concurrent session cap (negative = unlimited)")
		drainTimeout   = fs.Duration("drain-timeout", server.DefaultDrainTimeout, "bound on graceful shutdown")
		resumeWindow   = fs.Duration("resume-window", server.DefaultResumeWindow, "how long a dead connection's sessions await resume (negative = resume disabled)")
		keepalive      = fs.Duration("keepalive", 0, "reap connections silent for this long (0 = never)")
		maxParked      = fs.Int("max-parked", server.DefaultMaxParked, "cap on connections parked for resume (negative = unlimited)")
		tenantSessions = fs.Int("max-sessions-per-tenant", 0, "per-tenant session cap, refused with a retry hint (0 = unlimited)")
		shedSessions   = fs.Int("shed-sessions", 0, "shed speculative queries above this open-session count (0 = never)")
		learn          = fs.Bool("learn", false, "online learning: shadow-record each client's live stream, promote when it out-predicts the serving model, roll back on regression")
		learnEpoch     = fs.Int64("learn-epoch", 0, "scoring epoch in events (0 = default)")
		learnPromote   = fs.Int("learn-promote", 0, "consecutive winning epochs before promotion (0 = default)")
		learnMargin    = fs.Int("learn-margin", 0, "promotion/rollback margin in percent of the epoch (0 = default)")
		learnWatch     = fs.Int("learn-watch", 0, "post-promotion watch window in epochs (0 = default)")
		clusterSelf    = fs.String("cluster-self", "", "this daemon's address as peers dial it (required with -cluster-peers)")
		clusterPeers   = fs.String("cluster-peers", "", "comma-separated fleet daemon addresses, including self (enables cluster mode)")
		clusterEpoch   = fs.Uint64("cluster-epoch", 1, "starting shard-map epoch; peers gossip and adopt the highest")
		clusterRepl    = fs.Int("cluster-replicas", 0, "warm replicas per tenant beyond the owner")
		clusterSync    = fs.Duration("cluster-sync", 5*time.Second, "anti-entropy sweep interval in cluster mode (0 = sweep only on epoch changes)")
		tenantRate     = fs.Int64("tenant-events-per-sec", 0, "per-tenant event budget; queries over budget get retry-after (0 = unlimited)")
		tenantBurst    = fs.Int64("tenant-burst", 0, "per-tenant burst allowance in events (0 = one second of budget)")
		paceEvents     = fs.Int64("pace-events", 0, "daemon-wide Submit ceiling in events/sec, modelling per-node capacity (0 = unpaced)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(listens) == 0 {
		listens = listenList{"127.0.0.1:9137"}
	}

	var fleet []string
	if *clusterPeers != "" {
		for _, a := range strings.Split(*clusterPeers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				fleet = append(fleet, a)
			}
		}
		if *clusterSelf == "" {
			return fmt.Errorf("-cluster-peers requires -cluster-self")
		}
		if *clusterEpoch == 0 {
			return fmt.Errorf("-cluster-epoch must be at least 1")
		}
	}

	info, err := os.Stat(*traces)
	if err != nil {
		return fmt.Errorf("trace directory: %w", err)
	}
	if !info.IsDir() {
		return fmt.Errorf("trace directory: %s is not a directory", *traces)
	}

	var learnPol *pythia.LearnPolicy
	if *learn {
		learnPol = &pythia.LearnPolicy{
			EpochEvents:      *learnEpoch,
			PromoteEpochs:    *learnPromote,
			PromoteMarginPct: *learnMargin,
			WatchEpochs:      *learnWatch,
		}
	}

	logger := log.New(os.Stderr, "pythiad: ", log.LstdFlags)
	srv := server.New(server.Config{
		Learn:                learnPol,
		TraceDir:             *traces,
		MaxConns:             *maxConns,
		MaxSessions:          *maxSessions,
		DrainTimeout:         *drainTimeout,
		ResumeWindow:         *resumeWindow,
		Keepalive:            *keepalive,
		MaxParked:            *maxParked,
		MaxSessionsPerTenant: *tenantSessions,
		ShedSessions:         *shedSessions,
		TenantEventsPerSec:   *tenantRate,
		TenantBurst:          *tenantBurst,
		PaceEvents:           *paceEvents,
		Logf:                 logger.Printf,
	})

	lns := make([]net.Listener, 0, len(listens))
	closeAll := func() {
		for _, ln := range lns {
			if cerr := ln.Close(); cerr != nil {
				logger.Printf("closing listener: %v", cerr)
			}
		}
	}
	p := &printer{w: stdout}
	for _, addr := range listens {
		ln, lerr := transport.Listen(addr)
		if lerr != nil {
			closeAll()
			return fmt.Errorf("listening on %s: %w", addr, lerr)
		}
		lns = append(lns, ln)
		p.printf("pythiad: listening on %s://%s (traces: %s)\n",
			ln.Addr().Network(), ln.Addr(), *traces)
	}
	if p.err != nil {
		closeAll()
		return p.err
	}

	// Cluster mode: publish the shard map, learn any higher epoch the
	// peers already agreed on, and keep an anti-entropy sweep running so
	// migrations and warm replicas converge even when a peer was down
	// during an epoch change.
	if len(fleet) > 0 {
		srv.ConfigureCluster(*clusterSelf, fleet, *clusterEpoch, *clusterRepl)
		p.printf("pythiad: cluster mode: self=%s epoch=%d replicas=%d fleet=%s\n",
			*clusterSelf, *clusterEpoch, *clusterRepl, strings.Join(fleet, ","))
		go srv.ProbePeers()
		if *clusterSync > 0 {
			go func() {
				t := time.NewTicker(*clusterSync)
				defer t.Stop()
				for range t.C {
					srv.ProbePeers()
					srv.Sweep()
				}
			}()
		}
	}

	// Shutdown runs at most once, whether triggered by a signal or by a
	// listener failure; either way it closes every listener, so all Serve
	// calls return and socket files are removed.
	var shutdownOnce sync.Once
	shutdownErr := make(chan error, 1)
	shutdown := func() {
		shutdownOnce.Do(func() { shutdownErr <- srv.Shutdown() })
	}

	// SIGTERM/SIGINT trigger a graceful drain; a second signal while
	// draining exits immediately.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		logger.Printf("received %s, draining (bound %s)", sig, *drainTimeout)
		go func() {
			sig := <-sigs
			logger.Printf("received second %s, exiting now", sig)
			os.Exit(1)
		}()
		shutdown()
	}()

	serveErrs := make(chan error, len(lns))
	for _, ln := range lns {
		go func(ln net.Listener) { serveErrs <- srv.Serve(ln) }(ln)
	}
	var serveErr error
	for range lns {
		if err := <-serveErrs; err != nil {
			if serveErr == nil {
				serveErr = err
			}
			go shutdown() // stop the remaining listeners too
		}
	}
	shutdown() // no-op unless every Serve returned an error before any drain
	drainErr := <-shutdownErr
	if serveErr != nil {
		return fmt.Errorf("serving: %w", serveErr)
	}
	if drainErr != nil {
		return fmt.Errorf("draining: %w", drainErr)
	}
	p.printf("pythiad: drained, exiting\n")
	return p.err
}
