// Command pythia-loadgen drives a pythiad daemon with a closed-loop replay
// workload and reports throughput and latency:
//
//	pythia-record -app EP -class small -o traces/EP.pythia
//	pythiad -listen 127.0.0.1:9137 -traces traces/ &
//	pythia-loadgen -addr 127.0.0.1:9137 -tenant EP -app EP -class small -clients 8 -o BENCH_PR5.json
//
// Each client opens its own connection, replays every rank's event stream
// of the chosen application through pythia/client, and issues a timed
// PredictAt round trip every -predict-every events. The run fails (exit 1)
// if any client sees a protocol or transport error.
//
// -transport selects the tier under test: "tcp" (default), "unix" (pass a
// unix:///path address), or "shm" — the shared-memory rings negotiated over
// a unix connection. In shm mode each thread subscribes with
// Subscribe(-distance, -predict-every) and the timed operation is a Latest
// read of the streamed predictions instead of a PredictAt round trip. The
// run fails if the requested tier did not actually engage, so a fallback
// can never masquerade as a measurement.
//
// -chaos routes every connection through an in-process chaosnet proxy that
// injects a sparse deterministic schedule of resets and torn frames
// (-chaos-seed picks the schedule), exercising the client's reconnect and
// replay machinery under load. Faults stop once every client finishes its
// replay, the clients are given a convergence window, and the JSON report's
// reconnects / dropped_events / retry_later counters show what the run
// survived.
//
// -drift replays the captured streams normally (phase 1) and then replays
// them reversed (phase 2) — a workload phase shift the recorded model
// mispredicts. The timed query becomes a next-event self-check, so the
// report carries per-phase prediction accuracy; against a pythiad -learn
// daemon, phase-2 accuracy recovering is the online-learning lifecycle
// visibly adopting the drifted workload, and the report's promotions /
// rollbacks / shadow_epochs counters come from the ModelInfo wire op.
// -force-promote N forces a promotion N phase-2 events in, and
// -force-rollback M forces a rollback M events after that — the operator
// override and regression paths, exercised end to end by serve-smoke.sh.
//
// -daemons addr1,addr2,... drives a pythiad fleet instead of a single
// daemon: the shard map is fetched once, -tenants N spreads the clients
// over N tenants named <tenant>-00..<tenant>-NN, and each client dials its
// tenant's assignment (owner first, replicas as reconnect fallbacks). The
// report gains a per-daemon breakdown — events/s, p50/p99, retry-later per
// fleet member — which scripts/bench-cluster.sh assembles into
// BENCH_PR10.json. Fleet mode excludes -chaos, -drift, and shm (those
// exercise a single connection's machinery).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/chaosnet"
	"repro/internal/harness"
	"repro/internal/wire"
	"repro/pythia"
	"repro/pythia/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pythia-loadgen:", err)
		os.Exit(1)
	}
}

// printer accumulates the first write error so the reporting code can print
// unconditionally and surface I/O failures once, through run's return.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// clientResult is one load client's contribution to the aggregate.
type clientResult struct {
	daemon      string // fleet mode: owner daemon this client's load lands on
	events      int64
	predictions int64
	answered    int64
	latencies   []time.Duration
	err         error
	health      pythia.Health
	stats       client.Stats
	// Drift-mode extras: per-phase next-event self-check tallies and the
	// final ModelInfo snapshot of this connection's oracle.
	checked [2]int64
	correct [2]int64
	model   pythia.ModelInfo
	modelOK bool
}

// driftRun carries the -drift configuration shared by every client: the
// reversed phase-2 streams and the forced-lifecycle schedule.
type driftRun struct {
	rev           map[int32][]string
	forcePromote  int64 // force a promotion after this many phase-2 events (0 = off)
	forceRollback int64 // then force a rollback this many events later (0 = off)
}

// lifecycleCtl is one client's progress through the forced-lifecycle
// schedule; each connection serves its own learning oracle, so each client
// drives its own promote/rollback.
type lifecycleCtl struct {
	phase2Events int64
	promoted     bool
	rolledBack   bool
}

// driftReport is the drift-mode section of the JSON report: per-phase
// self-check accuracy plus the lifecycle counters summed over every
// client's oracle.
type driftReport struct {
	Phase1Checked  int64   `json:"phase1_checked"`
	Phase1Correct  int64   `json:"phase1_correct"`
	Phase1Accuracy float64 `json:"phase1_accuracy"`
	Phase2Checked  int64   `json:"phase2_checked"`
	Phase2Correct  int64   `json:"phase2_correct"`
	Phase2Accuracy float64 `json:"phase2_accuracy"`
	Promotions     uint64  `json:"promotions"`
	Rollbacks      uint64  `json:"rollbacks"`
	ShadowEpochs   uint64  `json:"shadow_epochs"`
}

// daemonReport is one fleet member's share of a multi-daemon run.
type daemonReport struct {
	Addr         string  `json:"addr"`
	Clients      int     `json:"clients"`
	Events       int64   `json:"events"`
	EventsPerS   float64 `json:"events_per_s"`
	LatencyP50Us float64 `json:"latency_p50_us"`
	LatencyP99Us float64 `json:"latency_p99_us"`
	RetryLater   uint64  `json:"retry_later"`
}

// benchReport is the committed BENCH_PR5.json layout.
type benchReport struct {
	Config struct {
		App          string   `json:"app"`
		Class        string   `json:"class"`
		Tenant       string   `json:"tenant"`
		Transport    string   `json:"transport"`
		Clients      int      `json:"clients"`
		PredictEvery int      `json:"predict_every"`
		Distance     int      `json:"distance"`
		Seed         int64    `json:"seed"`
		Chaos        bool     `json:"chaos,omitempty"`
		ChaosSeed    int64    `json:"chaos_seed,omitempty"`
		Repeat       int      `json:"repeat,omitempty"`
		Drift        bool     `json:"drift,omitempty"`
		ForcePromote int64    `json:"force_promote,omitempty"`
		ForceRollbk  int64    `json:"force_rollback,omitempty"`
		Daemons      []string `json:"daemons,omitempty"`
		Tenants      int      `json:"tenants,omitempty"`
	} `json:"config"`
	Results struct {
		WallS          float64 `json:"wall_s"`
		Events         int64   `json:"events"`
		Predictions    int64   `json:"predictions"`
		Answered       int64   `json:"answered"`
		EventsPerS     float64 `json:"events_per_s"`
		PredictsPerS   float64 `json:"predictions_per_s"`
		LatencyP50Us   float64 `json:"latency_p50_us"`
		LatencyP99Us   float64 `json:"latency_p99_us"`
		LatencyMaxUs   float64 `json:"latency_max_us"`
		ProtocolErrors int     `json:"protocol_errors"`
		Reconnects     uint64  `json:"reconnects"`
		DroppedEvents  uint64  `json:"dropped_events"`
		RetryLater     uint64  `json:"retry_later"`

		PerDaemon []daemonReport `json:"per_daemon,omitempty"`
		Drift     *driftReport   `json:"drift,omitempty"`
	} `json:"results"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pythia-loadgen", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:9137", "pythiad address (host:port or unix:///path)")
		transp       = fs.String("transport", "tcp", "transport tier to measure: tcp, unix, or shm")
		tenant       = fs.String("tenant", "", "tenant (trace name) to query (default: -app)")
		appName      = fs.String("app", "EP", "application whose event streams to replay")
		classFlag    = fs.String("class", "small", "working set to replay (small|medium|large)")
		seed         = fs.Int64("seed", 42, "seed for the replayed execution")
		clients      = fs.Int("clients", 8, "concurrent client connections")
		predictEvery = fs.Int("predict-every", 16, "issue a timed PredictAt every N submitted events")
		distance     = fs.Int("distance", 16, "prediction distance for the timed queries")
		out          = fs.String("o", "", "write a JSON report (e.g. BENCH_PR5.json)")
		chaos        = fs.Bool("chaos", false, "inject deterministic network faults between the clients and the daemon")
		chaosSeed    = fs.Int64("chaos-seed", 1, "seed for the chaos fault schedule")
		repeat       = fs.Int("repeat", 1, "replay the captured streams this many times per client (lengthens the run)")
		drift        = fs.Bool("drift", false, "after the normal replay, replay the streams reversed (a workload phase shift) and self-check per-phase accuracy")
		forceProm    = fs.Int64("force-promote", 0, "with -drift: force a promotion after N phase-2 events per client (0 = scored promotion only)")
		forceRoll    = fs.Int64("force-rollback", 0, "with -drift: force a rollback N events after the forced promotion (0 = off)")
		daemons      = fs.String("daemons", "", "comma-separated pythiad fleet addresses: shard-map-routed multi-daemon mode (excludes -chaos/-drift/shm)")
		tenants      = fs.Int("tenants", 1, "with -daemons: spread clients over N tenants named <tenant>-00..")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	app, err := apps.ByName(*appName)
	if err != nil {
		return err
	}
	class, err := apps.ParseClass(*classFlag)
	if err != nil {
		return err
	}
	if *tenant == "" {
		*tenant = app.Name
	}
	if *clients < 1 {
		return fmt.Errorf("-clients must be >= 1")
	}
	if *predictEvery < 1 {
		return fmt.Errorf("-predict-every must be >= 1")
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be >= 1")
	}
	switch *transp {
	case "tcp", "unix", "shm":
	default:
		return fmt.Errorf("-transport must be tcp, unix, or shm (got %q)", *transp)
	}
	if (*forceProm != 0 || *forceRoll != 0) && !*drift {
		return fmt.Errorf("-force-promote/-force-rollback require -drift")
	}
	if *forceRoll != 0 && *forceProm == 0 {
		return fmt.Errorf("-force-rollback requires -force-promote")
	}
	if *forceProm < 0 || *forceRoll < 0 {
		return fmt.Errorf("-force-promote/-force-rollback must be >= 0")
	}
	if *drift && *transp == "shm" {
		// The self-check needs a synchronous PredictAt(1) round trip; the
		// shm tier streams predictions at a fixed distance instead.
		return fmt.Errorf("-drift requires a socket transport (tcp or unix)")
	}
	// In fleet mode -tenant may itself be a comma-separated list of tenant
	// names (client i uses list[i%len]); -tenants N instead derives N names
	// as <tenant>-00... The explicit list lets a caller hand-pick a tenant
	// set (e.g. one the shard map spreads evenly — see bench-cluster.sh).
	tenantList := []string{*tenant}
	if strings.Contains(*tenant, ",") {
		tenantList = tenantList[:0]
		for _, t := range strings.Split(*tenant, ",") {
			if t = strings.TrimSpace(t); t != "" {
				tenantList = append(tenantList, t)
			}
		}
		if len(tenantList) == 0 {
			return fmt.Errorf("-tenant lists no tenant names")
		}
	}
	if *daemons != "" {
		if *chaos || *drift {
			return fmt.Errorf("-daemons excludes -chaos and -drift")
		}
		if *transp == "shm" {
			return fmt.Errorf("-daemons requires a socket transport (tcp or unix)")
		}
		if *tenants < 1 {
			return fmt.Errorf("-tenants must be >= 1")
		}
		if *tenants > 1 && len(tenantList) > 1 {
			return fmt.Errorf("-tenants and a -tenant list are mutually exclusive")
		}
	} else {
		if *tenants != 1 {
			return fmt.Errorf("-tenants requires -daemons")
		}
		if len(tenantList) > 1 {
			return fmt.Errorf("a -tenant list requires -daemons")
		}
	}

	// One deterministic capture, replayed read-only by every client.
	streams := harness.CaptureStreams(app, class, *seed)
	tids := make([]int32, 0, len(streams))
	for tid := range streams {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	var dr *driftRun
	if *drift {
		dr = &driftRun{
			rev:           make(map[int32][]string, len(streams)),
			forcePromote:  *forceProm,
			forceRollback: *forceRoll,
		}
		for tid, stream := range streams {
			rev := make([]string, len(stream))
			for i, name := range stream {
				rev[len(stream)-1-i] = name
			}
			dr.rev[tid] = rev
		}
	}

	dialAddr := *addr
	var proxy *chaosnet.Proxy
	if *chaos {
		// Sparse schedule: frequent enough to force reconnects under load,
		// sparse enough that the post-replay convergence window settles.
		proxy, err = chaosnet.New(*addr, chaosnet.Config{
			Seed:       *chaosSeed,
			ResetEvery: 401,
			TornEvery:  997,
		})
		if err != nil {
			return fmt.Errorf("chaos proxy: %w", err)
		}
		defer func() {
			if cerr := proxy.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "pythia-loadgen: closing chaos proxy:", cerr)
			}
		}()
		dialAddr = proxy.Addr()
	}

	// Fleet mode: fetch the shard map once and route each client's tenant
	// to its assignment — owner first, warm replicas as reconnect
	// fallbacks. Every client still opens its own connection so the
	// per-daemon breakdown attributes load connection by connection.
	var fleet *client.Fleet
	if *daemons != "" {
		fleet, err = client.DialFleet(*daemons, client.Config{})
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		defer func() {
			if cerr := fleet.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "pythia-loadgen: closing fleet:", cerr)
			}
		}()
	}

	results := make([]clientResult, *clients)
	start := time.Now()
	var wg, replayWG sync.WaitGroup
	replayWG.Add(*clients)
	if *chaos {
		// Once every client has finished its replay, stop injecting faults
		// so the convergence phase (final replays, Err drain) settles.
		go func() {
			replayWG.Wait()
			proxy.ClearFaults()
		}()
	}
	for ci := 0; ci < *clients; ci++ {
		target, ct := dialAddr, *tenant
		if fleet != nil {
			if len(tenantList) > 1 {
				ct = tenantList[ci%len(tenantList)]
			} else if *tenants > 1 {
				ct = fmt.Sprintf("%s-%02d", *tenant, ci%*tenants)
			}
			route := fleet.Route(ct)
			target = strings.Join(route, ",")
			results[ci].daemon = route[0]
		}
		wg.Add(1)
		go func(res *clientResult, target, ct string) {
			defer wg.Done()
			runClient(res, target, ct, *transp, streams, tids, *predictEvery, *distance, *repeat, *chaos, dr, &replayWG)
		}(&results[ci], target, ct)
	}
	wg.Wait()
	wall := time.Since(start)

	var rep benchReport
	rep.Config.App = app.Name
	rep.Config.Class = class.String()
	rep.Config.Tenant = *tenant
	rep.Config.Transport = *transp
	rep.Config.Clients = *clients
	rep.Config.PredictEvery = *predictEvery
	rep.Config.Distance = *distance
	rep.Config.Seed = *seed
	rep.Config.Chaos = *chaos
	rep.Config.ChaosSeed = *chaosSeed
	if !*chaos {
		rep.Config.ChaosSeed = 0
	}
	if *repeat > 1 {
		rep.Config.Repeat = *repeat
	}
	rep.Config.Drift = *drift
	rep.Config.ForcePromote = *forceProm
	rep.Config.ForceRollbk = *forceRoll
	if fleet != nil {
		rep.Config.Daemons = fleet.Map().Daemons
		if len(rep.Config.Daemons) == 0 {
			rep.Config.Daemons = strings.Split(*daemons, ",")
		}
		rep.Config.Tenants = *tenants
		if len(tenantList) > 1 {
			rep.Config.Tenants = len(tenantList)
		}
	}

	var all []time.Duration
	var firstErr error
	for i := range results {
		r := &results[i]
		rep.Results.Events += r.events
		rep.Results.Predictions += r.predictions
		rep.Results.Answered += r.answered
		rep.Results.Reconnects += r.stats.Reconnects
		rep.Results.DroppedEvents += r.stats.DroppedEvents
		rep.Results.RetryLater += r.stats.RetryLater
		all = append(all, r.latencies...)
		if r.err != nil {
			rep.Results.ProtocolErrors++
			if firstErr == nil {
				firstErr = r.err
			}
		}
	}
	rep.Results.WallS = wall.Seconds()
	if wall > 0 {
		rep.Results.EventsPerS = float64(rep.Results.Events) / wall.Seconds()
		rep.Results.PredictsPerS = float64(rep.Results.Predictions) / wall.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.Results.LatencyP50Us = quantileUs(all, 0.50)
	rep.Results.LatencyP99Us = quantileUs(all, 0.99)
	if len(all) > 0 {
		rep.Results.LatencyMaxUs = float64(all[len(all)-1].Nanoseconds()) / 1e3
	}
	if fleet != nil {
		byDaemon := make(map[string][]*clientResult)
		for i := range results {
			byDaemon[results[i].daemon] = append(byDaemon[results[i].daemon], &results[i])
		}
		addrs := make([]string, 0, len(byDaemon))
		for a := range byDaemon {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		for _, a := range addrs {
			d := daemonReport{Addr: a}
			var lats []time.Duration
			for _, r := range byDaemon[a] {
				d.Clients++
				d.Events += r.events
				d.RetryLater += r.stats.RetryLater
				lats = append(lats, r.latencies...)
			}
			if wall > 0 {
				d.EventsPerS = float64(d.Events) / wall.Seconds()
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			d.LatencyP50Us = quantileUs(lats, 0.50)
			d.LatencyP99Us = quantileUs(lats, 0.99)
			rep.Results.PerDaemon = append(rep.Results.PerDaemon, d)
		}
	}
	if *drift {
		d := &driftReport{}
		for i := range results {
			r := &results[i]
			d.Phase1Checked += r.checked[0]
			d.Phase1Correct += r.correct[0]
			d.Phase2Checked += r.checked[1]
			d.Phase2Correct += r.correct[1]
			if r.modelOK {
				d.Promotions += r.model.Promotions
				d.Rollbacks += r.model.Rollbacks
				d.ShadowEpochs += r.model.ShadowEpochs
			}
		}
		if d.Phase1Checked > 0 {
			d.Phase1Accuracy = float64(d.Phase1Correct) / float64(d.Phase1Checked)
		}
		if d.Phase2Checked > 0 {
			d.Phase2Accuracy = float64(d.Phase2Correct) / float64(d.Phase2Checked)
		}
		rep.Results.Drift = d
	}

	where := *addr
	if fleet != nil {
		where = *daemons
	}
	p := &printer{w: stdout}
	p.printf("%s.%s via %s [%s]: %d clients, %d events, %d predictions (%d answered) in %.2fs\n",
		app.Name, class, where, *transp, *clients, rep.Results.Events, rep.Results.Predictions,
		rep.Results.Answered, rep.Results.WallS)
	p.printf("throughput: %.0f events/s, %.0f predictions/s\n",
		rep.Results.EventsPerS, rep.Results.PredictsPerS)
	p.printf("predict latency: p50 %.1fus  p99 %.1fus  max %.1fus\n",
		rep.Results.LatencyP50Us, rep.Results.LatencyP99Us, rep.Results.LatencyMaxUs)
	if *chaos || rep.Results.Reconnects+rep.Results.DroppedEvents+rep.Results.RetryLater > 0 {
		p.printf("resilience: %d reconnects, %d dropped events, %d retry-later\n",
			rep.Results.Reconnects, rep.Results.DroppedEvents, rep.Results.RetryLater)
	}
	for _, d := range rep.Results.PerDaemon {
		p.printf("daemon %s: %d clients, %d events (%.0f events/s), p50 %.1fus p99 %.1fus, %d retry-later\n",
			d.Addr, d.Clients, d.Events, d.EventsPerS, d.LatencyP50Us, d.LatencyP99Us, d.RetryLater)
	}
	if d := rep.Results.Drift; d != nil {
		p.printf("drift accuracy: phase1 %.1f%% (%d/%d), phase2 %.1f%% (%d/%d)\n",
			100*d.Phase1Accuracy, d.Phase1Correct, d.Phase1Checked,
			100*d.Phase2Accuracy, d.Phase2Correct, d.Phase2Checked)
		p.printf("lifecycle: %d promotions, %d rollbacks, %d shadow epochs\n",
			d.Promotions, d.Rollbacks, d.ShadowEpochs)
	}
	for i := range results {
		if h := results[i].health; h.State != pythia.Healthy {
			p.printf("client %d oracle health: %s (%s)\n", i, h.State, h.Cause)
		}
	}

	if *out != "" {
		blob, merr := json.MarshalIndent(&rep, "", "  ")
		if merr != nil {
			return fmt.Errorf("encoding report: %w", merr)
		}
		blob = append(blob, '\n')
		if werr := os.WriteFile(*out, blob, 0o644); werr != nil {
			return fmt.Errorf("writing report: %w", werr)
		}
		p.printf("report -> %s\n", *out)
	}
	if firstErr != nil {
		return fmt.Errorf("%d of %d clients saw protocol errors, first: %w",
			rep.Results.ProtocolErrors, *clients, firstErr)
	}
	return p.err
}

// runClient replays every rank's stream over one connection. On the socket
// tiers the timed operation is a PredictAt round trip every predictEvery
// events; on shm it is a Latest read of the streamed predictions the server
// pushes at the same cadence. Under chaos the replay tolerates transient
// failures (reconnect and replay cover them) and a convergence window after
// the stream drains the client back to a clean Err. In drift mode the whole
// replay runs twice — recorded streams, then reversed streams — with the
// timed operation swapped for a next-event self-check, and the connection's
// ModelInfo snapshot is taken at the end.
func runClient(res *clientResult, addr, tenant, transp string, streams map[int32][]string, tids []int32, predictEvery, distance, repeat int, chaos bool, dr *driftRun, replayWG *sync.WaitGroup) {
	replayDone := false
	defer func() {
		if !replayDone {
			replayWG.Done()
		}
	}()
	cfg := client.Config{SharedMem: transp == "shm"}
	if chaos {
		cfg.ReconnectMinDelay = 5 * time.Millisecond
	}
	// Under chaos the faults hit the setup round trips too; retry until the
	// handshake slips between them.
	var c *client.Client
	var err error
	for attempt := 0; ; attempt++ {
		c, err = client.Dial(addr, cfg)
		if err == nil {
			break
		}
		if !chaos || attempt >= 200 {
			res.err = err
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer func() {
		if cerr := c.Close(); cerr != nil && res.err == nil {
			res.err = cerr
		}
	}()
	// A fallback tier must not masquerade as the one under test.
	if got := c.Transport(); got != transp {
		res.err = fmt.Errorf("negotiated transport %q, want %q", got, transp)
		return
	}
	var o *client.Oracle
	for attempt := 0; ; attempt++ {
		o, err = c.Oracle(tenant)
		if err == nil {
			break
		}
		if !chaos || attempt >= 200 {
			res.err = err
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	var predBuf []pythia.Prediction
	phases := 1
	if dr != nil {
		phases = 2
	}
	var lc lifecycleCtl
	for phase := 0; phase < phases; phase++ {
		src := streams
		if phase == 1 {
			src = dr.rev
		}
		for r := 0; r < repeat; r++ {
			for _, tid := range tids {
				runThread(res, c, o, tid, src[tid], transp, predictEvery, distance, chaos, dr, phase, &lc, &predBuf)
				if res.err != nil {
					return
				}
			}
		}
	}
	if dr != nil {
		if mi, merr := o.ModelInfo(); merr == nil {
			res.model = mi
			res.modelOK = true
		} else if !chaos {
			res.err = fmt.Errorf("model info: %w", merr)
			return
		}
	}
	replayDone = true
	replayWG.Done()
	if chaos {
		// Faults stop once every client reaches this point (the replayWG
		// barrier mutes the proxy); give the reconnect/replay machinery a
		// window to converge before judging Err.
		replayWG.Wait()
		deadline := time.Now().Add(15 * time.Second)
		for {
			for _, tid := range tids {
				o.Thread(tid).Flush()
			}
			if c.Err() == nil {
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	res.health = o.Health()
	res.err = c.Err()
	res.stats = c.Stats()
}

// runThread replays one rank's stream once, issuing the timed operation on
// the predictEvery cadence. Under chaos the replay is paced while the client
// is offline: fail-open Submits cost nanoseconds, so without the pacing an
// outage longer than the stream would race past unreplayed. In drift mode
// the timed operation is a PredictAt(1) round trip checked against the next
// event the replay is about to submit, and phase-2 events drive the forced
// promote/rollback schedule.
func runThread(res *clientResult, c *client.Client, o *client.Oracle, tid int32, stream []string, transp string, predictEvery, distance int, chaos bool, dr *driftRun, phase int, lc *lifecycleCtl, predBuf *[]pythia.Prediction) {
	th := o.Thread(tid)
	th.StartAtBeginning()
	subscribed := false
	for i, name := range stream {
		if chaos && c.Err() != nil {
			time.Sleep(time.Millisecond)
		}
		th.Submit(o.Intern(name))
		res.events++
		if dr != nil && phase == 1 {
			lc.phase2Events++
			if err := stepLifecycle(o, dr, lc); err != nil {
				if !chaos {
					res.err = err
					return
				}
			}
		}
		if transp == "shm" && !subscribed {
			// The first Submit bound the thread's ring; from here the
			// server streams PredictSequence(distance) every
			// predictEvery events into the shared slot.
			if serr := th.Subscribe(distance, predictEvery); serr != nil {
				if !chaos {
					res.err = serr
					return
				}
				// Offline or mid-rebind: retry on a later event.
			} else {
				subscribed = true
			}
		}
		if (i+1)%predictEvery != 0 {
			continue
		}
		t0 := time.Now()
		var ok bool
		switch {
		case dr != nil:
			pred, got := th.PredictAt(1)
			ok = got
			if i+1 < len(stream) {
				res.checked[phase]++
				if got && pred.EventID == int32(o.Intern(stream[i+1])) {
					res.correct[phase]++
				}
			}
		case transp == "shm":
			*predBuf, ok = th.Latest(*predBuf)
			ok = ok && len(*predBuf) > 0
		default:
			_, ok = th.PredictAt(distance)
		}
		res.latencies = append(res.latencies, time.Since(t0))
		res.predictions++
		if ok {
			res.answered++
		}
	}
}

// stepLifecycle advances the forced promote/rollback schedule after one
// phase-2 event: promote once at forcePromote events, roll back once
// forceRollback events later.
func stepLifecycle(o *client.Oracle, dr *driftRun, lc *lifecycleCtl) error {
	if dr.forcePromote > 0 && !lc.promoted && lc.phase2Events >= dr.forcePromote {
		lc.promoted = true
		if _, err := forceOp(o.Promote); err != nil {
			return fmt.Errorf("force-promote: %w", err)
		}
	}
	if dr.forceRollback > 0 && lc.promoted && !lc.rolledBack &&
		lc.phase2Events >= dr.forcePromote+dr.forceRollback {
		lc.rolledBack = true
		if _, err := forceOp(o.Rollback); err != nil {
			return fmt.Errorf("force-rollback: %w", err)
		}
	}
	return nil
}

// forceOp runs a forced lifecycle operation, retrying CodeLifecycle
// refusals briefly: the shadow's first candidate materializes
// asynchronously after an epoch completes, so a forced promotion scheduled
// right at the epoch boundary can race the server's judge by a few
// milliseconds. Any other error — and a refusal that persists past the
// window — is returned as-is.
func forceOp(op func() (uint64, error)) (uint64, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		gen, err := op()
		var re *client.RemoteError
		if err == nil || !errors.As(err, &re) || re.Code != wire.CodeLifecycle ||
			time.Now().After(deadline) {
			return gen, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// quantileUs returns the q-quantile of sorted latencies in microseconds.
func quantileUs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e3
}
