// Command pythia-record runs one of the evaluation applications under
// PYTHIA-RECORD and writes the resulting trace file:
//
//	pythia-record -app BT -class small -o bt.pythia
//
// Long runs can be made crash-safe with a checkpoint journal; a run that
// died (crash, OOM kill, walltime limit) is then salvaged with -resume:
//
//	pythia-record -app BT -class large -checkpoint bt.ckpt -o bt.pythia
//	pythia-record -resume -checkpoint bt.ckpt -o bt.pythia
//
// The trace can then be inspected with pythia-inspect or used for
// predictions with pythia-predict.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/pythia"
)

// newRecordOracle is swapped by tests to inject failing oracles.
var newRecordOracle = pythia.NewRecordOracle

// printer accumulates the first write error so the reporting code can print
// unconditionally and surface I/O failures once, through run's return.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *printer) println(args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintln(p.w, args...)
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pythia-record:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pythia-record", flag.ContinueOnError)
	var (
		appName   = fs.String("app", "BT", "application (BT CG EP FT IS LU MG SP AMG Lulesh Kripke miniFE Quicksilver)")
		classFlag = fs.String("class", "small", "working set (small|medium|large)")
		out       = fs.String("o", "", "output trace file (default <app>.<class>.pythia)")
		seed      = fs.Int64("seed", 42, "seed for data-dependent applications")

		ckptDir      = fs.String("checkpoint", "", "journal directory for crash-safe checkpoints (off when empty)")
		ckptEvery    = fs.Int64("checkpoint-every", 0, "per-thread checkpoint cadence in events (0 = default)")
		ckptInterval = fs.Duration("checkpoint-interval", 0, "wall-clock checkpoint cadence (0 = event-driven only)")
		ckptKeep     = fs.Int("checkpoint-keep", 0, "checkpoint generations to retain (0 = default)")
		resume       = fs.Bool("resume", false, "salvage the freshest checkpoint from -checkpoint into -o instead of running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *resume {
		if *ckptDir == "" {
			return fmt.Errorf("-resume requires -checkpoint <dir>")
		}
		path := *out
		if path == "" {
			path = "recovered.pythia"
		}
		return salvage(stdout, *ckptDir, path)
	}

	app, err := apps.ByName(*appName)
	if err != nil {
		return err
	}
	class, err := apps.ParseClass(*classFlag)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s.%s.pythia", app.Name, class)
	}

	opts := []pythia.RecordOption{pythia.WithoutTimestamps()}
	if *ckptDir != "" {
		opts = append(opts, pythia.WithCheckpoint(pythia.CheckpointConfig{
			Dir:         *ckptDir,
			EveryEvents: *ckptEvery,
			Interval:    *ckptInterval,
			Keep:        *ckptKeep,
		}))
	}
	oracle := newRecordOracle(opts...)

	run, err := harness.RunMPIAppWithOracle(oracle, app, class, *seed)
	if err != nil {
		return fmt.Errorf("recording %s.%s failed: %w", app.Name, class, err)
	}
	if err := pythia.SaveTraceSet(path, run.Trace); err != nil {
		return fmt.Errorf("saving trace: %w", err)
	}
	p := &printer{w: stdout}
	if h := oracle.Health(); h.State != pythia.Healthy {
		p.printf("warning: oracle finished %s: %s\n", h.State, h.Cause)
	}
	p.printf("%s.%s: %d ranks, %d events, %d rules, wall %v -> %s\n",
		app.Name, class, len(run.Trace.Threads), run.Trace.TotalEvents(),
		run.Trace.TotalRules(), run.Wall.Round(time.Millisecond), path)
	return p.err
}

// salvage recovers the freshest loadable checkpoint generation into a
// normal trace file and reports what was used and what was skipped.
func salvage(stdout io.Writer, dir, path string) error {
	p := &printer{w: stdout}
	ts, rep, err := pythia.Recover(dir)
	for _, sk := range rep.Skipped {
		p.printf("skipped generation %d: %s\n", sk.Generation, sk.Err)
	}
	if err != nil {
		return fmt.Errorf("recovering from %s: %w", dir, err)
	}
	if err := pythia.SaveTraceSet(path, ts); err != nil {
		return fmt.Errorf("saving recovered trace: %w", err)
	}
	var dropped int64
	for _, th := range ts.Threads {
		dropped += th.Dropped
	}
	p.printf("recovered generation %d: %d threads, %d events (+%d dropped) -> %s\n",
		rep.Used.Generation, len(ts.Threads), ts.TotalEvents(), dropped, path)
	p.println("note: a salvaged trace is a truncated prefix of the crashed run")
	return p.err
}
