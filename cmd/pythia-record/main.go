// Command pythia-record runs one of the evaluation applications under
// PYTHIA-RECORD and writes the resulting trace file:
//
//	pythia-record -app BT -class small -o bt.pythia
//
// The trace can then be inspected with pythia-inspect or used for
// predictions with pythia-predict.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/pythia"
)

func main() {
	var (
		appName   = flag.String("app", "BT", "application (BT CG EP FT IS LU MG SP AMG Lulesh Kripke miniFE Quicksilver)")
		classFlag = flag.String("class", "small", "working set (small|medium|large)")
		out       = flag.String("o", "", "output trace file (default <app>.<class>.pythia)")
		seed      = flag.Int64("seed", 42, "seed for data-dependent applications")
	)
	flag.Parse()

	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	class, err := apps.ParseClass(*classFlag)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s.%s.pythia", app.Name, class)
	}

	run := harness.RunMPIApp(app, class, true, *seed)
	if err := pythia.SaveTraceSet(path, run.Trace); err != nil {
		fatal(err)
	}
	fmt.Printf("%s.%s: %d ranks, %d events, %d rules, wall %v -> %s\n",
		app.Name, class, len(run.Trace.Threads), run.Trace.TotalEvents(),
		run.Trace.TotalRules(), run.Wall.Round(1e6), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pythia-record:", err)
	os.Exit(1)
}
