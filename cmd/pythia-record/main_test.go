package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/pythia"
)

// TestFinishFailureIsAnError drives the recorder into a contained internal
// panic (a clock that faults mid-run) and checks the failure surfaces as a
// run() error carrying the cause — the user must see a non-zero exit and
// why, never a silent bad trace or a stack trace.
func TestFinishFailureIsAnError(t *testing.T) {
	orig := newRecordOracle
	defer func() { newRecordOracle = orig }()
	newRecordOracle = func(opts ...pythia.RecordOption) *pythia.Oracle {
		// The injected clock overrides -record's WithoutTimestamps and
		// panics inside Submit after 5 events; containment degrades the
		// oracle and Finish must then fail.
		opts = append(opts, pythia.WithClock(faultinject.PanicClock(5)))
		return pythia.NewRecordOracle(opts...)
	}

	var out bytes.Buffer
	err := run([]string{"-app", "EP", "-class", "small", "-o", filepath.Join(t.TempDir(), "ep.pythia")}, &out)
	if err == nil {
		t.Fatal("run() succeeded with a degraded oracle")
	}
	msg := err.Error()
	if !strings.Contains(msg, "degraded") || !strings.Contains(msg, "panic") {
		t.Fatalf("error does not carry the contained-panic cause: %v", err)
	}
}

func TestRecordSaveErrorIsAnError(t *testing.T) {
	// Output path inside a directory that does not exist: Save must fail
	// and run() must surface it.
	err := run([]string{"-app", "EP", "-class", "small",
		"-o", filepath.Join(t.TempDir(), "no-such-dir", "ep.pythia")}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "saving trace") {
		t.Fatalf("missing save error, got %v", err)
	}
}

// TestCheckpointAndResume runs a recording with a checkpoint journal, then
// exercises -resume against the journal the run left behind (a real crash
// is exercised in internal/faultinject; here the flag plumbing is under
// test).
func TestCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "journal")
	trace := filepath.Join(dir, "ep.pythia")

	var out bytes.Buffer
	err := run([]string{"-app", "EP", "-class", "small", "-o", trace,
		"-checkpoint", ckpt, "-checkpoint-every", "2"}, &out)
	if err != nil {
		t.Fatalf("recording with checkpoints: %v\n%s", err, out.String())
	}
	if _, err := pythia.LoadTraceSet(trace); err != nil {
		t.Fatalf("final trace unreadable: %v", err)
	}

	out.Reset()
	recovered := filepath.Join(dir, "recovered.pythia")
	err = run([]string{"-resume", "-checkpoint", ckpt, "-o", recovered}, &out)
	if err != nil {
		t.Fatalf("resume: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "recovered generation") {
		t.Fatalf("resume output missing recovery report:\n%s", out.String())
	}
	ts, err := pythia.LoadTraceSet(recovered)
	if err != nil {
		t.Fatalf("recovered trace unreadable: %v", err)
	}
	if ts.Provenance == nil || !ts.Provenance.Salvaged {
		t.Fatalf("recovered trace lacks salvaged provenance: %+v", ts.Provenance)
	}
}

func TestResumeRequiresJournal(t *testing.T) {
	if err := run([]string{"-resume"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
	if err := run([]string{"-resume", "-checkpoint", t.TempDir(),
		"-o", filepath.Join(t.TempDir(), "out.pythia")}, &bytes.Buffer{}); err == nil {
		t.Fatal("-resume on an empty journal succeeded")
	}
}
