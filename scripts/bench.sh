#!/usr/bin/env bash
# bench.sh — runs the hot-path benchmarks and writes BENCH_PR2.json with the
# current numbers next to the frozen pre-optimisation baseline.
#
# The baseline block below was measured on the commit immediately before the
# hot-path overhaul (incremental prediction cache, open-addressed digram
# index, rule pooling, copy-on-write thread dispatch), with these same
# benchmarks, on the same machine class as the "after" numbers in the
# committed BENCH_PR2.json (Intel Xeon @ 2.10GHz, linux/amd64, go1.24).
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR2.json}"

benches='BenchmarkSubmitThroughput|BenchmarkSubmitCheckpointed|BenchmarkObserveThroughput|BenchmarkPredictAtCached|BenchmarkThreadDispatch|BenchmarkFig9_PredictionCost'

echo "==> go test -bench (${out})"
raw=$(go test -run '^$' -bench "${benches}" -benchmem -benchtime=2s . 2>&1)
echo "${raw}"

echo "${raw}" | awk -v OUT="${out}" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix if present
    ns[name] = $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")       bop[name] = $i
        if ($(i+1) == "allocs/op")  aop[name] = $i
        if ($(i+1) == "us-per-query") usq[name] = $i
    }
}
END {
    order = "BenchmarkSubmitThroughput BenchmarkSubmitCheckpointed BenchmarkObserveThroughput BenchmarkPredictAtCached BenchmarkThreadDispatch BenchmarkFig9_PredictionCost"
    n = split(order, names, " ")
    printf "{\n" > OUT
    printf "  \"baseline\": {\n" >> OUT
    printf "    \"comment\": \"pre-optimisation: map digram index, no prediction cache, no rule pool, mutex thread dispatch\",\n" >> OUT
    printf "    \"BenchmarkSubmitThroughput\":    {\"ns_per_op\": 303.6, \"bytes_per_op\": 90,    \"allocs_per_op\": 1},\n" >> OUT
    printf "    \"BenchmarkObserveThroughput\":   {\"ns_per_op\": 826.2, \"bytes_per_op\": 253,   \"allocs_per_op\": 6},\n" >> OUT
    printf "    \"BenchmarkPredictAtCached\":     {\"ns_per_op\": 7103,  \"bytes_per_op\": 10152, \"allocs_per_op\": 135},\n" >> OUT
    printf "    \"BenchmarkThreadDispatch\":      {\"ns_per_op\": 23.87, \"bytes_per_op\": 0,     \"allocs_per_op\": 0},\n" >> OUT
    printf "    \"BenchmarkFig9_PredictionCost\": {\"us_per_query\": 10.11}\n" >> OUT
    printf "  },\n" >> OUT
    printf "  \"current\": {\n" >> OUT
    first = 1
    for (i = 1; i <= n; i++) {
        b = names[i]
        if (!(b in ns)) continue
        if (!first) printf ",\n" >> OUT
        first = 0
        printf "    \"%s\": {\"ns_per_op\": %s", b, ns[b] >> OUT
        if (b in bop) printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop[b], aop[b] >> OUT
        if (b in usq) printf ", \"us_per_query\": %s", usq[b] >> OUT
        printf "}" >> OUT
    }
    printf "\n  }\n}\n" >> OUT
}
'

echo "==> wrote ${out}"
