#!/usr/bin/env bash
# check.sh — the full local verification suite. CI runs exactly this script
# (.github/workflows/ci.yml), so a clean local run means a clean CI run.
#
# Steps:
#   1. gofmt        — no unformatted files
#   2. go vet       — the standard toolchain vet
#   3. go build     — everything compiles
#   4. go test      — the full unit suite
#   5. go test -race — concurrency-sensitive packages under the race detector
#                     (core, the public API, the transport rings/seqlock,
#                     and the serving path)
#   6. fuzz smoke   — FuzzGrammarInvariants, FuzzDigramIndexDiff,
#                     FuzzPredictNoisy, FuzzRecoverJournal, FuzzWireDecode,
#                     FuzzRingDecode, FuzzFlowGuards and FuzzModelLifecycle
#                     briefly
#   7. vet fixtures — gofmt/go vet inside the analyzer fixture mini-modules
#                     (separate modules, so ./... sweeps skip them)
#   8. pythia-vet   — the repo's own static-analysis pass, all nine
#                     analyzers; stale baseline entries fail the run
#                     (see cmd/pythia-vet for the exit contract)
#
# With --chaos, additionally runs the fault-injection chaos suite
# (internal/faultinject) under the race detector: injected panics, resource
# exhaustion, and the crash/kill matrix — subprocesses that die mid-
# checkpoint (at every point of the journal write path, with and without
# torn writes, and under a real SIGKILL) and whose journals must salvage.
# It also runs the network chaos leg: the full chaosnet matrix
# (PYTHIA_CHAOS=1 — resets, torn frames, drops, stalls over tcp/unix/shm)
# plus the reconnect, resume, and keepalive suites, all under -race.
# CI gates on this in its own job. With --learn, additionally runs the
# model-lifecycle suites under the race detector: the scored-promotion /
# rollback state machine and learner (core), the lifecycle wire ops and
# reconnect-across-promotion (server), the lineage journal round trips
# (tracefile), and the promotion crash/SIGKILL matrix (faultinject).
# With --bench, additionally runs
# scripts/bench.sh (hot-path benchmarks, refreshing BENCH_PR2.json),
# scripts/bench-transport.sh (the tcp/unix/shm serving matrix, refreshing
# BENCH_PR7.json) and scripts/bench-learn.sh (the learning-Submit hot path
# plus the frozen-vs-learning drift A/B, refreshing BENCH_PR9.json).
# With --cluster, additionally runs the pythia-cluster suites under the
# race detector: shard-map placement and token buckets (internal/cluster),
# the wire ops / epoch gossip / migration / replication / QoS suites and
# the fleet failover leg (internal/server), and the fleet-routing client.
# With --serve, additionally runs scripts/serve-smoke.sh
# (pythiad + pythia-loadgen end to end over every transport tier, including
# a SIGTERM drain and a two-daemon cluster leg). Benchmarks and the serve
# smoke are not part of the gating suite.
set -u

cd "$(dirname "$0")/.."

run_bench=0
run_chaos=0
run_serve=0
run_learn=0
run_cluster=0
for arg in "$@"; do
    case "${arg}" in
        --bench) run_bench=1 ;;
        --chaos) run_chaos=1 ;;
        --serve) run_serve=1 ;;
        --learn) run_learn=1 ;;
        --cluster) run_cluster=1 ;;
        *) echo "check.sh: unknown argument ${arg}" >&2; exit 2 ;;
    esac
done

failures=0
step() {
    local name="$1"
    shift
    echo "==> ${name}"
    if ! "$@"; then
        echo "FAIL: ${name}" >&2
        failures=$((failures + 1))
    fi
}

check_gofmt() {
    local bad
    bad=$(gofmt -l .)
    if [ -n "${bad}" ]; then
        echo "unformatted files:" >&2
        echo "${bad}" >&2
        return 1
    fi
}

step "gofmt" check_gofmt
step "go vet" go vet ./...
step "go build" go build ./...
step "go test" go test ./...
step "go test -race (core + public API + transport + server)" \
    go test -race ./internal/core/... ./pythia/... ./internal/transport/ ./internal/server/
step "fuzz smoke (FuzzGrammarInvariants)" \
    go test -fuzz FuzzGrammarInvariants -fuzztime=5s -run '^$' ./internal/grammar/
step "fuzz smoke (FuzzDigramIndexDiff)" \
    go test -fuzz FuzzDigramIndexDiff -fuzztime=5s -run '^$' ./internal/grammar/
step "fuzz smoke (FuzzPredictNoisy)" \
    go test -fuzz FuzzPredictNoisy -fuzztime=5s -run '^$' ./pythia/
step "fuzz smoke (FuzzRecoverJournal)" \
    go test -fuzz FuzzRecoverJournal -fuzztime=5s -run '^$' ./internal/tracefile/
step "fuzz smoke (FuzzWireDecode)" \
    go test -fuzz FuzzWireDecode -fuzztime=5s -run '^$' ./internal/wire/
step "fuzz smoke (FuzzRingDecode)" \
    go test -fuzz FuzzRingDecode -fuzztime=5s -run '^$' ./internal/transport/
step "fuzz smoke (FuzzFlowGuards)" \
    go test -fuzz FuzzFlowGuards -fuzztime=5s -run '^$' ./internal/vet/
step "fuzz smoke (FuzzModelLifecycle)" \
    go test -fuzz FuzzModelLifecycle -fuzztime=5s -run '^$' ./internal/core/

# The analyzer fixtures under internal/vet/testdata/fixtures are separate
# modules (so repo-wide builds and pythia-vet's own module scan never see
# their seeded bugs); sweep them explicitly so they cannot rot.
check_fixture_modules() {
    local dir ok=0
    for dir in internal/vet/testdata/fixtures/*/; do
        [ -f "${dir}go.mod" ] || continue
        if ! (cd "${dir}" && go vet ./...); then
            echo "go vet failed in ${dir}" >&2
            ok=1
        fi
    done
    return "${ok}"
}
step "vet fixtures (go vet per fixture module)" check_fixture_modules

step "pythia-vet" go run ./cmd/pythia-vet ./...

if [ "${run_chaos}" -eq 1 ]; then
    step "chaos (fault injection + crash/kill matrix, -race)" \
        go test -race -count=1 ./internal/faultinject/
    step "chaos (chaosnet proxy suite, -race)" \
        go test -race -count=1 ./internal/chaosnet/
    step "chaos (network: chaos matrix + reconnect/resume/keepalive, -race)" \
        env PYTHIA_CHAOS=1 go test -race -count=1 \
        -run 'Chaos|Reconnect|Resume|Keepalive|Fallback' \
        ./internal/server/ ./pythia/client/
fi

if [ "${run_learn}" -eq 1 ]; then
    step "learn (lifecycle machine + learner + wire ops, -race)" \
        go test -race -count=1 \
        -run 'Learn|Lifecycle|Promot|Rollback|Generation|Lineage' \
        ./internal/core/ ./internal/server/ ./internal/tracefile/ ./internal/wire/
    step "learn (promotion crash/SIGKILL matrix, -race)" \
        go test -race -count=1 -run 'CrashDuringPromotion|SIGKILLDuringPromotion' \
        ./internal/faultinject/
fi

if [ "${run_cluster}" -eq 1 ]; then
    step "cluster (shard map + token buckets, -race)" \
        go test -race -count=1 ./internal/cluster/
    step "cluster (gossip/migration/replication/QoS + fleet failover, -race)" \
        go test -race -count=1 \
        -run 'ShardMap|WrongShard|ModelOffer|EpochBump|Sweep|Fleet|TenantBudget|Cluster' \
        ./internal/server/ ./internal/wire/ ./pythia/client/
fi

if [ "${run_bench}" -eq 1 ]; then
    step "bench (non-gating)" ./scripts/bench.sh
    step "bench transport matrix (non-gating)" ./scripts/bench-transport.sh
    step "bench learning matrix (non-gating)" ./scripts/bench-learn.sh
fi

if [ "${run_serve}" -eq 1 ]; then
    step "serve smoke (pythiad + loadgen, non-gating)" ./scripts/serve-smoke.sh
fi

if [ "${failures}" -ne 0 ]; then
    echo "check.sh: ${failures} step(s) failed" >&2
    exit 1
fi
echo "check.sh: all steps passed"
