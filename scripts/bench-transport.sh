#!/usr/bin/env bash
# bench-transport.sh — measures the transport tier matrix and writes
# BENCH_PR7.json: the same closed-loop CG.small replay (8 clients, a timed
# prediction every 16 events, distance 16 — the BENCH_PR5.json parameters)
# over each tier. The tcp leg re-measures the PR5 configuration so the
# before/after comparison and the no-regression check stay honest; unix
# swaps the TCP loopback for a unix-domain socket; shm runs the
# shared-memory rings with server-push subscriptions, where the timed
# operation is a Latest read instead of a PredictAt round trip.
#
# Usage: scripts/bench-transport.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR7.json}"

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "${daemon_pid}" ] && kill -0 "${daemon_pid}" 2>/dev/null; then
        kill -9 "${daemon_pid}" 2>/dev/null || true
    fi
    rm -rf "${workdir}"
}
trap cleanup EXIT

echo "==> building pythia-record, pythiad, pythia-loadgen"
go build -o "${workdir}/pythia-record" ./cmd/pythia-record
go build -o "${workdir}/pythiad" ./cmd/pythiad
go build -o "${workdir}/pythia-loadgen" ./cmd/pythia-loadgen

echo "==> recording CG.small"
mkdir "${workdir}/traces"
"${workdir}/pythia-record" -app CG -class small -o "${workdir}/traces/CG.pythia" >/dev/null

echo "==> starting pythiad (tcp + unix)"
sock="${workdir}/d.sock"
"${workdir}/pythiad" -listen 127.0.0.1:0 -listen "unix://${sock}" \
    -traces "${workdir}/traces" \
    >"${workdir}/pythiad.out" 2>"${workdir}/pythiad.err" &
daemon_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^pythiad: listening on tcp://\([^ ]*\).*|\1|p' "${workdir}/pythiad.out")
    if [ -n "${addr}" ]; then break; fi
    if ! kill -0 "${daemon_pid}" 2>/dev/null; then
        echo "bench-transport: pythiad died during startup" >&2
        cat "${workdir}/pythiad.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "${addr}" ]; then
    echo "bench-transport: pythiad never reported its address" >&2
    exit 1
fi
echo "    pythiad on ${addr} and unix://${sock} (pid ${daemon_pid})"

for tier in tcp unix shm; do
    case "${tier}" in
        tcp) tier_addr="${addr}" ;;
        *) tier_addr="unix://${sock}" ;;
    esac
    echo "==> loadgen: CG.small, 8 clients, ${tier}"
    "${workdir}/pythia-loadgen" -addr "${tier_addr}" -transport "${tier}" \
        -tenant CG -app CG -class small -clients 8 \
        -predict-every 16 -distance 16 -o "${workdir}/${tier}.json"
done

echo "==> draining pythiad"
kill -TERM "${daemon_pid}"
wait "${daemon_pid}" 2>/dev/null || true
daemon_pid=""

{
    echo '{'
    first=1
    for tier in tcp unix shm; do
        if [ "${first}" -eq 0 ]; then echo ','; fi
        first=0
        printf '"%s":\n' "${tier}"
        cat "${workdir}/${tier}.json"
    done
    echo '}'
} >"${out}"
echo "==> wrote ${out}"
