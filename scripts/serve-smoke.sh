#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test of the network service: record a
# small trace, start pythiad on an ephemeral TCP port AND a unix socket,
# drive every transport tier with pythia-loadgen (8 concurrent clients,
# zero protocol errors tolerated; tcp, unix, and shared-memory rings), run
# a chaos leg (deterministic resets injected between clients and daemon —
# the reconnect/replay machinery must absorb them), kill the daemon with
# SIGKILL mid-service and restart it on the same unix socket path (already-
# running clients must reconnect), then SIGTERM the daemon and require a
# clean graceful drain that also removes the socket file. A final learn leg
# restarts the daemon with -learn and drives a drifted replay with a forced
# promotion and a forced rollback; the loadgen report must show both
# lifecycle transitions.
#
# Run directly or via `scripts/check.sh --serve`. Non-gating in CI (shared
# runners make the daemon timing noisy) but must pass locally.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "${daemon_pid}" ] && kill -0 "${daemon_pid}" 2>/dev/null; then
        kill -9 "${daemon_pid}" 2>/dev/null || true
    fi
    rm -rf "${workdir}"
}
trap cleanup EXIT

echo "==> building pythia-record, pythiad, pythia-loadgen"
go build -o "${workdir}/pythia-record" ./cmd/pythia-record
go build -o "${workdir}/pythiad" ./cmd/pythiad
go build -o "${workdir}/pythia-loadgen" ./cmd/pythia-loadgen

echo "==> recording EP.small"
mkdir "${workdir}/traces"
"${workdir}/pythia-record" -app EP -class small -o "${workdir}/traces/EP.pythia" >/dev/null

echo "==> starting pythiad (tcp + unix)"
# Port 0 asks the kernel for a free port; parse the bound address from the
# daemon's "listening on" line.
sock="${workdir}/d.sock"
"${workdir}/pythiad" -listen 127.0.0.1:0 -listen "unix://${sock}" \
    -traces "${workdir}/traces" \
    >"${workdir}/pythiad.out" 2>"${workdir}/pythiad.err" &
daemon_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^pythiad: listening on tcp://\([^ ]*\).*|\1|p' "${workdir}/pythiad.out")
    if [ -n "${addr}" ]; then break; fi
    if ! kill -0 "${daemon_pid}" 2>/dev/null; then
        echo "serve-smoke: pythiad died during startup" >&2
        cat "${workdir}/pythiad.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "${addr}" ]; then
    echo "serve-smoke: pythiad never reported its address" >&2
    exit 1
fi
echo "    pythiad on ${addr} and unix://${sock} (pid ${daemon_pid})"

# EP.small streams are short, so predict every 4 events to make sure the
# smoke exercises the timed prediction path and not just Submit batching.
echo "==> loadgen: 8 clients replaying EP.small over tcp"
"${workdir}/pythia-loadgen" -addr "${addr}" -tenant EP -app EP -class small \
    -clients 8 -predict-every 4 -distance 4

echo "==> loadgen: 8 clients replaying EP.small over the unix socket"
"${workdir}/pythia-loadgen" -addr "unix://${sock}" -transport unix \
    -tenant EP -app EP -class small -clients 8 -predict-every 4 -distance 4

echo "==> loadgen: 8 clients replaying EP.small over shared-memory rings"
"${workdir}/pythia-loadgen" -addr "unix://${sock}" -transport shm \
    -tenant EP -app EP -class small -clients 8 -predict-every 4 -distance 4

echo "==> loadgen: 8 clients over tcp with injected chaos (resets + torn frames)"
"${workdir}/pythia-loadgen" -addr "${addr}" -tenant EP -app EP -class small \
    -clients 8 -predict-every 4 -distance 4 -chaos -chaos-seed 7 \
    -o "${workdir}/chaos-report.json"
if ! grep -q '"reconnects"' "${workdir}/chaos-report.json"; then
    echo "serve-smoke: chaos report lacks resilience counters" >&2
    exit 1
fi

echo "==> kill-and-reconnect: SIGKILL pythiad mid-run, restart on the same socket"
# A long replay (predict every event) keeps the clients mid-run while the
# daemon dies and comes back; -chaos gives them the convergence window, so
# a clean exit proves the reconnect + replay path absorbed the restart.
"${workdir}/pythia-loadgen" -addr "unix://${sock}" -transport unix \
    -tenant EP -app EP -class small -clients 4 -predict-every 1 -distance 4 \
    -repeat 300 -chaos -chaos-seed 3 -o "${workdir}/restart-report.json" \
    >"${workdir}/loadgen-restart.out" 2>&1 &
loadgen_pid=$!
sleep 0.3
if ! kill -0 "${loadgen_pid}" 2>/dev/null; then
    echo "serve-smoke: restart-leg loadgen finished before the kill; nothing straddled it" >&2
    cat "${workdir}/loadgen-restart.out" >&2
    exit 1
fi
kill -9 "${daemon_pid}" 2>/dev/null || true
wait "${daemon_pid}" 2>/dev/null || true
# The SIGKILL leaves a stale socket file; the restarted daemon must reap it.
"${workdir}/pythiad" -listen 127.0.0.1:0 -listen "unix://${sock}" \
    -traces "${workdir}/traces" \
    >"${workdir}/pythiad.out" 2>"${workdir}/pythiad.err" &
daemon_pid=$!
if ! wait "${loadgen_pid}"; then
    echo "serve-smoke: loadgen did not survive the daemon restart" >&2
    cat "${workdir}/loadgen-restart.out" >&2
    exit 1
fi
cat "${workdir}/loadgen-restart.out"
reconnects=$(sed -n 's/.*"reconnects": \([0-9]*\).*/\1/p' "${workdir}/restart-report.json")
if [ -z "${reconnects}" ] || [ "${reconnects}" -lt 1 ]; then
    echo "serve-smoke: expected >=1 reconnect across the daemon restart, got '${reconnects}'" >&2
    exit 1
fi
echo "==> draining pythiad (SIGTERM)"
kill -TERM "${daemon_pid}"
drained=1
for _ in $(seq 1 100); do
    if ! kill -0 "${daemon_pid}" 2>/dev/null; then
        drained=0
        break
    fi
    sleep 0.1
done
if [ "${drained}" -ne 0 ]; then
    echo "serve-smoke: pythiad did not exit within 10s of SIGTERM" >&2
    exit 1
fi
wait "${daemon_pid}" 2>/dev/null || {
    echo "serve-smoke: pythiad exited non-zero after SIGTERM" >&2
    cat "${workdir}/pythiad.err" >&2
    exit 1
}
daemon_pid=""
if ! grep -q "drained, exiting" "${workdir}/pythiad.out"; then
    echo "serve-smoke: drain confirmation missing from pythiad output" >&2
    cat "${workdir}/pythiad.out" >&2
    exit 1
fi
if [ -e "${sock}" ]; then
    echo "serve-smoke: socket file ${sock} survived the drain" >&2
    exit 1
fi

echo "==> learn leg: pythiad -learn, drifted replay, forced promote + rollback"
: >"${workdir}/pythiad.out"
"${workdir}/pythiad" -listen 127.0.0.1:0 -traces "${workdir}/traces" \
    -learn -learn-epoch 128 \
    >"${workdir}/pythiad.out" 2>"${workdir}/pythiad.err" &
daemon_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^pythiad: listening on tcp://\([^ ]*\).*|\1|p' "${workdir}/pythiad.out")
    if [ -n "${addr}" ]; then break; fi
    sleep 0.1
done
if [ -z "${addr}" ]; then
    echo "serve-smoke: learning pythiad never reported its address" >&2
    cat "${workdir}/pythiad.err" >&2
    exit 1
fi
# Phase 2 replays the streams reversed; the forced promotion adopts the
# shadow model 300 events in and the forced rollback restores the previous
# generation 600 events later. Both must land in the lifecycle counters.
"${workdir}/pythia-loadgen" -addr "${addr}" -tenant EP -app EP -class small \
    -clients 2 -predict-every 2 -repeat 100 -drift \
    -force-promote 300 -force-rollback 600 -o "${workdir}/learn-report.json"
promotions=$(sed -n 's/.*"promotions": \([0-9]*\).*/\1/p' "${workdir}/learn-report.json")
rollbacks=$(sed -n 's/.*"rollbacks": \([0-9]*\).*/\1/p' "${workdir}/learn-report.json")
if [ -z "${promotions}" ] || [ "${promotions}" -lt 1 ]; then
    echo "serve-smoke: expected >=1 promotion in the learn leg, got '${promotions}'" >&2
    exit 1
fi
if [ -z "${rollbacks}" ] || [ "${rollbacks}" -lt 1 ]; then
    echo "serve-smoke: expected >=1 rollback in the learn leg, got '${rollbacks}'" >&2
    exit 1
fi
kill -TERM "${daemon_pid}"
wait "${daemon_pid}" 2>/dev/null || {
    echo "serve-smoke: learning pythiad exited non-zero after SIGTERM" >&2
    cat "${workdir}/pythiad.err" >&2
    exit 1
}
daemon_pid=""
echo "serve-smoke: ok"
