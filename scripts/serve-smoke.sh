#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test of the network service: record a
# small trace, start pythiad on an ephemeral TCP port AND a unix socket,
# drive every transport tier with pythia-loadgen (8 concurrent clients,
# zero protocol errors tolerated; tcp, unix, and shared-memory rings), run
# a chaos leg (deterministic resets injected between clients and daemon —
# the reconnect/replay machinery must absorb them), kill the daemon with
# SIGKILL mid-service and restart it on the same unix socket path (already-
# running clients must reconnect), then SIGTERM the daemon and require a
# clean graceful drain that also removes the socket file. A learn leg
# restarts the daemon with -learn and drives a drifted replay with a forced
# promotion and a forced rollback; the loadgen report must show both
# lifecycle transitions. A final cluster leg runs a two-daemon fleet where
# daemon B starts empty: the anti-entropy sweep must replicate the model to
# B with "replicated from" provenance, a forced epoch bump (B restarted at
# epoch 2) must propagate to A by gossip, and the fleet must serve cleanly
# before and after the bump with lineage intact.
#
# Run directly or via `scripts/check.sh --serve`. Non-gating in CI (shared
# runners make the daemon timing noisy) but must pass locally.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    # daemon_pid may hold several pids (the cluster leg runs two daemons).
    for pid in ${daemon_pid}; do
        if kill -0 "${pid}" 2>/dev/null; then
            kill -9 "${pid}" 2>/dev/null || true
        fi
    done
    rm -rf "${workdir}"
}
trap cleanup EXIT

echo "==> building pythia-record, pythiad, pythia-loadgen, pythia-inspect"
go build -o "${workdir}/pythia-record" ./cmd/pythia-record
go build -o "${workdir}/pythiad" ./cmd/pythiad
go build -o "${workdir}/pythia-loadgen" ./cmd/pythia-loadgen
go build -o "${workdir}/pythia-inspect" ./cmd/pythia-inspect

echo "==> recording EP.small"
mkdir "${workdir}/traces"
"${workdir}/pythia-record" -app EP -class small -o "${workdir}/traces/EP.pythia" >/dev/null

echo "==> starting pythiad (tcp + unix)"
# Port 0 asks the kernel for a free port; parse the bound address from the
# daemon's "listening on" line.
sock="${workdir}/d.sock"
"${workdir}/pythiad" -listen 127.0.0.1:0 -listen "unix://${sock}" \
    -traces "${workdir}/traces" \
    >"${workdir}/pythiad.out" 2>"${workdir}/pythiad.err" &
daemon_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^pythiad: listening on tcp://\([^ ]*\).*|\1|p' "${workdir}/pythiad.out")
    if [ -n "${addr}" ]; then break; fi
    if ! kill -0 "${daemon_pid}" 2>/dev/null; then
        echo "serve-smoke: pythiad died during startup" >&2
        cat "${workdir}/pythiad.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "${addr}" ]; then
    echo "serve-smoke: pythiad never reported its address" >&2
    exit 1
fi
echo "    pythiad on ${addr} and unix://${sock} (pid ${daemon_pid})"

# EP.small streams are short, so predict every 4 events to make sure the
# smoke exercises the timed prediction path and not just Submit batching.
echo "==> loadgen: 8 clients replaying EP.small over tcp"
"${workdir}/pythia-loadgen" -addr "${addr}" -tenant EP -app EP -class small \
    -clients 8 -predict-every 4 -distance 4

echo "==> loadgen: 8 clients replaying EP.small over the unix socket"
"${workdir}/pythia-loadgen" -addr "unix://${sock}" -transport unix \
    -tenant EP -app EP -class small -clients 8 -predict-every 4 -distance 4

echo "==> loadgen: 8 clients replaying EP.small over shared-memory rings"
"${workdir}/pythia-loadgen" -addr "unix://${sock}" -transport shm \
    -tenant EP -app EP -class small -clients 8 -predict-every 4 -distance 4

echo "==> loadgen: 8 clients over tcp with injected chaos (resets + torn frames)"
"${workdir}/pythia-loadgen" -addr "${addr}" -tenant EP -app EP -class small \
    -clients 8 -predict-every 4 -distance 4 -chaos -chaos-seed 7 \
    -o "${workdir}/chaos-report.json"
if ! grep -q '"reconnects"' "${workdir}/chaos-report.json"; then
    echo "serve-smoke: chaos report lacks resilience counters" >&2
    exit 1
fi

echo "==> kill-and-reconnect: SIGKILL pythiad mid-run, restart on the same socket"
# A long replay (predict every event) keeps the clients mid-run while the
# daemon dies and comes back; -chaos gives them the convergence window, so
# a clean exit proves the reconnect + replay path absorbed the restart.
"${workdir}/pythia-loadgen" -addr "unix://${sock}" -transport unix \
    -tenant EP -app EP -class small -clients 4 -predict-every 1 -distance 4 \
    -repeat 300 -chaos -chaos-seed 3 -o "${workdir}/restart-report.json" \
    >"${workdir}/loadgen-restart.out" 2>&1 &
loadgen_pid=$!
sleep 0.3
if ! kill -0 "${loadgen_pid}" 2>/dev/null; then
    echo "serve-smoke: restart-leg loadgen finished before the kill; nothing straddled it" >&2
    cat "${workdir}/loadgen-restart.out" >&2
    exit 1
fi
kill -9 "${daemon_pid}" 2>/dev/null || true
wait "${daemon_pid}" 2>/dev/null || true
# The SIGKILL leaves a stale socket file; the restarted daemon must reap it.
"${workdir}/pythiad" -listen 127.0.0.1:0 -listen "unix://${sock}" \
    -traces "${workdir}/traces" \
    >"${workdir}/pythiad.out" 2>"${workdir}/pythiad.err" &
daemon_pid=$!
if ! wait "${loadgen_pid}"; then
    echo "serve-smoke: loadgen did not survive the daemon restart" >&2
    cat "${workdir}/loadgen-restart.out" >&2
    exit 1
fi
cat "${workdir}/loadgen-restart.out"
reconnects=$(sed -n 's/.*"reconnects": \([0-9]*\).*/\1/p' "${workdir}/restart-report.json")
if [ -z "${reconnects}" ] || [ "${reconnects}" -lt 1 ]; then
    echo "serve-smoke: expected >=1 reconnect across the daemon restart, got '${reconnects}'" >&2
    exit 1
fi
echo "==> draining pythiad (SIGTERM)"
kill -TERM "${daemon_pid}"
drained=1
for _ in $(seq 1 100); do
    if ! kill -0 "${daemon_pid}" 2>/dev/null; then
        drained=0
        break
    fi
    sleep 0.1
done
if [ "${drained}" -ne 0 ]; then
    echo "serve-smoke: pythiad did not exit within 10s of SIGTERM" >&2
    exit 1
fi
wait "${daemon_pid}" 2>/dev/null || {
    echo "serve-smoke: pythiad exited non-zero after SIGTERM" >&2
    cat "${workdir}/pythiad.err" >&2
    exit 1
}
daemon_pid=""
if ! grep -q "drained, exiting" "${workdir}/pythiad.out"; then
    echo "serve-smoke: drain confirmation missing from pythiad output" >&2
    cat "${workdir}/pythiad.out" >&2
    exit 1
fi
if [ -e "${sock}" ]; then
    echo "serve-smoke: socket file ${sock} survived the drain" >&2
    exit 1
fi

echo "==> learn leg: pythiad -learn, drifted replay, forced promote + rollback"
: >"${workdir}/pythiad.out"
"${workdir}/pythiad" -listen 127.0.0.1:0 -traces "${workdir}/traces" \
    -learn -learn-epoch 128 \
    >"${workdir}/pythiad.out" 2>"${workdir}/pythiad.err" &
daemon_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^pythiad: listening on tcp://\([^ ]*\).*|\1|p' "${workdir}/pythiad.out")
    if [ -n "${addr}" ]; then break; fi
    sleep 0.1
done
if [ -z "${addr}" ]; then
    echo "serve-smoke: learning pythiad never reported its address" >&2
    cat "${workdir}/pythiad.err" >&2
    exit 1
fi
# Phase 2 replays the streams reversed; the forced promotion adopts the
# shadow model 300 events in and the forced rollback restores the previous
# generation 600 events later. Both must land in the lifecycle counters.
"${workdir}/pythia-loadgen" -addr "${addr}" -tenant EP -app EP -class small \
    -clients 2 -predict-every 2 -repeat 100 -drift \
    -force-promote 300 -force-rollback 600 -o "${workdir}/learn-report.json"
promotions=$(sed -n 's/.*"promotions": \([0-9]*\).*/\1/p' "${workdir}/learn-report.json")
rollbacks=$(sed -n 's/.*"rollbacks": \([0-9]*\).*/\1/p' "${workdir}/learn-report.json")
if [ -z "${promotions}" ] || [ "${promotions}" -lt 1 ]; then
    echo "serve-smoke: expected >=1 promotion in the learn leg, got '${promotions}'" >&2
    exit 1
fi
if [ -z "${rollbacks}" ] || [ "${rollbacks}" -lt 1 ]; then
    echo "serve-smoke: expected >=1 rollback in the learn leg, got '${rollbacks}'" >&2
    exit 1
fi
kill -TERM "${daemon_pid}"
wait "${daemon_pid}" 2>/dev/null || {
    echo "serve-smoke: learning pythiad exited non-zero after SIGTERM" >&2
    cat "${workdir}/pythiad.err" >&2
    exit 1
}
daemon_pid=""

echo "==> cluster leg: two daemons, warm replica, forced epoch bump"
# Daemon A holds the EP model, daemon B starts empty; with one warm replica
# per tenant the anti-entropy sweep must ship the model to B, stamping its
# provenance with where it came from. Restarting B at a higher epoch then
# forces a shard-map change: A must adopt the epoch by gossip and the fleet
# must keep serving with the model's lineage intact.
ca="127.0.0.1:29221"
cb="127.0.0.1:29222"
cfleet="${ca},${cb}"
mkdir "${workdir}/traces-a" "${workdir}/traces-b"
cp "${workdir}/traces/EP.pythia" "${workdir}/traces-a/"
"${workdir}/pythiad" -listen "${ca}" -traces "${workdir}/traces-a" \
    -cluster-self "${ca}" -cluster-peers "${cfleet}" \
    -cluster-epoch 1 -cluster-replicas 1 -cluster-sync 300ms \
    >"${workdir}/pythiad-a.out" 2>"${workdir}/pythiad-a.err" &
daemon_a_pid=$!
"${workdir}/pythiad" -listen "${cb}" -traces "${workdir}/traces-b" \
    -cluster-self "${cb}" -cluster-peers "${cfleet}" \
    -cluster-epoch 1 -cluster-replicas 1 -cluster-sync 300ms \
    >"${workdir}/pythiad-b.out" 2>"${workdir}/pythiad-b.err" &
daemon_b_pid=$!
daemon_pid="${daemon_a_pid} ${daemon_b_pid}"
replicated=1
for _ in $(seq 1 100); do
    if [ -e "${workdir}/traces-b/EP.pythia" ]; then
        replicated=0
        break
    fi
    sleep 0.1
done
if [ "${replicated}" -ne 0 ]; then
    echo "serve-smoke: EP model never replicated to daemon B" >&2
    cat "${workdir}/pythiad-a.err" "${workdir}/pythiad-b.err" >&2
    exit 1
fi
if ! "${workdir}/pythia-inspect" -trace "${workdir}/traces-b/EP.pythia" \
    | grep -q "replicated from ${ca}"; then
    echo "serve-smoke: replica on daemon B lacks 'replicated from ${ca}' provenance" >&2
    "${workdir}/pythia-inspect" -trace "${workdir}/traces-b/EP.pythia" >&2 || true
    exit 1
fi
echo "==> loadgen: 4 clients through the two-daemon fleet (epoch 1)"
"${workdir}/pythia-loadgen" -daemons "${cfleet}" -tenant EP -app EP \
    -class small -clients 4 -predict-every 4 -distance 4
echo "==> forcing an epoch bump: restart daemon B at epoch 2"
kill -TERM "${daemon_b_pid}"
wait "${daemon_b_pid}" 2>/dev/null || true
"${workdir}/pythiad" -listen "${cb}" -traces "${workdir}/traces-b" \
    -cluster-self "${cb}" -cluster-peers "${cfleet}" \
    -cluster-epoch 2 -cluster-replicas 1 -cluster-sync 300ms \
    >"${workdir}/pythiad-b.out" 2>"${workdir}/pythiad-b.err" &
daemon_b_pid=$!
daemon_pid="${daemon_a_pid} ${daemon_b_pid}"
adopted=1
for _ in $(seq 1 100); do
    if grep -q "cluster epoch 2 adopted" "${workdir}/pythiad-a.out" "${workdir}/pythiad-a.err" 2>/dev/null; then
        adopted=0
        break
    fi
    sleep 0.1
done
if [ "${adopted}" -ne 0 ]; then
    echo "serve-smoke: daemon A never adopted epoch 2 by gossip" >&2
    cat "${workdir}/pythiad-a.err" >&2
    exit 1
fi
echo "==> loadgen: 4 clients through the fleet after the epoch bump"
"${workdir}/pythia-loadgen" -daemons "${cfleet}" -tenant EP -app EP \
    -class small -clients 4 -predict-every 4 -distance 4
if ! "${workdir}/pythia-inspect" -trace "${workdir}/traces-b/EP.pythia" \
    | grep -q "replicated from ${ca}"; then
    echo "serve-smoke: lineage lost after the epoch bump" >&2
    exit 1
fi
kill -TERM "${daemon_a_pid}" "${daemon_b_pid}"
wait "${daemon_a_pid}" 2>/dev/null || {
    echo "serve-smoke: cluster daemon A exited non-zero after SIGTERM" >&2
    cat "${workdir}/pythiad-a.err" >&2
    exit 1
}
wait "${daemon_b_pid}" 2>/dev/null || {
    echo "serve-smoke: cluster daemon B exited non-zero after SIGTERM" >&2
    cat "${workdir}/pythiad-b.err" >&2
    exit 1
}
daemon_pid=""
echo "serve-smoke: ok"
