#!/usr/bin/env bash
# bench-cluster.sh — measures Submit-throughput scaling across a pythiad
# fleet and writes BENCH_PR10.json: the same closed-loop CG.small replay at
# 1, 2, and 4 daemons, 16 clients over 16 tenants routed by the shard map,
# with per-daemon breakdowns from pythia-loadgen's fleet mode.
#
# Methodology: the benchmark host is a single machine, so N daemon
# processes share one CPU and raw replay throughput would not scale with N.
# Each daemon therefore runs with -pace-events 40000 — a hard per-daemon
# Submit admission ceiling that models one node's event-ingest capacity
# (the paced rate is far below what one daemon serves unpaced; see
# BENCH_PR5.json). What the benchmark then measures is the routing layer:
# whether sharding tenants across N paced daemons multiplies the aggregate
# ceiling, i.e. whether the fleet path adds cross-daemon coordination that
# would show up as sub-linear scaling. The 16 tenants are picked with
# pythia-shardplan so the shard map spreads them evenly (8/8 at two
# daemons, 4/4/4/4 at four): rendezvous hashing balances in expectation,
# and with only 16 tenants the hash variance — not the serving path —
# would otherwise dominate the scaling number.
#
# Usage: scripts/bench-cluster.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR10.json}"

port_base=29211
pace=40000
clients=16
want_tenants=16

workdir=$(mktemp -d)
daemon_pids=""
cleanup() {
    for pid in ${daemon_pids}; do
        if kill -0 "${pid}" 2>/dev/null; then
            kill -9 "${pid}" 2>/dev/null || true
        fi
    done
    rm -rf "${workdir}"
}
trap cleanup EXIT

echo "==> building pythia-record, pythiad, pythia-loadgen, pythia-shardplan"
go build -o "${workdir}/pythia-record" ./cmd/pythia-record
go build -o "${workdir}/pythiad" ./cmd/pythiad
go build -o "${workdir}/pythia-loadgen" ./cmd/pythia-loadgen
go build -o "${workdir}/pythia-shardplan" ./cmd/pythia-shardplan

echo "==> recording CG.small"
"${workdir}/pythia-record" -app CG -class small -o "${workdir}/seed.pythia" >/dev/null

fleet_addrs() { # fleet_addrs N -> "addr1,addr2,..."
    local n=$1 list="" i
    for i in $(seq 0 $((n - 1))); do
        list="${list}${list:+,}127.0.0.1:$((port_base + i))"
    done
    printf '%s' "${list}"
}

# Pick ${want_tenants} tenant names the shard map spreads evenly over both
# the 2-daemon and the 4-daemon fleet, bucketing candidates by their
# (owner-at-2, owner-at-4) pair. Rendezvous hashing is hierarchical — a
# tenant whose 4-daemon owner is one of the first two daemons has that same
# owner at 2 daemons — so only 6 pairs occur: take 4 tenants from each
# same-owner bucket and 2 from each of the four cross buckets, which lands
# 8/8 at two daemons and 4/4/4/4 at four.
echo "==> picking a balanced tenant set (pythia-shardplan)"
candidates=$(seq -f 'CG-%03g' 0 199)
plan2=$(printf '%s\n' ${candidates} | "${workdir}/pythia-shardplan" -daemons "$(fleet_addrs 2)" -epoch 1)
plan4=$(printf '%s\n' ${candidates} | "${workdir}/pythia-shardplan" -daemons "$(fleet_addrs 4)" -epoch 1)
tenants=$(paste <(printf '%s\n' "${plan2}") <(printf '%s\n' "${plan4}") | awk '
    $1 == $3 {
        key = $2 "|" $4
        quota = ($2 == $4) ? 4 : 2
        if (picked[key]++ < quota) print $1
    }
' | head -n "${want_tenants}" | paste -sd, -)
ntenants=$(printf '%s' "${tenants}" | awk -F, '{print NF}')
if [ "${ntenants}" -ne "${want_tenants}" ]; then
    echo "bench-cluster: balanced tenant pick found ${ntenants}/${want_tenants}" >&2
    exit 1
fi
echo "    tenants: ${tenants}"

start_fleet() { # start_fleet N -> daemons on port_base..port_base+N-1
    local n=$1 i addr fleet
    fleet=$(fleet_addrs "${n}")
    for i in $(seq 0 $((n - 1))); do
        addr="127.0.0.1:$((port_base + i))"
        mkdir -p "${workdir}/n${n}-d${i}"
        for t in $(printf '%s' "${tenants}" | tr ',' ' '); do
            cp "${workdir}/seed.pythia" "${workdir}/n${n}-d${i}/${t}.pythia"
        done
        "${workdir}/pythiad" -listen "${addr}" -traces "${workdir}/n${n}-d${i}" \
            -cluster-self "${addr}" -cluster-peers "${fleet}" \
            -cluster-epoch 1 -cluster-replicas 0 -cluster-sync 0 \
            -pace-events "${pace}" \
            >"${workdir}/n${n}-d${i}.out" 2>"${workdir}/n${n}-d${i}.err" &
        daemon_pids="${daemon_pids} $!"
    done
    for i in $(seq 0 $((n - 1))); do
        for _ in $(seq 1 50); do
            if grep -q 'listening on' "${workdir}/n${n}-d${i}.out" 2>/dev/null; then
                break
            fi
            sleep 0.1
        done
    done
}

stop_fleet() {
    for pid in ${daemon_pids}; do
        kill -TERM "${pid}" 2>/dev/null || true
    done
    for pid in ${daemon_pids}; do
        wait "${pid}" 2>/dev/null || true
    done
    daemon_pids=""
}

for n in 1 2 4; do
    echo "==> leg: ${n} daemon(s), ${clients} clients, pace ${pace} events/s/daemon"
    start_fleet "${n}"
    "${workdir}/pythia-loadgen" -daemons "$(fleet_addrs "${n}")" \
        -tenant "${tenants}" -app CG -class small -clients "${clients}" \
        -predict-every 16 -distance 16 -o "${workdir}/leg${n}.json"
    stop_fleet
done

python3 - "${workdir}" "${out}" "${pace}" <<'EOF'
import json, sys

workdir, out, pace = sys.argv[1], sys.argv[2], int(sys.argv[3])
legs = {n: json.load(open(f"{workdir}/leg{n}.json")) for n in (1, 2, 4)}
eps = {n: legs[n]["results"]["events_per_s"] for n in legs}
errors = sum(legs[n]["results"]["protocol_errors"] for n in legs)
report = {
    "methodology": (
        "single-host fleet: each pythiad runs -pace-events %d, a per-daemon "
        "Submit admission ceiling modelling one node's ingest capacity; the "
        "benchmark measures whether shard-map routing multiplies the "
        "aggregate ceiling across daemons. 16 tenants picked by "
        "pythia-shardplan so the map spreads them evenly." % pace
    ),
    "daemons_1": legs[1],
    "daemons_2": legs[2],
    "daemons_4": legs[4],
    "scaling": {
        "events_per_s_1": eps[1],
        "events_per_s_2": eps[2],
        "events_per_s_4": eps[4],
        "x2": eps[2] / eps[1],
        "x4": eps[4] / eps[1],
    },
    "protocol_errors": errors,
}
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print("scaling: 1->2 %.2fx, 1->4 %.2fx, %d protocol errors"
      % (report["scaling"]["x2"], report["scaling"]["x4"], errors))
if report["scaling"]["x4"] < 3.0:
    sys.exit("bench-cluster: 1->4 scaling %.2fx is below 3x" % report["scaling"]["x4"])
if errors:
    sys.exit("bench-cluster: %d protocol errors" % errors)
EOF
echo "==> wrote ${out}"
