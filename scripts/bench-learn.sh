#!/usr/bin/env bash
# bench-learn.sh — the online-learning benchmark matrix; writes BENCH_PR9.json.
#
# Two halves:
#
#   hotpath  — in-process per-event cost: record-mode Submit, predict-mode
#              Observe, and Submit on an always-on learning oracle
#              (BenchmarkSubmitLearning: serving predictor + shadow recorder
#              fed on every event, epoch scorer concurrent). The learning
#              Submit must stay within a few percent of the sum of the two
#              paths it drives and must not allocate.
#
#   frozen / learning — drift A/B over a real daemon: pythia-loadgen -drift
#              replays the recorded streams in phase 1 and replays them
#              REVERSED in phase 2 (a workload phase shift), self-checking
#              every PredictAt(1) against the next submitted event. The
#              frozen daemon (no -learn) is quarantined by the divergence
#              watchdog in phase 2 (phase2 accuracy ~0, zero lifecycle
#              counters); the learning daemon's shadow grammars learn the
#              shifted workload, the scorer promotes, and phase-2 accuracy
#              recovers — with promotions and shadow epochs > 0.
#
# Usage: scripts/bench-learn.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR9.json}"

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "${daemon_pid}" ] && kill -0 "${daemon_pid}" 2>/dev/null; then
        kill -9 "${daemon_pid}" 2>/dev/null || true
    fi
    rm -rf "${workdir}"
}
trap cleanup EXIT

echo "==> hot-path benchmarks (record / predict / learning Submit)"
benches='BenchmarkSubmitThroughput|BenchmarkObserveThroughput|BenchmarkSubmitLearning'
raw=$(go test -run '^$' -bench "${benches}" -benchmem -benchtime=2s . 2>&1)
echo "${raw}"

echo "${raw}" | awk -v OUT="${workdir}/hotpath.json" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")      bop[name] = $i
        if ($(i+1) == "allocs/op") aop[name] = $i
    }
}
END {
    order = "BenchmarkSubmitThroughput BenchmarkObserveThroughput BenchmarkSubmitLearning"
    n = split(order, names, " ")
    first = 1
    printf "{\n" > OUT
    for (i = 1; i <= n; i++) {
        b = names[i]
        if (!(b in ns)) continue
        if (!first) printf ",\n" >> OUT
        first = 0
        printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
            b, ns[b], bop[b], aop[b] >> OUT
    }
    printf "\n  }" >> OUT
}
'

echo "==> building pythia-record, pythiad, pythia-loadgen"
go build -o "${workdir}/pythia-record" ./cmd/pythia-record
go build -o "${workdir}/pythiad" ./cmd/pythiad
go build -o "${workdir}/pythia-loadgen" ./cmd/pythia-loadgen

echo "==> recording EP.small"
mkdir "${workdir}/traces"
"${workdir}/pythia-record" -app EP -class small -o "${workdir}/traces/EP.pythia" >/dev/null

# start_daemon [extra pythiad flags...] — starts pythiad on an ephemeral TCP
# port and sets $addr to the bound address.
start_daemon() {
    : >"${workdir}/pythiad.out"
    "${workdir}/pythiad" -listen 127.0.0.1:0 -traces "${workdir}/traces" "$@" \
        >"${workdir}/pythiad.out" 2>"${workdir}/pythiad.err" &
    daemon_pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's|^pythiad: listening on tcp://\([^ ]*\).*|\1|p' "${workdir}/pythiad.out")
        if [ -n "${addr}" ]; then break; fi
        if ! kill -0 "${daemon_pid}" 2>/dev/null; then
            echo "bench-learn: pythiad died during startup" >&2
            cat "${workdir}/pythiad.err" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "${addr}" ]; then
        echo "bench-learn: pythiad never reported its address" >&2
        exit 1
    fi
}

stop_daemon() {
    kill -TERM "${daemon_pid}"
    wait "${daemon_pid}" 2>/dev/null || {
        echo "bench-learn: pythiad exited non-zero after SIGTERM" >&2
        cat "${workdir}/pythiad.err" >&2
        exit 1
    }
    daemon_pid=""
}

# The A/B legs share one loadgen shape: 2 clients, a prediction self-check
# every 2 events, 100 repeats (1600 phase-2 events per client — enough for
# the 128-event scoring epochs to promote several times).
drift_leg() {
    "${workdir}/pythia-loadgen" -addr "${addr}" -tenant EP -app EP -class small \
        -clients 2 -predict-every 2 -repeat 100 -drift -o "$1"
}

echo "==> drift A/B: frozen daemon (no -learn; watchdog quarantines phase 2)"
start_daemon
drift_leg "${workdir}/frozen.json"
stop_daemon

echo "==> drift A/B: learning daemon (-learn -learn-epoch 128)"
start_daemon -learn -learn-epoch 128
drift_leg "${workdir}/learning.json"
stop_daemon

# The learning leg is the headline: it must actually have promoted and
# out-predicted the frozen leg in phase 2.
promotions=$(sed -n 's/.*"promotions": \([0-9]*\).*/\1/p' "${workdir}/learning.json")
if [ -z "${promotions}" ] || [ "${promotions}" -lt 1 ]; then
    echo "bench-learn: learning leg recorded no promotions ('${promotions}')" >&2
    exit 1
fi

{
    echo '{'
    printf '"hotpath": '
    cat "${workdir}/hotpath.json"
    echo ','
    printf '"frozen":\n'
    cat "${workdir}/frozen.json"
    echo ','
    printf '"learning":\n'
    cat "${workdir}/learning.json"
    echo '}'
} >"${out}"

echo "==> wrote ${out}"
