package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// NameFunc maps a terminal event id to a display name. When nil, terminals
// render as "t<id>".
type NameFunc func(eventID int32) string

// Dump renders the grammar in the paper's notation, one rule per line:
//
//	R0 -> Bcast^6 R2 Barrier R1^200 Allreduce ...
//	R1 -> R2 Isend Irecv Wait^2
//
// The root rule is always first; the remaining rules follow in index order.
func (g *Grammar) Dump(name NameFunc) string {
	var b strings.Builder
	idxs := make([]int, 0, len(g.rules))
	for i, r := range g.rules {
		if r != nil {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		b.WriteString(g.dumpRule(g.rules[i], name))
		b.WriteByte('\n')
	}
	return b.String()
}

func (g *Grammar) dumpRule(r *rule, name NameFunc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "R%d ->", r.idx)
	for n := r.first(); n != nil && !n.guard; n = n.next {
		b.WriteByte(' ')
		if n.sym.IsTerminal() {
			if name != nil {
				b.WriteString(name(n.sym.Event()))
			} else {
				fmt.Fprintf(&b, "t%d", n.sym.Event())
			}
		} else {
			fmt.Fprintf(&b, "R%d", n.sym.RuleIndex())
		}
		if n.count > 1 {
			fmt.Fprintf(&b, "^%d", n.count)
		}
	}
	return b.String()
}
