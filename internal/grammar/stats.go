package grammar

// Stats summarises the size and shape of a frozen grammar — the quantities
// Table I reports (#rules) plus the structural measures useful when judging
// how well a trace compressed.
type Stats struct {
	// Rules is the number of productions (including the root).
	Rules int
	// Runs is the total number of runs across all rule bodies.
	Runs int
	// Terminals is the number of distinct terminal symbols.
	Terminals int
	// EventCount is the unfolded trace length.
	EventCount int64
	// Depth is the maximum rule-nesting depth (1 = flat root).
	Depth int
	// MaxBodyRuns is the longest rule body, in runs.
	MaxBodyRuns int
	// CompressionRatio is EventCount / Runs: how many trace events each
	// stored run represents on average.
	CompressionRatio float64
}

// ComputeStats derives Stats from a frozen grammar.
func (f *Frozen) ComputeStats() Stats {
	s := Stats{
		Rules:      len(f.Rules),
		Terminals:  len(f.TermSites),
		EventCount: f.EventCount,
	}
	depth := make([]int, len(f.Rules))
	var visit func(idx int32) int
	visit = func(idx int32) int {
		if depth[idx] != 0 {
			return depth[idx]
		}
		d := 1
		for _, run := range f.Rules[idx].Body {
			if !run.Sym.IsTerminal() {
				if cd := visit(run.Sym.RuleIndex()) + 1; cd > d {
					d = cd
				}
			}
		}
		depth[idx] = d
		return d
	}
	for i, r := range f.Rules {
		s.Runs += len(r.Body)
		if len(r.Body) > s.MaxBodyRuns {
			s.MaxBodyRuns = len(r.Body)
		}
		if d := visit(int32(i)); d > s.Depth {
			s.Depth = d
		}
	}
	if s.Runs > 0 {
		s.CompressionRatio = float64(s.EventCount) / float64(s.Runs)
	}
	return s
}
