package grammar

// Unfold reconstructs the complete sequence of terminal event ids represented
// by the grammar (paper Fig. 1). It is intended for tests, inspection, and
// the end-of-record timing replay; the prediction engine never materialises
// the full trace.
func (g *Grammar) Unfold() []int32 {
	out := make([]int32, 0, g.eventCount)
	g.Walk(func(eventID int32) bool {
		out = append(out, eventID)
		return true
	})
	return out
}

// Walk calls fn for every terminal of the unfolded trace in order, stopping
// early if fn returns false.
func (g *Grammar) Walk(fn func(eventID int32) bool) {
	g.walkRule(g.root(), fn)
}

func (g *Grammar) walkRule(r *rule, fn func(int32) bool) bool {
	for n := r.first(); n != nil && !n.guard; n = n.next {
		for i := uint32(0); i < n.count; i++ {
			if n.sym.IsTerminal() {
				if !fn(n.sym.Event()) {
					return false
				}
			} else {
				if !g.walkRule(g.ruleOf(n.sym), fn) {
					return false
				}
			}
		}
		if n == r.guard.prev {
			break
		}
	}
	return true
}

// ExpandedLength returns the number of terminals one expansion of rule idx
// unfolds to. ExpandedLength(0) equals EventCount().
func (g *Grammar) ExpandedLength(idx int32) int64 {
	memo := make(map[int32]int64)
	return g.expandedLength(idx, memo)
}

func (g *Grammar) expandedLength(idx int32, memo map[int32]int64) int64 {
	if v, ok := memo[idx]; ok {
		return v
	}
	r := g.rules[idx]
	if r == nil {
		return 0
	}
	var total int64
	for n := r.first(); n != nil && !n.guard; n = n.next {
		if n.sym.IsTerminal() {
			total += int64(n.count)
		} else {
			total += int64(n.count) * g.expandedLength(n.sym.RuleIndex(), memo)
		}
		if n == r.guard.prev {
			break
		}
	}
	memo[idx] = total
	return total
}
