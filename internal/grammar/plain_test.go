package grammar

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPlainUnfoldRoundTripExhaustive(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for mask := 0; mask < 1<<uint(n); mask++ {
			seq := make([]int32, n)
			for i := 0; i < n; i++ {
				seq[i] = int32((mask >> uint(i)) & 1)
			}
			g := NewPlain()
			for _, e := range seq {
				g.Append(e)
			}
			got := g.Unfold()
			if len(got) == 0 && len(seq) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, seq) {
				t.Fatalf("seq %v: plain unfold = %v", seq, got)
			}
		}
	}
}

func TestPlainQuickRoundTrip(t *testing.T) {
	f := func(raw []uint8, k uint8) bool {
		alphabet := int32(k%6) + 1
		g := NewPlain()
		seq := make([]int32, len(raw))
		for i, v := range raw {
			seq[i] = int32(v) % alphabet
			g.Append(seq[i])
		}
		got := g.Unfold()
		if len(got) == 0 && len(seq) == 0 {
			return true
		}
		return reflect.DeepEqual(got, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPlainRandomLong(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 500 + rng.Intn(3000)
		seq := make([]int32, n)
		g := NewPlain()
		for i := range seq {
			if rng.Intn(3) == 0 {
				seq[i] = int32(rng.Intn(8))
			} else if i > 0 {
				seq[i] = seq[i-1] // long runs stress the no-exponent path
			}
			g.Append(seq[i])
		}
		if got := g.Unfold(); !reflect.DeepEqual(got, seq) {
			t.Fatalf("trial %d: mismatch (got %d want %d)", trial, len(got), len(seq))
		}
	}
}

// TestRunLengthBeatsPlainOnLoops quantifies the design choice the paper
// inherits from Cyclitur: on loop traces, run-length exponents keep the
// grammar constant-size while plain Sequitur grows logarithmically.
func TestRunLengthBeatsPlainOnLoops(t *testing.T) {
	var seq []int32
	for i := 0; i < 2000; i++ {
		seq = append(seq, 0, 1, 2)
	}
	rl := New()
	pl := NewPlain()
	for _, e := range seq {
		rl.Append(e)
		pl.Append(e)
	}
	if rl.RuleCount() >= pl.RuleCount() {
		t.Fatalf("run-length rules (%d) should undercut plain rules (%d)",
			rl.RuleCount(), pl.RuleCount())
	}
	t.Logf("2000x loop of 3 events: run-length %d rules, plain %d rules (%d nodes)",
		rl.RuleCount(), pl.RuleCount(), pl.NodeCount())
}

func BenchmarkPlainAppendRegular(b *testing.B) {
	b.ReportAllocs()
	g := NewPlain()
	for i := 0; i < b.N; i++ {
		g.Append(int32(i % 4))
	}
}
