package grammar

import "testing"

func TestComputeStatsFlat(t *testing.T) {
	g := New()
	for _, e := range []int32{0, 1, 2} {
		g.Append(e)
	}
	s := g.Freeze().ComputeStats()
	if s.Rules != 1 || s.Depth != 1 || s.Terminals != 3 || s.EventCount != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestComputeStatsNested(t *testing.T) {
	g := New()
	for i := 0; i < 100; i++ {
		for j := 0; j < 10; j++ {
			g.Append(0)
			g.Append(1)
		}
		g.Append(2)
	}
	s := g.Freeze().ComputeStats()
	if s.Depth < 2 {
		t.Fatalf("nested loops should nest rules: %+v", s)
	}
	if s.CompressionRatio < 50 {
		t.Fatalf("compression ratio %.1f too low for a 2100-event loop trace", s.CompressionRatio)
	}
	if s.EventCount != 2100 {
		t.Fatalf("EventCount = %d", s.EventCount)
	}
	if s.MaxBodyRuns == 0 || s.Runs == 0 {
		t.Fatalf("missing run counts: %+v", s)
	}
}

func TestComputeStatsIrregular(t *testing.T) {
	g := New()
	state := uint32(99)
	for i := 0; i < 3000; i++ {
		state = state*1664525 + 1013904223
		g.Append(int32(state % 12))
	}
	s := g.Freeze().ComputeStats()
	if s.CompressionRatio > 10 {
		t.Fatalf("random trace should not compress 10x: %+v", s)
	}
	if s.Terminals != 12 {
		t.Fatalf("terminals = %d", s.Terminals)
	}
}

func FuzzGrammarRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 2}, uint8(3))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, uint8(2))
	f.Add([]byte{0, 1, 0, 2, 0, 1, 0, 2, 0, 1}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, alphabet uint8) {
		k := int32(alphabet%8) + 1
		g := New()
		seq := make([]int32, len(raw))
		for i, b := range raw {
			seq[i] = int32(b) % k
			g.Append(seq[i])
		}
		if err := g.CheckInvariantsStrict(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		got := g.Unfold()
		if len(got) != len(seq) {
			t.Fatalf("unfold length %d, want %d", len(got), len(seq))
		}
		for i := range got {
			if got[i] != seq[i] {
				t.Fatalf("unfold[%d] = %d, want %d", i, got[i], seq[i])
			}
		}
		// The frozen form must agree with the live form.
		fr := g.Freeze()
		if err := fr.Validate(); err != nil {
			t.Fatalf("frozen validate: %v", err)
		}
		fg := fr.Unfold()
		for i := range fg {
			if fg[i] != seq[i] {
				t.Fatalf("frozen unfold[%d] differs", i)
			}
		}
	})
}

func FuzzPlainMatchesRunLength(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		rl := New()
		pl := NewPlain()
		for _, b := range raw {
			e := int32(b % 5)
			rl.Append(e)
			pl.Append(e)
		}
		a, b := rl.Unfold(), pl.Unfold()
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("engines disagree at %d", i)
			}
		}
	})
}
