package grammar

// digramTable is an open-addressed hash table from packed digrams to the
// body node holding the indexed occurrence. It replaces the previous
// map[digram]*node on the PYTHIA-RECORD hot path: every Append funnels
// through one digram lookup (check) and structural edits do several more,
// so the generic map's hashing and bucket chasing dominated record-mode
// cost. The table uses:
//
//   - power-of-two capacity with multiplicative (Fibonacci) hashing of the
//     packed uint64 key;
//   - robin-hood insertion, which bounds probe-sequence variance at the
//     high load factors grammar indexes reach (7/8 here);
//   - tombstone-free deletion by backward shift, so heavy rule churn
//     (match/inline/deleteUnused constantly retire digrams) never degrades
//     lookups the way tombstones would.
//
// The map-based reference implementation is kept behind the IndexGoMap
// ablation flag (see NewIndexed) and cross-checked by FuzzDigramIndexDiff.

// pack encodes a digram as the table key. The bit patterns of both symbols
// are preserved, so distinct digrams map to distinct keys.
func (d digram) pack() uint64 {
	return uint64(uint32(d.a))<<32 | uint64(uint32(d.b))
}

// unpack is the inverse of pack (used by the invariant sweep).
func unpackDigram(k uint64) digram {
	return digram{a: Sym(int32(uint32(k >> 32))), b: Sym(int32(uint32(k)))}
}

// emptyKey marks a free slot. It is the packed digram (R0, R0); the root
// rule's symbol never appears in any body (nothing references the root), so
// no real digram packs to it.
const emptyKey = ^uint64(0)

// digramTable's zero value is an empty table ready for use.
type digramTable struct {
	keys  []uint64
	vals  []*node
	count int
	// shift is 64 - log2(len(keys)), the multiplicative-hash shift.
	shift uint
}

// slot returns the home slot of key k.
func (t *digramTable) slot(k uint64) uint32 {
	// Fibonacci hashing: the golden-ratio multiplier spreads consecutive
	// packed digrams (which differ in few bits) across the table.
	return uint32((k * 0x9E3779B97F4A7C15) >> t.shift)
}

// get returns the node indexed under k, or nil.
// pythia:hotpath — one lookup per Append (digram-uniqueness check).
func (t *digramTable) get(k uint64) *node {
	if t.count == 0 {
		return nil
	}
	mask := uint32(len(t.keys) - 1)
	i := t.slot(k)
	for dist := uint32(0); ; dist++ {
		kk := t.keys[i]
		if kk == k {
			return t.vals[i]
		}
		if kk == emptyKey {
			return nil
		}
		if (i-t.slot(kk))&mask < dist {
			// Robin-hood invariant: a resident richer than us means k
			// cannot be further down the probe sequence.
			return nil
		}
		i = (i + 1) & mask
	}
}

// put inserts or replaces the entry for k.
// pythia:hotpath — claims the index slot on every new digram.
func (t *digramTable) put(k uint64, v *node) {
	if t.count+1 > len(t.keys)-len(t.keys)/8 {
		t.grow()
	}
	mask := uint32(len(t.keys) - 1)
	i := t.slot(k)
	for dist := uint32(0); ; dist++ {
		kk := t.keys[i]
		if kk == emptyKey {
			t.keys[i] = k
			t.vals[i] = v
			t.count++
			return
		}
		if kk == k {
			t.vals[i] = v
			return
		}
		if rd := (i - t.slot(kk)) & mask; rd < dist {
			// Robin hood: steal the slot from the richer resident and
			// keep inserting the displaced entry.
			k, t.keys[i] = kk, k
			v, t.vals[i] = t.vals[i], v
			dist = rd
		}
		i = (i + 1) & mask
	}
}

// del removes the entry for k if present, backward-shifting the cluster
// behind it so no tombstone is left.
// pythia:hotpath — digram retirement on every structural edit.
func (t *digramTable) del(k uint64) {
	if t.count == 0 {
		return
	}
	mask := uint32(len(t.keys) - 1)
	i := t.slot(k)
	for dist := uint32(0); ; dist++ {
		kk := t.keys[i]
		if kk == emptyKey {
			return
		}
		if kk == k {
			break
		}
		if (i-t.slot(kk))&mask < dist {
			return
		}
		i = (i + 1) & mask
	}
	t.count--
	for {
		j := (i + 1) & mask
		kk := t.keys[j]
		if kk == emptyKey || (j-t.slot(kk))&mask == 0 {
			t.keys[i] = emptyKey
			t.vals[i] = nil
			return
		}
		t.keys[i] = kk
		t.vals[i] = t.vals[j]
		i = j
	}
}

// forEach visits every live entry (iteration order is unspecified). Used by
// the invariant sweep and tests, not the hot path.
func (t *digramTable) forEach(fn func(digram, *node)) {
	for i, k := range t.keys {
		if k != emptyKey {
			fn(unpackDigram(k), t.vals[i])
		}
	}
}

// grow doubles the capacity (initially 32 slots) and reinserts all entries.
func (t *digramTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	n := 2 * len(oldKeys)
	if n == 0 {
		n = 32
	}
	t.keys = make([]uint64, n)
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	t.vals = make([]*node, n)
	t.count = 0
	t.shift = 64 - log2u(n)
	for i, k := range oldKeys {
		if k != emptyKey {
			t.put(k, oldVals[i])
		}
	}
}

// log2u returns log2 of the power-of-two n.
func log2u(n int) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
