package grammar

// node is one run in a rule body: a symbol and its number of consecutive
// repetitions. Rule bodies are circular doubly-linked lists threaded through
// a sentinel (guard) node so that insertion and removal are O(1).
type node struct {
	sym   Sym
	count uint32
	prev  *node
	next  *node
	rule  *rule // owning rule; nil once the node is unlinked (dead)
	guard bool  // sentinel marker
}

// alive reports whether the node is still linked into a rule body.
func (n *node) alive() bool { return n.rule != nil }

// rule is one production of the grammar. Its body is the list of runs
// between guard.next and guard.prev. uses is the total number of times the
// rule is referenced, counting run exponents (a run N^3 contributes 3).
type rule struct {
	idx   int32
	guard *node
	uses  int64
	// users is the set of live nodes whose symbol refers to this rule.
	users map[*node]struct{}
}

func newRule(idx int32) *rule {
	r := &rule{idx: idx, users: make(map[*node]struct{})}
	g := &node{guard: true}
	g.prev, g.next = g, g
	g.rule = r
	r.guard = g
	return r
}

// sym returns the non-terminal symbol referring to this rule.
func (r *rule) sym() Sym { return nonTerminal(r.idx) }

// first returns the first run of the body, or nil if the body is empty.
func (r *rule) first() *node {
	if r.guard.next == r.guard {
		return nil
	}
	return r.guard.next
}

// last returns the last run of the body, or nil if the body is empty.
func (r *rule) last() *node {
	if r.guard.prev == r.guard {
		return nil
	}
	return r.guard.prev
}

// bodyLen returns the number of runs in the body.
func (r *rule) bodyLen() int {
	n := 0
	for p := r.guard.next; !p.guard; p = p.next {
		n++
	}
	return n
}

// insertAfter links n immediately after pos (pos may be the guard, in which
// case n becomes the first run). n must be fresh or unlinked.
func (r *rule) insertAfter(pos, n *node) {
	n.rule = r
	n.prev = pos
	n.next = pos.next
	pos.next.prev = n
	pos.next = n
}

// unlink removes n from its rule body and marks it dead. It does not touch
// the digram index or usage accounting; callers handle those.
func (n *node) unlink() {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.rule = nil
	n.prev, n.next = nil, nil
}
