package grammar

import (
	"testing"
)

// fuzzCheckEvery is how many appends separate strict invariant sweeps while
// fuzzing. Checking after every insert is O(n * grammar) and drowns the
// fuzzer; every 32nd insert still pins violations to a 32-event window while
// the final sweep catches anything that survives to the end.
const fuzzCheckEvery = 32

// fuzzMaxEvents caps the decoded event stream so a huge corpus entry cannot
// turn one execution into a multi-second run.
const fuzzMaxEvents = 4096

// decodeFuzzEvents derives an event stream from raw fuzz bytes. A deliberately
// small alphabet (8 event IDs) plus occasional runs maximises digram
// collisions, which is where the Sequitur edit paths (substitute, inline,
// run merging, rule deletion) actually fire.
func decodeFuzzEvents(data []byte) []int32 {
	events := make([]int32, 0, len(data)*2)
	for _, b := range data {
		id := int32(b & 0x07)
		// The high bit doubles the event: cheap run pressure without a
		// separate count channel in the corpus.
		events = append(events, id)
		if b&0x80 != 0 {
			events = append(events, id)
		}
		if len(events) >= fuzzMaxEvents {
			events = events[:fuzzMaxEvents]
			break
		}
	}
	return events
}

// FuzzGrammarInvariants feeds arbitrary byte-derived event streams through
// the on-line builder and asserts that (a) the strict structural invariants
// — including the stale-digram-index sweep — hold every fuzzCheckEvery
// appends and at the end, and (b) unfolding the final grammar reproduces the
// input stream exactly.
func FuzzGrammarInvariants(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1, 0, 1})                         // immediate digram rule
	f.Add([]byte{0x80, 0x81, 0x80, 0x81})                   // runs + digrams
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3})                // nested rule reuse
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})                   // one long run
	f.Add([]byte{0, 1, 2, 0, 1, 2, 4, 0, 1, 2, 0, 1, 2, 4}) // rule inside rule
	f.Fuzz(func(t *testing.T, data []byte) {
		events := decodeFuzzEvents(data)
		g := New()
		for i, id := range events {
			g.Append(id)
			if (i+1)%fuzzCheckEvery == 0 {
				if err := g.CheckInvariantsStrict(); err != nil {
					t.Fatalf("after %d/%d events: %v", i+1, len(events), err)
				}
			}
		}
		if err := g.CheckInvariantsStrict(); err != nil {
			t.Fatalf("after all %d events: %v", len(events), err)
		}
		got := g.Unfold()
		if len(got) != len(events) {
			t.Fatalf("unfold length %d, want %d", len(got), len(events))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("unfold[%d] = %d, want %d", i, got[i], events[i])
			}
		}
	})
}
