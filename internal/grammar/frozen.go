package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// Run is one element of a frozen rule body: a symbol and its number of
// consecutive repetitions.
type Run struct {
	Sym   Sym
	Count uint32
}

// UserRef locates a run inside a frozen grammar: body position Pos of rule
// Rule.
type UserRef struct {
	Rule int32
	Pos  int32
}

// FrozenRule is one production of a frozen grammar.
type FrozenRule struct {
	// Body is the ordered list of runs of the production.
	Body []Run
	// Users lists every run (in any rule) whose symbol references this rule,
	// in deterministic (rule, position) order. Empty for the root.
	Users []UserRef
	// Occ is the number of times one expansion of this rule occurs in the
	// unfolded trace (1 for the root).
	Occ int64
	// Len is the number of terminals one expansion of this rule unfolds to.
	Len int64
}

// Frozen is an immutable, densely indexed snapshot of a Grammar. It is the
// form PYTHIA-PREDICT navigates and the trace file stores. Rule 0 is always
// the root.
type Frozen struct {
	Rules []FrozenRule
	// EventCount is the unfolded length of the trace.
	EventCount int64
	// TermSites maps each terminal event id to every run where it occurs,
	// in deterministic order. This is the entry point for re-anchoring a
	// lost progress sequence (paper section II-B2).
	TermSites map[int32][]UserRef
}

// Freeze compacts the live rules of g into a Frozen snapshot. The grammar
// may continue to evolve afterwards; the snapshot is unaffected.
func (g *Grammar) Freeze() *Frozen {
	// Dense re-indexing of live rules, root first, ascending old index.
	remap := make(map[int32]int32, len(g.rules))
	var live []*rule
	for _, r := range g.rules {
		if r != nil {
			remap[r.idx] = int32(len(live))
			live = append(live, r)
		}
	}

	f := &Frozen{
		Rules:      make([]FrozenRule, len(live)),
		EventCount: g.eventCount,
		TermSites:  make(map[int32][]UserRef),
	}
	for newIdx, r := range live {
		var body []Run
		for n := r.first(); n != nil && !n.guard; n = n.next {
			s := n.sym
			if !s.IsTerminal() {
				s = nonTerminal(remap[s.RuleIndex()])
			}
			body = append(body, Run{Sym: s, Count: n.count})
		}
		f.Rules[newIdx].Body = body
	}
	f.buildDerived()
	return f
}

// buildDerived computes Users, TermSites, Len and Occ from rule bodies. It
// is also used after deserialisation, which only transports the bodies.
func (f *Frozen) buildDerived() {
	if f.TermSites == nil {
		f.TermSites = make(map[int32][]UserRef)
	}
	for i := range f.Rules {
		f.Rules[i].Users = nil
		f.Rules[i].Occ = 0
		f.Rules[i].Len = 0
	}
	for ri := range f.Rules {
		for pi, run := range f.Rules[ri].Body {
			ref := UserRef{Rule: int32(ri), Pos: int32(pi)}
			if run.Sym.IsTerminal() {
				id := run.Sym.Event()
				f.TermSites[id] = append(f.TermSites[id], ref)
			} else {
				tgt := run.Sym.RuleIndex()
				f.Rules[tgt].Users = append(f.Rules[tgt].Users, ref)
			}
		}
	}

	// Topological order (users before used) by reverse post-order DFS from
	// the root; the grammar is acyclic by construction.
	order := make([]int32, 0, len(f.Rules))
	state := make([]int8, len(f.Rules))
	var visit func(idx int32)
	visit = func(idx int32) {
		if state[idx] != 0 {
			return
		}
		state[idx] = 1
		for _, run := range f.Rules[idx].Body {
			if !run.Sym.IsTerminal() {
				visit(run.Sym.RuleIndex())
			}
		}
		order = append(order, idx)
	}
	visit(0)

	// Len in post-order (used before users).
	for _, idx := range order {
		var total int64
		for _, run := range f.Rules[idx].Body {
			if run.Sym.IsTerminal() {
				total += int64(run.Count)
			} else {
				total += int64(run.Count) * f.Rules[run.Sym.RuleIndex()].Len
			}
		}
		f.Rules[idx].Len = total
	}

	// Occ in reverse post-order (users before used).
	f.Rules[0].Occ = 1
	for i := len(order) - 1; i >= 0; i-- {
		idx := order[i]
		occ := f.Rules[idx].Occ
		for _, run := range f.Rules[idx].Body {
			if !run.Sym.IsTerminal() {
				f.Rules[run.Sym.RuleIndex()].Occ += occ * int64(run.Count)
			}
		}
	}
}

// RunAt returns the run at ref.
func (f *Frozen) RunAt(ref UserRef) Run { return f.Rules[ref.Rule].Body[ref.Pos] }

// SymLen returns the number of terminals one instance of sym unfolds to.
func (f *Frozen) SymLen(sym Sym) int64 {
	if sym.IsTerminal() {
		return 1
	}
	return f.Rules[sym.RuleIndex()].Len
}

// TerminalIDs returns the sorted set of terminal event ids occurring in the
// grammar.
func (f *Frozen) TerminalIDs() []int32 {
	ids := make([]int32, 0, len(f.TermSites))
	for id := range f.TermSites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Validate checks structural well-formedness of a frozen grammar (typically
// after deserialisation): rule references in range, positive run counts,
// non-empty bodies for referenced rules, acyclicity.
func (f *Frozen) Validate() error {
	if len(f.Rules) == 0 {
		return fmt.Errorf("frozen grammar: no rules")
	}
	for ri, r := range f.Rules {
		for pi, run := range r.Body {
			if run.Count == 0 {
				return fmt.Errorf("frozen grammar: zero count at R%d[%d]", ri, pi)
			}
			if !run.Sym.IsTerminal() {
				tgt := run.Sym.RuleIndex()
				if tgt < 0 || int(tgt) >= len(f.Rules) {
					return fmt.Errorf("frozen grammar: R%d[%d] references R%d out of range", ri, pi, tgt)
				}
				if tgt == int32(ri) {
					return fmt.Errorf("frozen grammar: R%d references itself", ri)
				}
			}
		}
	}
	state := make([]int8, len(f.Rules))
	var visit func(idx int32) error
	visit = func(idx int32) error {
		switch state[idx] {
		case 1:
			return fmt.Errorf("frozen grammar: cycle through R%d", idx)
		case 2:
			return nil
		}
		state[idx] = 1
		for _, run := range f.Rules[idx].Body {
			if !run.Sym.IsTerminal() {
				if err := visit(run.Sym.RuleIndex()); err != nil {
					return err
				}
			}
		}
		state[idx] = 2
		return nil
	}
	return visit(0)
}

// Unfold reconstructs the full terminal sequence. Intended for tests and the
// timing replay.
func (f *Frozen) Unfold() []int32 {
	out := make([]int32, 0, f.EventCount)
	var expand func(idx int32)
	expand = func(idx int32) {
		for _, run := range f.Rules[idx].Body {
			for i := uint32(0); i < run.Count; i++ {
				if run.Sym.IsTerminal() {
					out = append(out, run.Sym.Event())
				} else {
					expand(run.Sym.RuleIndex())
				}
			}
		}
	}
	expand(0)
	return out
}

// Dump renders the frozen grammar in the paper's notation (see Grammar.Dump).
func (f *Frozen) Dump(name NameFunc) string {
	var b strings.Builder
	for ri, r := range f.Rules {
		fmt.Fprintf(&b, "R%d ->", ri)
		for _, run := range r.Body {
			b.WriteByte(' ')
			if run.Sym.IsTerminal() {
				if name != nil {
					b.WriteString(name(run.Sym.Event()))
				} else {
					fmt.Fprintf(&b, "t%d", run.Sym.Event())
				}
			} else {
				fmt.Fprintf(&b, "R%d", run.Sym.RuleIndex())
			}
			if run.Count > 1 {
				fmt.Fprintf(&b, "^%d", run.Count)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// NonTerminal exposes construction of non-terminal symbols for packages that
// assemble Frozen grammars directly (deserialisation, tests).
func NonTerminal(ruleIdx int32) Sym { return nonTerminal(ruleIdx) }

// NewFrozen assembles a frozen grammar from raw rule bodies (rule 0 is the
// root), validates it, and computes all derived data (usage sites, terminal
// sites, occurrence counts, expansion lengths). It is the entry point for
// deserialisation.
func NewFrozen(bodies [][]Run) (*Frozen, error) {
	f := &Frozen{Rules: make([]FrozenRule, len(bodies))}
	for i, b := range bodies {
		f.Rules[i].Body = b
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	f.buildDerived()
	f.EventCount = 0
	if len(f.Rules) > 0 {
		f.EventCount = f.Rules[0].Len
	}
	return f, nil
}
