package grammar

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseDump parses the textual grammar notation produced by Dump (with nil
// NameFunc), e.g.
//
//	R0 -> t0^6 R1 t2 R1^200
//	R1 -> t3 t4
//
// back into a frozen grammar. It is the inverse of Frozen.Dump for grammars
// whose terminals render as "t<id>", enabling golden-file tests and
// hand-authored grammars in tools.
func ParseDump(text string) (*Frozen, error) {
	type rawRule struct {
		idx  int32
		body []Run
	}
	var raws []rawRule
	maxIdx := int32(-1)
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		head, rest, ok := strings.Cut(line, "->")
		if !ok {
			return nil, fmt.Errorf("grammar: line %d: missing '->'", lineNo+1)
		}
		idx, err := parseRuleName(strings.TrimSpace(head))
		if err != nil {
			return nil, fmt.Errorf("grammar: line %d: %w", lineNo+1, err)
		}
		if idx > maxIdx {
			maxIdx = idx
		}
		var body []Run
		for _, tok := range strings.Fields(rest) {
			run, err := parseRun(tok)
			if err != nil {
				return nil, fmt.Errorf("grammar: line %d: %w", lineNo+1, err)
			}
			if !run.Sym.IsTerminal() && run.Sym.RuleIndex() > maxIdx {
				maxIdx = run.Sym.RuleIndex()
			}
			body = append(body, run)
		}
		raws = append(raws, rawRule{idx: idx, body: body})
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("grammar: empty dump")
	}
	bodies := make([][]Run, maxIdx+1)
	seen := make(map[int32]bool)
	for _, r := range raws {
		if seen[r.idx] {
			return nil, fmt.Errorf("grammar: duplicate rule R%d", r.idx)
		}
		seen[r.idx] = true
		bodies[r.idx] = r.body
	}
	for i := range bodies {
		if !seen[int32(i)] {
			return nil, fmt.Errorf("grammar: rule R%d referenced but not defined", i)
		}
	}
	return NewFrozen(bodies)
}

func parseRuleName(s string) (int32, error) {
	if !strings.HasPrefix(s, "R") {
		return 0, fmt.Errorf("bad rule name %q", s)
	}
	v, err := strconv.ParseInt(s[1:], 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad rule name %q", s)
	}
	return int32(v), nil
}

func parseRun(tok string) (Run, error) {
	count := uint32(1)
	if base, exp, ok := strings.Cut(tok, "^"); ok {
		v, err := strconv.ParseUint(exp, 10, 32)
		if err != nil || v == 0 {
			return Run{}, fmt.Errorf("bad exponent in %q", tok)
		}
		count = uint32(v)
		tok = base
	}
	switch {
	case strings.HasPrefix(tok, "t"):
		v, err := strconv.ParseInt(tok[1:], 10, 32)
		if err != nil || v < 0 {
			return Run{}, fmt.Errorf("bad terminal %q", tok)
		}
		return Run{Sym: Terminal(int32(v)), Count: count}, nil
	case strings.HasPrefix(tok, "R"):
		v, err := strconv.ParseInt(tok[1:], 10, 32)
		if err != nil || v < 0 {
			return Run{}, fmt.Errorf("bad rule reference %q", tok)
		}
		return Run{Sym: NonTerminal(int32(v)), Count: count}, nil
	default:
		return Run{}, fmt.Errorf("bad symbol %q", tok)
	}
}
