package grammar

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// buildChecked appends seq to a fresh grammar, verifying all invariants
// after every single append. It fails the test at the first violation.
func buildChecked(t *testing.T, seq []int32) *Grammar {
	t.Helper()
	g := New()
	for i, e := range seq {
		g.Append(e)
		if err := g.CheckInvariantsStrict(); err != nil {
			t.Fatalf("after appending %d events (last=%d): %v\ngrammar:\n%s",
				i+1, e, err, g.Dump(nil))
		}
	}
	return g
}

// build appends seq without per-step checking (for large inputs), verifying
// invariants once at the end.
func build(t *testing.T, seq []int32) *Grammar {
	t.Helper()
	g := New()
	for _, e := range seq {
		g.Append(e)
	}
	if err := g.CheckInvariantsStrict(); err != nil {
		t.Fatalf("invariants: %v\ngrammar:\n%s", err, g.Dump(nil))
	}
	return g
}

func seqOf(s string) []int32 {
	out := make([]int32, len(s))
	for i, c := range s {
		out[i] = int32(c - 'a')
	}
	return out
}

func TestEmptyGrammar(t *testing.T) {
	g := New()
	if err := g.CheckInvariantsStrict(); err != nil {
		t.Fatal(err)
	}
	if g.EventCount() != 0 {
		t.Fatalf("EventCount = %d, want 0", g.EventCount())
	}
	if got := g.Unfold(); len(got) != 0 {
		t.Fatalf("Unfold of empty grammar = %v", got)
	}
	if g.RuleCount() != 1 {
		t.Fatalf("RuleCount = %d, want 1 (root)", g.RuleCount())
	}
}

func TestSingleEvent(t *testing.T) {
	g := buildChecked(t, []int32{7})
	if got := g.Unfold(); !reflect.DeepEqual(got, []int32{7}) {
		t.Fatalf("Unfold = %v", got)
	}
}

func TestRunMerging(t *testing.T) {
	g := buildChecked(t, []int32{1, 1, 1, 1, 1})
	if g.RuleCount() != 1 {
		t.Fatalf("RuleCount = %d, want 1", g.RuleCount())
	}
	root := g.root()
	if root.bodyLen() != 1 {
		t.Fatalf("root body has %d runs, want 1:\n%s", root.bodyLen(), g.Dump(nil))
	}
	if root.first().count != 5 {
		t.Fatalf("run count = %d, want 5", root.first().count)
	}
}

func TestAppendRun(t *testing.T) {
	g := New()
	g.AppendRun(3, 4)
	g.Append(5)
	g.AppendRun(3, 2)
	if err := g.CheckInvariantsStrict(); err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 3, 3, 3, 5, 3, 3}
	if got := g.Unfold(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Unfold = %v, want %v", got, want)
	}
}

// TestPaperFig1 reproduces the trace of Figure 1: "abbcbcab". The exact rule
// decomposition may differ from the figure (which is illustrative), but the
// unfolding must be exact and the invariants must hold.
func TestPaperFig1(t *testing.T) {
	seq := seqOf("abbcbcab")
	g := buildChecked(t, seq)
	if got := g.Unfold(); !reflect.DeepEqual(got, seq) {
		t.Fatalf("Unfold = %v, want %v", got, seq)
	}
}

// TestPaperFig2 reproduces Figure 2: a loop of 100 iterations alternating
// events a and b reduces to a root holding 50 repetitions of one rule whose
// body is "ab".
func TestPaperFig2(t *testing.T) {
	var seq []int32
	for i := 0; i < 100; i++ {
		seq = append(seq, int32(i%2)) // a=0 (even), b=1 (odd)
	}
	g := build(t, seq)
	if got := g.Unfold(); !reflect.DeepEqual(got, seq) {
		t.Fatalf("Unfold mismatch")
	}
	if g.RuleCount() != 2 {
		t.Fatalf("RuleCount = %d, want 2:\n%s", g.RuleCount(), g.Dump(nil))
	}
	root := g.root()
	if root.bodyLen() != 1 {
		t.Fatalf("root body has %d runs, want 1:\n%s", root.bodyLen(), g.Dump(nil))
	}
	n := root.first()
	if n.sym.IsTerminal() || n.count != 50 {
		t.Fatalf("root run = %v^%d, want A^50:\n%s", n.sym, n.count, g.Dump(nil))
	}
	a := g.ruleOf(n.sym)
	if a.bodyLen() != 2 || a.first().sym != Terminal(0) || a.last().sym != Terminal(1) {
		t.Fatalf("rule body not 'ab':\n%s", g.Dump(nil))
	}
}

// TestPaperFig3 replays the scenario of Figure 3: a grammar whose root ends
// with "... B b^5" (with A -> b^3 c^2 and B -> b^2 A already present)
// receives two successive c events and must converge to a root ending with
// B^2, with rule C eliminated.
//
// The exact prefix used to produce that state is synthesised here: the
// sequence "b3 c2 b2 b3 c2" = "bbbccbbbbbcc" builds A -> b^3 c^2 and
// B -> b^2 A with root "A B"; appending "bbbbb" gives root "A B b^5".
func TestPaperFig3(t *testing.T) {
	seq := seqOf("bbbccbbbbbccbbbbb") // A B b^5 with A->b^3c^2, B->b^2A
	g := buildChecked(t, seq)

	// Now the two appends of the figure.
	g.Append(int32('c' - 'a'))
	if err := g.CheckInvariantsStrict(); err != nil {
		t.Fatalf("after first c: %v\n%s", err, g.Dump(nil))
	}
	g.Append(int32('c' - 'a'))
	if err := g.CheckInvariantsStrict(); err != nil {
		t.Fatalf("after second c: %v\n%s", err, g.Dump(nil))
	}
	want := append(append([]int32{}, seq...), int32('c'-'a'), int32('c'-'a'))
	if got := g.Unfold(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Unfold mismatch:\n%s", g.Dump(nil))
	}
	// Figure 3h shows the repetition being captured into a shared rule and
	// the transient rule C eliminated. The exact factorisation is
	// construction-order dependent (the figure starts from a hand-drawn
	// state); what must hold is that the grammar stays maximally compact:
	// three rules and a two-run root with the repetition folded into an
	// exponent.
	if rc := g.RuleCount(); rc != 3 {
		t.Fatalf("RuleCount = %d, want 3:\n%s", rc, g.Dump(nil))
	}
	root := g.root()
	if root.bodyLen() != 2 {
		t.Fatalf("root body has %d runs, want 2:\n%s", root.bodyLen(), g.Dump(nil))
	}
	if root.first().count+root.last().count != 3 {
		t.Fatalf("root exponents should total 3 (one repeated rule):\n%s", g.Dump(nil))
	}
}

func TestLoopWithCondition(t *testing.T) {
	// for i in 0..99: if even -> a else -> b, then a trailing barrier event.
	var seq []int32
	for i := 0; i < 100; i++ {
		seq = append(seq, int32(i%2))
	}
	seq = append(seq, 9)
	g := build(t, seq)
	if got := g.Unfold(); !reflect.DeepEqual(got, seq) {
		t.Fatalf("Unfold mismatch")
	}
}

func TestNestedLoops(t *testing.T) {
	// Outer loop 20x: inner loop 10x of (a b), then c.
	var seq []int32
	for i := 0; i < 20; i++ {
		for j := 0; j < 10; j++ {
			seq = append(seq, 0, 1)
		}
		seq = append(seq, 2)
	}
	g := build(t, seq)
	if got := g.Unfold(); !reflect.DeepEqual(got, seq) {
		t.Fatalf("Unfold mismatch")
	}
	// A deeply repetitive trace must compress to a handful of rules.
	if rc := g.RuleCount(); rc > 6 {
		t.Fatalf("RuleCount = %d, want <= 6:\n%s", rc, g.Dump(nil))
	}
}

func TestMPIStylePattern(t *testing.T) {
	// Mimics the BT grammar of paper Fig 7: setup collectives, 200 iterations
	// of a communication pattern, closing collectives.
	const (
		bcast     = 0
		barrier   = 1
		isend     = 2
		irecv     = 3
		wait      = 4
		allreduce = 5
		reduce    = 6
	)
	var seq []int32
	for i := 0; i < 6; i++ {
		seq = append(seq, bcast)
	}
	seq = append(seq, barrier)
	for i := 0; i < 200; i++ {
		seq = append(seq, isend, irecv, wait, wait)
	}
	seq = append(seq, allreduce, allreduce, reduce, barrier)
	g := build(t, seq)
	if got := g.Unfold(); !reflect.DeepEqual(got, seq) {
		t.Fatalf("Unfold mismatch")
	}
	if rc := g.RuleCount(); rc > 5 {
		t.Fatalf("RuleCount = %d, want small:\n%s", rc, g.Dump(nil))
	}
}

func TestUnfoldMatchesInputSmallAlphabetExhaustive(t *testing.T) {
	// All sequences of length <= 8 over a 2-symbol alphabet, invariants
	// checked after every append.
	for n := 0; n <= 8; n++ {
		for mask := 0; mask < 1<<uint(n); mask++ {
			seq := make([]int32, n)
			for i := 0; i < n; i++ {
				seq[i] = int32((mask >> uint(i)) & 1)
			}
			g := New()
			for i, e := range seq {
				g.Append(e)
				if err := g.CheckInvariantsStrict(); err != nil {
					t.Fatalf("seq %v after %d appends: %v\n%s", seq, i+1, err, g.Dump(nil))
				}
			}
			if got := g.Unfold(); !reflect.DeepEqual(got, seq) {
				if len(got) == 0 && len(seq) == 0 {
					continue
				}
				t.Fatalf("seq %v: Unfold = %v\n%s", seq, got, g.Dump(nil))
			}
		}
	}
}

func TestQuickUnfoldRoundTrip(t *testing.T) {
	// Property: for any sequence, Unfold(reduce(seq)) == seq and all
	// invariants hold at the end.
	f := func(raw []uint8, alphabet uint8) bool {
		k := int32(alphabet%5) + 1
		seq := make([]int32, len(raw))
		for i, v := range raw {
			seq[i] = int32(v) % k
		}
		g := New()
		for _, e := range seq {
			g.Append(e)
		}
		if err := g.CheckInvariantsStrict(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		got := g.Unfold()
		if len(got) == 0 && len(seq) == 0 {
			return true
		}
		return reflect.DeepEqual(got, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomLongSequencesCheckedSparsely(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		alphabet := 2 + rng.Intn(6)
		n := 200 + rng.Intn(2000)
		seq := make([]int32, n)
		// Mix random noise with repetitive phases to exercise both rule
		// creation and reuse/inlining.
		i := 0
		for i < n {
			if rng.Intn(2) == 0 {
				// Repetitive phase: repeat a random motif.
				motifLen := 1 + rng.Intn(4)
				motif := make([]int32, motifLen)
				for j := range motif {
					motif[j] = int32(rng.Intn(alphabet))
				}
				reps := 1 + rng.Intn(20)
				for r := 0; r < reps && i < n; r++ {
					for _, m := range motif {
						if i >= n {
							break
						}
						seq[i] = m
						i++
					}
				}
			} else {
				seq[i] = int32(rng.Intn(alphabet))
				i++
			}
		}
		g := New()
		for j, e := range seq {
			g.Append(e)
			if j%97 == 0 {
				if err := g.CheckInvariantsStrict(); err != nil {
					t.Fatalf("trial %d after %d appends: %v", trial, j+1, err)
				}
			}
		}
		if err := g.CheckInvariantsStrict(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := g.Unfold(); !reflect.DeepEqual(got, seq) {
			t.Fatalf("trial %d: unfold mismatch (len got %d, want %d)", trial, len(got), len(seq))
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	g := build(t, seqOf("abcabcabc"))
	var got []int32
	g.Walk(func(e int32) bool {
		got = append(got, e)
		return len(got) < 4
	})
	want := seqOf("abca")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Walk collected %v, want %v", got, want)
	}
}

func TestExpandedLength(t *testing.T) {
	seq := seqOf("abababababab")
	g := build(t, seq)
	if n := g.ExpandedLength(0); n != int64(len(seq)) {
		t.Fatalf("ExpandedLength(0) = %d, want %d", n, len(seq))
	}
}

func TestEventCount(t *testing.T) {
	g := build(t, seqOf("aabbaabb"))
	if g.EventCount() != 8 {
		t.Fatalf("EventCount = %d, want 8", g.EventCount())
	}
}

func TestSymAccessors(t *testing.T) {
	s := Terminal(12)
	if !s.IsTerminal() || s.Event() != 12 {
		t.Fatalf("terminal accessors broken: %v", s)
	}
	n := NonTerminal(3)
	if n.IsTerminal() || n.RuleIndex() != 3 {
		t.Fatalf("non-terminal accessors broken: %v", n)
	}
	if s.String() != "t12" || n.String() != "R3" {
		t.Fatalf("String: %q %q", s.String(), n.String())
	}
}

func TestDumpStable(t *testing.T) {
	g := build(t, seqOf("abcabc"))
	d1 := g.Dump(nil)
	d2 := g.Dump(nil)
	if d1 != d2 {
		t.Fatalf("Dump is not deterministic:\n%s\n---\n%s", d1, d2)
	}
	if d1 == "" {
		t.Fatal("Dump returned empty string")
	}
}

func TestDumpWithNames(t *testing.T) {
	g := build(t, []int32{0, 1, 0, 1})
	names := []string{"Send", "Recv"}
	d := g.Dump(func(id int32) string { return names[id] })
	if d == "" {
		t.Fatal("empty dump")
	}
	for _, want := range names {
		found := false
		for i := 0; i+len(want) <= len(d); i++ {
			if d[i:i+len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}

func BenchmarkAppendRegular(b *testing.B) {
	b.ReportAllocs()
	g := New()
	for i := 0; i < b.N; i++ {
		g.Append(int32(i % 4))
	}
}

func BenchmarkAppendIrregular(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(7))
	g := New()
	for i := 0; i < b.N; i++ {
		g.Append(int32(rng.Intn(64)))
	}
}

func BenchmarkAppendNestedLoops(b *testing.B) {
	b.ReportAllocs()
	g := New()
	for i := 0; i < b.N; i++ {
		switch {
		case i%23 == 22:
			g.Append(99)
		case i%2 == 0:
			g.Append(0)
		default:
			g.Append(1)
		}
	}
}

// TestAppendRunEquivalence: AppendRun(e, k) must produce a grammar that
// unfolds identically to k successive Append(e) calls, whatever the
// surrounding sequence.
func TestAppendRunEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		a := New()
		b := New()
		var want []int32
		for step := 0; step < 60; step++ {
			e := int32(rng.Intn(4))
			k := uint32(1 + rng.Intn(5))
			a.AppendRun(e, k)
			for i := uint32(0); i < k; i++ {
				b.Append(e)
				want = append(want, e)
			}
		}
		if err := a.CheckInvariantsStrict(); err != nil {
			t.Fatalf("trial %d: AppendRun invariants: %v", trial, err)
		}
		ga, gb := a.Unfold(), b.Unfold()
		if !reflect.DeepEqual(ga, want) || !reflect.DeepEqual(gb, want) {
			t.Fatalf("trial %d: unfolds diverge", trial)
		}
	}
}

func TestAppendRunZeroIsNoop(t *testing.T) {
	g := New()
	g.AppendRun(1, 0)
	if g.EventCount() != 0 {
		t.Fatal("AppendRun(_, 0) recorded events")
	}
}
