package grammar

// PlainGrammar is a classic Sequitur reducer without run-length exponents
// (Nevill-Manning & Witten, as cited by the paper). It exists as the
// ablation baseline for Pythia's Cyclitur-style engine: on the loop-heavy
// traces of HPC applications, plain Sequitur needs O(log n) rules to encode
// n repetitions where the run-length engine needs a single exponent, and its
// digram index churns accordingly. See BenchmarkAblation_RunLengthVsPlain.
//
// The implementation follows the textbook algorithm: doubly-linked rule
// bodies, a digram index, digram uniqueness with overlap exclusion, and
// rule-utility inlining.
type PlainGrammar struct {
	rules []*plainRule
	free  []int32
	index map[digram]*plainNode
	count int64
}

type plainNode struct {
	sym        Sym
	prev, next *plainNode
	rule       *plainRule
	guard      bool
}

type plainRule struct {
	idx   int32
	guard *plainNode
	uses  int
	// user is one arbitrary referencing node; valid when uses == 1, which
	// is the only time it is consulted (for inlining).
	user *plainNode
}

// NewPlain returns an empty plain-Sequitur grammar.
func NewPlain() *PlainGrammar {
	g := &PlainGrammar{index: make(map[digram]*plainNode)}
	g.rules = append(g.rules, g.newRule())
	return g
}

func (g *PlainGrammar) newRule() *plainRule {
	r := &plainRule{}
	n := &plainNode{guard: true}
	n.prev, n.next = n, n
	n.rule = r
	r.guard = n
	return r
}

func (g *PlainGrammar) allocRule() *plainRule {
	r := g.newRule()
	if n := len(g.free); n > 0 {
		r.idx = g.free[n-1]
		g.free = g.free[:n-1]
		g.rules[r.idx] = r
	} else {
		r.idx = int32(len(g.rules))
		g.rules = append(g.rules, r)
	}
	return r
}

// EventCount returns the number of appended terminals.
func (g *PlainGrammar) EventCount() int64 { return g.count }

// RuleCount returns the number of live rules including the root.
func (g *PlainGrammar) RuleCount() int {
	n := 0
	for _, r := range g.rules {
		if r != nil {
			n++
		}
	}
	return n
}

// NodeCount returns the total number of body symbols across rules — the
// grammar's memory footprint measure used in the ablation.
func (g *PlainGrammar) NodeCount() int {
	n := 0
	for _, r := range g.rules {
		if r == nil {
			continue
		}
		for p := r.guard.next; !p.guard; p = p.next {
			n++
		}
	}
	return n
}

// Append adds one terminal event to the trace.
func (g *PlainGrammar) Append(eventID int32) {
	g.count++
	root := g.rules[0]
	n := &plainNode{sym: Terminal(eventID), rule: root}
	g.insertAfter(root.guard.prev, n)
	if prev := n.prev; !prev.guard {
		g.check(prev)
	}
}

func (g *PlainGrammar) insertAfter(pos, n *plainNode) {
	n.rule = pos.rule
	n.prev = pos
	n.next = pos.next
	pos.next.prev = n
	pos.next = n
	g.noteRef(n, +1)
}

func (g *PlainGrammar) remove(n *plainNode) {
	g.noteRef(n, -1)
	n.prev.next = n.next
	n.next.prev = n.prev
	n.rule = nil
}

func (g *PlainGrammar) noteRef(n *plainNode, d int) {
	if n.sym.IsTerminal() {
		return
	}
	r := g.rules[n.sym.RuleIndex()]
	r.uses += d
	if d > 0 {
		r.user = n
	}
}

func (g *PlainGrammar) unindex(left *plainNode) {
	if left == nil || left.guard || left.rule == nil {
		return
	}
	right := left.next
	if right == nil || right.guard {
		return
	}
	d := digram{left.sym, right.sym}
	if g.index[d] == left {
		delete(g.index, d)
	}
}

// check enforces digram uniqueness for (left, left.next).
func (g *PlainGrammar) check(left *plainNode) {
	if left == nil || left.guard || left.rule == nil {
		return
	}
	right := left.next
	if right == nil || right.guard {
		return
	}
	d := digram{left.sym, right.sym}
	m, ok := g.index[d]
	if !ok || m.rule == nil || m.next == nil || m.next.guard ||
		m.sym != d.a || m.next.sym != d.b {
		g.index[d] = left
		return
	}
	if m == left {
		return
	}
	// Overlap (e.g. "aaa"): the matching occurrences share a node; skip.
	if m.next == left || left.next == m {
		return
	}
	g.match(left, m)
}

func (g *PlainGrammar) match(l, m *plainNode) {
	var r *plainRule
	mr := m.rule
	if mr.idx != 0 && m.prev.guard && m.next.next.guard {
		// The existing occurrence is an entire rule body: reuse the rule.
		r = mr
		g.substitute(l, r)
	} else {
		r = g.allocRule()
		a := &plainNode{sym: l.sym}
		b := &plainNode{sym: l.next.sym}
		g.insertAfter(r.guard, a)
		g.insertAfter(a, b)
		g.index[digram{a.sym, b.sym}] = a
		g.substitute(m, r)
		g.substitute(l, r)
	}
	// Rule utility: inline rules that dropped to a single use.
	if !r.guard.next.guard {
		for p := r.guard.next; !p.guard; p = p.next {
			if !p.sym.IsTerminal() {
				if rr := g.rules[p.sym.RuleIndex()]; rr.uses == 1 {
					g.inline(rr)
				}
			}
		}
	}
}

// substitute replaces the digram starting at x with one reference to rule r.
func (g *PlainGrammar) substitute(x *plainNode, r *plainRule) {
	y := x.next
	p := x.prev
	g.unindex(p)
	g.unindex(x)
	g.unindex(y)
	g.remove(x)
	g.remove(y)
	n := &plainNode{sym: nonTerminal(r.idx)}
	g.insertAfter(p, n)
	g.check(n)
	if !n.prev.guard {
		g.check(n.prev)
	}
}

// inline expands the single use of rule r.
func (g *PlainGrammar) inline(r *plainRule) {
	u := r.user
	if u == nil || u.rule == nil || u.sym != nonTerminal(r.idx) || r.uses != 1 {
		return
	}
	t := u.rule
	p := u.prev
	q := u.next
	g.unindex(p)
	g.unindex(u)
	g.remove(u)
	first := r.guard.next
	last := r.guard.prev
	if first.guard {
		return
	}
	for bn := first; ; bn = bn.next {
		bn.rule = t
		if bn == last {
			break
		}
	}
	p.next = first
	first.prev = p
	last.next = q
	q.prev = last
	g.rules[r.idx] = nil
	g.free = append(g.free, r.idx)
	if !p.guard {
		g.check(p)
	}
	if !q.guard && !q.prev.guard && q.prev.rule != nil {
		g.check(q.prev)
	}
}

// Unfold reconstructs the appended sequence.
func (g *PlainGrammar) Unfold() []int32 {
	out := make([]int32, 0, g.count)
	var expand func(r *plainRule)
	expand = func(r *plainRule) {
		for p := r.guard.next; !p.guard; p = p.next {
			if p.sym.IsTerminal() {
				out = append(out, p.sym.Event())
			} else {
				expand(g.rules[p.sym.RuleIndex()])
			}
		}
	}
	expand(g.rules[0])
	return out
}
