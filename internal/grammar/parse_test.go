package grammar

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestParseDumpRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		g := New()
		n := 50 + rng.Intn(500)
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 && i > 0 {
				g.Append(int32(rng.Intn(3)))
			} else {
				g.Append(int32(rng.Intn(6)))
			}
		}
		f := g.Freeze()
		parsed, err := ParseDump(f.Dump(nil))
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, f.Dump(nil))
		}
		if !reflect.DeepEqual(parsed.Unfold(), f.Unfold()) {
			t.Fatalf("trial %d: round trip changed the unfolding", trial)
		}
		if parsed.Dump(nil) != f.Dump(nil) {
			t.Fatalf("trial %d: dumps differ:\n%s\n---\n%s", trial, parsed.Dump(nil), f.Dump(nil))
		}
	}
}

func TestParseDumpHandAuthored(t *testing.T) {
	f, err := ParseDump(`
		R0 -> t0^6 R1 t1 R2^200 t5 t5 R1 t6 t1
		R1 -> t3 t3 t2 t2 t4
		R2 -> R1 t2 t3
	`)
	if err != nil {
		t.Fatal(err)
	}
	// R1 unfolds to 5 terminals, R2 to 7; the root is
	// 6 + 5 + 1 + 200*7 + 2 + 5 + 1 + 1 = 1421 terminals.
	if f.EventCount != 1421 {
		t.Fatalf("EventCount = %d, want 1421", f.EventCount)
	}
	if f.Rules[1].Occ != 1+1+200 {
		t.Fatalf("R1 occ = %d, want 202", f.Rules[1].Occ)
	}
}

func TestParseDumpErrors(t *testing.T) {
	cases := map[string]string{
		"missing arrow": "R0 t1 t2",
		"bad rule name": "X0 -> t1 t2",
		"bad exponent":  "R0 -> t1^0 t2",
		"bad symbol":    "R0 -> q1 t2",
		"dangling ref":  "R0 -> t1 R4",
		"duplicate":     "R0 -> t1 t2\nR0 -> t3 t4",
		"empty":         "   \n  ",
		"cycle":         "R0 -> R1 t0\nR1 -> R0 t1",
	}
	for name, text := range cases {
		if _, err := ParseDump(text); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestParseDumpNamedTerminalsRejected(t *testing.T) {
	// Dumps rendered with a NameFunc are not parseable; the parser must say
	// so rather than misinterpret.
	if _, err := ParseDump("R0 -> Bcast Barrier"); err == nil {
		t.Fatal("named dump accepted")
	}
}

func FuzzParseDump(f *testing.F) {
	f.Add("R0 -> t0^6 R1 t1\nR1 -> t3 t4")
	f.Add("R0 -> t0")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		fz, err := ParseDump(text)
		if err != nil {
			return
		}
		// Accepted grammars must round-trip and validate.
		if verr := fz.Validate(); verr != nil {
			t.Fatalf("ParseDump accepted invalid grammar: %v", verr)
		}
		again, err := ParseDump(fz.Dump(nil))
		if err != nil {
			t.Fatalf("re-parse of dump failed: %v", err)
		}
		if again.EventCount != fz.EventCount {
			t.Fatalf("round trip changed event count: %d vs %d", again.EventCount, fz.EventCount)
		}
	})
}
