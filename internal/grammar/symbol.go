// Package grammar implements the on-the-fly trace-compression engine at the
// heart of Pythia (Colin, Trahay, Conan — CLUSTER 2022, section II-A).
//
// A stream of terminal symbols (events raised by a runtime system) is reduced
// incrementally into a context-free grammar whose single derivation is the
// stream itself. The algorithm is a run-length variant of Sequitur
// (Nevill-Manning & Witten) in the style of Cyclitur: every position in a
// rule body is a run — a symbol together with a number of consecutive
// repetitions — and the engine maintains three invariants at every step:
//
//  1. rule utility: every non-terminal is used at least twice (counting
//     run exponents), otherwise it is inlined and deleted;
//  2. digram uniqueness: every ordered pair of adjacent distinct symbols
//     appears at most once in the whole grammar;
//  3. run merging: a symbol never appears twice in a row — consecutive
//     repetitions are folded into the run exponent.
//
// The resulting grammar is the data structure Pythia stores at the end of a
// reference execution and reloads to predict future executions.
package grammar

import "fmt"

// Sym identifies a grammar symbol. Non-negative values are terminals (the
// value is the event identifier interned by the caller); negative values are
// non-terminals referring to a rule of the grammar.
type Sym int32

// Terminal returns the terminal symbol for event id. The id must be
// non-negative.
func Terminal(id int32) Sym {
	if id < 0 {
		panic(fmt.Sprintf("pythia: internal: grammar: terminal id must be non-negative, got %d", id))
	}
	return Sym(id)
}

// nonTerminal returns the symbol referring to rule index idx (idx >= 0).
func nonTerminal(idx int32) Sym { return Sym(-1 - idx) }

// IsTerminal reports whether s is a terminal symbol.
func (s Sym) IsTerminal() bool { return s >= 0 }

// Event returns the event id of a terminal symbol.
// It panics if s is a non-terminal.
func (s Sym) Event() int32 {
	if s < 0 {
		panic("pythia: internal: grammar: Event called on non-terminal symbol")
	}
	return int32(s)
}

// RuleIndex returns the rule index of a non-terminal symbol.
// It panics if s is a terminal.
func (s Sym) RuleIndex() int32 {
	if s >= 0 {
		panic("pythia: internal: grammar: RuleIndex called on terminal symbol")
	}
	return -1 - int32(s)
}

// String renders the symbol using the paper's convention: terminals in
// lower-case style ("t<id>"), non-terminals in upper-case style ("R<idx>").
func (s Sym) String() string {
	if s.IsTerminal() {
		return fmt.Sprintf("t%d", s.Event())
	}
	return fmt.Sprintf("R%d", s.RuleIndex())
}

// digram is an ordered pair of adjacent distinct symbols, the unit of the
// uniqueness invariant.
type digram struct{ a, b Sym }
