package grammar

import (
	"math/rand"
	"testing"
)

// refNode returns distinct node pointers for table tests.
func refNodes(n int) []*node {
	out := make([]*node, n)
	for i := range out {
		out[i] = &node{sym: Terminal(int32(i))}
	}
	return out
}

// TestDigramPackRoundTrip checks that packing preserves digram identity for
// terminals and non-terminals, including the full negative range of rule
// symbols.
func TestDigramPackRoundTrip(t *testing.T) {
	syms := []Sym{Terminal(0), Terminal(1), Terminal(1 << 20), nonTerminal(1), nonTerminal(7), nonTerminal(1 << 20)}
	seen := map[uint64]digram{}
	for _, a := range syms {
		for _, b := range syms {
			d := digram{a, b}
			k := d.pack()
			if k == emptyKey {
				t.Fatalf("digram (%v,%v) packs to the empty sentinel", a, b)
			}
			if got := unpackDigram(k); got != d {
				t.Fatalf("unpack(pack(%v,%v)) = (%v,%v)", a, b, got.a, got.b)
			}
			if prev, dup := seen[k]; dup && prev != d {
				t.Fatalf("digrams (%v,%v) and (%v,%v) collide on key %x", prev.a, prev.b, a, b, k)
			}
			seen[k] = d
		}
	}
}

// TestDigramTableAgainstMap drives a digramTable and a plain map through the
// same randomized put/del/get mix and requires identical observable contents
// at every step.
func TestDigramTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nodes := refNodes(64)
	var tab digramTable
	ref := map[uint64]*node{}
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = digram{Terminal(int32(i % 32)), nonTerminal(int32(1 + i/32))}.pack()
	}
	for step := 0; step < 20000; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0:
			v := nodes[rng.Intn(len(nodes))]
			tab.put(k, v)
			ref[k] = v
		case 1:
			tab.del(k)
			delete(ref, k)
		case 2:
			if got, want := tab.get(k), ref[k]; got != want {
				t.Fatalf("step %d: get(%x) = %p, want %p", step, k, got, want)
			}
		}
		if tab.count != len(ref) {
			t.Fatalf("step %d: count %d, want %d", step, tab.count, len(ref))
		}
	}
	// Full sweep comparison at the end.
	got := map[uint64]*node{}
	tab.forEach(func(d digram, n *node) { got[d.pack()] = n })
	if len(got) != len(ref) {
		t.Fatalf("forEach visited %d entries, want %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("forEach missing or wrong entry for %x", k)
		}
	}
}

// TestDigramTableBackwardShift exercises deletion inside a probe cluster: all
// keys share a home slot (same hash modulo a small table), so deleting the
// first must backward-shift the rest and keep them reachable.
func TestDigramTableBackwardShift(t *testing.T) {
	var tab digramTable
	nodes := refNodes(16)
	// Insert enough keys to form clusters in the initial 32-slot table.
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = digram{Terminal(int32(i)), Terminal(int32(i + 1))}.pack()
		tab.put(keys[i], nodes[i])
	}
	for i, k := range keys {
		tab.del(k)
		if tab.get(k) != nil {
			t.Fatalf("key %d still reachable after delete", i)
		}
		for j := i + 1; j < len(keys); j++ {
			if tab.get(keys[j]) != nodes[j] {
				t.Fatalf("key %d lost after deleting key %d", j, i)
			}
		}
	}
	if tab.count != 0 {
		t.Fatalf("count %d after deleting everything", tab.count)
	}
}

// TestNewIndexedKinds checks both index kinds build the same grammar for the
// same input.
func TestNewIndexedKinds(t *testing.T) {
	seq := []int32{0, 1, 2, 1, 2, 3, 0, 1, 2, 1, 2, 3, 0, 1, 2}
	a := NewIndexed(IndexOpenAddress)
	b := NewIndexed(IndexGoMap)
	for _, e := range seq {
		a.Append(e)
		b.Append(e)
	}
	if err := a.CheckInvariantsStrict(); err != nil {
		t.Fatalf("open-address grammar: %v", err)
	}
	if err := b.CheckInvariantsStrict(); err != nil {
		t.Fatalf("map grammar: %v", err)
	}
	if da, db := a.Dump(nil), b.Dump(nil); da != db {
		t.Fatalf("index kinds diverged:\nopen-address:\n%s\nmap:\n%s", da, db)
	}
}

// FuzzDigramIndexDiff builds two grammars from the same byte-derived event
// stream — one on the open-addressed digram table, one on the map reference —
// and requires byte-identical structure plus strict invariants on both. Any
// behavioural difference between the index implementations (lost entries,
// wrong occupant after robin-hood displacement or backward-shift deletion)
// surfaces as a structural divergence.
func FuzzDigramIndexDiff(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1, 0, 1})
	f.Add([]byte{0x80, 0x81, 0x80, 0x81})
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3})
	f.Add([]byte{0, 1, 2, 0, 1, 2, 4, 0, 1, 2, 0, 1, 2, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		events := decodeFuzzEvents(data)
		open := NewIndexed(IndexOpenAddress)
		gomap := NewIndexed(IndexGoMap)
		for i, id := range events {
			open.Append(id)
			gomap.Append(id)
			if (i+1)%fuzzCheckEvery == 0 {
				if do, dm := open.Dump(nil), gomap.Dump(nil); do != dm {
					t.Fatalf("after %d/%d events, grammars diverged:\nopen-address:\n%s\nmap:\n%s",
						i+1, len(events), do, dm)
				}
			}
		}
		if err := open.CheckInvariantsStrict(); err != nil {
			t.Fatalf("open-address grammar after %d events: %v", len(events), err)
		}
		if err := gomap.CheckInvariantsStrict(); err != nil {
			t.Fatalf("map grammar after %d events: %v", len(events), err)
		}
		if do, dm := open.Dump(nil), gomap.Dump(nil); do != dm {
			t.Fatalf("grammars diverged after %d events:\nopen-address:\n%s\nmap:\n%s",
				len(events), do, dm)
		}
	})
}
