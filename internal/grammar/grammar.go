package grammar

import "fmt"

// Grammar is an incrementally-built context-free grammar that derives exactly
// one sequence: the stream of terminal symbols appended so far. It is the
// structure PYTHIA-RECORD maintains per thread (paper section II-A).
//
// A Grammar is not safe for concurrent use; Pythia keeps one per thread.
type Grammar struct {
	rules []*rule // rules[0] is the root; entries may be nil after deletion
	free  []int32 // recycled rule indexes

	// The digram index has two interchangeable implementations: the
	// open-addressed digramTable (default, see digramtable.go) and the
	// original Go map kept as the IndexGoMap ablation reference. mapIndex
	// is nil unless the grammar was built with NewIndexed(IndexGoMap).
	tab      digramTable
	mapIndex map[digram]*node

	// pending holds rule indexes whose usage count may have dropped to one;
	// they are inlined (rule-utility invariant) once the current structural
	// edit completes.
	pending []int32

	// nodePool recycles unlinked nodes: appends are the hot path of
	// PYTHIA-RECORD, and reduction churns nodes constantly. A recycled node
	// is indistinguishable from a fresh one; stale digram-index entries are
	// re-validated on use.
	nodePool []*node

	// rulePool recycles deleted rules (guard node and users map included):
	// periodic traces constantly create rules in match that drainPending
	// inlines moments later, making rule churn the dominant allocation of
	// record mode.
	rulePool []*rule

	eventCount int64 // number of terminals appended so far
	liveRules  int   // non-nil entries of rules, maintained by alloc/free
	liveNodes  int   // linked body nodes (guards excluded), maintained by newNode/recycle
}

// IndexKind selects the digram-index implementation.
type IndexKind int

const (
	// IndexOpenAddress is the default open-addressed robin-hood table.
	IndexOpenAddress IndexKind = iota
	// IndexGoMap is the original map[digram]*node, kept for ablation and
	// differential testing against the open-addressed table.
	IndexGoMap
)

// New returns an empty grammar ready to accept events, using the default
// open-addressed digram index.
func New() *Grammar { return NewIndexed(IndexOpenAddress) }

// NewIndexed returns an empty grammar using the given digram-index
// implementation. Both kinds are observationally identical (the fuzz target
// FuzzDigramIndexDiff pins this down); IndexGoMap exists only as the
// reference for ablation.
func NewIndexed(kind IndexKind) *Grammar {
	g := &Grammar{}
	if kind == IndexGoMap {
		g.mapIndex = make(map[digram]*node)
	}
	g.rules = append(g.rules, newRule(0))
	g.liveRules = 1
	return g
}

// --- digram-index accessors -------------------------------------------------

// ixGet returns the indexed occurrence of d, or nil.
// pythia:hotpath — one lookup per append.
func (g *Grammar) ixGet(d digram) *node {
	if g.mapIndex != nil {
		return g.mapIndex[d]
	}
	return g.tab.get(d.pack())
}

// ixPut makes n the indexed occurrence of d.
// pythia:hotpath — index maintenance on every structural edit.
func (g *Grammar) ixPut(d digram, n *node) {
	if g.mapIndex != nil {
		g.mapIndex[d] = n
		return
	}
	g.tab.put(d.pack(), n)
}

// ixDel removes the index entry for d.
// pythia:hotpath — index maintenance on every structural edit.
func (g *Grammar) ixDel(d digram) {
	if g.mapIndex != nil {
		delete(g.mapIndex, d)
		return
	}
	g.tab.del(d.pack())
}

// ixForEach visits every index entry (order unspecified; not the hot path).
func (g *Grammar) ixForEach(fn func(digram, *node)) {
	if g.mapIndex != nil {
		for d, n := range g.mapIndex {
			fn(d, n)
		}
		return
	}
	g.tab.forEach(fn)
}

// root returns the root rule (always rules[0]).
func (g *Grammar) root() *rule { return g.rules[0] }

// ruleOf returns the rule referred to by non-terminal symbol s.
func (g *Grammar) ruleOf(s Sym) *rule { return g.rules[s.RuleIndex()] }

// EventCount returns the number of terminal symbols appended so far, i.e.
// the unfolded length of the root rule.
func (g *Grammar) EventCount() int64 { return g.eventCount }

// RuleCount returns the number of live rules, including the root. O(1):
// record-mode budget checks read it on every append.
// pythia:hotpath — one budget comparison per recorded event.
func (g *Grammar) RuleCount() int { return g.liveRules }

// NodeCount returns the number of live body nodes across all rules (guard
// nodes excluded) — with RuleCount, the grammar's memory footprint measure
// that record-mode budgets cap. O(1).
// pythia:hotpath — one budget comparison per recorded event.
func (g *Grammar) NodeCount() int { return g.liveNodes }

// Append records one occurrence of the terminal event id at the end of the
// trace, restoring all grammar invariants before returning.
// pythia:hotpath — one call per recorded event.
func (g *Grammar) Append(eventID int32) { g.AppendRun(eventID, 1) }

// AppendRun records count consecutive occurrences of the terminal event id.
// pythia:hotpath — one call per recorded event (or run of events).
func (g *Grammar) AppendRun(eventID int32, count uint32) {
	if count == 0 {
		return
	}
	g.eventCount += int64(count)
	g.appendSym(Terminal(eventID), count)
	g.drainPending()
}

// appendSym appends the run s^c to the root body, enforcing run merging and
// digram uniqueness.
// pythia:hotpath — the append fast path; run-merge hits stay allocation-free.
func (g *Grammar) appendSym(s Sym, c uint32) {
	root := g.root()
	last := root.last()
	if last != nil && last.sym == s {
		last.count += c
		g.noteCountDelta(last, int64(c))
		return
	}
	n := g.newNode(s, c)
	root.insertAfter(root.guard.prev, n)
	g.noteNewNode(n)
	if last != nil {
		g.check(last)
	}
}

// newNode allocates or recycles a body node.
// pythia:hotpath — node churn is pooled, not allocated per event.
func (g *Grammar) newNode(s Sym, c uint32) *node {
	g.liveNodes++
	if n := len(g.nodePool); n > 0 {
		nd := g.nodePool[n-1]
		g.nodePool = g.nodePool[:n-1]
		nd.sym, nd.count = s, c
		return nd
	}
	return &node{sym: s, count: c}
}

// recycle returns an unlinked node to the pool.
// pythia:hotpath — the pool append is capacity-bounded.
func (g *Grammar) recycle(n *node) {
	g.liveNodes--
	if len(g.nodePool) < 1024 {
		g.nodePool = append(g.nodePool, n)
	}
}

// --- usage accounting -------------------------------------------------------

// noteNewNode registers a freshly linked node in the usage accounting.
func (g *Grammar) noteNewNode(n *node) {
	if n.sym.IsTerminal() {
		return
	}
	r := g.ruleOf(n.sym)
	r.uses += int64(n.count)
	r.users[n] = struct{}{}
}

// noteCountDelta adjusts usage accounting after n.count changed by delta.
func (g *Grammar) noteCountDelta(n *node, delta int64) {
	if n.sym.IsTerminal() {
		return
	}
	r := g.ruleOf(n.sym)
	r.uses += delta
	if r.uses <= 1 {
		g.maybeDying(r)
	}
}

// noteRemoveNode unregisters a node that is about to be unlinked.
func (g *Grammar) noteRemoveNode(n *node) {
	if n.sym.IsTerminal() {
		return
	}
	r := g.ruleOf(n.sym)
	r.uses -= int64(n.count)
	delete(r.users, n)
	if r.uses <= 1 {
		g.maybeDying(r)
	}
}

// maybeDying schedules a rule for the utility check in drainPending.
func (g *Grammar) maybeDying(r *rule) {
	if r.idx == 0 {
		return
	}
	g.pending = append(g.pending, r.idx)
}

// --- digram index -----------------------------------------------------------

// unindex removes the index entry for the digram starting at left, if the
// entry points at left.
// pythia:hotpath — digram-index maintenance on every structural edit.
func (g *Grammar) unindex(left *node) {
	if left == nil || left.guard || !left.alive() {
		return
	}
	right := left.next
	if right == nil || right.guard {
		return
	}
	d := digram{left.sym, right.sym}
	if g.ixGet(d) == left {
		g.ixDel(d)
	}
}

// check enforces the digram-uniqueness invariant for the pair starting at
// left. It either claims the index slot or triggers a match with the
// existing occurrence.
// pythia:hotpath — digram-uniqueness enforcement on every append.
func (g *Grammar) check(left *node) {
	if left == nil || left.guard || !left.alive() {
		return
	}
	right := left.next
	if right == nil || right.guard {
		return
	}
	if left.sym == right.sym {
		// Defensive: adjacent equal runs are merged on sight.
		g.mergeInto(left, right)
		g.check(left)
		return
	}
	d := digram{left.sym, right.sym}
	m := g.ixGet(d)
	if m != nil && m != left && m.alive() && m.sym == left.sym &&
		m.next != nil && !m.next.guard && m.next.sym == right.sym {
		g.match(left, m)
		return
	}
	if m != left {
		g.ixPut(d, left)
	}
}

// mergeInto folds the run right into the adjacent run left (equal symbols),
// fixing the index entry for the pair that started at right.
func (g *Grammar) mergeInto(left, right *node) {
	if nn := right.next; nn != nil && !nn.guard {
		key := digram{right.sym, nn.sym}
		if g.ixGet(key) == right {
			g.ixPut(key, left)
		}
	}
	c := right.count
	g.noteRemoveNode(right)
	right.unlink()
	g.recycle(right)
	left.count += c
	g.noteCountDelta(left, int64(c))
}

// --- digram matching --------------------------------------------------------

// match handles a duplicated digram: the pair starting at l duplicates the
// indexed pair starting at m. Following the paper's algorithm, either an
// existing rule whose body is exactly the shared pair is reused, or a new
// rule is created and both occurrences are rewritten to use it.
func (g *Grammar) match(l, m *node) {
	r := l.next
	m2 := m.next
	a := minU32(l.count, m.count)
	b := minU32(r.count, m2.count)

	mr := m.rule
	lr := l.rule
	var R *rule
	if mr.idx != 0 && m.prev.guard && m2.next.guard && m.count == a && m2.count == b {
		// The existing occurrence is the entire body of mr: reuse it.
		R = mr
	} else if lr.idx != 0 && l.prev.guard && r.next.guard && l.count == a && r.count == b {
		// The new occurrence is the entire body of lr: reuse it the other
		// way around — rewrite the indexed occurrence to reference lr and
		// make lr's body the canonical location of the digram.
		R = lr
		g.ixPut(digram{l.sym, r.sym}, l)
		g.substitute(m, m2, a, b, R)
		g.maybeDying(R)
		return
	} else {
		R = g.allocRule()
		n1 := g.newNode(l.sym, a)
		R.insertAfter(R.guard, n1)
		g.noteNewNode(n1)
		n2 := g.newNode(r.sym, b)
		R.insertAfter(n1, n2)
		g.noteNewNode(n2)
		// The canonical location of this digram is now inside R.
		g.ixPut(digram{l.sym, r.sym}, n1)
		g.substitute(m, m2, a, b, R)
	}
	// The first substitution may have cascaded into the region around l;
	// re-validate before rewriting the second occurrence.
	if !l.alive() || !r.alive() || l.next != r || l.count < a || r.count < b {
		g.maybeDying(R)
		if l.alive() {
			g.check(l)
		}
		return
	}
	g.substitute(l, r, a, b, R)
	g.maybeDying(R)
}

// substitute replaces the sub-run x^a y^b (x and y adjacent, a <= x.count,
// b <= y.count) by one occurrence of rule R, leaving run remainders in
// place: x^n y^m becomes x^(n-a) R y^(m-b).
func (g *Grammar) substitute(x, y *node, a, b uint32, R *rule) {
	T := x.rule
	p := x.prev
	xGone := x.count == a
	yGone := y.count == b

	// Retire index entries that stop being valid.
	g.unindex(x) // (x, y)
	if xGone {
		g.unindex(p) // (p, x)
	}
	if yGone {
		g.unindex(y) // (y, q)
	}

	if xGone {
		g.noteRemoveNode(x)
		x.unlink()
		g.recycle(x)
	} else {
		x.count -= a
		g.noteCountDelta(x, -int64(a))
	}
	if yGone {
		g.noteRemoveNode(y)
		y.unlink()
		g.recycle(y)
	} else {
		y.count -= b
		g.noteCountDelta(y, -int64(b))
	}

	anchor := p
	if !xGone {
		anchor = x
	}
	var rnode *node
	if !anchor.guard && anchor.sym == R.sym() {
		anchor.count++
		g.noteCountDelta(anchor, 1)
		rnode = anchor
	} else {
		rnode = g.newNode(R.sym(), 1)
		T.insertAfter(anchor, rnode)
		g.noteNewNode(rnode)
	}
	if nxt := rnode.next; !nxt.guard && nxt.sym == rnode.sym {
		g.mergeInto(rnode, nxt)
	}

	g.check(rnode.prev)
	g.check(rnode)
}

// --- rule utility -----------------------------------------------------------

// drainPending inlines rules whose total usage dropped to one (or collects
// rules that became entirely unused), restoring the rule-utility invariant.
func (g *Grammar) drainPending() {
	for len(g.pending) > 0 {
		idx := g.pending[len(g.pending)-1]
		g.pending = g.pending[:len(g.pending)-1]
		r := g.rules[idx]
		if r == nil || idx == 0 || r.uses > 1 {
			continue
		}
		if r.uses <= 0 {
			g.deleteUnused(r)
			continue
		}
		g.inline(r)
	}
}

// inline expands the single remaining use of rule r in place and deletes r.
func (g *Grammar) inline(r *rule) {
	var u *node
	for n := range r.users {
		u = n
		break
	}
	if u == nil || !u.alive() {
		return
	}
	if u.count != 1 {
		panic(fmt.Sprintf("pythia: internal: grammar: inline of R%d with run count %d", r.idx, u.count))
	}
	T := u.rule
	p := u.prev
	q := u.next
	first := r.first()
	last := r.last()
	if first == nil {
		panic(fmt.Sprintf("pythia: internal: grammar: inline of empty rule R%d", r.idx))
	}

	g.unindex(p) // (p, u)
	g.unindex(u) // (u, q)
	g.noteRemoveNode(u)
	u.unlink()
	g.recycle(u)

	// Splice the rule body between p and q. Digram index entries that point
	// at interior body nodes remain valid: the nodes move wholesale.
	for bn := first; ; bn = bn.next {
		bn.rule = T
		if bn == last {
			break
		}
	}
	p.next = first
	first.prev = p
	last.next = q
	q.prev = last
	g.freeRule(r)

	// Boundary merges, then boundary digram checks.
	if !p.guard && p.sym == first.sym {
		g.mergeInto(p, first)
	}
	lastNew := q.prev
	if !q.guard && !lastNew.guard && lastNew.sym == q.sym {
		g.mergeInto(lastNew, q)
	}
	g.check(p)
	if qp := q.prev; qp != nil && q.alive() {
		g.check(qp)
	} else if !q.alive() {
		// q was merged away; the surviving node is lastNew.
		g.check(lastNew)
	}
}

// deleteUnused removes a rule that lost all its references, releasing the
// references its own body holds.
func (g *Grammar) deleteUnused(r *rule) {
	for bn := r.first(); bn != nil && !bn.guard; {
		next := bn.next
		g.unindex(bn)
		g.noteRemoveNode(bn)
		bn.unlink()
		g.recycle(bn)
		bn = next
	}
	g.freeRule(r)
}

// --- rule allocation --------------------------------------------------------

// allocRule returns a fresh or recycled empty rule under a fresh index.
// pythia:hotpath — rule churn is pooled, not allocated per reduction.
func (g *Grammar) allocRule() *rule {
	var idx int32
	if n := len(g.free); n > 0 {
		idx = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		idx = int32(len(g.rules))
		g.rules = append(g.rules, nil)
	}
	var r *rule
	if n := len(g.rulePool); n > 0 {
		r = g.rulePool[n-1]
		g.rulePool = g.rulePool[:n-1]
		r.idx = idx
	} else {
		r = newRule(idx)
	}
	g.rules[idx] = r
	g.liveRules++
	return r
}

// freeRule retires a deleted rule, returning it to the pool. The caller has
// already emptied the body (or spliced it elsewhere) and released all
// references, so only the bookkeeping needs resetting.
// pythia:hotpath — the pool append is capacity-bounded.
func (g *Grammar) freeRule(r *rule) {
	g.rules[r.idx] = nil
	g.liveRules--
	g.free = append(g.free, r.idx)
	if len(g.rulePool) >= 256 {
		r.users = nil
		return
	}
	r.uses = 0
	clear(r.users)
	r.guard.prev, r.guard.next = r.guard, r.guard
	g.rulePool = append(g.rulePool, r)
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
