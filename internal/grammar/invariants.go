package grammar

import "fmt"

// CheckInvariants verifies the structural invariants of the grammar and
// returns the first violation found, or nil. It is O(size of grammar) and is
// meant for tests and debugging, not for the hot path.
//
// Checked invariants:
//  1. rule utility — every non-root rule is referenced at least twice
//     (counting run exponents), and the recorded usage counters match a
//     recount from scratch;
//  2. digram uniqueness — every ordered pair of adjacent symbols appears at
//     most once across all rule bodies, and the digram index maps each pair
//     to its single occurrence;
//  3. run merging — no two adjacent runs carry the same symbol, and every
//     run has a positive count;
//  4. structure — rule bodies are consistently linked, non-root bodies have
//     at least two runs, all referenced rules exist, and the grammar is
//     acyclic.
func (g *Grammar) CheckInvariants() error { return g.checkInvariants(false) }

// CheckInvariantsStrict runs CheckInvariants plus the strict digram-index
// sweep: every entry of the index must point at a live node that still forms
// exactly the digram it is keyed under. The engine tolerates stale entries
// (check() revalidates before trusting a hit, see grammar.go), so a stale
// entry is latent garbage rather than a correctness bug — but it is retained
// memory and a sign that an edit path forgot to unindex. Tests and the fuzz
// target use the strict form; CheckInvariants keeps the tolerant behaviour
// for debugging half-edited grammars.
func (g *Grammar) CheckInvariantsStrict() error { return g.checkInvariants(true) }

func (g *Grammar) checkInvariants(strict bool) error {
	if len(g.rules) == 0 || g.rules[0] == nil {
		return fmt.Errorf("grammar: missing root rule")
	}

	uses := make(map[int32]int64)
	seen := make(map[digram]*node)

	for idx, r := range g.rules {
		if r == nil {
			continue
		}
		if int(r.idx) != idx {
			return fmt.Errorf("grammar: rule at slot %d has idx %d", idx, r.idx)
		}
		bodyLen := 0
		for n := r.first(); n != nil && !n.guard; n = n.next {
			bodyLen++
			if n.rule != r {
				return fmt.Errorf("grammar: node in R%d has rule pointer to %v", r.idx, n.rule)
			}
			if n.count == 0 {
				return fmt.Errorf("grammar: zero-count run %v in R%d", n.sym, r.idx)
			}
			if n.next.prev != n || n.prev.next != n {
				return fmt.Errorf("grammar: broken links around %v in R%d", n.sym, r.idx)
			}
			if !n.sym.IsTerminal() {
				ref := n.sym.RuleIndex()
				if int(ref) >= len(g.rules) || g.rules[ref] == nil {
					return fmt.Errorf("grammar: R%d references deleted rule R%d", r.idx, ref)
				}
				uses[ref] += int64(n.count)
				if _, ok := g.rules[ref].users[n]; !ok {
					return fmt.Errorf("grammar: R%d user set missing node from R%d", ref, r.idx)
				}
			}
			if !n.next.guard {
				if n.sym == n.next.sym {
					return fmt.Errorf("grammar: adjacent equal runs %v in R%d", n.sym, r.idx)
				}
				d := digram{n.sym, n.next.sym}
				if prev, dup := seen[d]; dup {
					return fmt.Errorf("grammar: digram (%v,%v) appears in R%d and R%d",
						d.a, d.b, prev.rule.idx, r.idx)
				}
				seen[d] = n
				got := g.ixGet(d)
				if got == nil {
					return fmt.Errorf("grammar: digram (%v,%v) in R%d missing from index", d.a, d.b, r.idx)
				}
				if got != n {
					return fmt.Errorf("grammar: index for digram (%v,%v) points elsewhere", d.a, d.b)
				}
			}
		}
		if idx != 0 && bodyLen < 2 {
			return fmt.Errorf("grammar: non-root rule R%d has %d runs", r.idx, bodyLen)
		}
	}

	for idx, r := range g.rules {
		if r == nil || idx == 0 {
			continue
		}
		if uses[int32(idx)] != r.uses {
			return fmt.Errorf("grammar: R%d recorded uses %d, recount %d", idx, r.uses, uses[int32(idx)])
		}
		if r.uses < 2 {
			return fmt.Errorf("grammar: rule utility violated for R%d (uses=%d)", idx, r.uses)
		}
		for n := range r.users {
			if !n.alive() || n.sym != r.sym() {
				return fmt.Errorf("grammar: stale user node registered for R%d", idx)
			}
		}
	}

	// Stale index entries (entries whose node is dead or no longer forms the
	// digram) are tolerated by the engine: check() revalidates each hit
	// before trusting it, and live digrams were fully cross-checked above.
	// Strict mode flags them anyway — a stale entry is retained memory and
	// means some edit path forgot to unindex.
	if strict {
		var staleErr error
		g.ixForEach(func(d digram, n *node) {
			if staleErr != nil {
				return
			}
			switch {
			case n == nil || !n.alive():
				staleErr = fmt.Errorf("grammar: stale index entry (%v,%v): node is dead", d.a, d.b)
			case n.sym != d.a:
				staleErr = fmt.Errorf("grammar: stale index entry (%v,%v): node holds %v", d.a, d.b, n.sym)
			case n.next == nil || n.next.guard || n.next.sym != d.b:
				staleErr = fmt.Errorf("grammar: stale index entry (%v,%v): successor no longer %v", d.a, d.b, d.b)
			case seen[d] != n:
				staleErr = fmt.Errorf("grammar: index entry (%v,%v) points at an unreachable duplicate", d.a, d.b)
			}
		})
		if staleErr != nil {
			return staleErr
		}
	}

	if err := g.checkAcyclic(); err != nil {
		return err
	}
	if n := g.ExpandedLength(0); n != g.eventCount {
		return fmt.Errorf("grammar: root expands to %d terminals, recorded %d", n, g.eventCount)
	}

	// The O(1) budget counters must agree with a full recount — record-mode
	// resource budgets rely on them.
	rules, nodes := 0, 0
	for _, r := range g.rules {
		if r == nil {
			continue
		}
		rules++
		nodes += r.bodyLen()
	}
	if rules != g.liveRules {
		return fmt.Errorf("grammar: liveRules counter %d, recount %d", g.liveRules, rules)
	}
	if nodes != g.liveNodes {
		return fmt.Errorf("grammar: liveNodes counter %d, recount %d", g.liveNodes, nodes)
	}
	return nil
}

func (g *Grammar) checkAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int32]int)
	var visit func(idx int32) error
	visit = func(idx int32) error {
		switch color[idx] {
		case grey:
			return fmt.Errorf("grammar: cycle through R%d", idx)
		case black:
			return nil
		}
		color[idx] = grey
		r := g.rules[idx]
		for n := r.first(); n != nil && !n.guard; n = n.next {
			if !n.sym.IsTerminal() {
				if err := visit(n.sym.RuleIndex()); err != nil {
					return err
				}
			}
		}
		color[idx] = black
		return nil
	}
	return visit(0)
}
