package grammar

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestFrozenOccurrenceCounts verifies the derived data prediction relies on:
// for every terminal, the sum over its grammar sites of
// occ(rule) * run-count must equal the brute-force count of that terminal in
// the unfolded trace, and Len/Occ must be internally consistent.
func TestFrozenOccurrenceCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 20 + rng.Intn(600)
		alphabet := int32(2 + rng.Intn(5))
		seq := make([]int32, n)
		g := New()
		for i := range seq {
			if rng.Intn(3) > 0 && i > 0 {
				seq[i] = seq[i-1] // runs
			} else {
				seq[i] = int32(rng.Intn(int(alphabet)))
			}
			g.Append(seq[i])
		}
		f := g.Freeze()

		brute := map[int32]int64{}
		for _, e := range seq {
			brute[e]++
		}
		for id, sites := range f.TermSites {
			var derived int64
			for _, site := range sites {
				derived += f.Rules[site.Rule].Occ * int64(f.RunAt(site).Count)
			}
			if derived != brute[id] {
				t.Fatalf("trial %d terminal %d: derived %d occurrences, brute %d\n%s",
					trial, id, derived, brute[id], f.Dump(nil))
			}
		}
		if f.Rules[0].Len != int64(n) || f.EventCount != int64(n) {
			t.Fatalf("trial %d: root Len %d, EventCount %d, want %d",
				trial, f.Rules[0].Len, f.EventCount, n)
		}
		// Σ occ(rule)*len(rule) over all rules counts each terminal exactly
		// once per nesting level... instead check per-rule consistency:
		// len(rule) == Σ runs count*symlen.
		for ri, r := range f.Rules {
			var l int64
			for _, run := range r.Body {
				l += int64(run.Count) * f.SymLen(run.Sym)
			}
			if l != r.Len {
				t.Fatalf("trial %d: R%d Len %d, recomputed %d", trial, ri, r.Len, l)
			}
		}
	}
}

// TestFreezeDeterministic: freezing the same grammar twice gives identical
// snapshots.
func TestFreezeDeterministic(t *testing.T) {
	g := New()
	for i := 0; i < 500; i++ {
		g.Append(int32(i % 5))
	}
	a, b := g.Freeze(), g.Freeze()
	if !reflect.DeepEqual(a.Rules, b.Rules) {
		t.Fatal("Freeze is not deterministic")
	}
}

// TestFreezeIsolatedFromLiveGrammar: appending after Freeze must not change
// the snapshot.
func TestFreezeIsolatedFromLiveGrammar(t *testing.T) {
	g := New()
	for i := 0; i < 100; i++ {
		g.Append(int32(i % 3))
	}
	f := g.Freeze()
	before := f.Unfold()
	for i := 0; i < 100; i++ {
		g.Append(int32(i % 4))
	}
	after := f.Unfold()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("frozen snapshot changed under live appends")
	}
}

// TestNewFrozenRejectsBadInput covers deserialisation validation.
func TestNewFrozenRejectsBadInput(t *testing.T) {
	// Dangling rule reference.
	if _, err := NewFrozen([][]Run{{{Sym: NonTerminal(5), Count: 1}}}); err == nil {
		t.Fatal("dangling reference accepted")
	}
	// Zero count.
	if _, err := NewFrozen([][]Run{{{Sym: Terminal(0), Count: 0}}}); err == nil {
		t.Fatal("zero count accepted")
	}
	// Self reference.
	if _, err := NewFrozen([][]Run{{{Sym: NonTerminal(0), Count: 1}}}); err == nil {
		t.Fatal("self reference accepted")
	}
	// Cycle through two rules.
	bad := [][]Run{
		{{Sym: NonTerminal(1), Count: 1}},
		{{Sym: NonTerminal(0), Count: 1}},
	}
	// Rule 1 references rule 0 which references rule 1: but rule 0 is the
	// root, so the cycle passes through the root.
	if _, err := NewFrozen(bad); err == nil {
		t.Fatal("cycle accepted")
	}
	// Empty grammar.
	if _, err := NewFrozen(nil); err == nil {
		t.Fatal("no rules accepted")
	}
	// Valid round trip.
	g := New()
	for _, e := range []int32{0, 1, 0, 1, 0, 1} {
		g.Append(e)
	}
	f := g.Freeze()
	bodies := make([][]Run, len(f.Rules))
	for i, r := range f.Rules {
		bodies[i] = r.Body
	}
	f2, err := NewFrozen(bodies)
	if err != nil {
		t.Fatalf("valid grammar rejected: %v", err)
	}
	if !reflect.DeepEqual(f2.Unfold(), f.Unfold()) {
		t.Fatal("NewFrozen changed the unfolding")
	}
	if f2.EventCount != f.EventCount {
		t.Fatalf("EventCount %d, want %d", f2.EventCount, f.EventCount)
	}
}

// TestQuickTermSitesComplete: every terminal of the unfolded trace is
// reachable from TermSites.
func TestQuickTermSitesComplete(t *testing.T) {
	f := func(raw []uint8) bool {
		g := New()
		seen := map[int32]bool{}
		for _, b := range raw {
			e := int32(b % 6)
			g.Append(e)
			seen[e] = true
		}
		fz := g.Freeze()
		if len(fz.TermSites) != len(seen) {
			return false
		}
		for id := range seen {
			if len(fz.TermSites[id]) == 0 {
				return false
			}
		}
		ids := fz.TerminalIDs()
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
