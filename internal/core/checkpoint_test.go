package core

import (
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/predictor"
	"repro/internal/recorder"
	"repro/internal/tracefile"
)

// waitFor polls cond until it holds or the deadline passes — checkpoint
// writes happen on a background goroutine, so tests observe them
// asynchronously.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCheckpointingWritesRecoverableGenerations(t *testing.T) {
	dir := t.TempDir()
	// Timestamps on: the background materialization replays the delta log
	// while the recording threads keep appending to it — the exact sharing
	// the checkpoint snapshot must make safe (run under -race in CI).
	var now int64
	s := NewRecordSession(
		WithRecorderOptions(recorder.WithClock(func() int64 { now += 7; return now })),
		WithCheckpoint(CheckpointPolicy{Dir: dir, EveryEvents: 100}),
	)
	a := s.Registry().Intern("a")
	b := s.Registry().Intern("b")
	for tid := int32(0); tid < 2; tid++ {
		th := s.Thread(tid)
		for i := 0; i < 500; i++ {
			th.Submit(a)
			th.Submit(b)
		}
	}
	waitFor(t, "a checkpoint generation", func() bool {
		sts, err := tracefile.ScanJournal(dir)
		return err == nil && len(sts) > 0
	})

	// The crash: recording simply stops here. Recovery must hand back a
	// usable prefix of both threads.
	got, rep, err := tracefile.Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Used == nil {
		t.Fatal("recovery report has no used generation")
	}
	if len(got.Threads) != 2 {
		t.Fatalf("recovered %d threads, want 2", len(got.Threads))
	}
	for tid, th := range got.Threads {
		if th.Grammar.EventCount == 0 {
			t.Fatalf("thread %d recovered empty", tid)
		}
		if !th.Truncated {
			t.Fatalf("thread %d not marked truncated after recovery", tid)
		}
	}

	// A clean finish still works after checkpointing and returns the full
	// recording, unmarked.
	ts, err := s.FinishRecord()
	if err != nil {
		t.Fatal(err)
	}
	if ts.TotalEvents() != 2000 {
		t.Fatalf("finished with %d events, want 2000", ts.TotalEvents())
	}
	for tid, th := range ts.Threads {
		if th.Truncated {
			t.Fatalf("thread %d of the finished trace marked truncated", tid)
		}
	}
	if ts.Provenance != nil {
		t.Fatalf("finished trace carries provenance %+v", ts.Provenance)
	}
	if got.TotalEvents() > ts.TotalEvents() {
		t.Fatalf("checkpoint covers %d events, more than the %d recorded", got.TotalEvents(), ts.TotalEvents())
	}
}

func TestCheckpointNow(t *testing.T) {
	dir := t.TempDir()
	// Interval-only policy with an hour period: no write happens on its own
	// within the test, so the generation observed must come from
	// CheckpointNow.
	s := NewRecordSession(
		WithRecorderOptions(recorder.WithoutTimestamps()),
		WithCheckpoint(CheckpointPolicy{Dir: dir, Interval: time.Hour}),
	)
	a := s.Registry().Intern("a")
	th := s.Thread(0)
	for i := 0; i < 2*DefaultCheckpointEvents; i++ {
		th.Submit(a)
	}
	if err := s.CheckpointNow(); err != nil {
		t.Fatalf("CheckpointNow: %v", err)
	}
	got, _, err := tracefile.Recover(dir)
	if err != nil {
		t.Fatalf("Recover after CheckpointNow: %v", err)
	}
	if n := got.Threads[0].Grammar.EventCount; n < DefaultCheckpointEvents {
		t.Fatalf("checkpoint covers %d events, want at least one snapshot cadence (%d)", n, DefaultCheckpointEvents)
	}
	// Nothing new since the last flush: CheckpointNow must not burn a
	// generation on identical state.
	before, err := tracefile.ScanJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	after, err := tracefile.ScanJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("idle CheckpointNow wrote a generation: %d -> %d", len(before), len(after))
	}
}

func TestCheckpointNowWithoutCheckpointing(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	if err := s.CheckpointNow(); err == nil {
		t.Fatal("CheckpointNow on a session without checkpointing succeeded")
	}
}

func TestCheckpointJournalOpenFailureDegradesNotFatal(t *testing.T) {
	// A file where the journal directory should be: OpenJournal fails, the
	// session must degrade its health but keep recording.
	dir := t.TempDir()
	blocked := dir + "/blocked"
	if err := os.WriteFile(blocked, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	s := NewRecordSession(
		WithRecorderOptions(recorder.WithoutTimestamps()),
		WithCheckpoint(CheckpointPolicy{Dir: blocked, EveryEvents: 10}),
	)
	h := s.Health()
	if h.State != StateDegraded || h.CheckpointFailures == 0 {
		t.Fatalf("health %+v, want degraded with checkpoint failures", h)
	}
	a := s.Registry().Intern("a")
	th := s.Thread(0)
	for i := 0; i < 100; i++ {
		th.Submit(a)
	}
	ts, err := s.FinishRecord()
	if err != nil {
		t.Fatalf("FinishRecord after checkpoint degradation: %v", err)
	}
	if ts.TotalEvents() != 100 {
		t.Fatalf("recorded %d events, want 100", ts.TotalEvents())
	}
}

func TestCheckpointWriteFailureDegradesNotFatal(t *testing.T) {
	dir := t.TempDir()
	jdir := dir + "/journal"
	s := NewRecordSession(
		WithRecorderOptions(recorder.WithoutTimestamps()),
		WithCheckpoint(CheckpointPolicy{Dir: jdir, EveryEvents: 10}),
	)
	// Yank the journal directory out from under the checkpointer: every
	// generation write now fails (works even when running as root, unlike
	// permission tricks).
	if err := os.RemoveAll(jdir); err != nil {
		t.Fatal(err)
	}
	a := s.Registry().Intern("a")
	th := s.Thread(0)
	for i := 0; i < 1000; i++ {
		th.Submit(a)
	}
	waitFor(t, "checkpoint failure to surface in health", func() bool {
		return s.Health().CheckpointFailures > 0
	})
	h := s.Health()
	if h.State != StateDegraded {
		t.Fatalf("state %v, want degraded", h.State)
	}
	// The recording itself must be unaffected.
	ts, err := s.FinishRecord()
	if err != nil {
		t.Fatalf("FinishRecord after write failures: %v", err)
	}
	if ts.TotalEvents() != 1000 {
		t.Fatalf("recorded %d events, want 1000", ts.TotalEvents())
	}
}

func TestOnlineSessionCheckpoints(t *testing.T) {
	// Record a reference first.
	ref := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	a := ref.Registry().Intern("a")
	b := ref.Registry().Intern("b")
	th := ref.Thread(0)
	for i := 0; i < 300; i++ {
		th.Submit(a)
		th.Submit(b)
	}
	refTS, err := ref.FinishRecord()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	on, err := NewOnlineSession(refTS, predictor.Config{},
		WithRecorderOptions(recorder.WithoutTimestamps()),
		WithCheckpoint(CheckpointPolicy{Dir: dir, EveryEvents: 50}))
	if err != nil {
		t.Fatal(err)
	}
	a2 := on.Registry().Lookup("a")
	b2 := on.Registry().Lookup("b")
	oth := on.Thread(0)
	for i := 0; i < 300; i++ {
		oth.Submit(a2)
		oth.Submit(b2)
	}
	waitFor(t, "an online-session checkpoint generation", func() bool {
		sts, err := tracefile.ScanJournal(dir)
		return err == nil && len(sts) > 0
	})
	if _, _, err := tracefile.Recover(dir); err != nil {
		t.Fatalf("Recover from online session journal: %v", err)
	}
	if _, err := on.FinishRecord(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverErrNoGeneration(t *testing.T) {
	_, _, err := tracefile.Recover(t.TempDir())
	if !errors.Is(err, tracefile.ErrNoRecoverableGeneration) {
		t.Fatalf("err = %v, want ErrNoRecoverableGeneration", err)
	}
}
