// Package core ties Pythia's pieces together into the oracle sessions that
// runtime systems interact with. A Session is either recording (first,
// reference execution) or predicting (subsequent executions); it manages a
// shared event registry and per-thread recorders or predictors, mirroring
// the paper's usage: "a grammar that represents the program execution is
// maintained for each thread".
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/recorder"
)

// Mode selects what a Session does with submitted events.
type Mode int

const (
	// ModeRecord builds grammars from submitted events (PYTHIA-RECORD).
	ModeRecord Mode = iota
	// ModePredict tracks submitted events against a reference trace and
	// answers prediction queries (PYTHIA-PREDICT).
	ModePredict
	// ModeOnline does both at once: predictions come from the reference
	// trace while the current execution is re-recorded (see
	// NewOnlineSession).
	ModeOnline
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeRecord:
		return "record"
	case ModePredict:
		return "predict"
	case ModeOnline:
		return "online"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Session is a process-wide oracle instance. Thread handles are obtained
// with Thread and are individually single-threaded; Session itself is safe
// for concurrent Thread lookups and event interning.
type Session struct {
	mode Mode
	reg  *events.Registry

	// threads is a copy-on-write snapshot: Thread reads it lock-free (one
	// atomic load per dispatch), and mu serializes the rare writers (first
	// use of a tid), which install a fresh copy. Runtimes that dispatch
	// through Session.Thread at every key point would otherwise serialize
	// on a mutex that is almost never protecting a mutation.
	mu      sync.Mutex
	threads atomic.Pointer[map[int32]*Thread]

	// record mode
	recOpts []recorder.Option
	ckptPol CheckpointPolicy
	ckpt    *checkpointer // nil unless checkpointing is enabled

	// predict mode
	ref  *model.TraceSet
	pcfg predictor.Config

	// learn is the guarded model lifecycle of a learning session (see
	// lifecycle.go), nil everywhere else.
	learn *learner

	// health is the fail-open accounting shared by every handle (see
	// health.go).
	health health
}

// recordConfig is the session-level recording configuration assembled from
// RecordOptions.
type recordConfig struct {
	recOpts []recorder.Option
	ckpt    CheckpointPolicy
}

// RecordOption configures a recording (or online) session. Per-thread
// recorder behaviour is configured through WithRecorderOptions; options that
// need session scope — like crash-safe checkpointing, which aggregates every
// thread's state into one journal — have their own constructors.
type RecordOption func(*recordConfig)

// WithRecorderOptions applies recorder options (WithClock, WithMaxEvents,
// WithGrammarBudget, ...) to every thread's recorder.
func WithRecorderOptions(opts ...recorder.Option) RecordOption {
	return func(c *recordConfig) { c.recOpts = append(c.recOpts, opts...) }
}

// WithCheckpoint enables crash-safe journaled checkpoints of the recording
// (see CheckpointPolicy). A policy with an empty Dir is a no-op.
func WithCheckpoint(pol CheckpointPolicy) RecordOption {
	return func(c *recordConfig) { c.ckpt = pol }
}

// NewRecordSession starts a recording session.
func NewRecordSession(opts ...RecordOption) *Session {
	var cfg recordConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &Session{
		mode:    ModeRecord,
		reg:     events.NewRegistry(),
		recOpts: cfg.recOpts,
		ckptPol: cfg.ckpt,
	}
	s.threads.Store(&map[int32]*Thread{})
	if cfg.ckpt.enabled() {
		s.ckpt = newCheckpointer(s, cfg.ckpt)
	}
	return s
}

// NewPredictSession starts a prediction session against a reference trace
// set (typically loaded from a trace file).
func NewPredictSession(ref *model.TraceSet, cfg predictor.Config) (*Session, error) {
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid reference trace: %w", err)
	}
	reg, err := events.FromNames(ref.Events)
	if err != nil {
		return nil, fmt.Errorf("core: invalid event table: %w", err)
	}
	s := &Session{
		mode: ModePredict,
		reg:  reg,
		ref:  ref,
		pcfg: cfg,
	}
	s.threads.Store(&map[int32]*Thread{})
	return s, nil
}

// Mode returns the session mode.
func (s *Session) Mode() Mode { return s.mode }

// Registry returns the shared event registry. Runtimes intern their key
// points here once and submit the resulting IDs.
func (s *Session) Registry() *events.Registry { return s.reg }

// Thread returns the handle for thread tid, creating it on first use. In
// predict mode a thread with no reference trace gets a nil predictor and
// behaves as permanently lost (no predictions).
//
// The steady-state lookup is lock-free: one atomic snapshot load and one map
// read, so concurrent dispatch from many runtime threads does not contend.
// Only the first lookup of a tid takes the session lock.
// pythia:hotpath — runtimes may call this at every key point.
func (s *Session) Thread(tid int32) *Thread {
	if t, ok := (*s.threads.Load())[tid]; ok {
		return t
	}
	return s.createThreadContained(tid)
}

// createThreadContained is createThread under panic containment: a failure
// while building the per-thread machinery (e.g. from a hostile reference
// trace) degrades the oracle and hands back an inert stub handle — never a
// nil pointer the host runtime would trip over, and never a panic.
func (s *Session) createThreadContained(tid int32) (t *Thread) {
	defer func() {
		if r := recover(); r != nil {
			s.health.notePanic("Session.Thread", r)
			t = &Thread{sess: s, tid: tid}
		}
	}()
	return s.createThread(tid)
}

// createThread installs the handle for a tid seen for the first time. Writers
// are serialized by mu and publish a fresh copy of the snapshot, so readers
// never observe a map mid-mutation.
func (s *Session) createThread(tid int32) *Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.threads.Load()
	if t, ok := old[tid]; ok {
		// Lost the creation race to another goroutine.
		return t
	}
	t := &Thread{sess: s, tid: tid}
	switch s.mode {
	case ModeRecord:
		t.rec = recorder.New(s.recorderOptions(tid)...)
	case ModePredict:
		if tr := s.ref.Trace(tid); tr != nil {
			t.pred = predictor.New(tr, s.pcfg)
		}
	case ModeOnline:
		t.rec = recorder.New(s.recorderOptions(tid)...)
		if s.learn != nil {
			// Learning sessions serve from the current generation, which may
			// already be ahead of the seed reference trace.
			t.learn = &threadLearn{l: s.learn}
			g := s.learn.serving.Load()
			t.learn.gen = g
			if tr := g.ts.Trace(tid); tr != nil {
				t.pred = predictor.New(tr, s.pcfg)
			}
		} else if tr := s.ref.Trace(tid); tr != nil {
			t.pred = predictor.New(tr, s.pcfg)
		}
	}
	next := make(map[int32]*Thread, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[tid] = t
	s.threads.Store(&next)
	return t
}

// recorderOptions assembles the per-thread recorder options for tid: the
// session-wide options plus, when checkpointing or online learning is on, a
// sink that feeds the thread's snapshots to the background machinery.
func (s *Session) recorderOptions(tid int32) []recorder.Option {
	if s.ckpt == nil && s.learn == nil {
		return s.recOpts
	}
	opts := make([]recorder.Option, 0, len(s.recOpts)+1)
	opts = append(opts, s.recOpts...)
	if s.ckpt != nil {
		c := s.ckpt
		opts = append(opts, recorder.WithCheckpointSink(s.ckptPol.snapEvery(),
			func(snap recorder.Checkpoint) { c.offer(tid, snap) }))
	} else {
		l := s.learn
		opts = append(opts, recorder.WithCheckpointSink(l.pol.EpochEvents,
			func(snap recorder.Checkpoint) { l.offer(tid, snap) }))
	}
	return opts
}

// FinishRecord ends a recording (or online) session, returning the trace
// set to be saved. Calling it on a prediction session, or on a session that
// already failed open after a contained panic, is a caller-visible error,
// never a crash. It also stops the background checkpointer (bounded wait),
// so the final Save never races a generation write.
func (s *Session) FinishRecord() (*model.TraceSet, error) {
	if s.mode != ModeRecord && s.mode != ModeOnline {
		return nil, fmt.Errorf("core: FinishRecord on a %s session", s.mode)
	}
	if s.ckpt != nil {
		s.ckpt.close()
	}
	if s.learn != nil {
		s.learn.close()
	}
	if s.Failed() {
		return nil, fmt.Errorf("core: FinishRecord on a degraded oracle (%s)", s.Health().Cause)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	threads := *s.threads.Load()
	ts := &model.TraceSet{
		Events:  s.reg.Names(),
		Threads: make(map[int32]*model.ThreadTrace, len(threads)),
	}
	for tid, t := range threads {
		ts.Threads[tid] = t.rec.Finish()
	}
	return ts, nil
}

// TotalEvents sums the events recorded so far across threads (record mode).
func (s *Session) TotalEvents() int64 {
	var n int64
	for _, t := range *s.threads.Load() {
		if t.rec != nil {
			n += t.rec.EventCount()
		}
	}
	return n
}

// Thread is the per-thread oracle handle. All methods must be called from a
// single goroutine at a time (one handle per runtime thread).
//
// Every exported method fails open: it runs under the session's panic
// containment (a recovered internal panic degrades the oracle instead of
// crashing the host runtime) and becomes a cheap no-op once the session is
// degraded.
// pythia:contained
type Thread struct {
	sess *Session
	tid  int32
	rec  *recorder.Recorder
	pred *predictor.Predictor

	// learn is the thread-side model lifecycle of a learning session (rival
	// scoring, generation adoption — see lifecycle.go), nil everywhere else.
	learn *threadLearn

	// notedTrunc / notedQuar track which per-thread degradations have
	// already been reported to the session health accounting (single
	// goroutine, like every other Thread field).
	notedTrunc bool
	notedQuar  bool
}

// TID returns the thread identifier.
func (t *Thread) TID() int32 { return t.tid }

// noteHealth folds per-thread degradation transitions into the session
// health after an event was submitted: a record budget breach (one-shot)
// and divergence-watchdog quarantine enter/leave.
// pythia:hotpath — two predictable branches per Submit in steady state.
func (t *Thread) noteHealth() {
	if t.rec != nil && !t.notedTrunc && t.rec.Truncated() {
		t.notedTrunc = true
		t.sess.health.noteBreach(t.tid, t.rec.TruncationCause())
	}
	if t.pred != nil {
		if q := t.pred.Quarantined(); q != t.notedQuar {
			t.notedQuar = q
			t.sess.health.noteQuarantine(t.tid, q)
		}
	}
}

// Submit notifies the oracle of an event: it is recorded in record mode and
// observed (tracked) in predict mode.
// pythia:hotpath — called at every runtime key point.
func (t *Thread) Submit(id events.ID) {
	if t.sess.Failed() {
		return
	}
	defer t.sess.Contain("Thread.Submit")
	if t.rec != nil {
		t.rec.Record(id)
	}
	if t.learn != nil {
		t.learn.observe(t, int32(id))
	} else if t.pred != nil {
		t.pred.Observe(int32(id))
	}
	t.noteHealth()
}

// SubmitAt is Submit with an explicit timestamp (virtual clocks). In
// predict mode the timestamp is ignored.
// pythia:hotpath — called at every key point of virtual-clock runtimes.
func (t *Thread) SubmitAt(id events.ID, now int64) {
	if t.sess.Failed() {
		return
	}
	defer t.sess.Contain("Thread.SubmitAt")
	if t.rec != nil {
		t.rec.RecordAt(id, now)
	}
	if t.learn != nil {
		t.learn.observe(t, int32(id))
	} else if t.pred != nil {
		t.pred.Observe(int32(id))
	}
	t.noteHealth()
}

// StartAtBeginning seeds prediction at the start of the reference trace.
func (t *Thread) StartAtBeginning() {
	if t.sess.Failed() {
		return
	}
	defer t.sess.Contain("Thread.StartAtBeginning")
	if t.pred != nil {
		t.pred.StartAtBeginning()
	}
}

// PredictAt predicts the event distance events from now (predict mode).
// ok is false when the oracle has no answer — including when it is
// degraded or the divergence watchdog holds the thread in quarantine.
func (t *Thread) PredictAt(distance int) (pr predictor.Prediction, ok bool) {
	if t.pred == nil || t.sess.Failed() {
		return predictor.Prediction{}, false
	}
	defer t.sess.Contain("Thread.PredictAt")
	return t.pred.PredictAt(distance)
}

// PredictSequence predicts the next n events (predict mode).
func (t *Thread) PredictSequence(n int) (preds []predictor.Prediction) {
	if t.pred == nil || t.sess.Failed() {
		return nil
	}
	defer t.sess.Contain("Thread.PredictSequence")
	return t.pred.PredictSequence(n)
}

// PredictDurationUntil predicts the time until the next occurrence of the
// event, looking at most maxDistance events ahead (predict mode).
func (t *Thread) PredictDurationUntil(id events.ID, maxDistance int) (pr predictor.Prediction, ok bool) {
	if t.pred == nil || t.sess.Failed() {
		return predictor.Prediction{}, false
	}
	defer t.sess.Contain("Thread.PredictDurationUntil")
	return t.pred.PredictDurationUntil(int32(id), maxDistance)
}

// Predictor exposes the underlying predictor (nil in record mode), for
// diagnostics.
func (t *Thread) Predictor() *predictor.Predictor { return t.pred }

// Recorder exposes the underlying recorder (nil in predict mode), for
// diagnostics.
func (t *Thread) Recorder() *recorder.Recorder { return t.rec }
