package core

import (
	"strings"
	"testing"

	"repro/internal/recorder"
)

func TestStateString(t *testing.T) {
	if StateHealthy.String() != "healthy" ||
		StateDegraded.String() != "degraded" ||
		StateQuarantined.String() != "quarantined" {
		t.Fatal("State.String broken")
	}
	if State(42).String() == "" {
		t.Fatal("unknown state must still render")
	}
}

func TestInjectFailureDegrades(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	a := s.Registry().Intern("a")
	th := s.Thread(0)
	th.Submit(a)

	s.InjectFailure("Thread.Submit", "injected fault")
	h := s.Health()
	if h.State != StateDegraded {
		t.Fatalf("state = %v, want degraded", h.State)
	}
	if h.PanicsContained != 1 {
		t.Fatalf("panics contained = %d, want 1", h.PanicsContained)
	}
	if !strings.Contains(h.Cause, "Thread.Submit") || !strings.Contains(h.Cause, "injected fault") {
		t.Fatalf("cause = %q", h.Cause)
	}

	// Degraded fast paths: submissions become no-ops, queries refuse.
	before := s.TotalEvents()
	th.Submit(a)
	th.SubmitAt(a, 5)
	if s.TotalEvents() != before {
		t.Fatal("degraded Submit still recorded")
	}
	if _, ok := th.PredictAt(1); ok {
		t.Fatal("degraded PredictAt answered")
	}
	if _, err := s.FinishRecord(); err == nil {
		t.Fatal("FinishRecord on a degraded session returned no error")
	}

	// The first cause is sticky: later failures count but do not overwrite.
	s.InjectFailure("Thread.SubmitAt", "second fault")
	h = s.Health()
	if h.PanicsContained != 2 {
		t.Fatalf("panics contained = %d, want 2", h.PanicsContained)
	}
	if !strings.Contains(h.Cause, "injected fault") {
		t.Fatalf("first cause overwritten: %q", h.Cause)
	}
}

// TestContainRecovers checks the wrapper converts a live panic into
// degradation (the mechanism behind every exported method).
func TestContainRecovers(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	func() {
		defer s.Contain("test.method")
		panic("boom")
	}()
	h := s.Health()
	if h.State != StateDegraded || !strings.Contains(h.Cause, "boom") {
		t.Fatalf("health after contained panic: %+v", h)
	}
}

func TestContainToSetsError(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	var err error
	func() {
		defer s.ContainTo("test.finish", &err)
		panic("kaboom")
	}()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
	if !s.Failed() {
		t.Fatal("session not degraded after ContainTo")
	}
}

// TestThreadCreationContained checks a panic during thread construction
// yields an inert, non-nil handle instead of crashing or returning nil.
func TestThreadCreationContained(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	s.InjectFailure("warmup", "pre-broken")
	th := s.Thread(9)
	if th == nil {
		t.Fatal("Thread returned nil on a degraded session")
	}
	th.Submit(0) // must be a no-op, not a nil deref
	if _, ok := th.PredictAt(1); ok {
		t.Fatal("stub thread answered a prediction")
	}
}

// TestBudgetBreachIsDegradedButFinishable: resource-budget degradation
// keeps FinishRecord working — the truncated trace is the graceful result.
func TestBudgetBreachIsDegradedButFinishable(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps(), recorder.WithMaxEvents(10)))
	a := s.Registry().Intern("a")
	th := s.Thread(0)
	for i := 0; i < 40; i++ {
		th.Submit(a)
	}
	h := s.Health()
	if h.State != StateDegraded || h.BudgetBreaches != 1 {
		t.Fatalf("health = %+v, want degraded with one breach", h)
	}
	if !strings.Contains(h.Cause, "thread 0") {
		t.Fatalf("cause = %q", h.Cause)
	}
	ts, err := s.FinishRecord()
	if err != nil {
		t.Fatalf("FinishRecord after budget breach: %v", err)
	}
	if !ts.Threads[0].Truncated || ts.Threads[0].Dropped != 30 {
		t.Fatalf("trace truncated=%v dropped=%d", ts.Threads[0].Truncated, ts.Threads[0].Dropped)
	}
}
