package core

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/predictor"
)

// NewOnlineSession starts a session that predicts from a reference trace
// *and* records the current execution at the same time — the natural
// deployment mode the paper's workflow implies: every production run can
// refresh the trace that the next run will predict from, so the oracle
// tracks slow drift in application behaviour.
//
// Thread.Submit feeds both engines; prediction queries behave exactly as in
// a predict session; FinishRecord returns the newly recorded trace set.
// RecordOptions (including WithCheckpoint) apply to the re-recording side.
func NewOnlineSession(ref *model.TraceSet, cfg predictor.Config, opts ...RecordOption) (*Session, error) {
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid reference trace: %w", err)
	}
	// The registry must extend the reference's table so that ids of known
	// events stay stable while new events get fresh ids.
	reg, err := events.FromNames(ref.Events)
	if err != nil {
		return nil, fmt.Errorf("core: invalid event table: %w", err)
	}
	var rc recordConfig
	for _, o := range opts {
		o(&rc)
	}
	s := &Session{
		mode:    ModeOnline,
		reg:     reg,
		ref:     ref,
		pcfg:    cfg,
		recOpts: rc.recOpts,
		ckptPol: rc.ckpt,
	}
	s.threads.Store(&map[int32]*Thread{})
	if rc.ckpt.enabled() {
		s.ckpt = newCheckpointer(s, rc.ckpt)
	}
	return s, nil
}

// MergeTiming folds the timing statistics of a previous trace set into a
// freshly recorded one, thread by thread, provided the grammars are
// identical (same behaviour). Threads whose structure changed keep only the
// fresh statistics. It returns how many threads were merged. This is how a
// deployment accumulates the paper's "average elapsed time" over many runs
// instead of a single reference execution.
func MergeTiming(fresh, old *model.TraceSet) int {
	merged := 0
	for tid, fth := range fresh.Threads {
		oth, ok := old.Threads[tid]
		if !ok || fth.Timing == nil || oth.Timing == nil {
			continue
		}
		if !sameGrammar(fth, oth) {
			continue
		}
		for k, os := range oth.Timing.BySuffix {
			s := fth.Timing.BySuffix[k]
			s.Merge(os)
			fth.Timing.BySuffix[k] = s
		}
		for id, os := range oth.Timing.ByEvent {
			s := fth.Timing.ByEvent[id]
			s.Merge(os)
			fth.Timing.ByEvent[id] = s
		}
		merged++
	}
	return merged
}

// sameGrammar reports whether two thread traces have identical rule bodies.
func sameGrammar(a, b *model.ThreadTrace) bool {
	if len(a.Grammar.Rules) != len(b.Grammar.Rules) {
		return false
	}
	for i := range a.Grammar.Rules {
		ba, bb := a.Grammar.Rules[i].Body, b.Grammar.Rules[i].Body
		if len(ba) != len(bb) {
			return false
		}
		for j := range ba {
			if ba[j] != bb[j] {
				return false
			}
		}
	}
	return true
}
