package core

// Guarded model lifecycle (this file): always-on learning with scored
// promotion and automatic rollback. A learning session collapses the
// paper's record-then-predict phases into one: every thread records a
// *shadow* grammar of the live Submit stream (the plain recorder hot path)
// while the *serving* model keeps answering predictions. A background
// manager goroutine periodically materializes the shadow into a candidate
// trace set, and every thread scores a *rival* predictor built from that
// candidate against the serving predictor over the same observed events.
// When the rival out-predicts the serving model by a configured margin for
// several consecutive tumbling epochs — the same hysteresis discipline as
// the divergence watchdog — the manager promotes it: the candidate is
// journaled as a new generation (commit before publish) and then published
// through one atomic pointer, so threads pick it up with a single load on
// their next Submit and rebuild their predictor off the hot path. The
// previous generation is retained and keeps scoring for a watch window; if
// it out-predicts the promoted model, the manager rolls back — minting a
// fresh generation with the old model's content (generation numbers never
// go backwards), latching a Health cause and counter.
//
// Failure discipline matches the checkpointer: journal trouble degrades
// health but never stalls Submit, the manager goroutine is quit-signalled
// and joined on Close, and a crash at any instant recovers to the newest
// committed generation because nothing is ever published before it is
// durable.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/recorder"
	"repro/internal/tracefile"
)

// DefaultLearnEpochEvents is the scoring epoch used when a LearnPolicy does
// not choose one: long enough for hit-rates to be meaningful, short enough
// that a drifted workload is adopted within thousands, not millions, of
// events.
const DefaultLearnEpochEvents = 512

// learnFlushEvents is how often a thread folds its local epoch counters
// into the session aggregate. It bounds the staleness of the aggregate, not
// the epoch length; the fold is a short mutex hold well off the per-event
// hot path.
const learnFlushEvents = 64

// LearnPolicy configures the guarded model lifecycle of a learning session.
// The zero value selects defaults for every knob and keeps generations in
// memory only.
type LearnPolicy struct {
	// EpochEvents is the tumbling scoring epoch in observed events: both
	// models' hit counts over one epoch are compared to drive promotion and
	// rollback. Zero selects DefaultLearnEpochEvents.
	EpochEvents int64
	// PromoteEpochs is how many consecutive epochs the shadow candidate
	// must win before it is promoted (default 3) — the hysteresis that
	// keeps a noisy workload from flapping models.
	PromoteEpochs int
	// PromoteMarginPct is the margin, in percent of the epoch's events, by
	// which the rival's hit count must exceed the serving model's to count
	// as a win (default 5). The same margin, in the other direction,
	// triggers a rollback during the post-promotion watch window.
	PromoteMarginPct int
	// WatchEpochs is the post-promotion watch window: for this many epochs
	// the previous generation keeps scoring against the promoted one, and a
	// regression rolls back automatically (default 3).
	WatchEpochs int
	// CooldownEpochs is how many epochs after a rollback the lifecycle
	// refuses to promote again (default 8): a candidate that just lost in
	// production must re-prove itself on fresh evidence.
	CooldownEpochs int
	// Dir, when non-empty, journals every generation (the initial serving
	// model, promotions, rollbacks) as crash-safe checkpoint files under
	// this directory; tracefile.Recover after a crash lands on the newest
	// committed generation. Empty keeps generations in memory only.
	Dir string
	// Keep is the number of journaled generations retained
	// (tracefile.DefaultKeep when zero or negative). Ignored without Dir.
	Keep int
}

// withDefaults fills the zero knobs.
func (p LearnPolicy) withDefaults() LearnPolicy {
	if p.EpochEvents <= 0 {
		p.EpochEvents = DefaultLearnEpochEvents
	}
	if p.PromoteEpochs <= 0 {
		p.PromoteEpochs = 3
	}
	if p.PromoteMarginPct <= 0 {
		p.PromoteMarginPct = 5
	}
	if p.WatchEpochs <= 0 {
		p.WatchEpochs = 3
	}
	if p.CooldownEpochs <= 0 {
		p.CooldownEpochs = 8
	}
	return p
}

// lifecycleAction is what one scored epoch asks the manager to do.
type lifecycleAction int

const (
	actNone lifecycleAction = iota
	actPromote
	actRollback
)

// lifecycle is the pure promotion/rollback state machine — no clocks, no
// goroutines, no I/O — so tests and the fuzzer can drive arbitrary epoch
// and forced-transition interleavings against it directly.
//
// Two states: learning (the rival is the shadow candidate; enough winning
// epochs in a row promote it) and watching (the rival is the previous
// generation; one winning epoch rolls the promotion back). A rollback
// starts a cooldown during which no promotion is considered.
type lifecycle struct {
	pol       LearnPolicy
	watching  bool
	streak    int
	watchLeft int
	cooldown  int
}

// newLifecycle returns the machine in the learning state.
func newLifecycle(pol LearnPolicy) lifecycle {
	return lifecycle{pol: pol.withDefaults()}
}

// observeEpoch folds one completed scoring epoch — the serving model's and
// the rival's hit counts over n events — and returns the transition it
// mandates. The rival "beats" the serving model when its hit count exceeds
// the serving one by at least PromoteMarginPct percent of the epoch.
func (m *lifecycle) observeEpoch(servingHits, rivalHits, n int64) lifecycleAction {
	if n <= 0 {
		return actNone
	}
	beats := (rivalHits-servingHits)*100 >= int64(m.pol.PromoteMarginPct)*n
	if m.watching {
		if beats {
			// The previous generation out-predicts the promoted model:
			// the promotion regressed. Roll back and cool down.
			m.watching = false
			m.streak = 0
			m.cooldown = m.pol.CooldownEpochs
			return actRollback
		}
		if m.watchLeft--; m.watchLeft <= 0 {
			m.watching = false
		}
		return actNone
	}
	if m.cooldown > 0 {
		m.cooldown--
		m.streak = 0
		return actNone
	}
	if !beats {
		m.streak = 0
		return actNone
	}
	if m.streak++; m.streak < m.pol.PromoteEpochs {
		return actNone
	}
	m.streak = 0
	m.watching = true
	m.watchLeft = m.pol.WatchEpochs
	return actPromote
}

// forcePromote moves the machine into the watch state as if a scored
// promotion had happened (operator-forced promotions are watched — and
// rolled back — exactly like earned ones).
func (m *lifecycle) forcePromote() {
	m.streak = 0
	m.cooldown = 0
	m.watching = true
	m.watchLeft = m.pol.WatchEpochs
}

// forceRollback moves the machine out of the watch state with the rollback
// cooldown armed.
func (m *lifecycle) forceRollback() {
	m.watching = false
	m.streak = 0
	m.cooldown = m.pol.CooldownEpochs
}

// generation is one immutable serving model: a trace set plus its lineage.
// Threads hold the pointer they built their predictor from and detect a
// swap by pointer identity — one atomic load per Submit.
type generation struct {
	num    uint64
	parent uint64
	kind   model.ProvKind
	ts     *model.TraceSet
}

// lineage is the pure generation ledger: which generation serves, which
// one a rollback would restore, and the next number to mint. Numbers are
// strictly monotonic — a rollback re-mints the old content under a fresh
// number rather than reusing the old one, so journal recovery can always
// trust "newest committed wins".
type lineage struct {
	next     uint64
	serving  *generation
	previous *generation
}

// newLineage seeds the ledger with the initial serving generation.
func newLineage(seed *model.TraceSet, num uint64) lineage {
	return lineage{
		next:    num + 1,
		serving: &generation{num: num, kind: model.ProvCheckpoint, ts: seed},
	}
}

// promote mints generation num from the candidate trace set. The prior
// serving generation becomes the rollback target.
func (l *lineage) promote(num uint64, ts *model.TraceSet) (*generation, error) {
	if num <= l.serving.num {
		return nil, fmt.Errorf("core: promotion would mint generation %d at or below serving %d", num, l.serving.num)
	}
	g := &generation{num: num, parent: l.serving.num, kind: model.ProvPromotion, ts: ts}
	l.previous = l.serving
	l.serving = g
	if num >= l.next {
		l.next = num + 1
	}
	return g, nil
}

// rollback mints generation num carrying the previous generation's content.
// Only one step back is possible: after a rollback the restored model has
// no predecessor until the next promotion.
func (l *lineage) rollback(num uint64) (*generation, error) {
	if l.previous == nil {
		return nil, fmt.Errorf("core: no previous generation to roll back to")
	}
	if num <= l.serving.num {
		return nil, fmt.Errorf("core: rollback would mint generation %d at or below serving %d", num, l.serving.num)
	}
	g := &generation{num: num, parent: l.serving.num, kind: model.ProvRollback, ts: l.previous.ts}
	l.serving = g
	l.previous = nil
	if num >= l.next {
		l.next = num + 1
	}
	return g, nil
}

// retained lists the generation numbers the ledger currently holds,
// serving first.
func (l *lineage) retained() []uint64 {
	out := []uint64{l.serving.num}
	if l.previous != nil {
		out = append(out, l.previous.num)
	}
	return out
}

// rivalSpec is the model threads currently score against the serving one:
// the freshest shadow candidate while learning, the previous generation
// while watching a promotion. Threads detect a change by pointer identity
// and rebuild their rival predictor at the next event.
type rivalSpec struct {
	ts *model.TraceSet
}

// ModelInfo is a snapshot of a session's model lifecycle, for operators and
// tests (the wire ModelInfo op serves exactly this).
type ModelInfo struct {
	// Enabled reports whether online learning is active on this session.
	Enabled bool
	// State is "frozen" (no learning), "learning" (scoring the shadow
	// candidate) or "watching" (post-promotion watch window).
	State string
	// ServingGeneration is the generation number of the serving model.
	ServingGeneration uint64
	// Promotions, Rollbacks and ShadowEpochs are the lifetime counters:
	// models promoted, promotions rolled back, scoring epochs judged.
	Promotions   uint64
	Rollbacks    uint64
	ShadowEpochs uint64
	// Retained lists the generation numbers held in memory, serving first.
	Retained []uint64
}

// learner owns one learning session's model lifecycle: the shadow snapshot
// sink, the epoch score aggregate, the lineage ledger, the optional
// generation journal, and the background manager goroutine that judges
// epochs and performs promotions and rollbacks.
type learner struct {
	sess *Session
	pol  LearnPolicy
	j    *tracefile.Journal // nil in memory-only mode (or after open failure)

	// serving and rival are the published models; threads read both with
	// one atomic load per Submit and act only on pointer change.
	serving atomic.Pointer[generation]
	rival   atomic.Pointer[rivalSpec]

	// mu guards the offer side: latest per-thread shadow snapshots and the
	// epoch score aggregate. Threads write here at their flush cadence.
	mu       sync.Mutex
	snaps    map[int32]ckptEntry
	seq      uint64
	candSeq  uint64 // snapshot seq the published candidate covers
	aggSpec  *rivalSpec
	aggServ  int64
	aggRival int64
	aggN     int64

	// opMu serializes lifecycle transitions and journal writes: the
	// manager goroutine and the forced Promote/Rollback entry points.
	opMu sync.Mutex
	lin  lineage
	sm   lifecycle
	mat  map[int32]matEntry

	epochs atomic.Uint64

	notify    chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// newLearner seeds the lifecycle with ref as the initial serving generation
// and starts the manager goroutine. A journal that cannot be opened (or
// seeded) degrades health and falls back to memory-only learning — the
// fail-open contract; learning itself never depends on the disk.
func newLearner(s *Session, pol LearnPolicy, ref *model.TraceSet) *learner {
	l := &learner{
		sess:   s,
		pol:    pol.withDefaults(),
		snaps:  make(map[int32]ckptEntry),
		mat:    make(map[int32]matEntry),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	l.sm = newLifecycle(l.pol)
	seedNum := uint64(1)
	if l.pol.Dir != "" {
		j, err := tracefile.OpenJournal(l.pol.Dir, l.pol.Keep)
		if err != nil {
			s.health.noteCheckpointFailure(err)
		} else {
			// Journal the seed so a crash before the first promotion still
			// recovers to a consistent generation. A shallow copy keeps the
			// caller's trace set free of our provenance stamp.
			seed := *ref
			seed.Provenance = &model.Provenance{UnixNanos: time.Now().UnixNano()}
			if gen, werr := j.WriteGeneration(&seed); werr != nil {
				s.health.noteCheckpointFailure(werr)
			} else {
				l.j = j
				seedNum = gen
			}
		}
	}
	l.lin = newLineage(ref, seedNum)
	l.serving.Store(l.lin.serving)
	go l.run()
	return l
}

// offer records the latest shadow snapshot of one thread and nudges the
// manager, donating the scheduler quantum (see score: before the first
// candidate is published there are no score calls, so the first publish
// depends on this yield on single-P hosts). Called from recording threads
// at their snapshot cadence.
func (l *learner) offer(tid int32, snap recorder.Checkpoint) {
	l.mu.Lock()
	l.seq++
	l.snaps[tid] = ckptEntry{snap: snap, seq: l.seq}
	l.mu.Unlock()
	l.nudge()
	runtime.Gosched()
}

// nudge wakes the manager goroutine without blocking.
func (l *learner) nudge() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// score folds one thread's epoch segment into the aggregate, provided it
// was measured against the currently published rival. It reports a
// completed epoch by nudging the manager — and donates the scheduler
// quantum: the manager is wake-driven, and on a GOMAXPROCS=1 host a busy
// submit loop can otherwise run for a full preemption quantum (~10ms of
// events) before the judge ever gets scheduled, smearing many epochs into
// one. One Gosched per completed epoch is far off the hot path.
func (l *learner) score(spec *rivalSpec, servHits, rivalHits, n int64) {
	l.mu.Lock()
	if spec == l.aggSpec {
		l.aggServ += servHits
		l.aggRival += rivalHits
		l.aggN += n
	}
	full := l.aggN >= l.pol.EpochEvents
	l.mu.Unlock()
	if full {
		l.nudge()
		runtime.Gosched()
	}
}

// run is the manager loop: quit-signalled through stop and joined through
// done (see close), following the checkpointer's lifecycle discipline.
func (l *learner) run() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			return
		case <-l.notify:
		}
		l.step()
	}
}

// step judges a completed epoch (possibly promoting or rolling back) and
// refreshes the published candidate. All transitions run under opMu so
// forced operator transitions never interleave with scored ones.
func (l *learner) step() {
	l.opMu.Lock()
	defer l.opMu.Unlock()

	l.mu.Lock()
	servH, rivH, n := l.aggServ, l.aggRival, l.aggN
	judge := n >= l.pol.EpochEvents
	if judge {
		l.aggServ, l.aggRival, l.aggN = 0, 0, 0
	}
	l.mu.Unlock()

	if judge {
		l.epochs.Add(1)
		switch l.sm.observeEpoch(servH, rivH, n) {
		case actPromote:
			// Promote exactly what was scored: the published rival.
			if spec := l.rival.Load(); spec != nil && spec.ts != nil {
				if _, err := l.promoteLocked(spec.ts); err != nil {
					l.sess.health.noteCheckpointFailure(err)
					// The promotion did not happen; leave the machine in
					// the learning state rather than watching a swap that
					// never occurred.
					l.sm.forceRollback()
				}
			}
		case actRollback:
			if _, err := l.rollbackLocked(fmt.Sprintf(
				"model rollback: generation %d regressed against generation %d (epoch hits %d vs %d over %d events)",
				l.lin.serving.num, l.lin.previous.num, servH, rivH, n)); err != nil {
				// Already latched in health by rollbackLocked: the regressed
				// model keeps serving (fail-open) and the cause names the
				// failed journal write.
			}
		}
	}

	// While learning, keep the scored candidate fresh; while watching, the
	// rival stays pinned to the previous generation. Refresh only at epoch
	// boundaries (or to publish the very first candidate): publishing a new
	// rival resets the score aggregate, so refreshing on every snapshot
	// would starve the epoch clock whenever the snapshot cadence divides
	// the epoch length.
	if !l.sm.watching && (judge || l.rival.Load() == nil) {
		if cand := l.materializeLocked(false); cand != nil {
			l.publishRival(cand)
		}
	}
}

// materializeLocked builds the candidate trace set from the latest shadow
// snapshots, reusing cached per-thread artifacts for threads that did not
// advance. It returns nil when there is nothing new to publish (unless
// force is set, which rebuilds from whatever snapshots exist). Caller
// holds opMu.
func (l *learner) materializeLocked(force bool) *model.TraceSet {
	l.mu.Lock()
	if len(l.snaps) == 0 || (!force && l.seq == l.candSeq) {
		l.mu.Unlock()
		return nil
	}
	l.candSeq = l.seq
	snaps := make(map[int32]ckptEntry, len(l.snaps))
	for tid, e := range l.snaps {
		snaps[tid] = e
	}
	l.mu.Unlock()

	threads := make(map[int32]*model.ThreadTrace, len(snaps))
	for tid, e := range snaps {
		if m, ok := l.mat[tid]; ok && m.seq == e.seq {
			threads[tid] = m.tt
			continue
		}
		tt := e.snap.Materialize()
		l.mat[tid] = matEntry{seq: e.seq, tt: tt}
		threads[tid] = tt
	}
	// Registry read after the snapshots: the descriptor table is always a
	// superset of the ids any snapshot grammar uses.
	return &model.TraceSet{Events: l.sess.reg.Names(), Threads: threads}
}

// publishRival installs a new scoring target and resets the aggregate —
// scores measured against different rivals must never be mixed.
func (l *learner) publishRival(ts *model.TraceSet) {
	spec := &rivalSpec{ts: ts}
	l.mu.Lock()
	l.aggSpec = spec
	l.aggServ, l.aggRival, l.aggN = 0, 0, 0
	l.mu.Unlock()
	l.rival.Store(spec)
}

// mintLocked journals (commit) and only then publishes a new serving
// generation. On a journal write failure nothing is published and the
// serving model is unchanged. Caller holds opMu.
func (l *learner) mintLocked(kind model.ProvKind, mint func(num uint64) (*generation, error), ts *model.TraceSet) (*generation, error) {
	num := l.lin.next
	if l.j != nil {
		num = l.j.NextGeneration()
		// Stamp lineage on a shallow copy: the content trace set may be
		// shared with a still-live generation record.
		out := *ts
		out.Provenance = &model.Provenance{
			Kind:      kind,
			Parent:    l.lin.serving.num,
			UnixNanos: time.Now().UnixNano(),
		}
		if _, err := l.j.WriteGeneration(&out); err != nil {
			return nil, err
		}
	}
	return mint(num)
}

// promoteLocked performs the warm handoff: journal the candidate, update
// the ledger, publish the new serving generation, and pin the rival to the
// previous generation for the watch window. Caller holds opMu.
func (l *learner) promoteLocked(cand *model.TraceSet) (*generation, error) {
	g, err := l.mintLocked(model.ProvPromotion, func(num uint64) (*generation, error) {
		return l.lin.promote(num, cand)
	}, cand)
	if err != nil {
		return nil, err
	}
	l.serving.Store(g)
	l.sess.health.notePromotion()
	// The previous generation is the watchdog now: it keeps scoring, and a
	// win within the watch window rolls the promotion back.
	if prev := l.lin.previous; prev != nil {
		l.publishRival(prev.ts)
	}
	return g, nil
}

// rollbackLocked re-mints the previous generation as the serving model and
// latches the regression in Health. Caller holds opMu; the ledger must
// hold a previous generation.
func (l *learner) rollbackLocked(cause string) (*generation, error) {
	prev := l.lin.previous
	if prev == nil {
		return nil, fmt.Errorf("core: no previous generation to roll back to")
	}
	g, err := l.mintLocked(model.ProvRollback, func(num uint64) (*generation, error) {
		return l.lin.rollback(num)
	}, prev.ts)
	if err != nil {
		// The regressed model stays serving (fail-open: a broken disk must
		// not take predictions down), but the regression is surfaced.
		l.sess.health.noteCheckpointFailure(err)
		l.sess.health.noteRollback(cause + " (rollback journal write failed)")
		return nil, err
	}
	l.serving.Store(g)
	l.sess.health.noteRollback(cause)
	return g, nil
}

// forcePromote promotes the current shadow candidate unconditionally (the
// ModelInfo/Promote wire op and fault-injection harnesses). The promoted
// model enters the same watch window as a scored promotion.
func (l *learner) forcePromote() (uint64, error) {
	l.opMu.Lock()
	defer l.opMu.Unlock()
	var cand *model.TraceSet
	if !l.sm.watching {
		if spec := l.rival.Load(); spec != nil && spec.ts != nil {
			cand = spec.ts
		}
	}
	if cand == nil {
		cand = l.materializeLocked(true)
	}
	if cand == nil {
		return 0, fmt.Errorf("core: no shadow candidate to promote yet")
	}
	g, err := l.promoteLocked(cand)
	if err != nil {
		return 0, err
	}
	l.sm.forcePromote()
	return g.num, nil
}

// forceRollback rolls back to the previous generation unconditionally.
func (l *learner) forceRollback() (uint64, error) {
	l.opMu.Lock()
	defer l.opMu.Unlock()
	if l.lin.previous == nil {
		return 0, fmt.Errorf("core: no previous generation to roll back to")
	}
	g, err := l.rollbackLocked(fmt.Sprintf(
		"model rollback: generation %d rolled back to generation %d content by operator",
		l.lin.serving.num, l.lin.previous.num))
	if err != nil {
		return 0, err
	}
	l.sm.forceRollback()
	return g.num, nil
}

// modelInfo snapshots the lifecycle.
func (l *learner) modelInfo() ModelInfo {
	l.opMu.Lock()
	defer l.opMu.Unlock()
	h := l.sess.Health()
	mi := ModelInfo{
		Enabled:           true,
		State:             "learning",
		ServingGeneration: l.lin.serving.num,
		Promotions:        uint64(h.Promotions),
		Rollbacks:         uint64(h.Rollbacks),
		ShadowEpochs:      l.epochs.Load(),
		Retained:          l.lin.retained(),
	}
	if l.sm.watching {
		mi.State = "watching"
	}
	return mi
}

// close stops the manager goroutine and joins it (bounded, like the
// checkpointer: a hung disk must not stall the host's shutdown).
func (l *learner) close() {
	l.closeOnce.Do(func() { close(l.stop) })
	select {
	case <-l.done:
	case <-time.After(shutdownTimeout):
	}
}

// NewLearningSession starts an always-on session: predictions are served
// from ref (the initial generation) while every thread's live stream is
// re-recorded as a shadow model under the guarded lifecycle in pol.
// RecordOptions configure the shadow recorders (budgets, clocks);
// WithCheckpoint is rejected — a learning session's crash safety is the
// generation journal (LearnPolicy.Dir).
func NewLearningSession(ref *model.TraceSet, cfg predictor.Config, pol LearnPolicy, opts ...RecordOption) (*Session, error) {
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid reference trace: %w", err)
	}
	reg, err := events.FromNames(ref.Events)
	if err != nil {
		return nil, fmt.Errorf("core: invalid event table: %w", err)
	}
	var rc recordConfig
	for _, o := range opts {
		o(&rc)
	}
	if rc.ckpt.enabled() {
		return nil, fmt.Errorf("core: learning sessions journal generations through LearnPolicy.Dir, not WithCheckpoint")
	}
	s := &Session{
		mode:    ModeOnline,
		reg:     reg,
		ref:     ref,
		pcfg:    cfg,
		recOpts: rc.recOpts,
	}
	s.threads.Store(&map[int32]*Thread{})
	s.learn = newLearner(s, pol, ref)
	return s, nil
}

// ModelInfo returns a snapshot of the session's model lifecycle. Sessions
// without online learning report Enabled=false and the "frozen" state.
func (s *Session) ModelInfo() ModelInfo {
	if s.learn == nil {
		return ModelInfo{State: "frozen"}
	}
	return s.learn.modelInfo()
}

// Promote forces an immediate promotion of the current shadow candidate,
// returning the minted generation number. It exists for operators and
// tests; steady-state promotions are scored. The promoted model enters the
// normal watch window, so a bad forced promotion still rolls back.
func (s *Session) Promote() (uint64, error) {
	if s.learn == nil {
		return 0, fmt.Errorf("core: Promote on a session without online learning")
	}
	return s.learn.forcePromote()
}

// Rollback forces an immediate rollback to the previous generation,
// returning the minted generation number.
func (s *Session) Rollback() (uint64, error) {
	if s.learn == nil {
		return 0, fmt.Errorf("core: Rollback on a session without online learning")
	}
	return s.learn.forceRollback()
}

// Close releases the session's background machinery (the lifecycle manager
// and the checkpointer, when present). Idempotent; sessions without either
// need not call it.
func (s *Session) Close() {
	if s.learn != nil {
		s.learn.close()
	}
	if s.ckpt != nil {
		s.ckpt.close()
	}
}

// threadLearn is the per-thread half of the lifecycle: the rival predictor
// and the epoch scoring segment. Like every other Thread field it is owned
// by the submitting goroutine.
type threadLearn struct {
	l     *learner
	gen   *generation
	spec  *rivalSpec
	rival *predictor.Predictor

	servHits  int64
	rivalHits int64
	n         int64
}

// rivalConfig is the serving predictor config with the watchdog disabled:
// a scoring model must keep reporting raw hit counts while diverged — that
// divergence is exactly the signal being measured.
func rivalConfig(cfg predictor.Config) predictor.Config {
	cfg.WatchdogWindow = -1
	return cfg
}

// observe feeds one event to both models and scores them. The generation
// and rival checks are one atomic load + pointer compare each; rebuilds
// happen only on an actual swap (promotions, rollbacks, fresh candidates).
// pythia:hotpath — called per Submit on learning sessions.
func (tl *threadLearn) observe(t *Thread, id int32) {
	if g := tl.l.serving.Load(); g != tl.gen {
		tl.adoptGeneration(t, g)
	}
	if spec := tl.l.rival.Load(); spec != tl.spec {
		tl.adoptRival(t, spec)
	}
	if t.pred != nil {
		f0 := t.pred.Stats().Followed
		t.pred.Observe(id)
		if tl.rival != nil && t.pred.Stats().Followed > f0 {
			tl.servHits++
		}
	}
	if tl.rival == nil {
		return
	}
	f0 := tl.rival.Stats().Followed
	tl.rival.Observe(id)
	if tl.rival.Stats().Followed > f0 {
		tl.rivalHits++
	}
	if tl.n++; tl.n >= learnFlushEvents {
		tl.flush()
	}
}

// flush folds the local scoring segment into the session aggregate.
func (tl *threadLearn) flush() {
	if tl.n > 0 {
		tl.l.score(tl.spec, tl.servHits, tl.rivalHits, tl.n)
	}
	tl.servHits, tl.rivalHits, tl.n = 0, 0, 0
}

// adoptGeneration is the thread-side half of the warm handoff: rebuild the
// serving predictor from the newly published generation. A generation that
// does not cover this thread leaves the current predictor serving — the
// next promotion that includes the thread picks it up.
func (tl *threadLearn) adoptGeneration(t *Thread, g *generation) {
	tl.gen = g
	if tr := g.ts.Trace(t.tid); tr != nil {
		t.pred = predictor.New(tr, t.sess.pcfg)
	}
	// Partial scores straddling a model swap are meaningless; drop them.
	tl.servHits, tl.rivalHits, tl.n = 0, 0, 0
}

// adoptRival rebuilds the scoring predictor against the newly published
// rival. A rival that does not cover this thread suspends scoring on it.
func (tl *threadLearn) adoptRival(t *Thread, spec *rivalSpec) {
	tl.spec = spec
	tl.rival = nil
	if spec != nil && spec.ts != nil {
		if tr := spec.ts.Trace(t.tid); tr != nil {
			tl.rival = predictor.New(tr, rivalConfig(t.sess.pcfg))
		}
	}
	tl.servHits, tl.rivalHits, tl.n = 0, 0, 0
}
