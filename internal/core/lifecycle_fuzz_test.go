package core

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

// FuzzModelLifecycle drives arbitrary interleavings of scored epochs,
// forced promotions, forced rollbacks and crashes through the pure
// lifecycle machine and the lineage ledger, with the journal modeled as an
// append-only list of committed generation numbers (commit happens strictly
// before the ledger mutation, exactly like mintLocked). The invariants are
// the ones crash recovery depends on:
//
//   - generation numbers are strictly monotonic, in the ledger and in the
//     journal, across crashes and restarts;
//   - every minted generation's parent is the generation that was serving
//     at mint time;
//   - a rollback is only ever mandated (or accepted) while a previous
//     generation exists, and it clears that previous generation;
//   - at any crash point the newest committed generation is at or ahead of
//     the published serving one (commit-before-publish), so "newest
//     committed wins" recovery never resurrects a stale model.
func FuzzModelLifecycle(f *testing.F) {
	f.Add([]byte{0, 8, 0, 0, 8, 0, 1, 0, 0, 0, 0, 8, 2, 0, 0})
	f.Add([]byte{1, 1, 1, 3, 3, 3, 0, 0, 8})
	f.Add([]byte{0, 0, 8, 0, 0, 8, 0, 8, 0, 3, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, ops []byte) {
		pol := LearnPolicy{EpochEvents: 8, PromoteEpochs: 2, PromoteMarginPct: 5, WatchEpochs: 2, CooldownEpochs: 3}
		sm := newLifecycle(pol)
		seed := &model.TraceSet{Events: []string{"gen1"}}
		lin := newLineage(seed, 1)
		committed := []uint64{1} // the seed generation is journaled at open

		newest := func() uint64 { return committed[len(committed)-1] }
		mintTS := func(num uint64) *model.TraceSet {
			return &model.TraceSet{Events: []string{fmt.Sprintf("gen%d", num)}}
		}
		// checkMint verifies one successful ledger mutation against the
		// serving generation it replaced.
		checkMint := func(g *generation, prev *generation, err error) {
			if err != nil {
				t.Fatalf("mint failed: %v", err)
			}
			if g.num <= prev.num {
				t.Fatalf("minted generation %d not above serving %d", g.num, prev.num)
			}
			if g.parent != prev.num {
				t.Fatalf("generation %d parent %d, want serving-at-mint %d", g.num, g.parent, prev.num)
			}
			if lin.serving != g {
				t.Fatal("mint did not install the new serving generation")
			}
			if lin.next <= g.num {
				t.Fatalf("next %d not above serving %d", lin.next, g.num)
			}
		}
		// promote commits then mutates the ledger, like promoteLocked.
		promote := func() {
			num := lin.next
			prev := lin.serving
			committed = append(committed, num)
			g, err := lin.promote(num, mintTS(num))
			checkMint(g, prev, err)
			if lin.previous != prev {
				t.Fatal("promotion did not retain the replaced generation")
			}
		}
		rollback := func() {
			num := lin.next
			prev := lin.serving
			restored := lin.previous
			committed = append(committed, num)
			g, err := lin.rollback(num)
			checkMint(g, prev, err)
			if g.ts != restored.ts {
				t.Fatal("rollback did not restore the previous generation's content")
			}
			if lin.previous != nil {
				t.Fatal("rollback left a previous generation behind")
			}
		}

		for i := 0; i+2 < len(ops); i += 3 {
			switch ops[i] % 4 {
			case 0: // scored epoch
				n := pol.EpochEvents
				servHits := int64(ops[i+1]) % (n + 1)
				rivalHits := int64(ops[i+2]) % (n + 1)
				switch sm.observeEpoch(servHits, rivalHits, n) {
				case actPromote:
					promote()
				case actRollback:
					if lin.previous == nil {
						t.Fatal("machine mandated a rollback with no previous generation")
					}
					rollback()
				}
			case 1: // operator-forced promotion
				promote()
				sm.forcePromote()
			case 2: // operator-forced rollback
				if lin.previous == nil {
					if _, err := lin.rollback(lin.next); err == nil {
						t.Fatal("ledger accepted a rollback with no previous generation")
					}
					continue
				}
				rollback()
				sm.forceRollback()
			case 3: // crash, possibly torn between commit and publish, then restart
				if ops[i+1]%2 == 0 {
					committed = append(committed, lin.next) // committed but never published
				}
				if newest() < lin.serving.num {
					t.Fatalf("serving generation %d ahead of newest committed %d", lin.serving.num, newest())
				}
				// Recovery: newest committed wins, the machine restarts cold.
				sm = newLifecycle(pol)
				lin = newLineage(mintTS(newest()), newest())
			}
			// Global invariants, every step.
			for j := 1; j < len(committed); j++ {
				if committed[j] <= committed[j-1] {
					t.Fatalf("journal not strictly monotonic: %v", committed)
				}
			}
			if newest() < lin.serving.num {
				t.Fatalf("serving generation %d ahead of newest committed %d", lin.serving.num, newest())
			}
			if got := lin.retained(); got[0] != lin.serving.num {
				t.Fatalf("retained %v does not lead with serving %d", got, lin.serving.num)
			}
			if sm.watching && lin.previous == nil {
				t.Fatal("watch window open with no generation to roll back to")
			}
		}
	})
}
