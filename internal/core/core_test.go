package core

import (
	"sync"
	"testing"

	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/recorder"
)

// mustFinishRecord finalises a record-capable session, failing the test on
// error (a healthy session's FinishRecord cannot fail).
func mustFinishRecord(t *testing.T, s *Session) *model.TraceSet {
	t.Helper()
	ts, err := s.FinishRecord()
	if err != nil {
		t.Fatalf("FinishRecord: %v", err)
	}
	return ts
}

// appSequence returns the synthetic per-thread event sequence used by the
// tests: 50 iterations of (a, b) with a barrier every 10 iterations.
func appSequence(a, b, c events.ID) []events.ID {
	var seq []events.ID
	for i := 0; i < 50; i++ {
		seq = append(seq, a, b)
		if i%10 == 9 {
			seq = append(seq, c)
		}
	}
	return seq
}

func TestRecordThenPredictRoundTrip(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	reg := s.Registry()
	a := reg.Intern("phaseA")
	b := reg.Intern("phaseB")
	c := reg.Intern("barrier")
	seq := appSequence(a, b, c)
	th := s.Thread(0)
	for _, e := range seq {
		th.Submit(e)
	}
	set := mustFinishRecord(t, s)
	if err := set.Validate(); err != nil {
		t.Fatalf("trace set invalid: %v", err)
	}

	ps, err := NewPredictSession(set, predictor.Config{})
	if err != nil {
		t.Fatalf("NewPredictSession: %v", err)
	}
	if ps.Mode() != ModePredict {
		t.Fatalf("mode = %v", ps.Mode())
	}
	preg := ps.Registry()
	if preg.Lookup("phaseA") != a || preg.Lookup("barrier") != c {
		t.Fatal("registry ids not preserved across record/predict")
	}

	pt := ps.Thread(0)
	pt.StartAtBeginning()
	for i, e := range seq {
		pred, ok := pt.PredictAt(1)
		if !ok {
			t.Fatalf("step %d: no prediction", i)
		}
		if pred.EventID != int32(e) {
			t.Fatalf("step %d: predicted %d, actual %d", i, pred.EventID, e)
		}
		pt.Submit(e)
	}
}

func TestConcurrentThreadsRecord(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	reg := s.Registry()
	a := reg.Intern("phaseA")
	b := reg.Intern("phaseB")
	c := reg.Intern("barrier")
	var wg sync.WaitGroup
	const nThreads = 8
	for tid := int32(0); tid < nThreads; tid++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			th := s.Thread(tid)
			for _, e := range appSequence(a, b, c) {
				th.Submit(e)
			}
		}(tid)
	}
	wg.Wait()
	set := mustFinishRecord(t, s)
	if err := set.Validate(); err != nil {
		t.Fatalf("trace set invalid: %v", err)
	}
	if len(set.Threads) != nThreads {
		t.Fatalf("recorded %d threads, want %d", len(set.Threads), nThreads)
	}
	if got := set.TotalEvents(); got != int64(nThreads*len(appSequence(a, b, c))) {
		t.Fatalf("TotalEvents = %d", got)
	}
	ids := set.ThreadIDs()
	if len(ids) != nThreads || ids[0] != 0 || ids[nThreads-1] != nThreads-1 {
		t.Fatalf("ThreadIDs = %v", ids)
	}
}

// TestConcurrentThreadDispatchRace hammers Session.Thread from many
// goroutines with overlapping tids so that lock-free snapshot readers race
// against copy-on-write creators (and creators race each other). Every
// goroutine must observe the same handle per tid; run under -race this also
// checks the snapshot publication itself.
func TestConcurrentThreadDispatchRace(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	const nGoroutines = 16
	const nTids = 32
	const lookups = 2000
	handles := make([][nTids]*Thread, nGoroutines)
	var wg sync.WaitGroup
	for g := 0; g < nGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				tid := int32((i*7 + g) % nTids)
				th := s.Thread(tid)
				if th.TID() != tid {
					t.Errorf("goroutine %d: Thread(%d) returned handle for %d", g, tid, th.TID())
					return
				}
				if prev := handles[g][tid]; prev != nil && prev != th {
					t.Errorf("goroutine %d: Thread(%d) changed identity", g, tid)
					return
				}
				handles[g][tid] = th
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < nGoroutines; g++ {
		for tid := 0; tid < nTids; tid++ {
			if handles[g][tid] != handles[0][tid] {
				t.Fatalf("goroutines 0 and %d saw different handles for tid %d", g, tid)
			}
		}
	}
	if got := len(*s.threads.Load()); got != nTids {
		t.Fatalf("snapshot holds %d threads, want %d", got, nTids)
	}
}

func TestPredictSessionMissingThread(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	a := s.Registry().Intern("x")
	th := s.Thread(0)
	th.Submit(a)
	th.Submit(a)
	set := mustFinishRecord(t, s)

	ps, err := NewPredictSession(set, predictor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Thread 7 was never recorded: its handle must be inert.
	pt := ps.Thread(7)
	pt.Submit(a)
	if _, ok := pt.PredictAt(1); ok {
		t.Fatal("prediction from a thread without a reference trace")
	}
	if pt.Predictor() != nil || pt.Recorder() != nil {
		t.Fatal("unexpected backing state for unknown thread")
	}
}

func TestThreadHandleIdentity(t *testing.T) {
	s := NewRecordSession()
	if s.Thread(3) != s.Thread(3) {
		t.Fatal("Thread not idempotent")
	}
	if s.Thread(3).TID() != 3 {
		t.Fatal("TID mismatch")
	}
}

func TestFinishRecordPanicsOnPredictSession(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	a := s.Registry().Intern("x")
	th := s.Thread(0)
	th.Submit(a)
	th.Submit(a)
	set := mustFinishRecord(t, s)
	ps, err := NewPredictSession(set, predictor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.FinishRecord(); err == nil {
		t.Fatal("FinishRecord on predict session did not return an error")
	}
}

func TestModeString(t *testing.T) {
	if ModeRecord.String() != "record" || ModePredict.String() != "predict" {
		t.Fatal("Mode.String broken")
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode renders empty")
	}
}

func TestTotalEventsDuringRecord(t *testing.T) {
	s := NewRecordSession(WithRecorderOptions(recorder.WithoutTimestamps()))
	a := s.Registry().Intern("x")
	th := s.Thread(0)
	for i := 0; i < 10; i++ {
		th.Submit(a)
	}
	if n := s.TotalEvents(); n != 10 {
		t.Fatalf("TotalEvents = %d, want 10", n)
	}
}

func TestSubmitAtVirtualTimestamps(t *testing.T) {
	s := NewRecordSession() // timestamps on by default
	a := s.Registry().Intern("x")
	b := s.Registry().Intern("y")
	th := s.Thread(0)
	var now int64
	for i := 0; i < 20; i++ {
		th.SubmitAt(a, now)
		now += 50
		th.SubmitAt(b, now)
		now += 150
	}
	set := mustFinishRecord(t, s)
	tr := set.Trace(0)
	if tr.Timing == nil {
		t.Fatal("no timing model")
	}
	if m := tr.Timing.ByEvent[int32(b)].Mean(); m < 49 || m > 51 {
		t.Fatalf("mean before y = %v, want ~50", m)
	}
}
