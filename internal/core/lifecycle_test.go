package core

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/tracefile"
)

// fastLearn is a small, quick-converging policy for tests.
func fastLearn() LearnPolicy {
	return LearnPolicy{
		EpochEvents:      64,
		PromoteEpochs:    2,
		PromoteMarginPct: 5,
		WatchEpochs:      3,
		CooldownEpochs:   2,
	}
}

// recordPattern builds a reference trace set of reps repetitions of the
// named event pattern on thread 0.
func recordPattern(t *testing.T, pattern []string, reps int) *model.TraceSet {
	t.Helper()
	s := NewRecordSession(WithRecorderOptions())
	th := s.Thread(0)
	for i := 0; i < reps; i++ {
		for _, name := range pattern {
			th.Submit(s.Registry().Intern(name))
		}
	}
	return mustFinishRecord(t, s)
}

// internPattern interns the named events and returns their ids.
func internPattern(s *Session, pattern []string) []int32 {
	out := make([]int32, len(pattern))
	for i, name := range pattern {
		out[i] = int32(s.Registry().Intern(name))
	}
	return out
}

func idOf(id int32) events.ID { return events.ID(id) }

// genPath is the journal file of generation gen in dir.
func genPath(dir string, gen uint64) string {
	return filepath.Join(dir, tracefile.GenPrefix+strconv.FormatUint(gen, 10))
}

func TestLifecycleStateMachine(t *testing.T) {
	pol := LearnPolicy{EpochEvents: 100, PromoteEpochs: 3, PromoteMarginPct: 10, WatchEpochs: 2, CooldownEpochs: 3}
	m := newLifecycle(pol)

	// Two wins then a loss: streak resets, no promotion.
	if a := m.observeEpoch(10, 90, 100); a != actNone {
		t.Fatalf("win 1: %v", a)
	}
	if a := m.observeEpoch(10, 90, 100); a != actNone {
		t.Fatalf("win 2: %v", a)
	}
	if a := m.observeEpoch(90, 10, 100); a != actNone {
		t.Fatalf("loss: %v", a)
	}
	// A marginal win below the margin does not count.
	if a := m.observeEpoch(50, 55, 100); a != actNone || m.streak != 0 {
		t.Fatalf("sub-margin win: %v streak=%d", a, m.streak)
	}
	// Three consecutive wins promote.
	m.observeEpoch(10, 90, 100)
	m.observeEpoch(10, 90, 100)
	if a := m.observeEpoch(10, 90, 100); a != actPromote {
		t.Fatalf("win 3: %v", a)
	}
	if !m.watching {
		t.Fatal("not watching after promotion")
	}
	// In the watch window the roles reverse: the rival is the previous
	// generation; a rival win is a regression.
	if a := m.observeEpoch(10, 90, 100); a != actRollback {
		t.Fatalf("regression: %v", a)
	}
	if m.watching || m.cooldown != 3 {
		t.Fatalf("after rollback: watching=%v cooldown=%d", m.watching, m.cooldown)
	}
	// Cooldown suppresses promotion even on clear wins.
	for i := 0; i < 3; i++ {
		if a := m.observeEpoch(0, 100, 100); a != actNone {
			t.Fatalf("cooldown epoch %d: %v", i, a)
		}
	}
	// Cooldown over: wins count again.
	m.observeEpoch(0, 100, 100)
	m.observeEpoch(0, 100, 100)
	if a := m.observeEpoch(0, 100, 100); a != actPromote {
		t.Fatalf("post-cooldown promotion: %v", a)
	}
	// This time the watch window expires quietly.
	if a := m.observeEpoch(90, 10, 100); a != actNone {
		t.Fatalf("watch 1: %v", a)
	}
	if a := m.observeEpoch(90, 10, 100); a != actNone {
		t.Fatalf("watch 2: %v", a)
	}
	if m.watching {
		t.Fatal("watch window did not expire")
	}
	// Empty epochs are ignored.
	if a := m.observeEpoch(0, 0, 0); a != actNone {
		t.Fatalf("empty epoch: %v", a)
	}
}

func TestLineageLedger(t *testing.T) {
	seed := &model.TraceSet{}
	cand := &model.TraceSet{}
	l := newLineage(seed, 1)
	if l.serving.num != 1 || l.serving.kind != model.ProvCheckpoint {
		t.Fatalf("seed: %+v", l.serving)
	}
	if _, err := l.rollback(2); err == nil {
		t.Fatal("rollback without a previous generation must fail")
	}
	g, err := l.promote(2, cand)
	if err != nil || g.num != 2 || g.parent != 1 || g.kind != model.ProvPromotion {
		t.Fatalf("promote: %+v err=%v", g, err)
	}
	if got := l.retained(); len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("retained: %v", got)
	}
	// Non-monotonic mints are rejected.
	if _, err := l.promote(2, cand); err == nil {
		t.Fatal("promote at serving number must fail")
	}
	rb, err := l.rollback(3)
	if err != nil || rb.num != 3 || rb.parent != 2 || rb.kind != model.ProvRollback || rb.ts != seed {
		t.Fatalf("rollback: %+v err=%v", rb, err)
	}
	if l.previous != nil {
		t.Fatal("rollback must clear the rollback target")
	}
	if l.next != 4 {
		t.Fatalf("next = %d", l.next)
	}
}

// driveLearning submits reps repetitions of pattern on thread 0 and polls
// cond between repetitions, returning true as soon as it holds.
func driveLearning(s *Session, pattern []int32, reps int, cond func() bool) bool {
	th := s.Thread(0)
	for i := 0; i < reps; i++ {
		for _, id := range pattern {
			th.Submit(idOf(id))
		}
		if i%8 == 0 && cond() {
			return true
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

func TestLearningPromotesOnDrift(t *testing.T) {
	patternA := []string{"a", "b", "c", "d"}
	patternB := []string{"d", "c", "b", "a"}
	ref := recordPattern(t, patternA, 200)

	s, err := NewLearningSession(ref, predictor.Config{}, fastLearn())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Mode() != ModeOnline {
		t.Fatalf("mode = %v", s.Mode())
	}
	mi := s.ModelInfo()
	if !mi.Enabled || mi.State != "learning" || mi.ServingGeneration != 1 {
		t.Fatalf("initial ModelInfo: %+v", mi)
	}

	// The workload drifts to pattern B: the shadow must out-predict the
	// frozen serving model and get promoted.
	ids := internPattern(s, patternB)
	promoted := driveLearning(s, ids, 4000, func() bool {
		return s.ModelInfo().Promotions >= 1
	})
	if !promoted {
		t.Fatalf("no promotion after drift: %+v", s.ModelInfo())
	}
	mi = s.ModelInfo()
	if mi.ServingGeneration < 2 {
		t.Fatalf("serving generation after promotion: %+v", mi)
	}
	if h := s.Health(); h.Promotions < 1 {
		t.Fatalf("health promotions: %+v", h)
	}

	// Keep the drifted workload flowing so the watch window expires without
	// a rollback, then verify the promoted model predicts pattern B.
	driveLearning(s, ids, 1000, func() bool { return s.ModelInfo().State == "learning" })
	if mi := s.ModelInfo(); mi.Rollbacks != 0 {
		t.Fatalf("unexpected rollback: %+v", mi)
	}
	th := s.Thread(0)
	correct, total := 0, 0
	for i := 0; i < 200; i++ {
		for _, id := range ids {
			if pred, ok := th.PredictAt(1); ok {
				total++
				if pred.EventID == id {
					correct++
				}
			}
			th.Submit(idOf(id))
		}
	}
	if total == 0 || correct*100 < total*90 {
		t.Fatalf("post-promotion accuracy on drifted workload: %d/%d", correct, total)
	}
}

func TestForcedPromotionRollsBack(t *testing.T) {
	patternA := []string{"a", "b", "c", "d"}
	patternB := []string{"d", "c", "b", "a"}
	ref := recordPattern(t, patternA, 200)

	s, err := NewLearningSession(ref, predictor.Config{}, fastLearn())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Promote(); err == nil {
		t.Fatal("Promote with no shadow candidate must fail")
	}
	if _, err := s.Rollback(); err == nil {
		t.Fatal("Rollback with no previous generation must fail")
	}

	// Feed pattern B long enough for a shadow snapshot, then force-promote
	// the immature B model.
	idsB := internPattern(s, patternB)
	driveLearning(s, idsB, 100, func() bool {
		gen, perr := s.Promote()
		if perr != nil {
			return false
		}
		if gen < 2 {
			t.Errorf("forced promotion minted generation %d", gen)
		}
		return true
	})
	mi := s.ModelInfo()
	if mi.Promotions < 1 || mi.State != "watching" {
		t.Fatalf("after forced promotion: %+v", mi)
	}

	// The workload reverts to pattern A: the previous generation (the A
	// model) out-predicts the promoted B model inside the watch window, so
	// the lifecycle must roll back automatically.
	idsA := internPattern(s, patternA)
	rolledBack := driveLearning(s, idsA, 4000, func() bool {
		return s.ModelInfo().Rollbacks >= 1
	})
	if !rolledBack {
		t.Fatalf("no automatic rollback: %+v health=%+v", s.ModelInfo(), s.Health())
	}

	h := s.Health()
	if h.Rollbacks < 1 || h.State != StateDegraded {
		t.Fatalf("health after rollback: %+v", h)
	}
	if !strings.Contains(h.Cause, "rollback") {
		t.Fatalf("rollback cause not latched: %q", h.Cause)
	}
}

func TestLearningJournalLineage(t *testing.T) {
	patternA := []string{"a", "b", "c", "d"}
	patternB := []string{"d", "c", "b", "a"}
	ref := recordPattern(t, patternA, 200)
	dir := t.TempDir()

	pol := fastLearn()
	pol.Dir = dir
	pol.Keep = 8
	s, err := NewLearningSession(ref, predictor.Config{}, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Seed generation must be durable before anything else happens.
	sts, err := tracefile.ScanJournal(dir)
	if err != nil || len(sts) != 1 || sts[0].Generation != 1 || sts[0].Err != "" {
		t.Fatalf("seed journal: %+v err=%v", sts, err)
	}

	idsB := internPattern(s, patternB)
	promoted := driveLearning(s, idsB, 4000, func() bool {
		return s.ModelInfo().Promotions >= 1
	})
	if !promoted {
		t.Fatalf("no promotion: %+v", s.ModelInfo())
	}
	gen := s.ModelInfo().ServingGeneration

	ts, err := tracefile.Load(genPath(dir, gen))
	if err != nil {
		t.Fatal(err)
	}
	p := ts.Provenance
	if p == nil || p.Kind != model.ProvPromotion || p.Generation != gen || p.Parent != 1 || p.UnixNanos == 0 {
		t.Fatalf("promotion provenance: %+v", p)
	}

	// Forced rollback mints a fresh, journaled generation with rollback
	// provenance pointing at the regressed one.
	rbGen, err := s.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if rbGen <= gen {
		t.Fatalf("rollback generation %d not past %d", rbGen, gen)
	}
	ts, err = tracefile.Load(genPath(dir, rbGen))
	if err != nil {
		t.Fatal(err)
	}
	p = ts.Provenance
	if p == nil || p.Kind != model.ProvRollback || p.Parent != gen {
		t.Fatalf("rollback provenance: %+v", p)
	}

	// Crash recovery lands on the newest committed generation.
	rec, rep, err := tracefile.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Used.Generation != rbGen || !rec.Provenance.Salvaged || rec.Provenance.Kind != model.ProvRollback {
		t.Fatalf("recover: used=%+v prov=%+v", rep.Used, rec.Provenance)
	}
}

func TestLearningSessionGuards(t *testing.T) {
	ref := recordPattern(t, []string{"a", "b"}, 50)
	if _, err := NewLearningSession(ref, predictor.Config{}, LearnPolicy{},
		WithCheckpoint(CheckpointPolicy{Dir: t.TempDir()})); err == nil {
		t.Fatal("learning session must reject WithCheckpoint")
	}

	// Frozen sessions answer lifecycle calls inertly.
	ps, err := NewPredictSession(ref, predictor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if mi := ps.ModelInfo(); mi.Enabled || mi.State != "frozen" {
		t.Fatalf("frozen ModelInfo: %+v", mi)
	}
	if _, err := ps.Promote(); err == nil {
		t.Fatal("Promote on a frozen session must fail")
	}
	if _, err := ps.Rollback(); err == nil {
		t.Fatal("Rollback on a frozen session must fail")
	}

	// Close is idempotent and joins the manager.
	ls, err := NewLearningSession(ref, predictor.Config{}, LearnPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	ls.Close()
	ls.Close()
}
