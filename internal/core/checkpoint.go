package core

// Crash-safe recording (this file): a record-mode session can journal
// incremental checkpoints of its in-progress trace so that a process death
// (OOM kill, walltime limit, node failure) loses at most one checkpoint
// interval instead of the whole reference execution.
//
// The hot path stays hot: each recording thread takes a cheap consistent
// snapshot of its own state every EveryEvents events (a grammar Freeze on
// the only goroutine allowed to touch the live grammar — no locks, no
// stop-the-world) and hands it to the session checkpointer, which does all
// expensive work (timing-model replay, encoding, fsync'd writes, rotation)
// on one background goroutine. Write failures are retried with backoff and
// then surfaced as Degraded health — recording itself continues unharmed;
// the checkpointer never panics the host and never stalls a Submit.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/recorder"
	"repro/internal/tracefile"
)

// CheckpointPolicy configures crash-safe journaled checkpoints of a
// recording session. The zero Dir disables checkpointing.
type CheckpointPolicy struct {
	// Dir is the journal directory (created if missing). Checkpoint
	// generations are written as Dir/trace.ckpt.<N>; recover them with
	// tracefile.Recover after a crash.
	Dir string
	// EveryEvents is the per-thread snapshot cadence in events, and —
	// when set — the write trigger: a new generation is written as soon
	// as any thread delivers a fresh snapshot. Zero selects the default
	// cadence (DefaultCheckpointEvents) with writes driven by Interval
	// alone.
	EveryEvents int64
	// Interval, when non-zero, writes a generation at this wall-clock
	// period (provided anything changed since the previous one).
	Interval time.Duration
	// Keep is the number of generations retained (tracefile.DefaultKeep
	// when zero or negative).
	Keep int
}

// DefaultCheckpointEvents is the per-thread snapshot cadence used when a
// policy enables checkpointing without choosing EveryEvents: frequent
// enough that an Interval-driven write always finds fresh state, rare
// enough that the Freeze cost disappears in the noise.
const DefaultCheckpointEvents = 4096

// enabled reports whether the policy asks for checkpointing at all.
func (p CheckpointPolicy) enabled() bool { return p.Dir != "" }

// snapEvery returns the per-thread snapshot cadence to install.
func (p CheckpointPolicy) snapEvery() int64 {
	if p.EveryEvents > 0 {
		return p.EveryEvents
	}
	return DefaultCheckpointEvents
}

// ckptEntry is the latest snapshot offered by one recording thread. seq
// orders offers so the materialization cache can tell fresh from stale.
type ckptEntry struct {
	snap recorder.Checkpoint
	seq  uint64
}

// matEntry caches the materialized artifact of one snapshot: flush only
// re-runs the timing replay for threads that actually advanced.
type matEntry struct {
	seq uint64
	tt  *model.ThreadTrace
}

// checkpointer owns the journal and the background write loop of one
// recording session.
type checkpointer struct {
	sess *Session
	pol  CheckpointPolicy
	j    *tracefile.Journal

	// mu guards the offer side: latest per-thread snapshots and the dirty
	// mark. Offers come from recording threads, reads from flushes.
	mu    sync.Mutex
	snaps map[int32]ckptEntry
	seq   uint64
	dirty bool

	// flushMu serializes flushes (the background loop and CheckpointNow).
	flushMu sync.Mutex
	mat     map[int32]matEntry

	notify    chan struct{} // event-count write trigger (cap 1)
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// maxWriteAttempts and the backoff ladder bound how long one generation
// write may fight a failing filesystem before degrading.
const maxWriteAttempts = 3

var writeBackoff = [...]time.Duration{10 * time.Millisecond, 100 * time.Millisecond}

// maxWriteFailures is how many failed generations the loop tolerates
// before giving up on the journal for the rest of the session (a dead disk
// does not heal; hammering it would only burn cycles).
const maxWriteFailures = 2

// newCheckpointer opens the journal and starts the write loop. On journal
// open failure it returns nil after degrading the session health: the
// recording keeps working, it just is not crash-safe — exactly the
// fail-open contract.
func newCheckpointer(s *Session, pol CheckpointPolicy) *checkpointer {
	j, err := tracefile.OpenJournal(pol.Dir, pol.Keep)
	if err != nil {
		s.health.noteCheckpointFailure(err)
		return nil
	}
	c := &checkpointer{
		sess:   s,
		pol:    pol,
		j:      j,
		snaps:  make(map[int32]ckptEntry),
		mat:    make(map[int32]matEntry),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go c.run()
	return c
}

// offer records the latest snapshot of one thread and, when the policy
// writes on event count, nudges the background loop. Called from recording
// threads at their snapshot cadence — off the per-event hot path.
func (c *checkpointer) offer(tid int32, snap recorder.Checkpoint) {
	c.mu.Lock()
	c.seq++
	c.snaps[tid] = ckptEntry{snap: snap, seq: c.seq}
	c.dirty = true
	c.mu.Unlock()
	if c.pol.EveryEvents > 0 {
		select {
		case c.notify <- struct{}{}:
		default:
		}
	}
}

// run is the background write loop: it wakes on the event-count trigger
// and/or the wall-clock ticker, writes a generation when anything changed,
// and retires itself after persistent write failures or shutdown.
func (c *checkpointer) run() {
	defer close(c.done)
	var tick <-chan time.Time
	if c.pol.Interval > 0 {
		t := time.NewTicker(c.pol.Interval)
		defer t.Stop()
		tick = t.C
	}
	failures := 0
	for {
		select {
		case <-c.stop:
			// Final drain: a snapshot offered but not yet written is one
			// fsync away from durable — write it rather than drop it, so
			// the journal always covers the recording's tail at shutdown.
			if err := c.flush(); err != nil {
				c.sess.health.noteCheckpointFailure(err)
			}
			return
		case <-c.notify:
		case <-tick:
		}
		if err := c.flush(); err != nil {
			failures++
			c.sess.health.noteCheckpointFailure(err)
			if failures >= maxWriteFailures {
				return
			}
		}
	}
}

// flush writes one generation holding the latest snapshot of every thread,
// if anything changed since the previous generation. Threads whose
// snapshot did not advance reuse their cached materialized artifact.
func (c *checkpointer) flush() error {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()

	c.mu.Lock()
	if !c.dirty {
		c.mu.Unlock()
		return nil
	}
	c.dirty = false
	snaps := make(map[int32]ckptEntry, len(c.snaps))
	for tid, e := range c.snaps {
		snaps[tid] = e
	}
	c.mu.Unlock()
	if len(snaps) == 0 {
		return nil
	}

	threads := make(map[int32]*model.ThreadTrace, len(snaps))
	for tid, e := range snaps {
		if m, ok := c.mat[tid]; ok && m.seq == e.seq {
			threads[tid] = m.tt
			continue
		}
		tt := e.snap.Materialize()
		c.mat[tid] = matEntry{seq: e.seq, tt: tt}
		threads[tid] = tt
	}
	// The registry read happens after the snapshots were taken, so the
	// descriptor table is always a superset of the ids any grammar uses.
	ts := &model.TraceSet{Events: c.sess.reg.Names(), Threads: threads}

	var err error
	for attempt := 0; attempt < maxWriteAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-c.stop:
				return err
			case <-time.After(writeBackoff[attempt-1]):
			}
		}
		if _, err = c.j.WriteGeneration(ts); err == nil {
			return nil
		}
	}
	return fmt.Errorf("checkpoint write failed after %d attempts: %w", maxWriteAttempts, err)
}

// shutdownTimeout bounds how long FinishRecord waits for an in-flight
// checkpoint write — a hung filesystem must not stall the host runtime's
// shutdown path.
const shutdownTimeout = 5 * time.Second

// close stops the write loop and waits (bounded) for it to drain. Safe to
// call more than once (FinishRecord may be retried by a confused host).
func (c *checkpointer) close() {
	c.closeOnce.Do(func() { close(c.stop) })
	select {
	case <-c.done:
	case <-time.After(shutdownTimeout):
	}
}

// CheckpointNow synchronously writes a checkpoint generation from the
// latest per-thread snapshots, if any thread delivered one since the last
// generation. It exists for deterministic tests and for hosts that want a
// generation at a known boundary (e.g. the end of an application phase);
// steady-state checkpointing needs no manual calls. It is an error when
// checkpointing is not enabled on this session.
func (s *Session) CheckpointNow() error {
	if s.ckpt == nil {
		return fmt.Errorf("core: CheckpointNow on a session without checkpointing")
	}
	return s.ckpt.flush()
}

// CheckpointGeneration returns the generation number the next checkpoint
// write will use (diagnostics), or 0 when checkpointing is off.
func (s *Session) CheckpointGeneration() uint64 {
	if s.ckpt == nil {
		return 0
	}
	s.ckpt.flushMu.Lock()
	defer s.ckpt.flushMu.Unlock()
	return s.ckpt.j.NextGeneration()
}
