package core

// Fail-open reliability layer (this file). Pythia is advisory: the host
// runtime must keep working — at worst with its default heuristics — when
// the oracle misbehaves. Three mechanisms guarantee that:
//
//   - Panic containment: every exported method of the public handles
//     (pythia.Oracle, core.Thread) runs under a deferred Contain call. An
//     internal invariant panic is recovered, recorded as the first failure
//     cause, and flips the session into the failed state: from then on
//     Submit is a cheap no-op and Predict* answer ok=false. The host
//     runtime never sees the panic.
//   - Resource budgets (recorder package): a breached grammar/event budget
//     freezes the grammar instead of growing without bound; the breach is
//     surfaced here as a Degraded state with a cause.
//   - Divergence watchdog (predictor package): a windowed accuracy floor
//     self-quarantines the predict path; quarantine is entered and left
//     automatically and surfaced here as a Quarantined state.
//
// Health() aggregates all three into one snapshot the runtime can poll.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// State is the oracle's degradation state.
type State int32

const (
	// StateHealthy: no contained panic, no budget breach, no quarantined
	// thread. The oracle answers normally.
	StateHealthy State = iota
	// StateDegraded: the oracle failed open — an internal panic was
	// contained (all submissions become no-ops and predictions return
	// ok=false) or a record-mode resource budget was breached (the
	// affected grammars are frozen; the trace will be marked truncated).
	StateDegraded
	// StateQuarantined: the divergence watchdog pulled predictions on at
	// least one thread because the windowed accuracy dropped below the
	// configured floor. Tracking continues and the state clears itself
	// when accuracy returns.
	StateQuarantined
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Health is one consistent snapshot of the oracle's reliability state.
type Health struct {
	// State is the aggregate degradation state: Degraded dominates (it is
	// sticky), then Quarantined (self-clearing), then Healthy.
	State State
	// Cause describes the first failure ("" while healthy): the recovered
	// panic value and method for containment, the breached budget for
	// record-mode degradation.
	Cause string
	// PanicsContained counts internal panics recovered by the containment
	// wrappers. Any non-zero value means the oracle found a bug in itself
	// and failed open.
	PanicsContained int64
	// BudgetBreaches counts threads whose record-mode resource budget was
	// breached (their grammars are frozen and traces marked truncated).
	BudgetBreaches int64
	// QuarantinedThreads counts threads currently held back by the
	// divergence watchdog.
	QuarantinedThreads int64
	// CheckpointFailures counts crash-safe checkpoint generations that
	// could not be written (after bounded retries). Recording itself is
	// unaffected — the in-memory trace stays valid and FinishRecord still
	// works — but the run has reduced crash tolerance, which is a Degraded
	// condition worth surfacing.
	CheckpointFailures int64
	// Promotions counts shadow models promoted to serving by the online
	// learning lifecycle (scored or forced).
	Promotions int64
	// Rollbacks counts promotions undone because the promoted model
	// regressed against the previous generation (or an operator forced it).
	// Latched: any non-zero value marks the session Degraded with the
	// rollback as cause — a model that had to be taken back out of service
	// is a reliability event the operator should see, even though serving
	// continued uninterrupted on the restored generation.
	Rollbacks int64
}

// health is the session-wide failure accounting. Counters are atomics:
// they are bumped from Thread methods (single-goroutine each, but many
// threads) and read by Health() from any goroutine.
type health struct {
	failed      atomic.Bool // a panic was contained: fail-open everything
	panics      atomic.Int64
	breaches    atomic.Int64
	quarantined atomic.Int64
	ckptFails   atomic.Int64
	promotions  atomic.Int64
	rollbacks   atomic.Int64

	mu        sync.Mutex
	cause     string // first failure, immutable once hard
	causeSoft bool   // cause came from a self-clearing condition (quarantine)
}

// noteCause records the first failure description (later ones are dropped:
// the first failure is the one worth reporting, everything after may be
// fallout). A soft cause — from a self-clearing condition like watchdog
// quarantine — only fills an empty slot and yields to the first hard cause,
// so a transient quarantine cannot permanently mask the report of a real
// degradation (a contained panic, a breached budget, a model rollback).
func (h *health) noteCause(cause string) {
	h.mu.Lock()
	if h.cause == "" || h.causeSoft {
		h.cause = cause
		h.causeSoft = false
	}
	h.mu.Unlock()
}

// noteCauseSoft records a self-clearing condition as the cause only while
// nothing harder has been reported.
func (h *health) noteCauseSoft(cause string) {
	h.mu.Lock()
	if h.cause == "" {
		h.cause = cause
		h.causeSoft = true
	}
	h.mu.Unlock()
}

// notePanic records a contained panic and flips the session to fail-open.
func (h *health) notePanic(method string, v any) {
	h.panics.Add(1)
	h.failed.Store(true)
	h.noteCause(fmt.Sprintf("panic in %s: %v", method, v))
}

// noteBreach records one thread's record-budget breach.
func (h *health) noteBreach(tid int32, cause string) {
	h.breaches.Add(1)
	h.noteCause(fmt.Sprintf("thread %d record budget breached: %s", tid, cause))
}

// noteQuarantine records one thread entering (on=true) or leaving the
// divergence-watchdog quarantine.
func (h *health) noteQuarantine(tid int32, on bool) {
	if on {
		h.quarantined.Add(1)
		h.noteCauseSoft(fmt.Sprintf("thread %d quarantined by divergence watchdog", tid))
		return
	}
	h.quarantined.Add(-1)
}

// noteCheckpointFailure records a checkpoint generation that could not be
// written durably. Deliberately NOT fail-open: the recording in memory is
// intact; only crash tolerance is lost.
func (h *health) noteCheckpointFailure(err error) {
	h.ckptFails.Add(1)
	h.noteCause(fmt.Sprintf("checkpoint write failed: %v", err))
}

// notePromotion records a shadow-model promotion. Promotions are healthy
// operation — only the counter moves.
func (h *health) notePromotion() {
	h.promotions.Add(1)
}

// noteRollback records a promotion rolled back after regressing in
// production: counter plus latched cause. Like a checkpoint failure it is
// NOT fail-open — serving continues on the restored generation.
func (h *health) noteRollback(cause string) {
	h.rollbacks.Add(1)
	h.noteCause(cause)
}

// Contain is the deferred recover wrapper every exported Oracle/Thread
// method routes through (enforced by the pythia-vet containment analyzer):
// it recovers an in-flight panic and fails the session open. It must be
// invoked directly by a defer statement — recover only works one frame up.
func (s *Session) Contain(method string) {
	if r := recover(); r != nil {
		s.health.notePanic(method, r)
	}
}

// ContainTo is Contain for error-returning methods: besides recovering and
// degrading, it surfaces the contained panic as the method's error so a
// caller of Finish-style APIs is not handed a silent nil result.
func (s *Session) ContainTo(method string, errp *error) {
	if r := recover(); r != nil {
		s.health.notePanic(method, r)
		if errp != nil && *errp == nil {
			*errp = fmt.Errorf("pythia: internal panic in %s (oracle degraded): %v", method, r)
		}
	}
}

// Failed reports whether a panic was contained: the fail-open fast path
// checked at the top of every state-mutating method.
// pythia:hotpath — one atomic load per Submit.
func (s *Session) Failed() bool { return s.health.failed.Load() }

// InjectFailure marks the session failed as if a panic had been contained
// in method. It exists for fault-injection harnesses and tests that need to
// drive the oracle into the Degraded state deterministically; runtimes have
// no reason to call it.
func (s *Session) InjectFailure(method string, v any) {
	s.health.notePanic(method, v)
}

// Health returns a snapshot of the session's reliability state.
func (s *Session) Health() Health {
	h := Health{
		PanicsContained:    s.health.panics.Load(),
		BudgetBreaches:     s.health.breaches.Load(),
		QuarantinedThreads: s.health.quarantined.Load(),
		CheckpointFailures: s.health.ckptFails.Load(),
		Promotions:         s.health.promotions.Load(),
		Rollbacks:          s.health.rollbacks.Load(),
	}
	s.health.mu.Lock()
	h.Cause = s.health.cause
	s.health.mu.Unlock()
	switch {
	case s.health.failed.Load() || h.BudgetBreaches > 0 || h.CheckpointFailures > 0 || h.Rollbacks > 0:
		h.State = StateDegraded
	case h.QuarantinedThreads > 0:
		h.State = StateQuarantined
	default:
		h.State = StateHealthy
	}
	return h
}
