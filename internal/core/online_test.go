package core

import (
	"testing"

	"repro/internal/events"
	"repro/internal/predictor"
)

func buildReference(t *testing.T) *Session {
	t.Helper()
	s := NewRecordSession()
	a := s.Registry().Intern("a")
	b := s.Registry().Intern("b")
	th := s.Thread(0)
	var now int64
	for i := 0; i < 100; i++ {
		th.SubmitAt(a, now)
		now += 10
		th.SubmitAt(b, now)
		now += 20
	}
	return s
}

func TestOnlineSessionPredictsAndRecords(t *testing.T) {
	ref := mustFinishRecord(t, buildReference(t))

	on, err := NewOnlineSession(ref, predictor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if on.Mode() != ModeOnline || on.Mode().String() != "online" {
		t.Fatalf("mode = %v", on.Mode())
	}
	a := on.Registry().Lookup("a")
	b := on.Registry().Lookup("b")
	th := on.Thread(0)
	th.StartAtBeginning()

	var now int64
	correct, total := 0, 0
	for i := 0; i < 100; i++ {
		for _, e := range []events.ID{a, b} {
			if pred, ok := th.PredictAt(1); ok {
				total++
				if pred.EventID == int32(e) {
					correct++
				}
			}
			th.SubmitAt(e, now)
			now += 15
		}
	}
	if total == 0 || correct != total {
		t.Fatalf("online prediction accuracy %d/%d", correct, total)
	}

	// The session also recorded the fresh execution.
	fresh := mustFinishRecord(t, on)
	if fresh.Threads[0].Grammar.EventCount != 200 {
		t.Fatalf("fresh trace has %d events, want 200", fresh.Threads[0].Grammar.EventCount)
	}
	if fresh.Threads[0].Timing == nil {
		t.Fatal("fresh trace lost its timing model")
	}
}

func TestOnlineSessionNewEventsExtendRegistry(t *testing.T) {
	ref := mustFinishRecord(t, buildReference(t))
	on, err := NewOnlineSession(ref, predictor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A brand-new event must get an id beyond the reference table.
	nu := on.Registry().Intern("brand-new")
	if int(nu) < len(ref.Events) {
		t.Fatalf("new event id %d collides with reference table (%d entries)", nu, len(ref.Events))
	}
	th := on.Thread(0)
	th.Submit(on.Registry().Lookup("a"))
	th.Submit(nu) // unexpected for the predictor, recorded all the same
	th.Submit(on.Registry().Lookup("b"))
	fresh := mustFinishRecord(t, on)
	if fresh.Threads[0].Grammar.EventCount != 3 {
		t.Fatalf("events = %d, want 3", fresh.Threads[0].Grammar.EventCount)
	}
	if fresh.Events[nu] != "brand-new" {
		t.Fatalf("descriptor table not extended: %v", fresh.Events)
	}
}

func TestMergeTiming(t *testing.T) {
	oldTS := mustFinishRecord(t, buildReference(t))
	freshTS := mustFinishRecord(t, buildReference(t))

	beforeCount := freshTS.Threads[0].Timing.ByEvent[0].Count
	merged := MergeTiming(freshTS, oldTS)
	if merged != 1 {
		t.Fatalf("merged = %d threads, want 1", merged)
	}
	afterCount := freshTS.Threads[0].Timing.ByEvent[0].Count
	if afterCount != 2*beforeCount {
		t.Fatalf("sample count %d, want %d", afterCount, 2*beforeCount)
	}
}

func TestMergeTimingSkipsChangedStructure(t *testing.T) {
	oldTS := mustFinishRecord(t, buildReference(t))

	// A structurally different execution.
	s := NewRecordSession()
	x := s.Registry().Intern("x")
	th := s.Thread(0)
	var now int64
	for i := 0; i < 10; i++ {
		th.SubmitAt(x, now)
		now += 5
	}
	freshTS := mustFinishRecord(t, s)

	if merged := MergeTiming(freshTS, oldTS); merged != 0 {
		t.Fatalf("merged %d threads despite structural change", merged)
	}
}
