//go:build unix

package transport

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Segment is an mmap'd shared-memory file: the client creates it, the
// server opens it by path (validated as untrusted input), and once both
// sides hold the mapping the creator unlinks it so a crash on either side
// leaves nothing behind.
type Segment struct {
	f     *os.File
	data  []byte
	path  string
	owner bool // creator: Close also unlinks
}

// CreateSegment makes a fresh segment file of exactly size bytes in dir
// (DefaultSegmentDir when empty), mode 0600, and maps it shared.
func CreateSegment(dir string, size int) (*Segment, error) {
	if size <= 0 || size > MaxSegment {
		return nil, fmt.Errorf("%w: segment size %d", ErrBadGeometry, size)
	}
	if dir == "" {
		dir = DefaultSegmentDir()
	}
	f, err := os.CreateTemp(dir, "pythia-shm-*")
	if err != nil {
		return nil, fmt.Errorf("transport: creating segment: %w", err)
	}
	if err := f.Truncate(int64(size)); err != nil {
		return nil, closeCleanup(f, true, fmt.Errorf("transport: sizing segment: %w", err))
	}
	data, err := mmap(f, size)
	if err != nil {
		return nil, closeCleanup(f, true, err)
	}
	return &Segment{f: f, data: data, path: f.Name(), owner: true}, nil
}

// OpenSegment maps a client-named segment file. The path is untrusted: it
// must be absolute, must not traverse a symlink at the final component
// (O_NOFOLLOW), and the opened file must be a regular file owned by this
// process's uid, mode 0600, of exactly the negotiated size — anything else
// is refused before a byte is mapped.
func OpenSegment(path string, size int) (*Segment, error) {
	if size <= 0 || size > MaxSegment {
		return nil, fmt.Errorf("%w: segment size %d", ErrBadGeometry, size)
	}
	if !filepath.IsAbs(path) {
		return nil, fmt.Errorf("transport: segment path %q is not absolute", path)
	}
	f, err := os.OpenFile(path, os.O_RDWR|syscall.O_NOFOLLOW, 0)
	if err != nil {
		return nil, fmt.Errorf("transport: opening segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, closeCleanup(f, false, fmt.Errorf("transport: segment stat: %w", err))
	}
	if !fi.Mode().IsRegular() {
		return nil, closeCleanup(f, false, fmt.Errorf("transport: segment %s is not a regular file", path))
	}
	if perm := fi.Mode().Perm(); perm != 0o600 {
		return nil, closeCleanup(f, false, fmt.Errorf("transport: segment %s has mode %o, want 0600", path, perm))
	}
	st, ok := fi.Sys().(*syscall.Stat_t)
	if !ok || int(st.Uid) != os.Getuid() {
		return nil, closeCleanup(f, false, fmt.Errorf("transport: segment %s is not owned by this user", path))
	}
	if fi.Size() != int64(size) {
		return nil, closeCleanup(f, false, fmt.Errorf("%w: segment file is %d bytes, negotiated %d", ErrBadSegment, fi.Size(), size))
	}
	data, err := mmap(f, size)
	if err != nil {
		return nil, closeCleanup(f, false, err)
	}
	return &Segment{f: f, data: data, path: path}, nil
}

func mmap(f *os.File, size int) ([]byte, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("transport: mmap: %w", err)
	}
	return data, nil
}

// closeCleanup folds teardown errors into err on a failed create/open.
func closeCleanup(f *os.File, unlink bool, err error) error {
	if cerr := f.Close(); cerr != nil {
		err = errors.Join(err, cerr)
	}
	if unlink {
		if rerr := os.Remove(f.Name()); rerr != nil && !os.IsNotExist(rerr) {
			err = errors.Join(err, rerr)
		}
	}
	return err
}

// Bytes is the mapped segment. It stays valid until Close.
func (s *Segment) Bytes() []byte { return s.data }

// Path is the segment file's path (the name that crosses the wire).
func (s *Segment) Path() string { return s.path }

// Unlink removes the segment file while keeping the mapping alive — the
// creator calls it once the peer confirms its own mapping, so the segment
// lives on only as anonymous shared pages and vanishes with the processes.
func (s *Segment) Unlink() error {
	if !s.owner {
		return nil
	}
	s.owner = false
	if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("transport: unlinking segment: %w", err)
	}
	return nil
}

// Close unmaps and closes the segment (and unlinks it if this side created
// it and never got to Unlink).
func (s *Segment) Close() error {
	var err error
	if s.data != nil {
		if merr := syscall.Munmap(s.data); merr != nil {
			err = fmt.Errorf("transport: munmap: %w", merr)
		}
		s.data = nil
	}
	if s.f != nil {
		if cerr := s.f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		s.f = nil
	}
	if s.owner {
		s.owner = false
		if rerr := os.Remove(s.path); rerr != nil && !os.IsNotExist(rerr) {
			err = errors.Join(err, rerr)
		}
	}
	return err
}
