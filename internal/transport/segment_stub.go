//go:build !unix

package transport

import "errors"

// ErrShmUnsupported gates the shared-memory tier on platforms without
// mmap'd file mappings; callers fall back to the socket tiers.
var ErrShmUnsupported = errors.New("transport: shared memory not supported on this platform")

// Segment is unavailable on non-unix platforms; every constructor fails
// with ErrShmUnsupported and the socket tiers carry the traffic.
type Segment struct{}

// CreateSegment always fails on this platform.
func CreateSegment(dir string, size int) (*Segment, error) { return nil, ErrShmUnsupported }

// OpenSegment always fails on this platform.
func OpenSegment(path string, size int) (*Segment, error) { return nil, ErrShmUnsupported }

// Bytes is never reachable (no constructor succeeds).
func (s *Segment) Bytes() []byte { return nil }

// Path is never reachable (no constructor succeeds).
func (s *Segment) Path() string { return "" }

// Unlink is never reachable (no constructor succeeds).
func (s *Segment) Unlink() error { return ErrShmUnsupported }

// Close is never reachable (no constructor succeeds).
func (s *Segment) Close() error { return ErrShmUnsupported }
