// Package transport implements pythiad's tiered client/server transports:
//
//	tier 1  TCP           — any host, the PR 5 baseline (~100 µs round trips)
//	tier 2  unix socket   — same host, same wire protocol, ~½ the latency
//	tier 3  shared memory — same host, co-located runtimes: per-thread
//	                        seqlock'd SPSC rings in an mmap'd segment,
//	                        zero syscalls on the steady-state Submit path
//
// The address syntax picks tiers 1 and 2 ("tcp://host:port" or a bare
// "host:port"; "unix:///path/to.sock"); tier 3 is negotiated *over* a tier-2
// control connection (the segment is useless without one — session setup,
// predictions, and error reporting stay on the socket). A client that fails
// shm negotiation falls back to the socket it already has; a client that
// cannot reach a unix socket dials TCP. Every tier speaks the same
// `internal/wire` protocol and produces bit-identical predictions.
//
// # Shared-memory segment layout
//
// One segment per connection, created by the client, attached by the server
// over the wire (wire.ShmSetup), unlinked after both sides hold the mapping:
//
//	offset 0    header (64 B): magic, version, rings, slots, predCap
//	offset 64   ring 0
//	...         ring i at 64 + i*ringSize
//
// Each ring serves one bound session (one runtime thread) and is laid out
// in cache-line-separated regions so the producer and consumer never write
// the same line:
//
//	+0    head    u64   consumer cursor (server writes, client reads)
//	+64   tail    u64   producer cursor (client writes, server reads)
//	+128  predSeq u64   seqlock word for the prediction slot (server writes)
//	+136  predCnt u64   published prediction count, seqlock-covered
//	+192  predData      predCap × 24 B  (3 words per prediction), 64-aligned
//	+...  idSlots       slots × 4 B event ids, 64-aligned
//
// The submit path is a classic SPSC ring: the producer writes an event id at
// tail&mask and release-stores tail+1; the consumer acquire-loads tail,
// decodes the whole run head..tail in one pass, and release-stores the new
// head. Full/empty is disambiguated by never letting tail-head exceed the
// slot count, so no slot is wasted and a tail that violates the invariant is
// proof of a torn or hostile writer (ErrRingCorrupt, never an out-of-range
// read: indices are masked). The prediction slot is a seqlock: the server
// bumps predSeq to odd, writes count+data, bumps to even; the client retries
// a bounded number of times and treats a torn read as "no prediction yet".
//
// Cross-process visibility relies only on sync/atomic loads/stores on
// naturally aligned words in the mapping, which on every Go platform are
// plain MOVs with the needed ordering — no futexes, no syscalls. Progress
// when a ring is full (producer) or empty (consumer) is bounded
// spin-then-park: a short Gosched burst, then escalating short sleeps.
//
// All geometry is validated as untrusted input (Geometry.Validate,
// MapRings): counts are bounded, slot counts must be powers of two, and
// every derived offset is checked against the actual segment length before
// a single byte is touched.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/predictor"
)

// Geometry bounds. A hostile peer can ask for at most MaxSegment bytes
// (checked before any allocation or mapping), and every count is bounded
// individually so their product cannot overflow.
const (
	MaxRings   = 256     // rings (bindable sessions) per segment
	MinSlots   = 64      // event-id slots per ring, lower bound
	MaxSlots   = 1 << 18 // event-id slots per ring, upper bound
	MaxPredCap = 1024    // predictions the slot can publish
	MaxSegment = 1 << 30 // total segment size cap (1 GiB)

	segMagic   uint64 = 0x50595448534d3031 // "PYTHSM01"
	segVersion uint32 = 1

	headerSize = 64
	cacheLine  = 64

	ringHeadOff = 0   // u64, consumer cursor
	ringTailOff = 64  // u64, producer cursor
	ringSeqOff  = 128 // u64, prediction seqlock
	ringCntOff  = 136 // u64, prediction count
	ringPredOff = 192 // predictions, 3 u64 words each

	predWords = 3 // words per published prediction
)

// Ring errors.
var (
	ErrBadGeometry = errors.New("transport: invalid ring geometry")
	ErrBadSegment  = errors.New("transport: segment does not match geometry")
	ErrRingCorrupt = errors.New("transport: ring cursor invariant violated")
)

// Geometry describes a segment's ring layout. It crosses the wire during
// shm negotiation, so every consumer treats it as untrusted input and must
// call Validate before deriving a single offset from it.
type Geometry struct {
	Rings   int // rings in the segment
	Slots   int // event-id slots per ring (power of two)
	PredCap int // predictions the per-ring slot can hold
}

// Validate bounds every field. The bounds guarantee SegmentSize fits in an
// int without overflow, so a validated geometry can be used for sizing.
func (g Geometry) Validate() error {
	if g.Rings < 1 || g.Rings > MaxRings {
		return fmt.Errorf("%w: %d rings (want 1..%d)", ErrBadGeometry, g.Rings, MaxRings)
	}
	if g.Slots < MinSlots || g.Slots > MaxSlots {
		return fmt.Errorf("%w: %d slots (want %d..%d)", ErrBadGeometry, g.Slots, MinSlots, MaxSlots)
	}
	if g.Slots&(g.Slots-1) != 0 {
		return fmt.Errorf("%w: %d slots (want a power of two)", ErrBadGeometry, g.Slots)
	}
	if g.PredCap < 1 || g.PredCap > MaxPredCap {
		return fmt.Errorf("%w: prediction capacity %d (want 1..%d)", ErrBadGeometry, g.PredCap, MaxPredCap)
	}
	if g.SegmentSize() > MaxSegment {
		return fmt.Errorf("%w: segment size %d exceeds %d", ErrBadGeometry, g.SegmentSize(), MaxSegment)
	}
	return nil
}

// align64 rounds n up to the next multiple of a cache line.
func align64(n int) int { return (n + cacheLine - 1) &^ (cacheLine - 1) }

// ringSize is the per-ring footprint of a validated-bounds geometry.
func (g Geometry) ringSize() int {
	return ringPredOff + align64(g.PredCap*predWords*8) + align64(g.Slots*4)
}

// SegmentSize is the exact segment length this geometry requires. With every
// field within its Validate bound the worst case is ~832 MiB, well inside
// int range; callers must still Validate before trusting the result.
func (g Geometry) SegmentSize() int { return headerSize + g.Rings*g.ringSize() }

// WriteHeader stamps the segment header. The caller (the segment creator)
// has already validated g and sized seg with SegmentSize.
func WriteHeader(seg []byte, g Geometry) {
	binary.LittleEndian.PutUint64(seg[0:], segMagic)
	binary.LittleEndian.PutUint32(seg[8:], segVersion)
	binary.LittleEndian.PutUint32(seg[12:], uint32(g.Rings))
	binary.LittleEndian.PutUint32(seg[16:], uint32(g.Slots))
	binary.LittleEndian.PutUint32(seg[20:], uint32(g.PredCap))
}

// ReadHeader decodes and validates the segment header against the
// wire-negotiated geometry — defense in depth: the segment a hostile client
// names must itself agree with the geometry it claimed.
func ReadHeader(seg []byte, want Geometry) error {
	if len(seg) < headerSize {
		return fmt.Errorf("%w: %d-byte segment has no header", ErrBadSegment, len(seg))
	}
	if binary.LittleEndian.Uint64(seg[0:]) != segMagic {
		return fmt.Errorf("%w: bad magic", ErrBadSegment)
	}
	if v := binary.LittleEndian.Uint32(seg[8:]); v != segVersion {
		return fmt.Errorf("%w: segment version %d, want %d", ErrBadSegment, v, segVersion)
	}
	if int(binary.LittleEndian.Uint32(seg[12:])) != want.Rings ||
		int(binary.LittleEndian.Uint32(seg[16:])) != want.Slots ||
		int(binary.LittleEndian.Uint32(seg[20:])) != want.PredCap {
		return fmt.Errorf("%w: header geometry disagrees with negotiated geometry", ErrBadSegment)
	}
	return nil
}

// Ring is one mapped SPSC ring plus its seqlock'd prediction slot. The
// producer side (TryPush) belongs to exactly one goroutine, the consumer
// side (ConsumeInto) to exactly one goroutine; PublishPredictions belongs to
// the consumer process and ReadPredictions to the producer process.
type Ring struct {
	head *uint64  // consumer cursor
	tail *uint64  // producer cursor
	seq  *uint64  // prediction seqlock word
	cnt  *uint64  // published prediction count
	pred []uint64 // prediction slot words, predWords per entry
	ids  []int32  // event-id slots
	mask uint64

	// consumed counts ids the consumer has decoded over the ring's
	// lifetime; it feeds subscription refresh cadence without another
	// shared-memory word. Consumer-goroutine-owned.
	consumed uint64
}

// MapRings validates g against the segment and returns its rings. Nothing
// is written; mapping an in-flight segment is safe on both sides.
func MapRings(seg []byte, g Geometry) ([]Ring, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(seg) != g.SegmentSize() {
		return nil, fmt.Errorf("%w: %d-byte segment, geometry needs %d", ErrBadSegment, len(seg), g.SegmentSize())
	}
	if uintptr(unsafe.Pointer(&seg[0]))&7 != 0 {
		return nil, fmt.Errorf("%w: segment base not 8-byte aligned", ErrBadSegment)
	}
	rings := make([]Ring, g.Rings)
	rs := g.ringSize()
	predBytes := align64(g.PredCap * predWords * 8)
	for i := range rings {
		base := headerSize + i*rs
		r := &rings[i]
		r.head = word64(seg, base+ringHeadOff)
		r.tail = word64(seg, base+ringTailOff)
		r.seq = word64(seg, base+ringSeqOff)
		r.cnt = word64(seg, base+ringCntOff)
		r.pred = unsafe.Slice((*uint64)(unsafe.Pointer(&seg[base+ringPredOff])), g.PredCap*predWords)
		r.ids = unsafe.Slice((*int32)(unsafe.Pointer(&seg[base+ringPredOff+predBytes])), g.Slots)
		r.mask = uint64(g.Slots) - 1
	}
	return rings, nil
}

// word64 returns an aligned *uint64 into b at off. The segment base is
// 8-byte aligned (checked in MapRings) and every word offset is a multiple
// of 8 by construction.
func word64(b []byte, off int) *uint64 {
	return (*uint64)(unsafe.Pointer(&b[off]))
}

// TryPush appends one event id; it reports false on a full ring. Single
// producer goroutine only. Zero syscalls, zero allocations.
// pythia:hotpath — per-event on the co-located client submit path.
func (r *Ring) TryPush(id int32) bool {
	tail := atomic.LoadUint64(r.tail)
	if tail-atomic.LoadUint64(r.head) > r.mask {
		return false
	}
	r.ids[tail&r.mask] = id
	atomic.StoreUint64(r.tail, tail+1)
	return true
}

// Pending reports how many pushed ids the consumer has not decoded yet.
// Either side may call it; the answer is naturally racy.
func (r *Ring) Pending() int {
	d := atomic.LoadUint64(r.tail) - atomic.LoadUint64(r.head)
	if d > r.mask+1 {
		return int(r.mask + 1)
	}
	return int(d)
}

// ConsumeInto decodes the ring's current run of event ids into buf in one
// pass — the server-side batch decode — and advances the consumer cursor.
// It returns the number decoded, or ErrRingCorrupt when the producer cursor
// violates the SPSC invariant (a torn or hostile writer); indices are
// masked, so even a corrupt cursor can never drive an out-of-range read.
// Single consumer goroutine only. Zero allocations.
// pythia:hotpath — per-batch on the shm serving path.
func (r *Ring) ConsumeInto(buf []int32) (int, error) {
	head := atomic.LoadUint64(r.head)
	tail := atomic.LoadUint64(r.tail)
	avail := tail - head
	if avail == 0 {
		return 0, nil
	}
	if avail > r.mask+1 {
		return 0, ErrRingCorrupt
	}
	n := int(avail)
	if n > len(buf) {
		n = len(buf)
	}
	// The run occupies at most two contiguous spans of the slot array.
	lo := int(head & r.mask)
	first := len(r.ids) - lo
	if first > n {
		first = n
	}
	copy(buf[:first], r.ids[lo:lo+first])
	if first < n {
		copy(buf[first:n], r.ids[:n-first])
	}
	r.consumed += uint64(n)
	atomic.StoreUint64(r.head, head+uint64(n))
	return n, nil
}

// Consumed reports the consumer's lifetime decoded-id count (consumer
// goroutine only).
func (r *Ring) Consumed() uint64 { return r.consumed }

// CorruptTailForTest plants a hostile producer cursor so tests outside
// this package can check that consumers treat an invariant violation as
// corruption rather than an index.
func (r *Ring) CorruptTailForTest(v uint64) { atomic.StoreUint64(r.tail, v) }

// PredCap reports how many predictions the slot can publish.
func (r *Ring) PredCap() int { return len(r.pred) / predWords }

// PublishPredictions writes preds into the seqlock'd slot, truncating at
// the slot capacity. Consumer (server) side only; readers concurrently
// retry, they never block the writer.
func (r *Ring) PublishPredictions(preds []predictor.Prediction) {
	if len(preds) > r.PredCap() {
		preds = preds[:r.PredCap()]
	}
	seq := atomic.LoadUint64(r.seq)
	atomic.StoreUint64(r.seq, seq+1) // odd: write in progress
	atomic.StoreUint64(r.cnt, uint64(len(preds)))
	for i := range preds {
		p := &preds[i]
		w := i * predWords
		atomic.StoreUint64(&r.pred[w], uint64(uint32(p.EventID))<<32|uint64(uint32(p.Distance)))
		atomic.StoreUint64(&r.pred[w+1], math.Float64bits(p.Probability))
		atomic.StoreUint64(&r.pred[w+2], math.Float64bits(p.ExpectedNs))
	}
	atomic.StoreUint64(r.seq, seq+2)
}

// readAttempts bounds the seqlock retry loop: a writer mid-publish makes a
// reader retry, and the write is a few hundred nanoseconds, so a handful of
// retries always suffices against a live peer. Against a wedged or hostile
// one the reader gives up and reports no prediction — fail open, not hang.
const readAttempts = 128

// ReadPredictions reads the latest published predictions into buf[:0]
// (reusing its capacity; allocation-free once buf has grown to the slot
// size). ok is false while nothing has been published, when the published
// count is out of bounds, or when every attempt raced a writer.
// pythia:hotpath — per-query on the co-located client predict path.
func (r *Ring) ReadPredictions(buf []predictor.Prediction) ([]predictor.Prediction, bool) {
	for attempt := 0; attempt < readAttempts; attempt++ {
		s1 := atomic.LoadUint64(r.seq)
		if s1 == 0 {
			return buf[:0], false // nothing published yet
		}
		if s1&1 != 0 {
			continue // write in progress
		}
		n := atomic.LoadUint64(r.cnt)
		if n > uint64(r.PredCap()) {
			return buf[:0], false // torn or hostile count
		}
		buf = buf[:0]
		for i := 0; i < int(n); i++ {
			w := i * predWords
			w0 := atomic.LoadUint64(&r.pred[w])
			buf = append(buf, predictor.Prediction{
				EventID:     int32(uint32(w0 >> 32)),
				Distance:    int(int32(uint32(w0))),
				Probability: math.Float64frombits(atomic.LoadUint64(&r.pred[w+1])),
				ExpectedNs:  math.Float64frombits(atomic.LoadUint64(&r.pred[w+2])),
			})
		}
		if atomic.LoadUint64(r.seq) == s1 {
			return buf, true
		}
	}
	return buf[:0], false
}

// NewMemSegment allocates an in-process segment (8-byte aligned, header
// stamped) for tests, fuzzing, and single-process benchmarks — the same
// bytes an mmap'd file would hold, without the file.
func NewMemSegment(g Geometry) ([]byte, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.SegmentSize()
	words := make([]uint64, (n+7)/8)
	seg := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
	WriteHeader(seg, g)
	return seg, nil
}

// Park is the backoff half of the bounded spin-then-park discipline shared
// by the client's full-ring wait and the server's idle pump: call it with
// an attempt counter that resets to zero whenever work happens. The first
// parkSpin attempts only yield the processor (hot path: another runnable
// goroutine is about to produce/consume); past that it sleeps, escalating
// to parkMaxSleep so an idle connection costs microwatts, not a core.
func Park(attempt int) {
	if attempt < parkSpin {
		runtime.Gosched()
		return
	}
	d := time.Duration(attempt-parkSpin+1) * parkSleepStep
	if d > parkMaxSleep {
		d = parkMaxSleep
	}
	time.Sleep(d)
}

const (
	parkSpin      = 64
	parkSleepStep = 5 * time.Microsecond
	parkMaxSleep  = time.Millisecond
)
