package transport

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/predictor"
)

func testGeometry() Geometry { return Geometry{Rings: 2, Slots: 64, PredCap: 8} }

func newTestRings(t *testing.T, g Geometry) []Ring {
	t.Helper()
	seg, err := NewMemSegment(g)
	if err != nil {
		t.Fatalf("NewMemSegment(%+v): %v", g, err)
	}
	rings, err := MapRings(seg, g)
	if err != nil {
		t.Fatalf("MapRings: %v", err)
	}
	return rings
}

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Geometry
		ok   bool
	}{
		{"minimal", Geometry{Rings: 1, Slots: MinSlots, PredCap: 1}, true},
		{"typical", Geometry{Rings: 8, Slots: 4096, PredCap: 64}, true},
		{"zero rings", Geometry{Rings: 0, Slots: 64, PredCap: 1}, false},
		{"negative rings", Geometry{Rings: -1, Slots: 64, PredCap: 1}, false},
		{"too many rings", Geometry{Rings: MaxRings + 1, Slots: 64, PredCap: 1}, false},
		{"slots below min", Geometry{Rings: 1, Slots: MinSlots / 2, PredCap: 1}, false},
		{"slots above max", Geometry{Rings: 1, Slots: MaxSlots * 2, PredCap: 1}, false},
		{"slots not pow2", Geometry{Rings: 1, Slots: 100, PredCap: 1}, false},
		{"zero predcap", Geometry{Rings: 1, Slots: 64, PredCap: 0}, false},
		{"huge predcap", Geometry{Rings: 1, Slots: 64, PredCap: MaxPredCap + 1}, false},
		{"max everything", Geometry{Rings: MaxRings, Slots: MaxSlots, PredCap: MaxPredCap}, true},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
		if !tc.ok && err != nil && !errors.Is(err, ErrBadGeometry) {
			t.Errorf("%s: Validate() = %v, not ErrBadGeometry", tc.name, err)
		}
	}
}

func TestSegmentSizeWithinCap(t *testing.T) {
	g := Geometry{Rings: MaxRings, Slots: MaxSlots, PredCap: MaxPredCap}
	if err := g.Validate(); err != nil {
		t.Fatalf("max geometry invalid: %v", err)
	}
	if g.SegmentSize() > MaxSegment {
		t.Fatalf("max geometry needs %d bytes, cap is %d", g.SegmentSize(), MaxSegment)
	}
}

func TestMapRingsRejectsWrongSize(t *testing.T) {
	g := testGeometry()
	seg, err := NewMemSegment(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MapRings(seg[:len(seg)-1], g); !errors.Is(err, ErrBadSegment) {
		t.Errorf("short segment: MapRings = %v, want ErrBadSegment", err)
	}
	if _, err := MapRings(seg, Geometry{Rings: 0, Slots: 64, PredCap: 1}); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("bad geometry: MapRings = %v, want ErrBadGeometry", err)
	}
}

func TestReadHeader(t *testing.T) {
	g := testGeometry()
	seg, err := NewMemSegment(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadHeader(seg, g); err != nil {
		t.Fatalf("ReadHeader on fresh segment: %v", err)
	}
	if err := ReadHeader(seg[:headerSize-1], g); !errors.Is(err, ErrBadSegment) {
		t.Errorf("truncated header: %v, want ErrBadSegment", err)
	}
	other := g
	other.Slots *= 2
	if err := ReadHeader(seg, other); !errors.Is(err, ErrBadSegment) {
		t.Errorf("geometry mismatch: %v, want ErrBadSegment", err)
	}
	seg[0] ^= 0xff
	if err := ReadHeader(seg, g); !errors.Is(err, ErrBadSegment) {
		t.Errorf("bad magic: %v, want ErrBadSegment", err)
	}
}

func TestRingRoundTripWithWrap(t *testing.T) {
	g := testGeometry()
	r := &newTestRings(t, g)[0]
	buf := make([]int32, g.Slots)

	// Push/consume several times the slot count so head and tail wrap.
	next := int32(0)
	want := int32(0)
	for round := 0; round < 10; round++ {
		n := g.Slots/2 + round // varying batch sizes straddle the wrap point
		for i := 0; i < n; i++ {
			if !r.TryPush(next) {
				t.Fatalf("round %d: ring full after %d pushes", round, i)
			}
			next++
		}
		got, err := r.ConsumeInto(buf)
		if err != nil {
			t.Fatalf("round %d: ConsumeInto: %v", round, err)
		}
		if got != n {
			t.Fatalf("round %d: consumed %d, want %d", round, got, n)
		}
		for i := 0; i < got; i++ {
			if buf[i] != want {
				t.Fatalf("round %d: buf[%d] = %d, want %d", round, i, buf[i], want)
			}
			want++
		}
	}
	if r.Consumed() != uint64(want) {
		t.Errorf("Consumed() = %d, want %d", r.Consumed(), want)
	}
}

func TestRingFullRejectsPush(t *testing.T) {
	g := testGeometry()
	r := &newTestRings(t, g)[0]
	for i := 0; i < g.Slots; i++ {
		if !r.TryPush(int32(i)) {
			t.Fatalf("push %d rejected before ring was full", i)
		}
	}
	if r.TryPush(999) {
		t.Fatal("push accepted on a full ring")
	}
	if r.Pending() != g.Slots {
		t.Fatalf("Pending() = %d, want %d", r.Pending(), g.Slots)
	}
	buf := make([]int32, 1)
	if n, err := r.ConsumeInto(buf); err != nil || n != 1 {
		t.Fatalf("ConsumeInto = (%d, %v), want (1, nil)", n, err)
	}
	if !r.TryPush(999) {
		t.Fatal("push rejected after a slot freed up")
	}
}

func TestRingHostileTailIsCorruptNotOOB(t *testing.T) {
	g := testGeometry()
	r := &newTestRings(t, g)[0]
	// A hostile producer advances tail past the invariant. The consumer must
	// report corruption, never read out of range (indices are masked, so the
	// only observable failure mode is the error).
	atomic.StoreUint64(r.tail, uint64(g.Slots)+1)
	buf := make([]int32, g.Slots)
	if _, err := r.ConsumeInto(buf); !errors.Is(err, ErrRingCorrupt) {
		t.Fatalf("ConsumeInto = %v, want ErrRingCorrupt", err)
	}
	// Pending clamps rather than reporting a nonsense count.
	if p := r.Pending(); p != g.Slots {
		t.Fatalf("Pending() on corrupt ring = %d, want clamp to %d", p, g.Slots)
	}
}

func TestConsumeIntoPartialBuffer(t *testing.T) {
	g := testGeometry()
	r := &newTestRings(t, g)[0]
	for i := int32(0); i < 10; i++ {
		r.TryPush(i)
	}
	buf := make([]int32, 4)
	n, err := r.ConsumeInto(buf)
	if err != nil || n != 4 {
		t.Fatalf("ConsumeInto = (%d, %v), want (4, nil)", n, err)
	}
	n, err = r.ConsumeInto(buf)
	if err != nil || n != 4 {
		t.Fatalf("second ConsumeInto = (%d, %v), want (4, nil)", n, err)
	}
	n, err = r.ConsumeInto(buf)
	if err != nil || n != 2 {
		t.Fatalf("third ConsumeInto = (%d, %v), want (2, nil)", n, err)
	}
}

func TestPredictionSlotRoundTrip(t *testing.T) {
	g := testGeometry()
	r := &newTestRings(t, g)[0]

	if _, ok := r.ReadPredictions(nil); ok {
		t.Fatal("ReadPredictions reported ok before any publish")
	}

	preds := []predictor.Prediction{
		{EventID: 7, Probability: 0.75, Distance: 1, ExpectedNs: 1234.5},
		{EventID: -3, Probability: 0.25, Distance: 16, ExpectedNs: math.Inf(1)},
		{EventID: 0, Probability: 0, Distance: -2, ExpectedNs: 0},
	}
	r.PublishPredictions(preds)
	got, ok := r.ReadPredictions(nil)
	if !ok {
		t.Fatal("ReadPredictions not ok after publish")
	}
	if len(got) != len(preds) {
		t.Fatalf("read %d predictions, want %d", len(got), len(preds))
	}
	for i := range preds {
		if got[i].EventID != preds[i].EventID ||
			got[i].Distance != preds[i].Distance ||
			math.Float64bits(got[i].Probability) != math.Float64bits(preds[i].Probability) ||
			math.Float64bits(got[i].ExpectedNs) != math.Float64bits(preds[i].ExpectedNs) {
			t.Errorf("prediction %d: got %+v, want %+v (bit-level)", i, got[i], preds[i])
		}
	}

	// Republish fewer; the slot reflects only the latest publish.
	r.PublishPredictions(preds[:1])
	got, ok = r.ReadPredictions(got)
	if !ok || len(got) != 1 || got[0].EventID != 7 {
		t.Fatalf("after republish: got %v ok=%v, want 1 prediction id 7", got, ok)
	}
}

func TestPublishTruncatesAtCapacity(t *testing.T) {
	g := testGeometry()
	r := &newTestRings(t, g)[0]
	preds := make([]predictor.Prediction, g.PredCap+5)
	for i := range preds {
		preds[i].EventID = int32(i)
	}
	r.PublishPredictions(preds)
	got, ok := r.ReadPredictions(nil)
	if !ok || len(got) != g.PredCap {
		t.Fatalf("got %d predictions ok=%v, want %d", len(got), ok, g.PredCap)
	}
}

func TestReadPredictionsHostileCount(t *testing.T) {
	g := testGeometry()
	r := &newTestRings(t, g)[0]
	r.PublishPredictions([]predictor.Prediction{{EventID: 1}})
	// A hostile server writes an out-of-bounds count; the reader fails open.
	atomic.StoreUint64(r.cnt, uint64(g.PredCap)+1)
	if _, ok := r.ReadPredictions(nil); ok {
		t.Fatal("ReadPredictions accepted an out-of-bounds count")
	}
	// A permanently odd seqlock (wedged writer) must not hang the reader.
	atomic.StoreUint64(r.seq, 3)
	if _, ok := r.ReadPredictions(nil); ok {
		t.Fatal("ReadPredictions reported ok with a wedged seqlock")
	}
}

// TestSeqlockTornReadStress hammers the prediction slot from a writer that
// republishes while wrapping the event ring, and a reader that replays under
// -race: every successful read must be internally consistent (all fields from
// the same publish).
func TestSeqlockTornReadStress(t *testing.T) {
	g := testGeometry()
	r := &newTestRings(t, g)[0]
	const rounds = 20000
	var done atomic.Bool

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		buf := make([]int32, g.Slots)
		preds := make([]predictor.Prediction, 0, 4)
		for v := uint64(1); v <= rounds; v++ {
			// Wrap the ring while publishing, like the real server pump.
			for i := 0; i < 3; i++ {
				if n, err := r.ConsumeInto(buf); err != nil {
					t.Errorf("ConsumeInto: %v", err)
					return
				} else if n == 0 {
					break
				}
			}
			preds = preds[:0]
			// Every field encodes v so a torn read is detectable.
			for i := 0; i < 3; i++ {
				preds = append(preds, predictor.Prediction{
					EventID:     int32(v),
					Probability: float64(v),
					Distance:    int(v),
					ExpectedNs:  float64(v),
				})
			}
			r.PublishPredictions(preds)
		}
	}()
	go func() {
		defer wg.Done()
		var got []predictor.Prediction
		var ok bool
		reads := 0
		// Run until the writer finishes (on one CPU the goroutines only
		// interleave at yield points) and land at least one good read.
		for i := 0; !done.Load() || reads == 0; i++ {
			if i%4 == 0 {
				r.TryPush(int32(i)) // keep the ring wrapping under the writer
			}
			got, ok = r.ReadPredictions(got)
			if !ok {
				runtime.Gosched()
				continue
			}
			reads++
			for _, p := range got {
				v := uint64(p.EventID)
				if uint64(p.Distance) != v || p.Probability != float64(v) || p.ExpectedNs != float64(v) {
					t.Errorf("torn read: %+v", p)
					return
				}
			}
		}
		if reads == 0 {
			t.Error("reader never completed a consistent read")
		}
	}()
	wg.Wait()
}

func TestRingZeroAlloc(t *testing.T) {
	g := testGeometry()
	r := &newTestRings(t, g)[0]
	buf := make([]int32, g.Slots)
	preds := make([]predictor.Prediction, 0, g.PredCap)
	r.PublishPredictions([]predictor.Prediction{{EventID: 1}, {EventID: 2}})

	if n := testing.AllocsPerRun(200, func() {
		if !r.TryPush(42) {
			r.ConsumeInto(buf)
		}
	}); n != 0 {
		t.Errorf("TryPush allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		r.TryPush(1)
		r.TryPush(2)
		if _, err := r.ConsumeInto(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ConsumeInto allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		var ok bool
		preds, ok = r.ReadPredictions(preds)
		if !ok {
			t.Fatal("read failed")
		}
	}); n != 0 {
		t.Errorf("ReadPredictions allocates %v per run, want 0", n)
	}
}

func BenchmarkRingPushConsume(b *testing.B) {
	g := Geometry{Rings: 1, Slots: 4096, PredCap: 8}
	seg, err := NewMemSegment(g)
	if err != nil {
		b.Fatal(err)
	}
	rings, err := MapRings(seg, g)
	if err != nil {
		b.Fatal(err)
	}
	r := &rings[0]
	buf := make([]int32, g.Slots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.TryPush(int32(i)) {
			if _, err := r.ConsumeInto(buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}
