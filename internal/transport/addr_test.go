package transport

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in, network, address string
		ok                   bool
	}{
		{"127.0.0.1:9000", NetTCP, "127.0.0.1:9000", true},
		{"tcp://127.0.0.1:9000", NetTCP, "127.0.0.1:9000", true},
		{"unix:///tmp/p.sock", NetUnix, "/tmp/p.sock", true},
		{"unix:/tmp/p.sock", NetUnix, "/tmp/p.sock", true},
		{"http://x", "", "", false},
		{"unix://", "", "", false},
		{"", "", "", false},
	}
	for _, tc := range cases {
		network, address, err := ParseAddr(tc.in)
		if tc.ok && (err != nil || network != tc.network || address != tc.address) {
			t.Errorf("ParseAddr(%q) = (%q, %q, %v), want (%q, %q, nil)",
				tc.in, network, address, err, tc.network, tc.address)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", tc.in)
		}
	}
}

func TestListenUnixModeAndCleanup(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "p.sock")
	ln, err := Listen("unix://" + sock)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	fi, err := os.Lstat(sock)
	if err != nil {
		t.Fatalf("socket file missing: %v", err)
	}
	if perm := fi.Mode().Perm(); perm != 0o600 {
		t.Errorf("socket mode %o, want 0600", perm)
	}
	if err := ln.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Lstat(sock); !os.IsNotExist(err) {
		t.Errorf("socket file survived listener close: %v", err)
	}
}

func TestListenRefusesLiveSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "p.sock")
	ln, err := Listen("unix://" + sock)
	if err != nil {
		t.Fatalf("first Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	if _, err := Listen("unix://" + sock); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("second Listen = %v, want ErrAddrInUse", err)
	}
}

func TestListenRemovesDeadSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "p.sock")
	// Fabricate a dead socket file: bind then close without net's cleanup.
	addr, err := net.ResolveUnixAddr("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.ListenUnix("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	ln.SetUnlinkOnClose(false)
	ln.Close()
	if _, err := os.Lstat(sock); err != nil {
		t.Fatalf("dead socket file not left behind: %v", err)
	}
	ln2, err := Listen("unix://" + sock)
	if err != nil {
		t.Fatalf("Listen over dead socket: %v", err)
	}
	ln2.Close()
}

func TestListenLeavesNonSocketAlone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.sock")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Listen("unix://" + path); err == nil {
		t.Fatal("Listen succeeded over a regular file")
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "precious" {
		t.Fatalf("regular file clobbered: %q, %v", data, err)
	}
}

func TestDialUnix(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "p.sock")
	ln, err := Listen("unix://" + sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	nc, network, err := Dial("unix://"+sock, time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if network != NetUnix {
		t.Errorf("network = %q, want unix", network)
	}
	nc.Close()
	<-done
}

func TestSegmentCreateOpenRoundTrip(t *testing.T) {
	g := testGeometry()
	seg, err := CreateSegment(t.TempDir(), g.SegmentSize())
	if err != nil {
		t.Fatalf("CreateSegment: %v", err)
	}
	defer seg.Close()
	WriteHeader(seg.Bytes(), g)

	peer, err := OpenSegment(seg.Path(), g.SegmentSize())
	if err != nil {
		t.Fatalf("OpenSegment: %v", err)
	}
	defer peer.Close()
	if err := ReadHeader(peer.Bytes(), g); err != nil {
		t.Fatalf("peer ReadHeader: %v", err)
	}

	// The mappings are the same physical pages.
	cr, err := MapRings(seg.Bytes(), g)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := MapRings(peer.Bytes(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !cr[0].TryPush(1234) {
		t.Fatal("TryPush failed")
	}
	buf := make([]int32, 4)
	n, err := pr[0].ConsumeInto(buf)
	if err != nil || n != 1 || buf[0] != 1234 {
		t.Fatalf("peer ConsumeInto = (%d, %v) buf=%v, want the pushed id", n, err, buf[:n])
	}

	// Unlink removes the file; both mappings stay usable.
	if err := seg.Unlink(); err != nil {
		t.Fatalf("Unlink: %v", err)
	}
	if _, err := os.Lstat(seg.Path()); !os.IsNotExist(err) {
		t.Errorf("segment file survived Unlink: %v", err)
	}
	if !cr[0].TryPush(5678) {
		t.Fatal("TryPush after unlink failed")
	}
	if n, err := pr[0].ConsumeInto(buf); err != nil || n != 1 || buf[0] != 5678 {
		t.Fatalf("post-unlink ConsumeInto = (%d, %v) buf=%v", n, err, buf[:n])
	}
}

func TestOpenSegmentValidation(t *testing.T) {
	dir := t.TempDir()
	g := testGeometry()
	size := g.SegmentSize()

	if _, err := OpenSegment("relative/path", size); err == nil {
		t.Error("OpenSegment accepted a relative path")
	}
	if _, err := OpenSegment(filepath.Join(dir, "absent"), size); err == nil {
		t.Error("OpenSegment accepted a missing file")
	}

	seg, err := CreateSegment(dir, size)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if _, err := OpenSegment(seg.Path(), size+1); !errors.Is(err, ErrBadSegment) {
		t.Errorf("size mismatch: OpenSegment = %v, want ErrBadSegment", err)
	}

	// Wrong mode is refused.
	loose := filepath.Join(dir, "loose")
	if err := os.WriteFile(loose, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment(loose, size); err == nil {
		t.Error("OpenSegment accepted a 0644 file")
	}

	// A symlink at the final component is refused (O_NOFOLLOW).
	link := filepath.Join(dir, "link")
	if err := os.Symlink(seg.Path(), link); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment(link, size); err == nil {
		t.Error("OpenSegment followed a symlink")
	}

	if _, err := OpenSegment(seg.Path(), 0); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("zero size: OpenSegment = %v, want ErrBadGeometry", err)
	}
	if _, err := CreateSegment(dir, MaxSegment+1); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("oversize: CreateSegment = %v, want ErrBadGeometry", err)
	}
}
