package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

// Address schemes. A bare "host:port" is TCP; "tcp://host:port" spells it
// out; "unix:///path/to.sock" (or "unix:/path") is a unix-domain socket.
const (
	NetTCP  = "tcp"
	NetUnix = "unix"
)

// ErrAddrInUse reports a unix listen address whose socket file is owned by
// a live listener.
var ErrAddrInUse = errors.New("transport: address already in use")

// ParseAddr splits a listen/dial address into (network, address).
func ParseAddr(addr string) (network, address string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix://"):
		network, address = NetUnix, strings.TrimPrefix(addr, "unix://")
	case strings.HasPrefix(addr, "unix:"):
		network, address = NetUnix, strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp://"):
		network, address = NetTCP, strings.TrimPrefix(addr, "tcp://")
	case strings.Contains(addr, "://"):
		return "", "", fmt.Errorf("transport: unsupported scheme in %q (want tcp:// or unix://)", addr)
	default:
		network, address = NetTCP, addr
	}
	if address == "" {
		return "", "", fmt.Errorf("transport: empty address in %q", addr)
	}
	return network, address, nil
}

// Listen binds addr. For unix addresses it applies the daemon's trust
// model: the socket file is created mode 0600 (only the daemon's own user
// can connect), a stale socket file left by a crashed daemon is detected by
// dialing it (refused ⇒ dead ⇒ removed) and never clobbered while a live
// listener owns it, and the file is unlinked again when the listener
// closes (net's default unlink-on-close), so a graceful drain leaves no
// residue.
func Listen(addr string) (net.Listener, error) {
	network, address, err := ParseAddr(addr)
	if err != nil {
		return nil, err
	}
	if network == NetUnix {
		if err := clearStaleSocket(address); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addr, err)
	}
	if network == NetUnix {
		if cerr := os.Chmod(address, 0o600); cerr != nil {
			if lerr := ln.Close(); lerr != nil {
				cerr = errors.Join(cerr, lerr)
			}
			return nil, fmt.Errorf("transport: restricting %s to 0600: %w", address, cerr)
		}
	}
	return ln, nil
}

// clearStaleSocket removes a dead socket file at path and refuses to touch
// a live one. A plain file (or anything else non-socket) at the path is
// left alone — failing the subsequent bind is safer than deleting a file
// the daemon does not own.
func clearStaleSocket(path string) error {
	fi, err := os.Lstat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("transport: probing %s: %w", path, err)
	}
	if fi.Mode()&os.ModeSocket == 0 {
		return nil // not a socket: let the bind fail with the truth
	}
	nc, err := net.DialTimeout(NetUnix, path, time.Second)
	if err == nil {
		if cerr := nc.Close(); cerr != nil {
			return fmt.Errorf("transport: closing liveness probe of %s: %w", path, cerr)
		}
		return fmt.Errorf("%w: %s has a live listener", ErrAddrInUse, path)
	}
	// Dead socket (connection refused, or any dial failure on an orphaned
	// inode): remove it so the fresh daemon can bind.
	if rerr := os.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
		return fmt.Errorf("transport: removing stale socket %s: %w", path, rerr)
	}
	return nil
}

// Dial connects to addr within timeout.
func Dial(addr string, timeout time.Duration) (net.Conn, string, error) {
	network, address, err := ParseAddr(addr)
	if err != nil {
		return nil, "", err
	}
	nc, err := net.DialTimeout(network, address, timeout)
	if err != nil {
		return nil, "", fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return nc, network, nil
}

// DefaultSegmentDir picks where shm segment files live: /dev/shm when the
// platform mounts it (memory-backed, the canonical choice on Linux),
// otherwise the system temp directory — still mmap-shareable, possibly
// disk-backed.
func DefaultSegmentDir() string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}
