package transport

import (
	"encoding/binary"
	"testing"

	"repro/internal/predictor"
)

// FuzzRingDecode drives the consumer-side ring decoder with hostile
// geometry and segment contents: arbitrary cursor values (torn/partial
// writes land here as mid-update cursors), arbitrary seqlock state, and
// geometry that disagrees with the segment. The invariants under test:
// geometry validation never lets a bad layout through, ConsumeInto either
// decodes in-bounds ids or reports ErrRingCorrupt (it must never read out
// of range — the segment is exactly SegmentSize bytes, so any OOB access
// faults or trips -race), and ReadPredictions never returns more than
// PredCap entries no matter what the count word says.
func FuzzRingDecode(f *testing.F) {
	f.Add(1, 64, 1, uint64(0), uint64(0), uint64(0), uint64(0), []byte{})
	f.Add(2, 64, 8, uint64(5), uint64(70), uint64(2), uint64(3), []byte{1, 2, 3, 4})
	f.Add(1, 64, 1, uint64(1<<63), uint64(1), uint64(1), uint64(1<<40), []byte{0xff})
	f.Add(1, 128, 4, uint64(100), uint64(100+129), uint64(4), uint64(5), []byte{})
	f.Add(0, 0, 0, uint64(0), uint64(0), uint64(0), uint64(0), []byte{})
	f.Add(-1, 1<<20, -5, uint64(0), uint64(0), uint64(0), uint64(0), []byte{})

	f.Fuzz(func(t *testing.T, rings, slots, predCap int, head, tail, seq, cnt uint64, fill []byte) {
		g := Geometry{Rings: rings, Slots: slots, PredCap: predCap}
		seg, err := NewMemSegment(g)
		if err != nil {
			// Hostile geometry must be rejected before any allocation is
			// sized from it; nothing further to check.
			return
		}
		// Scribble fuzz bytes over the post-header region (torn/partial
		// writes, garbage predictions, arbitrary id values).
		body := seg[headerSize:]
		for i, b := range fill {
			body[(i*31)%len(body)] = b
		}
		mapped, err := MapRings(seg, g)
		if err != nil {
			t.Fatalf("MapRings rejected its own NewMemSegment: %v", err)
		}
		r := &mapped[0]
		// Hostile cursor and seqlock state, as a misbehaving peer would
		// leave them mid-write.
		binaryStore(r.head, head)
		binaryStore(r.tail, tail)
		binaryStore(r.seq, seq)
		binaryStore(r.cnt, cnt)

		buf := make([]int32, g.Slots+3)
		n, err := r.ConsumeInto(buf)
		if err == nil {
			if n < 0 || n > g.Slots {
				t.Fatalf("ConsumeInto decoded %d ids from a %d-slot ring", n, g.Slots)
			}
		} else if err != ErrRingCorrupt {
			t.Fatalf("ConsumeInto: unexpected error %v", err)
		}
		if p := r.Pending(); p < 0 || p > g.Slots {
			t.Fatalf("Pending() = %d on a %d-slot ring", p, g.Slots)
		}

		preds := make([]predictor.Prediction, 0, 4)
		preds, ok := r.ReadPredictions(preds)
		if ok && len(preds) > g.PredCap {
			t.Fatalf("ReadPredictions returned %d entries, capacity %d", len(preds), g.PredCap)
		}

		// The header must still validate (decode touches nothing before
		// headerSize) and a flipped header must not.
		if err := ReadHeader(seg, g); err != nil {
			t.Fatalf("header damaged by decode: %v", err)
		}
		binary.LittleEndian.PutUint64(seg[0:], ^segMagic)
		if err := ReadHeader(seg, g); err == nil {
			t.Fatal("ReadHeader accepted a corrupted magic")
		}
	})
}

// binaryStore writes a word without the atomic package so the fuzz body
// reads as plain state setup (single-goroutine, no concurrency here).
func binaryStore(p *uint64, v uint64) { *p = v }
