package apps

import (
	"testing"

	"repro/internal/mpisim"
	"repro/internal/ompsim"
	"repro/pythia"
)

// recordApp runs one application under PYTHIA-RECORD and returns the trace
// set (rank 0's grammar is the usual subject of assertions).
func recordApp(t *testing.T, app App, class Class) *pythia.TraceSet {
	t.Helper()
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	w := mpisim.NewWorld(app.Ranks)
	w.RunInterposed(func(m mpisim.MPI) mpisim.MPI {
		return mpisim.NewInterposer(m, o)
	}, func(m mpisim.MPI) {
		ctx := &Context{MPI: m, Class: class, Seed: 42}
		if app.Hybrid {
			// Hybrid ranks attach an OpenMP runtime sharing the oracle;
			// thread handle 0 is the master thread of each rank — but the
			// oracle is keyed by MPI rank here, so the OMP runtime must use
			// the same rank-keyed thread. The test-scale hybrid runs use a
			// per-rank runtime without oracle OMP instrumentation to keep
			// event streams single-threaded per rank.
			rt := ompsim.New(ompsim.Config{MaxThreads: 2})
			defer rt.Close()
			ctx.OMP = rt
		}
		app.Run(ctx)
	})
	ts, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestAllAppsCompleteSmall(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			ts := recordApp(t, app, Small)
			if err := ts.Validate(); err != nil {
				t.Fatalf("invalid trace set: %v", err)
			}
			if ts.TotalEvents() == 0 {
				t.Fatal("no events recorded")
			}
			if len(ts.Threads) != app.Ranks {
				t.Fatalf("recorded %d rank streams, want %d", len(ts.Threads), app.Ranks)
			}
		})
	}
}

func TestAppsRunAllClasses(t *testing.T) {
	// Completion (no deadlock) across classes for the apps whose loop
	// structure depends on the class.
	for _, name := range []string{"CG", "FT", "LU", "MG"} {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, class := range []Class{Small, Medium, Large} {
			ts := recordApp(t, app, class)
			if ts.TotalEvents() == 0 {
				t.Fatalf("%s/%s: no events", name, class)
			}
		}
	}
}

// TestGrammarComplexityOrdering checks the Table I shape: regular
// applications reduce to few rules, irregular ones to many.
func TestGrammarComplexityOrdering(t *testing.T) {
	rules := func(name string) int {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ts := recordApp(t, app, Small)
		max := 0
		for _, th := range ts.Threads {
			if n := len(th.Grammar.Rules); n > max {
				max = n
			}
		}
		return max
	}
	ep := rules("EP")
	bt := rules("BT")
	qs := rules("Quicksilver")
	t.Logf("rules: EP=%d BT=%d Quicksilver=%d", ep, bt, qs)
	if ep > 2 {
		t.Errorf("EP grammar has %d rules, want root only (or close)", ep)
	}
	if bt > 10 {
		t.Errorf("BT grammar has %d rules, want compact", bt)
	}
	if qs <= 2*bt {
		t.Errorf("Quicksilver (%d rules) should be far more complex than BT (%d)", qs, bt)
	}
}

// TestEventCountOrdering checks that event volume spans orders of magnitude
// across applications, as in Table I.
func TestEventCountOrdering(t *testing.T) {
	count := func(name string, class Class) int64 {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return recordApp(t, app, class).TotalEvents()
	}
	ep := count("EP", Large)
	lu := count("LU", Large)
	t.Logf("events: EP=%d LU=%d", ep, lu)
	if ep >= lu/100 {
		t.Errorf("EP (%d events) should be orders of magnitude below LU (%d)", ep, lu)
	}
}

// TestDeterministicEventStructure re-records the deterministic apps and
// compares descriptor sequences.
func TestDeterministicEventStructure(t *testing.T) {
	for _, name := range []string{"BT", "CG", "Kripke", "Quicksilver"} {
		app, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := recordApp(t, app, Small)
		b := recordApp(t, app, Small)
		for tid := range a.Threads {
			sa := a.Threads[tid].Grammar.Unfold()
			sb := b.Threads[tid].Grammar.Unfold()
			if len(sa) != len(sb) {
				t.Fatalf("%s rank %d: event counts differ (%d vs %d)", name, tid, len(sa), len(sb))
			}
			for i := range sa {
				if a.Events[sa[i]] != b.Events[sb[i]] {
					t.Fatalf("%s rank %d: event %d differs", name, tid, i)
				}
			}
		}
	}
}

// TestLuleshOMPVirtual drives the OpenMP-only LULESH kernel on the virtual
// clock and sanity-checks monotone growth of runtime with problem size.
func TestLuleshOMPVirtual(t *testing.T) {
	run := func(s int64) int64 {
		m := ompsim.Pudding()
		rt := ompsim.New(ompsim.Config{MaxThreads: 24, Machine: &m})
		defer rt.Close()
		RunLuleshOMP(rt, s, LuleshSteps(s))
		return rt.Now()
	}
	t10, t30, t50 := run(10), run(30), run(50)
	if !(t10 < t30 && t30 < t50) {
		t.Fatalf("virtual times not monotone: %d %d %d", t10, t30, t50)
	}
}

func TestClassParsing(t *testing.T) {
	for _, c := range []Class{Small, Medium, Large} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("huge"); err == nil {
		t.Fatal("ParseClass accepted nonsense")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("doom"); err == nil {
		t.Fatal("ByName accepted unknown app")
	}
}
