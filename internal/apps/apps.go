// Package apps implements scaled-down kernels of the 13 applications the
// paper evaluates (section III-A2): the NAS Parallel Benchmarks BT, CG, EP,
// FT, IS, LU, MG, SP (MPI), and the hybrid MPI+OpenMP proxies AMG, LULESH,
// Kripke, miniFE and Quicksilver.
//
// Each kernel performs a small amount of real computation and — the part
// Pythia cares about — drives the simulated runtimes with the communication
// and parallel-region structure of the original application: CG's
// allreduce-per-iteration, LU's pipelined plane sweeps whose length depends
// on the working set, Quicksilver's randomised particle exchange producing
// an irregular grammar, LULESH's dozens of parallel regions of wildly
// different sizes. Event counts are scaled down from the originals (the
// paper records up to 28M events per application); EXPERIMENTS.md documents
// the scaling.
package apps

import (
	"fmt"

	"repro/internal/mpisim"
	"repro/internal/ompsim"
)

// Class is the working-set size (paper: NPB problem sizes A/B/C and the
// corresponding parameter sets of the proxy apps).
type Class int

// Working-set classes.
const (
	Small Class = iota
	Medium
	Large
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass parses "small", "medium" or "large".
func ParseClass(s string) (Class, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("apps: unknown class %q (want small|medium|large)", s)
}

// Context is what an application kernel runs against: its MPI endpoint, an
// optional OpenMP runtime (hybrid apps), the working set and a seed.
type Context struct {
	MPI   mpisim.MPI
	OMP   *ompsim.Runtime
	Class Class
	Seed  int64
}

// App describes one benchmark application.
type App struct {
	// Name is the paper's application name ("BT", "Quicksilver", …).
	Name string
	// Hybrid marks MPI+OpenMP applications (they need ctx.OMP).
	Hybrid bool
	// Ranks is the number of MPI ranks the evaluation uses for this app
	// (the paper uses 64 for NAS and 8 for the hybrid apps; we scale down).
	Ranks int
	// Run executes the kernel on one rank.
	Run func(ctx *Context)
}

// All returns the 13 applications in the paper's Table I order.
func All() []App {
	return []App{
		{Name: "BT", Ranks: 8, Run: RunBT},
		{Name: "CG", Ranks: 8, Run: RunCG},
		{Name: "EP", Ranks: 8, Run: RunEP},
		{Name: "FT", Ranks: 8, Run: RunFT},
		{Name: "IS", Ranks: 8, Run: RunIS},
		{Name: "LU", Ranks: 8, Run: RunLU},
		{Name: "MG", Ranks: 8, Run: RunMG},
		{Name: "SP", Ranks: 8, Run: RunSP},
		{Name: "AMG", Hybrid: true, Ranks: 4, Run: RunAMG},
		{Name: "Lulesh", Hybrid: true, Ranks: 4, Run: RunLulesh},
		{Name: "Kripke", Hybrid: true, Ranks: 4, Run: RunKripke},
		{Name: "miniFE", Hybrid: true, Ranks: 4, Run: RunMiniFE},
		{Name: "Quicksilver", Hybrid: true, Ranks: 4, Run: RunQuicksilver},
	}
}

// ByName returns the application with the given (case-sensitive) name.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown application %q", name)
}

// pick3 selects a per-class value.
func pick3[T any](c Class, small, medium, large T) T {
	switch c {
	case Small:
		return small
	case Medium:
		return medium
	default:
		return large
	}
}

// neighbors returns the ring neighbours of a rank.
func neighbors(m mpisim.MPI) (left, right int) {
	n := m.Size()
	return (m.Rank() + n - 1) % n, (m.Rank() + 1) % n
}

// sweeps scales a kernel's base compute intensity with the working set, so
// that — as in the real applications — larger classes spend proportionally
// more time computing between communication events and the relative cost of
// recording shrinks (Table I).
func sweeps(c Class, base int) int { return base * pick3(c, 1, 6, 24) }

// compute burns a deterministic amount of floating-point work and returns a
// value that escapes to the caller so the loop cannot be optimised away.
func compute(buf []float64, sweeps int) float64 {
	acc := 0.0
	for s := 0; s < sweeps; s++ {
		for i := 1; i < len(buf)-1; i++ {
			buf[i] = 0.25*buf[i-1] + 0.5*buf[i] + 0.25*buf[i+1]
		}
		acc += buf[len(buf)/2]
	}
	return acc
}

// faceExchange posts the canonical halo exchange used by the stencil codes:
// receive from both ring neighbours, send to both, wait for all.
func faceExchange(m mpisim.MPI, tag int, payload []float64) {
	left, right := neighbors(m)
	reqs := []*mpisim.Request{
		m.Irecv(left, tag),
		m.Irecv(right, tag),
		m.Isend(left, tag, payload),
		m.Isend(right, tag, payload),
	}
	m.Waitall(reqs)
}
