package apps

// Direct and multigrid solvers backing the BT/SP and MG proxies: the ADI
// methods of NPB BT/SP reduce to batched tridiagonal solves along grid
// lines, and MG is a geometric multigrid V-cycle. Both are implemented for
// real at small scale.

// ThomasSolve solves the tridiagonal system with constant bands
// (lower, diag, upper) in place: d is the right-hand side on entry and the
// solution on exit. Scratch must have len(d) capacity.
func ThomasSolve(lower, diag, upper float64, d, scratch []float64) {
	n := len(d)
	if n == 0 {
		return
	}
	c := scratch[:n]
	c[0] = upper / diag
	d[0] = d[0] / diag
	for i := 1; i < n; i++ {
		m := diag - lower*c[i-1]
		c[i] = upper / m
		d[i] = (d[i] - lower*d[i-1]) / m
	}
	for i := n - 2; i >= 0; i-- {
		d[i] -= c[i] * d[i+1]
	}
}

// ADISweep performs one alternating-direction-implicit step on a conceptual
// grid stored as `lines` lines of length n in one slice: each line is
// smoothed by an implicit tridiagonal solve of (I + sigma*Laplacian).
// It returns a checksum of the grid.
func ADISweep(grid []float64, lines, n int, sigma float64, scratch []float64) float64 {
	sum := 0.0
	for l := 0; l < lines; l++ {
		line := grid[l*n : (l+1)*n]
		ThomasSolve(-sigma, 1+2*sigma, -sigma, line, scratch)
		sum += line[n/2]
	}
	return sum
}

// MGLevel is one grid level of the 1-D multigrid hierarchy.
type MGLevel struct {
	U, F, R []float64 // solution, right-hand side, residual
}

// MGHierarchy is a geometric multigrid solver for the 1-D Poisson problem
// -u” = f with homogeneous Dirichlet boundaries, on a finest grid of
// 2^levels+1 points.
type MGHierarchy struct {
	Levels []MGLevel
	h2     []float64 // squared mesh width per level
}

// NewMGHierarchy builds `levels` grids; level 0 is the finest.
func NewMGHierarchy(levels int) *MGHierarchy {
	mg := &MGHierarchy{}
	n := 1 << uint(levels)
	h := 1.0 / float64(n)
	for l := 0; l < levels; l++ {
		size := (n >> uint(l)) + 1
		mg.Levels = append(mg.Levels, MGLevel{
			U: make([]float64, size),
			F: make([]float64, size),
			R: make([]float64, size),
		})
		hl := h * float64(int(1)<<uint(l))
		mg.h2 = append(mg.h2, hl*hl)
	}
	return mg
}

// SetRHS installs the finest-level right-hand side.
func (mg *MGHierarchy) SetRHS(f func(x float64) float64) {
	fine := mg.Levels[0]
	n := len(fine.U) - 1
	for i := range fine.F {
		fine.F[i] = f(float64(i) / float64(n))
	}
	for i := range fine.U {
		fine.U[i] = 0
	}
}

// smooth runs weighted-Jacobi sweeps on level l.
func (mg *MGHierarchy) smooth(l, sweeps int) {
	lv := mg.Levels[l]
	h2 := mg.h2[l]
	const omega = 2.0 / 3.0
	tmp := lv.R // reuse as scratch
	for s := 0; s < sweeps; s++ {
		for i := 1; i < len(lv.U)-1; i++ {
			jac := 0.5 * (lv.U[i-1] + lv.U[i+1] + h2*lv.F[i])
			tmp[i] = (1-omega)*lv.U[i] + omega*jac
		}
		copy(lv.U[1:len(lv.U)-1], tmp[1:len(lv.U)-1])
	}
}

// residual computes r = f + u” on level l.
func (mg *MGHierarchy) residual(l int) {
	lv := mg.Levels[l]
	h2 := mg.h2[l]
	lv.R[0], lv.R[len(lv.R)-1] = 0, 0
	for i := 1; i < len(lv.U)-1; i++ {
		lv.R[i] = lv.F[i] + (lv.U[i-1]-2*lv.U[i]+lv.U[i+1])/h2
	}
}

// VCycle runs one V-cycle from the finest level and returns the residual
// norm afterwards. onLevel, when non-nil, is invoked at every level visit
// (down and up) — the hook the MG proxy uses to place its per-level halo
// exchanges exactly where the real application communicates.
func (mg *MGHierarchy) VCycle(preSweeps, postSweeps int, onLevel func(l int, down bool)) float64 {
	last := len(mg.Levels) - 1
	// Downward: smooth and restrict.
	for l := 0; l < last; l++ {
		if onLevel != nil {
			onLevel(l, true)
		}
		mg.smooth(l, preSweeps)
		mg.residual(l)
		coarse := mg.Levels[l+1]
		fineR := mg.Levels[l].R
		for i := 1; i < len(coarse.F)-1; i++ {
			coarse.F[i] = 0.25*fineR[2*i-1] + 0.5*fineR[2*i] + 0.25*fineR[2*i+1]
		}
		for i := range coarse.U {
			coarse.U[i] = 0
		}
	}
	if onLevel != nil {
		onLevel(last, true)
	}
	mg.smooth(last, preSweeps+postSweeps+8) // coarse solve by heavy smoothing
	// Upward: prolong and smooth.
	for l := last - 1; l >= 0; l-- {
		if onLevel != nil {
			onLevel(l, false)
		}
		fine := mg.Levels[l]
		coarse := mg.Levels[l+1]
		for i := 1; i < len(coarse.U)-1; i++ {
			fine.U[2*i] += coarse.U[i]
			fine.U[2*i-1] += 0.5 * coarse.U[i]
			fine.U[2*i+1] += 0.5 * coarse.U[i]
		}
		mg.smooth(l, postSweeps)
	}
	mg.residual(0)
	norm := 0.0
	for _, r := range mg.Levels[0].R {
		norm += r * r
	}
	return norm
}
