package apps

import "math"

// This file holds the real numerical kernels the application proxies run
// between communication events: a radix-2 FFT (FT), a CSR sparse
// matrix-vector product and conjugate-gradient step (CG, miniFE), and a
// counting sort (IS). They are small but real — the proxies exercise genuine
// computation with verifiable results, not spin loops.

// FFT performs an in-place radix-2 Cooley-Tukey transform of the complex
// signal (re, im). The length must be a power of two.
func FFT(re, im []float64) {
	fftDir(re, im, false)
}

// InverseFFT performs the inverse transform (including the 1/n scaling).
func InverseFFT(re, im []float64) {
	fftDir(re, im, true)
	n := float64(len(re))
	for i := range re {
		re[i] /= n
		im[i] /= n
	}
}

func fftDir(re, im []float64, inverse bool) {
	n := len(re)
	if n == 0 || n&(n-1) != 0 {
		panic("apps: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			cr, ci := 1.0, 0.0
			for k := 0; k < length/2; k++ {
				i, j := start+k, start+k+length/2
				xr := re[j]*cr - im[j]*ci
				xi := re[j]*ci + im[j]*cr
				re[j], im[j] = re[i]-xr, im[i]-xi
				re[i], im[i] = re[i]+xr, im[i]+xi
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

// CSRMatrix is a square sparse matrix in compressed-sparse-row form.
type CSRMatrix struct {
	N      int
	RowPtr []int32
	ColIdx []int32
	Values []float64
}

// NewLaplacian1D builds the tridiagonal [−1, 2, −1] operator of size n, the
// canonical symmetric positive-definite test matrix.
func NewLaplacian1D(n int) *CSRMatrix {
	m := &CSRMatrix{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		if i > 0 {
			m.ColIdx = append(m.ColIdx, int32(i-1))
			m.Values = append(m.Values, -1)
		}
		m.ColIdx = append(m.ColIdx, int32(i))
		m.Values = append(m.Values, 2)
		if i < n-1 {
			m.ColIdx = append(m.ColIdx, int32(i+1))
			m.Values = append(m.Values, -1)
		}
		m.RowPtr[i+1] = int32(len(m.Values))
	}
	return m
}

// MatVec computes y = A·x.
func (m *CSRMatrix) MatVec(y, x []float64) {
	for i := 0; i < m.N; i++ {
		sum := 0.0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			sum += m.Values[p] * x[m.ColIdx[p]]
		}
		y[i] = sum
	}
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Axpy computes y += alpha·x.
func Axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// CGState carries one conjugate-gradient solve between iterations, so that
// the application proxies can interleave real CG steps with communication.
type CGState struct {
	A       *CSRMatrix
	X, R, P []float64
	Ap      []float64
	RhoOld  float64
}

// NewCGState prepares the solve A·x = b with x0 = 0.
func NewCGState(a *CSRMatrix, b []float64) *CGState {
	st := &CGState{
		A:  a,
		X:  make([]float64, a.N),
		R:  append([]float64(nil), b...),
		P:  append([]float64(nil), b...),
		Ap: make([]float64, a.N),
	}
	st.RhoOld = Dot(st.R, st.R)
	return st
}

// Step performs one CG iteration and returns the squared residual norm.
// localDot, when non-nil, replaces the two inner products (the hook the MPI
// proxy uses to split dot products across ranks via allreduce).
func (st *CGState) Step(localDot func(a, b []float64) float64) float64 {
	dot := Dot
	if localDot != nil {
		dot = localDot
	}
	st.A.MatVec(st.Ap, st.P)
	pap := dot(st.P, st.Ap)
	if pap == 0 {
		return 0
	}
	alpha := st.RhoOld / pap
	Axpy(alpha, st.P, st.X)
	Axpy(-alpha, st.Ap, st.R)
	rho := dot(st.R, st.R)
	beta := rho / st.RhoOld
	for i := range st.P {
		st.P[i] = st.R[i] + beta*st.P[i]
	}
	st.RhoOld = rho
	return rho
}

// ResidualNorm returns the current ‖r‖₂.
func (st *CGState) ResidualNorm() float64 { return math.Sqrt(st.RhoOld) }

// CountingSort sorts keys (all in [0, maxKey)) and returns the sorted slice,
// the real work behind the IS proxy.
func CountingSort(keys []int32, maxKey int32) []int32 {
	counts := make([]int32, maxKey)
	for _, k := range keys {
		counts[k]++
	}
	out := make([]int32, 0, len(keys))
	for k := int32(0); k < maxKey; k++ {
		for c := int32(0); c < counts[k]; c++ {
			out = append(out, k)
		}
	}
	return out
}

// LCG is the deterministic linear congruential generator the proxies use for
// data-dependent behaviour, so runs are reproducible per seed.
type LCG struct{ State uint64 }

// Next returns the next raw 64-bit value.
func (l *LCG) Next() uint64 {
	l.State = l.State*6364136223846793005 + 1442695040888963407
	return l.State
}

// Intn returns a value in [0, n).
func (l *LCG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int((l.Next() >> 11) % uint64(n))
}

// Float64 returns a value in [0, 1).
func (l *LCG) Float64() float64 {
	return float64(l.Next()>>11) / (1 << 53)
}
