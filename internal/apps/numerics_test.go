package apps

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 8, 64, 1024} {
		re := make([]float64, n)
		im := make([]float64, n)
		orig := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			orig[i] = re[i]
		}
		FFT(re, im)
		InverseFFT(re, im)
		for i := range re {
			if math.Abs(re[i]-orig[i]) > 1e-9 || math.Abs(im[i]) > 1e-9 {
				t.Fatalf("n=%d: FFT round trip broke at %d: %v %v", n, i, re[i], im[i])
			}
		}
	}
}

func TestFFTKnownSpectrum(t *testing.T) {
	// A pure cosine of frequency 3 over 32 samples concentrates energy in
	// bins 3 and 29.
	const n = 32
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = math.Cos(2 * math.Pi * 3 * float64(i) / n)
	}
	FFT(re, im)
	mag := func(k int) float64 { return math.Hypot(re[k], im[k]) }
	if mag(3) < 15 || mag(29) < 15 {
		t.Fatalf("spectral peaks missing: bin3=%v bin29=%v", mag(3), mag(29))
	}
	for k := 0; k < n; k++ {
		if k != 3 && k != 29 && mag(k) > 1e-9 {
			t.Fatalf("leakage at bin %d: %v", k, mag(k))
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 256
	re := make([]float64, n)
	im := make([]float64, n)
	var timeE float64
	for i := range re {
		re[i] = rng.NormFloat64()
		timeE += re[i] * re[i]
	}
	FFT(re, im)
	var freqE float64
	for i := range re {
		freqE += re[i]*re[i] + im[i]*im[i]
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-6*timeE {
		t.Fatalf("Parseval violated: time %v, freq/n %v", timeE, freqE/float64(n))
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT accepted length 12")
		}
	}()
	FFT(make([]float64, 12), make([]float64, 12))
}

func TestLaplacianMatVec(t *testing.T) {
	m := NewLaplacian1D(5)
	x := []float64{1, 1, 1, 1, 1}
	y := make([]float64, 5)
	m.MatVec(y, x)
	want := []float64{1, 0, 0, 0, 1} // interior rows cancel, boundaries don't
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("MatVec = %v, want %v", y, want)
		}
	}
}

func TestConjugateGradientConverges(t *testing.T) {
	const n = 64
	a := NewLaplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	st := NewCGState(a, b)
	initial := st.ResidualNorm()
	for i := 0; i < n; i++ {
		st.Step(nil)
	}
	if st.ResidualNorm() > initial*1e-8 {
		t.Fatalf("CG did not converge: %v -> %v", initial, st.ResidualNorm())
	}
	// Verify the solution: A·x ≈ b.
	ax := make([]float64, n)
	a.MatVec(ax, st.X)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("A·x[%d] = %v, want 1", i, ax[i])
		}
	}
}

func TestCGErrorEnergyNormMonotone(t *testing.T) {
	// CG minimises the A-norm of the error over growing Krylov subspaces,
	// so THAT quantity is monotone (the residual 2-norm is allowed to
	// oscillate). Obtain the exact solution by running to convergence,
	// then check the energy norm of the error never rises.
	const n = 32
	a := NewLaplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 3)
	}
	exact := NewCGState(a, b)
	for i := 0; i < 2*n; i++ {
		exact.Step(nil)
	}

	st := NewCGState(a, b)
	energy := func() float64 {
		e := make([]float64, n)
		ae := make([]float64, n)
		for i := range e {
			e[i] = exact.X[i] - st.X[i]
		}
		a.MatVec(ae, e)
		return Dot(e, ae)
	}
	prev := energy()
	for i := 0; i < n; i++ {
		st.Step(nil)
		cur := energy()
		if cur > prev*(1+1e-9)+1e-12 {
			t.Fatalf("iteration %d: error energy rose %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestCountingSortMatchesSort(t *testing.T) {
	f := func(raw []uint16) bool {
		keys := make([]int32, len(raw))
		for i, v := range raw {
			keys[i] = int32(v % 1000)
		}
		got := CountingSort(keys, 1000)
		want := append([]int32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLCGDeterministic(t *testing.T) {
	a := &LCG{State: 7}
	b := &LCG{State: 7}
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("LCG not deterministic")
		}
	}
	c := &LCG{State: 8}
	if a.Next() == c.Next() {
		t.Fatal("different seeds produced equal streams (suspicious)")
	}
	for i := 0; i < 100; i++ {
		if v := a.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := a.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	if a.Intn(0) != 0 {
		t.Fatal("Intn(0) should be 0")
	}
}

func TestDotAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("Axpy = %v", y)
	}
}
