package apps

import (
	"repro/internal/mpisim"
	"repro/internal/ompsim"
)

// LuleshRegion describes one of the ~30 OpenMP parallel regions a LULESH
// time step executes (paper section III-D2). Work scales with the problem
// size s: volume regions touch every element (s^3), surface regions touch
// boundary faces (s^2), line and constant regions are small bookkeeping —
// the ones that drown in fork/join overhead when run on the maximum thread
// count.
type LuleshRegion struct {
	Name  string
	Scale LuleshScale
	K     int64 // work multiplier
}

// LuleshScale is how a region's work grows with the problem size.
type LuleshScale int

// Region work scalings.
const (
	ScaleVolume  LuleshScale = iota // K * s^3
	ScaleSurface                    // K * s^2
	ScaleLine                       // K * s
	ScaleConst                      // K
)

// Work returns the region's work units for problem size s.
func (r LuleshRegion) Work(s int64) int64 {
	switch r.Scale {
	case ScaleVolume:
		return r.K * s * s * s
	case ScaleSurface:
		return r.K * s * s
	case ScaleLine:
		return r.K * s
	default:
		return r.K * 500
	}
}

// LuleshRegions is the per-time-step region table, named after the LULESH
// 2.0 routines. 30 regions: a few heavy element-volume loops, several
// medium ones, and many small node/boundary fix-ups.
func LuleshRegions() []LuleshRegion {
	return []LuleshRegion{
		{"InitStressTermsForElems", ScaleVolume, 1},
		{"IntegrateStressForElems", ScaleVolume, 6},
		{"CalcHourglassControlForElems", ScaleVolume, 8},
		{"CalcFBHourglassForceForElems", ScaleVolume, 5},
		{"CalcForceForNodes", ScaleVolume, 1},
		{"CalcAccelerationForNodes", ScaleVolume, 1},
		{"ApplyAccelerationBoundaryConditions", ScaleSurface, 1},
		{"CalcVelocityForNodes", ScaleVolume, 1},
		{"CalcPositionForNodes", ScaleVolume, 1},
		{"CalcKinematicsForElems", ScaleVolume, 4},
		{"CalcLagrangeElements", ScaleVolume, 1},
		{"CalcMonotonicQGradientsForElems", ScaleVolume, 3},
		{"CalcMonotonicQRegionForElems", ScaleVolume, 2},
		{"ApplyMaterialPropertiesForElems", ScaleVolume, 1},
		{"EvalEOSForElems_p1", ScaleVolume, 1},
		{"EvalEOSForElems_p2", ScaleVolume, 1},
		{"EvalEOSForElems_p3", ScaleVolume, 1},
		{"CalcEnergyForElems", ScaleVolume, 2},
		{"CalcPressureForElems", ScaleVolume, 1},
		{"CalcSoundSpeedForElems", ScaleVolume, 1},
		{"UpdateVolumesForElems", ScaleVolume, 1},
		{"CalcCourantConstraintForElems", ScaleLine, 8},
		{"CalcHydroConstraintForElems", ScaleLine, 8},
		{"CommSBN_pack", ScaleSurface, 1},
		{"CommSBN_unpack", ScaleSurface, 1},
		{"CommSyncPosVel_pack", ScaleSurface, 1},
		{"CommSyncPosVel_unpack", ScaleSurface, 1},
		{"CommMonoQ_unpack", ScaleSurface, 1},
		{"FieldInitFixup", ScaleConst, 1},
		{"BoundaryNodeFixup", ScaleLine, 2},
	}
}

// LuleshSteps returns the number of simulated time steps for a problem size,
// scaled down from LULESH's physics-driven iteration counts.
func LuleshSteps(s int64) int { return int(20 + 4*s) }

// LuleshSize maps a working-set class to the paper's -s parameter (10, 30,
// 50).
func LuleshSize(c Class) int64 { return pick3[int64](c, 10, 30, 50) }

// RunLuleshOMP runs the OpenMP-only LULESH kernel (the paper's section III-D
// use case) on an existing runtime for `steps` time steps and problem size
// s. Sequential work between regions models the non-parallel glue of a time
// step.
func RunLuleshOMP(rt *ompsim.Runtime, s int64, steps int) {
	regions := LuleshRegions()
	for step := 0; step < steps; step++ {
		for _, r := range regions {
			rt.Parallel(r.Name, r.Work(s), nil)
		}
		rt.Sequential(2_000, nil) // dt computation and step bookkeeping
	}
}

// RunLulesh is the hybrid MPI+OpenMP variant used for the Table I overhead
// measurements: each time step exchanges halo faces and reduces the time
// constraint over MPI, then runs the parallel regions.
func RunLulesh(ctx *Context) {
	m := ctx.MPI
	s := LuleshSize(ctx.Class)
	steps := LuleshSteps(s) / 2 // hybrid runs share work across ranks
	regions := LuleshRegions()
	field := make([]float64, 16*s)
	for i := range field {
		field[i] = float64(i%17) * 0.01
	}
	m.Bcast(0, []float64{float64(s)})
	m.Barrier()

	sink := 0.0
	for step := 0; step < steps; step++ {
		// CommRecv/CommSend/CommSBN: face exchange with both neighbours.
		faceExchange(m, 60, field[:4])
		for _, r := range regions {
			work := r.Work(s)
			rt := ctx.OMP
			rt.Parallel(r.Name, work, func(tid, n int) {
				if tid == 0 {
					sink += compute(field, sweeps(ctx.Class, 2))
				}
			})
		}
		// CalcTimeConstraintsForElems -> dt allreduce.
		m.Allreduce(mpisim.OpMin, []float64{1e-3 + sink*0})
	}
	m.Reduce(0, mpisim.OpSum, []float64{sink})
	m.Barrier()
}
