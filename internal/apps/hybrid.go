package apps

import (
	"math/rand"

	"repro/internal/mpisim"
)

// RunAMG is the algebraic-multigrid proxy. Real AMG builds a level hierarchy
// whose communication pattern depends on the matrix sparsity discovered at
// setup, so every level talks to a different, data-dependent set of
// neighbours and the event stream never settles into one short loop — the
// paper records ~150 grammar rules for it. The kernel reproduces that: a
// setup phase with per-level, pseudo-randomly drawn neighbour lists and a
// solve phase of V-cycles walking those levels.
func RunAMG(ctx *Context) {
	m := ctx.MPI
	levels := pick3(ctx.Class, 5, 6, 7)
	cycles := pick3(ctx.Class, 10, 15, 20)
	rng := rand.New(rand.NewSource(ctx.Seed*31 + int64(m.Rank())))

	// Setup: per level, draw the neighbour set (deterministic per seed) and
	// exchange sparsity metadata with each neighbour.
	neigh := make([][]int, levels)
	for l := 0; l < levels; l++ {
		count := 1 + rng.Intn(3)
		for k := 0; k < count; k++ {
			neigh[l] = append(neigh[l], rng.Intn(m.Size()))
		}
		for _, p := range neigh[l] {
			if p == m.Rank() {
				continue
			}
			m.Isend(p, 70+l, []float64{float64(l)})
		}
		m.Allreduce(mpisim.OpSum, []float64{float64(len(neigh[l]))})
		// Drain symmetric metadata: every rank knows how many messages
		// target it only after the allreduce; receive with wildcard.
		m.Barrier()
	}

	vec := make([]float64, pick3(ctx.Class, 512, 1024, 2048))
	sink := 0.0
	for c := 0; c < cycles; c++ {
		// Down-cycle: relax + restrict on every level.
		for l := 0; l < levels; l++ {
			for _, p := range neigh[l] {
				if p == m.Rank() {
					continue
				}
				m.Isend(p, 80+l, vec[:2])
			}
			if ctx.OMP != nil {
				ctx.OMP.Parallel("amg_relax", int64(3000>>uint(l)), nil)
			}
			sink += compute(vec, sweeps(ctx.Class, 1))
			m.Barrier() // level synchronisation stands in for recv matching
		}
		// Up-cycle: interpolate.
		for l := levels - 1; l >= 0; l-- {
			if ctx.OMP != nil {
				ctx.OMP.Parallel("amg_interp", int64(2000>>uint(l)), nil)
			}
			sink += compute(vec, sweeps(ctx.Class, 1))
			m.Barrier()
		}
		m.Allreduce(mpisim.OpSum, []float64{sink}) // residual
	}
	m.Reduce(0, mpisim.OpMax, []float64{sink})
	m.Barrier()
}

// RunKripke is the deterministic particle-transport proxy: a wavefront sweep
// over octants and energy groups. Each (octant, group) pair receives its
// upstream fluxes, computes on an OpenMP region, and forwards downstream —
// very regular nested loops (the paper measures 46 rules).
func RunKripke(ctx *Context) {
	m := ctx.MPI
	groups := pick3(ctx.Class, 2, 4, 8) // scaled from 128/512/1024
	const octants = 8
	steps := pick3(ctx.Class, 4, 6, 8)
	flux := make([]float64, pick3(ctx.Class, 512, 1024, 2048))
	m.Bcast(0, []float64{float64(groups)})
	m.Barrier()

	left, right := neighbors(m)
	first := m.Rank() == 0
	last := m.Rank() == m.Size()-1
	sink := 0.0
	for st := 0; st < steps; st++ {
		for oct := 0; oct < octants; oct++ {
			downstream := oct%2 == 0
			for g := 0; g < groups; g++ {
				if downstream {
					if !first {
						m.Recv(left, 90+oct)
					}
				} else if !last {
					m.Recv(right, 90+oct)
				}
				if ctx.OMP != nil {
					ctx.OMP.Parallel("kripke_sweep", 4_000, nil)
				}
				sink += compute(flux, sweeps(ctx.Class, 1))
				if downstream {
					if !last {
						m.Send(right, 90+oct, flux[:2])
					}
				} else if !first {
					m.Send(left, 90+oct, flux[:2])
				}
			}
		}
		m.Allreduce(mpisim.OpSum, []float64{sink}) // particle balance
	}
	m.Barrier()
}

// RunMiniFE is the implicit finite-element proxy: a matrix assembly phase of
// OpenMP regions followed by a fixed-length CG solve (200 iterations in the
// original; 40 here for every class — the working set changes only the data
// volume, which is why the paper sees just 8 rules and high predictability).
func RunMiniFE(ctx *Context) {
	m := ctx.MPI
	n := pick3(ctx.Class, 512, 2048, 4096)
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = float64(i%9) * 0.1
	}
	m.Bcast(0, []float64{float64(n)})
	m.Barrier()

	// Assembly.
	for b := 0; b < 8; b++ {
		if ctx.OMP != nil {
			ctx.OMP.Parallel("minife_assemble", int64(n)*20, nil)
		}
		compute(vec, sweeps(ctx.Class, 2))
	}
	m.Allreduce(mpisim.OpSum, []float64{1}) // norm of b

	left, right := neighbors(m)
	lap := NewLaplacian1D(n)
	st := NewCGState(lap, vec)
	sink := 0.0
	for it := 0; it < 40; it++ {
		r := m.Irecv(left, 100)
		m.Isend(right, 100, st.P[:2])
		m.Wait(r)
		if ctx.OMP != nil {
			ctx.OMP.Parallel("minife_spmv", int64(n)*8, nil)
			ctx.OMP.Parallel("minife_dot", int64(n), nil)
		}
		st.Step(nil) // the real sparse solve
		sink += compute(vec, sweeps(ctx.Class, 2))
		m.Allreduce(mpisim.OpSum, []float64{st.RhoOld}) // dot product
	}
	m.Allreduce(mpisim.OpSum, []float64{sink + st.ResidualNorm()})
	m.Barrier()
}

// RunQuicksilver is the dynamic Monte-Carlo transport proxy. A particle is
// sent to a neighbour whenever it exits the local domain, so the
// communication pattern depends on the random particle positions: the event
// stream is irregular and the grammar blows up (the paper records 409 rules
// and ~27M events). Each step tracks particles on an OpenMP region, then
// performs a data-dependent number of sends to random neighbours, then
// agrees on termination with allreduces.
func RunQuicksilver(ctx *Context) {
	m := ctx.MPI
	steps := pick3(ctx.Class, 5, 8, 10)
	batches := pick3(ctx.Class, 6, 10, 16)
	rng := rand.New(rand.NewSource(ctx.Seed*97 + int64(m.Rank()*13)))
	buf := make([]float64, pick3(ctx.Class, 512, 1024, 2048))
	m.Bcast(0, []float64{float64(steps)})
	m.Barrier()

	sink := 0.0
	for st := 0; st < steps; st++ {
		for b := 0; b < batches; b++ {
			if ctx.OMP != nil {
				ctx.OMP.Parallel("qs_cycleTracking", 3_000, nil)
			}
			sink += compute(buf, sweeps(ctx.Class, 2))
			// Particles escaping this batch: 0..3 sends to random peers.
			escapes := rng.Intn(4)
			for e := 0; e < escapes; e++ {
				dest := rng.Intn(m.Size())
				if dest == m.Rank() {
					continue
				}
				m.Isend(dest, 110, buf[:2])
			}
			// Tell everyone how many messages are in flight, then drain.
			counts := make([]float64, m.Size())
			counts[m.Rank()] = float64(escapes)
			m.Allreduce(mpisim.OpSum, counts)
		}
		m.Allreduce(mpisim.OpSum, []float64{sink}) // tallies
		m.Allreduce(mpisim.OpMax, []float64{sink}) // balance
		m.Barrier()                                // step fence
	}
	m.Reduce(0, mpisim.OpSum, []float64{sink})
	m.Barrier()
}
