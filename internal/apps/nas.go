package apps

import "repro/internal/mpisim"

// RunBT is the Block-Tridiagonal solver kernel. Its structure follows the
// grammar the paper extracts in Fig. 7: a setup of broadcasts and a halo
// exchange, 200 iterations (all classes — BT's iteration count does not
// depend on the working set) of ADI sweeps with non-blocking point-to-point
// communication, and a closing pair of allreduces, a reduce and barriers.
func RunBT(ctx *Context) {
	m := ctx.MPI
	n := pick3(ctx.Class, 32, 64, 128) // line length
	const lines = 8
	grid := make([]float64, lines*n)
	for i := range grid {
		grid[i] = float64(i%7) * 0.1
	}
	scratch := make([]float64, n)
	for i := 0; i < 6; i++ {
		m.Bcast(0, []float64{float64(n)})
	}
	faceExchange(m, 0, grid[:4])
	m.Barrier()

	left, right := neighbors(m)
	adiRepeats := pick3(ctx.Class, 1, 4, 12)
	sink := 0.0
	for it := 0; it < 200; it++ {
		faceExchange(m, 1, grid[:4])
		// The real ADI step: implicit tridiagonal solves along the three
		// directions (three sweeps over the local lines).
		for dir := 0; dir < 3; dir++ {
			for rp := 0; rp < adiRepeats; rp++ {
				sink += ADISweep(grid, lines, n, 0.4, scratch)
			}
		}
		r := m.Irecv(left, 2)
		m.Isend(right, 2, grid[:2])
		m.Wait(r)
		w := m.Irecv(left, 3)
		m.Isend(right, 3, grid[:2])
		m.Wait(w)
	}
	m.Allreduce(mpisim.OpSum, []float64{sink})
	m.Allreduce(mpisim.OpMax, []float64{sink})
	faceExchange(m, 4, grid[:4])
	m.Reduce(0, mpisim.OpSum, []float64{sink})
	m.Barrier()
}

// RunSP is the Scalar-Pentadiagonal solver kernel: 150 iterations (all
// classes) of three directional sweeps, each with its own pipelined
// exchange, giving a slightly richer grammar than BT (paper Table I: 9
// rules).
const spLineLen = 32

func RunSP(ctx *Context) {
	m := ctx.MPI
	n := pick3(ctx.Class, 256, 512, 1024)
	grid := make([]float64, n-n%spLineLen)
	for i := range grid {
		grid[i] = float64(i%5) * 0.2
	}
	for i := 0; i < 4; i++ {
		m.Bcast(0, []float64{float64(n)})
	}
	m.Barrier()

	left, right := neighbors(m)
	scratch := make([]float64, spLineLen)
	adiRepeats := pick3(ctx.Class, 1, 4, 12)
	sink := 0.0
	for it := 0; it < 150; it++ {
		for dim := 0; dim < 3; dim++ {
			r1 := m.Irecv(left, 10+dim)
			r2 := m.Irecv(right, 10+dim)
			m.Isend(right, 10+dim, grid[:2])
			m.Isend(left, 10+dim, grid[:2])
			m.Wait(r1)
			m.Wait(r2)
			// Scalar-pentadiagonal solves approximated by two coupled
			// tridiagonal passes per direction.
			for rp := 0; rp < adiRepeats; rp++ {
				sink += ADISweep(grid, len(grid)/spLineLen, spLineLen, 0.25, scratch)
				sink += ADISweep(grid, len(grid)/spLineLen, spLineLen, 0.15, scratch)
			}
		}
		if it%30 == 29 {
			m.Allreduce(mpisim.OpMax, []float64{sink})
		}
	}
	m.Allreduce(mpisim.OpSum, []float64{sink})
	m.Reduce(0, mpisim.OpSum, []float64{sink})
	m.Barrier()
}

// RunCG is the Conjugate-Gradient kernel: outer eigenvalue iterations (15
// for the small class, 75 for medium and large, as in NPB) around an inner
// CG solve of 25 iterations, each exchanging partition sums with ring
// neighbours and allreducing the dot products.
func RunCG(ctx *Context) {
	m := ctx.MPI
	outer := pick3(ctx.Class, 15, 75, 75)
	n := pick3(ctx.Class, 512, 768, 1024)
	lap := NewLaplacian1D(n)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1.0 / float64(i+1)
	}
	smooth := make([]float64, n)
	m.Bcast(0, []float64{float64(n)})
	m.Barrier()

	// Dot products are split across ranks: each rank holds a partition of
	// the vector, so every inner product is an allreduce — NPB CG's
	// signature communication pattern.
	globalDot := func(a, b []float64) float64 {
		return m.Allreduce(mpisim.OpSum, []float64{Dot(a, b)})[0]
	}
	left, right := neighbors(m)
	sink := 0.0
	for o := 0; o < outer; o++ {
		st := NewCGState(lap, rhs)
		m.Allreduce(mpisim.OpSum, []float64{st.RhoOld}) // rho
		for i := 0; i < 25; i++ {
			// Halo exchange of partition boundaries before the matvec.
			r := m.Irecv(left, 20)
			m.Isend(right, 20, st.P[:2])
			m.Wait(r)
			st.Step(globalDot)
			// Jacobi smoothing stands in for the preconditioner.
			sink += compute(smooth, sweeps(ctx.Class, 1))
		}
		m.Allreduce(mpisim.OpSum, []float64{st.ResidualNorm()}) // zeta
	}
	m.Reduce(0, mpisim.OpMax, []float64{sink})
	m.Barrier()
}

// RunEP is the Embarrassingly-Parallel kernel: pure local computation
// followed by three allreduces and a barrier — the paper records just a
// handful of events and a single grammar rule.
func RunEP(ctx *Context) {
	m := ctx.MPI
	n := pick3(ctx.Class, 1<<14, 1<<16, 1<<18)
	// Marsaglia-style pseudo-random pair counting, the spirit of NPB EP.
	state := uint64(ctx.Seed)*2862933555777941757 + 3037000493 + uint64(m.Rank())
	inside := 0.0
	for i := 0; i < n; i++ {
		state = state*2862933555777941757 + 3037000493
		x := float64(state>>11) / (1 << 53)
		state = state*2862933555777941757 + 3037000493
		y := float64(state>>11) / (1 << 53)
		if x*x+y*y <= 1 {
			inside++
		}
	}
	m.Allreduce(mpisim.OpSum, []float64{inside})
	m.Allreduce(mpisim.OpSum, []float64{float64(n)})
	m.Allreduce(mpisim.OpMax, []float64{inside})
	m.Barrier()
}

// RunFT is the 3-D FFT kernel: a transpose-based spectral solver whose
// iteration count grows with the working set (6 for small, 20 for medium and
// large, as in NPB), each iteration being an all-to-all transpose plus a
// checksum allreduce.
func RunFT(ctx *Context) {
	m := ctx.MPI
	iters := pick3(ctx.Class, 6, 20, 20)
	n := pick3(ctx.Class, 2048, 8192, 16384)
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i % 3)
	}
	for i := 0; i < 3; i++ {
		m.Bcast(0, []float64{float64(n)})
	}
	m.Barrier()

	im := make([]float64, n)
	sink := 0.0
	repeats := pick3(ctx.Class, 1, 2, 4)
	for it := 0; it < iters; it++ {
		send := make([][]float64, m.Size())
		for d := range send {
			send[d] = data[:2]
		}
		m.Alltoall(send) // transpose
		// A real spectral step: forward transform, evolve, inverse.
		for rp := 0; rp < repeats; rp++ {
			FFT(data, im)
			for i := range data {
				data[i] *= 0.999
				im[i] *= 0.999
			}
			InverseFFT(data, im)
		}
		sink += data[n/2]
		m.Allreduce(mpisim.OpSum, []float64{sink}) // checksum
	}
	m.Barrier()
}

// RunIS is the Integer-Sort kernel: 10 iterations (all classes) of bucket
// statistics (allreduce), key redistribution (two all-to-alls, for counts
// and keys), and a final verification.
func RunIS(ctx *Context) {
	m := ctx.MPI
	maxKey := int32(pick3(ctx.Class, 1<<10, 1<<12, 1<<14))
	count := pick3(ctx.Class, 1024, 4096, 8192) * pick3(ctx.Class, 1, 6, 24)
	rng := LCG{State: uint64(ctx.Seed + int64(m.Rank()))}
	keys := make([]int32, count)
	for i := range keys {
		keys[i] = int32(rng.Intn(int(maxKey)))
	}
	m.Barrier()

	buckets := make([]float64, 4)
	for it := 0; it < 10; it++ {
		// Local bucket histogram feeds the global size exchange.
		for i := range buckets {
			buckets[i] = 0
		}
		for _, k := range keys {
			buckets[int(k)*len(buckets)/int(maxKey)]++
		}
		m.Allreduce(mpisim.OpSum, buckets) // bucket sizes
		send := make([][]float64, m.Size())
		for d := range send {
			send[d] = buckets[:2]
		}
		m.Alltoall(send) // counts
		m.Alltoall(send) // keys
		keys = CountingSort(keys, maxKey)
		// Perturb a few keys so the next iteration sorts real work again.
		for p := 0; p < len(keys)/16; p++ {
			keys[rng.Intn(len(keys))] = int32(rng.Intn(int(maxKey)))
		}
	}
	m.Allreduce(mpisim.OpSum, buckets[:1])
	m.Allreduce(mpisim.OpMax, buckets[:1])
	m.Barrier()
}

// RunLU is the SSOR solver kernel. Its outer iteration count is fixed (12),
// but each iteration performs pipelined lower/upper triangular sweeps over
// the nz grid planes — and nz grows with the working set (24/48/96). A trace
// recorded on the small class therefore mispredicts at the plane-loop
// boundaries when replayed on larger classes, exactly the behaviour the
// paper reports for LU in Fig. 8.
func RunLU(ctx *Context) {
	m := ctx.MPI
	nz := pick3(ctx.Class, 24, 48, 96)
	plane := make([]float64, pick3(ctx.Class, 128, 192, 256))
	for i := range plane {
		plane[i] = float64(i%11) * 0.3
	}
	for i := 0; i < 5; i++ {
		m.Bcast(0, []float64{float64(nz)})
	}
	m.Barrier()

	left, right := neighbors(m)
	first := m.Rank() == 0
	last := m.Rank() == m.Size()-1
	sink := 0.0
	for it := 0; it < 12; it++ {
		// Lower-triangular pipelined sweep.
		for k := 0; k < nz; k++ {
			if !first {
				m.Recv(left, 30)
			}
			sink += compute(plane, sweeps(ctx.Class, 3))
			if !last {
				m.Send(right, 30, plane[:2])
			}
		}
		// Upper-triangular pipelined sweep (reverse direction).
		for k := 0; k < nz; k++ {
			if !last {
				m.Recv(right, 31)
			}
			sink += compute(plane, sweeps(ctx.Class, 3))
			if !first {
				m.Send(left, 31, plane[:2])
			}
		}
		if it%10 == 9 {
			m.Allreduce(mpisim.OpSum, []float64{sink}) // residual norm
		}
	}
	m.Allreduce(mpisim.OpSum, []float64{sink})
	m.Barrier()
}

// RunMG is the MultiGrid kernel: V-cycles whose depth (number of grid
// levels) grows with the working set (4/5/6), each level performing a halo
// exchange. The level-loop length difference across classes produces the
// same loop-boundary mispredictions as LU.
func RunMG(ctx *Context) {
	m := ctx.MPI
	levels := pick3(ctx.Class, 9, 10, 11) // finest grid 512/1024/2048 points
	iters := pick3(ctx.Class, 4, 10, 10)
	mg := NewMGHierarchy(levels)
	mg.SetRHS(func(x float64) float64 { return x * (1 - x) })
	m.Bcast(0, []float64{float64(levels)})
	m.Barrier()

	smoothSweeps := sweeps(ctx.Class, 12)
	sink := 0.0
	for it := 0; it < iters; it++ {
		// A real V-cycle; the per-level hook places the halo exchanges
		// exactly where the original application communicates, and the
		// number of levels — hence the loop length — grows with the
		// working set, the paper's MG misprediction mechanism.
		res := mg.VCycle(smoothSweeps, smoothSweeps, func(l int, down bool) {
			tag := 40 + l
			if !down {
				tag = 90 + l
			}
			faceExchange(m, tag, mg.Levels[l].U[:2])
		})
		sink += res
		m.Allreduce(mpisim.OpSum, []float64{res}) // residual
	}
	m.Allreduce(mpisim.OpMax, []float64{sink})
	m.Barrier()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
