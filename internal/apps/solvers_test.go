package apps

import (
	"math"
	"testing"
)

func TestThomasSolveAgainstDense(t *testing.T) {
	// Solve (I + 2σI - σ shifts) x = d and verify by multiplying back.
	const n = 64
	lower, diag, upper := -0.3, 1.6, -0.3
	d := make([]float64, n)
	for i := range d {
		d[i] = math.Sin(float64(i))
	}
	rhs := append([]float64(nil), d...)
	scratch := make([]float64, n)
	ThomasSolve(lower, diag, upper, d, scratch)
	// Multiply the tridiagonal matrix by the solution.
	for i := 0; i < n; i++ {
		got := diag * d[i]
		if i > 0 {
			got += lower * d[i-1]
		}
		if i < n-1 {
			got += upper * d[i+1]
		}
		if math.Abs(got-rhs[i]) > 1e-9 {
			t.Fatalf("row %d: A·x = %v, want %v", i, got, rhs[i])
		}
	}
}

func TestThomasSolveEmpty(t *testing.T) {
	ThomasSolve(1, 2, 1, nil, nil) // must not panic
}

func TestADISweepSmooths(t *testing.T) {
	const lines, n = 8, 32
	grid := make([]float64, lines*n)
	for i := range grid {
		grid[i] = float64(i % 7)
	}
	scratch := make([]float64, n)
	variance := func() float64 {
		mean, v := 0.0, 0.0
		for _, x := range grid {
			mean += x
		}
		mean /= float64(len(grid))
		for _, x := range grid {
			v += (x - mean) * (x - mean)
		}
		return v
	}
	before := variance()
	for k := 0; k < 5; k++ {
		ADISweep(grid, lines, n, 0.4, scratch)
	}
	if variance() >= before {
		t.Fatalf("ADI sweeps did not smooth: variance %v -> %v", before, variance())
	}
}

func TestMGVCycleConverges(t *testing.T) {
	mg := NewMGHierarchy(6) // finest grid: 65 points
	mg.SetRHS(func(x float64) float64 {
		return math.Pi * math.Pi * math.Sin(math.Pi*x) // -u'' = f, u = sin(pi x)
	})
	var norm float64
	var prev float64 = math.Inf(1)
	for cycle := 0; cycle < 10; cycle++ {
		norm = mg.VCycle(2, 2, nil)
		if cycle > 0 && norm > prev*0.9 {
			t.Fatalf("cycle %d: residual %v did not contract from %v", cycle, norm, prev)
		}
		prev = norm
	}
	// Compare against the analytic solution u = sin(pi x).
	fine := mg.Levels[0]
	n := len(fine.U) - 1
	for i := 0; i <= n; i++ {
		want := math.Sin(math.Pi * float64(i) / float64(n))
		if math.Abs(fine.U[i]-want) > 5e-3 {
			t.Fatalf("u[%d] = %v, want %v", i, fine.U[i], want)
		}
	}
}

func TestMGVCycleLevelHook(t *testing.T) {
	mg := NewMGHierarchy(4)
	mg.SetRHS(func(x float64) float64 { return 1 })
	var downs, ups []int
	mg.VCycle(1, 1, func(l int, down bool) {
		if down {
			downs = append(downs, l)
		} else {
			ups = append(ups, l)
		}
	})
	// Down visits 0..last, up visits last-1..0.
	if len(downs) != 4 || downs[0] != 0 || downs[3] != 3 {
		t.Fatalf("downs = %v", downs)
	}
	if len(ups) != 3 || ups[0] != 2 || ups[2] != 0 {
		t.Fatalf("ups = %v", ups)
	}
}
