// Package iosim is a third runtime-system substrate for Pythia, showing the
// genericity claim of the paper's related-work section: unlike Omnisc'IO
// (grammar-based prediction built *into* an I/O stack) or NLR (memory
// accesses only), Pythia is a generic oracle any runtime can consult. Here
// the runtime is a storage layer: applications read and write chunked files,
// every operation raises a Pythia event carrying the file and chunk index,
// and a prefetcher turns predictions of future reads into overlapped
// background loads.
//
// Time is virtual and deterministic: a cold chunk read costs LatencyNs; a
// prefetch issued early enough makes the subsequent read free, exactly the
// I/O-hiding effect Omnisc'IO demonstrates.
package iosim

import (
	"fmt"
	"sync"

	"repro/pythia"
)

// Config tunes the simulated storage.
type Config struct {
	// ChunkSize is the unit of transfer (bytes). Default 64 KiB.
	ChunkSize int
	// LatencyNs is the cost of fetching one cold chunk. Default 2ms.
	LatencyNs int64
	// ComputeNsPerByte is the virtual cost the application pays to process
	// a chunk (gives the prefetcher a window to hide latency in).
	ComputeNsPerByte float64
	// Oracle attaches Pythia; nil runs un-instrumented.
	Oracle *pythia.Oracle
	// Prefetch enables prediction-driven prefetching (predict mode only).
	Prefetch bool
	// PrefetchDepth is how many events ahead the prefetcher looks
	// (default 8).
	PrefetchDepth int
}

// Stats summarises a run.
type Stats struct {
	Reads, Writes   int64
	ColdReads       int64 // reads that paid full latency
	HiddenReads     int64 // reads whose latency a prefetch (partially) hid
	PrefetchsIssued int64
	WastedPrefetch  int64 // prefetched chunks never read before eviction
}

// chunkKey identifies one chunk of one file.
type chunkKey struct {
	file  int32
	chunk int32
}

// Store is the simulated storage layer. One Store per thread of the
// application (it is not safe for concurrent use, like the other Pythia
// runtime integrations).
type Store struct {
	cfg   Config
	vnow  int64
	files map[string]int32
	names []string
	data  map[chunkKey][]byte

	// readyAt maps a chunk to the virtual time its staged copy becomes
	// available (prefetch in flight or completed).
	readyAt map[chunkKey]int64

	th   *pythia.Thread
	ids  map[string]pythia.ID
	mu   sync.Mutex
	stat Stats
}

// New creates a store.
func New(cfg Config) *Store {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 64 << 10
	}
	if cfg.LatencyNs <= 0 {
		cfg.LatencyNs = 2_000_000
	}
	if cfg.PrefetchDepth <= 0 {
		cfg.PrefetchDepth = 8
	}
	s := &Store{
		cfg:     cfg,
		files:   make(map[string]int32),
		data:    make(map[chunkKey][]byte),
		readyAt: make(map[chunkKey]int64),
		ids:     make(map[string]pythia.ID),
	}
	if cfg.Oracle != nil {
		s.th = cfg.Oracle.Thread(0)
	}
	return s
}

// Now returns the virtual clock (ns).
func (s *Store) Now() int64 { return s.vnow }

// Stats returns run statistics.
func (s *Store) Stats() Stats { return s.stat }

// fileID interns a file name.
func (s *Store) fileID(name string) int32 {
	if id, ok := s.files[name]; ok {
		return id
	}
	id := int32(len(s.names))
	s.files[name] = id
	s.names = append(s.names, name)
	return id
}

// submit raises an I/O event carrying the operation, file and chunk.
func (s *Store) submit(op string, file, chunk int32) {
	if s.th == nil {
		return
	}
	s.th.SubmitAt(s.cfg.Oracle.Intern(op, int64(file), int64(chunk)), s.vnow)
}

// WriteChunk stores data as chunk idx of the named file.
func (s *Store) WriteChunk(name string, idx int, payload []byte) {
	file := s.fileID(name)
	s.submit("io_write", file, int32(idx))
	key := chunkKey{file, int32(idx)}
	s.data[key] = append([]byte(nil), payload...)
	// Writes land in the page cache: subsequent reads are warm.
	s.readyAt[key] = s.vnow
	s.vnow += int64(float64(len(payload)) * 0.1) // cheap buffered write
	s.stat.Writes++
}

// ReadChunk returns chunk idx of the named file, paying cold latency unless
// a prefetch staged it in time. It then charges the configured compute cost,
// which is the window the prefetcher uses for the *next* chunks.
func (s *Store) ReadChunk(name string, idx int) []byte {
	file := s.fileID(name)
	s.submit("io_read", file, int32(idx))
	s.stat.Reads++
	key := chunkKey{file, int32(idx)}

	ready, staged := s.readyAt[key]
	switch {
	case staged && ready <= s.vnow:
		// Fully hidden.
		s.stat.HiddenReads++
	case staged:
		// Partially hidden: wait out the remainder.
		s.stat.HiddenReads++
		s.vnow = ready
	default:
		s.stat.ColdReads++
		s.vnow += s.cfg.LatencyNs
		s.readyAt[key] = s.vnow
	}

	payload := s.data[key]
	if payload == nil {
		payload = make([]byte, s.cfg.ChunkSize)
	}
	s.vnow += int64(s.cfg.ComputeNsPerByte * float64(len(payload)))

	// After serving the read, consult the oracle about what comes next and
	// stage it in the background.
	if s.cfg.Prefetch && s.th != nil {
		s.prefetchAhead()
	}
	return payload
}

// prefetchAhead stages the chunks of predicted upcoming reads.
func (s *Store) prefetchAhead() {
	for _, p := range s.th.PredictSequence(s.cfg.PrefetchDepth) {
		name := s.cfg.Oracle.EventName(pythia.ID(p.EventID))
		var file, chunk int32
		if n, err := fmt.Sscanf(name, "io_read:%d:%d", &file, &chunk); err != nil || n != 2 {
			continue
		}
		key := chunkKey{file, chunk}
		if _, staged := s.readyAt[key]; staged {
			continue
		}
		// The background fetch overlaps with compute: it completes one
		// latency from now without advancing the application clock.
		s.readyAt[key] = s.vnow + s.cfg.LatencyNs
		s.stat.PrefetchsIssued++
	}
}

// Compute charges pure application compute time (no events).
func (s *Store) Compute(ns int64) { s.vnow += ns }

// Evict drops staged copies (end of an application phase); chunks prefetched
// but never read are counted as waste.
func (s *Store) Evict() {
	for key, ready := range s.readyAt {
		if ready > s.vnow {
			s.stat.WastedPrefetch++
		}
		delete(s.readyAt, key)
	}
}
