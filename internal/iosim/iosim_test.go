package iosim

import (
	"testing"

	"repro/pythia"
)

// stridedApp reads a file in the strided pattern scientific readers use:
// iterations over the same chunk sequence, with compute between reads.
func stridedApp(s *Store, iters, chunks int) {
	for i := 0; i < iters; i++ {
		for c := 0; c < chunks; c++ {
			s.ReadChunk("mesh.dat", c)
			s.Compute(500_000) // 0.5ms of processing per chunk
		}
		s.Evict() // phase boundary: staged data goes stale
	}
}

func TestColdReadsPayLatency(t *testing.T) {
	s := New(Config{LatencyNs: 1_000_000})
	start := s.Now()
	s.ReadChunk("f", 0)
	if s.Now()-start < 1_000_000 {
		t.Fatalf("cold read took %dns, want >= latency", s.Now()-start)
	}
	st := s.Stats()
	if st.ColdReads != 1 || st.HiddenReads != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteMakesReadWarm(t *testing.T) {
	s := New(Config{})
	s.WriteChunk("f", 0, []byte{1, 2, 3})
	before := s.Now()
	got := s.ReadChunk("f", 0)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("payload = %v", got)
	}
	if s.Now()-before >= s.cfg.LatencyNs {
		t.Fatal("read after write paid cold latency")
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	const iters, chunks = 30, 16

	// Vanilla run (no oracle).
	vanilla := New(Config{})
	stridedApp(vanilla, iters, chunks)
	vanillaNs := vanilla.Now()

	// Record the reference.
	rec := pythia.NewRecordOracle()
	recorded := New(Config{Oracle: rec})
	stridedApp(recorded, iters, chunks)
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Predict + prefetch.
	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pre := New(Config{Oracle: oracle, Prefetch: true})
	stridedApp(pre, iters, chunks)
	prefetchNs := pre.Now()
	st := pre.Stats()

	if st.PrefetchsIssued == 0 {
		t.Fatal("no prefetches issued")
	}
	if st.HiddenReads == 0 {
		t.Fatal("no reads were hidden")
	}
	if prefetchNs >= vanillaNs {
		t.Fatalf("prefetch run (%dms) not faster than vanilla (%dms)",
			prefetchNs/1e6, vanillaNs/1e6)
	}
	improvement := 1 - float64(prefetchNs)/float64(vanillaNs)
	t.Logf("vanilla %.1fms, prefetch %.1fms (%.0f%% faster), %d/%d reads hidden",
		float64(vanillaNs)/1e6, float64(prefetchNs)/1e6, improvement*100,
		st.HiddenReads, st.Reads)
	if improvement < 0.2 {
		t.Fatalf("improvement %.0f%% too small for a fully periodic pattern", improvement*100)
	}
}

func TestRecordingDoesNotChangeVirtualTime(t *testing.T) {
	vanilla := New(Config{})
	stridedApp(vanilla, 10, 8)

	rec := pythia.NewRecordOracle()
	recorded := New(Config{Oracle: rec})
	stridedApp(recorded, 10, 8)

	if vanilla.Now() != recorded.Now() {
		t.Fatalf("recording changed virtual time: %d vs %d", vanilla.Now(), recorded.Now())
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New(Config{})
	s.WriteChunk("f", 0, make([]byte, 10))
	s.ReadChunk("f", 0)
	s.ReadChunk("f", 1)
	st := s.Stats()
	if st.Writes != 1 || st.Reads != 2 || st.ColdReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
