package progress

import (
	"math/rand"
	"testing"
)

// TestStepperMatchesSuccessorsAnchored walks several traces from the start
// with a Stepper and requires exact agreement with the Successors reference
// at every step: AdvanceOK iff Successors returns exactly one branch, with
// the same position; AdvanceEnd iff Successors returns none.
func TestStepperMatchesSuccessorsAnchored(t *testing.T) {
	for _, s := range []string{
		"ab",
		"ababab",
		"abbcbcabbbcbcabbbcbcab",
		"abcabcabcabcabc",
		"aaaabaaaabaaaab",
		"xyxyzxyxyzxyxyz",
	} {
		f := freeze(seqOf(s))
		pos, ok := Start(f)
		if !ok {
			t.Fatalf("%q: no start position", s)
		}
		var st Stepper
		st.Reset(f, pos)
		if st.Terminal() != pos.Terminal(f) {
			t.Fatalf("%q: stepper terminal %d, position terminal %d", s, st.Terminal(), pos.Terminal(f))
		}
		for step := 0; ; step++ {
			want := Successors(f, pos, 1)
			res := st.Advance()
			switch {
			case len(want) == 0:
				if res != AdvanceEnd {
					t.Fatalf("%q step %d: Successors empty but Advance = %v", s, step, res)
				}
				if st.Pos().Key() != pos.Key() {
					t.Fatalf("%q step %d: position changed on AdvanceEnd", s, step)
				}
				return
			case len(want) == 1:
				if res != AdvanceOK {
					t.Fatalf("%q step %d: unique successor but Advance = %v", s, step, res)
				}
				if st.Pos().Key() != want[0].Pos.Key() {
					t.Fatalf("%q step %d: stepper at %v, want %v", s, step, st.Pos(), want[0].Pos)
				}
				if st.Terminal() != want[0].Pos.Terminal(f) {
					t.Fatalf("%q step %d: terminal %d, want %d", s, step, st.Terminal(), want[0].Pos.Terminal(f))
				}
				pos = want[0].Pos
			default:
				// An anchored walk is deterministic; reaching here means the
				// reference itself branched, which the test traces never do.
				t.Fatalf("%q step %d: anchored walk branched (%d successors)", s, step, len(want))
			}
		}
	}
}

// TestStepperPartialPositions seeds steppers at every grammar occurrence of
// every event (partial, non-anchored hypotheses) and cross-checks each
// Advance against Successors: the stepper must take exactly the branch-free
// subset — AdvanceOK only when the reference has a unique successor, and the
// same position when it does; on AdvanceEnd/AdvanceBranch the stepper's
// position must be unchanged and the walk re-startable via the reference.
func TestStepperPartialPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqs := [][]int32{
		seqOf("abbcbcabbbcbcabbbcbcab"),
		seqOf("abcabdababcabcabdababc"),
		seqOf("aabbaabbaabbaabb"),
	}
	for si, seq := range seqs {
		f := freeze(seq)
		events := map[int32]bool{}
		for _, e := range seq {
			events[e] = true
		}
		for e := range events {
			for oi, occ := range Occurrences(f, e) {
				var st Stepper
				st.Reset(f, occ.Pos)
				pos := occ.Pos
				for step := 0; step < 200; step++ {
					want := Successors(f, pos, 1)
					res := st.Advance()
					if res == AdvanceOK {
						if len(want) != 1 {
							t.Fatalf("seq %d ev %d occ %d step %d: AdvanceOK with %d reference successors",
								si, e, oi, step, len(want))
						}
						if st.Pos().Key() != want[0].Pos.Key() {
							t.Fatalf("seq %d ev %d occ %d step %d: position %v, want %v",
								si, e, oi, step, st.Pos(), want[0].Pos)
						}
						pos = want[0].Pos
						continue
					}
					if res == AdvanceEnd && len(want) != 0 {
						t.Fatalf("seq %d ev %d occ %d step %d: AdvanceEnd with %d reference successors",
							si, e, oi, step, len(want))
					}
					if st.Pos().Key() != pos.Key() {
						t.Fatalf("seq %d ev %d occ %d step %d: position changed on %v",
							si, e, oi, step, res)
					}
					if len(want) == 0 {
						break
					}
					// Resume the walk on a random reference branch, as the
					// predictor's general machinery would.
					pos = want[rng.Intn(len(want))].Pos
					st.Reset(f, pos)
				}
			}
		}
	}
}

// TestStepperViewsAndRefs checks the accessor contracts: PosView aliases the
// internal buffer (changes under Advance) while Pos is durable, and
// AppendRefs matches Position.AppendRefs.
func TestStepperViewsAndRefs(t *testing.T) {
	f := freeze(seqOf("abbcbcabbbcbcabbbcbcab"))
	pos, _ := Start(f)
	var st Stepper
	st.Reset(f, pos)
	for step := 0; step < 10; step++ {
		durable := st.Pos()
		view := st.PosView()
		if durable.Key() != view.Key() {
			t.Fatalf("step %d: Pos and PosView disagree", step)
		}
		gotRefs := st.AppendRefs(nil)
		wantRefs := durable.AppendRefs(nil)
		if len(gotRefs) != len(wantRefs) {
			t.Fatalf("step %d: AppendRefs %v, want %v", step, gotRefs, wantRefs)
		}
		for i := range gotRefs {
			if gotRefs[i] != wantRefs[i] {
				t.Fatalf("step %d: AppendRefs %v, want %v", step, gotRefs, wantRefs)
			}
		}
		if st.Advance() != AdvanceOK {
			break
		}
		if durable.Key() == st.Pos().Key() {
			t.Fatalf("step %d: durable Pos followed the stepper", step)
		}
	}
	var empty Stepper
	if empty.Live() {
		t.Fatal("zero stepper claims to be live")
	}
	if empty.Advance() != AdvanceBranch {
		t.Fatal("zero stepper advance must report AdvanceBranch")
	}
}
