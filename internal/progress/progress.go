// Package progress implements Pythia's progress sequences (paper section
// II-B): paths through the grammar that pinpoint one occurrence of a
// terminal in the reference trace. A progress sequence anchored at the root
// identifies the occurrence uniquely and advances deterministically; a
// partial progress sequence (used after an unexpected event) anchors at an
// inner rule and grows upward as subsequent events disambiguate the context,
// branching into weighted alternatives when several contexts remain
// possible.
package progress

import (
	"fmt"
	"strings"

	"repro/internal/grammar"
)

// Frame is one step of a progress sequence: a run inside a rule body (Ref)
// and the repetition of that run currently executing (Iter, 0-based).
type Frame struct {
	Ref  grammar.UserRef
	Iter uint32
}

// Position is a progress sequence. Frames[0] is the topmost (anchor) frame;
// each following frame lies inside the rule referenced by the run above it;
// the final frame designates a terminal run. A Position is immutable: all
// operations return new values.
type Position struct {
	frames []Frame
}

// Branch is a weighted alternative position. Weights are relative
// probabilities derived from occurrence counts in the reference trace.
type Branch struct {
	Pos    Position
	Weight float64
}

// NewPosition builds a position from frames (topmost first). Intended for
// tests; normal construction goes through Start, Occurrences and Successors.
func NewPosition(frames ...Frame) Position {
	return Position{frames: append([]Frame(nil), frames...)}
}

// Frames returns a copy of the frame stack, topmost first.
func (p Position) Frames() []Frame { return append([]Frame(nil), p.frames...) }

// Depth returns the number of frames.
func (p Position) Depth() int { return len(p.frames) }

// Valid reports whether the position has at least one frame.
func (p Position) Valid() bool { return len(p.frames) > 0 }

// Anchored reports whether the position is anchored at the root rule, i.e.
// identifies a unique occurrence in the reference trace.
func (p Position) Anchored() bool {
	return len(p.frames) > 0 && p.frames[0].Ref.Rule == 0
}

// Ref returns the terminal run the position designates (the last frame).
func (p Position) Ref() grammar.UserRef { return p.frames[len(p.frames)-1].Ref }

// AppendRefs appends the run references of the frame stack (topmost first)
// to buf and returns the extended slice. It lets hot paths extract the
// progress-sequence path without allocating.
// pythia:hotpath — the caller owns and reuses buf.
func (p Position) AppendRefs(buf []grammar.UserRef) []grammar.UserRef {
	for _, fr := range p.frames {
		buf = append(buf, fr.Ref)
	}
	return buf
}

// Terminal returns the event id of the designated terminal run.
// pythia:hotpath — one call per tracked observation.
func (p Position) Terminal(f *grammar.Frozen) int32 {
	return f.RunAt(p.Ref()).Sym.Event()
}

// Key returns a compact comparable encoding of the position, used to merge
// duplicate hypotheses.
func (p Position) Key() string {
	var b strings.Builder
	b.Grow(len(p.frames) * 12)
	for _, fr := range p.frames {
		fmt.Fprintf(&b, "%d.%d.%d;", fr.Ref.Rule, fr.Ref.Pos, fr.Iter)
	}
	return b.String()
}

// String renders the position for debugging.
func (p Position) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, fr := range p.frames {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "R%d[%d]@%d", fr.Ref.Rule, fr.Ref.Pos, fr.Iter)
	}
	b.WriteByte(']')
	return b.String()
}

// clone returns a deep copy of the frame stack with room for one more frame.
func (p Position) clone() []Frame {
	out := make([]Frame, len(p.frames), len(p.frames)+4)
	copy(out, p.frames)
	return out
}

// Start returns the position of the first terminal of the trace, anchored at
// the root, or ok=false for an empty grammar.
func Start(f *grammar.Frozen) (Position, bool) {
	if len(f.Rules) == 0 || len(f.Rules[0].Body) == 0 {
		return Position{}, false
	}
	stack := []Frame{{Ref: grammar.UserRef{Rule: 0, Pos: 0}}}
	return descend(f, stack)
}

// descend extends the stack downward until the top frame designates a
// terminal run, entering each nested rule at its first run.
// pythia:hotpath — advances run on every tracked event.
func descend(f *grammar.Frozen, stack []Frame) (Position, bool) {
	for depth := 0; ; depth++ {
		if depth > len(f.Rules)+1 {
			// Defensive: a validated grammar is acyclic, so this cannot
			// trigger; avoid spinning on corrupted input.
			return Position{}, false
		}
		top := stack[len(stack)-1]
		run := f.RunAt(top.Ref)
		if run.Sym.IsTerminal() {
			return Position{frames: stack}, true
		}
		child := run.Sym.RuleIndex()
		if len(f.Rules[child].Body) == 0 {
			return Position{}, false
		}
		stack = append(stack, Frame{Ref: grammar.UserRef{Rule: child, Pos: 0}})
	}
}

// Occurrences returns re-anchoring hypotheses for an observed event: one or
// two weighted partial positions per grammar site holding that terminal
// (paper section II-B2). For a run with repetition count c the "staying"
// hypothesis (more repetitions of the event follow) covers c-1 of the c
// occurrences and the "leaving" hypothesis (this was the last repetition)
// covers one. Weights are proportional to occurrence counts in the
// reference trace and are normalised to sum to 1.
func Occurrences(f *grammar.Frozen, eventID int32) []Branch {
	sites := f.TermSites[eventID]
	if len(sites) == 0 {
		return nil
	}
	var out []Branch
	var total float64
	for _, site := range sites {
		run := f.RunAt(site)
		occ := float64(f.Rules[site.Rule].Occ)
		if run.Count > 1 {
			out = append(out, Branch{
				Pos:    Position{frames: []Frame{{Ref: site, Iter: 0}}},
				Weight: occ * float64(run.Count-1),
			})
		}
		out = append(out, Branch{
			Pos:    Position{frames: []Frame{{Ref: site, Iter: run.Count - 1}}},
			Weight: occ,
		})
		total += occ * float64(run.Count)
	}
	if total > 0 {
		for i := range out {
			out[i].Weight /= total
		}
	}
	return out
}

// Successors returns every position the trace can be at one terminal after
// p, with weights summing to at most w (weight is lost when the trace can
// end here). Anchored positions yield at most one successor; partial
// positions may branch during upward extension.
// pythia:hotpath — the oracle advance: one call per observed event per hypothesis.
func Successors(f *grammar.Frozen, p Position, w float64) []Branch {
	if !p.Valid() {
		return nil
	}
	last := p.frames[len(p.frames)-1]
	run := f.RunAt(last.Ref)
	if last.Iter+1 < run.Count {
		// Next repetition of the same terminal run.
		stack := p.clone()
		stack[len(stack)-1].Iter++
		return []Branch{{Pos: Position{frames: stack}, Weight: w}}
	}
	var out []Branch
	climb(f, p.clone(), w, &out)
	return out
}

// climb resolves "the run at the top of stack just finished its last
// repetition": it advances to the next run, re-enters a repeating parent, or
// extends the context upward, appending resulting terminal positions to out.
// pythia:hotpath — rule-boundary advance; appends go to the caller's buffer.
func climb(f *grammar.Frozen, stack []Frame, w float64, out *[]Branch) {
	if w <= 0 {
		return
	}
	top := stack[len(stack)-1]
	body := f.Rules[top.Ref.Rule].Body
	if int(top.Ref.Pos)+1 < len(body) {
		// Move to the next run of the same body.
		stack[len(stack)-1] = Frame{Ref: grammar.UserRef{Rule: top.Ref.Rule, Pos: top.Ref.Pos + 1}}
		if pos, ok := descend(f, stack); ok {
			*out = append(*out, Branch{Pos: pos, Weight: w})
		}
		return
	}
	if len(stack) > 1 {
		// Finished the last run of this rule body: one expansion of the
		// parent run completed.
		parent := stack[len(stack)-2]
		prun := f.RunAt(parent.Ref)
		if parent.Iter+1 < prun.Count {
			// Re-enter the same rule for the next repetition.
			stack = stack[:len(stack)-1]
			stack[len(stack)-1].Iter++
			child := prun.Sym.RuleIndex()
			stack = append(stack, Frame{Ref: grammar.UserRef{Rule: child, Pos: 0}})
			if pos, ok := descend(f, stack); ok {
				*out = append(*out, Branch{Pos: pos, Weight: w})
			}
			return
		}
		climb(f, stack[:len(stack)-1], w, out)
		return
	}
	// Popping the anchor frame.
	if top.Ref.Rule == 0 {
		// End of the reference trace: no successor.
		return
	}
	extendUp(f, top.Ref.Rule, w, out)
}

// extendUp handles finishing one expansion of non-root rule done when the
// context above it is unknown: every run referencing the rule is a possible
// context, weighted by how often it occurs in the reference trace. Within a
// repeated run, completing a non-final repetition re-enters the rule
// ((c-1)/c of the occurrences) and completing the final one moves on (1/c).
func extendUp(f *grammar.Frozen, done int32, w float64, out *[]Branch) {
	users := f.Rules[done].Users
	if len(users) == 0 {
		return
	}
	var denom float64
	for _, u := range users {
		denom += float64(f.Rules[u.Rule].Occ) * float64(f.RunAt(u).Count)
	}
	if denom <= 0 {
		return
	}
	for _, u := range users {
		urun := f.RunAt(u)
		base := w * float64(f.Rules[u.Rule].Occ) * float64(urun.Count) / denom
		if urun.Count > 1 {
			// Re-enter: we approximate the unknown completed repetition by
			// the earliest one, maximising the repetitions still allowed.
			stay := base * float64(urun.Count-1) / float64(urun.Count)
			stack := []Frame{{Ref: u, Iter: 1}, {Ref: grammar.UserRef{Rule: done, Pos: 0}}}
			if pos, ok := descend(f, stack); ok {
				*out = append(*out, Branch{Pos: pos, Weight: stay})
			}
		}
		leave := base / float64(urun.Count)
		climb(f, []Frame{{Ref: u, Iter: urun.Count - 1}}, leave, out)
	}
}
