package progress

import (
	"strings"
	"testing"
)

func TestDescribeAnchored(t *testing.T) {
	f := freeze(seqOf("abababab"))
	pos, ok := Start(f)
	if !ok {
		t.Fatal("Start failed")
	}
	d := Describe(f, pos, nil)
	if d == "" || strings.Contains(d, "partial") {
		t.Fatalf("Describe = %q", d)
	}
	named := Describe(f, pos, func(id int32) string { return string(rune('a' + id)) })
	if !strings.Contains(named, "a") {
		t.Fatalf("named Describe = %q", named)
	}
}

func TestDescribePartialMarked(t *testing.T) {
	f := freeze(seqOf("abcabc"))
	occ := Occurrences(f, 1)
	if len(occ) == 0 {
		t.Fatal("no occurrences")
	}
	d := Describe(f, occ[0].Pos, nil)
	if !strings.Contains(d, "partial") {
		t.Fatalf("partial position not marked: %q", d)
	}
	if Describe(f, Position{}, nil) != "<no position>" {
		t.Fatal("invalid position rendering")
	}
}

// TestUnfoldedIndexWalks verifies that walking the anchored path visits
// unfolded indexes 0, 1, 2, ... in order — the paper's "fourth occurrence"
// arithmetic (Fig. 4).
func TestUnfoldedIndexWalks(t *testing.T) {
	for _, s := range []string{"abcabdababc", "aaabbbaaabbb", "abababababab"} {
		f := freeze(seqOf(s))
		pos, ok := Start(f)
		for i := int64(0); ok; i++ {
			got, gok := UnfoldedIndex(f, pos)
			if !gok {
				t.Fatalf("%q: anchored position reported non-indexable", s)
			}
			if got != i {
				t.Fatalf("%q: index = %d, want %d (pos %v)", s, got, i, pos)
			}
			brs := Successors(f, pos, 1)
			if len(brs) == 0 {
				if i != int64(len(s)-1) {
					t.Fatalf("%q: walk ended early at %d", s, i)
				}
				break
			}
			pos = brs[0].Pos
			ok = true
		}
	}
}

func TestUnfoldedIndexPartial(t *testing.T) {
	f := freeze(seqOf("ababab"))
	occ := Occurrences(f, 0)
	for _, b := range occ {
		if !b.Pos.Anchored() {
			if _, ok := UnfoldedIndex(f, b.Pos); ok {
				t.Fatal("partial position claimed an absolute index")
			}
		}
	}
}
