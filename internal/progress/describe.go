package progress

import (
	"fmt"
	"strings"

	"repro/internal/grammar"
)

// Describe renders a progress sequence in the paper's notation: the path
// from the terminal toward the root, e.g. "BAb" in Fig. 4 becomes
// "R2 > R1 > t:MPI_Send" here (topmost context first, terminal last), with
// repetition indexes where they matter.
func Describe(f *grammar.Frozen, p Position, name grammar.NameFunc) string {
	if !p.Valid() {
		return "<no position>"
	}
	var b strings.Builder
	frames := p.Frames()
	for i, fr := range frames {
		if i > 0 {
			b.WriteString(" > ")
		}
		run := f.RunAt(fr.Ref)
		if run.Sym.IsTerminal() {
			if name != nil {
				b.WriteString(name(run.Sym.Event()))
			} else {
				fmt.Fprintf(&b, "t%d", run.Sym.Event())
			}
		} else {
			fmt.Fprintf(&b, "R%d", run.Sym.RuleIndex())
		}
		if run.Count > 1 {
			fmt.Fprintf(&b, "[%d/%d]", fr.Iter+1, run.Count)
		}
	}
	if !p.Anchored() {
		b.WriteString(" (partial)")
	}
	return b.String()
}

// UnfoldedIndex returns the 0-based position in the unfolded trace that an
// anchored progress sequence designates, i.e. which occurrence of the event
// this is — the paper's "the fourth occurrence of a" (Fig. 4). It returns
// ok=false for partial positions, whose absolute index is unknown.
func UnfoldedIndex(f *grammar.Frozen, p Position) (int64, bool) {
	if !p.Anchored() {
		return 0, false
	}
	var idx int64
	frames := p.Frames()
	for _, fr := range frames {
		rule := f.Rules[fr.Ref.Rule]
		// Everything before this run within the body.
		for pos := int32(0); pos < fr.Ref.Pos; pos++ {
			run := rule.Body[pos]
			idx += int64(run.Count) * f.SymLen(run.Sym)
		}
		// Completed repetitions of this run.
		run := rule.Body[fr.Ref.Pos]
		idx += int64(fr.Iter) * f.SymLen(run.Sym)
	}
	return idx, true
}
