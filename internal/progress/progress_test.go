package progress

import (
	"math"
	"testing"

	"repro/internal/grammar"
)

// freeze reduces a sequence and freezes the resulting grammar.
func freeze(seq []int32) *grammar.Frozen {
	g := grammar.New()
	for _, e := range seq {
		g.Append(e)
	}
	return g.Freeze()
}

func seqOf(s string) []int32 {
	out := make([]int32, len(s))
	for i, c := range s {
		out[i] = int32(c - 'a')
	}
	return out
}

// walkAnchored follows the anchored deterministic path from Start and
// returns the terminal sequence it visits.
func walkAnchored(t *testing.T, f *grammar.Frozen) []int32 {
	t.Helper()
	var out []int32
	pos, ok := Start(f)
	for ok {
		out = append(out, pos.Terminal(f))
		brs := Successors(f, pos, 1)
		if len(brs) == 0 {
			break
		}
		if len(brs) != 1 {
			t.Fatalf("anchored position %v has %d successors, want 1", pos, len(brs))
		}
		if math.Abs(brs[0].Weight-1) > 1e-12 {
			t.Fatalf("anchored successor weight = %v, want 1", brs[0].Weight)
		}
		pos = brs[0].Pos
	}
	return out
}

func equalSeq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStartEmptyGrammar(t *testing.T) {
	f := freeze(nil)
	if _, ok := Start(f); ok {
		t.Fatal("Start on empty grammar should fail")
	}
}

func TestAnchoredWalkReproducesTrace(t *testing.T) {
	for _, s := range []string{
		"a",
		"ab",
		"aaaa",
		"abbcbcab",
		"abcabcabcabc",
		"aabbaabbaabb",
		"abcabdababc",
	} {
		seq := seqOf(s)
		f := freeze(seq)
		got := walkAnchored(t, f)
		if !equalSeq(got, seq) {
			t.Fatalf("sequence %q: anchored walk = %v, want %v\n%s", s, got, seq, f.Dump(nil))
		}
	}
}

func TestAnchoredWalkLongLoop(t *testing.T) {
	var seq []int32
	for i := 0; i < 300; i++ {
		seq = append(seq, 0, 1, 1, 2)
	}
	seq = append(seq, 7)
	f := freeze(seq)
	got := walkAnchored(t, f)
	if !equalSeq(got, seq) {
		t.Fatalf("anchored walk diverges (got %d terminals, want %d)", len(got), len(seq))
	}
}

func TestOccurrencesWeightsNormalised(t *testing.T) {
	// Trace "abcabdababc" (paper Fig 4): terminal a occurs 4 times.
	f := freeze(seqOf("abcabdababc"))
	brs := Occurrences(f, 0)
	if len(brs) == 0 {
		t.Fatal("no occurrences of a")
	}
	var total float64
	for _, b := range brs {
		if b.Weight <= 0 {
			t.Fatalf("non-positive weight %v", b.Weight)
		}
		if b.Pos.Terminal(f) != 0 {
			t.Fatalf("occurrence designates terminal %d, want 0", b.Pos.Terminal(f))
		}
		total += b.Weight
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("occurrence weights sum to %v, want 1", total)
	}
}

func TestOccurrencesUnknownEvent(t *testing.T) {
	f := freeze(seqOf("abab"))
	if brs := Occurrences(f, 99); brs != nil {
		t.Fatalf("unknown event returned %d occurrences", len(brs))
	}
}

// TestPartialTrackingConvergesToTruth replays the paper's section II-B1
// walk-through: on the grammar of "abbcbcab" (Fig 1), start tracking from a
// random b, then submit c and check that only positions followed by c
// survive, then check the next event is predicted as b.
func TestPartialTrackingConvergesToTruth(t *testing.T) {
	seq := seqOf("abbcbcab")
	f := freeze(seq)

	cands := Occurrences(f, 1) // observe b
	if len(cands) == 0 {
		t.Fatal("no occurrences of b")
	}
	// Advance all candidates by one and keep those matching the next
	// observation, c.
	var next []Branch
	for _, c := range cands {
		for _, s := range Successors(f, c.Pos, c.Weight) {
			if s.Pos.Terminal(f) == 2 { // c
				next = append(next, s)
			}
		}
	}
	if len(next) == 0 {
		t.Fatal("no candidate survived observing c after b")
	}
	// In "abbcbcab", every "bc" is followed by either b (after first bc) or
	// a (after second bc). Both must appear among successors of survivors.
	seen := map[int32]bool{}
	for _, c := range next {
		for _, s := range Successors(f, c.Pos, c.Weight) {
			seen[s.Pos.Terminal(f)] = true
		}
	}
	if !seen[1] || !seen[0] {
		t.Fatalf("successors after 'bc' = %v, want both a(0) and b(1)", seen)
	}
}

// TestSuccessorWeightConservation checks that, away from the trace end,
// branch weights sum to the input weight.
func TestSuccessorWeightConservation(t *testing.T) {
	var seq []int32
	for i := 0; i < 50; i++ {
		seq = append(seq, 0, 1, 2, 1, 2)
	}
	f := freeze(seq)
	// Partial anchor on terminal 1 somewhere in the middle.
	cands := Occurrences(f, 1)
	for _, c := range cands {
		brs := Successors(f, c.Pos, c.Weight)
		var total float64
		for _, b := range brs {
			total += b.Weight
		}
		// Weight may only be lost at the end of the trace; interior
		// positions must conserve it.
		if total > c.Weight+1e-9 {
			t.Fatalf("weight grew: in %v out %v at %v", c.Weight, total, c.Pos)
		}
	}
}

func TestPositionKeyDistinguishesIterations(t *testing.T) {
	f := freeze([]int32{0, 0, 0, 1})
	pos, ok := Start(f)
	if !ok {
		t.Fatal("Start failed")
	}
	brs := Successors(f, pos, 1)
	if len(brs) != 1 {
		t.Fatalf("got %d successors", len(brs))
	}
	if pos.Key() == brs[0].Pos.Key() {
		t.Fatal("positions at different repetitions share a key")
	}
}

func TestAnchoredReportsTrue(t *testing.T) {
	f := freeze(seqOf("abcabc"))
	pos, ok := Start(f)
	if !ok || !pos.Anchored() {
		t.Fatalf("Start position not anchored: %v", pos)
	}
	occ := Occurrences(f, 0)
	for _, b := range occ {
		if b.Pos.Anchored() && b.Pos.Frames()[0].Ref.Rule != 0 {
			t.Fatalf("partial occurrence claims anchored: %v", b.Pos)
		}
	}
}

func TestDescribeString(t *testing.T) {
	f := freeze(seqOf("ababab"))
	pos, ok := Start(f)
	if !ok {
		t.Fatal("Start failed")
	}
	if pos.String() == "" || !pos.Valid() {
		t.Fatal("String/Valid broken")
	}
	if pos.Depth() < 1 {
		t.Fatal("Depth < 1")
	}
}
