package progress

import (
	"testing"

	"repro/internal/grammar"
)

func benchGrammar(b *testing.B) *grammar.Frozen {
	b.Helper()
	g := grammar.New()
	for i := 0; i < 5000; i++ {
		switch {
		case i%31 == 30:
			g.Append(9)
		case i%2 == 0:
			g.Append(0)
		default:
			g.Append(1)
		}
	}
	return g.Freeze()
}

func BenchmarkAnchoredWalk(b *testing.B) {
	f := benchGrammar(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, ok := Start(f)
		for ok {
			brs := Successors(f, pos, 1)
			if len(brs) == 0 {
				break
			}
			pos = brs[0].Pos
		}
	}
}

func BenchmarkOccurrences(b *testing.B) {
	f := benchGrammar(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Occurrences(f, 0)
	}
}

func BenchmarkSuccessorsPartial(b *testing.B) {
	f := benchGrammar(b)
	occ := Occurrences(f, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range occ {
			Successors(f, c.Pos, c.Weight)
		}
	}
}
