package progress

import "repro/internal/grammar"

// AdvanceResult is the outcome of a Stepper advance.
type AdvanceResult int

const (
	// AdvanceOK: the position moved to its unique next terminal.
	AdvanceOK AdvanceResult = iota
	// AdvanceEnd: the walk reached the end of the reference trace (an
	// anchored position with no successor).
	AdvanceEnd
	// AdvanceBranch: the advance is not branch-free — more than one
	// successor is possible (a partial hypothesis leaving its known
	// context, or a repeated unknown parent run) — or the walk cannot
	// continue in place. The caller must fall back to Successors.
	AdvanceBranch
)

// Stepper advances a single-hypothesis position one terminal at a time
// without allocating in steady state. It is the engine behind the
// predictor's incremental prediction cache and its in-place tracking fast
// path: where Successors clones the frame stack and returns fresh Branch
// slices on every call, a Stepper mutates an internal double-buffered
// stack and only ever reports the branch-free successor.
//
// The contract mirrors Successors exactly on the branch-free subset: when
// Advance returns AdvanceOK, the new position is the one Successors would
// have returned as its only branch, with the weight unchanged. On
// AdvanceEnd and AdvanceBranch the stepper's position is left unchanged so
// the caller can re-run the query with the general machinery.
type Stepper struct {
	f       *grammar.Frozen
	stack   []Frame
	scratch []Frame
}

// Reset seeds the stepper at position p (copying the frames into the
// stepper's own buffer; steady-state reseeding does not allocate).
func (s *Stepper) Reset(f *grammar.Frozen, p Position) {
	s.f = f
	s.stack = append(s.stack[:0], p.frames...)
}

// Live reports whether the stepper currently holds a position.
func (s *Stepper) Live() bool { return len(s.stack) > 0 }

// Terminal returns the event id of the designated terminal run.
// pythia:hotpath — one call per cached prediction step.
func (s *Stepper) Terminal() int32 {
	return s.f.RunAt(s.stack[len(s.stack)-1].Ref).Sym.Event()
}

// Anchored reports whether the position is anchored at the root rule.
func (s *Stepper) Anchored() bool {
	return len(s.stack) > 0 && s.stack[0].Ref.Rule == 0
}

// AppendRefs appends the run references of the frame stack (topmost first)
// to buf and returns the extended slice, without allocating when buf has
// capacity.
// pythia:hotpath — the caller owns and reuses buf.
func (s *Stepper) AppendRefs(buf []grammar.UserRef) []grammar.UserRef {
	for _, fr := range s.stack {
		buf = append(buf, fr.Ref)
	}
	return buf
}

// PosView returns the current position as a view aliasing the stepper's
// internal buffer. The view is invalidated by the next Advance or Reset;
// use Pos for a durable copy.
func (s *Stepper) PosView() Position { return Position{frames: s.stack} }

// Pos returns a durable copy of the current position.
func (s *Stepper) Pos() Position {
	return Position{frames: append([]Frame(nil), s.stack...)}
}

// Advance moves the position one terminal forward in place. On AdvanceOK
// the stepper holds the unique successor; on AdvanceEnd or AdvanceBranch
// the position is unchanged. Steady-state advances do not allocate (the
// stack and its shadow buffer are reused).
// pythia:hotpath — one call per tracked event and per cache-window step.
func (s *Stepper) Advance() AdvanceResult {
	if len(s.stack) == 0 {
		return AdvanceBranch
	}
	s.scratch = append(s.scratch[:0], s.stack...)
	out, res := advanceFrames(s.f, s.scratch)
	if res == AdvanceOK {
		s.scratch = s.stack
		s.stack = out
	} else {
		s.scratch = out
	}
	return res
}

// advanceFrames advances the stack by one terminal in place, following the
// same transitions as Successors/climb/extendUp restricted to their
// branch-free cases. The stack may be truncated, rewritten and re-extended;
// on a non-OK result its content is unspecified (the caller keeps a copy).
// pythia:hotpath — the in-place mirror of the Successors advance.
func advanceFrames(f *grammar.Frozen, stack []Frame) ([]Frame, AdvanceResult) {
	last := len(stack) - 1
	run := f.RunAt(stack[last].Ref)
	if stack[last].Iter+1 < run.Count {
		// Next repetition of the same terminal run.
		stack[last].Iter++
		return stack, AdvanceOK
	}
	// The run finished its last repetition: climb (cf. progress.climb).
	for {
		last = len(stack) - 1
		top := stack[last]
		body := f.Rules[top.Ref.Rule].Body
		if int(top.Ref.Pos)+1 < len(body) {
			// Move to the next run of the same body.
			stack[last] = Frame{Ref: grammar.UserRef{Rule: top.Ref.Rule, Pos: top.Ref.Pos + 1}}
			return descendFrames(f, stack)
		}
		if last > 0 {
			// Finished the last run of this rule body: one expansion of
			// the parent run completed.
			parent := stack[last-1]
			prun := f.RunAt(parent.Ref)
			if parent.Iter+1 < prun.Count {
				// Re-enter the same rule for the next repetition.
				stack = stack[:last]
				stack[last-1].Iter++
				child := prun.Sym.RuleIndex()
				stack = append(stack, Frame{Ref: grammar.UserRef{Rule: child, Pos: 0}})
				return descendFrames(f, stack)
			}
			stack = stack[:last]
			continue
		}
		// Popping the anchor frame.
		if top.Ref.Rule == 0 {
			return stack, AdvanceEnd
		}
		// Upward extension of a partial hypothesis (cf. extendUp): only
		// branch-free when exactly one run references the finished rule
		// and that run is not repeated (a repeated run branches into
		// stay-vs-leave hypotheses).
		users := f.Rules[top.Ref.Rule].Users
		if len(users) != 1 {
			return stack, AdvanceBranch
		}
		urun := f.RunAt(users[0])
		if urun.Count > 1 {
			return stack, AdvanceBranch
		}
		stack[0] = Frame{Ref: users[0], Iter: urun.Count - 1}
	}
}

// descendFrames extends the stack downward until the top frame designates a
// terminal run, entering each nested rule at its first run (the in-place
// mirror of descend). Appends reuse the stack's capacity in steady state.
// pythia:hotpath — completes every in-place advance.
func descendFrames(f *grammar.Frozen, stack []Frame) ([]Frame, AdvanceResult) {
	for depth := 0; ; depth++ {
		if depth > len(f.Rules)+1 {
			// Defensive: a validated grammar is acyclic, so this cannot
			// trigger; avoid spinning on corrupted input.
			return stack, AdvanceBranch
		}
		top := stack[len(stack)-1]
		run := f.RunAt(top.Ref)
		if run.Sym.IsTerminal() {
			return stack, AdvanceOK
		}
		child := run.Sym.RuleIndex()
		if len(f.Rules[child].Body) == 0 {
			// No successor through an empty body; let the general
			// machinery drop the branch.
			return stack, AdvanceBranch
		}
		stack = append(stack, Frame{Ref: grammar.UserRef{Rule: child, Pos: 0}})
	}
}
