// Package tracediff compares two Pythia trace sets, in the spirit of the
// trace-diffing line of work the paper cites (DiffTrace): did two executions
// of an application behave the same, and if not, where do they diverge?
// It works on the grammars directly — never materialising full traces in
// memory — by walking both unfoldings in lockstep.
package tracediff

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/grammar"
	"repro/internal/model"
	"repro/internal/progress"
)

// ThreadDiff is the comparison result for one thread.
type ThreadDiff struct {
	TID int32
	// OnlyA / OnlyB mark threads present in one set only.
	OnlyA, OnlyB bool
	// LenA, LenB are the unfolded trace lengths.
	LenA, LenB int64
	// Identical is true when the event descriptor sequences match exactly.
	Identical bool
	// DivergeAt is the index of the first differing event (-1 when one
	// trace is a strict prefix of the other or they are identical).
	DivergeAt int64
	// EventA, EventB are the descriptors at the divergence point.
	EventA, EventB string
	// RulesA, RulesB are the grammar sizes (structure may differ even for
	// identical traces, and vice versa).
	RulesA, RulesB int
}

// Diff compares two trace sets thread by thread.
type Diff struct {
	Threads []ThreadDiff
	// EventsOnlyA / EventsOnlyB are descriptors occurring in only one set.
	EventsOnlyA, EventsOnlyB []string
}

// Identical reports whether every shared thread's event sequence matches and
// no thread is missing from either side.
func (d *Diff) Identical() bool {
	for _, t := range d.Threads {
		if t.OnlyA || t.OnlyB || !t.Identical {
			return false
		}
	}
	return true
}

// Compare diffs two trace sets.
func Compare(a, b *model.TraceSet) *Diff {
	out := &Diff{}
	out.EventsOnlyA, out.EventsOnlyB = setDiff(usedEvents(a), usedEvents(b))

	seen := map[int32]bool{}
	for _, tid := range a.ThreadIDs() {
		seen[tid] = true
		ta := a.Threads[tid]
		tb, ok := b.Threads[tid]
		if !ok {
			out.Threads = append(out.Threads, ThreadDiff{
				TID: tid, OnlyA: true, LenA: ta.Grammar.EventCount,
				RulesA: len(ta.Grammar.Rules),
			})
			continue
		}
		out.Threads = append(out.Threads, compareThread(tid, a, b, ta, tb))
	}
	for _, tid := range b.ThreadIDs() {
		if !seen[tid] {
			tb := b.Threads[tid]
			out.Threads = append(out.Threads, ThreadDiff{
				TID: tid, OnlyB: true, LenB: tb.Grammar.EventCount,
				RulesB: len(tb.Grammar.Rules),
			})
		}
	}
	return out
}

// compareThread walks both grammars' unfoldings in lockstep via progress
// positions, comparing event *descriptors* (ids may differ between sets).
func compareThread(tid int32, a, b *model.TraceSet, ta, tb *model.ThreadTrace) ThreadDiff {
	d := ThreadDiff{
		TID:       tid,
		LenA:      ta.Grammar.EventCount,
		LenB:      tb.Grammar.EventCount,
		RulesA:    len(ta.Grammar.Rules),
		RulesB:    len(tb.Grammar.Rules),
		DivergeAt: -1,
	}
	posA, okA := progress.Start(ta.Grammar)
	posB, okB := progress.Start(tb.Grammar)
	var idx int64
	for okA && okB {
		na := name(a, ta.Grammar, posA)
		nb := name(b, tb.Grammar, posB)
		if na != nb {
			d.DivergeAt = idx
			d.EventA, d.EventB = na, nb
			return d
		}
		posA, okA = advance(ta.Grammar, posA)
		posB, okB = advance(tb.Grammar, posB)
		idx++
	}
	d.Identical = !okA && !okB && d.LenA == d.LenB
	return d
}

func name(ts *model.TraceSet, f *grammar.Frozen, pos progress.Position) string {
	id := pos.Terminal(f)
	if int(id) < len(ts.Events) {
		return ts.Events[id]
	}
	return fmt.Sprintf("?%d", id)
}

func advance(f *grammar.Frozen, pos progress.Position) (progress.Position, bool) {
	brs := progress.Successors(f, pos, 1)
	if len(brs) == 0 {
		return progress.Position{}, false
	}
	return brs[0].Pos, true
}

func usedEvents(ts *model.TraceSet) map[string]bool {
	out := map[string]bool{}
	for _, th := range ts.Threads {
		for _, id := range th.Grammar.TerminalIDs() {
			if int(id) < len(ts.Events) {
				out[ts.Events[id]] = true
			}
		}
	}
	return out
}

func setDiff(a, b map[string]bool) (onlyA, onlyB []string) {
	for k := range a {
		if !b[k] {
			onlyA = append(onlyA, k)
		}
	}
	for k := range b {
		if !a[k] {
			onlyB = append(onlyB, k)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return
}

// Write renders the diff for humans, returning the first write error.
func (d *Diff) Write(w io.Writer) (err error) {
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if d.Identical() {
		pf("traces are identical\n")
		return err
	}
	if len(d.EventsOnlyA) > 0 {
		pf("events only in A: %v\n", d.EventsOnlyA)
	}
	if len(d.EventsOnlyB) > 0 {
		pf("events only in B: %v\n", d.EventsOnlyB)
	}
	for _, t := range d.Threads {
		switch {
		case t.OnlyA:
			pf("thread %d: only in A (%d events)\n", t.TID, t.LenA)
		case t.OnlyB:
			pf("thread %d: only in B (%d events)\n", t.TID, t.LenB)
		case t.Identical:
			pf("thread %d: identical (%d events; %d vs %d rules)\n",
				t.TID, t.LenA, t.RulesA, t.RulesB)
		case t.DivergeAt >= 0:
			pf("thread %d: diverges at event %d: %q vs %q\n",
				t.TID, t.DivergeAt, t.EventA, t.EventB)
		default:
			pf("thread %d: one trace is a prefix of the other (%d vs %d events)\n",
				t.TID, t.LenA, t.LenB)
		}
	}
	return err
}
