package tracediff

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/recorder"
	"repro/pythia"
)

// record builds a trace set from per-thread descriptor sequences.
func record(t *testing.T, threads map[int32][]string) *pythia.TraceSet {
	t.Helper()
	s := core.NewRecordSession(core.WithRecorderOptions(recorder.WithoutTimestamps()))
	for tid, seq := range threads {
		th := s.Thread(tid)
		for _, name := range seq {
			th.Submit(s.Registry().Intern(name))
		}
	}
	ts, err := s.FinishRecord()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func repeat(names []string, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, names...)
	}
	return out
}

func TestIdenticalTraces(t *testing.T) {
	a := record(t, map[int32][]string{0: repeat([]string{"x", "y"}, 50)})
	b := record(t, map[int32][]string{0: repeat([]string{"x", "y"}, 50)})
	d := Compare(a, b)
	if !d.Identical() {
		t.Fatalf("identical traces reported different: %+v", d.Threads)
	}
}

func TestIdenticalDespiteDifferentIDs(t *testing.T) {
	// Same descriptor sequence, but interned in a different order so the
	// numeric ids differ: the diff must compare by name.
	sa := core.NewRecordSession(core.WithRecorderOptions(recorder.WithoutTimestamps()))
	sa.Registry().Intern("x") // id 0
	sa.Registry().Intern("y") // id 1
	tha := sa.Thread(0)
	for i := 0; i < 20; i++ {
		tha.Submit(sa.Registry().Intern("x"))
		tha.Submit(sa.Registry().Intern("y"))
	}
	a, err := sa.FinishRecord()
	if err != nil {
		t.Fatal(err)
	}

	sb := core.NewRecordSession(core.WithRecorderOptions(recorder.WithoutTimestamps()))
	sb.Registry().Intern("y") // id 0 (swapped!)
	sb.Registry().Intern("x") // id 1
	thb := sb.Thread(0)
	for i := 0; i < 20; i++ {
		thb.Submit(sb.Registry().Intern("x"))
		thb.Submit(sb.Registry().Intern("y"))
	}
	b, err := sb.FinishRecord()
	if err != nil {
		t.Fatal(err)
	}

	if d := Compare(a, b); !d.Identical() {
		t.Fatal("descriptor-identical traces reported different")
	}
}

func TestDivergencePoint(t *testing.T) {
	a := record(t, map[int32][]string{0: {"x", "y", "x", "y", "x"}})
	b := record(t, map[int32][]string{0: {"x", "y", "x", "z", "x"}})
	d := Compare(a, b)
	if d.Identical() {
		t.Fatal("diverging traces reported identical")
	}
	td := d.Threads[0]
	if td.DivergeAt != 3 || td.EventA != "y" || td.EventB != "z" {
		t.Fatalf("divergence = %+v, want index 3 y vs z", td)
	}
	if len(d.EventsOnlyB) != 1 || d.EventsOnlyB[0] != "z" {
		t.Fatalf("EventsOnlyB = %v", d.EventsOnlyB)
	}
}

func TestPrefixTrace(t *testing.T) {
	a := record(t, map[int32][]string{0: repeat([]string{"x"}, 10)})
	b := record(t, map[int32][]string{0: repeat([]string{"x"}, 15)})
	d := Compare(a, b)
	td := d.Threads[0]
	if td.Identical || td.DivergeAt != -1 {
		t.Fatalf("prefix case misreported: %+v", td)
	}
	if td.LenA != 10 || td.LenB != 15 {
		t.Fatalf("lengths = %d %d", td.LenA, td.LenB)
	}
}

func TestThreadPresence(t *testing.T) {
	a := record(t, map[int32][]string{0: {"x", "x"}, 1: {"y", "y"}})
	b := record(t, map[int32][]string{0: {"x", "x"}, 2: {"z", "z"}})
	d := Compare(a, b)
	var onlyA, onlyB int
	for _, td := range d.Threads {
		if td.OnlyA {
			onlyA++
		}
		if td.OnlyB {
			onlyB++
		}
	}
	if onlyA != 1 || onlyB != 1 {
		t.Fatalf("thread presence diff broken: %+v", d.Threads)
	}
}

func TestWriteRendering(t *testing.T) {
	a := record(t, map[int32][]string{0: {"x", "y"}})
	b := record(t, map[int32][]string{0: {"x", "z"}})
	var sb strings.Builder
	Compare(a, b).Write(&sb)
	if !strings.Contains(sb.String(), "diverges at event 1") {
		t.Fatalf("rendered diff:\n%s", sb.String())
	}
	var sb2 strings.Builder
	Compare(a, a).Write(&sb2)
	if !strings.Contains(sb2.String(), "identical") {
		t.Fatalf("identical rendering:\n%s", sb2.String())
	}
}
