package cluster

import (
	"fmt"
	"testing"
)

func fleet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", 29137+i)
	}
	return out
}

func TestAssignmentDeterministicAndDistinct(t *testing.T) {
	m := &Map{Epoch: 3, Replicas: 1, Daemons: fleet(4)}
	for i := 0; i < 32; i++ {
		tenant := fmt.Sprintf("tenant-%02d", i)
		a := m.Assignment(tenant)
		if len(a) != 2 {
			t.Fatalf("assignment of %q has %d daemons, want 2", tenant, len(a))
		}
		if a[0] == a[1] {
			t.Fatalf("owner and replica of %q are both %s", tenant, a[0])
		}
		b := m.Assignment(tenant)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("assignment of %q not deterministic: %v vs %v", tenant, a, b)
		}
		if m.Owner(tenant) != a[0] {
			t.Fatalf("Owner disagrees with Assignment[0]")
		}
		if !m.Contains(a[0], tenant) || !m.Contains(a[1], tenant) {
			t.Fatalf("Contains rejects an assigned daemon")
		}
		for _, d := range m.Daemons {
			if d != a[0] && d != a[1] && m.Contains(d, tenant) {
				t.Fatalf("Contains accepts unassigned daemon %s", d)
			}
		}
	}
}

func TestAssignmentOrderIndependent(t *testing.T) {
	a := &Map{Epoch: 5, Replicas: 1, Daemons: fleet(4)}
	shuffled := []string{a.Daemons[2], a.Daemons[0], a.Daemons[3], a.Daemons[1]}
	b := &Map{Epoch: 5, Replicas: 1, Daemons: shuffled}
	for i := 0; i < 16; i++ {
		tenant := fmt.Sprintf("t%d", i)
		x, y := a.Assignment(tenant), b.Assignment(tenant)
		if x[0] != y[0] || x[1] != y[1] {
			t.Fatalf("placement depends on daemon list order: %v vs %v", x, y)
		}
	}
}

func TestAssignmentBalanced(t *testing.T) {
	m := &Map{Epoch: 1, Replicas: 0, Daemons: fleet(4)}
	counts := map[string]int{}
	const n = 400
	for i := 0; i < n; i++ {
		counts[m.Owner(fmt.Sprintf("tenant-%03d", i))]++
	}
	for _, d := range m.Daemons {
		c := counts[d]
		// Expect ~100 each; rendezvous over FNV should stay well inside
		// a generous 2x band.
		if c < n/8 || c > n/2 {
			t.Fatalf("daemon %s owns %d of %d tenants — placement badly skewed: %v", d, c, n, counts)
		}
	}
}

func TestEpochBumpReshuffles(t *testing.T) {
	old := &Map{Epoch: 1, Replicas: 0, Daemons: fleet(4)}
	next := &Map{Epoch: 2, Replicas: 0, Daemons: fleet(4)}
	moved := 0
	const n = 200
	for i := 0; i < n; i++ {
		tenant := fmt.Sprintf("tenant-%03d", i)
		if old.Owner(tenant) != next.Owner(tenant) {
			moved++
		}
	}
	// An epoch bump rehashes every pair, so ~3/4 of tenants should move
	// on a 4-daemon fleet. Anything above zero proves the epoch is in the
	// hash; demand a healthy fraction.
	if moved < n/4 {
		t.Fatalf("only %d/%d tenants moved across an epoch bump", moved, n)
	}
}

func TestReplicasClampedToFleet(t *testing.T) {
	m := &Map{Epoch: 1, Replicas: 3, Daemons: fleet(2)}
	if got := len(m.Assignment("t")); got != 2 {
		t.Fatalf("assignment on a 2-daemon fleet with 3 replicas has %d entries, want 2", got)
	}
}

func TestUnclusteredMap(t *testing.T) {
	var nilMap *Map
	empty := &Map{}
	for _, m := range []*Map{nilMap, empty} {
		if m.Clustered() {
			t.Fatal("empty map claims to be clustered")
		}
		if m.Assignment("t") != nil {
			t.Fatal("empty map produced an assignment")
		}
		if m.Owner("t") != "" {
			t.Fatal("empty map produced an owner")
		}
		if !m.Contains("anything", "t") {
			t.Fatal("unclustered map must contain every (daemon, tenant) pair")
		}
	}
}

func TestTokenBucketChargeAndGate(t *testing.T) {
	const sec = int64(1e9)
	b := NewTokenBucket(1000, 100, 0)
	if got := b.Balance(0); got != 100 {
		t.Fatalf("fresh bucket balance = %d, want 100 (burst)", got)
	}
	// Charge never refuses and may go negative.
	b.Charge(250, 0)
	if got := b.Balance(0); got != -150 {
		t.Fatalf("balance after overdraft = %d, want -150", got)
	}
	ok, retryMs := b.Gate(0)
	if ok {
		t.Fatal("Gate admitted with a negative balance")
	}
	if retryMs < 1 {
		t.Fatalf("retryMs = %d, want >= 1", retryMs)
	}
	// After enough wall time the deficit refills and gating admits again.
	now := retryMs*int64(1e6) + sec
	if ok, _ := b.Gate(now); !ok {
		t.Fatalf("Gate still refusing after %dms + 1s of refill (balance %d)", retryMs, b.Balance(now))
	}
}

func TestTokenBucketRefillClampsAtBurst(t *testing.T) {
	b := NewTokenBucket(1_000_000, 50, 0)
	b.Charge(10, 0)
	// An hour later the balance must be capped at burst, not rate*3600.
	if got := b.Balance(int64(3600) * 1e9); got != 50 {
		t.Fatalf("balance after long idle = %d, want burst (50)", got)
	}
}

func TestTokenBucketSubTokenAccrual(t *testing.T) {
	// 10 tokens/s: a single 50ms step yields no whole token, but twenty
	// of them must add up to one — the refill may not round the
	// remainder away.
	b := NewTokenBucket(10, 1, 0)
	b.Charge(1, 0)
	var now int64
	for i := 0; i < 20; i++ {
		now += 50 * 1e6
		b.refill(now)
	}
	if got := b.Balance(now); got < 1 {
		t.Fatalf("balance after 1s in 50ms steps = %d, want >= 1", got)
	}
}

func TestNilTokenBucket(t *testing.T) {
	var b *TokenBucket
	b.Charge(100, 0) // must not panic
	if ok, _ := b.Gate(0); !ok {
		t.Fatal("nil bucket must always admit")
	}
}
