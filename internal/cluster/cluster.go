// Package cluster turns N independent pythiad daemons into one logical
// oracle fleet. It contributes two pieces of machinery, both deliberately
// free of I/O so every layer (server, client, tools) can share them:
//
//   - Map: an epoch-versioned tenant→daemon assignment computed with
//     rendezvous (highest-random-weight) hashing. Every party that holds
//     the same (epoch, daemon list, replica count) computes the same
//     assignment with no coordination, so the shard map that travels on
//     the wire is tiny: the inputs, never the output.
//
//   - TokenBucket: a lock-free token bucket used for per-tenant event
//     budgets and daemon-wide pacing. Submission charges it (and may
//     drive it negative — Submit frames are one-way and cannot be
//     refused without killing the connection); request/response ops gate
//     on it and are refused with a retry-after hint when exhausted.
//
// The epoch participates in the hash itself, not just in cache
// invalidation: bumping the epoch reshuffles placement even when the
// daemon list is unchanged, which gives operators and tests a way to
// force migrations deterministically.
package cluster

import (
	"sort"
	"sync/atomic"
)

// Map is an immutable, epoch-versioned view of the fleet. A Map is cheap
// to copy and safe for concurrent use; mutation means building a new Map
// with a higher Epoch and swapping the pointer.
type Map struct {
	// Epoch orders shard maps fleet-wide. Higher wins. Epoch 0 with no
	// daemons means "not clustered": every daemon owns every tenant.
	Epoch uint64
	// Replicas is the number of warm replicas kept per tenant beyond the
	// owner. With Replicas=1, each tenant lives on two daemons.
	Replicas int
	// Daemons lists the fleet members by dialable address. Order does not
	// affect placement (rendezvous hashing is order-independent), but a
	// sorted list keeps logs and wire frames canonical.
	Daemons []string
}

// Clustered reports whether the map describes an actual fleet. A nil or
// empty map degrades to single-daemon behaviour everywhere.
func (m *Map) Clustered() bool {
	return m != nil && len(m.Daemons) > 0
}

// score computes the rendezvous weight of a (daemon, tenant) pair under
// the map's epoch using FNV-1a 64. The epoch is hashed first so an epoch
// bump reshuffles every pair.
func (m *Map) score(daemon, tenant string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	e := m.Epoch
	for i := 0; i < 8; i++ {
		h ^= e & 0xff
		h *= prime64
		e >>= 8
	}
	for i := 0; i < len(daemon); i++ {
		h ^= uint64(daemon[i])
		h *= prime64
	}
	h ^= 0xff // separator so ("ab","c") and ("a","bc") diverge
	h *= prime64
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	// FNV-1a alone has weak avalanche when inputs differ only in their
	// final bytes (daemon ports, tenant suffixes), which correlates the
	// rank order across daemons and skews placement badly. A 64-bit
	// finalizer (murmur3 fmix64) decorrelates the scores.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Assignment returns the daemons responsible for tenant: the owner first,
// then Replicas warm replicas, all chosen by descending rendezvous score
// with ascending address as the deterministic tiebreak. At most
// len(Daemons) entries are returned. A non-clustered map returns nil.
func (m *Map) Assignment(tenant string) []string {
	if !m.Clustered() {
		return nil
	}
	k := 1 + m.Replicas
	if k > len(m.Daemons) {
		k = len(m.Daemons)
	}
	type scored struct {
		addr  string
		score uint64
	}
	all := make([]scored, len(m.Daemons))
	for i, d := range m.Daemons {
		all[i] = scored{addr: d, score: m.score(d, tenant)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].addr < all[j].addr
	})
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].addr
	}
	return out
}

// Owner returns the daemon that owns tenant, or "" if the map is not
// clustered.
func (m *Map) Owner(tenant string) string {
	a := m.Assignment(tenant)
	if len(a) == 0 {
		return ""
	}
	return a[0]
}

// Contains reports whether addr is in tenant's assignment (owner or
// replica). A non-clustered map contains everything: single-daemon
// deployments never refuse a tenant.
func (m *Map) Contains(addr, tenant string) bool {
	if !m.Clustered() {
		return true
	}
	for _, d := range m.Assignment(tenant) {
		if d == addr {
			return true
		}
	}
	return false
}

// TokenBucket is a lock-free token bucket. Charge spends tokens without
// refusal (the balance may go negative — callers use it for one-way
// traffic that has already happened); Gate refuses when the balance is
// non-positive and reports how long to wait. All methods take the
// current time in nanoseconds so callers control the clock and tests
// stay deterministic.
type TokenBucket struct {
	rate   int64 // tokens per second
	burst  int64 // cap on the balance
	tokens atomic.Int64
	last   atomic.Int64 // unix nanos of the last refill
}

// NewTokenBucket returns a bucket refilling at rate tokens/second with
// the given burst capacity, starting full. A nil bucket is valid and
// never refuses or charges.
func NewTokenBucket(rate, burst int64, now int64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &TokenBucket{rate: rate, burst: burst}
	b.tokens.Store(burst)
	b.last.Store(now)
	return b
}

// refill credits tokens accrued since the last refill. Lock-free: one
// goroutine wins the CAS on last and applies the credit; losers see the
// updated balance on their next read.
func (b *TokenBucket) refill(now int64) {
	last := b.last.Load()
	elapsed := now - last
	if elapsed <= 0 {
		return
	}
	credit := elapsed * b.rate / 1e9
	if credit <= 0 {
		return
	}
	// Advance last only by the time the credit accounts for, so
	// sub-token remainders are not lost to rounding.
	consumed := credit * 1e9 / b.rate
	if !b.last.CompareAndSwap(last, last+consumed) {
		return
	}
	if next := b.tokens.Add(credit); next > b.burst {
		// Clamp without losing concurrent debits: subtract the overshoot.
		b.tokens.Add(b.burst - next)
	}
}

// Charge spends n tokens. It never refuses; the balance may go negative,
// which future Gate calls observe. Safe on a nil bucket.
func (b *TokenBucket) Charge(n int64, now int64) {
	if b == nil {
		return
	}
	b.refill(now)
	b.tokens.Add(-n)
}

// Gate checks whether one unit of request work is admitted. When the
// balance is positive it spends one token and admits. Otherwise it
// refuses and returns the suggested wait in milliseconds until the
// balance turns positive (at least 1ms). Safe on a nil bucket (always
// admits).
func (b *TokenBucket) Gate(now int64) (ok bool, retryMs int64) {
	if b == nil {
		return true, 0
	}
	b.refill(now)
	if t := b.tokens.Load(); t <= 0 {
		deficit := 1 - t
		ms := deficit * 1000 / b.rate
		if ms < 1 {
			ms = 1
		}
		return false, ms
	}
	b.tokens.Add(-1)
	return true, 0
}

// Balance returns the current token balance after a refill at now.
// Intended for tests and introspection.
func (b *TokenBucket) Balance(now int64) int64 {
	if b == nil {
		return 0
	}
	b.refill(now)
	return b.tokens.Load()
}
