package harness

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/ompsim"
	"repro/pythia"
)

// LuleshPoint is one configuration of the LULESH adaptive-threads experiment
// (paper Figs. 10-13): the virtual execution time of the three runtime
// configurations — Vanilla (plain GOMP, maximum threads), Record (PYTHIA-
// RECORD attached), and Predict (PYTHIA-PREDICT guiding the per-region
// thread count).
type LuleshPoint struct {
	// X is the swept parameter: the problem size (Figs. 10/11) or the
	// maximum thread count (Figs. 12/13).
	X int
	// VanillaNs, RecordNs and PredictNs are virtual durations.
	VanillaNs, RecordNs, PredictNs int64
	// MeanThreads is the average thread count the adaptive run chose.
	MeanThreads float64
	// ImprovementPct is the predict-vs-vanilla improvement in percent.
	ImprovementPct float64
}

// runLuleshOnce executes the OpenMP LULESH kernel once on the virtual clock.
// ref == nil selects vanilla or record (record when oracle != nil); with a
// reference trace the run is adaptive.
func runLuleshOnce(m ompsim.MachineModel, maxThreads int, s int64, record bool,
	ref *pythia.TraceSet, errorRate float64, seed int64) (int64, float64, *pythia.TraceSet) {

	cfg := ompsim.Config{MaxThreads: maxThreads, Machine: &m, ErrorRate: errorRate, Seed: seed}
	var rec *pythia.Oracle
	switch {
	case record:
		rec = pythia.NewRecordOracle()
		cfg.Oracle = rec
	case ref != nil:
		oracle, err := pythia.NewPredictOracle(ref, pythia.Config{})
		if err != nil {
			panic(fmt.Sprintf("pythia: internal: harness: predict oracle built from a just-recorded trace failed: %v", err))
		}
		cfg.Oracle = oracle
		cfg.Adaptive = true
	}
	rt := ompsim.New(cfg)
	apps.RunLuleshOMP(rt, s, apps.LuleshSteps(s))
	dur := rt.Now()
	st := rt.Stats()
	rt.Close()
	mean := 0.0
	if st.Regions > 0 {
		mean = float64(st.ThreadsSum) / float64(st.Regions)
	}
	var ts *pythia.TraceSet
	if rec != nil {
		ts = mustFinish(rec)
	}
	return dur, mean, ts
}

// luleshPoint measures all three configurations for one (machine,
// maxThreads, size) setting.
func luleshPoint(m ompsim.MachineModel, maxThreads int, s int64) LuleshPoint {
	vanilla, _, _ := runLuleshOnce(m, maxThreads, s, false, nil, 0, 1)
	recNs, _, trace := runLuleshOnce(m, maxThreads, s, true, nil, 0, 1)
	predNs, mean, _ := runLuleshOnce(m, maxThreads, s, false, trace, 0, 1)
	imp := 0.0
	if vanilla > 0 {
		imp = (1 - float64(predNs)/float64(vanilla)) * 100
	}
	return LuleshPoint{
		VanillaNs: vanilla, RecordNs: recNs, PredictNs: predNs,
		MeanThreads: mean, ImprovementPct: imp,
	}
}

// Fig10Sizes is the problem-size sweep of Figs. 10 and 11.
var Fig10Sizes = []int{10, 15, 20, 25, 30, 35, 40, 45, 50}

// Fig10 runs the problem-size sweep on the given machine model with its full
// core count as the thread ceiling (paper Fig. 10 = Pudding/24, Fig. 11 =
// Pixel/16).
func Fig10(m ompsim.MachineModel) []LuleshPoint {
	var out []LuleshPoint
	for _, s := range Fig10Sizes {
		p := luleshPoint(m, m.Cores, int64(s))
		p.X = s
		out = append(out, p)
	}
	return out
}

// Fig12Threads returns the maximum-thread sweep for a machine (paper
// Fig. 12 = Pudding up to 24, Fig. 13 = Pixel up to 16).
func Fig12Threads(m ompsim.MachineModel) []int {
	base := []int{1, 2, 4, 8, 12, 16, 20, 24}
	var out []int
	for _, t := range base {
		if t <= m.Cores {
			out = append(out, t)
		}
	}
	return out
}

// Fig12 runs the maximum-thread sweep at problem size 30.
func Fig12(m ompsim.MachineModel) []LuleshPoint {
	var out []LuleshPoint
	for _, threads := range Fig12Threads(m) {
		p := luleshPoint(m, threads, 30)
		p.X = threads
		out = append(out, p)
	}
	return out
}

// Fig14Row is one error-rate measurement of the resilience experiment.
type Fig14Row struct {
	ErrorRate                      float64
	VanillaNs, RecordNs, PredictNs int64
}

// Fig14ErrorRates is the error-rate sweep of Fig. 14.
var Fig14ErrorRates = []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}

// Fig14 measures LULESH (problem size 30, Pudding) under PYTHIA-PREDICT
// while the runtime randomly injects unexpected events (paper section
// III-E). Several seeds are averaged since injection is randomised.
func Fig14(seeds int) []Fig14Row {
	m := ompsim.Pudding()
	const s = 30
	vanilla, _, _ := runLuleshOnce(m, m.Cores, s, false, nil, 0, 1)
	recNs, _, trace := runLuleshOnce(m, m.Cores, s, true, nil, 0, 1)
	if seeds <= 0 {
		seeds = 5
	}
	var out []Fig14Row
	for _, rate := range Fig14ErrorRates {
		var total int64
		for seed := 1; seed <= seeds; seed++ {
			d, _, _ := runLuleshOnce(m, m.Cores, s, false, trace, rate, int64(seed))
			total += d
		}
		out = append(out, Fig14Row{
			ErrorRate: rate,
			VanillaNs: vanilla,
			RecordNs:  recNs,
			PredictNs: total / int64(seeds),
		})
	}
	return out
}

// WriteLuleshPoints renders a Fig 10-13 style series.
func WriteLuleshPoints(w io.Writer, title, xLabel string, points []LuleshPoint) error {
	rw := &reportWriter{w: w}
	rw.println(title)
	t := &table{header: []string{
		xLabel, "Vanilla (ms)", "Record (ms)", "Predict (ms)", "mean threads", "improvement",
	}}
	for _, p := range points {
		t.add(
			fmt.Sprintf("%d", p.X),
			fmt.Sprintf("%.2f", float64(p.VanillaNs)/1e6),
			fmt.Sprintf("%.2f", float64(p.RecordNs)/1e6),
			fmt.Sprintf("%.2f", float64(p.PredictNs)/1e6),
			fmt.Sprintf("%.1f", p.MeanThreads),
			fmt.Sprintf("%+.1f%%", p.ImprovementPct),
		)
	}
	t.write(rw)
	return rw.err
}

// WriteFig14 renders the resilience series.
func WriteFig14(w io.Writer, rows []Fig14Row) error {
	rw := &reportWriter{w: w}
	rw.println("Fig 14: Execution time of Lulesh as a function of the error rate (s=30, pudding)")
	t := &table{header: []string{"error rate", "Vanilla (ms)", "Record (ms)", "Predict (ms)"}}
	for _, r := range rows {
		t.add(
			fmt.Sprintf("%.2f", r.ErrorRate),
			fmt.Sprintf("%.2f", float64(r.VanillaNs)/1e6),
			fmt.Sprintf("%.2f", float64(r.RecordNs)/1e6),
			fmt.Sprintf("%.2f", float64(r.PredictNs)/1e6),
		)
	}
	t.write(rw)
	return rw.err
}
