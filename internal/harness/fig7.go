package harness

import (
	"io"
	"strings"

	"repro/internal/apps"
)

// Fig7 records BT on the large working set and renders the grammar of one
// rank in the paper's notation (Fig. 7): the MPI_ prefixes are stripped and
// peer-rank payloads dropped for readability, exactly as the paper does.
func Fig7(w io.Writer) error {
	app, err := apps.ByName("BT")
	if err != nil {
		return err
	}
	run := RunMPIApp(app, apps.Large, true, 42)
	tid := sortedThreadIDs(run.Trace.Threads)[0]
	g := run.Trace.Threads[tid].Grammar
	rw := &reportWriter{w: w}
	rw.printf("Fig 7: grammar extracted from BT.large (rank %d, %d events, %d rules)\n",
		tid, g.EventCount, len(g.Rules))
	dump := g.Dump(func(id int32) string {
		name := run.Trace.Events[id]
		name = strings.TrimPrefix(name, "MPI_")
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[:i]
		}
		return name
	})
	rw.printf("%s", dump)
	return rw.err
}
