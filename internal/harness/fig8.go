package harness

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/pythia"
)

// DefaultDistances is the prediction-distance sweep of Figs. 8 and 9.
var DefaultDistances = []int{1, 2, 4, 8, 16, 32, 64, 128}

// Fig8Row is one accuracy measurement: application, replayed working set,
// prediction distance, and the fraction of correct predictions.
type Fig8Row struct {
	App      string
	Class    apps.Class
	Distance int
	Accuracy float64
	Samples  int
}

// Fig8Config tunes the accuracy experiment.
type Fig8Config struct {
	// Apps restricts the experiment (empty = all 13).
	Apps []string
	// Distances to evaluate (default DefaultDistances).
	Distances []int
	// MaxSamplesPerRank caps the query points per rank (default 100).
	MaxSamplesPerRank int
	// RefSeed seeds the reference (recorded) execution; ReplaySeed seeds
	// the replayed executions. Distinct seeds model run-to-run variation in
	// the data-dependent applications (AMG, Quicksilver), as on a real
	// machine.
	RefSeed, ReplaySeed int64
}

func (c Fig8Config) withDefaults() Fig8Config {
	if len(c.Distances) == 0 {
		c.Distances = DefaultDistances
	}
	if c.MaxSamplesPerRank <= 0 {
		c.MaxSamplesPerRank = 100
	}
	if c.RefSeed == 0 {
		c.RefSeed = 42
	}
	if c.ReplaySeed == 0 {
		c.ReplaySeed = 43
	}
	return c
}

// Fig8 measures the accuracy of PYTHIA-PREDICT (paper section III-C2): a
// trace is recorded on the small working set, then the application runs
// with every working set; at each blocking call the oracle predicts the
// event x events ahead and the prediction is scored against what actually
// happened.
func Fig8(cfg Fig8Config) ([]Fig8Row, error) {
	cfg = cfg.withDefaults()
	list, err := selectApps(cfg.Apps)
	if err != nil {
		return nil, err
	}
	maxDist := 0
	for _, d := range cfg.Distances {
		if d > maxDist {
			maxDist = d
		}
	}
	var rows []Fig8Row
	for _, app := range list {
		ref := RunMPIApp(app, apps.Small, true, cfg.RefSeed)
		for _, class := range []apps.Class{apps.Small, apps.Medium, apps.Large} {
			streams := CaptureStreams(app, class, cfg.ReplaySeed)
			hits := make(map[int]int)
			total := make(map[int]int)
			for _, tid := range sortedThreadIDs(streams) {
				stream := streams[tid]
				oracle, err := pythia.NewPredictOracle(ref.Trace, pythia.Config{})
				if err != nil {
					return nil, err
				}
				th := oracle.Thread(tid)
				if th.Predictor() == nil {
					continue
				}
				// The replay tracks from the very beginning of the
				// execution, as the paper's deployed runtimes do.
				th.StartAtBeginning()
				// Choose query points: blocking events that still have a
				// future to predict, evenly subsampled. Short streams (EP,
				// FT, IS) score only the distances that fit.
				var points []int
				for i, name := range stream {
					if IsBlockingEvent(name) && i+1 < len(stream) {
						points = append(points, i)
					}
				}
				stride := 1
				if len(points) > cfg.MaxSamplesPerRank {
					stride = len(points) / cfg.MaxSamplesPerRank
				}
				sample := make(map[int]bool, cfg.MaxSamplesPerRank)
				for i := 0; i < len(points); i += stride {
					sample[points[i]] = true
				}
				for i, name := range stream {
					th.Submit(oracle.Intern(name))
					if !sample[i] {
						continue
					}
					horizon := maxDist
					if rem := len(stream) - 1 - i; rem < horizon {
						horizon = rem
					}
					preds := th.PredictSequence(horizon)
					for _, d := range cfg.Distances {
						if i+d >= len(stream) {
							continue
						}
						total[d]++
						if d-1 < len(preds) &&
							oracle.EventName(pythia.ID(preds[d-1].EventID)) == stream[i+d] {
							hits[d]++
						}
					}
				}
			}
			for _, d := range cfg.Distances {
				if total[d] == 0 {
					// The stream is shorter than this distance everywhere
					// (EP's handful of events): nothing to score.
					continue
				}
				rows = append(rows, Fig8Row{
					App: app.Name, Class: class, Distance: d,
					Accuracy: float64(hits[d]) / float64(total[d]), Samples: total[d],
				})
			}
		}
	}
	return rows, nil
}

// WriteFig8 renders the accuracy series, one block per application with one
// line per working set (the paper plots these as per-application panels).
func WriteFig8(w io.Writer, distances []int, rows []Fig8Row) error {
	if len(distances) == 0 {
		distances = DefaultDistances
	}
	rw := &reportWriter{w: w}
	rw.println("Fig 8: Accuracy of PYTHIA-PREDICT predictions (trace recorded on small)")
	header := []string{"Application", "Working set"}
	for _, d := range distances {
		header = append(header, fmt.Sprintf("x=%d", d))
	}
	t := &table{header: header}
	type key struct {
		app   string
		class apps.Class
	}
	cells := make(map[key]map[int]float64)
	var order []key
	for _, r := range rows {
		k := key{r.App, r.Class}
		if cells[k] == nil {
			cells[k] = make(map[int]float64)
			order = append(order, k)
		}
		cells[k][r.Distance] = r.Accuracy
	}
	for _, k := range order {
		row := []string{k.app, k.class.String()}
		for _, d := range distances {
			if v, ok := cells[k][d]; ok {
				row = append(row, fmt.Sprintf("%5.1f%%", v*100))
			} else {
				row = append(row, "    -")
			}
		}
		t.add(row...)
	}
	t.write(rw)
	return rw.err
}
