package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
)

// Table1Row is one application's line of the paper's Table I.
type Table1Row struct {
	App      string
	Vanilla  Summary
	Record   Summary
	Overhead float64 // percent
	Events   int64   // total events recorded across ranks
	Rules    float64 // average grammar rules per rank
}

// Table1Config tunes the overhead experiment.
type Table1Config struct {
	// Class is the working set (the paper uses large).
	Class apps.Class
	// Repetitions per configuration (the paper uses 10).
	Repetitions int
	// Apps restricts the experiment (empty = all 13).
	Apps []string
	// Seed feeds the data-dependent applications.
	Seed int64
}

func (c Table1Config) withDefaults() Table1Config {
	if c.Repetitions <= 0 {
		c.Repetitions = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Table1 measures the overhead of PYTHIA-RECORD on every application
// (paper section III-C1): vanilla vs recorded execution time, the number of
// recorded events, and the average grammar size.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	list, err := selectApps(cfg.Apps)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, app := range list {
		var vanilla, recorded []time.Duration
		var events int64
		var rules float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			v := RunMPIApp(app, cfg.Class, false, cfg.Seed)
			vanilla = append(vanilla, v.Wall)
			r := RunMPIApp(app, cfg.Class, true, cfg.Seed)
			recorded = append(recorded, r.Wall)
			if rep == 0 {
				events = r.Trace.TotalEvents()
				var sum int64
				for _, th := range r.Trace.Threads {
					sum += int64(len(th.Grammar.Rules))
				}
				rules = float64(sum) / float64(len(r.Trace.Threads))
			}
		}
		vs, rs := Summarise(vanilla), Summarise(recorded)
		overhead := 0.0
		if vs.Mean > 0 {
			overhead = (float64(rs.Mean)/float64(vs.Mean) - 1) * 100
		}
		rows = append(rows, Table1Row{
			App:      app.Name,
			Vanilla:  vs,
			Record:   rs,
			Overhead: overhead,
			Events:   events,
			Rules:    rules,
		})
	}
	return rows, nil
}

// WriteTable1 renders rows in the paper's Table I layout.
func WriteTable1(w io.Writer, class apps.Class, rows []Table1Row) error {
	rw := &reportWriter{w: w}
	rw.printf("Table I: Performance evaluation of PYTHIA-RECORD (%s working set)\n", class)
	t := &table{header: []string{
		"Application", "Vanilla (ms)", "Record (ms)", "overhead(%)", "# events", "# rules",
	}}
	for _, r := range rows {
		t.add(
			r.App,
			fmt.Sprintf("%.1f", float64(r.Vanilla.Mean)/1e6),
			fmt.Sprintf("%.1f", float64(r.Record.Mean)/1e6),
			fmt.Sprintf("%+.1f", r.Overhead),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.1f", r.Rules),
		)
	}
	t.write(rw)
	return rw.err
}

func selectApps(names []string) ([]apps.App, error) {
	if len(names) == 0 {
		return apps.All(), nil
	}
	var out []apps.App
	for _, n := range names {
		a, err := apps.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
