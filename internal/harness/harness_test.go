package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/ompsim"
)

func TestSummarise(t *testing.T) {
	s := Summarise([]time.Duration{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 || s.N != 3 {
		t.Fatalf("Summarise = %+v", s)
	}
	if z := Summarise(nil); z.N != 0 {
		t.Fatalf("empty Summarise = %+v", z)
	}
}

func TestIsBlockingEvent(t *testing.T) {
	for _, name := range []string{"MPI_Wait", "MPI_Waitall", "MPI_Barrier",
		"MPI_Allreduce:0", "MPI_Recv:3", "MPI_Bcast:0"} {
		if !IsBlockingEvent(name) {
			t.Errorf("%q should be blocking", name)
		}
	}
	for _, name := range []string{"MPI_Isend:1", "MPI_Irecv:2", "GOMP_parallel_start.x"} {
		if IsBlockingEvent(name) {
			t.Errorf("%q should not be blocking", name)
		}
	}
}

func TestTable1SingleApp(t *testing.T) {
	rows, err := Table1(Table1Config{Class: apps.Small, Repetitions: 2, Apps: []string{"FT"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].App != "FT" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Events == 0 || rows[0].Rules == 0 {
		t.Fatalf("missing counters: %+v", rows[0])
	}
	var sb strings.Builder
	WriteTable1(&sb, apps.Small, rows)
	if !strings.Contains(sb.String(), "FT") {
		t.Fatal("rendered table missing app name")
	}
}

// TestFig8ShapeBT checks the headline Fig. 8 property on the most regular
// solver: accuracy is essentially perfect at short distances on every
// working set, because BT's structure does not depend on the problem size.
func TestFig8ShapeBT(t *testing.T) {
	rows, err := Fig8(Fig8Config{Apps: []string{"BT"}, Distances: []int{1, 8, 64},
		MaxSamplesPerRank: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Fatalf("no samples for %+v", r)
		}
		if r.Accuracy < 0.9 {
			t.Errorf("BT %s x=%d accuracy %.2f, want >= 0.9", r.Class, r.Distance, r.Accuracy)
		}
	}
	var sb strings.Builder
	WriteFig8(&sb, []int{1, 8, 64}, rows)
	if !strings.Contains(sb.String(), "BT") {
		t.Fatal("rendered figure missing app")
	}
}

// TestFig8LoopBoundaryDegradation: LU's inner loop length grows with the
// working set, so long-distance predictions from a small-class trace must
// degrade on the large class relative to the small class.
func TestFig8LoopBoundaryDegradation(t *testing.T) {
	rows, err := Fig8(Fig8Config{Apps: []string{"LU"}, Distances: []int{1, 128},
		MaxSamplesPerRank: 40})
	if err != nil {
		t.Fatal(err)
	}
	acc := map[apps.Class]map[int]float64{}
	for _, r := range rows {
		if acc[r.Class] == nil {
			acc[r.Class] = map[int]float64{}
		}
		acc[r.Class][r.Distance] = r.Accuracy
	}
	if acc[apps.Small][1] < 0.95 {
		t.Errorf("LU small x=1 accuracy %.2f, want ~1", acc[apps.Small][1])
	}
	if acc[apps.Large][128] >= acc[apps.Small][128] {
		t.Errorf("LU large x=128 accuracy (%.2f) should degrade vs small (%.2f)",
			acc[apps.Large][128], acc[apps.Small][128])
	}
}

func TestFig9CostGrowsWithDistance(t *testing.T) {
	rows, err := Fig9(Fig9Config{Apps: []string{"CG"}, Distances: []int{1, 64}, MaxSamples: 16})
	if err != nil {
		t.Fatal(err)
	}
	byDist := map[int]time.Duration{}
	for _, r := range rows {
		byDist[r.Distance] = r.MeanCost
	}
	if byDist[64] <= byDist[1] {
		t.Errorf("cost at distance 64 (%v) should exceed distance 1 (%v)", byDist[64], byDist[1])
	}
	var sb strings.Builder
	WriteFig9(&sb, []int{1, 64}, rows)
	if !strings.Contains(sb.String(), "CG") {
		t.Fatal("rendered figure missing app")
	}
}

// TestFig10Shape reproduces the section III-D3 findings on the virtual
// 24-core machine: prediction wins clearly at small problem sizes and the
// advantage shrinks as the problem grows; recording costs nothing on the
// virtual clock.
func TestFig10Shape(t *testing.T) {
	m := ompsim.Pudding()
	pts := []LuleshPoint{}
	for _, s := range []int{10, 30, 50} {
		p := luleshPoint(m, m.Cores, int64(s))
		p.X = s
		pts = append(pts, p)
	}
	for _, p := range pts {
		if p.RecordNs != p.VanillaNs {
			t.Errorf("s=%d: record (%d) != vanilla (%d) on virtual clock", p.X, p.RecordNs, p.VanillaNs)
		}
		if p.PredictNs >= p.VanillaNs {
			t.Errorf("s=%d: predict (%d) not faster than vanilla (%d)", p.X, p.PredictNs, p.VanillaNs)
		}
	}
	if !(pts[0].ImprovementPct > pts[2].ImprovementPct) {
		t.Errorf("improvement should shrink with problem size: %+v", pts)
	}
	if pts[1].ImprovementPct < 15 || pts[1].ImprovementPct > 60 {
		t.Errorf("s=30 improvement %.1f%%, expected the paper's ballpark (~38%%)", pts[1].ImprovementPct)
	}
}

// TestFig12Shape: at low thread ceilings all configurations tie; at high
// ceilings predict wins.
func TestFig12Shape(t *testing.T) {
	m := ompsim.Pudding()
	low := luleshPoint(m, 2, 30)
	high := luleshPoint(m, 24, 30)
	lowGap := float64(low.VanillaNs-low.PredictNs) / float64(low.VanillaNs)
	if lowGap > 0.10 {
		t.Errorf("at 2 threads the gap should be small, got %.1f%%", lowGap*100)
	}
	if high.ImprovementPct < 15 {
		t.Errorf("at 24 threads improvement %.1f%%, want substantial", high.ImprovementPct)
	}
}

// TestFig14Shape: performance degrades monotonically-ish towards vanilla as
// the error rate rises.
func TestFig14Shape(t *testing.T) {
	rows := Fig14(3)
	if len(rows) != len(Fig14ErrorRates) {
		t.Fatalf("got %d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.PredictNs >= first.VanillaNs {
		t.Errorf("clean predict (%d) should beat vanilla (%d)", first.PredictNs, first.VanillaNs)
	}
	if last.PredictNs <= first.PredictNs {
		t.Errorf("predict at error rate 1.0 (%d) should be slower than clean (%d)",
			last.PredictNs, first.PredictNs)
	}
	var sb strings.Builder
	WriteFig14(&sb, rows)
	if !strings.Contains(sb.String(), "error rate") {
		t.Fatal("rendered figure broken")
	}
}

func TestFig7Renders(t *testing.T) {
	var sb strings.Builder
	if err := Fig7(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"R0 ->", "Bcast", "Barrier"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig 7 output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLuleshPoints(t *testing.T) {
	var sb strings.Builder
	WriteLuleshPoints(&sb, "Fig 10", "size", []LuleshPoint{{X: 10, VanillaNs: 1e6, PredictNs: 8e5}})
	if !strings.Contains(sb.String(), "Fig 10") {
		t.Fatal("title missing")
	}
}

// TestHybridRecordingIncludesOMPEvents: the paper instruments hybrid
// applications with BOTH runtimes; a recorded hybrid trace must contain
// GOMP region events interleaved into the rank streams.
func TestHybridRecordingIncludesOMPEvents(t *testing.T) {
	app, err := apps.ByName("miniFE")
	if err != nil {
		t.Fatal(err)
	}
	run := RunMPIApp(app, apps.Small, true, 42)
	foundGOMP, foundMPI := false, false
	for _, name := range run.Trace.Events {
		if strings.HasPrefix(name, "GOMP_parallel_start.") {
			foundGOMP = true
		}
		if strings.HasPrefix(name, "MPI_") {
			foundMPI = true
		}
	}
	if !foundGOMP || !foundMPI {
		t.Fatalf("hybrid trace events incomplete: GOMP=%v MPI=%v", foundGOMP, foundMPI)
	}
	// The streams interleave: a rank's unfolding must mix both prefixes.
	stream := run.Trace.Threads[0].Grammar.Unfold()
	var sawG, sawM bool
	for _, id := range stream {
		name := run.Trace.Events[id]
		if strings.HasPrefix(name, "GOMP_") {
			sawG = true
		}
		if strings.HasPrefix(name, "MPI_") {
			sawM = true
		}
	}
	if !sawG || !sawM {
		t.Fatal("rank 0 stream does not interleave MPI and OpenMP events")
	}
}

// TestExtRanksSmoke: same-configuration replay is perfect; changed rank
// count degrades and produces unknown events.
func TestExtRanksSmoke(t *testing.T) {
	rows, err := ExtRanks([]string{"BT"}, 4, []int{4, 8}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	same, changed := rows[0], rows[1]
	if same.Accuracy < 0.99 {
		t.Fatalf("same-config accuracy %.2f, want ~1", same.Accuracy)
	}
	if changed.Accuracy >= same.Accuracy {
		t.Fatalf("changed-config accuracy %.2f did not degrade", changed.Accuracy)
	}
	if changed.UnknownPct == 0 {
		t.Fatal("changed rank count produced no unknown events")
	}
	var sb strings.Builder
	WriteExtRanks(&sb, rows)
	if !strings.Contains(sb.String(), "BT") {
		t.Fatal("rendering broken")
	}
}

// TestExtDurationSmoke: region duration predictions on the virtual clock are
// accurate to a few percent for steady-state regions.
func TestExtDurationSmoke(t *testing.T) {
	rows, err := ExtDuration(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no duration rows")
	}
	accurate := 0
	for _, r := range rows {
		if r.MeanErrPct < 5 {
			accurate++
		}
	}
	if accurate < len(rows)*3/4 {
		t.Fatalf("only %d of %d regions predicted within 5%%", accurate, len(rows))
	}
	var sb strings.Builder
	WriteExtDuration(&sb, 10, rows)
	if !strings.Contains(sb.String(), "worst per-region") {
		t.Fatal("rendering broken")
	}
}
