package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/pythia"
)

// Fig9Row is one prediction-cost measurement: the mean latency of a single
// oracle query at a given distance.
type Fig9Row struct {
	App      string
	Distance int
	MeanCost time.Duration
	Samples  int
}

// Fig9Config tunes the prediction-cost experiment.
type Fig9Config struct {
	// Apps restricts the experiment (empty = all 13).
	Apps []string
	// Distances to evaluate (default DefaultDistances).
	Distances []int
	// MaxSamples caps the measured query points per application
	// (default 64).
	MaxSamples int
	// Class is the working set (the paper uses large).
	Class apps.Class
	// Seed feeds the applications.
	Seed int64
}

func (c Fig9Config) withDefaults() Fig9Config {
	if len(c.Distances) == 0 {
		c.Distances = DefaultDistances
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	c.Class = apps.Large
	return c
}

// Fig9 measures the cost of one PYTHIA-PREDICT query as a function of the
// prediction distance (paper section III-C3): the cost grows linearly with
// the distance, and irregular applications with complex grammars cost more.
func Fig9(cfg Fig9Config) ([]Fig9Row, error) {
	cfg = cfg.withDefaults()
	list, err := selectApps(cfg.Apps)
	if err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, app := range list {
		ref := RunMPIApp(app, cfg.Class, true, cfg.Seed)
		streams := CaptureStreams(app, cfg.Class, cfg.Seed)
		tid := sortedThreadIDs(streams)[0]
		stream := streams[tid]

		oracle, err := pythia.NewPredictOracle(ref.Trace, pythia.Config{})
		if err != nil {
			return nil, err
		}
		th := oracle.Thread(tid)
		th.StartAtBeginning()

		var points []int
		for i, name := range stream {
			if IsBlockingEvent(name) {
				points = append(points, i)
			}
		}
		stride := 1
		if len(points) > cfg.MaxSamples {
			stride = len(points) / cfg.MaxSamples
		}
		sample := make(map[int]bool, cfg.MaxSamples)
		for i := 0; i < len(points); i += stride {
			sample[points[i]] = true
		}

		costs := make(map[int]time.Duration)
		counts := make(map[int]int)
		for i, name := range stream {
			th.Submit(oracle.Intern(name))
			if !sample[i] {
				continue
			}
			for _, d := range cfg.Distances {
				start := time.Now()
				th.PredictAt(d)
				costs[d] += time.Since(start)
				counts[d]++
			}
		}
		for _, d := range cfg.Distances {
			mean := time.Duration(0)
			if counts[d] > 0 {
				mean = costs[d] / time.Duration(counts[d])
			}
			rows = append(rows, Fig9Row{App: app.Name, Distance: d, MeanCost: mean, Samples: counts[d]})
		}
	}
	return rows, nil
}

// WriteFig9 renders the cost series, one line per application.
func WriteFig9(w io.Writer, distances []int, rows []Fig9Row) error {
	if len(distances) == 0 {
		distances = DefaultDistances
	}
	rw := &reportWriter{w: w}
	rw.println("Fig 9: Cost of PYTHIA-PREDICT predictions (large working set, µs per query)")
	header := []string{"Application"}
	for _, d := range distances {
		header = append(header, fmt.Sprintf("x=%d", d))
	}
	t := &table{header: header}
	cells := make(map[string]map[int]time.Duration)
	var order []string
	for _, r := range rows {
		if cells[r.App] == nil {
			cells[r.App] = make(map[int]time.Duration)
			order = append(order, r.App)
		}
		cells[r.App][r.Distance] = r.MeanCost
	}
	for _, app := range order {
		row := []string{app}
		for _, d := range distances {
			row = append(row, fmt.Sprintf("%7.2f", float64(cells[app][d])/1e3))
		}
		t.add(row...)
	}
	t.write(rw)
	return rw.err
}
