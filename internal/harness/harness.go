// Package harness drives the paper's evaluation (section III): it runs the
// 13 applications on the simulated runtimes in vanilla / record / predict
// configurations and regenerates every table and figure — Table I (record
// overhead), Fig. 7 (BT grammar), Fig. 8 (prediction accuracy vs distance),
// Fig. 9 (prediction cost vs distance), Figs. 10-13 (LULESH with adaptive
// thread counts vs problem size and vs maximum threads), and Fig. 14
// (resilience to unexpected events). cmd/pythia-bench and the repository
// benchmarks are thin wrappers around this package.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/mpisim"
	"repro/internal/ompsim"
	"repro/pythia"
)

// Summary aggregates repeated duration measurements.
type Summary struct {
	Min, Max, Mean time.Duration
	N              int
}

// Summarise reduces samples to min/max/mean (the paper reports all three).
func Summarise(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := Summary{Min: samples[0], Max: samples[0], N: len(samples)}
	var total time.Duration
	for _, d := range samples {
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		total += d
	}
	s.Mean = total / time.Duration(len(samples))
	return s
}

// MPIRun is one execution of an MPI (or hybrid) application.
type MPIRun struct {
	// Wall is the measured wall-clock duration of the run.
	Wall time.Duration
	// Trace is the recorded trace set (nil for vanilla runs).
	Trace *pythia.TraceSet
}

// RunMPIApp executes one application in vanilla mode (record=false) or under
// PYTHIA-RECORD (record=true). Hybrid applications get a per-rank OpenMP
// runtime; when recording, its region events interleave into the rank's
// event stream exactly as the paper's combined MPI+OpenMP runtimes do.
//
// The oracle is harness-owned and a Finish failure (the oracle degrading
// mid-run after a contained panic) invalidates the experiment, so it panics.
// Tools that own their oracle — and must turn failures into exit codes, not
// stack traces — use RunMPIAppWithOracle instead.
func RunMPIApp(app apps.App, class apps.Class, record bool, seed int64) MPIRun {
	if !record {
		w := mpisim.NewWorld(app.Ranks)
		start := time.Now()
		w.Run(func(m mpisim.MPI) { appBody(app, class, seed, false, nil)(m) })
		return MPIRun{Wall: time.Since(start)}
	}
	oracle := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	run, err := RunMPIAppWithOracle(oracle, app, class, seed)
	if err != nil {
		panic(fmt.Sprintf("pythia: internal: harness: record-mode Finish failed: %v", err))
	}
	return run
}

// RunMPIAppWithOracle executes one application under PYTHIA-RECORD against a
// caller-supplied record-mode oracle, so the caller controls recording
// options (timestamps, budgets, crash-safe checkpointing). A Finish failure
// — e.g. the oracle degraded after containing an internal panic — comes back
// as an error carrying the health cause, never as a panic.
func RunMPIAppWithOracle(oracle *pythia.Oracle, app apps.App, class apps.Class, seed int64) (MPIRun, error) {
	w := mpisim.NewWorld(app.Ranks)
	body := appBody(app, class, seed, true, oracle)
	start := time.Now()
	w.RunInterposed(func(m mpisim.MPI) mpisim.MPI {
		return mpisim.NewInterposer(m, oracle)
	}, body)
	wall := time.Since(start)

	ts, err := oracle.Finish()
	if err != nil {
		if h := oracle.Health(); h.Cause != "" {
			err = fmt.Errorf("%w (health: %s, cause: %s)", err, h.State, h.Cause)
		}
		return MPIRun{Wall: wall}, err
	}
	return MPIRun{Wall: wall, Trace: ts}, nil
}

// mustFinish finalises a record-mode oracle the harness created itself for
// an experiment, where a degraded oracle invalidates the run. Tool-facing
// paths go through RunMPIAppWithOracle and its error return instead.
func mustFinish(o *pythia.Oracle) *pythia.TraceSet {
	ts, err := o.Finish()
	if err != nil {
		panic(fmt.Sprintf("pythia: internal: harness: record-mode Finish failed: %v", err))
	}
	return ts
}

// appBody builds the per-rank body closure shared by the vanilla and
// recorded paths.
func appBody(app apps.App, class apps.Class, seed int64, record bool, oracle *pythia.Oracle) func(mpisim.MPI) {
	return func(m mpisim.MPI) {
		ctx := &apps.Context{MPI: m, Class: class, Seed: seed}
		if app.Hybrid {
			cfg := ompsim.Config{MaxThreads: 2}
			if record {
				cfg.Oracle = oracle
				cfg.ThreadID = int32(m.Rank())
			}
			rt := ompsim.New(cfg)
			defer rt.Close()
			ctx.OMP = rt
		}
		app.Run(ctx)
	}
}

// CaptureStreams records one run of the application and returns, per rank,
// the full event descriptor stream (unfolded from the recorded grammar).
// This is how the evaluation replays an execution with one working set
// against the trace of another.
func CaptureStreams(app apps.App, class apps.Class, seed int64) map[int32][]string {
	run := RunMPIApp(app, class, true, seed)
	out := make(map[int32][]string, len(run.Trace.Threads))
	for tid, th := range run.Trace.Threads {
		ids := th.Grammar.Unfold()
		stream := make([]string, len(ids))
		for i, id := range ids {
			stream[i] = run.Trace.Events[id]
		}
		out[tid] = stream
	}
	return out
}

// IsBlockingEvent reports whether a descriptor names one of the blocking MPI
// entry points at which the paper's runtime queries the oracle (MPI_Wait and
// friends plus blocking collectives).
func IsBlockingEvent(name string) bool {
	for _, p := range []string{
		"MPI_Wait", "MPI_Waitall", "MPI_Barrier", "MPI_Allreduce",
		"MPI_Reduce", "MPI_Bcast", "MPI_Alltoall", "MPI_Allgather",
		"MPI_Gather", "MPI_Recv",
	} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// reportWriter accumulates the first write error of a report rendering so
// the Write* helpers can print unconditionally and surface I/O failures
// once, through their return value.
type reportWriter struct {
	w   io.Writer
	err error
}

func (rw *reportWriter) printf(format string, args ...any) {
	if rw.err == nil {
		_, rw.err = fmt.Fprintf(rw.w, format, args...)
	}
}

func (rw *reportWriter) println(args ...any) {
	if rw.err == nil {
		_, rw.err = fmt.Fprintln(rw.w, args...)
	}
}

// table renders aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(rw *reportWriter) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		rw.println(strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// sortedThreadIDs returns map keys in ascending order.
func sortedThreadIDs[T any](m map[int32]T) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
