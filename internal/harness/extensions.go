package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/mpisim"
	"repro/internal/ompsim"
	"repro/pythia"
)

// This file implements the extension experiment suggested by the paper's
// conclusion: "Further investigations are needed to make Pythia able to
// predict accurately when the application runs with different configuration
// (number of threads, number of processes, ...)". We quantify the problem:
// record a reference execution with one rank count, replay with another, and
// measure how far accuracy drops. Point-to-point events carry the peer rank
// in their payload, so changing the process count renames a large share of
// the alphabet — the paper's open problem in its sharpest form.

// ExtRanksRow is one (application, replayed rank count) accuracy result.
type ExtRanksRow struct {
	App         string
	RefRanks    int
	ReplayRanks int
	Distance    int
	Accuracy    float64
	// UnknownPct is the fraction of replayed events absent from the
	// reference trace (peer ranks that did not exist at record time).
	UnknownPct float64
	Samples    int
}

// runMPIAppRanks is RunMPIApp with an explicit rank count.
func runMPIAppRanks(app apps.App, class apps.Class, record bool, seed int64, ranks int) MPIRun {
	var oracle *pythia.Oracle
	if record {
		oracle = pythia.NewRecordOracle(pythia.WithoutTimestamps())
	}
	w := mpisim.NewWorld(ranks)
	body := func(m mpisim.MPI) {
		ctx := &apps.Context{MPI: m, Class: class, Seed: seed}
		if app.Hybrid {
			cfg := ompsim.Config{MaxThreads: 2}
			if record {
				cfg.Oracle = oracle
				cfg.ThreadID = int32(m.Rank())
			}
			rt := ompsim.New(cfg)
			defer rt.Close()
			ctx.OMP = rt
		}
		app.Run(ctx)
	}
	start := time.Now()
	if record {
		w.RunInterposed(func(m mpisim.MPI) mpisim.MPI {
			return mpisim.NewInterposer(m, oracle)
		}, body)
	} else {
		w.Run(body)
	}
	out := MPIRun{Wall: time.Since(start)}
	if record {
		out.Trace = mustFinish(oracle)
	}
	return out
}

// ExtRanks records each application on refRanks processes (small working
// set) and replays executions with the given rank counts, scoring
// next-event accuracy at the blocking calls of the ranks both runs share.
func ExtRanks(appNames []string, refRanks int, replayRanks []int, maxSamples int) ([]ExtRanksRow, error) {
	list, err := selectApps(appNames)
	if err != nil {
		return nil, err
	}
	if maxSamples <= 0 {
		maxSamples = 100
	}
	var rows []ExtRanksRow
	for _, app := range list {
		ref := runMPIAppRanks(app, apps.Small, true, 42, refRanks)
		for _, rr := range replayRanks {
			capture := runMPIAppRanks(app, apps.Small, true, 43, rr)
			hits, total := 0, 0
			var unknown, observed int64
			common := refRanks
			if rr < common {
				common = rr
			}
			for tid := int32(0); tid < int32(common); tid++ {
				th := capture.Trace.Threads[tid]
				if th == nil {
					continue
				}
				ids := th.Grammar.Unfold()
				stream := make([]string, len(ids))
				for i, id := range ids {
					stream[i] = capture.Trace.Events[id]
				}
				oracle, err := pythia.NewPredictOracle(ref.Trace, pythia.Config{})
				if err != nil {
					return nil, err
				}
				pt := oracle.Thread(tid)
				if pt.Predictor() == nil {
					continue
				}
				pt.StartAtBeginning()
				var points []int
				for i, name := range stream {
					if IsBlockingEvent(name) && i+1 < len(stream) {
						points = append(points, i)
					}
				}
				stride := 1
				if len(points) > maxSamples {
					stride = len(points) / maxSamples
				}
				sample := make(map[int]bool)
				for i := 0; i < len(points); i += stride {
					sample[points[i]] = true
				}
				for i, name := range stream {
					pt.Submit(oracle.Intern(name))
					if sample[i] {
						total++
						if pred, ok := pt.PredictAt(1); ok &&
							oracle.EventName(pythia.ID(pred.EventID)) == stream[i+1] {
							hits++
						}
					}
				}
				st := pt.Predictor().Stats()
				unknown += st.Unknown
				observed += st.Observed
			}
			row := ExtRanksRow{
				App: app.Name, RefRanks: refRanks, ReplayRanks: rr,
				Distance: 1, Samples: total,
			}
			if total > 0 {
				row.Accuracy = float64(hits) / float64(total)
			}
			if observed > 0 {
				row.UnknownPct = float64(unknown) / float64(observed)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteExtRanks renders the configuration-change extension results.
func WriteExtRanks(w io.Writer, rows []ExtRanksRow) error {
	rw := &reportWriter{w: w}
	rw.println("Extension: accuracy when the process count differs from the reference")
	rw.println("(the paper's conclusion flags this as an open problem)")
	t := &table{header: []string{"Application", "ref ranks", "replay ranks", "x=1 accuracy", "unknown events"}}
	for _, r := range rows {
		t.add(
			r.App,
			fmt.Sprintf("%d", r.RefRanks),
			fmt.Sprintf("%d", r.ReplayRanks),
			fmt.Sprintf("%5.1f%%", r.Accuracy*100),
			fmt.Sprintf("%5.1f%%", r.UnknownPct*100),
		)
	}
	t.write(rw)
	return rw.err
}

// ExtDurationRow quantifies the accuracy of the duration predictions that
// drive the section III-D optimisation: per LULESH region, the relative
// error between the predicted region duration and the modelled truth.
type ExtDurationRow struct {
	Region      string
	Samples     int
	MeanErrPct  float64
	WorstErrPct float64
}

// ExtDuration records the LULESH kernel on the virtual 24-core machine and
// replays it, comparing every region's predicted duration with its actual
// (modelled) duration. The paper uses these predictions but never reports
// their accuracy; this quantifies it.
func ExtDuration(size int64) ([]ExtDurationRow, error) {
	m := ompsim.Pudding()
	steps := apps.LuleshSteps(size)

	rec := pythia.NewRecordOracle()
	recRT := ompsim.New(ompsim.Config{MaxThreads: m.Cores, Machine: &m, Oracle: rec})
	apps.RunLuleshOMP(recRT, size, steps)
	recRT.Close()
	ts, err := rec.Finish()
	if err != nil {
		return nil, err
	}

	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		return nil, err
	}
	th := oracle.Thread(0)
	th.StartAtBeginning()

	type agg struct {
		n          int
		sum, worst float64
	}
	byRegion := map[string]*agg{}
	var vnow int64
	for step := 0; step < steps; step++ {
		for _, r := range apps.LuleshRegions() {
			begin := oracle.Intern("GOMP_parallel_start." + r.Name)
			end := oracle.Intern("GOMP_parallel_end." + r.Name)
			th.Submit(begin)
			actual := m.RegionNs(r.Work(size), m.Cores)
			if pred, ok := th.PredictDurationUntil(end, 8); ok && actual > 0 {
				errPct := (pred.ExpectedNs - float64(actual)) / float64(actual) * 100
				if errPct < 0 {
					errPct = -errPct
				}
				a := byRegion[r.Name]
				if a == nil {
					a = &agg{}
					byRegion[r.Name] = a
				}
				a.n++
				a.sum += errPct
				if errPct > a.worst {
					a.worst = errPct
				}
			}
			vnow += actual
			th.Submit(end)
		}
		vnow += 2_000
	}
	var rows []ExtDurationRow
	for _, r := range apps.LuleshRegions() {
		a := byRegion[r.Name]
		if a == nil || a.n == 0 {
			continue
		}
		rows = append(rows, ExtDurationRow{
			Region: r.Name, Samples: a.n,
			MeanErrPct: a.sum / float64(a.n), WorstErrPct: a.worst,
		})
	}
	return rows, nil
}

// WriteExtDuration renders the duration-accuracy extension.
func WriteExtDuration(w io.Writer, size int64, rows []ExtDurationRow) error {
	rw := &reportWriter{w: w}
	rw.printf("Extension: duration-prediction accuracy per LULESH region (s=%d, pudding)\n", size)
	t := &table{header: []string{"Region", "samples", "mean |err|", "worst |err|"}}
	var worstMean float64
	for _, r := range rows {
		t.add(r.Region,
			fmt.Sprintf("%d", r.Samples),
			fmt.Sprintf("%5.1f%%", r.MeanErrPct),
			fmt.Sprintf("%5.1f%%", r.WorstErrPct))
		if r.MeanErrPct > worstMean {
			worstMean = r.MeanErrPct
		}
	}
	t.write(rw)
	rw.printf("worst per-region mean error: %.1f%%\n", worstMean)
	return rw.err
}
