package ompsim

import (
	"sync"

	"repro/pythia"
)

// This file adds the remaining OpenMP constructs the paper's runtime
// intercepts (GOMP_critical_start / GOMP_critical_end) and the loop
// machinery real applications use: explicit schedules and reductions.

// Schedule selects how ParallelForSched distributes iterations.
type Schedule int

// Loop schedules.
const (
	// ScheduleStatic splits the range into one contiguous block per thread.
	ScheduleStatic Schedule = iota
	// ScheduleDynamic hands out fixed-size chunks on demand.
	ScheduleDynamic
	// ScheduleGuided hands out exponentially shrinking chunks.
	ScheduleGuided
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	default:
		return "schedule?"
	}
}

// Critical executes body inside a named critical section, submitting the
// GOMP_critical_start / GOMP_critical_end events the paper's OpenMP runtime
// intercepts. It may be called from inside parallel-region bodies.
func (rt *Runtime) Critical(name string, body func()) {
	instrumented := rt.cfg.Oracle != nil
	if instrumented {
		ids := rt.criticalEvents(name)
		rt.submitLocked(ids.begin)
		defer func() { rt.submitLocked(ids.end) }()
	}
	rt.critMu.Lock()
	defer rt.critMu.Unlock()
	if body != nil {
		body()
	}
}

// criticalEvents interns the begin/end events of a critical section.
func (rt *Runtime) criticalEvents(name string) regionIDs {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	key := "critical." + name
	if ids, ok := rt.ids[key]; ok {
		return ids
	}
	o := rt.cfg.Oracle
	ids := regionIDs{
		begin: o.Intern("GOMP_critical_start." + name),
		end:   o.Intern("GOMP_critical_end." + name),
	}
	rt.ids[key] = ids
	return ids
}

// submitLocked serialises oracle submissions from worker threads: unlike
// region begin/end (master thread only), critical sections run on any team
// member. Workers are quiescent when the master submits region events, so
// only worker-vs-worker submissions need the lock. All of a runtime's events
// land in one per-runtime stream, matching the paper's per-thread grammar
// keyed by the master.
func (rt *Runtime) submitLocked(id pythia.ID) {
	rt.oracleMu.Lock()
	rt.th.SubmitAt(id, rt.Now())
	rt.oracleMu.Unlock()
}

// ParallelForSched runs a loop of n iterations under an explicit OpenMP
// schedule. Static scheduling behaves like ParallelFor; dynamic and guided
// use a shared cursor, which exercises genuinely concurrent chunk handout in
// real mode.
func (rt *Runtime) ParallelForSched(name string, sched Schedule, chunk, n int, workPerIter int64, body func(i int)) {
	if chunk < 1 {
		chunk = 1
	}
	if body == nil {
		rt.Parallel(name, int64(n)*workPerIter, nil)
		return
	}
	switch sched {
	case ScheduleStatic:
		rt.ParallelFor(name, n, workPerIter, body)
	case ScheduleDynamic:
		var cursor int64
		var mu sync.Mutex
		rt.Parallel(name, int64(n)*workPerIter, func(tid, nthreads int) {
			for {
				mu.Lock()
				lo := int(cursor)
				cursor += int64(chunk)
				mu.Unlock()
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		})
	case ScheduleGuided:
		var cursor int
		var mu sync.Mutex
		rt.Parallel(name, int64(n)*workPerIter, func(tid, nthreads int) {
			for {
				mu.Lock()
				remaining := n - cursor
				if remaining <= 0 {
					mu.Unlock()
					return
				}
				size := remaining / (2 * nthreads)
				if size < chunk {
					size = chunk
				}
				if size > remaining {
					size = remaining
				}
				lo := cursor
				cursor += size
				mu.Unlock()
				for i := lo; i < lo+size; i++ {
					body(i)
				}
			}
		})
	}
}

// ParallelReduce runs a parallel region whose threads each produce a partial
// value combined with combine (the OpenMP reduction clause). The initial
// accumulator is init.
func (rt *Runtime) ParallelReduce(name string, work int64, init float64,
	partial func(tid, nthreads int) float64, combine func(a, b float64) float64) float64 {

	acc := init
	var mu sync.Mutex
	rt.Parallel(name, work, func(tid, nthreads int) {
		v := partial(tid, nthreads)
		mu.Lock()
		acc = combine(acc, v)
		mu.Unlock()
	})
	return acc
}
