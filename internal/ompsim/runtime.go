package ompsim

import (
	"math/rand"
	"sync"
	"time"

	"repro/pythia"
)

// Threshold maps a predicted region duration to a thread count: regions
// predicted to last less than MaxNs run with Threads threads. The paper's
// modified GOMP uses exactly this ladder ("1 thread if D_est < t1, 4 threads
// if D_est < t4, …").
type Threshold struct {
	MaxNs   int64
	Threads int
}

// DefaultThresholds returns a ladder calibrated against the virtual machine
// models: regions cheaper than a few fork/join overheads get few threads.
func DefaultThresholds(maxThreads int) []Threshold {
	ladder := []Threshold{
		{MaxNs: 8_000, Threads: 1},
		{MaxNs: 30_000, Threads: 4},
		{MaxNs: 120_000, Threads: 8},
	}
	out := ladder[:0]
	for _, t := range ladder {
		if t.Threads < maxThreads {
			out = append(out, t)
		}
	}
	return out
}

// Config configures a Runtime.
type Config struct {
	// MaxThreads is the maximum (and default) thread count per region.
	MaxThreads int
	// Machine selects virtual mode when non-nil; otherwise regions execute
	// for real on a goroutine pool and time is wall time.
	Machine *MachineModel
	// DisableParking reverts to GOMP's default behaviour of destroying
	// spurious threads when the count shrinks (ablation; the paper parks).
	DisableParking bool
	// Oracle attaches Pythia (nil runs vanilla, un-instrumented).
	Oracle *pythia.Oracle
	// ThreadID keys the oracle thread handle. Hybrid MPI+OpenMP ranks set
	// it to their MPI rank so that a rank's OpenMP region events interleave
	// into the same per-thread grammar as its MPI events, as in the paper.
	ThreadID int32
	// Adaptive asks the oracle for the predicted region duration and picks
	// the thread count from Thresholds. Requires a predicting Oracle.
	Adaptive bool
	// Thresholds overrides DefaultThresholds when non-empty.
	Thresholds []Threshold
	// PredictHorizon bounds the look-ahead of duration queries (default 8).
	PredictHorizon int
	// ErrorRate injects a random unexpected event before each region with
	// this probability (the resilience experiment of section III-E).
	ErrorRate float64
	// Seed seeds the error-injection generator.
	Seed int64
}

// Stats summarises a run.
type Stats struct {
	// Regions is the number of parallel regions executed.
	Regions int64
	// ThreadsSum accumulates the thread count chosen per region
	// (ThreadsSum/Regions is the mean degree of parallelism).
	ThreadsSum int64
	// Predictions and PredictionMisses count adaptive oracle queries and
	// the ones that produced no usable answer.
	Predictions      int64
	PredictionMisses int64
	// SpawnedWorkers is how many worker threads were ever created (real
	// mode) or modelled (virtual mode).
	SpawnedWorkers int64
	// InjectedErrors counts noise events submitted (section III-E).
	InjectedErrors int64
}

// Runtime is one OpenMP-like runtime instance driven by a single master
// goroutine (regions themselves may fan out to workers).
type Runtime struct {
	cfg        Config
	machine    *MachineModel
	thresholds []Threshold

	vnow  int64     // virtual clock (virtual mode)
	epoch time.Time // real-mode epoch

	pool  *pool
	alive int // modelled live workers (virtual mode)

	th     *pythia.Thread
	ids    map[string]regionIDs
	forced int
	rng    *rand.Rand
	stat   Stats

	mu       sync.Mutex // protects ids (regions may be named dynamically)
	critMu   sync.Mutex // the critical-section lock
	oracleMu sync.Mutex // serialises event submission from team members
}

// regionIDs caches the interned begin/end events of one region.
type regionIDs struct {
	begin pythia.ID
	end   pythia.ID
}

// New creates a runtime. Close must be called to release pool workers in
// real mode.
func New(cfg Config) *Runtime {
	if cfg.MaxThreads < 1 {
		cfg.MaxThreads = 1
	}
	if cfg.PredictHorizon <= 0 {
		cfg.PredictHorizon = 8
	}
	rt := &Runtime{
		cfg:        cfg,
		machine:    cfg.Machine,
		thresholds: cfg.Thresholds,
		epoch:      time.Now(),
		pool:       newPool(!cfg.DisableParking),
		ids:        make(map[string]regionIDs),
		rng:        rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	if len(rt.thresholds) == 0 {
		if cfg.Machine != nil {
			rt.thresholds = ThresholdsFromModel(*cfg.Machine, cfg.MaxThreads)
		} else {
			rt.thresholds = DefaultThresholds(cfg.MaxThreads)
		}
	}
	if cfg.Oracle != nil {
		rt.th = cfg.Oracle.Thread(cfg.ThreadID)
	}
	return rt
}

// Close releases pool workers.
func (rt *Runtime) Close() {
	rt.stat.SpawnedWorkers = int64(rt.pool.spawnedWorkers())
	if rt.machine != nil {
		rt.stat.SpawnedWorkers = int64(rt.alive)
	}
	rt.pool.close()
}

// Stats returns run statistics.
func (rt *Runtime) Stats() Stats {
	s := rt.stat
	if rt.machine != nil {
		s.SpawnedWorkers = int64(rt.alive)
	} else {
		s.SpawnedWorkers = int64(rt.pool.spawnedWorkers())
	}
	return s
}

// Now returns nanoseconds since the start of the run on the runtime's clock
// (virtual in virtual mode, wall otherwise).
func (rt *Runtime) Now() int64 {
	if rt.machine != nil {
		return rt.vnow
	}
	return int64(time.Since(rt.epoch))
}

// MaxThreads returns the configured thread-count ceiling.
func (rt *Runtime) MaxThreads() int { return rt.cfg.MaxThreads }

// SetNumThreads pins the team size of subsequent regions, like
// omp_set_num_threads (clamped to MaxThreads). Zero restores the default
// policy (maximum threads, or the adaptive choice when enabled).
func (rt *Runtime) SetNumThreads(n int) { rt.forced = n }

// regionEvents interns (once) the begin/end events of a region.
func (rt *Runtime) regionEvents(name string) regionIDs {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if ids, ok := rt.ids[name]; ok {
		return ids
	}
	o := rt.cfg.Oracle
	ids := regionIDs{
		begin: o.Intern("GOMP_parallel_start." + name),
		end:   o.Intern("GOMP_parallel_end." + name),
	}
	rt.ids[name] = ids
	return ids
}

// chooseThreads implements the adaptive policy: predict how long the region
// will take (time until its end event) and walk the threshold ladder. When
// the oracle has no usable prediction the runtime falls back to the maximum,
// exactly like the heuristic it replaces.
func (rt *Runtime) chooseThreads(ids regionIDs) int {
	rt.stat.Predictions++
	pred, ok := rt.th.PredictDurationUntil(ids.end, rt.cfg.PredictHorizon)
	if !ok || pred.ExpectedNs <= 0 {
		rt.stat.PredictionMisses++
		return rt.cfg.MaxThreads
	}
	for _, th := range rt.thresholds {
		if int64(pred.ExpectedNs) < th.MaxNs {
			if th.Threads < rt.cfg.MaxThreads {
				return th.Threads
			}
			return rt.cfg.MaxThreads
		}
	}
	return rt.cfg.MaxThreads
}

// Parallel executes one parallel region. name identifies the region (the
// paper uses the outlined function pointer); work is the region's total work
// in abstract units (used by the virtual cost model); body, when non-nil,
// is executed as tid 0..n-1 of an n-thread team.
func (rt *Runtime) Parallel(name string, work int64, body func(tid, nthreads int)) {
	threads := rt.cfg.MaxThreads
	var ids regionIDs
	instrumented := rt.cfg.Oracle != nil
	if instrumented {
		ids = rt.regionEvents(name)
		rt.th.SubmitAt(ids.begin, rt.Now())
		// Section III-E resilience experiment: randomly submit an event
		// that never occurred in the reference execution. Arriving between
		// the region-begin notification and the prediction query, it leaves
		// the oracle without an answer and forces the runtime back onto its
		// default heuristic (maximum threads) for this region.
		if rt.cfg.ErrorRate > 0 && rt.rng.Float64() < rt.cfg.ErrorRate {
			rt.th.SubmitAt(rt.cfg.Oracle.Intern("noise", int64(rt.rng.Intn(1<<30))), rt.Now())
			rt.stat.InjectedErrors++
		}
		if rt.cfg.Adaptive {
			threads = rt.chooseThreads(ids)
		}
	}
	if rt.forced > 0 {
		threads = rt.forced
		if threads > rt.cfg.MaxThreads {
			threads = rt.cfg.MaxThreads
		}
	}

	rt.stat.Regions++
	rt.stat.ThreadsSum += int64(threads)

	if rt.machine != nil {
		rt.runVirtual(work, threads, body)
	} else {
		rt.pool.run(orNop(body), threads)
	}

	if instrumented {
		rt.th.SubmitAt(ids.end, rt.Now())
	}
}

// runVirtual charges the cost model and (optionally) executes the body
// sequentially for application correctness.
func (rt *Runtime) runVirtual(work int64, threads int, body func(tid, nthreads int)) {
	need := threads - 1
	if need > rt.alive {
		rt.vnow += int64(need-rt.alive) * rt.machine.SpawnPerThreadNs
		rt.alive = need
	} else if rt.cfg.DisableParking && need < rt.alive {
		// GOMP's default destroys spurious threads; they will have to be
		// re-created (and re-paid for) when the count grows again.
		rt.alive = need
	}
	rt.vnow += rt.machine.RegionNs(work, threads)
	if body != nil {
		for tid := 0; tid < threads; tid++ {
			body(tid, threads)
		}
	}
}

// Sequential accounts for single-threaded work between regions: work units
// on the virtual clock, or simply running body in real mode.
func (rt *Runtime) Sequential(work int64, body func()) {
	if rt.machine != nil {
		rt.vnow += rt.machine.SequentialNs(work)
	}
	if body != nil {
		body()
	}
}

// ParallelFor runs a canonical statically-chunked loop of n iterations as a
// parallel region; workPerIter feeds the cost model.
func (rt *Runtime) ParallelFor(name string, n int, workPerIter int64, body func(i int)) {
	var wrapped func(tid, nthreads int)
	if body != nil {
		wrapped = func(tid, nthreads int) {
			lo := n * tid / nthreads
			hi := n * (tid + 1) / nthreads
			for i := lo; i < hi; i++ {
				body(i)
			}
		}
	}
	rt.Parallel(name, int64(n)*workPerIter, wrapped)
}

func orNop(body func(tid, nthreads int)) func(tid, nthreads int) {
	if body != nil {
		return body
	}
	return func(int, int) {}
}
