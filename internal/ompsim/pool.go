package ompsim

import "sync"

// task is one region execution request for a worker: run body(tid, nthreads)
// and signal done.
type task struct {
	body     func(tid, nthreads int)
	tid      int
	nthreads int
	done     *sync.WaitGroup
}

// pool is the real-mode worker pool. Workers are goroutines parked on their
// task channel — the analogue of the paper's GOMP modification that makes
// spurious threads "wait until they are needed again" instead of being
// destroyed when the thread count shrinks.
type pool struct {
	mu      sync.Mutex
	workers []chan task
	parking bool
	spawned int // total workers ever created (ablation metric)
}

// newPool creates a pool. With parking enabled workers persist across
// regions; without it they are torn down after each region (spawn-per-region
// ablation).
func newPool(parking bool) *pool {
	return &pool{parking: parking}
}

// run executes body on nthreads logical threads (tid 0 runs inline on the
// caller) and blocks until all complete.
func (p *pool) run(body func(tid, nthreads int), nthreads int) {
	if nthreads <= 1 {
		body(0, 1)
		return
	}
	var wg sync.WaitGroup
	wg.Add(nthreads - 1)
	if p.parking {
		p.mu.Lock()
		for len(p.workers) < nthreads-1 {
			ch := make(chan task)
			p.workers = append(p.workers, ch)
			p.spawned++
			go worker(ch)
		}
		ws := p.workers[:nthreads-1]
		p.mu.Unlock()
		for i, ch := range ws {
			ch <- task{body: body, tid: i + 1, nthreads: nthreads, done: &wg}
		}
	} else {
		p.mu.Lock()
		p.spawned += nthreads - 1
		p.mu.Unlock()
		for i := 1; i < nthreads; i++ {
			go func(tid int) {
				defer wg.Done()
				body(tid, nthreads)
			}(i)
		}
	}
	body(0, nthreads)
	wg.Wait()
}

// worker is a parked pool thread: it sleeps on its channel between regions.
func worker(ch chan task) {
	for t := range ch {
		t.body(t.tid, t.nthreads)
		t.done.Done()
	}
}

// close releases all parked workers.
func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ch := range p.workers {
		close(ch)
	}
	p.workers = nil
}

// spawnedWorkers reports how many worker goroutines were ever created.
func (p *pool) spawnedWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spawned
}
