package ompsim

import "sync"

// Team is the view a region body gets of its thread team when using
// ParallelTeam: thread id, team size, an in-region barrier, and single
// (execute-once) sections — the remaining OpenMP constructs real region
// bodies use.
type Team struct {
	TID, N int
	rt     *Runtime
	bar    *teamBarrier
	single *singleState
}

// Barrier blocks until every team member reaches it. In virtual mode,
// bodies run sequentially, so the barrier is (correctly) a no-op.
func (t *Team) Barrier() {
	if t.bar != nil {
		t.bar.await()
	}
}

// Single executes body exactly once per encounter across the team (the
// OpenMP `single` construct, without the implicit barrier). In real mode
// the first thread to arrive wins; in virtual sequential mode thread 0
// executes it.
func (t *Team) Single(body func()) {
	if body == nil {
		return
	}
	if t.single == nil { // virtual mode: sequential execution
		if t.TID == 0 {
			body()
		}
		return
	}
	if t.single.claim(t.TID) {
		body()
	}
}

// Critical enters the named critical section (see Runtime.Critical).
func (t *Team) Critical(name string, body func()) { t.rt.Critical(name, body) }

// teamBarrier is a reusable sense-reversing barrier for one region instance.
type teamBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     int
}

func newTeamBarrier(n int) *teamBarrier {
	b := &teamBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *teamBarrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// singleState arbitrates one `single` encounter sequence across a team.
type singleState struct {
	mu      sync.Mutex
	claimed map[int]int // encounter index per thread
	winner  map[int]int // encounter index -> winning tid
}

func newSingleState() *singleState {
	return &singleState{claimed: make(map[int]int), winner: make(map[int]int)}
}

// claim returns true when tid is the first of the team to reach this
// encounter (threads count their own encounters, so every thread must reach
// every Single, as OpenMP requires).
func (s *singleState) claim(tid int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := s.claimed[tid]
	s.claimed[tid] = enc + 1
	if _, done := s.winner[enc]; done {
		return false
	}
	s.winner[enc] = tid
	return true
}

// ParallelTeam is Parallel with the richer Team view: bodies may use
// Team.Barrier, Team.Single and Team.Critical. In virtual mode the body runs
// sequentially per thread id (barriers are no-ops), in real mode it runs on
// the worker pool with a live barrier.
func (rt *Runtime) ParallelTeam(name string, work int64, body func(t *Team)) {
	if body == nil {
		rt.Parallel(name, work, nil)
		return
	}
	if rt.machine != nil {
		rt.Parallel(name, work, func(tid, n int) {
			body(&Team{TID: tid, N: n, rt: rt})
		})
		return
	}
	var bar *teamBarrier
	var single *singleState
	var once sync.Once
	rt.Parallel(name, work, func(tid, n int) {
		once.Do(func() {
			bar = newTeamBarrier(n)
			single = newSingleState()
		})
		body(&Team{TID: tid, N: n, rt: rt, bar: bar, single: single})
	})
}
