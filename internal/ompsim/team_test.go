package ompsim

import (
	"sync/atomic"
	"testing"
)

func TestTeamBarrierPhases(t *testing.T) {
	rt := New(Config{MaxThreads: 8})
	defer rt.Close()
	var phase atomic.Int64
	var violations atomic.Int64
	rt.ParallelTeam("r", 0, func(tm *Team) {
		for p := 0; p < 20; p++ {
			phase.Add(1)
			tm.Barrier()
			// After the barrier, every team member has incremented.
			if got := phase.Load(); got != int64((p+1)*tm.N) {
				violations.Add(1)
			}
			tm.Barrier()
		}
	})
	if violations.Load() != 0 {
		t.Fatalf("%d barrier phase violations", violations.Load())
	}
}

func TestTeamSingleExecutesOncePerEncounter(t *testing.T) {
	rt := New(Config{MaxThreads: 6})
	defer rt.Close()
	var counts [10]atomic.Int64
	rt.ParallelTeam("r", 0, func(tm *Team) {
		for enc := 0; enc < 10; enc++ {
			e := enc
			tm.Single(func() { counts[e].Add(1) })
			tm.Barrier()
		}
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("single %d executed %d times", i, got)
		}
	}
}

func TestTeamVirtualModeSequential(t *testing.T) {
	m := Pudding()
	rt := New(Config{MaxThreads: 4, Machine: &m})
	defer rt.Close()
	var order []int
	singles := 0
	rt.ParallelTeam("r", 1000, func(tm *Team) {
		order = append(order, tm.TID)
		tm.Barrier() // no-op in virtual mode
		tm.Single(func() { singles++ })
	})
	if len(order) != 4 {
		t.Fatalf("ran %d bodies, want 4", len(order))
	}
	for i, tid := range order {
		if tid != i {
			t.Fatalf("virtual execution order %v, want sequential", order)
		}
	}
	if singles != 1 {
		t.Fatalf("single executed %d times", singles)
	}
	if rt.Now() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestTeamCriticalFromMembers(t *testing.T) {
	rt := New(Config{MaxThreads: 8})
	defer rt.Close()
	counter := 0
	rt.ParallelTeam("r", 0, func(tm *Team) {
		for i := 0; i < 200; i++ {
			tm.Critical("c", func() { counter++ })
		}
	})
	if counter != 8*200 {
		t.Fatalf("counter = %d, want 1600", counter)
	}
}

func TestTeamNilBody(t *testing.T) {
	rt := New(Config{MaxThreads: 2})
	defer rt.Close()
	rt.ParallelTeam("r", 10, nil) // must not panic
	tm := &Team{TID: 0, N: 1}
	tm.Single(nil) // must not panic
}
