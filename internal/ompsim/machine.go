// Package ompsim is a parallel-region runtime with the decision surface of
// GNU OpenMP (GOMP): parallel regions executed by a pool of worker threads,
// where the runtime chooses how many threads to devote to each region. It
// reproduces the paper's section III-D experiment: a modified GOMP that asks
// Pythia for the predicted duration of each parallel region and picks the
// thread count accordingly, instead of always using the maximum.
//
// The runtime has two execution modes:
//
//   - Real mode: regions run on a pool of parked goroutines and time is wall
//     time. This shows real recording overhead but cannot exhibit parallel
//     speedup on a single-core host.
//
//   - Virtual mode: regions are charged time on a deterministic
//     discrete-event cost model of a C-core machine (fork cost grows with
//     the thread count, work shrinks as W/min(T,C), join cost grows with the
//     thread count). This reproduces the speedup-vs-synchronisation
//     trade-off of the paper's Pudding (24-core) and Pixel (16-core)
//     machines on any host; see DESIGN.md for the substitution rationale.
package ompsim

// MachineModel is the virtual-clock cost model of a multicore machine.
// All costs are in nanoseconds; work is expressed in abstract units that
// cost WorkUnitNs each on one core.
type MachineModel struct {
	// Name labels the modelled machine in reports ("pudding", "pixel").
	Name string
	// Cores is the number of physical cores; threads beyond this count add
	// overhead but no speedup.
	Cores int
	// ForkBaseNs is the fixed cost of entering any parallel region.
	ForkBaseNs int64
	// ForkPerThreadNs is the per-woken-worker cost of starting a region.
	ForkPerThreadNs int64
	// JoinPerThreadNs is the per-thread cost of the closing barrier.
	JoinPerThreadNs int64
	// SchedulePerThreadNs is the per-participating-thread cost of work
	// distribution (chunk handout, shared cache-line traffic). It is what
	// makes small regions on many threads expensive, the effect the
	// paper's adaptive policy exploits.
	SchedulePerThreadNs int64
	// SpawnPerThreadNs is the cost of creating a brand-new worker thread.
	// With a parking pool (the paper's GOMP modification) it is paid once
	// per worker for the whole run; without parking it is paid again
	// whenever the thread count grows after having shrunk.
	SpawnPerThreadNs int64
	// WorkUnitNs is the single-core cost of one work unit.
	WorkUnitNs float64
	// SerialFraction is the fraction of a region's work that does not
	// parallelise (Amdahl), in [0,1).
	SerialFraction float64
}

// Pudding models the paper's 24-core Xeon Silver 4116 machine.
func Pudding() MachineModel {
	return MachineModel{
		Name:                "pudding",
		Cores:               24,
		ForkBaseNs:          800,
		ForkPerThreadNs:     70,
		JoinPerThreadNs:     60,
		SchedulePerThreadNs: 350,
		SpawnPerThreadNs:    12000,
		WorkUnitNs:          1.0,
		SerialFraction:      0.02,
	}
}

// Pixel models the paper's 16-core Xeon E5-2630 v3 machine.
func Pixel() MachineModel {
	return MachineModel{
		Name:                "pixel",
		Cores:               16,
		ForkBaseNs:          700,
		ForkPerThreadNs:     65,
		JoinPerThreadNs:     55,
		SchedulePerThreadNs: 330,
		SpawnPerThreadNs:    11000,
		WorkUnitNs:          1.15,
		SerialFraction:      0.02,
	}
}

// RegionNs returns the modelled duration of a parallel region of the given
// work executed by threads workers.
func (m MachineModel) RegionNs(work int64, threads int) int64 {
	if threads < 1 {
		threads = 1
	}
	eff := threads
	if eff > m.Cores {
		eff = m.Cores
	}
	serial := float64(work) * m.SerialFraction
	parallel := float64(work) * (1 - m.SerialFraction) / float64(eff)
	compute := (serial + parallel) * m.WorkUnitNs
	perThread := m.ForkPerThreadNs + m.JoinPerThreadNs + m.SchedulePerThreadNs
	overhead := m.ForkBaseNs + int64(threads)*perThread
	return overhead + int64(compute)
}

// SequentialNs returns the modelled duration of sequential work.
func (m MachineModel) SequentialNs(work int64) int64 {
	return int64(float64(work) * m.WorkUnitNs)
}

// BreakevenWork returns the work (in units) at which running a region on
// more threads stops being slower than on fewer: below the returned value,
// few wins; above it, many wins. RegionNs is affine in work, so the
// crossing is unique.
func (m MachineModel) BreakevenWork(few, many int) int64 {
	lo, hi := int64(0), int64(1)<<40
	for lo < hi {
		mid := (lo + hi) / 2
		if m.RegionNs(mid, few) <= m.RegionNs(mid, many) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ThresholdsFromModel derives the paper's t1 < t4 < t8 ladder from the cost
// model: a region whose predicted duration (as recorded at maxThreads) is
// below t_k is at least as fast on k threads as on the next wider option.
func ThresholdsFromModel(m MachineModel, maxThreads int) []Threshold {
	options := []int{1, 2, 4, 8, 12, 16}
	var ladder []Threshold
	prev := 0
	for _, opt := range options {
		if opt >= maxThreads {
			break
		}
		if opt <= prev {
			continue
		}
		prev = opt
		next := maxThreads
		for _, cand := range options {
			if cand > opt && cand < maxThreads {
				next = cand
				break
			}
		}
		w := m.BreakevenWork(opt, next)
		ladder = append(ladder, Threshold{MaxNs: m.RegionNs(w, maxThreads), Threads: opt})
	}
	return ladder
}
