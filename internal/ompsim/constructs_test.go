package ompsim

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/pythia"
)

func TestCriticalMutualExclusion(t *testing.T) {
	rt := New(Config{MaxThreads: 8})
	defer rt.Close()
	counter := 0 // intentionally unsynchronised; Critical must protect it
	rt.Parallel("r", 0, func(tid, n int) {
		for i := 0; i < 500; i++ {
			rt.Critical("counter", func() { counter++ })
		}
	})
	if counter != 8*500 {
		t.Fatalf("counter = %d, want %d (critical section not exclusive)", counter, 8*500)
	}
}

func TestCriticalEventsRecorded(t *testing.T) {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	rt := New(Config{MaxThreads: 1, Oracle: o})
	for i := 0; i < 10; i++ {
		rt.Parallel("step", 0, func(tid, n int) {
			rt.Critical("update", nil)
		})
	}
	rt.Close()
	ts, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, name := range ts.Events {
		if strings.HasPrefix(name, "GOMP_critical_") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("critical events interned = %d, want start+end", found)
	}
	// 10 regions x (begin, crit start, crit end, end) = 40 events.
	if n := ts.Threads[0].Grammar.EventCount; n != 40 {
		t.Fatalf("events = %d, want 40", n)
	}
}

func TestSchedulesCoverAllIterations(t *testing.T) {
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
		sched := sched
		t.Run(sched.String(), func(t *testing.T) {
			rt := New(Config{MaxThreads: 4})
			defer rt.Close()
			const n = 1000
			var hits [n]atomic.Int32
			rt.ParallelForSched("loop", sched, 7, n, 1, func(i int) {
				hits[i].Add(1)
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("%s: iteration %d executed %d times", sched, i, got)
				}
			}
		})
	}
}

func TestSchedulesVirtualMode(t *testing.T) {
	m := Pudding()
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
		rt := New(Config{MaxThreads: 8, Machine: &m})
		var sum atomic.Int64
		rt.ParallelForSched("loop", sched, 4, 100, 10, func(i int) {
			sum.Add(int64(i))
		})
		if sum.Load() != 4950 {
			t.Fatalf("%s: sum = %d", sched, sum.Load())
		}
		if rt.Now() <= 0 {
			t.Fatalf("%s: virtual clock did not advance", sched)
		}
		rt.Close()
	}
}

func TestParallelReduce(t *testing.T) {
	rt := New(Config{MaxThreads: 4})
	defer rt.Close()
	got := rt.ParallelReduce("dot", 100, 0,
		func(tid, nthreads int) float64 { return float64(tid) },
		func(a, b float64) float64 { return a + b })
	if got != 0+1+2+3 {
		t.Fatalf("reduce = %v, want 6", got)
	}
	max := rt.ParallelReduce("max", 100, -1,
		func(tid, nthreads int) float64 { return float64(tid * 10) },
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
	if max != 30 {
		t.Fatalf("max = %v, want 30", max)
	}
}

func TestScheduleString(t *testing.T) {
	if ScheduleStatic.String() != "static" || ScheduleDynamic.String() != "dynamic" ||
		ScheduleGuided.String() != "guided" {
		t.Fatal("Schedule.String broken")
	}
	if Schedule(9).String() == "" {
		t.Fatal("unknown schedule renders empty")
	}
}

func TestSetNumThreads(t *testing.T) {
	rt := New(Config{MaxThreads: 8})
	defer rt.Close()
	var team atomic.Int64
	rt.SetNumThreads(3)
	rt.Parallel("r", 0, func(tid, n int) { team.Store(int64(n)) })
	if team.Load() != 3 {
		t.Fatalf("team = %d, want 3", team.Load())
	}
	rt.SetNumThreads(99) // clamped
	rt.Parallel("r", 0, func(tid, n int) { team.Store(int64(n)) })
	if team.Load() != 8 {
		t.Fatalf("team = %d, want clamp to 8", team.Load())
	}
	rt.SetNumThreads(0) // restore default
	rt.Parallel("r", 0, func(tid, n int) { team.Store(int64(n)) })
	if team.Load() != 8 {
		t.Fatalf("team = %d, want 8", team.Load())
	}
}

// TestCriticalUnderRecordingParallel checks the worker-side submission path
// is race-free under -race with many threads hammering critical sections.
func TestCriticalUnderRecordingParallel(t *testing.T) {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	rt := New(Config{MaxThreads: 8, Oracle: o})
	rt.Parallel("storm", 0, func(tid, n int) {
		for i := 0; i < 50; i++ {
			rt.Critical("c", func() {})
		}
	})
	rt.Close()
	ts, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// begin + 8*50*2 critical events + end.
	if n := ts.Threads[0].Grammar.EventCount; n != 2+800 {
		t.Fatalf("events = %d, want 802", n)
	}
}
