package ompsim

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/pythia"
)

// small indirections so the real-clock test reads cleanly.
func timeNow() int64               { return time.Now().UnixNano() }
func pythiaRecord() *pythia.Oracle { return pythia.NewRecordOracle() }
func pythiaPredict(ts *pythia.TraceSet) (*pythia.Oracle, error) {
	return pythia.NewPredictOracle(ts, pythia.Config{})
}

// syntheticApp drives rt with a mix of small and large parallel regions, the
// shape the paper's LULESH exhibits (many small regions plus a few heavy
// ones per time step).
func syntheticApp(rt *Runtime, steps int) {
	for s := 0; s < steps; s++ {
		rt.Parallel("calcForces", 2_000_000, nil) // heavy: ~2ms single-core
		for k := 0; k < 5; k++ {
			rt.Parallel("smallFixup", 2_000, nil) // tiny: ~2µs single-core
		}
		rt.Parallel("applyConstraints", 60_000, nil)
		rt.Sequential(5_000, nil)
	}
}

func TestRealModeExecutesBody(t *testing.T) {
	rt := New(Config{MaxThreads: 4})
	defer rt.Close()
	var count atomic.Int64
	var maxSeen atomic.Int64
	rt.Parallel("r", 0, func(tid, n int) {
		count.Add(1)
		if int64(n) > maxSeen.Load() {
			maxSeen.Store(int64(n))
		}
	})
	if count.Load() != 4 || maxSeen.Load() != 4 {
		t.Fatalf("body ran %d times with team %d, want 4/4", count.Load(), maxSeen.Load())
	}
}

func TestParallelForCoversRange(t *testing.T) {
	rt := New(Config{MaxThreads: 3})
	defer rt.Close()
	seen := make([]atomic.Bool, 100)
	rt.ParallelFor("loop", 100, 1, func(i int) { seen[i].Store(true) })
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("iteration %d not executed", i)
		}
	}
}

func TestVirtualForCoversRangeSequentially(t *testing.T) {
	m := Pudding()
	rt := New(Config{MaxThreads: 8, Machine: &m})
	defer rt.Close()
	var hits [50]int
	rt.ParallelFor("loop", 50, 10, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
	if rt.Now() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestVirtualClockDeterministic(t *testing.T) {
	run := func() int64 {
		m := Pixel()
		rt := New(Config{MaxThreads: 16, Machine: &m})
		defer rt.Close()
		syntheticApp(rt, 20)
		return rt.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("virtual clock not deterministic: %d vs %d", a, b)
	}
}

func TestMachineModelShape(t *testing.T) {
	m := Pudding()
	small := int64(2_000)
	large := int64(2_000_000)
	// Small regions are faster on one thread than on 24.
	if m.RegionNs(small, 1) >= m.RegionNs(small, 24) {
		t.Fatalf("small region: 1 thread %d ns, 24 threads %d ns — overhead model broken",
			m.RegionNs(small, 1), m.RegionNs(small, 24))
	}
	// Large regions are faster on 24 threads than on one.
	if m.RegionNs(large, 24) >= m.RegionNs(large, 1) {
		t.Fatalf("large region: 24 threads %d ns, 1 thread %d ns — speedup model broken",
			m.RegionNs(large, 24), m.RegionNs(large, 1))
	}
	// Threads beyond the core count only add overhead.
	if m.RegionNs(large, 48) <= m.RegionNs(large, 24) {
		t.Fatal("oversubscription should not be faster")
	}
}

// TestAdaptiveBeatsVanilla is the heart of the paper's section III-D: record
// a reference execution with the maximum thread count, then re-run with
// Pythia-guided adaptive thread selection and check the virtual execution
// time drops, because the many small regions stop paying 24-thread fork/join
// overhead.
func TestAdaptiveBeatsVanilla(t *testing.T) {
	m := Pudding()
	const steps = 30

	// Vanilla run.
	vanilla := New(Config{MaxThreads: 24, Machine: &m})
	syntheticApp(vanilla, steps)
	vanillaNs := vanilla.Now()
	vanilla.Close()

	// Reference (recorded) run — paper's PYTHIA-RECORD, max threads. The
	// runtime supplies explicit virtual timestamps through SubmitAt, so the
	// recorded timing model is in virtual nanoseconds.
	rec := pythia.NewRecordOracle()
	recRT := New(Config{MaxThreads: 24, Machine: &m, Oracle: rec})
	syntheticApp(recRT, steps)
	recNs := recRT.Now()
	recRT.Close()
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Recording must not change the virtual duration at all.
	if recNs != vanillaNs {
		t.Fatalf("recording changed virtual time: %d vs %d", recNs, vanillaNs)
	}

	// Adaptive run under PYTHIA-PREDICT.
	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := New(Config{MaxThreads: 24, Machine: &m, Oracle: oracle, Adaptive: true})
	syntheticApp(adaptive, steps)
	adaptiveNs := adaptive.Now()
	st := adaptive.Stats()
	adaptive.Close()

	if st.Predictions == 0 {
		t.Fatal("adaptive runtime never queried the oracle")
	}
	if st.PredictionMisses > st.Predictions/4 {
		t.Fatalf("too many prediction misses: %+v", st)
	}
	if adaptiveNs >= vanillaNs {
		t.Fatalf("adaptive (%d ns) not faster than vanilla (%d ns)", adaptiveNs, vanillaNs)
	}
	improvement := 1 - float64(adaptiveNs)/float64(vanillaNs)
	t.Logf("vanilla %.2fms, adaptive %.2fms, improvement %.1f%%, mean threads %.1f",
		float64(vanillaNs)/1e6, float64(adaptiveNs)/1e6,
		improvement*100, float64(st.ThreadsSum)/float64(st.Regions))
	if improvement < 0.05 {
		t.Fatalf("improvement only %.1f%%, expected a clear win", improvement*100)
	}
}

// TestErrorInjectionDegrades reproduces the shape of Fig 14: with a high
// error rate, adaptive performance degrades towards vanilla because
// predictions fail and the runtime falls back to maximum threads.
func TestErrorInjectionDegrades(t *testing.T) {
	m := Pudding()
	const steps = 30

	record := func() *pythia.TraceSet {
		rec := pythia.NewRecordOracle()
		rt := New(Config{MaxThreads: 24, Machine: &m, Oracle: rec})
		syntheticApp(rt, steps)
		rt.Close()
		ts, err := rec.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	run := func(ts *pythia.TraceSet, errRate float64) int64 {
		oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rt := New(Config{MaxThreads: 24, Machine: &m, Oracle: oracle,
			Adaptive: true, ErrorRate: errRate, Seed: 7})
		syntheticApp(rt, steps)
		defer rt.Close()
		return rt.Now()
	}

	ts := record()
	clean := run(ts, 0)
	noisy := run(ts, 0.9)
	if noisy <= clean {
		t.Fatalf("90%% error rate (%d ns) not slower than clean (%d ns)", noisy, clean)
	}
}

func TestParkingAblation(t *testing.T) {
	// With adaptive thread counts oscillating, the non-parking runtime pays
	// thread re-spawn cost repeatedly in the virtual model.
	m := Pudding()
	drive := func(disableParking bool) int64 {
		rt := New(Config{MaxThreads: 24, Machine: &m, DisableParking: disableParking})
		defer rt.Close()
		for i := 0; i < 100; i++ {
			// Alternate between wide and narrow regions, as an adaptive
			// policy would.
			rt.runVirtual(50_000, 24, nil)
			rt.runVirtual(1_000, 1, nil)
		}
		return rt.Now()
	}
	parked := drive(false)
	unparked := drive(true)
	if unparked <= parked {
		t.Fatalf("non-parking (%d ns) should be slower than parking (%d ns)", unparked, parked)
	}
}

func TestDefaultThresholdsRespectMax(t *testing.T) {
	for _, max := range []int{1, 2, 4, 8, 24} {
		for _, th := range DefaultThresholds(max) {
			if th.Threads >= max {
				t.Fatalf("threshold %+v exceeds max %d", th, max)
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	rt := New(Config{MaxThreads: 2})
	defer rt.Close()
	for i := 0; i < 10; i++ {
		rt.Parallel("r", 0, nil)
	}
	st := rt.Stats()
	if st.Regions != 10 || st.ThreadsSum != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAdaptiveRealClock exercises the full adaptive loop on the wall clock:
// record a run of small regions, then re-run adaptively. On any host, the
// adaptive run must not be substantially slower than vanilla (it drops
// worker dispatch for overhead-dominated regions); exact speedups are host
// dependent, so the assertion is lenient.
func TestAdaptiveRealClock(t *testing.T) {
	app := func(rt *Runtime) {
		for i := 0; i < 200; i++ {
			rt.Parallel("tiny", 0, func(tid, n int) {})
		}
	}
	vanilla := New(Config{MaxThreads: 8})
	start := timeNow()
	app(vanilla)
	vanillaNs := timeNow() - start
	vanilla.Close()

	rec := pythiaRecord()
	recRT := New(Config{MaxThreads: 8, Oracle: rec})
	app(recRT)
	recRT.Close()
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	oracle, err := pythiaPredict(ts)
	if err != nil {
		t.Fatal(err)
	}
	ad := New(Config{MaxThreads: 8, Oracle: oracle, Adaptive: true,
		Thresholds: []Threshold{{MaxNs: 1_000_000, Threads: 1}}})
	start = timeNow()
	app(ad)
	adNs := timeNow() - start
	st := ad.Stats()
	ad.Close()

	if st.Predictions == 0 {
		t.Fatal("no predictions in adaptive real-clock run")
	}
	if st.Regions != 200 {
		t.Fatalf("regions = %d", st.Regions)
	}
	// Mean threads must have dropped for the tiny regions.
	if mean := float64(st.ThreadsSum) / float64(st.Regions); mean > 4 {
		t.Fatalf("adaptive mean threads %.1f, expected a drop below max 8", mean)
	}
	if adNs > vanillaNs*3 {
		t.Fatalf("adaptive run pathologically slower: %v vs %v", adNs, vanillaNs)
	}
}
