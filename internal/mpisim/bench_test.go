package mpisim

import "testing"

// BenchmarkPingPong measures in-process point-to-point latency — the
// substrate's analogue of an MPI micro-benchmark.
func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2)
	done := make(chan struct{})
	go func() {
		r := w.Rank(1)
		for {
			msg := r.Recv(0, 0)
			if msg[0] < 0 {
				close(done)
				return
			}
			r.Send(0, 1, msg)
		}
	}()
	r0 := w.Rank(0)
	payload := []float64{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r0.Send(1, 0, payload)
		r0.Recv(1, 1)
	}
	b.StopTimer()
	r0.Send(1, 0, []float64{-1})
	<-done
}

// BenchmarkAllreduce measures the collective core.
func BenchmarkAllreduce(b *testing.B) {
	const ranks = 8
	w := NewWorld(ranks)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(m MPI) {
		v := []float64{float64(m.Rank())}
		for i := 0; i < b.N; i++ {
			m.Allreduce(OpSum, v)
		}
	})
}

// BenchmarkInterposedSend measures the instrumentation overhead per call.
func BenchmarkInterposedSend(b *testing.B) {
	o := benchRecordOracle()
	w := NewWorld(2)
	ip := NewInterposer(w.Rank(0), o)
	sink := w.Rank(1)
	go func() {
		for {
			if sink.Recv(0, 0)[0] < 0 {
				return
			}
		}
	}()
	payload := []float64{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip.Send(1, 0, payload)
	}
	b.StopTimer()
	ip.Send(1, 0, []float64{-1})
}
