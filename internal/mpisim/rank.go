package mpisim

// MPI is the calling surface applications are written against. Both the
// plain runtime (*Rank) and the Pythia interposer implement it, so the same
// application code runs vanilla, recorded, or predicted.
type MPI interface {
	// Rank returns this endpoint's rank in the world.
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int

	// Send delivers data to dest with the given tag (eager, non-blocking in
	// this runtime, like a buffered MPI_Send).
	Send(dest, tag int, data []float64)
	// Recv blocks until a message matching (src, tag) arrives and returns
	// its payload. src may be AnySource and tag may be AnyTag.
	Recv(src, tag int) []float64
	// Isend starts a non-blocking send and returns its request.
	Isend(dest, tag int, data []float64) *Request
	// Irecv posts a non-blocking receive and returns its request; the
	// payload is available from Wait.
	Irecv(src, tag int) *Request
	// Wait blocks until the request completes, returning the received
	// payload for receive requests (nil for sends).
	Wait(r *Request) []float64
	// Waitall waits for every request, in order.
	Waitall(rs []*Request)

	// Barrier synchronises all ranks.
	Barrier()
	// Bcast distributes root's data to every rank.
	Bcast(root int, data []float64) []float64
	// Reduce folds every rank's contribution with op; only root receives
	// the result (others get nil).
	Reduce(root int, op Op, data []float64) []float64
	// Allreduce folds every rank's contribution with op and gives the
	// result to every rank.
	Allreduce(op Op, data []float64) []float64
	// Alltoall sends send[i] to rank i and returns what every rank sent to
	// this one, indexed by source.
	Alltoall(send [][]float64) [][]float64
	// Allgather collects every rank's contribution, indexed by rank.
	Allgather(data []float64) [][]float64
	// Gather collects contributions at root (others get nil).
	Gather(root int, data []float64) [][]float64

	// Sendrecv performs a combined send and receive.
	Sendrecv(dest, sendTag int, data []float64, src, recvTag int) []float64
	// Scatter distributes parts[i] from root to rank i.
	Scatter(root int, parts [][]float64) []float64
	// ReduceScatter folds contributions (one value per rank) and hands each
	// rank its own element.
	ReduceScatter(op Op, data []float64) float64
	// Scan returns the inclusive prefix reduction over ranks 0..Rank().
	Scan(op Op, data []float64) []float64
}

// Request is a non-blocking operation handle.
type Request struct {
	recv bool
	src  int
	tag  int
	done bool
	data []float64
	rank *Rank
}

// Rank is the plain (un-instrumented) endpoint of one rank.
type Rank struct {
	world *World
	rank  int
}

var _ MPI = (*Rank)(nil)

// Rank returns this endpoint's rank.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// Send implements MPI.
func (r *Rank) Send(dest, tag int, data []float64) {
	cp := append([]float64(nil), data...)
	r.world.boxes[dest].put(message{src: r.rank, tag: tag, data: cp})
}

// Recv implements MPI.
func (r *Rank) Recv(src, tag int) []float64 {
	return r.world.boxes[r.rank].take(src, tag).data
}

// Isend implements MPI. Sends are eager, so the request completes
// immediately.
func (r *Rank) Isend(dest, tag int, data []float64) *Request {
	r.Send(dest, tag, data)
	return &Request{done: true, rank: r}
}

// Irecv implements MPI. Matching is deferred to Wait, which preserves MPI's
// per-(source, tag) ordering because the mailbox is matched in arrival
// order.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{recv: true, src: src, tag: tag, rank: r}
}

// Wait implements MPI.
func (r *Rank) Wait(req *Request) []float64 {
	if req.done {
		return req.data
	}
	req.done = true
	if req.recv {
		req.data = r.Recv(req.src, req.tag)
	}
	return req.data
}

// Waitall implements MPI.
func (r *Rank) Waitall(rs []*Request) {
	for _, req := range rs {
		r.Wait(req)
	}
}

// Barrier implements MPI.
func (r *Rank) Barrier() {
	r.world.coll.allgather(r.rank, nil)
}

// Bcast implements MPI.
func (r *Rank) Bcast(root int, data []float64) []float64 {
	all := r.world.coll.allgather(r.rank, data)
	return append([]float64(nil), all[root]...)
}

// Reduce implements MPI.
func (r *Rank) Reduce(root int, op Op, data []float64) []float64 {
	all := r.world.coll.allgather(r.rank, data)
	if r.rank != root {
		return nil
	}
	return fold(op, all)
}

// Allreduce implements MPI.
func (r *Rank) Allreduce(op Op, data []float64) []float64 {
	all := r.world.coll.allgather(r.rank, data)
	return fold(op, all)
}

// Alltoall implements MPI.
func (r *Rank) Alltoall(send [][]float64) [][]float64 {
	if len(send) != r.world.size {
		panic("mpisim: Alltoall send buffer must have one slice per rank")
	}
	// Flatten contributions as concatenation with per-rank lengths; use p2p
	// instead: send to each peer, then receive from each peer.
	const alltoallTag = internalTagBase // reserved internal tag space
	for d := 0; d < r.world.size; d++ {
		if d == r.rank {
			continue
		}
		r.Send(d, alltoallTag, send[d])
	}
	out := make([][]float64, r.world.size)
	out[r.rank] = append([]float64(nil), send[r.rank]...)
	for s := 0; s < r.world.size; s++ {
		if s == r.rank {
			continue
		}
		m := r.world.boxes[r.rank].take(s, alltoallTag)
		out[s] = m.data
	}
	return out
}

// Allgather implements MPI.
func (r *Rank) Allgather(data []float64) [][]float64 {
	all := r.world.coll.allgather(r.rank, data)
	out := make([][]float64, len(all))
	for i, d := range all {
		out[i] = append([]float64(nil), d...)
	}
	return out
}

// Gather implements MPI.
func (r *Rank) Gather(root int, data []float64) [][]float64 {
	all := r.world.coll.allgather(r.rank, data)
	if r.rank != root {
		return nil
	}
	out := make([][]float64, len(all))
	for i, d := range all {
		out[i] = append([]float64(nil), d...)
	}
	return out
}

// fold reduces contributions element-wise with op. Ranks may contribute
// slices of equal length; nil contributions are ignored.
func fold(op Op, all [][]float64) []float64 {
	var out []float64
	for _, d := range all {
		if d == nil {
			continue
		}
		if out == nil {
			out = append([]float64(nil), d...)
			continue
		}
		for i := range out {
			if i < len(d) {
				out[i] = op.apply(out[i], d[i])
			}
		}
	}
	return out
}
