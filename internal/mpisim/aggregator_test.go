package mpisim

import (
	"sync"
	"testing"

	"repro/pythia"
)

// burstProgram sends a burst of 5 messages to the right neighbour each
// iteration, then receives its own burst — the pattern the paper's
// aggregation optimisation targets.
func burstProgram(iters int) func(m MPI) {
	return func(m MPI) {
		right := (m.Rank() + 1) % m.Size()
		left := (m.Rank() + m.Size() - 1) % m.Size()
		for i := 0; i < iters; i++ {
			for k := 0; k < 5; k++ {
				m.Send(right, 7, []float64{float64(i), float64(k)})
			}
			for k := 0; k < 5; k++ {
				got := m.Recv(left, 7)
				if got[0] != float64(i) || got[1] != float64(k) {
					panic("payload corrupted or reordered")
				}
			}
		}
		m.Barrier()
	}
}

func TestAggregatorCorrectness(t *testing.T) {
	// Record the reference first.
	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	w := NewWorld(4)
	w.RunInterposed(func(m MPI) MPI { return NewAggregator(m, rec) }, burstProgram(20))
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Replay with prediction-driven aggregation; payload checks are inside
	// the program.
	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var aggs []*Aggregator
	w2 := NewWorld(4)
	w2.RunInterposed(func(m MPI) MPI {
		a := NewAggregator(m, oracle)
		mu.Lock()
		aggs = append(aggs, a)
		mu.Unlock()
		return a
	}, burstProgram(20))

	var payloads, messages int64
	for _, a := range aggs {
		payloads += a.PayloadsSent
		messages += a.MessagesSent
	}
	if payloads != 4*20*5 {
		t.Fatalf("payloads = %d, want %d", payloads, 4*20*5)
	}
	if messages >= payloads {
		t.Fatalf("aggregation ineffective: %d messages for %d payloads", messages, payloads)
	}
	ratio := float64(payloads) / float64(messages)
	t.Logf("aggregation: %d logical sends in %d messages (%.1fx)", payloads, messages, ratio)
	if ratio < 2 {
		t.Fatalf("expected at least 2x aggregation on a 5-message burst, got %.1fx", ratio)
	}
}

func TestAggregatorRecordingIsTransparent(t *testing.T) {
	// While recording, there is no prediction, so no batching — every
	// logical send is one message and the grammar equals the interposer's.
	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	w := NewWorld(2)
	var mu sync.Mutex
	var aggs []*Aggregator
	w.RunInterposed(func(m MPI) MPI {
		a := NewAggregator(m, rec)
		mu.Lock()
		aggs = append(aggs, a)
		mu.Unlock()
		return a
	}, burstProgram(10))
	for _, a := range aggs {
		if a.MessagesSent != a.PayloadsSent {
			t.Fatalf("recording run batched: %d msgs for %d payloads",
				a.MessagesSent, a.PayloadsSent)
		}
	}
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorMixedTagsAndSizes(t *testing.T) {
	// Bursts on two tags with different payload sizes; receivers interleave
	// tags. Verifies framing and per-tag stream separation.
	prog := func(m MPI) {
		peer := 1 - m.Rank()
		for i := 0; i < 15; i++ {
			m.Send(peer, 1, []float64{1, float64(i)})
			m.Send(peer, 2, []float64{2, float64(i), 99})
			m.Send(peer, 1, []float64{1, float64(i + 100)})
		}
		m.Barrier()
		for i := 0; i < 15; i++ {
			a := m.Recv(peer, 1)
			b := m.Recv(peer, 2)
			c := m.Recv(peer, 1)
			if a[0] != 1 || b[0] != 2 || len(b) != 3 || c[1] != float64(i+100) {
				panic("mixed-tag streams corrupted")
			}
		}
		m.Barrier()
	}
	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	w := NewWorld(2)
	w.RunInterposed(func(m MPI) MPI { return NewAggregator(m, rec) }, prog)
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWorld(2)
	w2.RunInterposed(func(m MPI) MPI { return NewAggregator(m, oracle) }, prog)
}

func TestIsBlockingName(t *testing.T) {
	for _, n := range []string{"MPI_Wait", "MPI_Waitall", "MPI_Barrier",
		"MPI_Allreduce:0", "MPI_Reduce:0:0", "MPI_Bcast:2", "MPI_Recv:1"} {
		if !IsBlockingName(n) {
			t.Errorf("%q should block", n)
		}
	}
	for _, n := range []string{"MPI_Send:1", "MPI_Isend:0", "MPI_Irecv:3"} {
		if IsBlockingName(n) {
			t.Errorf("%q should not block", n)
		}
	}
}
