package mpisim

import (
	"time"

	"repro/pythia"
)

// Interposer decorates an MPI endpoint with Pythia instrumentation,
// reproducing the paper's MPI runtime system (section III-B): every MPI call
// submits an event to the oracle — point-to-point calls carry the peer rank,
// reductions carry the operation, rooted collectives carry the root — and
// blocking calls (Wait, Waitall, and blocking collectives) additionally ask
// the oracle for a prediction, mimicking a runtime that uses synchronisation
// time to set up an optimisation.
//
// All event ids are interned once at construction (the world size and the
// set of reduction operations are fixed), so the per-call cost is a single
// grammar append — the property behind the paper's Table I overheads of a
// few percent.
type Interposer struct {
	inner  MPI
	oracle *pythia.Oracle
	th     *pythia.Thread

	// PredictDistance is how far ahead the interposer asks at each blocking
	// call (0 disables prediction queries, e.g. while recording).
	PredictDistance int

	// OnPrediction, when non-nil, receives every prediction made at a
	// blocking call together with the query latency. The evaluation harness
	// uses it to score accuracy (Fig. 8) and cost (Fig. 9).
	OnPrediction func(pred pythia.Prediction, ok bool, latency time.Duration)

	// Pre-interned event ids, indexed by peer rank / root / operation.
	send, recv, isend, irecv []pythia.ID
	bcast, gatherID          []pythia.ID
	reduce                   [][]pythia.ID // [op][root]
	allreduce                []pythia.ID   // [op]
	wait, waitall, barrier   pythia.ID
	alltoall, allgather      pythia.ID
	sendAny, recvAny         pythia.ID // wildcard peers (AnySource)
	isendAny, irecvAny       pythia.ID
}

var _ MPI = (*Interposer)(nil)

// NewInterposer wraps inner so that every call notifies the oracle. The
// Pythia thread handle is keyed by the endpoint's rank, matching the paper's
// one-grammar-per-thread model.
func NewInterposer(inner MPI, oracle *pythia.Oracle) *Interposer {
	ip := &Interposer{
		inner:  inner,
		oracle: oracle,
		th:     oracle.Thread(int32(inner.Rank())),
	}
	n := inner.Size()
	intern := func(name string, peer int) pythia.ID {
		return oracle.Intern(name, int64(peer))
	}
	for p := 0; p < n; p++ {
		ip.send = append(ip.send, intern("MPI_Send", p))
		ip.recv = append(ip.recv, intern("MPI_Recv", p))
		ip.isend = append(ip.isend, intern("MPI_Isend", p))
		ip.irecv = append(ip.irecv, intern("MPI_Irecv", p))
		ip.bcast = append(ip.bcast, intern("MPI_Bcast", p))
		ip.gatherID = append(ip.gatherID, intern("MPI_Gather", p))
	}
	ops := []Op{OpSum, OpMax, OpMin, OpProd}
	ip.reduce = make([][]pythia.ID, len(ops))
	for _, op := range ops {
		ip.allreduce = append(ip.allreduce, oracle.Intern("MPI_Allreduce", int64(op)))
		for p := 0; p < n; p++ {
			ip.reduce[op] = append(ip.reduce[op], oracle.Intern("MPI_Reduce", int64(op), int64(p)))
		}
	}
	ip.wait = oracle.Intern("MPI_Wait")
	ip.waitall = oracle.Intern("MPI_Waitall")
	ip.barrier = oracle.Intern("MPI_Barrier")
	ip.alltoall = oracle.Intern("MPI_Alltoall")
	ip.allgather = oracle.Intern("MPI_Allgather")
	ip.sendAny = intern("MPI_Send", AnySource)
	ip.recvAny = intern("MPI_Recv", AnySource)
	ip.isendAny = intern("MPI_Isend", AnySource)
	ip.irecvAny = intern("MPI_Irecv", AnySource)
	return ip
}

// Thread exposes the Pythia thread handle bound to this rank.
func (ip *Interposer) Thread() *pythia.Thread { return ip.th }

// peerEvent selects the pre-interned id for a peer, tolerating wildcards.
func peerEvent(table []pythia.ID, wildcard pythia.ID, peer int) pythia.ID {
	if peer >= 0 && peer < len(table) {
		return table[peer]
	}
	return wildcard
}

// blocking submits the event for a blocking call and then queries the oracle
// as the paper's runtime does while it waits.
func (ip *Interposer) blocking(id pythia.ID) {
	ip.th.Submit(id)
	ip.queryOracle()
}

func (ip *Interposer) queryOracle() {
	if ip.PredictDistance <= 0 || ip.oracle.Recording() {
		return
	}
	start := time.Now()
	pred, ok := ip.th.PredictAt(ip.PredictDistance)
	if ip.OnPrediction != nil {
		ip.OnPrediction(pred, ok, time.Since(start))
	}
}

// Rank implements MPI.
func (ip *Interposer) Rank() int { return ip.inner.Rank() }

// Size implements MPI.
func (ip *Interposer) Size() int { return ip.inner.Size() }

// Send implements MPI.
func (ip *Interposer) Send(dest, tag int, data []float64) {
	ip.th.Submit(peerEvent(ip.send, ip.sendAny, dest))
	ip.inner.Send(dest, tag, data)
}

// Recv implements MPI.
func (ip *Interposer) Recv(src, tag int) []float64 {
	ip.th.Submit(peerEvent(ip.recv, ip.recvAny, src))
	return ip.inner.Recv(src, tag)
}

// Isend implements MPI.
func (ip *Interposer) Isend(dest, tag int, data []float64) *Request {
	ip.th.Submit(peerEvent(ip.isend, ip.isendAny, dest))
	return ip.inner.Isend(dest, tag, data)
}

// Irecv implements MPI.
func (ip *Interposer) Irecv(src, tag int) *Request {
	ip.th.Submit(peerEvent(ip.irecv, ip.irecvAny, src))
	return ip.inner.Irecv(src, tag)
}

// Wait implements MPI. Entering a wait is a blocking key point: the oracle
// is queried for the near future.
func (ip *Interposer) Wait(r *Request) []float64 {
	ip.blocking(ip.wait)
	return ip.inner.Wait(r)
}

// Waitall implements MPI.
func (ip *Interposer) Waitall(rs []*Request) {
	ip.blocking(ip.waitall)
	ip.inner.Waitall(rs)
}

// Barrier implements MPI.
func (ip *Interposer) Barrier() {
	ip.blocking(ip.barrier)
	ip.inner.Barrier()
}

// Bcast implements MPI.
func (ip *Interposer) Bcast(root int, data []float64) []float64 {
	ip.blocking(peerEvent(ip.bcast, ip.barrier, root))
	return ip.inner.Bcast(root, data)
}

// Reduce implements MPI.
func (ip *Interposer) Reduce(root int, op Op, data []float64) []float64 {
	if int(op) < len(ip.reduce) {
		ip.blocking(peerEvent(ip.reduce[op], ip.barrier, root))
	} else {
		ip.blocking(ip.oracle.Intern("MPI_Reduce", int64(op), int64(root)))
	}
	return ip.inner.Reduce(root, op, data)
}

// Allreduce implements MPI.
func (ip *Interposer) Allreduce(op Op, data []float64) []float64 {
	if int(op) < len(ip.allreduce) {
		ip.blocking(ip.allreduce[op])
	} else {
		ip.blocking(ip.oracle.Intern("MPI_Allreduce", int64(op)))
	}
	return ip.inner.Allreduce(op, data)
}

// Alltoall implements MPI.
func (ip *Interposer) Alltoall(send [][]float64) [][]float64 {
	ip.blocking(ip.alltoall)
	return ip.inner.Alltoall(send)
}

// Allgather implements MPI.
func (ip *Interposer) Allgather(data []float64) [][]float64 {
	ip.blocking(ip.allgather)
	return ip.inner.Allgather(data)
}

// Gather implements MPI.
func (ip *Interposer) Gather(root int, data []float64) [][]float64 {
	ip.blocking(peerEvent(ip.gatherID, ip.barrier, root))
	return ip.inner.Gather(root, data)
}
