package mpisim

import (
	"testing"

	"repro/pythia"
)

func TestPersistentRequestRoundTrip(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(m MPI) {
		rank := m.(*Rank)
		peer := 1 - m.Rank()
		buf := []float64{0}
		ps := rank.SendInit(peer, 5, buf)
		pr := rank.RecvInit(peer, 5)
		for i := 0; i < 50; i++ {
			buf[0] = float64(i) // persistent semantics: buffer reread at Start
			ps.Start()
			pr.Start()
			got := pr.Await()
			ps.Await()
			if got[0] != float64(i) {
				t.Errorf("iteration %d: got %v", i, got[0])
				return
			}
		}
		if ps.Starts != 50 || pr.Starts != 50 {
			t.Errorf("starts = %d/%d, want 50/50", ps.Starts, pr.Starts)
		}
	})
}

func TestPersistentStateMachine(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(m MPI) {
		if m.Rank() != 0 {
			m.Recv(0, 1)
			return
		}
		rank := m.(*Rank)
		p := rank.SendInit(1, 1, []float64{1})
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Await on inactive request did not panic")
				}
			}()
			p.Await()
		}()
		p.Start()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("double Start did not panic")
				}
			}()
			p.Start()
		}()
		p.Await()
	})
}

func TestAdvisePersistent(t *testing.T) {
	// Record a program with a hot repeated Isend to rank 1 and occasional
	// sends elsewhere; the advisor must single out the hot pair.
	program := func(m MPI) {
		if m.Rank() == 0 {
			for i := 0; i < 40; i++ {
				m.Isend(1, 0, []float64{1})
				m.Wait(m.Irecv(1, 0))
				if i%10 == 9 {
					m.Isend(2, 0, []float64{1})
				}
			}
		} else if m.Rank() == 1 {
			for i := 0; i < 40; i++ {
				m.Wait(m.Irecv(0, 0))
				m.Isend(0, 0, []float64{1})
			}
		} else {
			for i := 0; i < 4; i++ {
				m.Wait(m.Irecv(0, 0))
			}
		}
		m.Barrier()
	}
	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	w := NewWorld(3)
	w.RunInterposed(func(m MPI) MPI { return NewInterposer(m, rec) }, program)
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	th := oracle.Thread(0)
	th.StartAtBeginning()
	// Walk a few iterations so the oracle is mid-loop, then ask for advice.
	seq := ts.Threads[0].Grammar.Unfold()
	for i := 0; i < 12; i++ {
		th.Submit(pythia.ID(seq[i]))
	}
	cands := AdvisePersistent(oracle, th, 32, 4)
	if len(cands) == 0 {
		t.Fatal("no persistent candidates found in a hot loop")
	}
	if cands[0].Event != "MPI_Isend:1" && cands[0].Event != "MPI_Irecv:1" {
		t.Fatalf("top candidate = %+v, want the rank-1 hot pair", cands[0])
	}
	if cands[0].Occurrences < 4 {
		t.Fatalf("top candidate occurrences = %d", cands[0].Occurrences)
	}
}
