// Package mpisim is an in-process message-passing runtime with the calling
// surface of MPI: ranks (goroutines) exchange tagged point-to-point messages
// and participate in collectives. It substitutes for a real MPI library in
// this reproduction (see DESIGN.md): Pythia never inspects message payloads,
// only the event stream of which primitive was called with which peer, so an
// in-process runtime with the same surface produces the same grammars as the
// paper's LD_PRELOAD-intercepted OpenMPI.
//
// Point-to-point sends are eager (buffered): Send never blocks waiting for
// the receiver. Collectives synchronise all ranks of the world.
package mpisim

import (
	"fmt"
	"sync"
)

// AnySource matches any sending rank in Recv/Irecv.
const AnySource = -1

// AnyTag matches any message tag in Recv/Irecv.
const AnyTag = -1

// internalTagBase marks the start of the reserved (internal) tag space used
// by collectives implemented over point-to-point messages.
const internalTagBase = -1000

// Op is a reduction operation for Reduce/Allreduce.
type Op int

// Reduction operations.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

// String names the operation (also used as the Pythia event payload).
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	default:
		return fmt.Sprintf("op%d", int(o))
	}
}

func (o Op) apply(acc, v float64) float64 {
	switch o {
	case OpSum:
		return acc + v
	case OpMax:
		if v > acc {
			return v
		}
		return acc
	case OpMin:
		if v < acc {
			return v
		}
		return acc
	case OpProd:
		return acc * v
	default:
		return acc
	}
}

// message is one point-to-point payload in flight.
type message struct {
	src  int
	tag  int
	data []float64
}

// mailbox is a rank's incoming message queue with tag/source matching.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.q = append(mb.q, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is queued and removes it.
// Matching honours arrival order (first match wins), preserving MPI's
// per-pair ordering guarantee.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.q {
			// AnyTag never matches internal (reserved) tags, so collective
			// traffic cannot be stolen by wildcard receives.
			if (src == AnySource || m.src == src) &&
				(m.tag == tag || (tag == AnyTag && m.tag > internalTagBase)) {
				mb.q = append(mb.q[:i], mb.q[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// collective implements the world-wide synchronising primitives. All ranks
// must call collectives in the same order (as MPI requires). The last rank
// to arrive assembles the all-gathered contributions and hands every rank
// its own result pointer, which is race-free even if a fast rank immediately
// starts the next collective.
type collective struct {
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	slots   [][]float64
	out     [][][]float64
}

func newCollective(size int) *collective {
	c := &collective{
		slots: make([][]float64, size),
		out:   make([][][]float64, size),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// allgather deposits data and returns every rank's contribution, indexed by
// rank. The returned slice is shared and must be treated as read-only.
func (c *collective) allgather(rank int, data []float64) [][]float64 {
	c.mu.Lock()
	c.slots[rank] = data
	c.arrived++
	if c.arrived == len(c.slots) {
		snapshot := make([][]float64, len(c.slots))
		copy(snapshot, c.slots)
		for r := range c.out {
			c.out[r] = snapshot
		}
		c.arrived = 0
		c.cond.Broadcast()
	} else {
		for c.out[rank] == nil {
			c.cond.Wait()
		}
	}
	res := c.out[rank]
	c.out[rank] = nil
	c.mu.Unlock()
	return res
}

// World is one simulated MPI job: a fixed set of ranks sharing mailboxes and
// a collective context.
type World struct {
	size  int
	boxes []*mailbox
	coll  *collective
}

// NewWorld creates a world of the given size (>= 1).
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpisim: world size %d", size))
	}
	w := &World{size: size, coll: newCollective(size)}
	for i := 0; i < size; i++ {
		w.boxes = append(w.boxes, newMailbox())
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank returns the communication endpoint of one rank. Each endpoint must be
// used by a single goroutine.
func (w *World) Rank(rank int) *Rank {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpisim: rank %d out of world of size %d", rank, w.size))
	}
	return &Rank{world: w, rank: rank}
}

// Run starts one goroutine per rank executing body and waits for all of them
// to finish. It is the moral equivalent of mpirun.
func (w *World) Run(body func(m MPI)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			body(w.Rank(r))
		}(r)
	}
	wg.Wait()
}

// RunInterposed is Run with each rank's endpoint wrapped in the given
// decorator (typically a Pythia interposer).
func (w *World) RunInterposed(wrap func(m MPI) MPI, body func(m MPI)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			body(wrap(w.Rank(r)))
		}(r)
	}
	wg.Wait()
}
