package mpisim

import (
	"testing"

	"repro/pythia"
)

func TestSendrecvRingShift(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(m MPI) {
		right := (m.Rank() + 1) % m.Size()
		left := (m.Rank() + m.Size() - 1) % m.Size()
		got := m.Sendrecv(right, 5, []float64{float64(m.Rank())}, left, 5)
		if got[0] != float64(left) {
			t.Errorf("rank %d received %v, want %d", m.Rank(), got, left)
		}
	})
}

func TestScatter(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(m MPI) {
		var parts [][]float64
		if m.Rank() == 1 {
			parts = [][]float64{{10}, {20, 21}, {30, 31, 32}}
		}
		got := m.Scatter(1, parts)
		want := m.Rank() + 1
		if len(got) != want {
			t.Errorf("rank %d got %v, want %d elements", m.Rank(), got, want)
			return
		}
		if got[0] != float64((m.Rank()+1)*10) {
			t.Errorf("rank %d got %v", m.Rank(), got)
		}
	})
}

func TestReduceScatter(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(m MPI) {
		contrib := make([]float64, m.Size())
		for i := range contrib {
			contrib[i] = float64(m.Rank() + i)
		}
		got := m.ReduceScatter(OpSum, contrib)
		// Element r of the fold is sum over ranks of (rank + r) = 6 + 4r.
		want := float64(6 + 4*m.Rank())
		if got != want {
			t.Errorf("rank %d ReduceScatter = %v, want %v", m.Rank(), got, want)
		}
	})
}

func TestScan(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(m MPI) {
		got := m.Scan(OpSum, []float64{float64(m.Rank() + 1)})
		// Inclusive prefix sum of 1..rank+1.
		want := float64((m.Rank() + 1) * (m.Rank() + 2) / 2)
		if got[0] != want {
			t.Errorf("rank %d Scan = %v, want %v", m.Rank(), got[0], want)
		}
	})
}

func TestExtendedSurfaceInterposed(t *testing.T) {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	w := NewWorld(2)
	w.RunInterposed(func(m MPI) MPI { return NewInterposer(m, o) }, func(m MPI) {
		peer := 1 - m.Rank()
		for i := 0; i < 20; i++ {
			m.Sendrecv(peer, 1, []float64{1}, peer, 1)
			m.Scan(OpSum, []float64{1})
			m.ReduceScatter(OpSum, []float64{1, 2})
			var parts [][]float64
			if m.Rank() == 0 {
				parts = [][]float64{{1}, {2}}
			}
			m.Scatter(0, parts)
		}
	})
	ts, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each iteration submits 5 events (send+recv, scan, reduce_scatter,
	// scatter).
	for tid, th := range ts.Threads {
		if th.Grammar.EventCount != 100 {
			t.Fatalf("rank %d recorded %d events, want 100", tid, th.Grammar.EventCount)
		}
	}
	// The repetitive loop must compress well.
	for _, th := range ts.Threads {
		if len(th.Grammar.Rules) > 4 {
			t.Fatalf("grammar has %d rules, want compact", len(th.Grammar.Rules))
		}
	}
}
