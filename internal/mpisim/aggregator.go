package mpisim

import (
	"repro/pythia"
)

// Aggregator implements the optimisation the paper sketches for its MPI
// runtime (section III-B): "the optimization could consist in aggregating
// multiple successive MPI send messages". It wraps an instrumented endpoint
// and, at every Send, asks the oracle whether more sends to the same
// destination follow before the next blocking call; if so, the payload is
// buffered and the whole batch travels as one message. The receiving side
// transparently splits batches back into individual messages.
//
// Aggregated traffic uses a dedicated internal tag derived from the original
// tag, so un-aggregated and aggregated messages never mix streams and the
// per-(source, tag) ordering guarantee is preserved.
type Aggregator struct {
	*Interposer
	// Lookahead is how far the oracle is consulted for upcoming sends
	// (default 4).
	Lookahead int
	// MaxBatch caps how many messages may ride in one aggregate.
	MaxBatch int

	// pending batches, keyed by destination and original tag.
	pending map[batchKey][][]float64
	// split holds fragments of received aggregates not yet consumed.
	split map[batchKey][][]float64

	// MessagesSent / PayloadsSent count physical messages vs logical sends,
	// the metric an MPI library would optimise.
	MessagesSent int64
	PayloadsSent int64
}

type batchKey struct {
	peer int
	tag  int
}

// aggTagBase maps an application tag into the reserved aggregate tag space
// (below internalTagBase so wildcard receives never match it directly).
const aggTagBase = internalTagBase - 1000000

// NewAggregator builds the aggregating layer on top of a Pythia interposer.
func NewAggregator(inner MPI, oracle *pythia.Oracle) *Aggregator {
	return &Aggregator{
		Interposer: NewInterposer(inner, oracle),
		Lookahead:  4,
		MaxBatch:   16,
		pending:    make(map[batchKey][][]float64),
		split:      make(map[batchKey][][]float64),
	}
}

// moreSendsPredicted reports whether the oracle expects another send to dest
// before the next blocking call.
func (a *Aggregator) moreSendsPredicted(dest int) bool {
	if a.Interposer.oracle.Recording() {
		return false
	}
	want := a.Interposer.oracle.EventName(peerEvent(a.Interposer.send, a.Interposer.sendAny, dest))
	for _, p := range a.Thread().PredictSequence(a.Lookahead) {
		name := a.Interposer.oracle.EventName(pythia.ID(p.EventID))
		if name == want {
			return true
		}
		if IsBlockingName(name) {
			return false
		}
	}
	return false
}

// IsBlockingName reports whether an event descriptor names a blocking MPI
// entry point (exported for layers that reason about event streams).
func IsBlockingName(name string) bool {
	switch {
	case len(name) >= 8 && name[:8] == "MPI_Wait":
		return true
	case name == "MPI_Barrier" || name == "MPI_Alltoall" || name == "MPI_Allgather":
		return true
	case len(name) >= 13 && name[:13] == "MPI_Allreduce":
		return true
	case len(name) >= 10 && (name[:10] == "MPI_Reduce" || name[:9+1] == "MPI_Bcast:"):
		return true
	case len(name) >= 9 && name[:9] == "MPI_Recv:":
		return true
	}
	return false
}

// Send implements MPI with oracle-guided aggregation.
func (a *Aggregator) Send(dest, tag int, data []float64) {
	// Submit the event exactly as the interposer would (the grammar must
	// not change just because the transport batches), but route the payload
	// through the aggregation buffer.
	a.Thread().Submit(peerEvent(a.Interposer.send, a.Interposer.sendAny, dest))
	a.PayloadsSent++

	k := batchKey{dest, tag}
	a.pending[k] = append(a.pending[k], append([]float64(nil), data...))
	if len(a.pending[k]) < a.MaxBatch && a.moreSendsPredicted(dest) {
		return // hold: more sends are coming
	}
	a.flushKey(k)
}

// flushKey transmits one destination/tag batch as a single framed message.
func (a *Aggregator) flushKey(k batchKey) {
	batch := a.pending[k]
	if len(batch) == 0 {
		return
	}
	delete(a.pending, k)
	a.MessagesSent++
	if len(batch) == 1 {
		a.Interposer.inner.Send(k.peer, k.tag, batch[0])
		return
	}
	// Frame: [count, len0, payload0..., len1, payload1...].
	frame := []float64{float64(len(batch))}
	for _, p := range batch {
		frame = append(frame, float64(len(p)))
		frame = append(frame, p...)
	}
	a.Interposer.inner.Send(k.peer, aggTagBase-k.tag, frame)
}

// Flush transmits every pending batch (call before any operation that the
// peer may block on).
func (a *Aggregator) Flush() {
	for k := range a.pending {
		a.flushKey(k)
	}
}

// Recv implements MPI, transparently splitting aggregated messages. Pending
// batches are flushed first: the peer may be blocked on them while we block
// on it.
func (a *Aggregator) Recv(src, tag int) []float64 {
	a.Flush()
	a.Thread().Submit(peerEvent(a.Interposer.recv, a.Interposer.recvAny, src))
	return a.recvPayload(src, tag)
}

func (a *Aggregator) recvPayload(src, tag int) []float64 {
	k := batchKey{src, tag}
	if frags := a.split[k]; len(frags) > 0 {
		out := frags[0]
		a.split[k] = frags[1:]
		return out
	}
	// Either a plain message on the original tag or an aggregate on the
	// derived tag may arrive first; order within each stream is preserved,
	// and a sender only ever uses one framing per batch. Try the aggregate
	// stream only when the plain stream would block: receive from whichever
	// arrives using a two-tag match.
	msg := a.takeEither(src, tag, aggTagBase-tag)
	if msg.tag == tag {
		return msg.data
	}
	// Split the frame.
	count := int(msg.data[0])
	idx := 1
	var frags [][]float64
	for i := 0; i < count; i++ {
		n := int(msg.data[idx])
		idx++
		frag := make([]float64, n)
		copy(frag, msg.data[idx:idx+n])
		idx += n
		frags = append(frags, frag)
	}
	out := frags[0]
	a.split[k] = frags[1:]
	return out
}

// takeEither blocks until a message from src with either tag arrives.
func (a *Aggregator) takeEither(src, tagA, tagB int) message {
	rank, ok := a.Interposer.inner.(*Rank)
	if !ok {
		// Fallback for exotic stacking: only the plain stream is usable.
		return message{tag: tagA, data: a.Interposer.inner.Recv(src, tagA)}
	}
	mb := rank.world.boxes[rank.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.q {
			if (src == AnySource || m.src == src) && (m.tag == tagA || m.tag == tagB) {
				mb.q = append(mb.q[:i], mb.q[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// The blocking operations flush pending batches first: the peer may be
// waiting for them.

// Wait implements MPI.
func (a *Aggregator) Wait(r *Request) []float64 {
	a.Flush()
	return a.Interposer.Wait(r)
}

// Waitall implements MPI.
func (a *Aggregator) Waitall(rs []*Request) {
	a.Flush()
	a.Interposer.Waitall(rs)
}

// Barrier implements MPI.
func (a *Aggregator) Barrier() {
	a.Flush()
	a.Interposer.Barrier()
}

// Allreduce implements MPI.
func (a *Aggregator) Allreduce(op Op, data []float64) []float64 {
	a.Flush()
	return a.Interposer.Allreduce(op, data)
}

// Reduce implements MPI.
func (a *Aggregator) Reduce(root int, op Op, data []float64) []float64 {
	a.Flush()
	return a.Interposer.Reduce(root, op, data)
}

// Bcast implements MPI.
func (a *Aggregator) Bcast(root int, data []float64) []float64 {
	a.Flush()
	return a.Interposer.Bcast(root, data)
}

// Alltoall implements MPI.
func (a *Aggregator) Alltoall(send [][]float64) [][]float64 {
	a.Flush()
	return a.Interposer.Alltoall(send)
}

// Allgather implements MPI.
func (a *Aggregator) Allgather(data []float64) [][]float64 {
	a.Flush()
	return a.Interposer.Allgather(data)
}

// Gather implements MPI.
func (a *Aggregator) Gather(root int, data []float64) [][]float64 {
	a.Flush()
	return a.Interposer.Gather(root, data)
}

// Scatter implements MPI.
func (a *Aggregator) Scatter(root int, parts [][]float64) []float64 {
	a.Flush()
	return a.Interposer.Scatter(root, parts)
}

// Sendrecv implements MPI (unaggregated: its receive half blocks anyway).
func (a *Aggregator) Sendrecv(dest, sendTag int, data []float64, src, recvTag int) []float64 {
	a.Flush()
	a.Thread().Submit(peerEvent(a.Interposer.send, a.Interposer.sendAny, dest))
	a.PayloadsSent++
	a.MessagesSent++
	a.Interposer.inner.Send(dest, sendTag, data)
	return a.Recv(src, recvTag)
}
