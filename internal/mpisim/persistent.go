package mpisim

import "repro/pythia"

// Persistent requests, the second optimisation the paper sketches for its
// MPI runtime (section III-B): "setting up persistent communication if a
// communication pattern repeats". A persistent request fixes the envelope
// (peer, tag) once; each Start reuses it without re-validating arguments —
// in a real MPI this skips envelope setup and protocol negotiation on every
// iteration of a repeating pattern.
//
// PersistentAdvisor is the oracle side: given a predicting Pythia thread it
// inspects the predicted future and reports which point-to-point calls
// repeat often enough that converting them to persistent requests pays off.

// PRequest is a persistent communication request.
type PRequest struct {
	send bool
	peer int
	tag  int
	data []float64 // send payload buffer (caller-owned, like MPI_Send_init)
	rank *Rank

	active  bool
	pending *Request
	// Starts counts how often the request was reused — the quantity the
	// optimisation improves.
	Starts int64
}

// SendInit creates a persistent send request bound to (dest, tag, buffer).
func (r *Rank) SendInit(dest, tag int, data []float64) *PRequest {
	return &PRequest{send: true, peer: dest, tag: tag, data: data, rank: r}
}

// RecvInit creates a persistent receive request bound to (src, tag).
func (r *Rank) RecvInit(src, tag int) *PRequest {
	return &PRequest{peer: src, tag: tag, rank: r}
}

// Start activates the request: the bound operation is initiated with the
// current buffer contents.
func (p *PRequest) Start() {
	if p.active {
		panic("mpisim: Start on an active persistent request")
	}
	p.active = true
	p.Starts++
	if p.send {
		p.pending = p.rank.Isend(p.peer, p.tag, p.data)
	} else {
		p.pending = p.rank.Irecv(p.peer, p.tag)
	}
}

// Await completes the started operation, returning the received payload for
// receive requests. The request can be started again afterwards.
func (p *PRequest) Await() []float64 {
	if !p.active {
		panic("mpisim: Await on an inactive persistent request")
	}
	p.active = false
	out := p.rank.Wait(p.pending)
	p.pending = nil
	return out
}

// PersistentCandidate is one repeated point-to-point call the advisor found.
type PersistentCandidate struct {
	// Event is the descriptor ("MPI_Isend:3").
	Event string
	// Occurrences is how many times it appears in the inspected window.
	Occurrences int
}

// AdvisePersistent inspects the oracle's predicted future (window events
// ahead) and returns the point-to-point operations that repeat at least
// minRepeats times — the calls worth converting to persistent requests.
// This is the decision a real MPI library would take inside MPI_Wait, using
// exactly the information Pythia provides.
func AdvisePersistent(oracle *pythia.Oracle, th *pythia.Thread, window, minRepeats int) []PersistentCandidate {
	counts := make(map[string]int)
	for _, p := range th.PredictSequence(window) {
		name := oracle.EventName(pythia.ID(p.EventID))
		if isP2PName(name) {
			counts[name]++
		}
	}
	var out []PersistentCandidate
	for name, n := range counts {
		if n >= minRepeats {
			out = append(out, PersistentCandidate{Event: name, Occurrences: n})
		}
	}
	sortCandidates(out)
	return out
}

func isP2PName(name string) bool {
	for _, p := range []string{"MPI_Send:", "MPI_Recv:", "MPI_Isend:", "MPI_Irecv:"} {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

func sortCandidates(cs []PersistentCandidate) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && (cs[j].Occurrences > cs[j-1].Occurrences ||
			(cs[j].Occurrences == cs[j-1].Occurrences && cs[j].Event < cs[j-1].Event)); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
