package mpisim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pythia"
)

func TestSendRecv(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(m MPI) {
		if m.Rank() == 0 {
			m.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := m.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(m MPI) {
		if m.Rank() == 0 {
			m.Send(1, 1, []float64{1})
			m.Send(1, 2, []float64{2})
		} else {
			// Receive out of send order by tag.
			got2 := m.Recv(0, 2)
			got1 := m.Recv(0, 1)
			if got2[0] != 2 || got1[0] != 1 {
				t.Errorf("tag matching broken: %v %v", got1, got2)
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(m MPI) {
		switch m.Rank() {
		case 0:
			got := m.Recv(AnySource, AnyTag)
			if got[0] != 1 && got[0] != 2 {
				t.Errorf("wildcard recv got %v", got)
			}
			got = m.Recv(AnySource, AnyTag)
			if got[0] != 1 && got[0] != 2 {
				t.Errorf("wildcard recv got %v", got)
			}
		case 1:
			m.Send(0, 5, []float64{1})
		case 2:
			m.Send(0, 9, []float64{2})
		}
	})
}

func TestMessageOrderPreserved(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(m MPI) {
		if m.Rank() == 0 {
			for i := 0; i < 100; i++ {
				m.Send(1, 0, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 100; i++ {
				got := m.Recv(0, 0)
				if got[0] != float64(i) {
					t.Errorf("message %d arrived as %v", i, got)
					return
				}
			}
		}
	})
}

func TestIsendIrecvWait(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(m MPI) {
		peer := 1 - m.Rank()
		req := m.Irecv(peer, 3)
		sreq := m.Isend(peer, 3, []float64{float64(m.Rank())})
		m.Wait(sreq)
		got := m.Wait(req)
		if got[0] != float64(peer) {
			t.Errorf("rank %d got %v", m.Rank(), got)
		}
	})
}

func TestWaitall(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(m MPI) {
		var reqs []*Request
		for p := 0; p < m.Size(); p++ {
			if p == m.Rank() {
				continue
			}
			reqs = append(reqs, m.Irecv(p, 1))
			reqs = append(reqs, m.Isend(p, 1, []float64{float64(m.Rank())}))
		}
		m.Waitall(reqs)
	})
}

func TestBarrier(t *testing.T) {
	w := NewWorld(8)
	var phase atomic.Int64
	w.Run(func(m MPI) {
		for i := 0; i < 20; i++ {
			phase.Add(1)
			m.Barrier()
			if got := phase.Load(); got != int64((i+1)*8) {
				t.Errorf("iteration %d: phase counter %d, want %d", i, got, (i+1)*8)
				return
			}
			m.Barrier()
		}
	})
}

func TestBcast(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(m MPI) {
		var data []float64
		if m.Rank() == 2 {
			data = []float64{42, 43}
		}
		got := m.Bcast(2, data)
		if len(got) != 2 || got[0] != 42 || got[1] != 43 {
			t.Errorf("rank %d Bcast = %v", m.Rank(), got)
		}
	})
}

func TestReduceAllreduce(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(m MPI) {
		v := []float64{float64(m.Rank() + 1)} // 1..4
		sum := m.Allreduce(OpSum, v)
		if sum[0] != 10 {
			t.Errorf("Allreduce sum = %v", sum)
		}
		max := m.Allreduce(OpMax, v)
		if max[0] != 4 {
			t.Errorf("Allreduce max = %v", max)
		}
		red := m.Reduce(0, OpProd, v)
		if m.Rank() == 0 {
			if red[0] != 24 {
				t.Errorf("Reduce prod = %v", red)
			}
		} else if red != nil {
			t.Errorf("non-root received reduce result %v", red)
		}
		min := m.Allreduce(OpMin, v)
		if min[0] != 1 {
			t.Errorf("Allreduce min = %v", min)
		}
	})
}

func TestAlltoall(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(m MPI) {
		send := make([][]float64, m.Size())
		for d := range send {
			send[d] = []float64{float64(m.Rank()*10 + d)}
		}
		got := m.Alltoall(send)
		for s := range got {
			want := float64(s*10 + m.Rank())
			if got[s][0] != want {
				t.Errorf("rank %d from %d: got %v want %v", m.Rank(), s, got[s][0], want)
			}
		}
	})
}

func TestAllgatherGather(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(m MPI) {
		got := m.Allgather([]float64{float64(m.Rank())})
		for r := range got {
			if got[r][0] != float64(r) {
				t.Errorf("Allgather[%d] = %v", r, got[r])
			}
		}
		g := m.Gather(1, []float64{float64(m.Rank())})
		if m.Rank() == 1 {
			if len(g) != 3 || g[2][0] != 2 {
				t.Errorf("Gather = %v", g)
			}
		} else if g != nil {
			t.Errorf("non-root Gather = %v", g)
		}
	})
}

func TestSendBufferIsolation(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(m MPI) {
		if m.Rank() == 0 {
			buf := []float64{1}
			m.Send(1, 0, buf)
			buf[0] = 999 // must not affect the message in flight
			m.Barrier()
		} else {
			m.Barrier()
			if got := m.Recv(0, 0); got[0] != 1 {
				t.Errorf("send buffer not copied: %v", got)
			}
		}
	})
}

// TestInterposedRecordDeterministicGrammars records the same deterministic
// program twice and checks per-rank grammars come out identical.
func TestInterposedRecordDeterministicGrammars(t *testing.T) {
	run := func() *pythia.TraceSet {
		o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
		w := NewWorld(4)
		w.RunInterposed(func(m MPI) MPI { return NewInterposer(m, o) }, func(m MPI) {
			right := (m.Rank() + 1) % m.Size()
			left := (m.Rank() + m.Size() - 1) % m.Size()
			for i := 0; i < 30; i++ {
				rr := m.Irecv(left, 0)
				m.Isend(right, 0, []float64{1})
				m.Wait(rr)
				if i%10 == 9 {
					m.Allreduce(OpSum, []float64{1})
				}
			}
			m.Barrier()
		})
		ts, err := o.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	a, b := run(), run()
	for tid := range a.Threads {
		// Raw ids are interned concurrently, so their numeric values vary
		// from run to run; the per-rank *descriptor* sequence must not.
		ga := a.Threads[tid].Grammar.Unfold()
		gb := b.Threads[tid].Grammar.Unfold()
		if len(ga) != len(gb) {
			t.Fatalf("rank %d: runs differ in event count (%d vs %d)", tid, len(ga), len(gb))
		}
		for i := range ga {
			na, nb := a.Events[ga[i]], b.Events[gb[i]]
			if na != nb {
				t.Fatalf("rank %d: event %d differs (%q vs %q)", tid, i, na, nb)
			}
		}
	}
}

// TestInterposedPredictRoundTrip records a ring program, then replays it
// under prediction and checks that the oracle's next-event predictions at
// Wait entries are essentially always right.
func TestInterposedPredictRoundTrip(t *testing.T) {
	program := func(m MPI) {
		right := (m.Rank() + 1) % m.Size()
		left := (m.Rank() + m.Size() - 1) % m.Size()
		for i := 0; i < 50; i++ {
			rr := m.Irecv(left, 0)
			m.Isend(right, 0, []float64{float64(i)})
			m.Wait(rr)
		}
		m.Barrier()
	}

	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	w := NewWorld(4)
	w.RunInterposed(func(m MPI) MPI { return NewInterposer(m, rec) }, program)
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var ips []*Interposer
	var queries atomic.Int64
	w2 := NewWorld(4)
	w2.RunInterposed(func(m MPI) MPI {
		ip := NewInterposer(m, oracle)
		ip.PredictDistance = 1
		ip.OnPrediction = func(pred pythia.Prediction, ok bool, _ time.Duration) {
			if ok {
				queries.Add(1)
			}
		}
		mu.Lock()
		ips = append(ips, ip)
		mu.Unlock()
		return ip
	}, program)

	if queries.Load() == 0 {
		t.Fatal("no successful oracle queries at blocking calls")
	}
	for _, ip := range ips {
		st := ip.Thread().Predictor().Stats()
		if st.Observed == 0 {
			t.Fatal("predictor saw no events")
		}
		// The first event re-anchors (we did not StartAtBeginning); every
		// other event of this deterministic replay must be followed.
		if st.Followed < st.Observed-1 {
			t.Fatalf("tracking lost: %+v", st)
		}
		if st.Unknown != 0 {
			t.Fatalf("unknown events on an exact replay: %+v", st)
		}
	}
}

// benchRecordOracle builds a record oracle for benchmarks.
func benchRecordOracle() *pythia.Oracle {
	return pythia.NewRecordOracle(pythia.WithoutTimestamps())
}
