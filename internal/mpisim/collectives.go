package mpisim

// This file extends the MPI surface with the second tier of primitives the
// evaluated applications use occasionally: combined send/receive, scatter,
// reduce-scatter and prefix scans. They are built on the same allgather
// collective core, so the ordering discipline (all ranks call collectives in
// the same order) applies.

// Sendrecv performs a combined send and receive, the classic
// deadlock-avoidance primitive for ring shifts.
func (r *Rank) Sendrecv(dest, sendTag int, data []float64, src, recvTag int) []float64 {
	r.Send(dest, sendTag, data)
	return r.Recv(src, recvTag)
}

// Scatter distributes parts[i] from root to rank i. Non-root ranks pass nil
// parts.
func (r *Rank) Scatter(root int, parts [][]float64) []float64 {
	var flat []float64
	if r.rank == root {
		if len(parts) != r.world.size {
			panic("mpisim: Scatter needs one slice per rank at the root")
		}
		// Encode as length-prefixed concatenation.
		for _, p := range parts {
			flat = append(flat, float64(len(p)))
			flat = append(flat, p...)
		}
	}
	all := r.world.coll.allgather(r.rank, flat)
	enc := all[root]
	idx := 0
	for rank := 0; rank <= r.rank; rank++ {
		if idx >= len(enc) {
			return nil
		}
		n := int(enc[idx])
		idx++
		if rank == r.rank {
			out := make([]float64, n)
			copy(out, enc[idx:idx+n])
			return out
		}
		idx += n
	}
	return nil
}

// ReduceScatter folds all contributions element-wise with op and hands each
// rank the element block at its own index (each rank contributes one value
// per rank).
func (r *Rank) ReduceScatter(op Op, data []float64) float64 {
	if len(data) != r.world.size {
		panic("mpisim: ReduceScatter needs one value per rank")
	}
	folded := fold(op, r.world.coll.allgather(r.rank, data))
	return folded[r.rank]
}

// Scan returns the inclusive prefix reduction over ranks 0..r.rank.
func (r *Rank) Scan(op Op, data []float64) []float64 {
	all := r.world.coll.allgather(r.rank, data)
	return fold(op, all[:r.rank+1])
}

// The extended surface on the MPI interface.

// Sendrecv implements MPI.
func (ip *Interposer) Sendrecv(dest, sendTag int, data []float64, src, recvTag int) []float64 {
	ip.th.Submit(peerEvent(ip.send, ip.sendAny, dest))
	ip.th.Submit(peerEvent(ip.recv, ip.recvAny, src))
	return ip.inner.Sendrecv(dest, sendTag, data, src, recvTag)
}

// Scatter implements MPI.
func (ip *Interposer) Scatter(root int, parts [][]float64) []float64 {
	ip.blocking(ip.oracle.Intern("MPI_Scatter", int64(root)))
	return ip.inner.Scatter(root, parts)
}

// ReduceScatter implements MPI.
func (ip *Interposer) ReduceScatter(op Op, data []float64) float64 {
	ip.blocking(ip.oracle.Intern("MPI_Reduce_scatter", int64(op)))
	return ip.inner.ReduceScatter(op, data)
}

// Scan implements MPI.
func (ip *Interposer) Scan(op Op, data []float64) []float64 {
	ip.blocking(ip.oracle.Intern("MPI_Scan", int64(op)))
	return ip.inner.Scan(op, data)
}
