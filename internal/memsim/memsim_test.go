package memsim

import (
	"testing"

	"repro/pythia"
)

// producerConsumerApp is the pattern that defeats first-touch: thread 0
// (node 0) initialises every page once, then thread 1 (node 1) does all the
// real work on half of them. First-touch places everything on node 0, so
// thread 1 pays remote cost forever.
func producerConsumerApp(s *System, pages, rounds int) {
	// Initialisation pass by thread 0 — the first touches.
	for p := 0; p < pages; p++ {
		s.Access(0, int32(p))
	}
	// Work: thread 1 hammers the upper half, thread 0 the lower half.
	for r := 0; r < rounds; r++ {
		for p := 0; p < pages/2; p++ {
			s.Access(0, int32(p))
		}
		for p := pages / 2; p < pages; p++ {
			s.Access(1, int32(p))
		}
	}
}

func TestFirstTouchBaseline(t *testing.T) {
	s := New(Config{})
	producerConsumerApp(s, 16, 10)
	st := s.Stats()
	// All of thread 1's 10*8 accesses are remote under first-touch.
	if st.RemoteAccesses != 80 {
		t.Fatalf("remote accesses = %d, want 80", st.RemoteAccesses)
	}
	if st.Placements != 16 {
		t.Fatalf("placements = %d, want 16", st.Placements)
	}
}

func TestThreadPinningRoundRobin(t *testing.T) {
	s := New(Config{Nodes: 2})
	if s.nodeOf(10) != 0 || s.nodeOf(20) != 1 || s.nodeOf(30) != 0 {
		t.Fatal("round-robin pinning broken")
	}
	if s.nodeOf(10) != 0 {
		t.Fatal("pinning not sticky")
	}
}

// TestOracleBeatsFirstTouch is the introduction's motivating scenario made
// quantitative: with a recorded reference execution, predictive placement
// puts the consumer's pages on the consumer's node and beats first-touch.
func TestOracleBeatsFirstTouch(t *testing.T) {
	const pages, rounds = 16, 25

	firstTouch := New(Config{})
	producerConsumerApp(firstTouch, pages, rounds)
	ftNs := firstTouch.Now()

	rec := pythia.NewRecordOracle()
	recorded := New(Config{Oracle: rec})
	producerConsumerApp(recorded, pages, rounds)
	recNs := recorded.Now()
	if recNs != ftNs {
		t.Fatalf("recording changed virtual time: %d vs %d", recNs, ftNs)
	}
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred := New(Config{Oracle: oracle, Predictive: true})
	producerConsumerApp(pred, pages, rounds)
	predNs := pred.Now()
	st := pred.Stats()

	if st.Migrations == 0 {
		t.Fatal("predictive placement never deviated from first touch")
	}
	if st.RemoteAccesses >= firstTouch.Stats().RemoteAccesses {
		t.Fatalf("remote accesses not reduced: %d vs %d",
			st.RemoteAccesses, firstTouch.Stats().RemoteAccesses)
	}
	if predNs >= ftNs {
		t.Fatalf("predictive placement (%d ns) not faster than first-touch (%d ns)", predNs, ftNs)
	}
	improvement := 1 - float64(predNs)/float64(ftNs)
	t.Logf("first-touch %.1fµs, predictive %.1fµs (%.0f%% faster), remote %d -> %d",
		float64(ftNs)/1e3, float64(predNs)/1e3, improvement*100,
		firstTouch.Stats().RemoteAccesses, st.RemoteAccesses)
}

func TestFreeForcesReplacement(t *testing.T) {
	s := New(Config{})
	s.Access(0, 1)
	if s.Stats().Placements != 1 {
		t.Fatal("no placement")
	}
	s.Access(0, 1)
	if s.Stats().Placements != 1 {
		t.Fatal("re-placement without Free")
	}
	s.Free(1)
	s.Access(0, 1)
	if s.Stats().Placements != 2 {
		t.Fatal("Free did not force re-placement")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	s := New(Config{})
	s.Compute(123)
	if s.Now() != 123 {
		t.Fatalf("Now = %d", s.Now())
	}
}
