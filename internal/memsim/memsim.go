// Package memsim is a memory-placement runtime guided by Pythia — the very
// example the paper's introduction opens with: "the first-touch memory
// allocation policy implemented in Linux allocates a memory page on a NUMA
// node close to the first thread that accesses it. It assumes that this
// thread will probably use the memory page in the near future […] However,
// the heuristic may be wrong."
//
// The simulator models a two-socket NUMA machine: threads live on nodes,
// local accesses are cheap, remote accesses cost a multiple. Pages are
// placed on first touch (the Linux heuristic) or — with Pythia — on the node
// of the thread *predicted to dominate the page's future accesses*. The
// access stream itself is what Pythia records: one event per (thread, page)
// access burst.
//
// Time is virtual and deterministic, like the other substrates.
package memsim

import (
	"fmt"

	"repro/pythia"
)

// Config tunes the NUMA model.
type Config struct {
	// Nodes is the number of NUMA nodes (default 2).
	Nodes int
	// LocalNs is the cost of one access burst to a local page.
	LocalNs int64
	// RemoteFactor multiplies LocalNs for remote accesses (default 3).
	RemoteFactor float64
	// Oracle attaches Pythia; nil runs the plain first-touch heuristic.
	Oracle *pythia.Oracle
	// Predictive places pages by predicted future accesses instead of first
	// touch (predict mode only).
	Predictive bool
	// PredictHorizon is how many future accesses the placement decision
	// weighs (default 16).
	PredictHorizon int
}

// Stats summarises a run.
type Stats struct {
	Accesses       int64
	RemoteAccesses int64
	Placements     int64
	Migrations     int64 // re-placements predicted runs performed
}

// System is one simulated NUMA machine driven by a single master goroutine
// (the access stream is the interleaved program order, as a tracing tool
// would see it).
type System struct {
	cfg Config

	vnow      int64
	pageNode  map[int32]int // page -> node, set at placement
	threadOf  map[int32]int // thread -> node (round-robin)
	threadSet []int32

	th   *pythia.Thread
	stat Stats
}

// New creates a system.
func New(cfg Config) *System {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.LocalNs <= 0 {
		cfg.LocalNs = 100
	}
	if cfg.RemoteFactor <= 0 {
		cfg.RemoteFactor = 3
	}
	if cfg.PredictHorizon <= 0 {
		cfg.PredictHorizon = 16
	}
	s := &System{
		cfg:      cfg,
		pageNode: make(map[int32]int),
		threadOf: make(map[int32]int),
	}
	if cfg.Oracle != nil {
		s.th = cfg.Oracle.Thread(0)
	}
	return s
}

// Now returns the virtual clock (ns).
func (s *System) Now() int64 { return s.vnow }

// Stats returns run statistics.
func (s *System) Stats() Stats { return s.stat }

// nodeOf pins threads to nodes round-robin in order of first appearance.
func (s *System) nodeOf(thread int32) int {
	if n, ok := s.threadOf[thread]; ok {
		return n
	}
	n := len(s.threadSet) % s.cfg.Nodes
	s.threadOf[thread] = n
	s.threadSet = append(s.threadSet, thread)
	return n
}

// Access records one access burst of thread to page and charges its cost.
func (s *System) Access(thread, page int32) {
	node := s.nodeOf(thread)
	if s.th != nil {
		s.th.SubmitAt(s.cfg.Oracle.Intern("mem_access", int64(thread), int64(page)), s.vnow)
	}
	s.stat.Accesses++

	placed, ok := s.pageNode[page]
	if !ok {
		placed = s.placePage(thread, page)
	}
	if placed == node {
		s.vnow += s.cfg.LocalNs
	} else {
		s.stat.RemoteAccesses++
		s.vnow += int64(float64(s.cfg.LocalNs) * s.cfg.RemoteFactor)
	}
}

// placePage decides the page's home node: first-touch by default, or the
// node whose threads dominate the oracle's view of the page's near future.
func (s *System) placePage(thread, page int32) int {
	s.stat.Placements++
	node := s.nodeOf(thread) // the first-touch heuristic
	if s.cfg.Predictive && s.th != nil {
		if best, ok := s.predictDominantNode(page); ok {
			if best != node {
				s.stat.Migrations++
			}
			node = best
		}
	}
	s.pageNode[page] = node
	return node
}

// predictDominantNode tallies the predicted upcoming accesses to the page by
// NUMA node.
func (s *System) predictDominantNode(page int32) (int, bool) {
	votes := make([]float64, s.cfg.Nodes)
	found := false
	for _, p := range s.th.PredictSequence(s.cfg.PredictHorizon) {
		name := s.cfg.Oracle.EventName(pythia.ID(p.EventID))
		var th, pg int32
		if n, err := fmt.Sscanf(name, "mem_access:%d:%d", &th, &pg); err != nil || n != 2 || pg != page {
			continue
		}
		votes[s.nodeOf(th)] += p.Probability
		found = true
	}
	if !found {
		return 0, false
	}
	best := 0
	for n := 1; n < len(votes); n++ {
		if votes[n] > votes[best] {
			best = n
		}
	}
	return best, true
}

// Free drops a page (its next access re-places it).
func (s *System) Free(page int32) {
	delete(s.pageNode, page)
}

// Compute charges pure compute time with no memory events.
func (s *System) Compute(ns int64) { s.vnow += ns }
