// Checkpoint journal: crash-safe incremental persistence for PYTHIA-RECORD.
//
// A recording process periodically serialises its in-progress trace set as a
// new *generation* — a complete, self-contained trace file named
// trace.ckpt.<N> inside a journal directory — through the same atomic
// fsync'd Save path as a final trace. Generations are strictly increasing;
// after a successful write the journal prunes all but the last Keep
// generations. Because every generation is written to a temp file, fsynced,
// and renamed into place, a crash at any instant leaves the directory with
// a set of complete previous generations plus at most one ignorable .tmp
// file — a torn write can never destroy an already-committed generation.
//
// Recover scans a journal directory newest-first, skips generations that do
// not load (bad CRC, truncated file, invalid payload), and returns the
// freshest loadable trace set together with a report of what was used and
// what was skipped and why. A recovered trace is marked Truncated on every
// thread — it covers a prefix of the crashed run, exactly like a trace
// frozen by a record budget — and carries Salvaged provenance.
package tracefile

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
)

// GenPrefix is the checkpoint generation file-name prefix inside a journal
// directory: generation N is GenPrefix + strconv.Itoa(N).
const GenPrefix = "trace.ckpt."

// DefaultKeep is the number of generations a journal retains when the
// caller does not choose: the newest plus two fallbacks.
const DefaultKeep = 3

// Journal writes checkpoint generations into a directory with rotation.
// It is not safe for concurrent use; Pythia drives one journal from one
// background checkpoint goroutine.
type Journal struct {
	dir  string
	keep int
	next uint64
}

// OpenJournal opens (creating if needed) a checkpoint journal directory.
// Generation numbering continues after the highest generation already
// present, so a resumed recording never overwrites a previous run's
// checkpoints. keep <= 0 selects DefaultKeep.
func OpenJournal(dir string, keep int) (*Journal, error) {
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("tracefile: opening journal: %w", err)
	}
	gens, err := listGenerations(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(gens); n > 0 {
		next = gens[n-1] + 1
	}
	return &Journal{dir: dir, keep: keep, next: next}, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// NextGeneration returns the generation number the next WriteGeneration
// will use.
func (j *Journal) NextGeneration() uint64 { return j.next }

// GenPath returns the file path of generation gen.
func (j *Journal) GenPath(gen uint64) string {
	return filepath.Join(j.dir, GenPrefix+strconv.FormatUint(gen, 10))
}

// WriteGeneration durably writes ts as the next checkpoint generation and
// prunes generations beyond the keep window. The generation number is
// consumed only on success, so a failed write is retried under the same
// number and can never leave a gap that recovery would misread as data
// loss. ts.Provenance.Generation is set to the generation written (and the
// Salvaged mark cleared — this is a fresh write, not a recovery); lineage
// fields the caller stamped (Kind, Parent, UnixNanos) are preserved, which
// is how the online-learning lifecycle journals promotions and rollbacks.
func (j *Journal) WriteGeneration(ts *model.TraceSet) (uint64, error) {
	gen := j.next
	if ts.Provenance == nil {
		ts.Provenance = &model.Provenance{}
	}
	ts.Provenance.Generation = gen
	ts.Provenance.Salvaged = false
	path := j.GenPath(gen)
	if err := Save(path, ts); err != nil {
		return 0, fmt.Errorf("tracefile: writing checkpoint generation %d: %w", gen, err)
	}
	j.next = gen + 1
	hookAt(CrashJournalWroteGen, path)
	if err := j.rotate(gen); err != nil {
		return gen, err
	}
	hookAt(CrashJournalRotated, path)
	return gen, nil
}

// rotate removes generations older than the keep window ending at newest.
// A failure to prune is surfaced (an undeletable file means the journal
// will grow without bound), but the generation it follows is already
// durable.
func (j *Journal) rotate(newest uint64) error {
	gens, err := listGenerations(j.dir)
	if err != nil {
		return err
	}
	var errs []error
	for _, g := range gens {
		if g+uint64(j.keep) <= newest {
			if err := os.Remove(j.GenPath(g)); err != nil && !errors.Is(err, os.ErrNotExist) {
				errs = append(errs, err)
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("tracefile: pruning checkpoint generations: %w", errors.Join(errs...))
	}
	return nil
}

// listGenerations returns the generation numbers present in dir, ascending.
// Temp files and foreign names are ignored.
func listGenerations(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracefile: scanning journal: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, GenPrefix) || strings.HasSuffix(name, ".tmp") {
			continue
		}
		g, err := strconv.ParseUint(name[len(GenPrefix):], 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, k int) bool { return gens[i] < gens[k] })
	return gens, nil
}

// GenerationStatus describes one checkpoint generation found in a journal
// directory.
type GenerationStatus struct {
	// Generation is the generation number parsed from the file name.
	Generation uint64
	// Path is the generation file.
	Path string
	// Err is why the generation does not load ("" when loadable).
	Err string
	// Events and Threads summarise a loadable generation (events counts
	// include budget-dropped events).
	Events  int64
	Threads int
}

// RecoveryReport describes what Recover did: the generation it returned and
// the newer generations it had to skip, with reasons.
type RecoveryReport struct {
	// Dir is the journal directory scanned.
	Dir string
	// Used is the recovered generation (nil when nothing was recoverable).
	Used *GenerationStatus
	// Skipped lists generations newer than Used that did not load, newest
	// first, each with the reason.
	Skipped []GenerationStatus
}

// ErrNoRecoverableGeneration is wrapped by Recover when a journal directory
// holds no loadable checkpoint generation.
var ErrNoRecoverableGeneration = errors.New("no recoverable checkpoint generation")

// Recover scans a checkpoint journal directory newest-first and returns the
// freshest generation that loads (CRC-verified and semantically valid),
// together with a report of skipped generations. The recovered trace set is
// marked Truncated on every thread — it is a prefix of a crashed recording,
// to be treated exactly like a budget-frozen trace — and its provenance is
// marked Salvaged. When no generation is loadable, the error wraps
// ErrNoRecoverableGeneration and the report still describes every skipped
// generation.
func Recover(dir string) (*model.TraceSet, *RecoveryReport, error) {
	rep := &RecoveryReport{Dir: dir}
	gens, err := listGenerations(dir)
	if err != nil {
		return nil, rep, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		st := loadGeneration(dir, gens[i])
		if st.Err != "" {
			rep.Skipped = append(rep.Skipped, st)
			continue
		}
		ts, err := Load(st.Path)
		if err != nil {
			// The file changed between the probe and the load; treat it
			// like any other unreadable generation.
			st.Err = err.Error()
			rep.Skipped = append(rep.Skipped, st)
			continue
		}
		for _, th := range ts.Threads {
			th.Truncated = true
		}
		if ts.Provenance == nil {
			ts.Provenance = &model.Provenance{Generation: st.Generation}
		}
		ts.Provenance.Salvaged = true
		rep.Used = &st
		return ts, rep, nil
	}
	return nil, rep, fmt.Errorf("tracefile: %w in %s (%d generation(s) scanned)",
		ErrNoRecoverableGeneration, dir, len(gens))
}

// ScanJournal reports the status of every generation in a journal
// directory, ascending — the pythia-inspect view of a journal.
func ScanJournal(dir string) ([]GenerationStatus, error) {
	gens, err := listGenerations(dir)
	if err != nil {
		return nil, err
	}
	out := make([]GenerationStatus, 0, len(gens))
	for _, g := range gens {
		out = append(out, loadGeneration(dir, g))
	}
	return out, nil
}

// loadGeneration probes one generation file: loadable or not, and why.
func loadGeneration(dir string, gen uint64) GenerationStatus {
	st := GenerationStatus{
		Generation: gen,
		Path:       filepath.Join(dir, GenPrefix+strconv.FormatUint(gen, 10)),
	}
	ts, err := Load(st.Path)
	if err != nil {
		st.Err = err.Error()
		return st
	}
	st.Threads = len(ts.Threads)
	st.Events = ts.TotalEvents()
	for _, th := range ts.Threads {
		st.Events += th.Dropped
	}
	return st
}
