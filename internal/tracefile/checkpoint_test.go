package tracefile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestJournalWritesAndRotates(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := makeTraceSet(t)
	for i := 1; i <= 5; i++ {
		gen, err := j.WriteGeneration(ts)
		if err != nil {
			t.Fatalf("WriteGeneration #%d: %v", i, err)
		}
		if gen != uint64(i) {
			t.Fatalf("generation %d, want %d", gen, i)
		}
		if ts.Provenance == nil || ts.Provenance.Generation != uint64(i) {
			t.Fatalf("provenance not stamped on generation %d: %+v", i, ts.Provenance)
		}
	}
	gens, err := listGenerations(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 4, 5}
	if len(gens) != len(want) {
		t.Fatalf("kept generations %v, want %v", gens, want)
	}
	for i, g := range want {
		if gens[i] != g {
			t.Fatalf("kept generations %v, want %v", gens, want)
		}
	}
}

func TestOpenJournalContinuesNumbering(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.NextGeneration() != 1 {
		t.Fatalf("fresh journal next generation %d, want 1", j.NextGeneration())
	}
	ts := makeTraceSet(t)
	if _, err := j.WriteGeneration(ts); err != nil {
		t.Fatal(err)
	}
	if _, err := j.WriteGeneration(ts); err != nil {
		t.Fatal(err)
	}
	// A resumed recording must never overwrite a previous run's checkpoints.
	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j2.NextGeneration() != 3 {
		t.Fatalf("reopened journal next generation %d, want 3", j2.NextGeneration())
	}
}

func TestRecoverUsesNewestGeneration(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := makeTraceSet(t)
	for i := 0; i < 3; i++ {
		if _, err := j.WriteGeneration(ts); err != nil {
			t.Fatal(err)
		}
	}
	got, rep, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Used == nil || rep.Used.Generation != 3 {
		t.Fatalf("recovered generation %+v, want 3", rep.Used)
	}
	if len(rep.Skipped) != 0 {
		t.Fatalf("unexpected skips: %+v", rep.Skipped)
	}
	if got.Provenance == nil || !got.Provenance.Salvaged || got.Provenance.Generation != 3 {
		t.Fatalf("salvaged provenance missing: %+v", got.Provenance)
	}
	for tid, th := range got.Threads {
		if !th.Truncated {
			t.Fatalf("thread %d of a recovered trace not marked truncated", tid)
		}
	}
	if got.TotalEvents() != ts.TotalEvents() {
		t.Fatalf("recovered %d events, want %d", got.TotalEvents(), ts.TotalEvents())
	}
}

func TestRecoverSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := makeTraceSet(t)
	for i := 0; i < 3; i++ {
		if _, err := j.WriteGeneration(ts); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest generation (torn write) and corrupt the middle one
	// (bit rot): recovery must fall back to generation 1 and say why.
	newest := j.GenPath(3)
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	middle := j.GenPath(2)
	raw, err = os.ReadFile(middle)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x55
	if err := os.WriteFile(middle, raw, 0o666); err != nil {
		t.Fatal(err)
	}

	got, rep, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Used == nil || rep.Used.Generation != 1 {
		t.Fatalf("recovered generation %+v, want 1", rep.Used)
	}
	if len(rep.Skipped) != 2 {
		t.Fatalf("skipped %+v, want generations 3 and 2", rep.Skipped)
	}
	if rep.Skipped[0].Generation != 3 || rep.Skipped[1].Generation != 2 {
		t.Fatalf("skipped order %+v, want newest first", rep.Skipped)
	}
	for _, sk := range rep.Skipped {
		if sk.Err == "" {
			t.Fatalf("skip of generation %d carries no reason", sk.Generation)
		}
	}
	if got.TotalEvents() != ts.TotalEvents() {
		t.Fatalf("recovered %d events, want %d", got.TotalEvents(), ts.TotalEvents())
	}
}

func TestRecoverNothingLoadable(t *testing.T) {
	dir := t.TempDir()
	// Empty journal directory.
	_, rep, err := Recover(dir)
	if !errors.Is(err, ErrNoRecoverableGeneration) {
		t.Fatalf("empty dir: err = %v, want ErrNoRecoverableGeneration", err)
	}
	if rep == nil {
		t.Fatal("nil report on error")
	}
	// A journal with only garbage generations.
	if err := os.WriteFile(filepath.Join(dir, GenPrefix+"1"), []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	_, rep, err = Recover(dir)
	if !errors.Is(err, ErrNoRecoverableGeneration) {
		t.Fatalf("garbage-only dir: err = %v, want ErrNoRecoverableGeneration", err)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0].Err == "" {
		t.Fatalf("report %+v, want one skipped generation with a reason", rep.Skipped)
	}
}

func TestJournalScanIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		GenPrefix + "7.tmp", // in-flight temp from a crashed Save
		GenPrefix + "x",     // non-numeric suffix
		"trace.pythia",      // final trace living next to the journal
		".hidden",           //
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, GenPrefix+"9"), 0o777); err != nil {
		t.Fatal(err)
	}
	gens, err := listGenerations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 0 {
		t.Fatalf("foreign files parsed as generations: %v", gens)
	}
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.NextGeneration() != 1 {
		t.Fatalf("next generation %d, want 1", j.NextGeneration())
	}
}

func TestScanJournalReportsStatus(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	ts := makeTraceSet(t)
	for i := 0; i < 2; i++ {
		if _, err := j.WriteGeneration(ts); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt generation 1.
	raw, err := os.ReadFile(j.GenPath(1))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // trailer CRC byte
	if err := os.WriteFile(j.GenPath(1), raw, 0o666); err != nil {
		t.Fatal(err)
	}
	sts, err := ScanJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("scan found %d generations, want 2", len(sts))
	}
	if sts[0].Generation != 1 || sts[0].Err == "" {
		t.Fatalf("generation 1 should be corrupt: %+v", sts[0])
	}
	if sts[1].Generation != 2 || sts[1].Err != "" || sts[1].Threads == 0 || sts[1].Events == 0 {
		t.Fatalf("generation 2 should be loadable: %+v", sts[1])
	}
}

func TestCrashHooksFireInOrder(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	hook := func(point, path string) { fired = append(fired, point) }
	SetCrashHook(hook)
	defer SetCrashHook(nil)
	if _, err := j.WriteGeneration(makeTraceSet(t)); err != nil {
		t.Fatal(err)
	}
	want := []string{
		CrashSaveCreatedTemp, CrashSaveWroteTemp, CrashSaveRenamed,
		CrashJournalWroteGen, CrashJournalRotated,
	}
	if strings.Join(fired, ",") != strings.Join(want, ",") {
		t.Fatalf("hooks fired %v, want %v", fired, want)
	}
}

func TestInspectFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.pythia")
	ts := makeTraceSet(t)
	if err := Save(path, ts); err != nil {
		t.Fatal(err)
	}
	meta, err := InspectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.CRCOK || meta.Version != Version || meta.PayloadBytes <= 0 {
		t.Fatalf("clean file meta: %+v", meta)
	}
	// Corrupt one payload byte: InspectFile must still answer, with CRCOK
	// false — that is its whole point over Load.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	meta, err = InspectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.CRCOK {
		t.Fatal("corrupted payload reported CRCOK")
	}
	if meta.CRCStored == meta.CRCComputed {
		t.Fatal("stored and computed CRC cannot match on a corrupted payload")
	}
}

func TestProvenanceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := makeTraceSet(t)
	gen, err := j.WriteGeneration(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(j.GenPath(gen))
	if err != nil {
		t.Fatal(err)
	}
	if got.Provenance == nil || got.Provenance.Generation != gen || got.Provenance.Salvaged {
		t.Fatalf("loaded provenance %+v, want generation %d, not salvaged", got.Provenance, gen)
	}
}

func TestLineageRoundTrip(t *testing.T) {
	ts := makeTraceSet(t)
	ts.Provenance = &model.Provenance{
		Generation: 9,
		Kind:       model.ProvPromotion,
		Parent:     7,
		UnixNanos:  1234567890,
	}
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p := got.Provenance
	if p == nil || p.Generation != 9 || p.Kind != model.ProvPromotion || p.Parent != 7 || p.UnixNanos != 1234567890 {
		t.Fatalf("lineage did not round-trip: %+v", p)
	}

	// A plain checkpoint with no lineage stays lineage-free after a round
	// trip — the block is only emitted when there is something to say.
	ts.Provenance = &model.Provenance{Generation: 3}
	buf.Reset()
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	if got, err = Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	p = got.Provenance
	if p == nil || p.Generation != 3 || p.Kind != model.ProvCheckpoint || p.Parent != 0 || p.UnixNanos != 0 {
		t.Fatalf("plain checkpoint provenance mutated by round trip: %+v", p)
	}
}

func TestReplicatedFromRoundTrip(t *testing.T) {
	ts := makeTraceSet(t)
	ts.Provenance = &model.Provenance{
		Generation:     4,
		Kind:           model.ProvPromotion,
		Parent:         3,
		ReplicatedFrom: "127.0.0.1:29137",
	}
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p := got.Provenance
	if p == nil || p.ReplicatedFrom != "127.0.0.1:29137" || p.Generation != 4 || p.Kind != model.ProvPromotion {
		t.Fatalf("replication origin did not round-trip: %+v", p)
	}

	// Locally recorded generations stay free of the field.
	ts.Provenance = &model.Provenance{Generation: 5}
	buf.Reset()
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	if got, err = Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Provenance == nil || got.Provenance.ReplicatedFrom != "" {
		t.Fatalf("local generation grew a replication origin: %+v", got.Provenance)
	}
}

func TestWriteGenerationMergesLineage(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := makeTraceSet(t)
	// Caller stamps the lineage; the journal owns the generation number and
	// the salvage flag.
	ts.Provenance = &model.Provenance{
		Generation: 999, // overwritten by the journal
		Salvaged:   true,
		Kind:       model.ProvRollback,
		Parent:     4,
		UnixNanos:  42,
	}
	gen, err := j.WriteGeneration(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(j.GenPath(gen))
	if err != nil {
		t.Fatal(err)
	}
	p := got.Provenance
	if p.Generation != gen || p.Salvaged {
		t.Fatalf("journal did not own generation/salvage: %+v", p)
	}
	if p.Kind != model.ProvRollback || p.Parent != 4 || p.UnixNanos != 42 {
		t.Fatalf("journal did not preserve caller lineage: %+v", p)
	}
}
