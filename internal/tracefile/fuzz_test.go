package tracefile

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// fuzzSeedTraceSet records a small deterministic trace for the fuzz corpus.
func fuzzSeedTraceSet() *model.TraceSet {
	s := core.NewRecordSession()
	a := s.Registry().Intern("alpha")
	b := s.Registry().InternArgs("beta", 3)
	th := s.Thread(0)
	var now int64
	for i := 0; i < 40; i++ {
		th.SubmitAt(a, now)
		now += 10
		th.SubmitAt(b, now)
		now += 30
	}
	ts, err := s.FinishRecord()
	if err != nil {
		panic(err)
	}
	return ts
}

// FuzzRead checks the decoder never panics or hangs on arbitrary input —
// trace files come from disk and must be treated as untrusted.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, fuzzSeedTraceSet()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))
	f.Add([]byte("PYTHIA1\n"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 20 {
		mutated[15] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and hangs are not
		}
		// Anything accepted must be internally consistent.
		if verr := ts.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid trace set: %v", verr)
		}
	})
}

// FuzzImportJSON does the same for the JSON importer.
func FuzzImportJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := ExportJSON(&buf, fuzzSeedTraceSet()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"events":[],"threads":{}}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := ImportJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := ts.Validate(); verr != nil {
			t.Fatalf("ImportJSON accepted an invalid trace set: %v", verr)
		}
	})
}
