package tracefile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/recorder"
)

// fuzzSeedTraceSet records a small deterministic trace for the fuzz corpus.
func fuzzSeedTraceSet() *model.TraceSet {
	reg := events.NewRegistry()
	a := reg.Intern("alpha")
	b := reg.InternArgs("beta", 3)
	rec := recorder.New()
	var now int64
	for i := 0; i < 40; i++ {
		rec.RecordAt(a, now)
		now += 10
		rec.RecordAt(b, now)
		now += 30
	}
	return &model.TraceSet{
		Events:  reg.Names(),
		Threads: map[int32]*model.ThreadTrace{0: rec.Finish()},
	}
}

// FuzzRead checks the decoder never panics or hangs on arbitrary input —
// trace files come from disk and must be treated as untrusted.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, fuzzSeedTraceSet()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))
	f.Add([]byte("PYTHIA1\n"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 20 {
		mutated[15] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and hangs are not
		}
		// Anything accepted must be internally consistent.
		if verr := ts.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid trace set: %v", verr)
		}
	})
}

// FuzzImportJSON does the same for the JSON importer.
func FuzzImportJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := ExportJSON(&buf, fuzzSeedTraceSet()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"events":[],"threads":{}}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := ImportJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := ts.Validate(); verr != nil {
			t.Fatalf("ImportJSON accepted an invalid trace set: %v", verr)
		}
	})
}

// FuzzRecoverJournal throws arbitrary bytes into a journal directory as two
// generations — one fuzzed, one always valid — and checks recovery never
// panics, never hangs, and always finds the valid generation: the salvage
// path must treat a crashed run's directory as fully untrusted input.
func FuzzRecoverJournal(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, fuzzSeedTraceSet()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))
	f.Add([]byte("PYTHIA1\n"))
	f.Add([]byte{})
	torn := append([]byte(nil), valid...)
	if len(torn) > 20 {
		torn[len(torn)-3] ^= 0xff
	}
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, GenPrefix+"1"), valid, 0o666); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, GenPrefix+"2"), data, 0o666); err != nil {
			t.Fatal(err)
		}
		ts, rep, err := Recover(dir)
		if err != nil {
			t.Fatalf("Recover lost the valid generation: %v", err)
		}
		if verr := ts.Validate(); verr != nil {
			t.Fatalf("Recover returned an invalid trace set: %v", verr)
		}
		if ts.Provenance == nil || !ts.Provenance.Salvaged {
			t.Fatalf("recovered trace lacks salvaged provenance: %+v", ts.Provenance)
		}
		if rep.Used == nil {
			t.Fatal("nil Used in a successful recovery report")
		}
		// If the fuzzed generation was skipped, the report must say why.
		if rep.Used.Generation == 1 && (len(rep.Skipped) != 1 || rep.Skipped[0].Err == "") {
			t.Fatalf("generation 2 skipped without a reason: %+v", rep.Skipped)
		}
	})
}
