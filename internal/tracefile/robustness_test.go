package tracefile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/recorder"
)

// truncatedTraceSet records past a tight event cap so the thread trace
// carries the truncation mark.
func truncatedTraceSet(t *testing.T) *core.Session {
	t.Helper()
	s := core.NewRecordSession(recorder.WithoutTimestamps(), recorder.WithMaxEvents(50))
	a := s.Registry().Intern("a")
	b := s.Registry().Intern("b")
	th := s.Thread(0)
	for i := 0; i < 100; i++ {
		th.Submit(a)
		th.Submit(b)
	}
	return s
}

func TestTruncatedFlagRoundTrip(t *testing.T) {
	ts, err := truncatedTraceSet(t).FinishRecord()
	if err != nil {
		t.Fatal(err)
	}
	th := ts.Threads[0]
	if !th.Truncated || th.Dropped != 150 {
		t.Fatalf("precondition: truncated=%v dropped=%d, want true/150", th.Truncated, th.Dropped)
	}

	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gth := got.Threads[0]
	if !gth.Truncated || gth.Dropped != th.Dropped {
		t.Fatalf("binary round trip lost truncation: truncated=%v dropped=%d", gth.Truncated, gth.Dropped)
	}

	var jbuf bytes.Buffer
	if err := ExportJSON(&jbuf, ts); err != nil {
		t.Fatal(err)
	}
	jgot, err := ImportJSON(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	jth := jgot.Threads[0]
	if !jth.Truncated || jth.Dropped != th.Dropped {
		t.Fatalf("JSON round trip lost truncation: truncated=%v dropped=%d", jth.Truncated, jth.Dropped)
	}
}

// TestReadVersion1 hand-writes a version-1 payload (no per-thread flags
// field) and checks the current reader still accepts it — traces recorded
// before the format bump must stay loadable.
func TestReadVersion1(t *testing.T) {
	ts := makeTraceSet(t)

	var raw bytes.Buffer
	raw.Write(Magic[:])
	crc := crc32.NewIEEE()
	payload := &bytes.Buffer{}
	pw := bufio.NewWriter(payload)
	e := &encoder{w: pw}
	e.uvarint(1) // version 1: thread records carry no flags
	e.uvarint(uint64(len(ts.Events)))
	for _, name := range ts.Events {
		e.bytes([]byte(name))
	}
	tids := ts.ThreadIDs()
	e.uvarint(uint64(len(tids)))
	for _, tid := range tids {
		th := ts.Threads[tid]
		e.svarint(int64(tid))
		e.grammar(th.Grammar)
		e.timing(th.Timing)
	}
	if e.err != nil {
		t.Fatal(e.err)
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	crc.Write(payload.Bytes())
	raw.Write(payload.Bytes())
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	raw.Write(sum[:])

	got, err := Read(&raw)
	if err != nil {
		t.Fatalf("reading version-1 file: %v", err)
	}
	if got.TotalEvents() != ts.TotalEvents() {
		t.Fatalf("v1 read lost events: %d, want %d", got.TotalEvents(), ts.TotalEvents())
	}
	for tid, th := range got.Threads {
		if th.Truncated || th.Dropped != 0 {
			t.Fatalf("thread %d: v1 file decoded as truncated", tid)
		}
	}
}

// TestSaveReplacesExistingFile checks the fsync+rename path both creates
// and atomically replaces a trace file, and that no temp file survives.
func TestSaveReplacesExistingFile(t *testing.T) {
	ts, err := truncatedTraceSet(t).FinishRecord()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.pythia")
	for i := 0; i < 2; i++ {
		if err := Save(path, ts); err != nil {
			t.Fatalf("Save #%d: %v", i, err)
		}
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Threads[0].Truncated {
		t.Fatal("reloaded trace lost truncation mark")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "trace.pythia" {
		t.Fatalf("directory not clean after Save: %v", entries)
	}
}
