package tracefile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/recorder"
)

// truncatedTraceSet records past a tight event cap so the thread trace
// carries the truncation mark.
func truncatedTraceSet(t *testing.T) *model.TraceSet {
	t.Helper()
	reg := events.NewRegistry()
	a := reg.Intern("a")
	b := reg.Intern("b")
	rec := recorder.New(recorder.WithoutTimestamps(), recorder.WithMaxEvents(50))
	for i := 0; i < 100; i++ {
		rec.Record(a)
		rec.Record(b)
	}
	return &model.TraceSet{
		Events:  reg.Names(),
		Threads: map[int32]*model.ThreadTrace{0: rec.Finish()},
	}
}

func TestTruncatedFlagRoundTrip(t *testing.T) {
	ts := truncatedTraceSet(t)
	th := ts.Threads[0]
	if !th.Truncated || th.Dropped != 150 {
		t.Fatalf("precondition: truncated=%v dropped=%d, want true/150", th.Truncated, th.Dropped)
	}

	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gth := got.Threads[0]
	if !gth.Truncated || gth.Dropped != th.Dropped {
		t.Fatalf("binary round trip lost truncation: truncated=%v dropped=%d", gth.Truncated, gth.Dropped)
	}

	var jbuf bytes.Buffer
	if err := ExportJSON(&jbuf, ts); err != nil {
		t.Fatal(err)
	}
	jgot, err := ImportJSON(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	jth := jgot.Threads[0]
	if !jth.Truncated || jth.Dropped != th.Dropped {
		t.Fatalf("JSON round trip lost truncation: truncated=%v dropped=%d", jth.Truncated, jth.Dropped)
	}
}

// TestReadVersion1 hand-writes a version-1 payload (no per-thread flags
// field) and checks the current reader still accepts it — traces recorded
// before the format bump must stay loadable.
func TestReadVersion1(t *testing.T) {
	ts := makeTraceSet(t)

	var raw bytes.Buffer
	raw.Write(Magic[:])
	crc := crc32.NewIEEE()
	payload := &bytes.Buffer{}
	pw := bufio.NewWriter(payload)
	e := &encoder{w: pw}
	e.uvarint(1) // version 1: thread records carry no flags
	e.uvarint(uint64(len(ts.Events)))
	for _, name := range ts.Events {
		e.bytes([]byte(name))
	}
	tids := ts.ThreadIDs()
	e.uvarint(uint64(len(tids)))
	for _, tid := range tids {
		th := ts.Threads[tid]
		e.svarint(int64(tid))
		e.grammar(th.Grammar)
		e.timing(th.Timing)
	}
	if e.err != nil {
		t.Fatal(e.err)
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	crc.Write(payload.Bytes())
	raw.Write(payload.Bytes())
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	raw.Write(sum[:])

	got, err := Read(&raw)
	if err != nil {
		t.Fatalf("reading version-1 file: %v", err)
	}
	if got.TotalEvents() != ts.TotalEvents() {
		t.Fatalf("v1 read lost events: %d, want %d", got.TotalEvents(), ts.TotalEvents())
	}
	for tid, th := range got.Threads {
		if th.Truncated || th.Dropped != 0 {
			t.Fatalf("thread %d: v1 file decoded as truncated", tid)
		}
	}
}

// TestReadVersion2 hand-writes a version-2 payload (per-thread flags, no
// provenance trailer) and checks the current reader still accepts it with
// nil Provenance.
func TestReadVersion2(t *testing.T) {
	ts := truncatedTraceSet(t)

	var raw bytes.Buffer
	raw.Write(Magic[:])
	crc := crc32.NewIEEE()
	payload := &bytes.Buffer{}
	pw := bufio.NewWriter(payload)
	e := &encoder{w: pw}
	e.uvarint(2) // version 2: thread flags, nothing after the thread records
	e.uvarint(uint64(len(ts.Events)))
	for _, name := range ts.Events {
		e.bytes([]byte(name))
	}
	tids := ts.ThreadIDs()
	e.uvarint(uint64(len(tids)))
	for _, tid := range tids {
		th := ts.Threads[tid]
		e.svarint(int64(tid))
		e.uvarint(threadFlagTruncated)
		e.uvarint(uint64(th.Dropped))
		e.grammar(th.Grammar)
		e.timing(th.Timing)
	}
	if e.err != nil {
		t.Fatal(e.err)
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	crc.Write(payload.Bytes())
	raw.Write(payload.Bytes())
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	raw.Write(sum[:])

	got, err := Read(&raw)
	if err != nil {
		t.Fatalf("reading version-2 file: %v", err)
	}
	th := got.Threads[0]
	if !th.Truncated || th.Dropped != ts.Threads[0].Dropped {
		t.Fatalf("v2 read lost truncation: truncated=%v dropped=%d", th.Truncated, th.Dropped)
	}
	if got.Provenance != nil {
		t.Fatalf("v2 file decoded with provenance %+v, want nil", got.Provenance)
	}
}

// TestSaveReplacesExistingFile checks the fsync+rename path both creates
// and atomically replaces a trace file, and that no temp file survives.
func TestSaveReplacesExistingFile(t *testing.T) {
	ts := truncatedTraceSet(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.pythia")
	for i := 0; i < 2; i++ {
		if err := Save(path, ts); err != nil {
			t.Fatalf("Save #%d: %v", i, err)
		}
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Threads[0].Truncated {
		t.Fatal("reloaded trace lost truncation mark")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "trace.pythia" {
		t.Fatalf("directory not clean after Save: %v", entries)
	}
}
