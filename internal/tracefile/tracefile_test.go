package tracefile

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/recorder"
)

// makeTraceSet records a small two-thread application with timing.
func makeTraceSet(t *testing.T) *model.TraceSet {
	t.Helper()
	reg := events.NewRegistry()
	a := reg.InternArgs("MPI_Isend", 1)
	b := reg.InternArgs("MPI_Irecv", 1)
	w := reg.Intern("MPI_Wait")
	bar := reg.Intern("MPI_Barrier")
	ts := &model.TraceSet{Threads: make(map[int32]*model.ThreadTrace)}
	for tid := int32(0); tid < 2; tid++ {
		rec := recorder.New()
		var now int64
		for i := 0; i < 100; i++ {
			rec.RecordAt(a, now)
			now += 10
			rec.RecordAt(b, now)
			now += 20
			rec.RecordAt(w, now)
			now += 500
			if i%25 == 24 {
				rec.RecordAt(bar, now)
				now += 2000
			}
		}
		ts.Threads[tid] = rec.Finish()
	}
	ts.Events = reg.Names()
	return ts
}

func TestRoundTrip(t *testing.T) {
	ts := makeTraceSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got.Events, ts.Events) {
		t.Fatalf("event tables differ:\n%v\n%v", got.Events, ts.Events)
	}
	if len(got.Threads) != len(ts.Threads) {
		t.Fatalf("thread count %d, want %d", len(got.Threads), len(ts.Threads))
	}
	for tid, th := range ts.Threads {
		gth, ok := got.Threads[tid]
		if !ok {
			t.Fatalf("thread %d missing after round trip", tid)
		}
		if !reflect.DeepEqual(gth.Grammar.Unfold(), th.Grammar.Unfold()) {
			t.Fatalf("thread %d grammar unfolds differently", tid)
		}
		if gth.Grammar.EventCount != th.Grammar.EventCount {
			t.Fatalf("thread %d event count %d, want %d", tid, gth.Grammar.EventCount, th.Grammar.EventCount)
		}
		if !reflect.DeepEqual(gth.Timing.BySuffix, th.Timing.BySuffix) {
			t.Fatalf("thread %d suffix timing differs", tid)
		}
		if !reflect.DeepEqual(gth.Timing.ByEvent, th.Timing.ByEvent) {
			t.Fatalf("thread %d event timing differs", tid)
		}
		// Derived data must be rebuilt identically.
		for i := range th.Grammar.Rules {
			if gth.Grammar.Rules[i].Occ != th.Grammar.Rules[i].Occ ||
				gth.Grammar.Rules[i].Len != th.Grammar.Rules[i].Len {
				t.Fatalf("thread %d rule %d derived data differs", tid, i)
			}
		}
	}
}

func TestRoundTripPredictsIdentically(t *testing.T) {
	ts := makeTraceSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := predictor.New(loaded.Trace(0), predictor.Config{})
	p.StartAtBeginning()
	seq := ts.Threads[0].Grammar.Unfold()
	for i, e := range seq {
		pred, ok := p.PredictAt(1)
		if !ok || pred.EventID != e {
			t.Fatalf("step %d: predicted (%v,%v), want %d", i, pred.EventID, ok, e)
		}
		p.Observe(e)
	}
}

func TestSaveLoadFile(t *testing.T) {
	ts := makeTraceSet(t)
	path := filepath.Join(t.TempDir(), "app.pythia")
	if err := Save(path, ts); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.TotalEvents() != ts.TotalEvents() {
		t.Fatalf("TotalEvents %d, want %d", got.TotalEvents(), ts.TotalEvents())
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTAPYTH-rest"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedFile(t *testing.T) {
	ts := makeTraceSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{4, 9, len(raw) / 2, len(raw) - 2} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCorruptedPayloadDetected(t *testing.T) {
	ts := makeTraceSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one byte mid-payload. Either decoding fails structurally or the
	// checksum catches it; silence is the only failure.
	corrupted := 0
	for pos := 10; pos < len(raw)-5; pos += 7 {
		mod := append([]byte(nil), raw...)
		mod[pos] ^= 0x55
		if _, err := Read(bytes.NewReader(mod)); err != nil {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no corruption was ever detected")
	}
}

func TestDeterministicOutput(t *testing.T) {
	ts := makeTraceSet(t)
	var a, b bytes.Buffer
	if err := Write(&a, ts); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, ts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialisation is not deterministic")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &model.TraceSet{}); err == nil {
		t.Fatal("empty trace set accepted")
	}
}

func TestCompactness(t *testing.T) {
	// A very repetitive million-event trace must serialise to a tiny file —
	// the whole point of storing the grammar instead of the trace.
	reg := events.NewRegistry()
	a := reg.Intern("stepA")
	b := reg.Intern("stepB")
	rec := recorder.New()
	var now int64
	for i := 0; i < 500000; i++ {
		rec.RecordAt(a, now)
		now += 3
		rec.RecordAt(b, now)
		now += 5
	}
	ts := &model.TraceSet{
		Events:  reg.Names(),
		Threads: map[int32]*model.ThreadTrace{0: rec.Finish()},
	}
	var buf bytes.Buffer
	if err := Write(&buf, ts); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 4096 {
		t.Fatalf("1M-event repetitive trace serialised to %d bytes, want < 4KiB", buf.Len())
	}
}
