package tracefile

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/grammar"
	"repro/internal/model"
)

// JSON export of a trace set for external tooling (plotting scripts,
// diffing, debugging). The JSON form is lossy in one direction only: it can
// be fully converted back to a TraceSet, but the binary format remains the
// canonical on-disk representation.

// JSONTraceSet mirrors model.TraceSet with stable, documented field names.
type JSONTraceSet struct {
	// Events is the descriptor table indexed by event id.
	Events []string `json:"events"`
	// Threads maps thread ids (as decimal strings, for JSON object keys) to
	// their artifacts.
	Threads map[string]JSONThread `json:"threads"`
	// Provenance records checkpoint/recovery origin, absent on traces from
	// a clean end-of-run Finish.
	Provenance *JSONProvenance `json:"provenance,omitempty"`
}

// JSONProvenance mirrors model.Provenance.
type JSONProvenance struct {
	Generation     uint64 `json:"generation"`
	Salvaged       bool   `json:"salvaged,omitempty"`
	ReplicatedFrom string `json:"replicated_from,omitempty"`
}

// JSONThread is one thread's artifacts.
type JSONThread struct {
	EventCount int64      `json:"event_count"`
	Rules      []JSONRule `json:"rules"`
	// Truncated marks a recording frozen by a record-mode resource budget;
	// Dropped counts the events seen after the freeze.
	Truncated bool  `json:"truncated,omitempty"`
	Dropped   int64 `json:"dropped_events,omitempty"`
	// Timing is the per-event mean delta in nanoseconds (context-free view;
	// the full per-context model only exists in the binary format).
	Timing map[string]float64 `json:"timing_mean_ns,omitempty"`
}

// JSONRule is one production: a flat list of runs.
type JSONRule struct {
	Body []JSONRun `json:"body"`
}

// JSONRun is one run of a rule body: a terminal event id or a rule
// reference, with a repetition count.
type JSONRun struct {
	// Event is the terminal event id; valid when Rule is nil.
	Event *int32 `json:"event,omitempty"`
	// Rule is the referenced rule index; valid when Event is nil.
	Rule  *int32 `json:"rule,omitempty"`
	Count uint32 `json:"count"`
}

// ExportJSON writes the trace set as indented JSON.
func ExportJSON(w io.Writer, ts *model.TraceSet) error {
	out := JSONTraceSet{
		Events:  ts.Events,
		Threads: make(map[string]JSONThread, len(ts.Threads)),
	}
	if p := ts.Provenance; p != nil {
		out.Provenance = &JSONProvenance{Generation: p.Generation, Salvaged: p.Salvaged, ReplicatedFrom: p.ReplicatedFrom}
	}
	for _, tid := range ts.ThreadIDs() {
		th := ts.Threads[tid]
		jt := JSONThread{
			EventCount: th.Grammar.EventCount,
			Truncated:  th.Truncated,
			Dropped:    th.Dropped,
		}
		for _, r := range th.Grammar.Rules {
			jr := JSONRule{}
			for _, run := range r.Body {
				out := JSONRun{Count: run.Count}
				if run.Sym.IsTerminal() {
					v := run.Sym.Event()
					out.Event = &v
				} else {
					v := run.Sym.RuleIndex()
					out.Rule = &v
				}
				jr.Body = append(jr.Body, out)
			}
			jt.Rules = append(jt.Rules, jr)
		}
		if th.Timing != nil && len(th.Timing.ByEvent) > 0 {
			jt.Timing = make(map[string]float64, len(th.Timing.ByEvent))
			for id, s := range th.Timing.ByEvent {
				name := "?"
				if int(id) < len(ts.Events) {
					name = ts.Events[id]
				}
				jt.Timing[name] = s.Mean()
			}
		}
		out.Threads[strconv.FormatInt(int64(tid), 10)] = jt
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ImportJSON reads a JSON export back into a TraceSet (without the
// per-context timing model, which JSON does not carry).
func ImportJSON(r io.Reader) (*model.TraceSet, error) {
	var in JSONTraceSet
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	ts := &model.TraceSet{Events: in.Events, Threads: make(map[int32]*model.ThreadTrace)}
	if p := in.Provenance; p != nil {
		ts.Provenance = &model.Provenance{Generation: p.Generation, Salvaged: p.Salvaged, ReplicatedFrom: p.ReplicatedFrom}
	}
	for key, jt := range in.Threads {
		tid64, err := strconv.ParseInt(key, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("tracefile: bad thread key %q: %w", key, err)
		}
		tid := int32(tid64)
		bodies := make([][]grammar.Run, len(jt.Rules))
		for i, jr := range jt.Rules {
			for _, run := range jr.Body {
				var sym grammar.Sym
				if run.Event != nil {
					sym = grammar.Terminal(*run.Event)
				} else if run.Rule != nil {
					sym = grammar.NonTerminal(*run.Rule)
				}
				bodies[i] = append(bodies[i], grammar.Run{Sym: sym, Count: run.Count})
			}
		}
		g, err := grammar.NewFrozen(bodies)
		if err != nil {
			return nil, err
		}
		ts.Threads[tid] = &model.ThreadTrace{Grammar: g, Truncated: jt.Truncated, Dropped: jt.Dropped}
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}
