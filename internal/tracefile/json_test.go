package tracefile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONExportImportRoundTrip(t *testing.T) {
	ts := makeTraceSet(t)
	var buf bytes.Buffer
	if err := ExportJSON(&buf, ts); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	got, err := ImportJSON(&buf)
	if err != nil {
		t.Fatalf("ImportJSON: %v", err)
	}
	if !reflect.DeepEqual(got.Events, ts.Events) {
		t.Fatal("event tables differ after JSON round trip")
	}
	for tid, th := range ts.Threads {
		gth := got.Threads[tid]
		if gth == nil {
			t.Fatalf("thread %d lost", tid)
		}
		if !reflect.DeepEqual(gth.Grammar.Unfold(), th.Grammar.Unfold()) {
			t.Fatalf("thread %d grammar changed", tid)
		}
	}
}

func TestJSONContainsReadableNames(t *testing.T) {
	ts := makeTraceSet(t)
	var buf bytes.Buffer
	if err := ExportJSON(&buf, ts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MPI_Isend:1", "MPI_Barrier", "event_count", "timing_mean_ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON export missing %q", want)
		}
	}
}

func TestImportJSONRejectsGarbage(t *testing.T) {
	if _, err := ImportJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ImportJSON(strings.NewReader(`{"events":["a"],"threads":{"x":{"rules":[]}}}`)); err == nil {
		t.Fatal("bad thread key accepted")
	}
	// A rule referencing a missing rule index must be rejected by frozen
	// validation.
	bad := `{"events":["a"],"threads":{"0":{"event_count":1,"rules":[{"body":[{"rule":7,"count":1}]}]}}}`
	if _, err := ImportJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("dangling rule reference accepted")
	}
}
