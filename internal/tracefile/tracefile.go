// Package tracefile implements Pythia's versioned binary trace file format.
// A trace file stores what PYTHIA-RECORD produces at the end of a reference
// execution (paper section II-A): the shared event descriptor table and,
// per recorded thread, the grammar and the optional timing model. Subsequent
// executions load the file and hand it to PYTHIA-PREDICT.
//
// Layout (all integers are unsigned varints unless noted; signed values use
// zig-zag varints):
//
//	magic   [8]byte  "PYTHIA1\n"
//	version uvarint  (currently 1)
//	payload          (sections below)
//	crc32   4 bytes  little-endian IEEE CRC of the payload
//
// Payload:
//
//	eventCount, then each descriptor as (len, bytes)
//	threadCount, then per thread:
//	  tid      (zig-zag)
//	  flags    uvarint (version >= 2; bit 0: truncated by a record budget);
//	           if truncated: dropped event count (uvarint)
//	  ruleCount, then per rule: runCount, then per run (sym zig-zag, count)
//	  timingFlag (0/1); if 1:
//	    suffixCount, per entry: (keyLen, keyBytes, stat)
//	    eventStatCount, per entry: (eventID zig-zag, stat)
//	  where stat = (count, sum zig-zag, min zig-zag, max zig-zag)
//	provenanceFlag (version >= 3, 0/1); if 1:
//	  generation uvarint
//	  provFlags  uvarint (bit 0: salvaged by recovery; bit 1: lineage follows;
//	             bit 2: replicated-from follows)
//	  if lineage (version >= 4):
//	    kind      uvarint (checkpoint/promotion/rollback)
//	    parent    uvarint (generation this one descends from)
//	    unixNanos svarint (mint time, 0 when unrecorded)
//	  if replicated (version >= 5):
//	    replicatedFrom (len, bytes) — source daemon address
//
// Version 1 files (no per-thread flags), version 2 files (no provenance
// record), version 3 files (no lineage) and version 4 files (no
// replication origin) remain readable.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/grammar"
	"repro/internal/model"
)

// Magic identifies Pythia trace files.
var Magic = [8]byte{'P', 'Y', 'T', 'H', 'I', 'A', '1', '\n'}

// Version is the current format version. Version 2 added per-thread flags
// (truncation marks from record-mode resource budgets); version 3 added the
// optional provenance record (checkpoint generation and salvage mark);
// version 4 added optional generation lineage (kind, parent, mint time) for
// journals written by the online-learning model lifecycle; version 5 added
// the optional replication origin (source daemon address) stamped on
// generations shipped between daemons by cluster migration/replication.
const Version = 5

// threadFlagTruncated marks a thread trace frozen by a record budget.
const threadFlagTruncated = 1

// provFlagSalvaged marks a trace set reconstructed by Recover.
const provFlagSalvaged = 1

// provFlagLineage marks a provenance record carrying lineage fields.
const provFlagLineage = 2

// provFlagReplicated marks a provenance record carrying the address of the
// daemon the generation was replicated from.
const provFlagReplicated = 4

// maxReasonable bounds untrusted length fields while decoding.
const maxReasonable = 1 << 31

// Write serialises the trace set to w.
func Write(w io.Writer, ts *model.TraceSet) error {
	if err := ts.Validate(); err != nil {
		return fmt.Errorf("tracefile: refusing to write invalid trace set: %w", err)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	// The magic is not part of the checksummed payload; reset after it.
	if err := bw.Flush(); err != nil {
		return err
	}
	crc.Reset()

	e := &encoder{w: bw}
	e.uvarint(Version)
	e.uvarint(uint64(len(ts.Events)))
	for _, name := range ts.Events {
		e.bytes([]byte(name))
	}
	tids := ts.ThreadIDs()
	e.uvarint(uint64(len(tids)))
	for _, tid := range tids {
		th := ts.Threads[tid]
		e.svarint(int64(tid))
		var flags uint64
		if th.Truncated {
			flags |= threadFlagTruncated
		}
		e.uvarint(flags)
		if th.Truncated {
			e.uvarint(uint64(th.Dropped))
		}
		e.grammar(th.Grammar)
		e.timing(th.Timing)
	}
	if p := ts.Provenance; p == nil {
		e.uvarint(0)
	} else {
		e.uvarint(1)
		e.uvarint(p.Generation)
		var pf uint64
		if p.Salvaged {
			pf |= provFlagSalvaged
		}
		lineage := p.Kind != model.ProvCheckpoint || p.Parent != 0 || p.UnixNanos != 0
		if lineage {
			pf |= provFlagLineage
		}
		if p.ReplicatedFrom != "" {
			pf |= provFlagReplicated
		}
		e.uvarint(pf)
		if lineage {
			e.uvarint(uint64(p.Kind))
			e.uvarint(p.Parent)
			e.svarint(p.UnixNanos)
		}
		if p.ReplicatedFrom != "" {
			e.bytes([]byte(p.ReplicatedFrom))
		}
	}
	if e.err != nil {
		return e.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return err
}

// Read deserialises a trace set from r, verifying magic, version and
// checksum, and rebuilding all derived grammar data.
func Read(r io.Reader) (*model.TraceSet, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tracefile: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("tracefile: bad magic %q", magic[:])
	}
	crc := crc32.NewIEEE()
	d := &decoder{r: br, crc: crc}

	version := d.uvarint()
	if d.err == nil && (version < 1 || version > Version) {
		return nil, fmt.Errorf("tracefile: unsupported version %d", version)
	}
	nEvents := d.uvarint()
	if nEvents > maxReasonable {
		return nil, fmt.Errorf("tracefile: absurd event count %d", nEvents)
	}
	events := make([]string, 0, nEvents)
	for i := uint64(0); i < nEvents && d.err == nil; i++ {
		events = append(events, string(d.bytes()))
	}
	ts := &model.TraceSet{Events: events, Threads: make(map[int32]*model.ThreadTrace)}
	nThreads := d.uvarint()
	if nThreads > maxReasonable {
		return nil, fmt.Errorf("tracefile: absurd thread count %d", nThreads)
	}
	for i := uint64(0); i < nThreads && d.err == nil; i++ {
		tid := int32(d.svarint())
		th := &model.ThreadTrace{}
		if version >= 2 {
			flags := d.uvarint()
			if flags&threadFlagTruncated != 0 {
				th.Truncated = true
				dropped := d.uvarint()
				if dropped > maxReasonable {
					return nil, fmt.Errorf("tracefile: absurd dropped-event count %d", dropped)
				}
				th.Dropped = int64(dropped)
			}
		}
		g, err := d.grammar()
		if err != nil {
			return nil, err
		}
		th.Grammar = g
		th.Timing = d.timing()
		ts.Threads[tid] = th
	}
	if version >= 3 && d.err == nil {
		if d.uvarint() != 0 {
			p := &model.Provenance{Generation: d.uvarint()}
			pf := d.uvarint()
			p.Salvaged = pf&provFlagSalvaged != 0
			if pf&provFlagLineage != 0 {
				p.Kind = model.ProvKind(d.uvarint())
				p.Parent = d.uvarint()
				p.UnixNanos = d.svarint()
			}
			if version >= 5 && pf&provFlagReplicated != 0 {
				p.ReplicatedFrom = string(d.bytes())
			}
			ts.Provenance = p
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("tracefile: decode: %w", d.err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("tracefile: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != crc.Sum32() {
		return nil, fmt.Errorf("tracefile: checksum mismatch (file %08x, computed %08x)", got, crc.Sum32())
	}
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("tracefile: decoded trace set invalid: %w", err)
	}
	return ts, nil
}

// crashHook, when set, is invoked at named points of the durable-write path
// (see the point constants below). It exists solely for fault injection: the
// chaos suite arms it with a hook that kills the process — optionally
// tearing the file it was handed first — to prove that recovery survives a
// crash at every point. Nil in production; an atomic pointer so test
// processes can arm it without racing the background checkpoint writer.
var crashHook atomic.Pointer[func(point, path string)]

// Crash points passed to the hook installed with SetCrashHook.
const (
	// CrashSaveCreatedTemp: the temp file exists but holds no payload yet.
	CrashSaveCreatedTemp = "save.created-temp"
	// CrashSaveWroteTemp: payload written and fsynced, rename not yet done.
	CrashSaveWroteTemp = "save.wrote-temp"
	// CrashSaveRenamed: the rename to the final name happened.
	CrashSaveRenamed = "save.renamed"
	// CrashJournalWroteGen: a checkpoint generation file is complete.
	CrashJournalWroteGen = "journal.wrote-gen"
	// CrashJournalRotated: old checkpoint generations were pruned.
	CrashJournalRotated = "journal.rotated"
)

// SetCrashHook installs (or, with nil, removes) the fault-injection hook.
// Test-only; see internal/faultinject.CrashSpec.
func SetCrashHook(h func(point, path string)) {
	if h == nil {
		crashHook.Store(nil)
		return
	}
	crashHook.Store(&h)
}

// hookAt fires the crash hook, if armed, at a named point.
func hookAt(point, path string) {
	if h := crashHook.Load(); h != nil {
		(*h)(point, path)
	}
}

// Save writes the trace set to path atomically and durably: the temp file
// is fsynced before the rename (rename alone is atomic but not
// crash-durable — after a power cut the new name could point at missing
// data), and the parent directory is fsynced best-effort after it so the
// rename itself survives a crash.
func Save(path string, ts *model.TraceSet) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	hookAt(CrashSaveCreatedTemp, tmp)
	err = Write(f, ts)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		if rmErr := os.Remove(tmp); rmErr != nil {
			err = errors.Join(err, rmErr)
		}
		return err
	}
	hookAt(CrashSaveWroteTemp, tmp)
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	hookAt(CrashSaveRenamed, path)
	// Durability of the rename requires the directory entry to hit disk.
	// Best-effort: some platforms/filesystems reject fsync on directories.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// FileMeta is the durability-relevant metadata of a trace file, obtainable
// even when the payload does not decode (pythia-inspect reports it for
// damaged files).
type FileMeta struct {
	// Version is the format version claimed by the file header.
	Version uint64
	// PayloadBytes is the checksummed payload size (magic and CRC trailer
	// excluded).
	PayloadBytes int64
	// CRCStored is the checksum in the file trailer; CRCComputed is the
	// checksum of the payload as found on disk. CRCOK reports their match.
	CRCStored, CRCComputed uint32
	CRCOK                  bool
}

// InspectFile reads the durability metadata of a trace file without
// decoding the payload: magic, claimed format version, payload size, and
// whether the CRC trailer matches the payload bytes. It succeeds on files
// whose payload is corrupt (that is its point); it fails only when the file
// is too short to carry the fixed framing or the magic is wrong.
func InspectFile(path string) (FileMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return FileMeta{}, err
	}
	return inspectRaw(data)
}

func inspectRaw(data []byte) (FileMeta, error) {
	var m FileMeta
	if len(data) < len(Magic)+1+4 {
		return m, fmt.Errorf("tracefile: file too short (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != Magic {
		return m, fmt.Errorf("tracefile: bad magic %q", data[:8])
	}
	payload := data[len(Magic) : len(data)-4]
	m.PayloadBytes = int64(len(payload))
	m.CRCStored = binary.LittleEndian.Uint32(data[len(data)-4:])
	m.CRCComputed = crc32.ChecksumIEEE(payload)
	m.CRCOK = m.CRCStored == m.CRCComputed
	version, n := binary.Uvarint(payload)
	if n <= 0 {
		return m, fmt.Errorf("tracefile: unreadable version field")
	}
	m.Version = version
	return m, nil
}

// Load reads a trace set from path.
func Load(path string) (*model.TraceSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ts, err := Read(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		return nil, fmt.Errorf("tracefile: closing %s: %w", path, cerr)
	}
	return ts, err
}

// --- encoder ---------------------------------------------------------------

type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) svarint(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) grammar(f *grammar.Frozen) {
	e.uvarint(uint64(len(f.Rules)))
	for _, r := range f.Rules {
		e.uvarint(uint64(len(r.Body)))
		for _, run := range r.Body {
			e.svarint(int64(run.Sym))
			e.uvarint(uint64(run.Count))
		}
	}
}

func (e *encoder) stat(s model.Stat) {
	e.uvarint(uint64(s.Count))
	e.svarint(s.Sum)
	e.svarint(s.Min)
	e.svarint(s.Max)
}

func (e *encoder) timing(t *model.Timing) {
	if t == nil {
		e.uvarint(0)
		return
	}
	e.uvarint(1)
	// Deterministic output: sort keys.
	keys := make([]string, 0, len(t.BySuffix))
	for k := range t.BySuffix {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.bytes([]byte(k))
		e.stat(t.BySuffix[k])
	}
	ids := make([]int32, 0, len(t.ByEvent))
	for id := range t.ByEvent {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.uvarint(uint64(len(ids)))
	for _, id := range ids {
		e.svarint(int64(id))
		e.stat(t.ByEvent[id])
	}
}

// --- decoder ---------------------------------------------------------------

type decoder struct {
	r   *bufio.Reader
	crc hash.Hash32 // running payload checksum; hash writes never fail
	err error
}

func (d *decoder) readByte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
		return 0
	}
	d.crc.Write([]byte{b})
	return b
}

func (d *decoder) uvarint() uint64 {
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b := d.readByte()
		if d.err != nil {
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
	}
	d.err = fmt.Errorf("varint too long")
	return 0
}

func (d *decoder) svarint() int64 {
	u := d.uvarint()
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxReasonable {
		d.err = fmt.Errorf("absurd byte length %d", n)
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return nil
	}
	d.crc.Write(buf)
	return buf
}

func (d *decoder) grammar() (*grammar.Frozen, error) {
	nRules := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if nRules > maxReasonable {
		return nil, fmt.Errorf("tracefile: absurd rule count %d", nRules)
	}
	bodies := make([][]grammar.Run, nRules)
	for i := range bodies {
		nRuns := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if nRuns > maxReasonable {
			return nil, fmt.Errorf("tracefile: absurd run count %d", nRuns)
		}
		body := make([]grammar.Run, nRuns)
		for j := range body {
			body[j].Sym = grammar.Sym(d.svarint())
			body[j].Count = uint32(d.uvarint())
		}
		bodies[i] = body
	}
	if d.err != nil {
		return nil, d.err
	}
	return grammar.NewFrozen(bodies)
}

func (d *decoder) stat() model.Stat {
	var s model.Stat
	s.Count = int64(d.uvarint())
	s.Sum = d.svarint()
	s.Min = d.svarint()
	s.Max = d.svarint()
	return s
}

func (d *decoder) timing() *model.Timing {
	flag := d.uvarint()
	if d.err != nil || flag == 0 {
		return nil
	}
	t := model.NewTiming()
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := string(d.bytes())
		t.BySuffix[k] = d.stat()
	}
	m := d.uvarint()
	for i := uint64(0); i < m && d.err == nil; i++ {
		id := int32(d.svarint())
		t.ByEvent[id] = d.stat()
	}
	return t
}
