package model

import (
	"testing"
	"testing/quick"

	"repro/internal/grammar"
)

func freeze(seq []int32) *grammar.Frozen {
	g := grammar.New()
	for _, e := range seq {
		g.Append(e)
	}
	return g.Freeze()
}

func TestStatBasics(t *testing.T) {
	var s Stat
	if s.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	s.Add(10)
	s.Add(20)
	s.Add(30)
	if s.Count != 3 || s.Sum != 60 || s.Min != 10 || s.Max != 30 || s.Mean() != 20 {
		t.Fatalf("stat = %+v", s)
	}
}

func TestQuickStatMeanWithinBounds(t *testing.T) {
	f := func(vals []int16) bool {
		var s Stat
		for _, v := range vals {
			s.Add(int64(v))
		}
		if len(vals) == 0 {
			return s.Count == 0
		}
		m := s.Mean()
		return float64(s.Min) <= m && m <= float64(s.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSuffixKeyDepths(t *testing.T) {
	refs := []grammar.UserRef{{Rule: 0, Pos: 1}, {Rule: 2, Pos: 0}, {Rule: 3, Pos: 4}}
	k1 := SuffixKey(refs, 1)
	k2 := SuffixKey(refs, 2)
	k3 := SuffixKey(refs, 3)
	if len(k1) != 8 || len(k2) != 16 || len(k3) != 24 {
		t.Fatalf("key lengths: %d %d %d", len(k1), len(k2), len(k3))
	}
	// Suffix property: a deeper key must end with the shallower one.
	if k2[len(k2)-8:] != k1 {
		t.Fatal("depth-2 key does not extend depth-1 key")
	}
	// Depth beyond the stack clamps.
	if SuffixKey(refs, 10) != k3 {
		t.Fatal("over-deep key not clamped to stack depth")
	}
	// Depth beyond MaxContextDepth clamps.
	long := make([]grammar.UserRef, MaxContextDepth+3)
	if len(SuffixKey(long, MaxContextDepth+3)) != MaxContextDepth*8 {
		t.Fatal("key not clamped to MaxContextDepth")
	}
}

func TestTimingAddPathAndLookup(t *testing.T) {
	tm := NewTiming()
	pathA := []grammar.UserRef{{Rule: 0, Pos: 0}, {Rule: 1, Pos: 2}}
	pathB := []grammar.UserRef{{Rule: 0, Pos: 5}, {Rule: 1, Pos: 2}} // same leaf, different context
	tm.AddPath(pathA, 7, 100)
	tm.AddPath(pathB, 7, 9000)

	if m := tm.MeanForPath(pathA, 7); m != 100 {
		t.Fatalf("context A mean = %v, want 100", m)
	}
	if m := tm.MeanForPath(pathB, 7); m != 9000 {
		t.Fatalf("context B mean = %v, want 9000", m)
	}
	// The shared leaf (depth-1 suffix) blends both.
	leaf := []grammar.UserRef{{Rule: 1, Pos: 2}}
	if m := tm.MeanForPath(leaf, 7); m != 4550 {
		t.Fatalf("leaf mean = %v, want 4550", m)
	}
	// Unknown path falls back to the per-event mean.
	other := []grammar.UserRef{{Rule: 9, Pos: 9}}
	if m := tm.MeanForPath(other, 7); m != 4550 {
		t.Fatalf("event fallback = %v, want 4550", m)
	}
	// Unknown event: zero.
	if m := tm.MeanForPath(other, 8); m != 0 {
		t.Fatalf("unknown event mean = %v, want 0", m)
	}
	// Nil model: zero.
	var nilT *Timing
	if nilT.MeanForPath(pathA, 7) != 0 {
		t.Fatal("nil timing should yield 0")
	}
}

func TestTraceValidate(t *testing.T) {
	f := freeze([]int32{0, 1, 0, 1})
	good := &Trace{Grammar: f, Events: []string{"a", "b"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	missing := &Trace{Grammar: f, Events: []string{"a"}}
	if err := missing.Validate(); err == nil {
		t.Fatal("terminal without descriptor accepted")
	}
	if err := (&Trace{}).Validate(); err == nil {
		t.Fatal("nil grammar accepted")
	}
	badTiming := &Trace{Grammar: f, Events: []string{"a", "b"}, Timing: NewTiming()}
	badTiming.Timing.BySuffix["short"] = Stat{Count: 1}
	if err := badTiming.Validate(); err == nil {
		t.Fatal("malformed timing key accepted")
	}
}

func TestTraceEventName(t *testing.T) {
	tr := &Trace{Events: []string{"x"}}
	if tr.EventName(0) != "x" {
		t.Fatal("EventName broken")
	}
	if tr.EventName(5) == "" || tr.EventName(-1) == "" {
		t.Fatal("out-of-range EventName must render placeholder")
	}
}

func TestTraceSetViews(t *testing.T) {
	f := freeze([]int32{0, 1})
	ts := &TraceSet{
		Events: []string{"a", "b"},
		Threads: map[int32]*ThreadTrace{
			2: {Grammar: f},
			0: {Grammar: f},
		},
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if ids := ts.ThreadIDs(); len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("ThreadIDs = %v", ids)
	}
	if ts.Trace(2) == nil || ts.Trace(7) != nil {
		t.Fatal("Trace lookup broken")
	}
	if ts.TotalEvents() != 4 {
		t.Fatalf("TotalEvents = %d", ts.TotalEvents())
	}
	if ts.TotalRules() == 0 {
		t.Fatal("TotalRules = 0")
	}
	if err := (&TraceSet{}).Validate(); err == nil {
		t.Fatal("empty trace set accepted")
	}
}

func TestStatMergeCommutative(t *testing.T) {
	mk := func(vals ...int64) Stat {
		var s Stat
		for _, v := range vals {
			s.Add(v)
		}
		return s
	}
	a, b := mk(1, 5), mk(3, 9, 2)
	ab := a
	ab.Merge(b)
	ba := b
	ba.Merge(a)
	if ab != ba {
		t.Fatalf("merge not commutative: %+v vs %+v", ab, ba)
	}
	want := mk(1, 5, 3, 9, 2)
	if ab != want {
		t.Fatalf("merge = %+v, want %+v", ab, want)
	}
}
