// Package model defines the artifacts Pythia produces at the end of a
// reference execution and consumes on subsequent executions: the frozen
// grammar, the event descriptor table, and the optional timing model.
// PYTHIA-RECORD builds a Trace, the tracefile package serialises it, and
// PYTHIA-PREDICT navigates it.
package model

import (
	"fmt"
	"sort"

	"repro/internal/grammar"
)

// Stat accumulates a duration distribution (nanoseconds).
type Stat struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// Add folds one observation into the statistic.
func (s *Stat) Add(ns int64) {
	if s.Count == 0 || ns < s.Min {
		s.Min = ns
	}
	if s.Count == 0 || ns > s.Max {
		s.Max = ns
	}
	s.Count++
	s.Sum += ns
}

// Mean returns the average observation, or 0 when empty.
func (s Stat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds other into s.
func (s *Stat) Merge(other Stat) {
	if other.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = other
		return
	}
	if other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// MaxContextDepth is the maximum progress-sequence suffix length (in grammar
// runs) used as a timing context. Deeper suffixes separate more contexts at
// more storage cost; four levels are enough to distinguish the paper's
// Fig. 6 cases ("BAb" vs "Ab") and every workload in the evaluation.
const MaxContextDepth = 4

// SuffixKey encodes the last (up to MaxContextDepth) runs of a progress
// sequence as a compact map key. refs is ordered topmost-first, as
// progress.Position frames are; depth selects the suffix length.
func SuffixKey(refs []grammar.UserRef, depth int) string {
	if depth > len(refs) {
		depth = len(refs)
	}
	if depth > MaxContextDepth {
		depth = MaxContextDepth
	}
	buf := make([]byte, 0, depth*8)
	for _, r := range refs[len(refs)-depth:] {
		buf = append(buf,
			byte(r.Rule), byte(r.Rule>>8), byte(r.Rule>>16), byte(r.Rule>>24),
			byte(r.Pos), byte(r.Pos>>8), byte(r.Pos>>16), byte(r.Pos>>24))
	}
	return string(buf)
}

// Timing is the per-context duration model of paper section II-C: the mean
// elapsed time from the previous event to the event designated by a progress
// sequence. As in the paper's Fig. 6, statistics are kept at every suffix
// granularity of the progress sequence: the full known context gives the
// most specific estimate, shorter suffixes serve as fallbacks when the
// context is only partially known.
type Timing struct {
	// BySuffix keys statistics by SuffixKey of the progress sequence, for
	// every suffix length from 1 to MaxContextDepth.
	BySuffix map[string]Stat
	// ByEvent is the context-free fallback: mean delta before each event id
	// regardless of context.
	ByEvent map[int32]Stat
}

// NewTiming returns an empty timing model.
func NewTiming() *Timing {
	return &Timing{
		BySuffix: make(map[string]Stat),
		ByEvent:  make(map[int32]Stat),
	}
}

// AddPath records one observation for the event with the given progress
// sequence (refs topmost-first, last entry is the terminal run).
func (t *Timing) AddPath(refs []grammar.UserRef, eventID int32, ns int64) {
	maxDepth := len(refs)
	if maxDepth > MaxContextDepth {
		maxDepth = MaxContextDepth
	}
	for d := 1; d <= maxDepth; d++ {
		k := SuffixKey(refs, d)
		s := t.BySuffix[k]
		s.Add(ns)
		t.BySuffix[k] = s
	}
	e := t.ByEvent[eventID]
	e.Add(ns)
	t.ByEvent[eventID] = e
}

// MeanForPath returns the expected duration preceding the event at the given
// progress sequence, using the deepest recorded suffix and falling back to
// shallower suffixes, the per-event mean, and finally zero.
func (t *Timing) MeanForPath(refs []grammar.UserRef, eventID int32) float64 {
	if t == nil {
		return 0
	}
	maxDepth := len(refs)
	if maxDepth > MaxContextDepth {
		maxDepth = MaxContextDepth
	}
	for d := maxDepth; d >= 1; d-- {
		if s, ok := t.BySuffix[SuffixKey(refs, d)]; ok && s.Count > 0 {
			return s.Mean()
		}
	}
	if s, ok := t.ByEvent[eventID]; ok && s.Count > 0 {
		return s.Mean()
	}
	return 0
}

// Trace bundles everything a prediction run needs about a reference
// execution of one thread.
type Trace struct {
	// Grammar is the frozen reduction of the reference event stream.
	Grammar *grammar.Frozen
	// Events maps event ids to descriptors ("MPI_Send:3").
	Events []string
	// Timing is the optional duration model (nil when timestamps were not
	// recorded).
	Timing *Timing
}

// Validate checks cross-consistency of the trace artifacts.
func (tr *Trace) Validate() error {
	if tr.Grammar == nil {
		return fmt.Errorf("trace: missing grammar")
	}
	if err := tr.Grammar.Validate(); err != nil {
		return err
	}
	for _, id := range tr.Grammar.TerminalIDs() {
		if int(id) >= len(tr.Events) || id < 0 {
			return fmt.Errorf("trace: terminal %d has no descriptor (table size %d)", id, len(tr.Events))
		}
	}
	if tr.Timing != nil {
		for k := range tr.Timing.BySuffix {
			if len(k)%8 != 0 || len(k) == 0 || len(k) > MaxContextDepth*8 {
				return fmt.Errorf("trace: malformed timing suffix key (%d bytes)", len(k))
			}
		}
	}
	return nil
}

// EventName resolves an event id to its descriptor.
func (tr *Trace) EventName(id int32) string {
	if id < 0 || int(id) >= len(tr.Events) {
		return fmt.Sprintf("?event%d", id)
	}
	return tr.Events[id]
}

// ThreadTrace is the per-thread artifact pair inside a TraceSet.
type ThreadTrace struct {
	Grammar *grammar.Frozen
	Timing  *Timing
	// Truncated marks a recording degraded by a resource budget breach: the
	// grammar covers only a prefix of the thread's event stream. Predictions
	// from a truncated trace are valid for that prefix.
	Truncated bool
	// Dropped counts the events seen after the budget froze the grammar
	// (0 when not truncated).
	Dropped int64
}

// ProvKind classifies how a journaled generation was minted: a periodic
// checkpoint of an in-progress recording, a model promotion (the online
// learner's shadow out-predicted the serving model), or a rollback (the
// promoted model regressed and the previous one was re-minted).
type ProvKind uint8

const (
	// ProvCheckpoint is a periodic crash-safety checkpoint (or the initial
	// serving generation an online learner seeds its journal with).
	ProvCheckpoint ProvKind = iota
	// ProvPromotion marks a generation minted by promoting a shadow model
	// over the serving model.
	ProvPromotion
	// ProvRollback marks a generation minted by rolling back a regressed
	// promotion: its content is the pre-promotion model, re-minted under a
	// fresh number so generation history stays monotonic.
	ProvRollback
)

// String renders the provenance kind.
func (k ProvKind) String() string {
	switch k {
	case ProvCheckpoint:
		return "checkpoint"
	case ProvPromotion:
		return "promotion"
	case ProvRollback:
		return "rollback"
	default:
		return fmt.Sprintf("ProvKind(%d)", uint8(k))
	}
}

// Provenance records how a trace set came to exist when it was produced by
// the crash-safe recording pipeline rather than a clean FinishRecord: the
// checkpoint generation it was written as (or salvaged from) and whether it
// is a salvage. Generations minted by the online-learning lifecycle carry
// lineage on top: what kind of transition minted them, which generation
// they descend from, and when. Nil on traces saved by a normal end-of-run
// Finish.
type Provenance struct {
	// Generation is the checkpoint journal generation number.
	Generation uint64
	// Salvaged is true when the trace set was reconstructed from a
	// checkpoint journal by tracefile.Recover after a crash, rather than
	// written by the recording process itself.
	Salvaged bool
	// Kind is the transition that minted this generation (ProvCheckpoint
	// for plain crash-safety checkpoints).
	Kind ProvKind
	// Parent is the generation number this one descends from: the serving
	// generation at promotion time, or the regressed generation a rollback
	// replaced. 0 for root generations and plain checkpoints.
	Parent uint64
	// UnixNanos is when the generation was minted (0 when not recorded).
	UnixNanos int64
	// ReplicatedFrom is the address of the daemon this generation was
	// copied from by cluster migration/replication, "" for generations
	// recorded locally. It distinguishes a shipped model from a locally
	// minted one in lineage listings.
	ReplicatedFrom string
}

// TraceSet is the content of one Pythia trace file: one grammar (and
// optional timing model) per recorded thread, sharing a single event
// descriptor table. The paper records one grammar per thread (section
// III-C1).
type TraceSet struct {
	// Events maps event ids to descriptors, shared by all threads.
	Events []string
	// Threads maps a stable thread identifier (e.g. MPI rank, OpenMP thread
	// number) to its artifacts.
	Threads map[int32]*ThreadTrace
	// Provenance is the checkpoint/recovery origin of this trace set, nil
	// for traces produced by a normal end-of-run Finish.
	Provenance *Provenance
}

// Trace returns the single-thread view for tid, or nil when absent.
func (ts *TraceSet) Trace(tid int32) *Trace {
	th, ok := ts.Threads[tid]
	if !ok {
		return nil
	}
	return &Trace{Grammar: th.Grammar, Events: ts.Events, Timing: th.Timing}
}

// ThreadIDs returns the recorded thread identifiers in ascending order.
func (ts *TraceSet) ThreadIDs() []int32 {
	out := make([]int32, 0, len(ts.Threads))
	for tid := range ts.Threads {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks every thread's artifacts.
func (ts *TraceSet) Validate() error {
	if len(ts.Threads) == 0 {
		return fmt.Errorf("trace set: no threads")
	}
	for tid := range ts.Threads {
		if err := ts.Trace(tid).Validate(); err != nil {
			return fmt.Errorf("thread %d: %w", tid, err)
		}
	}
	return nil
}

// TotalEvents returns the number of events recorded across all threads.
func (ts *TraceSet) TotalEvents() int64 {
	var n int64
	for _, th := range ts.Threads {
		n += th.Grammar.EventCount
	}
	return n
}

// TotalRules returns the number of grammar rules across all threads.
func (ts *TraceSet) TotalRules() int64 {
	var n int64
	for _, th := range ts.Threads {
		n += int64(len(th.Grammar.Rules))
	}
	return n
}
