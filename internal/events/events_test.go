package events

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestInternDenseIDs(t *testing.T) {
	r := NewRegistry()
	a := r.Intern("alpha")
	b := r.Intern("beta")
	if a != 0 || b != 1 {
		t.Fatalf("ids not dense: %d %d", a, b)
	}
	if r.Intern("alpha") != a {
		t.Fatal("re-interning changed the id")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestInternArgsDiscriminates(t *testing.T) {
	r := NewRegistry()
	s3 := r.InternArgs("MPI_Send", 3)
	s5 := r.InternArgs("MPI_Send", 5)
	plain := r.Intern("MPI_Send")
	if s3 == s5 || s3 == plain || s5 == plain {
		t.Fatalf("payloads not discriminated: %d %d %d", s3, s5, plain)
	}
	if r.Name(s3) != "MPI_Send:3" {
		t.Fatalf("Name = %q", r.Name(s3))
	}
	if r.BaseName(s3) != "MPI_Send" {
		t.Fatalf("BaseName = %q", r.BaseName(s3))
	}
	multi := r.InternArgs("MPI_Reduce", 2, 7)
	if r.Name(multi) != "MPI_Reduce:2:7" {
		t.Fatalf("multi-arg Name = %q", r.Name(multi))
	}
}

func TestLookup(t *testing.T) {
	r := NewRegistry()
	id := r.InternArgs("x", 1)
	if got := r.Lookup("x", 1); got != id {
		t.Fatalf("Lookup = %d, want %d", got, id)
	}
	if r.Lookup("x", 2) != Invalid {
		t.Fatal("Lookup invented an id")
	}
	if r.Lookup("y") != Invalid {
		t.Fatal("Lookup invented an id for unknown name")
	}
}

func TestNameUnknown(t *testing.T) {
	r := NewRegistry()
	if r.Name(42) == "" || r.Name(-1) == "" {
		t.Fatal("unknown ids must render a placeholder")
	}
}

func TestFromNamesRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Intern("a")
	r.InternArgs("b", 9)
	r.Intern("c")
	r2, err := FromNames(r.Names())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Lookup("b", 9) != r.Lookup("b", 9) {
		t.Fatal("ids changed across FromNames")
	}
	if r2.Len() != r.Len() {
		t.Fatal("length changed")
	}
}

func TestFromNamesRejectsBadTables(t *testing.T) {
	if _, err := FromNames([]string{"a", ""}); err == nil {
		t.Fatal("empty descriptor accepted")
	}
	if _, err := FromNames([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate descriptor accepted")
	}
}

func TestConcurrentInterning(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 8
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ids[w] = append(ids[w], r.InternArgs("evt", int64(i%50)))
			}
		}(w)
	}
	wg.Wait()
	// All workers must agree on every descriptor's id.
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d saw id %d for event %d, worker 0 saw %d",
					w, ids[w][i], i, ids[0][i])
			}
		}
	}
	if r.Len() != 50 {
		t.Fatalf("Len = %d, want 50", r.Len())
	}
}

func TestQuickInternStable(t *testing.T) {
	r := NewRegistry()
	f := func(name string, arg int64) bool {
		if name == "" {
			return true
		}
		a := r.InternArgs(name, arg)
		b := r.InternArgs(name, arg)
		return a == b && r.Lookup(name, arg) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortedNames(t *testing.T) {
	r := NewRegistry()
	r.Intern("zeta")
	r.Intern("alpha")
	got := r.SortedNames()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("SortedNames = %v", got)
	}
}

func TestBaseNameWithoutPayload(t *testing.T) {
	r := NewRegistry()
	id := r.Intern("plain")
	if r.BaseName(id) != "plain" {
		t.Fatalf("BaseName = %q", r.BaseName(id))
	}
}

func BenchmarkInternHit(b *testing.B) {
	r := NewRegistry()
	r.InternArgs("MPI_Send", 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.InternArgs("MPI_Send", 3)
	}
}

func ExampleRegistry() {
	r := NewRegistry()
	send := r.InternArgs("MPI_Send", 3)
	fmt.Println(send, r.Name(send), r.BaseName(send))
	// Output: 0 MPI_Send:3 MPI_Send
}
