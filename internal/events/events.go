// Package events defines Pythia's event model: the key points a runtime
// system notifies the oracle about (paper section II-A). An event is an
// integer identifying the key point — e.g. the entry of MPI_Send — plus
// optional discriminating payload such as the destination rank or the
// reduction operation. Pythia interns each distinct (name, payload)
// combination into a dense terminal id so that the grammar engine works on
// plain integers.
package events

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ID is a dense, non-negative event identifier; it doubles as the terminal
// symbol value in the grammar.
type ID int32

// Invalid is returned by lookups that find nothing.
const Invalid ID = -1

// Registry interns event descriptors into dense IDs and resolves them back
// to human-readable names. It is safe for concurrent use: runtimes intern
// events from many threads at once.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]ID
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]ID)}
}

// Intern returns the ID for the key point name, creating it on first use.
func (r *Registry) Intern(name string) ID {
	return r.internKey(name)
}

// InternArgs returns the ID for the key point name discriminated by the
// given payload values (e.g. InternArgs("MPI_Send", dest) gives a distinct
// event per destination rank, as the paper's MPI runtime does).
func (r *Registry) InternArgs(name string, args ...int64) ID {
	if len(args) == 0 {
		return r.internKey(name)
	}
	var b strings.Builder
	b.WriteString(name)
	for _, a := range args {
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(a, 10))
	}
	return r.internKey(b.String())
}

func (r *Registry) internKey(key string) ID {
	r.mu.RLock()
	id, ok := r.byKey[key]
	r.mu.RUnlock()
	if ok {
		return id
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byKey[key]; ok {
		return id
	}
	id = ID(len(r.names))
	r.byKey[key] = id
	r.names = append(r.names, key)
	return id
}

// Lookup returns the ID of an already-interned descriptor, or Invalid.
func (r *Registry) Lookup(name string, args ...int64) ID {
	key := name
	if len(args) > 0 {
		var b strings.Builder
		b.WriteString(name)
		for _, a := range args {
			b.WriteByte(':')
			b.WriteString(strconv.FormatInt(a, 10))
		}
		key = b.String()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id, ok := r.byKey[key]; ok {
		return id
	}
	return Invalid
}

// Name returns the full descriptor of id ("MPI_Send:3"), or a placeholder
// for unknown ids.
func (r *Registry) Name(id ID) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id < 0 || int(id) >= len(r.names) {
		return fmt.Sprintf("?event%d", int32(id))
	}
	return r.names[id]
}

// BaseName returns the key point name of id without its payload suffix
// ("MPI_Send:3" -> "MPI_Send").
func (r *Registry) BaseName(id ID) string {
	n := r.Name(id)
	if i := strings.IndexByte(n, ':'); i >= 0 {
		return n[:i]
	}
	return n
}

// Len returns the number of interned events.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Names returns a copy of the descriptor table indexed by ID.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// FromNames rebuilds a registry from a descriptor table (trace file load).
func FromNames(names []string) (*Registry, error) {
	r := NewRegistry()
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("events: empty descriptor at id %d", i)
		}
		if _, dup := r.byKey[n]; dup {
			return nil, fmt.Errorf("events: duplicate descriptor %q", n)
		}
		r.byKey[n] = ID(i)
		r.names = append(r.names, n)
	}
	return r, nil
}

// SortedNames returns the descriptors in lexical order (for stable dumps).
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}
