package vet

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrorHygiene forbids discarded error returns outside _test.go files (not
// parsed at all) and examples/: neither `_ = f()` / `n, _ := f()` blanking
// an error value nor bare call statements (including defers) whose result
// set contains an error.
//
// A small allowlist covers calls whose error is structurally dead: the fmt
// print family writing to stdout/stderr, and writers documented to never
// fail (strings.Builder, bytes.Buffer).
var ErrorHygiene = &Analyzer{
	Name: "error-hygiene",
	Doc:  "no discarded error returns outside tests and examples",
	Run:  runErrorHygiene,
}

func runErrorHygiene(pass *Pass) {
	if strings.Contains(pass.Pkg.Path, "/examples/") || strings.HasSuffix(pass.Pkg.Path, "/examples") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkBareCall(pass, n.X)
			case *ast.DeferStmt:
				checkBareCall(pass, n.Call)
			case *ast.GoStmt:
				checkBareCall(pass, n.Call)
			case *ast.AssignStmt:
				checkBlankedErrors(pass, n)
			}
			return true
		})
	}
}

// checkBareCall flags an expression-statement call that returns an error.
func checkBareCall(pass *Pass, e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	if !typeCarriesError(tv.Type) {
		return
	}
	if allowlisted(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "result of %s contains an error that is discarded", calleeName(pass, call))
}

// checkBlankedErrors flags `_` assignments whose corresponding value is an
// error.
func checkBlankedErrors(pass *Pass, as *ast.AssignStmt) {
	blankAt := func(i int) (ast.Expr, bool) {
		if i >= len(as.Lhs) {
			return nil, false
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			return nil, false
		}
		return as.Lhs[i], true
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// n, _ := f() — component types come from the call's tuple.
		tv, ok := pass.Pkg.Info.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return
		}
		if call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); isCall && allowlisted(pass, call) {
			return
		}
		for i := 0; i < tuple.Len() && i < len(as.Lhs); i++ {
			if lhs, blank := blankAt(i); blank && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s assigned to _", pass.ExprString(as.Rhs[0]))
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		lhs, blank := blankAt(i)
		if !blank {
			continue
		}
		tv, ok := pass.Pkg.Info.Types[rhs]
		if !ok || tv.Type == nil {
			continue
		}
		if isErrorType(tv.Type) {
			pass.Reportf(lhs.Pos(), "error value %s assigned to _", pass.ExprString(rhs))
		}
	}
}

// typeCarriesError reports whether t is error or a tuple containing one.
func typeCarriesError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// allowlisted reports whether the call's error is structurally dead:
//   - fmt.Print/Printf/Println (stdout never meaningfully fails for a CLI);
//   - fmt.Fprint* writing directly to os.Stdout or os.Stderr;
//   - methods on *strings.Builder and *bytes.Buffer (documented to never
//     return a non-nil error).
func allowlisted(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	info := pass.Pkg.Info
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "fmt":
				switch sel.Sel.Name {
				case "Print", "Printf", "Println":
					return true
				case "Fprint", "Fprintf", "Fprintln":
					return len(call.Args) > 0 &&
						(isStdStream(info, call.Args[0]) || isSafeWriter(info, call.Args[0]))
				}
			}
			return false
		}
	}
	// Method call: check the receiver's type.
	return isSafeWriter(info, sel.X)
}

// isSafeWriter reports whether e's static type is *strings.Builder,
// *bytes.Buffer or a hash.Hash variant — writers documented to never return
// a non-nil error.
func isSafeWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
		case "strings.Builder", "bytes.Buffer", "hash.Hash", "hash.Hash32", "hash.Hash64":
			return true
		}
	}
	return false
}

// isStdStream reports whether e is the selector os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os" &&
		(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// calleeName renders the called function for messages.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	return pass.ExprString(call.Fun)
}
