// Package vet implements pythia-vet, a repo-specific static-analysis pass
// over the Pythia code base. The analyzers mechanically enforce the
// correctness properties the oracle depends on — an allocation-lean hot path,
// disciplined lock usage around event submission, a strict panic policy in
// library code and no silently discarded errors — instead of trusting code
// review to catch regressions.
//
// The tool is built exclusively on the standard library (go/ast, go/parser,
// go/token, go/types): see LoadModule for how the module is parsed and
// type-checked without golang.org/x/tools.
package vet

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the finding.
	Message string
}

// Format renders the diagnostic as "file:line: [analyzer] message" with the
// file path relative to root (analysis output must be stable across
// checkouts for the baseline to work).
func (d Diagnostic) Format(root string) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d: [%s] %s", file, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass is the per-package analysis context handed to each analyzer.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Facts is the module-wide shared state (call graph, cached
	// module-level computations). All passes of one RunAnalyzers call
	// share one ModuleFacts, so the call graph is built at most once.
	Facts *ModuleFacts
	// report appends a diagnostic.
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ExprString renders an expression compactly (for messages and for matching
// lock receivers / slice destinations by spelling).
func (p *Pass) ExprString(e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, p.Pkg.Fset, e); err != nil {
		return "?"
	}
	return b.String()
}

// Analyzer is one named check run over every package.
type Analyzer struct {
	// Name appears in diagnostics as [name].
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyses one package, reporting through pass.Reportf.
	Run func(pass *Pass)
}

// Analyzers returns the full pythia-vet analyzer set in reporting order.
// The first five are the original per-function syntax checks; the last
// four sit on the shared call-graph/value-flow foundation (callgraph.go,
// flow.go) and target the PR 5 review bug classes.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotpathAlloc,
		LockDiscipline,
		PanicPolicy,
		ErrorHygiene,
		Containment,
		UntrustedSize,
		AtomicMix,
		GoroutineLifecycle,
		LockOrder,
	}
}

// SelectAnalyzers resolves a comma-separated analyzer name list against
// the registry, preserving registry order. An empty list selects all.
func SelectAnalyzers(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("vet: unknown analyzer(s): %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// RunAnalyzers applies every analyzer to every package of the module and
// returns the findings sorted by file, line and analyzer.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	facts := NewModuleFacts(m)
	for _, pkg := range m.Packages {
		for _, a := range analyzers {
			name := a.Name
			pass := &Pass{
				Pkg:   pkg,
				Facts: facts,
				report: func(d Diagnostic) {
					d.Analyzer = name
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// funcDecls yields every function declaration of the package together with
// its enclosing file.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// hasAnnotation reports whether the doc comment carries the given
// "pythia:<name>" marker line.
func hasAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "pythia:"+name || strings.HasPrefix(text, "pythia:"+name+" ") {
			return true
		}
	}
	return false
}

// isLibraryPackage reports whether the package is library code: everything
// except commands and examples. The panic policy applies only here.
func isLibraryPackage(m string) bool {
	return !strings.Contains(m, "/cmd/") && !strings.Contains(m, "/examples/") &&
		!strings.HasSuffix(m, "/cmd") && !strings.HasSuffix(m, "/examples")
}
