package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLifecycle requires every `go` statement in library packages to
// be tied to a lifecycle mechanism the spawner can observe:
//
//   - a sync.WaitGroup: the goroutine calls Done and the spawning function
//     calls Add;
//   - a quit/stop signal: the goroutine receives from a channel (directly,
//     in a select, or by ranging over its work channel);
//   - a join channel: the goroutine closes or sends on a channel that the
//     spawning function receives from (the drain handshake pattern).
//
// Anything else is an untracked goroutine — the bug class behind the PR 5
// drain leak, where a connection goroutine outlived Close because nothing
// joined it. When the callee is a named function its body is resolved
// through the call graph and checked the same way; a goroutine whose body
// cannot be seen statically (a function value) is flagged.
//
// Deliberately detached goroutines carry a "pythia:detached" annotation —
// on the line above the `go` statement or in the enclosing function's doc
// comment — with a justification.
var GoroutineLifecycle = &Analyzer{
	Name: "goroutine-lifecycle",
	Doc:  "library goroutines must be joined, signalled, or annotated pythia:detached",
	Run:  runGoroutineLifecycle,
}

func runGoroutineLifecycle(pass *Pass) {
	if !isLibraryPackage(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasAnnotation(fd.Doc, "detached") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if detachedAt(pass.Pkg, file, gs) || goroutineTied(pass, fd, gs) {
					return true
				}
				pass.Reportf(gs.Pos(),
					"goroutine is not tied to a WaitGroup, a quit/stop channel, or a join channel the spawner waits on (annotate pythia:detached with a justification if the leak is deliberate)")
				return true
			})
			checkRetryLoops(pass, fd)
		}
	}
}

// checkRetryLoops flags unjittered, unbounded retry loops: an uncounted
// `for` (no init/post — `for {}` or `for cond {}`) whose body sleeps a
// compile-time constant duration and never touches a channel. Such a loop
// retries forever in lockstep — it cannot be told to stop (no quit/ctx
// select) and a fleet of them hammers the contended resource at the exact
// same cadence (no backoff, no jitter). A computed Sleep argument is taken
// as backoff (transport.Park's capped exponential delay is the house
// pattern); a select or channel receive anywhere in the loop is taken as a
// quit check. Counted loops are bounded retries and stay legal.
func checkRetryLoops(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Init != nil || loop.Post != nil {
			return true
		}
		if !sleepsConstant(pass.Pkg, loop.Body) || receivesFromChannel(pass.Pkg, loop.Body) {
			return true
		}
		pass.Reportf(loop.Pos(),
			"unbounded retry loop sleeps a constant interval with no quit/ctx check (add jittered backoff and select on a done channel, or bound the attempts)")
		return true
	})
}

// sleepsConstant reports a time.Sleep call in body whose argument is a
// compile-time constant — the signature of a fixed-cadence retry, as
// opposed to a computed backoff delay.
func sleepsConstant(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sleep" {
			return !found
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return !found
		}
		if tv, typed := pkg.Info.Types[call.Args[0]]; typed && tv.Value != nil {
			found = true
		}
		return !found
	})
	return found
}

// detachedAt reports a "pythia:detached" comment block ending on the line
// just above the go statement (or trailing on the same line). The
// annotation may sit anywhere in the block, so a multi-line justification
// still counts.
func detachedAt(pkg *Package, file *ast.File, gs *ast.GoStmt) bool {
	goLine := pkg.Fset.Position(gs.Pos()).Line
	for _, cg := range file.Comments {
		if !hasAnnotation(cg, "detached") {
			continue
		}
		line := pkg.Fset.Position(cg.End()).Line
		if line == goLine || line == goLine-1 {
			return true
		}
	}
	return false
}

// goroutineTied reports whether the goroutine spawned by gs is tied to a
// lifecycle mechanism visible from fd.
func goroutineTied(pass *Pass, fd *ast.FuncDecl, gs *ast.GoStmt) bool {
	var body *ast.BlockStmt
	bodyPkg := pass.Pkg
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		_ = fun
		if callee := StaticCallee(pass.Pkg.Info, gs.Call); callee != nil {
			if node := pass.Facts.Graph().NodeOf(callee); node != nil {
				body = node.Decl.Body
				bodyPkg = node.Pkg
			}
		}
	}
	if body == nil {
		return false // body invisible: require the annotation
	}
	if receivesFromChannel(bodyPkg, body) {
		return true
	}
	if callsWaitGroupDone(bodyPkg, body) &&
		(callsWaitGroupAdd(pass.Pkg, fd.Body) || callsWaitGroupAdd(bodyPkg, body)) {
		return true
	}
	return signalsEnclosing(pass, bodyPkg, body, fd, gs)
}

// receivesFromChannel reports a channel receive anywhere in body: a <-ch
// expression, a select statement, or ranging over a channel. Any of these
// gives the spawner a way to signal or starve the goroutine.
func receivesFromChannel(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := pkg.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func callsWaitGroupDone(pkg *Package, body *ast.BlockStmt) bool {
	return callsWaitGroupMethod(pkg, body, "Done")
}

func callsWaitGroupAdd(pkg *Package, body *ast.BlockStmt) bool {
	return callsWaitGroupMethod(pkg, body, "Add")
}

func callsWaitGroupMethod(pkg *Package, body *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if ok && sel.Sel.Name == method && isWaitGroup(pkg.Info.Types[sel.X].Type) {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroup reports sync.WaitGroup (possibly behind a pointer).
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// signalsEnclosing reports that the goroutine closes or sends on a channel
// the enclosing function receives from — the join-handshake pattern
// (`done := make(chan ...); go func() { ...; close(done) }(); <-done`).
func signalsEnclosing(pass *Pass, bodyPkg *Package, body *ast.BlockStmt, fd *ast.FuncDecl, gs *ast.GoStmt) bool {
	signalled := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			signalled[exprString(bodyPkg, n.Chan)] = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, builtin := bodyPkg.Info.Uses[id].(*types.Builtin); builtin {
					signalled[exprString(bodyPkg, n.Args[0])] = true
				}
			}
		}
		return true
	})
	if len(signalled) == 0 {
		return false
	}
	tied := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == gs {
			return false // the goroutine's own receives don't join it
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && signalled[exprString(pass.Pkg, n.X)] {
				tied = true
			}
		case *ast.RangeStmt:
			if t := pass.Pkg.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && signalled[exprString(pass.Pkg, n.X)] {
					tied = true
				}
			}
		}
		return !tied
	})
	return tied
}
