package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLifecycle requires every `go` statement in library packages to
// be *joined*: the spawner (or a drain path of the same type) must be able
// to wait for the goroutine to exit, via
//
//   - a sync.WaitGroup: the goroutine calls Done and the spawning function
//     (or the body itself) calls Add; or
//   - a join channel: the goroutine closes or sends on a channel that is
//     received from — by the spawning function (the inline drain handshake)
//     or, for a channel stored in a named type's field, by any function in
//     the package (the Close/drain method pattern: `stop`/`done` fields
//     signalled in run and received in close).
//
// A goroutine that merely *receives* a quit/stop signal (a select on a
// quit channel, ranging over its work channel) can be told to stop but
// nobody can tell when it has: Close returns while the goroutine still
// runs — the bug class behind the PR 9 lifecycle review, where a
// quit-signalled manager goroutine outlived its session's drain. Such
// goroutines are flagged with a join-specific message. Untracked
// goroutines (no signal, no join) remain the PR 5 drain-leak class. When
// the callee is a named function its body is resolved through the call
// graph and checked the same way; a goroutine whose body cannot be seen
// statically (a function value) is flagged.
//
// Deliberately detached goroutines carry a "pythia:detached" annotation —
// on the line above the `go` statement or in the enclosing function's doc
// comment — with a justification.
var GoroutineLifecycle = &Analyzer{
	Name: "goroutine-lifecycle",
	Doc:  "library goroutines must be joined on drain (and may be quit-signalled), or annotated pythia:detached",
	Run:  runGoroutineLifecycle,
}

// tie levels, weakest first: untracked, stoppable-but-unjoined, joined.
const (
	tieNone = iota
	tieSignalled
	tieJoined
)

func runGoroutineLifecycle(pass *Pass) {
	if !isLibraryPackage(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasAnnotation(fd.Doc, "detached") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if detachedAt(pass.Pkg, file, gs) {
					return true
				}
				switch goroutineTie(pass, fd, gs) {
				case tieJoined:
				case tieSignalled:
					pass.Reportf(gs.Pos(),
						"goroutine is quit-signalled but never joined: nothing waits for it to exit, so a drain can return while it still runs (close or send on a done channel a drain path receives from, or tie it to a WaitGroup; annotate pythia:detached if the leak is deliberate)")
				default:
					pass.Reportf(gs.Pos(),
						"goroutine is not tied to a WaitGroup, a quit/stop channel, or a join channel the spawner waits on (annotate pythia:detached with a justification if the leak is deliberate)")
				}
				return true
			})
			checkRetryLoops(pass, fd)
		}
	}
}

// checkRetryLoops flags unjittered, unbounded retry loops: an uncounted
// `for` (no init/post — `for {}` or `for cond {}`) whose body sleeps a
// compile-time constant duration and never touches a channel. Such a loop
// retries forever in lockstep — it cannot be told to stop (no quit/ctx
// select) and a fleet of them hammers the contended resource at the exact
// same cadence (no backoff, no jitter). A computed Sleep argument is taken
// as backoff (transport.Park's capped exponential delay is the house
// pattern); a select or channel receive anywhere in the loop is taken as a
// quit check. Counted loops are bounded retries and stay legal.
func checkRetryLoops(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Init != nil || loop.Post != nil {
			return true
		}
		if !sleepsConstant(pass.Pkg, loop.Body) || receivesFromChannel(pass.Pkg, loop.Body) {
			return true
		}
		pass.Reportf(loop.Pos(),
			"unbounded retry loop sleeps a constant interval with no quit/ctx check (add jittered backoff and select on a done channel, or bound the attempts)")
		return true
	})
}

// sleepsConstant reports a time.Sleep call in body whose argument is a
// compile-time constant — the signature of a fixed-cadence retry, as
// opposed to a computed backoff delay.
func sleepsConstant(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sleep" {
			return !found
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return !found
		}
		if tv, typed := pkg.Info.Types[call.Args[0]]; typed && tv.Value != nil {
			found = true
		}
		return !found
	})
	return found
}

// detachedAt reports a "pythia:detached" comment block ending on the line
// just above the go statement (or trailing on the same line). The
// annotation may sit anywhere in the block, so a multi-line justification
// still counts.
func detachedAt(pkg *Package, file *ast.File, gs *ast.GoStmt) bool {
	goLine := pkg.Fset.Position(gs.Pos()).Line
	for _, cg := range file.Comments {
		if !hasAnnotation(cg, "detached") {
			continue
		}
		line := pkg.Fset.Position(cg.End()).Line
		if line == goLine || line == goLine-1 {
			return true
		}
	}
	return false
}

// goroutineTie classifies the lifecycle tie of the goroutine spawned by
// gs: joined (exit observable), signalled only (stoppable but nothing
// waits for the exit), or untracked.
func goroutineTie(pass *Pass, fd *ast.FuncDecl, gs *ast.GoStmt) int {
	var body *ast.BlockStmt
	bodyPkg := pass.Pkg
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		_ = fun
		if callee := StaticCallee(pass.Pkg.Info, gs.Call); callee != nil {
			if node := pass.Facts.Graph().NodeOf(callee); node != nil {
				body = node.Decl.Body
				bodyPkg = node.Pkg
			}
		}
	}
	if body == nil {
		return tieNone // body invisible: require the annotation
	}
	if callsWaitGroupDone(bodyPkg, body) &&
		(callsWaitGroupAdd(pass.Pkg, fd.Body) || callsWaitGroupAdd(bodyPkg, body)) {
		return tieJoined
	}
	if signalsJoin(pass, bodyPkg, body, fd, gs) {
		return tieJoined
	}
	if receivesFromChannel(bodyPkg, body) {
		return tieSignalled
	}
	return tieNone
}

// receivesFromChannel reports a channel receive anywhere in body: a <-ch
// expression, a select statement, or ranging over a channel. Any of these
// gives the spawner a way to signal or starve the goroutine.
func receivesFromChannel(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := pkg.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func callsWaitGroupDone(pkg *Package, body *ast.BlockStmt) bool {
	return callsWaitGroupMethod(pkg, body, "Done")
}

func callsWaitGroupAdd(pkg *Package, body *ast.BlockStmt) bool {
	return callsWaitGroupMethod(pkg, body, "Add")
}

func callsWaitGroupMethod(pkg *Package, body *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if ok && sel.Sel.Name == method && isWaitGroup(pkg.Info.Types[sel.X].Type) {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroup reports sync.WaitGroup (possibly behind a pointer).
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// signalsJoin reports that the goroutine closes or sends on a channel
// somebody waits on: the enclosing function (the inline join-handshake
// pattern, `done := make(chan ...); go func() { ...; close(done) }();
// <-done`) or — when the channel is a field of a named type — any function
// in the spawning or body package (the Close/drain method pattern, where
// run closes l.done and close receives from it).
func signalsJoin(pass *Pass, bodyPkg *Package, body *ast.BlockStmt, fd *ast.FuncDecl, gs *ast.GoStmt) bool {
	signalled := make(map[string]bool)
	fields := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			signalled[exprString(bodyPkg, n.Chan)] = true
			if k := fieldChanKey(bodyPkg, n.Chan); k != "" {
				fields[k] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, builtin := bodyPkg.Info.Uses[id].(*types.Builtin); builtin {
					signalled[exprString(bodyPkg, n.Args[0])] = true
					if k := fieldChanKey(bodyPkg, n.Args[0]); k != "" {
						fields[k] = true
					}
				}
			}
		}
		return true
	})
	if len(signalled) == 0 {
		return false
	}
	tied := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == gs {
			return false // the goroutine's own receives don't join it
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && signalled[exprString(pass.Pkg, n.X)] {
				tied = true
			}
		case *ast.RangeStmt:
			if t := pass.Pkg.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && signalled[exprString(pass.Pkg, n.X)] {
					tied = true
				}
			}
		}
		return !tied
	})
	if tied || len(fields) == 0 {
		return tied
	}
	// The drain path for a field channel may live anywhere in the package
	// (typically a Close/close method); the goroutine's own body does not
	// count as its joiner.
	if packageReceivesField(pass.Pkg, fields, body) {
		return true
	}
	return bodyPkg != pass.Pkg && packageReceivesField(bodyPkg, fields, body)
}

// fieldChanKey returns a stable "pkg.Type.field" key when expr selects a
// channel field of a named type (through a pointer or not); "" otherwise.
func fieldChanKey(pkg *Package, expr ast.Expr) string {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := pkg.Info.Types[sel.X].Type
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
}

// packageReceivesField reports a receive (or channel range) over any of
// the field-channel keys anywhere in pkg, outside the goroutine body
// itself.
func packageReceivesField(pkg *Package, fields map[string]bool, body *ast.BlockStmt) bool {
	found := false
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			if n != nil && n.Pos() >= body.Pos() && n.End() <= body.End() {
				return false // inside the goroutine body: not a joiner
			}
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && fields[fieldChanKey(pkg, n.X)] {
					found = true
				}
			case *ast.RangeStmt:
				if t := pkg.Info.Types[n.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok && fields[fieldChanKey(pkg, n.X)] {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
