package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// buildTestModule writes files into a temp mini-module and loads it.
func buildTestModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return mod
}

// TestCallGraphResolution pins the edge policy: direct calls, concrete
// method calls and cross-package calls resolve; interface calls and
// function values do not; literal-nested and go-spawned sites are marked.
func TestCallGraphResolution(t *testing.T) {
	mod := buildTestModule(t, map[string]string{
		"a.go": `package fixture

import "fixture/sub"

type T struct{}

func (t *T) M() {}

type I interface{ M() }

func helper()  {}
func helper2() {}
func spawned() {}

func top(i I, f func()) {
	t := &T{}
	t.M()
	helper()
	sub.Exported()
	go spawned()
	g := func() { helper2() }
	g()
	i.M() // interface: no edge
	f()   // func value: no edge
}
`,
		"sub/sub.go": "package sub\n\n// Exported does nothing.\nfunc Exported() {}\n",
	})
	graph := BuildCallGraph(mod)

	var topNode *CallNode
	for _, n := range graph.Nodes() {
		if n.Fn.Name() == "top" {
			topNode = n
		}
	}
	if topNode == nil {
		t.Fatal("no node for top")
	}
	got := make(map[string]CallSite)
	for _, c := range topNode.Calls {
		got[c.Callee.Name()] = c
	}
	for _, want := range []string{"M", "helper", "Exported", "spawned", "helper2"} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing edge top -> %s (have %v)", want, keysOf(got))
		}
	}
	if len(got) != 5 {
		t.Errorf("got %d edges %v, want 5 (interface and func-value calls must not resolve)", len(got), keysOf(got))
	}
	if !got["spawned"].Async {
		t.Error("go spawned() not marked Async")
	}
	if got["helper"].Async || got["helper"].InFuncLit {
		t.Error("plain call helper() wrongly marked Async/InFuncLit")
	}
	if !got["helper2"].InFuncLit {
		t.Error("literal-nested call helper2() not marked InFuncLit")
	}
	if n := len(graph.Callers(got["helper"].Callee)); n != 1 {
		t.Errorf("Callers(helper) = %d sites, want 1", n)
	}
}

func keysOf(m map[string]CallSite) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestFlowGuards drives the value-flow tracker end to end through the
// untrusted-size analyzer: taint propagation, guard dominance, kills,
// compound assignment, tuple assignment, and selector-prefix inheritance
// through a Parse*-style decoder.
func TestFlowGuards(t *testing.T) {
	const wirePkg = `package wire

// Header is a decoded frame header.
type Header struct {
	Count uint32
	Flags uint32
}

// ParseHeader decodes a header (stand-in for the real wire package).
func ParseHeader(p []byte) (Header, error) {
	return Header{Count: uint32(len(p))}, nil
}
`
	tests := []struct {
		name string
		body string // body of func decode(p []byte, br *bufio.Reader)
		want []string
	}{
		{
			name: "unguarded varint reaches make",
			body: `n, _ := binary.ReadUvarint(br)
	_ = make([]byte, n)`,
			want: []string{"[untrusted-size] size n from untrusted source binary.ReadUvarint reaches make"},
		},
		{
			name: "relational guard dominates",
			body: `n, _ := binary.ReadUvarint(br)
	if n > 1024 {
		return
	}
	_ = make([]byte, n)`,
			want: nil,
		},
		{
			name: "overwrite kills taint",
			body: `n, _ := binary.ReadUvarint(br)
	n = 16
	_ = make([]byte, n)`,
			want: nil,
		},
		{
			name: "compound assignment keeps taint",
			body: `n, _ := binary.ReadUvarint(br)
	n += 8
	_ = make([]byte, n)`,
			want: []string{"[untrusted-size] size n from untrusted source binary.ReadUvarint reaches make"},
		},
		{
			name: "arithmetic propagates taint",
			body: `n, _ := binary.ReadUvarint(br)
	_ = make([]byte, int(n)*8)`,
			want: []string{"[untrusted-size] size int(n) * 8 from untrusted source binary.ReadUvarint reaches make"},
		},
		{
			name: "selector prefix inherits taint from Parse result",
			body: `h, _ := wire.ParseHeader(p)
	_ = make([]uint32, h.Count)`,
			want: []string{"[untrusted-size] size h.Count from untrusted source wire.ParseHeader reaches make"},
		},
		{
			name: "guarding the selector clears it",
			body: `h, _ := wire.ParseHeader(p)
	if h.Count > 64 {
		return
	}
	_ = make([]uint32, h.Count)`,
			want: nil,
		},
		{
			name: "sign check is not a bound",
			body: `n, _ := binary.ReadUvarint(br)
	if n > 0 {
		_ = make([]byte, n)
	}`,
			want: []string{"[untrusted-size] size n from untrusted source binary.ReadUvarint reaches make"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := loadFixture(t, map[string]string{
				"wire/wire.go": wirePkg,
				"decode.go": `package fixture

import (
	"bufio"
	"encoding/binary"

	"fixture/wire"
)

// Anchor both imports: not every test body uses both packages.
var (
	_ = binary.ReadUvarint
	_ = wire.ParseHeader
)

func decode(p []byte, br *bufio.Reader) {
	` + tt.body + `
}
`,
			}, UntrustedSize)
			expectFindings(t, got, tt.want)
		})
	}
}

// FuzzFlowGuards throws arbitrary (possibly only partially type-checkable)
// Go source at the flow tracker: TrackFlow must never panic, even with
// incomplete type information, because the analyzers run it over every
// function of every package on every CI build.
func FuzzFlowGuards(f *testing.F) {
	f.Add("package p\nfunc f(n int) { _ = make([]byte, n) }")
	f.Add(`package p
import "encoding/binary"
func f(p []byte) {
	n := binary.BigEndian.Uint32(p)
	if n > 8 {
		n = 8
	}
	_ = make([]byte, n, n*2)
}`)
	f.Add(`package p
func f() {
	var a struct{ b struct{ c int } }
	a.b.c += 1
	for a.b.c < 10 {
		a.b.c++
	}
	g := func() int { return a.b.c }
	_ = g
}`)
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Error: func(error) {}} // no importer: imports fail, info stays partial
		tpkg, _ := conf.Check("p", fset, []*ast.File{file}, info)
		pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{file}, Types: tpkg, Info: info}
		pass := &Pass{Pkg: pkg, report: func(Diagnostic) {}}
		for _, fd := range funcDecls(pkg) {
			if fd.Body == nil {
				continue
			}
			ff := TrackFlow(pass, fd.Body, untrustedSource)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					ff.Tainted(e)
				}
				return true
			})
		}
	})
}
