package vet

import "testing"

func TestContainment(t *testing.T) {
	const header = `package lib

type session struct{}

func (s *session) Contain(method string)               {}
func (s *session) ContainTo(method string, errp *error) {}

`
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "deferred Contain passes",
			src: header + `
// Thread is the per-thread handle.
// pythia:contained
type Thread struct{ sess *session }

func (t *Thread) Submit(id int32) {
	defer t.sess.Contain("Thread.Submit")
	_ = id
}
`,
			want: nil,
		},
		{
			name: "deferred ContainTo passes",
			src: header + `
// Oracle is the public handle.
// pythia:contained
type Oracle struct{ sess *session }

func (o *Oracle) Finish() (err error) {
	defer o.sess.ContainTo("Oracle.Finish", &err)
	return nil
}
`,
			want: nil,
		},
		{
			name: "exported method without wrapper is flagged",
			src: header + `
// Thread is the per-thread handle.
// pythia:contained
type Thread struct{ sess *session }

func (t *Thread) Submit(id int32) {
	_ = id
}
`,
			want: []string{"[containment] exported method Thread.Submit"},
		},
		{
			name: "guard without defer is still flagged",
			src: header + `
// pythia:contained
type Thread struct{ sess *session; failed bool }

func (t *Thread) Submit(id int32) {
	if t.failed {
		return
	}
	_ = id
}
`,
			want: []string{"[containment] exported method Thread.Submit"},
		},
		{
			name: "unexported methods and unmarked types are ignored",
			src: header + `
// pythia:contained
type Thread struct{ sess *session }

func (t *Thread) submit(id int32) { _ = id }

type Other struct{}

func (o *Other) Submit(id int32) { _ = id }

func (t *Thread) Submit(id int32) {
	defer t.sess.Contain("Thread.Submit")
	_ = id
}
`,
			want: nil,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := loadFixture(t, map[string]string{"lib/lib.go": tc.src}, Containment)
			expectFindings(t, got, tc.want)
		})
	}
}
