package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the second half of the shared analysis foundation (the
// other is callgraph.go): a conservative intraprocedural value-flow and
// guard tracker over one function body. The untrusted-size analyzer uses
// it to decide whether an integer that originated at a decode source (a
// wire cursor read, an encoding/binary call, a Parse* frame field) can
// reach an allocation-sizing sink without passing a bound check.
//
// The tracker is deliberately simple — values are identified by their
// source spelling, statements are processed in source order, and a guard
// anywhere before a use is taken to dominate it. The approximations only
// suppress findings, never invent them:
//
//   - taint: an assignment whose right-hand side contains a source call or
//     a tainted value taints the left-hand side; any other assignment to
//     the same spelling kills the taint. Conversions and arithmetic
//     propagate taint (int(n), n*4 are as attacker-controlled as n).
//   - guards: a relational comparison (<, <=, >, >=) mentioning a tainted
//     value inside an if or switch condition marks it guarded from the
//     comparison onward, as does clamping through the min/max builtins.
//     Comparisons against the literal 0 do not count — `n > 0` rejects
//     nothing an attacker cares about.
//   - selector prefixes: when a composite value is tainted (o, decoded
//     from a frame), every selection from it (o.Count) is tainted too.
//
// Position order stands in for dominance: a guard in a branch that does
// not actually dominate the sink will be trusted anyway. That trade keeps
// the tracker a few hundred lines and errs toward silence, which is the
// right failure mode for a gating analyzer.

// flowKind classifies one flow event.
type flowKind uint8

const (
	flowTaint flowKind = iota // name becomes tainted (carries src)
	flowKill                  // name is overwritten with clean data
	flowGuard                 // name passed a bound comparison
)

// flowEvent is one state change of one tracked spelling, in source order.
type flowEvent struct {
	pos  token.Pos
	kind flowKind
	name string
	src  string // taint events: human-readable source, e.g. "binary.BigEndian.Uint32"
}

// SourceClassifier decides whether a call expression produces untrusted
// data and names the source for diagnostics.
type SourceClassifier func(pass *Pass, call *ast.CallExpr) (src string, ok bool)

// FlowFacts is the computed taint/guard state of one function body.
type FlowFacts struct {
	pass   *Pass
	events []flowEvent
}

// TrackFlow walks one function body in source order and records taint,
// kill and guard events for every simple spelling (identifiers and
// selector chains). sources classifies the taint origins.
func TrackFlow(pass *Pass, body *ast.BlockStmt, sources SourceClassifier) *FlowFacts {
	ff := &FlowFacts{pass: pass}
	ff.walk(body, sources)
	return ff
}

func (ff *FlowFacts) walk(body *ast.BlockStmt, sources SourceClassifier) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal is a separate execution context; its taints and
			// guards do not interleave with the enclosing body's order.
			return false
		case *ast.AssignStmt:
			ff.assign(n, sources)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						ff.valueSpec(vs, sources)
					}
				}
			}
		case *ast.IfStmt:
			ff.cond(n.Cond)
		case *ast.SwitchStmt:
			if n.Tag == nil {
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CaseClause); ok {
						for _, e := range cc.List {
							ff.cond(e)
						}
					}
				}
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				ff.cond(n.Cond)
			}
		case *ast.CallExpr:
			ff.taintByPointer(n, sources)
		}
		return true
	})
}

// assign processes one assignment statement: taints or kills each LHS
// depending on the matching RHS.
func (ff *FlowFacts) assign(as *ast.AssignStmt, sources SourceClassifier) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// n, err := f(): every LHS inherits the one RHS's taint.
		src, tainted := ff.exprTaint(as.Rhs[0], sources, as.Pos())
		for _, lhs := range as.Lhs {
			ff.setLHS(lhs, src, tainted, as.Pos())
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		src, tainted := ff.exprTaint(as.Rhs[i], sources, as.Pos())
		// Compound assignment (n += x) keeps the LHS's own taint alive.
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			if s, t := ff.taintAt(ff.spelling(lhs), as.Pos()); t {
				src, tainted = s, true
			}
		}
		ff.setLHS(lhs, src, tainted, as.Pos())
	}
}

// valueSpec processes `var n = expr` declarations.
func (ff *FlowFacts) valueSpec(vs *ast.ValueSpec, sources SourceClassifier) {
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			src, tainted := ff.exprTaint(vs.Values[i], sources, vs.Pos())
			ff.setLHS(name, src, tainted, vs.Pos())
		}
	}
}

// setLHS records a taint or kill event for one assignment target.
func (ff *FlowFacts) setLHS(lhs ast.Expr, src string, tainted bool, pos token.Pos) {
	name := ff.spelling(lhs)
	if name == "" || name == "_" {
		return
	}
	if tainted {
		ff.events = append(ff.events, flowEvent{pos: pos, kind: flowTaint, name: name, src: src})
	} else {
		ff.events = append(ff.events, flowEvent{pos: pos, kind: flowKill, name: name})
	}
}

// taintByPointer taints x when a source call receives &x (binary.Read
// decodes into its argument).
func (ff *FlowFacts) taintByPointer(call *ast.CallExpr, sources SourceClassifier) {
	src, ok := sources(ff.pass, call)
	if !ok {
		return
	}
	for _, arg := range call.Args {
		if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
			name := ff.spelling(un.X)
			if name != "" {
				ff.events = append(ff.events, flowEvent{pos: call.Pos(), kind: flowTaint, name: name, src: src})
			}
		}
	}
}

// cond scans a condition for relational comparisons mentioning tainted
// spellings and records guard events. min/max clamps are handled in
// exprTaint (a clamped value stops being interesting, not the variable).
func (ff *FlowFacts) cond(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		// A comparison against the literal 0 is a sign check, not a bound.
		if isZeroLiteral(be.X) || isZeroLiteral(be.Y) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ff.guardNamesIn(side, be.OpPos)
		}
		return true
	})
}

// guardNamesIn records a guard event for every tainted spelling mentioned
// inside e (including through conversions and arithmetic: `n*4 > limit`
// bounds n).
func (ff *FlowFacts) guardNamesIn(e ast.Expr, pos token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		ne, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch ne.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			name := ff.spelling(ne)
			if _, tainted := ff.taintAt(name, pos); tainted {
				ff.events = append(ff.events, flowEvent{pos: pos, kind: flowGuard, name: name})
			}
			// Do not descend into a selector's base: guarding o.Count
			// guards that field path, not everything selected from o.
			_, isSel := ne.(*ast.SelectorExpr)
			return !isSel
		}
		return true
	})
}

// exprTaint reports whether e carries taint at pos: it contains a source
// call or mentions a tainted spelling, and is not a min/max clamp over a
// constant bound.
func (ff *FlowFacts) exprTaint(e ast.Expr, sources SourceClassifier, pos token.Pos) (src string, tainted bool) {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if s, ok := sources(ff.pass, n); ok {
				found = s
				return false
			}
			// Clamping through the min/max builtins sanitizes the value.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "min" || id.Name == "max") {
				if _, builtin := ff.pass.Pkg.Info.Uses[id].(*types.Builtin); builtin {
					return false
				}
			}
		case *ast.Ident, *ast.SelectorExpr:
			ne := n.(ast.Expr)
			name := ff.spelling(ne)
			if s, t := ff.taintAt(name, pos); t {
				found = s
				return false
			}
			_, isSel := ne.(*ast.SelectorExpr)
			return !isSel
		}
		return true
	})
	return found, found != ""
}

// taintAt reports the taint state of one spelling just before pos,
// replaying the event list in source order. Selector chains inherit taint
// from a tainted prefix (o tainted makes o.Count tainted) unless the
// chain itself was killed or guarded more recently.
func (ff *FlowFacts) taintAt(name string, pos token.Pos) (src string, tainted bool) {
	if name == "" {
		return "", false
	}
	type state struct {
		src     string
		tainted bool
		guarded bool
	}
	best := state{}
	resolved := false
	for _, prefix := range spellingPrefixes(name) {
		st := state{}
		seen := false
		for _, ev := range ff.events {
			if ev.pos >= pos || ev.name != prefix {
				continue
			}
			seen = true
			switch ev.kind {
			case flowTaint:
				st = state{src: ev.src, tainted: true}
			case flowKill:
				st = state{}
			case flowGuard:
				st.guarded = true
			}
		}
		if seen {
			// The most specific spelling with any recorded state wins:
			// killing/guarding o.Count overrides o's taint for o.Count.
			best = st
			resolved = true
		}
		if resolved && prefix == name {
			break
		}
	}
	if best.tainted && !best.guarded {
		return best.src, true
	}
	return "", false
}

// Tainted reports whether expression e is tainted and unguarded at its own
// position, returning the originating source description.
func (ff *FlowFacts) Tainted(e ast.Expr) (src string, ok bool) {
	e = ast.Unparen(e)
	// Look through conversions and unary/binary arithmetic: make([]T, n*4)
	// is sized by n.
	switch t := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return ff.taintAt(ff.spelling(t.(ast.Expr)), e.Pos())
	case *ast.CallExpr:
		// Type conversion or builtin over a tainted value.
		if len(t.Args) == 1 {
			return ff.Tainted(t.Args[0])
		}
	case *ast.BinaryExpr:
		if s, ok := ff.Tainted(t.X); ok {
			return s, true
		}
		return ff.Tainted(t.Y)
	case *ast.UnaryExpr:
		return ff.Tainted(t.X)
	}
	return "", false
}

// spelling renders an identifier or selector chain ("n", "o.Count",
// "c.hdr.n"); other expressions yield "".
func (ff *FlowFacts) spelling(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ff.spelling(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		inner := ff.spelling(e.X)
		if inner == "" {
			return ""
		}
		return "*" + inner
	}
	return ""
}

// spellingPrefixes returns the selector prefixes of a spelling from
// shortest to longest: "a.b.c" -> ["a", "a.b", "a.b.c"].
func spellingPrefixes(name string) []string {
	var out []string
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			out = append(out, name[:i])
		}
	}
	return append(out, name)
}

// isZeroLiteral reports whether e is the integer literal 0.
func isZeroLiteral(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == "0"
}
