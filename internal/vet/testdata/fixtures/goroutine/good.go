package fixture

import "sync"

// Worker shows the accepted lifecycle shapes; the analyzer must stay
// silent on every one of them.
type Worker struct {
	wg   sync.WaitGroup
	quit chan struct{}
	work chan int
	n    int
}

// RunJoined ties the goroutine to a WaitGroup.
func (w *Worker) RunJoined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.n++
	}()
	w.wg.Wait()
}

// RunSignalled ties the goroutine to a quit channel select.
func (w *Worker) RunSignalled() {
	go func() {
		for {
			select {
			case <-w.quit:
				return
			case v := <-w.work:
				w.n += v
			}
		}
	}()
}

// RunRange ties the goroutine to its work channel: closing the channel
// stops it.
func (w *Worker) RunRange() {
	go consume(w.work)
}

func consume(ch chan int) {
	for range ch {
	}
}

// RunHandshake joins through a done channel the spawner receives from —
// the server drain pattern.
func (w *Worker) RunHandshake() {
	done := make(chan struct{})
	go func() {
		w.n++
		close(done)
	}()
	<-done
}

// RunDetached is deliberately fire-and-forget and says so.
func (w *Worker) RunDetached() {
	// pythia:detached — one-shot best-effort notification; the process
	// outliving it is fine and nothing observes its completion.
	go func() {
		w.n++
	}()
}
