package fixture

import (
	"sync"
	"time"
)

// Worker shows the accepted lifecycle shapes; the analyzer must stay
// silent on every one of them. Since the PR 9 tightening, a quit signal
// alone is not enough — every background goroutine must also be joined
// on drain (a WaitGroup or a done channel some drain path receives from).
type Worker struct {
	wg     sync.WaitGroup
	quit   chan struct{}
	work   chan int
	done   chan struct{}
	ranged chan struct{}
	n      int
}

// RunJoined ties the goroutine to a WaitGroup.
func (w *Worker) RunJoined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.n++
	}()
	w.wg.Wait()
}

// RunSignalled is quit-signalled AND joined: the loop selects on the quit
// channel, and closes the done field channel on exit; Drain — a separate
// method, the Close pattern — receives from it, so the spawner can wait
// for the loop to actually be gone.
func (w *Worker) RunSignalled() {
	go func() {
		defer close(w.done)
		for {
			select {
			case <-w.quit:
				return
			case v := <-w.work:
				w.n += v
			}
		}
	}()
}

// RunRange ties the goroutine to its work channel (closing the channel
// stops it) and joins it through the ranged field channel the drain path
// receives from.
func (w *Worker) RunRange() {
	go w.consume()
}

func (w *Worker) consume() {
	defer close(w.ranged)
	for range w.work {
	}
}

// Drain is the join side of RunSignalled and RunRange: close(w.quit) and
// close(w.work) tell the goroutines to stop; the receives wait until they
// have.
func (w *Worker) Drain() {
	close(w.quit)
	close(w.work)
	<-w.done
	<-w.ranged
}

// RunHandshake joins through a done channel the spawner receives from —
// the inline drain pattern.
func (w *Worker) RunHandshake() {
	done := make(chan struct{})
	go func() {
		w.n++
		close(done)
	}()
	<-done
}

// RunDetached is deliberately fire-and-forget and says so.
func (w *Worker) RunDetached() {
	// pythia:detached — one-shot best-effort notification; the process
	// outliving it is fine and nothing observes its completion.
	go func() {
		w.n++
	}()
}

// RetryBounded is a legal retry: the counted loop bounds the attempts, so
// a constant sleep between them is fine.
func (w *Worker) RetryBounded() bool {
	for i := 0; i < 5; i++ {
		if w.n > 0 {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// RetryBackoff is a legal unbounded retry: the sleep argument is computed
// (capped exponential backoff), not a fixed cadence.
func (w *Worker) RetryBackoff() {
	delay := time.Millisecond
	for {
		if w.n > 0 {
			return
		}
		time.Sleep(delay)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

// RetryStoppable is a legal unbounded retry: the select on the quit
// channel gives the spawner a way to end it, even though the tick interval
// is constant.
func (w *Worker) RetryStoppable(tick <-chan time.Time) {
	for {
		select {
		case <-w.quit:
			return
		case <-tick:
			w.n++
		}
	}
}
