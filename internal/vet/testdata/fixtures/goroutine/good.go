package fixture

import (
	"sync"
	"time"
)

// Worker shows the accepted lifecycle shapes; the analyzer must stay
// silent on every one of them.
type Worker struct {
	wg   sync.WaitGroup
	quit chan struct{}
	work chan int
	n    int
}

// RunJoined ties the goroutine to a WaitGroup.
func (w *Worker) RunJoined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.n++
	}()
	w.wg.Wait()
}

// RunSignalled ties the goroutine to a quit channel select.
func (w *Worker) RunSignalled() {
	go func() {
		for {
			select {
			case <-w.quit:
				return
			case v := <-w.work:
				w.n += v
			}
		}
	}()
}

// RunRange ties the goroutine to its work channel: closing the channel
// stops it.
func (w *Worker) RunRange() {
	go consume(w.work)
}

func consume(ch chan int) {
	for range ch {
	}
}

// RunHandshake joins through a done channel the spawner receives from —
// the server drain pattern.
func (w *Worker) RunHandshake() {
	done := make(chan struct{})
	go func() {
		w.n++
		close(done)
	}()
	<-done
}

// RunDetached is deliberately fire-and-forget and says so.
func (w *Worker) RunDetached() {
	// pythia:detached — one-shot best-effort notification; the process
	// outliving it is fine and nothing observes its completion.
	go func() {
		w.n++
	}()
}

// RetryBounded is a legal retry: the counted loop bounds the attempts, so
// a constant sleep between them is fine.
func (w *Worker) RetryBounded() bool {
	for i := 0; i < 5; i++ {
		if w.n > 0 {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// RetryBackoff is a legal unbounded retry: the sleep argument is computed
// (capped exponential backoff), not a fixed cadence.
func (w *Worker) RetryBackoff() {
	delay := time.Millisecond
	for {
		if w.n > 0 {
			return
		}
		time.Sleep(delay)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

// RetryStoppable is a legal unbounded retry: the select on the quit
// channel gives the spawner a way to end it, even though the tick interval
// is constant.
func (w *Worker) RetryStoppable(tick <-chan time.Time) {
	for {
		select {
		case <-w.quit:
			return
		case <-tick:
			w.n++
		}
	}
}
