// Package fixture seeds the goroutine-lifecycle bug class from the PR 5
// review: a connection goroutine that outlives Close because nothing joins
// or signals it. bad.go carries the seeded bugs; good.go is the corrected
// twin the analyzer must stay silent on.
package fixture

// Poller leaks its background loop: no WaitGroup, no quit channel, no
// join handshake — once started, nothing can stop or observe it.
type Poller struct {
	n int
}

// Start spawns the untracked loop — the seeded leak, through a named
// callee so the analyzer has to look the body up in the call graph.
func (p *Poller) Start() {
	go p.loop() // seeded bug: untracked goroutine
}

func (p *Poller) loop() {
	for {
		p.n++
	}
}

// StartInline is the same leak with a function literal body.
func (p *Poller) StartInline() {
	go func() { // seeded bug: untracked goroutine
		for {
			p.n++
		}
	}()
}
