// Package fixture seeds the goroutine-lifecycle bug class from the PR 5
// review: a connection goroutine that outlives Close because nothing joins
// or signals it — plus the PR 9 variant, a quit-signalled goroutine that
// nothing joins, so a drain can return while it still runs. bad.go carries
// the seeded bugs; good.go is the corrected twin the analyzer must stay
// silent on.
package fixture

import "time"

// Poller leaks its background loop: no WaitGroup, no quit channel, no
// join handshake — once started, nothing can stop or observe it.
type Poller struct {
	n    int
	quit chan struct{}
}

// Start spawns the untracked loop — the seeded leak, through a named
// callee so the analyzer has to look the body up in the call graph.
func (p *Poller) Start() {
	go p.loop() // seeded bug: untracked goroutine
}

func (p *Poller) loop() {
	for {
		p.n++
	}
}

// StartInline is the same leak with a function literal body.
func (p *Poller) StartInline() {
	go func() { // seeded bug: untracked goroutine
		for {
			p.n++
		}
	}()
}

// StartStoppable is the PR 9 class: the goroutine can be told to stop
// (it selects on the quit channel) but nobody can wait for it to exit —
// a drain that closes quit returns while the loop may still be running
// its last iteration.
func (p *Poller) StartStoppable() {
	go func() { // seeded bug: quit-signalled but never joined
		for {
			select {
			case <-p.quit:
				return
			default:
				p.n++
			}
		}
	}()
}

// StartStoppableNamed is the same unjoined-stop bug through a named
// callee resolved via the call graph.
func (p *Poller) StartStoppableNamed() {
	go p.stoppableLoop() // seeded bug: quit-signalled but never joined
}

func (p *Poller) stoppableLoop() {
	for {
		select {
		case <-p.quit:
			return
		default:
			p.n++
		}
	}
}

// WaitReady is the unjittered-retry class from the PR 8 review: an
// unbounded loop sleeping a fixed interval with no quit/ctx check. A fleet
// of these polls in lockstep forever and cannot be shut down.
func (p *Poller) WaitReady() {
	for p.n == 0 { // seeded bug: unbounded fixed-cadence spin-wait
		time.Sleep(50 * time.Millisecond)
	}
}

// RetryForever is the same class as an infinite for: retry until success
// with a constant sleep, nothing bounding the attempts and nothing able to
// stop it.
func (p *Poller) RetryForever() {
	for { // seeded bug: unbounded constant-interval retry
		if p.try() {
			return
		}
		time.Sleep(time.Second)
	}
}

func (p *Poller) try() bool {
	p.n++
	return p.n > 3
}
