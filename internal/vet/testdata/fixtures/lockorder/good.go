package fixture

import "sync"

// Journal and Catalog mirror Ledger/Index but keep one global order:
// Journal before Catalog, everywhere, including through the helper.
type Journal struct {
	mu      sync.Mutex
	entries []int
}

type Catalog struct {
	mu   sync.Mutex
	byID map[int]int
}

// Append locks Journal then (via the helper) Catalog.
func Append(j *Journal, c *Catalog, v int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = append(j.entries, v)
	recatalog(c, len(j.entries)-1, v)
}

func recatalog(c *Catalog, pos, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byID[v] = pos
}

// Rebuild needs both too — and takes them in the same Journal-then-Catalog
// order, so there is no cycle.
func Rebuild(j *Journal, c *Catalog) {
	j.mu.Lock()
	defer j.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	j.entries = j.entries[:0]
	clear(c.byID)
}
