// Package fixture seeds an AB/BA lock-order inversion hidden behind a
// helper, the shape the accept/drain shutdown race took in the PR 5
// review: no single function ever touches both locks in both orders, so
// only a call-graph-aware analysis can see the cycle. bad.go carries the
// seeded inversion; good.go is the corrected twin the analyzer must stay
// silent on.
package fixture

import "sync"

// Ledger holds lock A; Index holds lock B.
type Ledger struct {
	mu      sync.Mutex
	entries []int
}

type Index struct {
	mu   sync.Mutex
	byID map[int]int
}

// Record locks the ledger, then reaches the index through a helper —
// order A then B, with B's acquisition invisible without the call graph.
func Record(l *Ledger, ix *Index, v int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, v)
	reindex(ix, len(l.entries)-1, v)
}

func reindex(ix *Index, pos, v int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.byID[v] = pos
}

// Compact locks the index, then the ledger — order B then A: the seeded
// inversion.
func Compact(l *Ledger, ix *Index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	l.mu.Lock() // seeded bug: BA while Record does AB
	l.entries = l.entries[:0]
	l.mu.Unlock()
	clear(ix.byID)
}
