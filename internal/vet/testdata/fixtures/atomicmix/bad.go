// Package fixture seeds the atomic-mix bug classes from the PR 5 review:
// the accept/drain flag raced between an atomic writer and a plain reader,
// and the Submit/Health submit buffer was written under a mutex in one
// path and without it in another. bad.go carries the seeded bugs; good.go
// is the corrected twin the analyzer must stay silent on.
package fixture

import (
	"sync"
	"sync/atomic"
)

// Gate reproduces the accept/drain class: draining is flipped atomically
// by Drain but read plainly in Admit.
type Gate struct {
	draining int32
}

// Drain flips the flag with sync/atomic.
func (g *Gate) Drain() { atomic.StoreInt32(&g.draining, 1) }

// Admit reads the same flag with a plain load — the seeded race.
func (g *Gate) Admit() bool { return g.draining == 0 }

// Buffer reproduces the Submit/Health class: pending is appended under mu
// in Add but drained without it in Drop.
type Buffer struct {
	mu      sync.Mutex
	pending []int32
}

// Add appends under the lock.
func (b *Buffer) Add(v int32) {
	b.mu.Lock()
	b.pending = append(b.pending, v)
	b.mu.Unlock()
}

// Drop resets the buffer with no lock — the seeded race.
func (b *Buffer) Drop() { b.pending = b.pending[:0] }
