package fixture

import (
	"sync"
	"sync/atomic"
)

// SafeGate is Gate's corrected twin: every access is atomic.
type SafeGate struct {
	draining int32
}

// Drain flips the flag with sync/atomic.
func (g *SafeGate) Drain() { atomic.StoreInt32(&g.draining, 1) }

// Admit loads it the same way.
func (g *SafeGate) Admit() bool { return atomic.LoadInt32(&g.draining) == 0 }

// SafeBuffer is Buffer's corrected twin: every access holds mu, including
// the flushLocked-style helper whose callers all hold it — the analyzer's
// call-graph coverage must see through that, or the real client would be
// unanalyzable.
type SafeBuffer struct {
	mu      sync.Mutex
	pending []int32
}

// Add appends under the lock.
func (b *SafeBuffer) Add(v int32) {
	b.mu.Lock()
	b.pending = append(b.pending, v)
	b.mu.Unlock()
}

// Drop resets under the lock.
func (b *SafeBuffer) Drop() {
	b.mu.Lock()
	b.dropLocked()
	b.mu.Unlock()
}

// DropIfFull conditionally resets; the early-return unlock must not
// truncate the fall-through region.
func (b *SafeBuffer) DropIfFull() {
	b.mu.Lock()
	if len(b.pending) < cap(b.pending) {
		b.mu.Unlock()
		return
	}
	b.dropLocked()
	b.mu.Unlock()
}

// dropLocked resets the buffer. Caller holds b.mu.
func (b *SafeBuffer) dropLocked() { b.pending = b.pending[:0] }

// NewSafeBuffer pre-sizes a buffer; initialization before the value is
// published needs no lock and must stay silent.
func NewSafeBuffer(capacity int) *SafeBuffer {
	b := &SafeBuffer{}
	b.pending = make([]int32, 0, capacity)
	return b
}
