package fixture

import (
	"encoding/binary"
	"errors"
	"io"
)

const maxRecords = 1 << 12

// DecodeRecordsClamped is the corrected twin of DecodeRecords: the count
// passes a dominating bound check before sizing anything.
func DecodeRecordsClamped(r io.Reader, hdr []byte) ([]uint64, error) {
	n := binary.BigEndian.Uint32(hdr)
	if n > maxRecords {
		n = maxRecords
	}
	out := make([]uint64, n)
	if err := binary.Read(r, binary.BigEndian, out); err != nil {
		return nil, err
	}
	return out, nil
}

// FillPayloadChecked validates the wire length against the buffer instead
// of clamping — rejecting is as good as clamping.
func FillPayloadChecked(r io.Reader, hdr, buf []byte) error {
	n := binary.BigEndian.Uint16(hdr)
	if int(n) > len(buf) {
		return errors.New("fixture: length exceeds buffer")
	}
	_, err := io.ReadFull(r, buf[:n])
	return err
}

// FillPayloadMin clamps with the min builtin, the other accepted shape.
func FillPayloadMin(r io.Reader, hdr, buf []byte) error {
	n := min(int(binary.BigEndian.Uint16(hdr)), len(buf))
	_, err := io.ReadFull(r, buf[:n])
	return err
}

// DecodeTrusted is covered by the annotation escape hatch: the header was
// validated by the caller (documented there), so the analyzer skips it.
// pythia:trusted-input — hdr is produced by DecodeRecordsClamped.
func DecodeTrusted(hdr []byte) []uint64 {
	return make([]uint64, binary.BigEndian.Uint32(hdr))
}

const (
	maxRings = 256
	maxSlots = 1 << 18
)

// MapSegmentRingsValidated is the corrected twin of MapSegmentRings:
// geometry passes explicit relational bounds before sizing anything — the
// guard shape the daemon's shm setup uses (an opaque Validate() call would
// not dominate the allocations in the analyzer's flow approximation).
func MapSegmentRingsValidated(seg []byte) ([][]uint64, error) {
	rings := binary.LittleEndian.Uint32(seg[8:])
	slots := binary.LittleEndian.Uint64(seg[16:])
	if rings < 1 || rings > maxRings {
		return nil, errors.New("fixture: ring count out of range")
	}
	if slots < 64 || slots > maxSlots {
		return nil, errors.New("fixture: slot count out of range")
	}
	table := make([][]uint64, rings)
	for i := range table {
		table[i] = make([]uint64, slots)
	}
	return table, nil
}

const (
	maxDaemons    = 256
	maxModelBytes = 1 << 20
)

// ParseDaemonListClamped is the corrected twin of ParseDaemonList: the
// count must pass both the protocol ceiling and the bytes-actually-present
// bound — the guard shape wire.ParseShardMapR uses.
func ParseDaemonListClamped(frame []byte) ([]string, error) {
	n := int(binary.BigEndian.Uint16(frame[9:]))
	if n > maxDaemons || n > (len(frame)-11)/2 {
		return nil, errors.New("fixture: daemon count exceeds frame")
	}
	return make([]string, n), nil
}

// ReceiveModelChecked is the corrected twin of ReceiveModel: offers larger
// than the frame ceiling are rejected before sizing anything, as
// wire.ParseOfferModel does.
func ReceiveModelChecked(r io.Reader, hdr []byte) ([]byte, error) {
	size := binary.BigEndian.Uint32(hdr)
	if size > maxModelBytes {
		return nil, errors.New("fixture: model exceeds frame ceiling")
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
