// Package fixture seeds the untrusted-size bug class from the PR 5 review:
// an 8-byte frame whose count field sizes a multi-GiB allocation. bad.go
// carries the seeded bugs; good.go is the corrected twin the analyzer must
// stay silent on.
package fixture

import (
	"encoding/binary"
	"io"
)

// DecodeRecords is the MaxPredictions incident in miniature: the record
// count comes straight off the wire and sizes the allocation unchecked.
func DecodeRecords(r io.Reader, hdr []byte) ([]uint64, error) {
	n := binary.BigEndian.Uint32(hdr) // untrusted source
	out := make([]uint64, n)          // seeded bug: unclamped make
	if err := binary.Read(r, binary.BigEndian, out); err != nil {
		return nil, err
	}
	return out, nil
}

// FillPayload sizes an io.ReadFull with a wire-decoded length.
func FillPayload(r io.Reader, hdr, buf []byte) error {
	n := binary.BigEndian.Uint16(hdr)
	_, err := io.ReadFull(r, buf[:n]) // seeded bug: unclamped slice bound
	return err
}

// MapSegmentRings is the PR 7 shm ring-decoder class in miniature: ring
// geometry read straight out of a client-controlled segment header sizes
// the ring table allocation unchecked.
func MapSegmentRings(seg []byte) [][]uint64 {
	rings := binary.LittleEndian.Uint32(seg[8:])
	slots := binary.LittleEndian.Uint64(seg[16:])
	table := make([][]uint64, rings) // seeded bug: unclamped ring count
	for i := range table {
		table[i] = make([]uint64, slots) // seeded bug: unclamped slot count
	}
	return table
}

// ParseDaemonList is the PR 10 shard-map class in miniature: the daemon
// count in a fleet peer's frame sizes the address table unchecked.
func ParseDaemonList(frame []byte) []string {
	n := binary.BigEndian.Uint16(frame[9:])
	return make([]string, n) // seeded bug: unclamped daemon count
}

// ReceiveModel sizes a model-transfer read with the offer's wire-declared
// payload size.
func ReceiveModel(r io.Reader, hdr []byte) ([]byte, error) {
	size := binary.BigEndian.Uint32(hdr)
	payload := make([]byte, size) // seeded bug: unclamped model size
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
