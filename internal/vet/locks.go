package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline checks mutex usage in every package that locks a
// sync.Mutex / sync.RWMutex (internal/core, internal/events, the simulated
// runtimes). Two rules:
//
//  1. pairing — every Lock()/RLock() must have a matching same-function
//     Unlock()/RUnlock() on the same receiver, either deferred or called
//     later in the function (conditional unlock paths count);
//  2. no submission under a lock — calling back into the oracle
//     (core.Thread Submit/SubmitAt) while holding a lock couples the
//     caller's locking protocol to the oracle's per-event cost and is a
//     deadlock hazard once the oracle itself synchronises; the region held
//     by a lock is taken to extend to the matching unlock (or to the end of
//     the function for deferred unlocks).
//
// Function literals are independent scopes: a goroutine body must satisfy
// the discipline on its own.
var LockDiscipline = &Analyzer{
	Name: "lock-discipline",
	Doc:  "Lock/Unlock pairing and no Thread.Submit under a held lock",
	Run:  runLockDiscipline,
}

// lockOp is one mutex or submit call site within a function scope.
type lockOp struct {
	pos      token.Pos
	end      token.Pos // end of the enclosing scope (for defers)
	kind     string    // "Lock", "RLock", "Unlock", "RUnlock", "submit"
	recv     string    // receiver spelling, e.g. "rt.mu"
	deferred bool
	name     string // callee name for submit ops
}

func runLockDiscipline(pass *Pass) {
	for _, fd := range funcDecls(pass.Pkg) {
		if fd.Body == nil {
			continue
		}
		checkLockScope(pass, fd.Name.Name, fd.Body)
	}
}

// checkLockScope analyses one function-like body, recursing into nested
// function literals as separate scopes.
func checkLockScope(pass *Pass, name string, body *ast.BlockStmt) {
	var ops []lockOp
	var collect func(n ast.Node, deferred bool)
	collect = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				checkLockScope(pass, name+" (func literal)", c.Body)
				return false
			case *ast.DeferStmt:
				collect(c.Call, true)
				return false
			case *ast.CallExpr:
				if op, ok := classifyLockCall(pass, c); ok {
					op.deferred = deferred
					op.end = body.End()
					ops = append(ops, op)
				}
			}
			return true
		})
	}
	collect(body, false)

	// Rule 1: pairing.
	for _, op := range ops {
		var want string
		switch op.kind {
		case "Lock":
			want = "Unlock"
		case "RLock":
			want = "RUnlock"
		default:
			continue
		}
		if op.deferred {
			pass.Reportf(op.pos, "%s: deferred %s.%s() acquires a lock at function exit", name, op.recv, op.kind)
			continue
		}
		matched := false
		for _, rel := range ops {
			if rel.kind == want && rel.recv == op.recv && (rel.deferred || rel.pos > op.pos) {
				matched = true
				break
			}
		}
		if !matched {
			pass.Reportf(op.pos, "%s: %s.%s() without a matching same-function %s", name, op.recv, op.kind, want)
		}
	}

	// Rule 2: no Submit while a lock is held. The held region runs from the
	// acquire to the first matching release after it (or to the end of the
	// scope when the release is deferred or missing).
	for _, op := range ops {
		var want string
		switch op.kind {
		case "Lock":
			want = "Unlock"
		case "RLock":
			want = "RUnlock"
		default:
			continue
		}
		regionEnd := op.end
		for _, rel := range ops {
			if rel.kind != want || rel.recv != op.recv || rel.deferred {
				continue
			}
			if rel.pos > op.pos && rel.pos < regionEnd {
				regionEnd = rel.pos
			}
		}
		for _, sub := range ops {
			if sub.kind == "submit" && sub.pos > op.pos && sub.pos < regionEnd {
				pass.Reportf(sub.pos, "%s: %s called while holding %s (no oracle submission under a lock)", name, sub.name, op.recv)
			}
		}
	}
}

// classifyLockCall recognises mutex method calls and oracle submissions.
func classifyLockCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	info := pass.Pkg.Info
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		if recvType := info.Types[sel.X].Type; isSyncMutex(recvType) {
			return lockOp{pos: call.Pos(), kind: sel.Sel.Name, recv: pass.ExprString(sel.X)}, true
		}
	case "Submit", "SubmitAt":
		if isOracleThread(info.Types[sel.X].Type) {
			return lockOp{pos: call.Pos(), kind: "submit", name: "Thread." + sel.Sel.Name}, true
		}
	}
	return lockOp{}, false
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// isOracleThread reports whether t is the oracle thread handle
// (internal/core.Thread, aliased as pythia.Thread), possibly via pointer.
func isOracleThread(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	pkg := n.Obj().Pkg().Path()
	return n.Obj().Name() == "Thread" &&
		(strings.HasSuffix(pkg, "internal/core") || strings.HasSuffix(pkg, "/pythia"))
}
