package vet

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture writes files (path -> source) into a temp mini-module, loads it
// with LoadModule, runs the named analyzers, and returns the formatted
// findings (root-relative, sorted).
func loadFixture(t *testing.T, files map[string]string, analyzers ...*Analyzer) []string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := RunAnalyzers(mod, analyzers)
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		out = append(out, d.Format(root))
	}
	return out
}

// expectFindings asserts that each want substring matches exactly one
// finding, in order, and that no findings are left over.
func expectFindings(t *testing.T, got []string, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d finding(s), want %d:\n  got:  %s\n  want: %s",
			len(got), len(want), strings.Join(got, "\n        "), strings.Join(want, "\n        "))
	}
	for i, w := range want {
		if !strings.Contains(got[i], w) {
			t.Errorf("finding %d = %q, want substring %q", i, got[i], w)
		}
	}
}

func TestHotpathAlloc(t *testing.T) {
	tests := []struct {
		name string
		body string // body of the annotated function fast(s []int, n int)
		want []string
	}{
		{
			name: "fmt call",
			body: `fmt.Println(n)`,
			want: []string{"[hotpath-alloc] call to fmt.Println"},
		},
		{
			name: "string concat",
			body: `name := "a" + "b"; _ = name`,
			want: []string{"[hotpath-alloc] string concatenation"},
		},
		{
			name: "string concat assign",
			body: `name := "a"; name += "b"; _ = name`,
			want: []string{"[hotpath-alloc] string concatenation"},
		},
		{
			name: "append to param is fine",
			body: `s = append(s, n); _ = s`,
			want: nil,
		},
		{
			name: "append to fresh local flagged",
			body: `var out []int; out = append(out, n); _ = out`,
			want: []string{"[hotpath-alloc] append to out may grow"},
		},
		{
			name: "append to [:0] reslice is fine",
			body: `out := s[:0]; out = append(out, n); _ = out`,
			want: nil,
		},
		{
			name: "append to make with cap is fine",
			body: `out := make([]int, 0, 8); out = append(out, n); _ = out`,
			want: nil,
		},
		{
			name: "append guarded by len bound is fine",
			body: `var pool []int
	if len(pool) < 8 {
		pool = append(pool, n)
	}
	_ = pool`,
			want: nil,
		},
		{
			name: "map literal",
			body: `m := map[int]int{}; _ = m`,
			want: []string{"[hotpath-alloc] map literal"},
		},
		{
			name: "make map",
			body: `m := make(map[int]int); _ = m`,
			want: []string{"[hotpath-alloc] make(map)"},
		},
		{
			name: "closure capturing local",
			body: `x := n
	f := func() int { return x }
	_ = f`,
			want: []string{"[hotpath-alloc] closure captures x"},
		},
		{
			name: "closure without captures is fine",
			body: `f := func(y int) int { return y }
	_ = f(n)`,
			want: nil,
		},
		{
			name: "interface boxing",
			body: `sink(n)`,
			want: []string{"[hotpath-alloc] argument n boxes int into"},
		},
		{
			name: "interface arg already interface is fine",
			body: `var a any = nil; sink(a)`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := `package lib

import "fmt"

var _ = fmt.Sprint

func sink(v any) { _ = v }

// fast is on the per-event path.
//
// pythia:hotpath
func fast(s []int, n int) {
	` + tt.body + `
}

var _ = fast
`
			got := loadFixture(t, map[string]string{"lib/lib.go": src}, HotpathAlloc)
			expectFindings(t, got, tt.want)
		})
	}
}

func TestHotpathAllocOnlyAnnotated(t *testing.T) {
	src := `package lib

import "fmt"

// slow has no annotation; anything goes.
func slow() { fmt.Println("fine") }
`
	got := loadFixture(t, map[string]string{"lib/lib.go": src}, HotpathAlloc)
	expectFindings(t, got, nil)
}

func TestHotpathAllocPointerSliceParam(t *testing.T) {
	src := `package lib

// pythia:hotpath
func fill(out *[]int, n int) {
	*out = append(*out, n)
}
`
	got := loadFixture(t, map[string]string{"lib/lib.go": src}, HotpathAlloc)
	expectFindings(t, got, nil)
}

// lockFixture wraps a function body in a package that has a sync.Mutex, a
// sync.RWMutex, and a fake oracle Thread under internal/core (the analyzer
// recognises Thread by its package suffix).
func lockFixture(t *testing.T, body string) []string {
	t.Helper()
	core := `package core

type Thread struct{}

func (t *Thread) Submit(id int32)              {}
func (t *Thread) SubmitAt(id int32, now int64) {}
`
	lib := `package lib

import (
	"sync"

	"fixture/internal/core"
)

var (
	mu  sync.Mutex
	rw  sync.RWMutex
	thr = &core.Thread{}
)

func scope() {
	` + body + `
}
`
	return loadFixture(t, map[string]string{
		"internal/core/core.go": core,
		"lib/lib.go":            lib,
	}, LockDiscipline)
}

func TestLockDiscipline(t *testing.T) {
	tests := []struct {
		name string
		body string
		want []string
	}{
		{
			name: "lock with defer unlock is fine",
			body: `mu.Lock()
	defer mu.Unlock()`,
			want: nil,
		},
		{
			name: "lock with inline unlock is fine",
			body: `mu.Lock()
	mu.Unlock()`,
			want: nil,
		},
		{
			name: "lock without unlock",
			body: `mu.Lock()`,
			want: []string{"mu.Lock() without a matching same-function Unlock"},
		},
		{
			name: "rlock paired with wrong unlock",
			body: `rw.RLock()
	defer rw.Unlock()`,
			want: []string{"rw.RLock() without a matching same-function RUnlock"},
		},
		{
			name: "deferred lock",
			body: `defer mu.Lock()`,
			want: []string{"deferred mu.Lock() acquires a lock"},
		},
		{
			name: "submit under lock",
			body: `mu.Lock()
	thr.Submit(1)
	mu.Unlock()`,
			want: []string{"scope: Thread.Submit called while holding mu"},
		},
		{
			name: "submit under deferred unlock",
			body: `mu.Lock()
	defer mu.Unlock()
	thr.SubmitAt(1, 2)`,
			want: []string{"scope: Thread.SubmitAt called while holding mu"},
		},
		{
			name: "submit after release is fine",
			body: `mu.Lock()
	mu.Unlock()
	thr.Submit(1)`,
			want: nil,
		},
		{
			name: "closure is its own scope",
			body: `mu.Lock()
	defer mu.Unlock()
	f := func() {
		rw.RLock()
		defer rw.RUnlock()
	}
	f()`,
			want: nil,
		},
		{
			name: "unlock missing inside closure",
			body: `f := func() {
		mu.Lock()
	}
	f()`,
			want: []string{"mu.Lock() without a matching same-function Unlock"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			expectFindings(t, lockFixture(t, tt.body), tt.want)
		})
	}
}

func TestPanicPolicy(t *testing.T) {
	tests := []struct {
		name string
		path string // file path inside the fixture module
		body string
		want []string
	}{
		{
			name: "invariant panic is fine",
			path: "internal/lib/lib.go",
			body: `panic("pythia: internal: impossible state")`,
			want: nil,
		},
		{
			name: "formatted invariant panic is fine",
			path: "internal/lib/lib.go",
			body: `panic(fmt.Sprintf("pythia: internal: bad sym %d", 7))`,
			want: nil,
		},
		{
			name: "plain panic in library",
			path: "internal/lib/lib.go",
			body: `panic("boom")`,
			want: []string{`[panic-policy] panic "boom"`},
		},
		{
			name: "non-constant panic in library",
			path: "internal/lib/lib.go",
			body: `panic(errTest)`,
			want: []string{"[panic-policy] panic with non-constant"},
		},
		{
			name: "panic in cmd is fine",
			path: "cmd/tool/main.go",
			body: `panic("cli misuse")`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkg := "lib"
			if strings.Contains(tt.path, "cmd/") {
				pkg = "main"
			}
			src := `package ` + pkg + `

import (
	"errors"
	"fmt"
)

var errTest = errors.New("x")
var _ = fmt.Sprint

func trip() {
	` + tt.body + `
}

var _ = trip
`
			got := loadFixture(t, map[string]string{tt.path: src}, PanicPolicy)
			expectFindings(t, got, tt.want)
		})
	}
}

func TestErrorHygiene(t *testing.T) {
	tests := []struct {
		name string
		body string
		want []string
	}{
		{
			name: "checked error is fine",
			body: `if err := mayFail(); err != nil {
		return
	}`,
			want: nil,
		},
		{
			name: "bare call dropping error",
			body: `mayFail()`,
			want: []string{"result of mayFail contains an error"},
		},
		{
			name: "blank assign",
			body: `_ = mayFail()`,
			want: []string{"error value mayFail() assigned to _"},
		},
		{
			name: "blank in tuple",
			body: `n, _ := twoValued()
	_ = n`,
			want: []string{"error result of twoValued() assigned to _"},
		},
		{
			name: "fmt.Println allowlisted",
			body: `fmt.Println("hi")`,
			want: nil,
		},
		{
			name: "fprintf to stderr allowlisted",
			body: `fmt.Fprintf(os.Stderr, "hi %d\n", 1)`,
			want: nil,
		},
		{
			name: "fprintf to strings.Builder allowlisted",
			body: `var sb strings.Builder
	fmt.Fprintf(&sb, "x")
	_ = sb.String()`,
			want: nil,
		},
		{
			name: "fprintf to arbitrary writer flagged",
			body: `fmt.Fprintf(sink, "x")`,
			want: []string{"result of fmt.Fprintf contains an error"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := `package lib

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

var sink io.Writer

var _ = strings.TrimSpace
var _ = fmt.Sprint

func mayFail() error { return errors.New("x") }

func twoValued() (int, error) { return 0, nil }

func useIt() {
	` + tt.body + `
}

var _ = useIt
var _ = os.Stdout
`
			got := loadFixture(t, map[string]string{"lib/lib.go": src}, ErrorHygiene)
			expectFindings(t, got, tt.want)
		})
	}
}

func TestErrorHygieneSkipsTestsAndExamples(t *testing.T) {
	lib := `package lib

import "errors"

func mayFail() error { return errors.New("x") }

var _ = mayFail
`
	libTest := `package lib

import "testing"

func TestDrop(t *testing.T) { mayFail() }
`
	example := `package main

import "fixture/lib"

func main() { _ = lib.MayFail() }
`
	libExported := `package lib

import "errors"

func MayFail() error { return errors.New("x") }
`
	got := loadFixture(t, map[string]string{
		"lib/lib.go":            lib,
		"lib/lib_test.go":       libTest,
		"lib/exported.go":       libExported,
		"examples/demo/main.go": example,
	}, ErrorHygiene)
	expectFindings(t, got, nil)
}

func TestBaselineFilter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.txt")
	content := "# header comment\nfile.go:1: [a] msg\nfile.go:1: [a] msg\nfile.go:9: [b] gone\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	diag := func(line int, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "file.go", Line: line},
			Analyzer: analyzer,
			Message:  msg,
		}
	}
	diags := []Diagnostic{
		diag(1, "a", "msg"), diag(1, "a", "msg"), // both within the budget of 2
		diag(1, "a", "msg"), // exceeds the budget
		diag(2, "a", "new"), // not baselined at all
	}
	fresh, suppressed, stale := b.Filter(dir, diags)
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", suppressed)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %d finding(s), want 2", len(fresh))
	}
	if got := fresh[1].Format(dir); got != "file.go:2: [a] new" {
		t.Errorf("fresh[1] = %q", got)
	}
	if len(stale) != 1 || stale[0] != "file.go:9: [b] gone" {
		t.Errorf("stale = %q, want the unmatched entry", stale)
	}
}

func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.txt"))
	if err != nil {
		t.Fatalf("missing baseline should load as empty, got error %v", err)
	}
	d := Diagnostic{Pos: token.Position{Filename: "f.go", Line: 1}, Analyzer: "a", Message: "m"}
	fresh, suppressed, stale := b.Filter(t.TempDir(), []Diagnostic{d})
	if len(fresh) != 1 || suppressed != 0 || len(stale) != 0 {
		t.Fatalf("empty baseline Filter = (%d fresh, %d suppressed, %d stale)", len(fresh), suppressed, len(stale))
	}
}

func TestWriteBaselinePreservesHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.txt")
	header := "# justification: deliberate finding\n# second line\n"
	if err := os.WriteFile(path, []byte(header+"old.go:1: [a] gone\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := Diagnostic{Pos: token.Position{Filename: "new.go", Line: 3}, Analyzer: "b", Message: "kept"}
	if err := WriteBaseline(path, dir, []Diagnostic{d}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := header + "new.go:3: [b] kept\n"
	if string(got) != want {
		t.Errorf("rewritten baseline:\n%s\nwant:\n%s", got, want)
	}
}

func TestLoadModuleSelf(t *testing.T) {
	// Loading the real module exercises the importer against every package
	// pythia-vet analyses in CI.
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(repo root): %v", err)
	}
	if mod.ModPath != "repro" {
		t.Fatalf("ModPath = %q, want repro", mod.ModPath)
	}
	if len(mod.Packages) < 10 {
		t.Fatalf("loaded only %d packages", len(mod.Packages))
	}
}
