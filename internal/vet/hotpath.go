package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathAlloc enforces the allocation discipline of functions annotated
// "// pythia:hotpath". These functions sit on the oracle's per-event path
// (Thread.Submit -> grammar append -> progress/predictor advance), which the
// paper reports at ~0.05-2 µs per event; a stray fmt call or allocation is a
// multiple of that budget.
//
// Inside an annotated function the analyzer flags:
//   - calls into package fmt (formatting allocates and reflects);
//   - string concatenation (+ / += on strings allocates);
//   - append calls whose destination is not visibly preallocated — allowed
//     destinations are function parameters (caller-managed buffers), slices
//     reset with s[:0] or created by make with an explicit capacity in the
//     same function, and appends guarded by a len/cap comparison;
//   - map literals and make(map[...]...) (maps allocate and hash);
//   - function literals capturing outer variables (the closure and its
//     captures escape);
//   - implicit interface boxing in call arguments (a concrete value passed
//     as an interface parameter allocates).
//
// The check is per-function and not transitive: annotate every function of
// the hot path that must hold the discipline.
var HotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc:  "pythia:hotpath functions must stay allocation-lean",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(pass *Pass) {
	for _, fd := range funcDecls(pass.Pkg) {
		if fd.Body == nil || !hasAnnotation(fd.Doc, "hotpath") {
			continue
		}
		h := &hotpathCheck{pass: pass, decl: fd, info: pass.Pkg.Info}
		h.collectPrealloc()
		h.walk()
	}
}

type hotpathCheck struct {
	pass *Pass
	decl *ast.FuncDecl
	info *types.Info

	// prealloc holds spellings of slice expressions established as reused
	// buffers: parameters, s[:0] reslices, and make(..., n, cap) results.
	prealloc map[string]bool
}

// collectPrealloc records which slice destinations count as preallocated.
func (h *hotpathCheck) collectPrealloc() {
	h.prealloc = make(map[string]bool)
	if h.decl.Type.Params != nil {
		for _, field := range h.decl.Type.Params.List {
			for _, name := range field.Names {
				// Caller-managed buffers: both `buf` and the `*out`
				// spelling of pointer-to-slice parameters.
				h.prealloc[name.Name] = true
				h.prealloc["*"+name.Name] = true
			}
		}
	}
	ast.Inspect(h.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if h.isPreallocExpr(rhs) {
				h.prealloc[h.pass.ExprString(as.Lhs[i])] = true
			}
		}
		return true
	})
}

// isPreallocExpr reports whether e denotes a reused or capacity-bounded
// buffer: s[:0]-style reslices (of anything) or make with explicit capacity.
func (h *hotpathCheck) isPreallocExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		// s[:0] or s[:n] — reslicing reuses the backing array.
		return true
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && h.isBuiltin(id) {
			return len(e.Args) == 3 // make(T, len, cap)
		}
	}
	return false
}

// isBuiltin reports whether id resolves to a universe builtin.
func (h *hotpathCheck) isBuiltin(id *ast.Ident) bool {
	_, ok := h.info.Uses[id].(*types.Builtin)
	return ok
}

func (h *hotpathCheck) walk() {
	ast.Inspect(h.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			h.checkCall(n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && h.isString(n) {
				h.pass.Reportf(n.OpPos, "string concatenation in hot path (allocates)")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && h.isString(n.Lhs[0]) {
				h.pass.Reportf(n.TokPos, "string concatenation in hot path (allocates)")
			}
		case *ast.CompositeLit:
			if t := h.exprType(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					h.pass.Reportf(n.Pos(), "map literal in hot path (allocates)")
				}
			}
		case *ast.FuncLit:
			if caps := h.captures(n); len(caps) > 0 {
				h.pass.Reportf(n.Pos(), "closure captures %s by reference in hot path (escapes)",
					strings.Join(caps, ", "))
			}
			return false // captures inside nested literals are already counted
		}
		return true
	})
}

func (h *hotpathCheck) checkCall(call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if h.isBuiltin(fun) {
			switch fun.Name {
			case "append":
				h.checkAppend(call)
			case "make":
				if t := h.exprType(call); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						h.pass.Reportf(call.Pos(), "make(map) in hot path (allocates)")
					}
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := h.info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				h.pass.Reportf(call.Pos(), "call to fmt.%s in hot path (formats and allocates)", fun.Sel.Name)
				return
			}
		}
	}
	h.checkBoxing(call)
}

// checkAppend flags appends whose destination is not visibly preallocated.
func (h *hotpathCheck) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := h.pass.ExprString(call.Args[0])
	if h.prealloc[dst] {
		return
	}
	// An append(x[:0], ...)-style first argument is itself a reuse.
	if h.isPreallocExpr(call.Args[0]) {
		return
	}
	if h.guardedByCapacity(call, dst) {
		return
	}
	h.pass.Reportf(call.Pos(), "append to %s may grow the slice in the hot path (preallocate, reslice with [:0], or guard with len/cap)", dst)
}

// guardedByCapacity reports whether the append sits under an if condition
// comparing len/cap of the destination (the bounded-pool idiom:
// if len(s) < 1024 { s = append(s, ...) }).
func (h *hotpathCheck) guardedByCapacity(call *ast.CallExpr, dst string) bool {
	found := false
	var walk func(n ast.Node, guarded bool) bool
	walk = func(n ast.Node, guarded bool) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			g := guarded || h.condBoundsSlice(n.Cond, dst)
			if n.Init != nil {
				walk(n.Init, guarded)
			}
			walk(n.Body, g)
			if n.Else != nil {
				walk(n.Else, guarded)
			}
			return false
		case *ast.CallExpr:
			if n == call && guarded {
				found = true
			}
		}
		if n != nil {
			for _, c := range childNodes(n) {
				walk(c, guarded)
			}
		}
		return false
	}
	walk(h.decl.Body, false)
	return found
}

// condBoundsSlice reports whether cond contains a len/cap comparison
// mentioning the slice spelling dst.
func (h *hotpathCheck) condBoundsSlice(cond ast.Expr, dst string) bool {
	hit := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if c, ok := ast.Unparen(side).(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") &&
					h.isBuiltin(id) && len(c.Args) == 1 &&
					h.pass.ExprString(c.Args[0]) == dst {
					hit = true
				}
			}
		}
		return true
	})
	return hit
}

// checkBoxing flags concrete values passed as interface parameters.
func (h *hotpathCheck) checkBoxing(call *ast.CallExpr) {
	tv, ok := h.info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin or type conversion
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice itself
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		at, ok := h.info.Types[arg]
		if !ok || at.IsNil() || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) {
			continue
		}
		h.pass.Reportf(arg.Pos(), "argument %s boxes %s into %s in hot path (allocates)",
			h.pass.ExprString(arg), at.Type.String(), pt.String())
	}
}

func (h *hotpathCheck) isString(e ast.Expr) bool {
	t := h.exprType(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (h *hotpathCheck) exprType(e ast.Expr) types.Type {
	tv, ok := h.info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// childNodes returns the direct AST children of n (a minimal substitute for
// per-child visitation, used by the guard walk).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// captures lists outer local variables referenced inside the function
// literal.
func (h *hotpathCheck) captures(fl *ast.FuncLit) []string {
	var out []string
	seen := make(map[*types.Var]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := h.info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside the
		// literal.
		if v.Pos() >= h.decl.Pos() && v.Pos() < h.decl.End() &&
			!(v.Pos() >= fl.Pos() && v.Pos() < fl.End()) {
			seen[v] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}
