package vet

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// Baseline is a set of accepted findings. Lines are the exact Format output
// of a diagnostic; blank lines and '#' comments (used to justify deliberate
// findings) are ignored.
type Baseline struct {
	entries map[string]int // formatted finding -> occurrence budget
}

// LoadBaseline reads a baseline file. A missing file yields an empty
// baseline.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: make(map[string]int)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, fmt.Errorf("vet: reading baseline %s: %w", path, err)
	}
	for _, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.entries[line]++
	}
	return b, nil
}

// Filter splits findings into new (not baselined) and suppressed, and
// returns the stale baseline entries that matched nothing.
func (b *Baseline) Filter(root string, diags []Diagnostic) (fresh []Diagnostic, suppressed int, stale []string) {
	budget := make(map[string]int, len(b.entries))
	for k, v := range b.entries {
		budget[k] = v
	}
	for _, d := range diags {
		key := d.Format(root)
		if budget[key] > 0 {
			budget[key]--
			suppressed++
			continue
		}
		fresh = append(fresh, d)
	}
	for k, v := range budget {
		for i := 0; i < v; i++ {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, suppressed, stale
}

// WriteBaseline writes the findings as a fresh baseline file, preserving the
// comment header block (leading '#' lines) of any existing file so that
// justifications survive -update-baseline.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	var header []string
	if old, err := os.ReadFile(path); err == nil {
		for _, line := range strings.Split(string(old), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "#") {
				header = append(header, line)
				continue
			}
			break
		}
	}
	var b strings.Builder
	if len(header) == 0 {
		b.WriteString("# pythia-vet baseline: accepted findings, one per line, exactly as reported.\n")
		b.WriteString("# Regenerate with: go run ./cmd/pythia-vet -update-baseline ./...\n")
	} else {
		for _, h := range header {
			b.WriteString(h)
			b.WriteString("\n")
		}
	}
	for _, d := range diags {
		b.WriteString(d.Format(root))
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
