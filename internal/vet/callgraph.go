package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the first half of the shared analysis foundation (the other
// is flow.go): a module-wide static call graph over the type-checked ASTs.
// The concurrency analyzers (atomic-mix, goroutine-lifecycle, lock-order)
// are call-graph-aware — a lock held in one function extends over the
// functions it calls, and a goroutine body may live in a named function —
// so per-function syntax checks alone cannot see the PR 5 bug classes they
// target.
//
// The graph is deliberately static and conservative:
//
//   - nodes are the declared functions and methods of the module (one per
//     *types.Func that has a FuncDecl);
//   - edges are direct calls — package functions, qualified pkg.Func calls
//     and concrete method calls resolved through go/types. Interface
//     method calls and calls through function values resolve to no node
//     (the callee set is unknown), and function literals are separate
//     execution contexts, not inlined into their enclosing declaration.
//
// Missing edges make the dependent analyzers miss findings, never invent
// them, which is the right failure mode for a gating tool.

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	// nodes maps each declared function object to its node.
	nodes map[*types.Func]*CallNode
}

// CallNode is one declared function or method of the module.
type CallNode struct {
	// Fn is the function object.
	Fn *types.Func
	// Decl is the declaration carrying the body.
	Decl *ast.FuncDecl
	// Pkg is the package declaring the function.
	Pkg *Package
	// Calls are the direct static call sites within Decl's body, in
	// source order. Callees outside the module have no node.
	Calls []CallSite
	// callers is the reverse adjacency (module-internal callers only).
	callers []*CallSite
}

// CallSite is one static call expression inside a caller's body.
type CallSite struct {
	// Caller is the node containing the call.
	Caller *CallNode
	// Callee is the resolved callee object (may have no node when it is
	// declared outside the module or has no body).
	Callee *types.Func
	// Call is the call expression itself.
	Call *ast.CallExpr
	// Pos locates the call.
	Pos token.Pos
	// InFuncLit reports that the call site sits inside a function literal
	// nested in Caller — it executes when the literal runs, not when the
	// enclosing function does, so region-based analyses must skip it.
	InFuncLit bool
	// Async reports a `go f()` statement: the callee runs on a fresh
	// goroutine holding no locks, so lock regions at the spawn site do not
	// extend into it (and its acquisitions are not nested under them).
	Async bool
}

// BuildCallGraph constructs the static call graph of the module.
func BuildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CallNode)}
	for _, pkg := range m.Packages {
		for _, fd := range funcDecls(pkg) {
			if fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.nodes[fn] = &CallNode{Fn: fn, Decl: fd, Pkg: pkg}
		}
	}
	for _, node := range g.nodes {
		g.collectCalls(node)
	}
	for _, node := range g.nodes {
		for i := range node.Calls {
			site := &node.Calls[i]
			if callee := g.nodes[site.Callee]; callee != nil {
				callee.callers = append(callee.callers, site)
			}
		}
	}
	return g
}

// collectCalls fills node.Calls with the body's static call sites.
func (g *CallGraph) collectCalls(node *CallNode) {
	info := node.Pkg.Info
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				walk(c.Body, true)
				return false
			case *ast.CallExpr:
				if callee := StaticCallee(info, c); callee != nil {
					node.Calls = append(node.Calls, CallSite{
						Caller:    node,
						Callee:    callee,
						Call:      c,
						Pos:       c.Pos(),
						InFuncLit: inLit,
						Async:     goCalls[c],
					})
				}
			}
			return true
		})
	}
	walk(node.Decl.Body, false)
	sort.SliceStable(node.Calls, func(i, j int) bool {
		return node.Calls[i].Pos < node.Calls[j].Pos
	})
}

// StaticCallee resolves a call expression to its callee function object:
// package functions, qualified pkg.Func references and concrete method
// calls. Interface method calls, builtin calls, type conversions and calls
// through function values yield nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// An interface method has no body anywhere in the module; the
			// dynamic callee set is unknown, so resolve to nothing.
			if recv := f.Type().(*types.Signature).Recv(); recv != nil {
				if types.IsInterface(recv.Type()) {
					return nil
				}
			}
			return f
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // pkg-qualified function reference
		}
	}
	return nil
}

// NodeOf returns the node of a function object, nil when the function is
// not declared (with a body) in the module.
func (g *CallGraph) NodeOf(fn *types.Func) *CallNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// Callers returns the module-internal call sites that target fn.
func (g *CallGraph) Callers(fn *types.Func) []*CallSite {
	if n := g.nodes[fn]; n != nil {
		return n.callers
	}
	return nil
}

// Nodes yields every node sorted by position (deterministic iteration for
// reporting).
func (g *CallGraph) Nodes() []*CallNode {
	out := make([]*CallNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// ModuleFacts carries the analysis state shared by every Pass of one
// RunAnalyzers call: the call graph, plus per-module caches computed on
// first use by the analyzers that need them (lock-order folds its pair
// table once, not once per package).
type ModuleFacts struct {
	// Mod is the module under analysis.
	Mod *Module

	graph *CallGraph

	// lockOrderDiags caches the module-wide lock-order computation, keyed
	// by package path (see lockorder.go).
	lockOrderDiags map[string][]Diagnostic
}

// NewModuleFacts returns an empty fact store for m.
func NewModuleFacts(m *Module) *ModuleFacts {
	return &ModuleFacts{Mod: m}
}

// Graph returns the call graph, building it on first use.
func (f *ModuleFacts) Graph() *CallGraph {
	if f.graph == nil {
		f.graph = BuildCallGraph(f.Mod)
	}
	return f.graph
}
