package vet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path (e.g. "repro/internal/grammar").
	Path string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files holds the parsed non-test files of the package.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression and identifier facts.
	Info *types.Info
}

// Module is a loaded, type-checked module.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// ModPath is the module path declared in go.mod.
	ModPath string
	// Fset is shared by all packages.
	Fset *token.FileSet
	// Packages are sorted by import path.
	Packages []*Package
}

// LoadModule locates the module containing dir, parses every package in it
// (excluding _test.go files and testdata directories) and type-checks them
// against each other and the standard library. It depends only on the
// standard library: module-internal imports resolve to the freshly parsed
// packages; everything else is loaded from GOROOT source.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	ld := &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		parsed:  make(map[string]*Package),
		std:     importer.ForCompiler(fset, "source", nil),
		checked: make(map[string]*types.Package),
	}
	for _, d := range dirs {
		if err := ld.parseDir(d); err != nil {
			return nil, err
		}
	}
	paths := make([]string, 0, len(ld.parsed))
	for p := range ld.parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	m := &Module{Root: root, ModPath: modPath, Fset: fset}
	for _, p := range paths {
		if _, err := ld.check(p); err != nil {
			return nil, err
		}
		m.Packages = append(m.Packages, ld.parsed[p])
	}
	return m, nil
}

// findModule walks upward from dir to the first go.mod and returns its
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("vet: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("vet: no go.mod found above %s", abs)
		}
	}
}

// packageDirs lists every directory under root that contains .go files,
// skipping hidden directories and testdata.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// loader parses and type-checks packages on demand, memoising results so each
// package is checked once regardless of import order.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	parsed  map[string]*Package       // import path -> parsed (maybe unchecked) package
	std     types.Importer            // GOROOT source importer for non-module imports
	checked map[string]*types.Package // import path -> type-checked package
	stack   []string                  // import cycle detection
}

// parseDir parses the non-test files of one directory into a Package entry.
func (ld *loader) parseDir(dir string) error {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return err
	}
	imp := ld.modPath
	if rel != "." {
		imp = ld.modPath + "/" + filepath.ToSlash(rel)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	pkg := &Package{Path: imp, Dir: dir, Fset: ld.fset}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines and GOOS/GOARCH file
		// suffixes) the same way the toolchain does — otherwise a package
		// with platform-split files (e.g. a unix implementation plus its
		// stub twin) type-checks as a redeclaration.
		if match, err := build.Default.MatchFile(dir, name); err != nil {
			return fmt.Errorf("vet: matching %s: %w", filepath.Join(dir, name), err)
		} else if !match {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("vet: parsing %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil
	}
	ld.parsed[imp] = pkg
	return nil
}

// Import implements types.Importer, routing module-internal paths to the
// parsed packages and everything else to the GOROOT source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		return ld.check(path)
	}
	return ld.std.Import(path)
}

// check type-checks one module package (and, recursively, its module
// dependencies).
func (ld *loader) check(path string) (*types.Package, error) {
	if tp, ok := ld.checked[path]; ok {
		return tp, nil
	}
	pkg, ok := ld.parsed[path]
	if !ok {
		return nil, fmt.Errorf("vet: import %q not found in module", path)
	}
	for _, s := range ld.stack {
		if s == path {
			return nil, fmt.Errorf("vet: import cycle through %q", path)
		}
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{Importer: ld}
	tp, err := cfg.Check(path, ld.fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking %s: %w", path, err)
	}
	pkg.Types = tp
	pkg.Info = info
	ld.checked[path] = tp
	return tp, nil
}
