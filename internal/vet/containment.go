package vet

import (
	"go/ast"
	"go/token"
)

// Containment enforces the fail-open contract on types whose doc comment
// carries the "pythia:contained" marker: every exported method must route
// through the panic-containment wrapper — a deferred call to Contain or
// ContainTo — so an internal bug degrades the oracle instead of crashing
// the host runtime. Pure accessors that cannot panic (no calls, no
// indexing) are individually accepted in vet-baseline.txt with a
// justification, keeping the exception list reviewed rather than implicit.
var Containment = &Analyzer{
	Name: "containment",
	Doc:  "exported methods of pythia:contained types must defer a containment wrapper",
	Run:  runContainment,
}

func runContainment(pass *Pass) {
	contained := containedTypes(pass.Pkg)
	if len(contained) == 0 {
		return
	}
	for _, fd := range funcDecls(pass.Pkg) {
		if fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		recv := receiverTypeName(fd.Recv)
		if !contained[recv] {
			continue
		}
		if !hasDeferredContain(fd.Body) {
			pass.Reportf(fd.Pos(),
				"exported method %s.%s on a pythia:contained type has no deferred Contain/ContainTo (panic here crashes the host runtime)",
				recv, fd.Name.Name)
		}
	}
}

// containedTypes collects the names of types in the package whose doc
// comment (on the spec or its enclosing declaration) carries the
// "pythia:contained" marker.
func containedTypes(pkg *Package) map[string]bool {
	out := map[string]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if hasAnnotation(doc, "contained") {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// receiverTypeName extracts the base type name of a method receiver
// ("*Thread" and "Thread" both yield "Thread").
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// hasDeferredContain reports whether the body contains a defer statement
// whose callee is named Contain or ContainTo (any receiver chain).
func hasDeferredContain(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(ds.Call.Fun).(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Contain" || fun.Sel.Name == "ContainTo" {
				found = true
			}
		case *ast.Ident:
			if fun.Name == "Contain" || fun.Name == "ContainTo" {
				found = true
			}
		}
		return true
	})
	return found
}
