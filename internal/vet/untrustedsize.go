package vet

import (
	"go/ast"
	"go/types"
	"strings"
)

// UntrustedSize flags integers that originate at a wire/file decode source
// and reach an allocation-sizing sink without a dominating bound check —
// the bug class behind the PR 5 MaxPredictions incident, where an 8-byte
// PredictSequence frame could demand a multi-GiB prediction buffer because
// the count field went from the frame straight into the oracle's horizon
// allocation.
//
// Sources (see untrustedSource): encoding/binary reads (ByteOrder
// accessors, Read, the varint readers), cursor reads in a package named
// "wire" (the u8/u16/u32/u64/str payload accessors), and the wire Parse*
// decoders whose results are raw frame fields.
//
// Sinks (see runUntrustedSize): make() length/capacity arguments,
// io.ReadFull / io.ReadAtLeast buffers sized by a tainted slice bound,
// io.CopyN counts, and oracle Thread.PredictSequence /
// PredictDurationUntil horizons (the core allocates the full horizon up
// front — exactly the PR 5 allocation).
//
// A value stops being a finding once it passes any relational comparison
// against a non-zero bound, or a min/max clamp (see flow.go for the
// dominance approximation). Functions annotated "pythia:trusted-input"
// are skipped entirely — the escape hatch for decoders whose inputs are
// validated by construction (document why at the annotation).
var UntrustedSize = &Analyzer{
	Name: "untrusted-size",
	Doc:  "wire/file decoded integers must pass a bound check before sizing an allocation",
	Run:  runUntrustedSize,
}

func runUntrustedSize(pass *Pass) {
	for _, fd := range funcDecls(pass.Pkg) {
		if fd.Body == nil || hasAnnotation(fd.Doc, "trusted-input") {
			continue
		}
		ff := TrackFlow(pass, fd.Body, untrustedSource)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkSizeSink(pass, ff, call)
			return true
		})
	}
}

// checkSizeSink reports tainted, unguarded size arguments at the known
// allocation-sizing sinks.
func checkSizeSink(pass *Pass, ff *FlowFacts, call *ast.CallExpr) {
	info := pass.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, builtin := info.Uses[fun].(*types.Builtin); builtin && fun.Name == "make" {
			// make(T, len) / make(T, len, cap): every size argument counts.
			for _, arg := range call.Args[1:] {
				reportTaintedSize(pass, ff, arg, "make")
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "io" {
				switch fun.Sel.Name {
				case "ReadFull", "ReadAtLeast":
					// The buffer argument's slice bound sizes the read.
					if len(call.Args) >= 2 {
						reportSliceBound(pass, ff, call.Args[1], "io."+fun.Sel.Name)
					}
				case "CopyN":
					if len(call.Args) == 3 {
						reportTaintedSize(pass, ff, call.Args[2], "io.CopyN")
					}
				}
				return
			}
		}
		// Oracle horizon sinks: PredictSequence(n) and
		// PredictDurationUntil(id, maxDistance) allocate their full
		// horizon up front in the core.
		if isOracleThread(info.Types[fun.X].Type) {
			switch fun.Sel.Name {
			case "PredictSequence":
				if len(call.Args) == 1 {
					reportTaintedSize(pass, ff, call.Args[0], "Thread.PredictSequence")
				}
			case "PredictDurationUntil":
				if len(call.Args) == 2 {
					reportTaintedSize(pass, ff, call.Args[1], "Thread.PredictDurationUntil")
				}
			}
		}
	}
}

// reportTaintedSize reports arg when it is tainted and unguarded.
func reportTaintedSize(pass *Pass, ff *FlowFacts, arg ast.Expr, sink string) {
	if src, ok := ff.Tainted(arg); ok {
		pass.Reportf(arg.Pos(),
			"size %s from untrusted source %s reaches %s without a dominating bound check (clamp or validate it first)",
			pass.ExprString(arg), src, sink)
	}
}

// reportSliceBound reports tainted bounds of a buf[:n]-style argument.
func reportSliceBound(pass *Pass, ff *FlowFacts, arg ast.Expr, sink string) {
	se, ok := ast.Unparen(arg).(*ast.SliceExpr)
	if !ok {
		// A whole-slice argument: flag it when the slice value itself was
		// made from a tainted size (already reported at the make site).
		return
	}
	for _, bound := range []ast.Expr{se.High, se.Max} {
		if bound != nil {
			reportTaintedSize(pass, ff, bound, sink)
		}
	}
}

// untrustedSource classifies decode calls that yield attacker- or
// file-controlled integers.
func untrustedSource(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	info := pass.Pkg.Info

	// Qualified calls: binary.* and wire.Parse*.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "encoding/binary":
				switch sel.Sel.Name {
				case "Read", "ReadUvarint", "ReadVarint", "Uvarint", "Varint":
					return "binary." + sel.Sel.Name, true
				}
				return "", false
			}
			if pn.Imported().Name() == "wire" && strings.HasPrefix(sel.Sel.Name, "Parse") {
				return "wire." + sel.Sel.Name, true
			}
			return "", false
		}
	}

	// Method calls: ByteOrder accessors (binary.BigEndian.Uint32) and the
	// wire package's own cursor reads (u8/u16/u32/u64/str) — raw payload
	// bytes in both cases.
	if fn := StaticCallee(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "encoding/binary":
			switch fn.Name() {
			case "Uint16", "Uint32", "Uint64":
				return "binary." + fn.Name(), true
			}
		}
		if fn.Pkg().Name() == "wire" {
			switch fn.Name() {
			case "u8", "u16", "u32", "u64", "str":
				return "wire cursor " + fn.Name() + "()", true
			}
			if strings.HasPrefix(fn.Name(), "Parse") {
				return "wire." + fn.Name(), true
			}
		}
	}

	// Interface ByteOrder calls (binary.ByteOrder.Uint32 through an
	// interface value) resolve through Selections without a static callee.
	if s, ok := info.Selections[sel]; ok {
		if recv := s.Recv(); recv != nil {
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "encoding/binary" {
				switch sel.Sel.Name {
				case "Uint16", "Uint32", "Uint64":
					return "binary." + sel.Sel.Name, true
				}
			}
		}
	}
	return "", false
}
